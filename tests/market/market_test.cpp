// Tests for price_feed.hpp, snapshot.hpp, generator.hpp, io.hpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "graph/cycle_enumeration.hpp"
#include "market/generator.hpp"
#include "market/io.hpp"
#include "market/price_feed.hpp"
#include "market/snapshot.hpp"

namespace arb::market {
namespace {

TEST(PriceFeedTest, SetAndGet) {
  CexPriceFeed feed;
  feed.set_price(TokenId{0}, 2.5);
  EXPECT_TRUE(feed.has_price(TokenId{0}));
  EXPECT_FALSE(feed.has_price(TokenId{1}));
  EXPECT_DOUBLE_EQ(*feed.price(TokenId{0}), 2.5);
  EXPECT_DOUBLE_EQ(feed.price_unchecked(TokenId{0}), 2.5);
  EXPECT_EQ(feed.size(), 1u);
}

TEST(PriceFeedTest, MissingPriceIsNotFound) {
  CexPriceFeed feed;
  auto price = feed.price(TokenId{9});
  ASSERT_FALSE(price.ok());
  EXPECT_EQ(price.error().code, ErrorCode::kNotFound);
  EXPECT_THROW((void)feed.price_unchecked(TokenId{9}), PreconditionError);
}

TEST(PriceFeedTest, ReplacePrice) {
  CexPriceFeed feed;
  feed.set_price(TokenId{0}, 1.0);
  feed.set_price(TokenId{0}, 2.0);
  EXPECT_DOUBLE_EQ(*feed.price(TokenId{0}), 2.0);
  EXPECT_EQ(feed.size(), 1u);
}

TEST(PriceFeedTest, InvalidPricesRejected) {
  CexPriceFeed feed;
  EXPECT_THROW(feed.set_price(TokenId{0}, 0.0), PreconditionError);
  EXPECT_THROW(feed.set_price(TokenId{0}, -1.0), PreconditionError);
  EXPECT_THROW(feed.set_price(TokenId{}, 1.0), PreconditionError);
}

TEST(PriceFeedTest, ValueUsd) {
  CexPriceFeed feed;
  feed.set_price(TokenId{0}, 3.0);
  EXPECT_DOUBLE_EQ(feed.value_usd(TokenId{0}, 7.0), 21.0);
}

MarketSnapshot tiny_snapshot() {
  MarketSnapshot s;
  const TokenId a = s.graph.add_token("A");
  const TokenId b = s.graph.add_token("B");
  const TokenId c = s.graph.add_token("C");
  s.prices.set_price(a, 10.0);
  s.prices.set_price(b, 1.0);
  s.prices.set_price(c, 100.0);
  s.graph.add_pool(a, b, 5000.0, 50000.0);   // TVL $100k, reserves ok
  s.graph.add_pool(b, c, 50.0, 400.0);       // TVL $40k+... reserve b = 50 < 100
  s.graph.add_pool(a, c, 1000.0, 100.0);     // TVL $20k: below min TVL
  return s;
}

TEST(SnapshotTest, TvlValuesBothSides) {
  const MarketSnapshot s = tiny_snapshot();
  EXPECT_DOUBLE_EQ(s.pool_tvl_usd(PoolId{0}), 5000.0 * 10.0 + 50000.0 * 1.0);
}

TEST(SnapshotTest, FilterDropsLowTvlAndThinReserves) {
  const MarketSnapshot s = tiny_snapshot();
  const PoolFilter filter;  // $30k TVL, 100 token units
  EXPECT_TRUE(s.pool_passes(PoolId{0}, filter));
  EXPECT_FALSE(s.pool_passes(PoolId{1}, filter));  // thin reserve
  EXPECT_FALSE(s.pool_passes(PoolId{2}, filter));  // low TVL
  const MarketSnapshot filtered = s.filtered(filter);
  EXPECT_EQ(filtered.graph.pool_count(), 1u);
  EXPECT_EQ(filtered.graph.token_count(), 2u);  // only A, B remain
}

TEST(SnapshotTest, FilterPreservesPricesAndSymbols) {
  const MarketSnapshot filtered = tiny_snapshot().filtered(PoolFilter{});
  auto a = filtered.graph.find_token("A");
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(filtered.prices.price_unchecked(*a), 10.0);
  EXPECT_DOUBLE_EQ(filtered.graph.pool(PoolId{0}).reserve0(), 5000.0);
}

TEST(GeneratorTest, HitsConfiguredScale) {
  GeneratorConfig config;
  const MarketSnapshot s = generate_snapshot(config);
  EXPECT_EQ(s.graph.token_count(), 51u);
  EXPECT_EQ(s.graph.pool_count(), 208u);
  EXPECT_EQ(s.prices.size(), 51u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratorConfig config;
  const MarketSnapshot a = generate_snapshot(config);
  const MarketSnapshot b = generate_snapshot(config);
  ASSERT_EQ(a.graph.pool_count(), b.graph.pool_count());
  for (std::size_t i = 0; i < a.graph.pool_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.graph.pool(PoolId{(unsigned)i}).reserve0(),
                     b.graph.pool(PoolId{(unsigned)i}).reserve0());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig a_cfg;
  GeneratorConfig b_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  const MarketSnapshot a = generate_snapshot(a_cfg);
  const MarketSnapshot b = generate_snapshot(b_cfg);
  EXPECT_NE(a.graph.pool(PoolId{0}).reserve0(),
            b.graph.pool(PoolId{0}).reserve0());
}

TEST(GeneratorTest, MainPopulationPassesPaperFilter) {
  GeneratorConfig config;
  const MarketSnapshot s = generate_snapshot(config);
  const MarketSnapshot filtered = s.filtered(PoolFilter{});
  // The generator floors TVL/reserves above the filter, but CEX noise can
  // push a handful of pools below the $30k bar; the graph must stay
  // essentially intact.
  EXPECT_GE(filtered.graph.pool_count(), s.graph.pool_count() * 95 / 100);
}

TEST(GeneratorTest, JunkPoolsAreFilteredOut) {
  GeneratorConfig config;
  config.below_filter_pools = 20;
  const MarketSnapshot s = generate_snapshot(config);
  EXPECT_EQ(s.graph.pool_count(), 228u);
  const MarketSnapshot filtered = s.filtered(PoolFilter{});
  EXPECT_LE(filtered.graph.pool_count(), 208u);
}

TEST(GeneratorTest, ProducesArbitrageLoopsAtPaperScale) {
  GeneratorConfig config;
  const MarketSnapshot s = generate_snapshot(config).filtered(PoolFilter{});
  const auto cycles = graph::enumerate_fixed_length_cycles(s.graph, 3);
  const auto loops = graph::filter_arbitrage(s.graph, cycles);
  // Paper: 123 length-3 arbitrage loops. Synthetic market must land in
  // the same regime (dozens to a few hundred).
  EXPECT_GE(loops.size(), 50u);
  EXPECT_LE(loops.size(), 400u);
}

TEST(GeneratorTest, CexPricesTrackPoolPrices) {
  // The pool implied price of each pair should be near the CEX ratio
  // (within the configured noise).
  GeneratorConfig config;
  const MarketSnapshot s = generate_snapshot(config);
  for (const amm::AnyPool& pool : s.graph.pools()) {
    const double pool_ratio = pool.reserve1() / pool.reserve0();  // t0 per t1... price of t0 in t1
    const double cex_ratio = s.prices.price_unchecked(pool.token0()) /
                             s.prices.price_unchecked(pool.token1());
    EXPECT_NEAR(std::log(pool_ratio) - std::log(cex_ratio), 0.0, 0.25)
        << pool.to_string();
  }
}

TEST(GeneratorTest, InvalidConfigThrows) {
  GeneratorConfig config;
  config.hub_count = 1;
  EXPECT_THROW(generate_snapshot(config), PreconditionError);
  config = GeneratorConfig{};
  config.pool_count = 3;  // below mandatory topology
  EXPECT_THROW(generate_snapshot(config), PreconditionError);
  config = GeneratorConfig{};
  config.token_count = 5;
  config.pool_count = 100;  // more than C(5,2)
  EXPECT_THROW(generate_snapshot(config), PreconditionError);
}

class SnapshotIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("arb_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SnapshotIoTest, RoundTripExact) {
  GeneratorConfig config;
  config.token_count = 12;
  config.pool_count = 24;
  const MarketSnapshot original = generate_snapshot(config);
  ASSERT_TRUE(save_snapshot(original, dir_.string()).ok());
  auto loaded = load_snapshot(dir_.string());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->graph.token_count(), original.graph.token_count());
  ASSERT_EQ(loaded->graph.pool_count(), original.graph.pool_count());
  for (std::size_t i = 0; i < original.graph.pool_count(); ++i) {
    const auto& a = original.graph.pool(PoolId{(unsigned)i});
    const auto& b = loaded->graph.pool(PoolId{(unsigned)i});
    EXPECT_EQ(a.reserve0(), b.reserve0());  // exact: shortest round-trip
    EXPECT_EQ(a.reserve1(), b.reserve1());
    EXPECT_EQ(a.token0(), b.token0());
  }
  for (const TokenId token : original.graph.tokens()) {
    EXPECT_EQ(original.prices.price_unchecked(token),
              loaded->prices.price_unchecked(token));
    EXPECT_EQ(original.graph.symbol(token), loaded->graph.symbol(token));
  }
}

TEST_F(SnapshotIoTest, MissingDirectoryIsCreatedOnSave) {
  EXPECT_FALSE(load_snapshot((dir_ / "nope").string()).ok());
  MarketSnapshot s = tiny_snapshot();
  // save_snapshot creates missing directories recursively...
  const auto nested = dir_ / "deeply" / "nested" / "out";
  ASSERT_TRUE(save_snapshot(s, nested.string()).ok());
  EXPECT_TRUE(load_snapshot(nested.string()).ok());
  // ...but reports an error when the path cannot be a directory (a
  // regular file is in the way).
  FILE* f = fopen((dir_ / "blocked").string().c_str(), "w");
  fputs("x", f);
  fclose(f);
  const Status blocked = save_snapshot(s, (dir_ / "blocked").string());
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.error().code, ErrorCode::kIoError);
}

TEST_F(SnapshotIoTest, CorruptPoolRowFails) {
  const MarketSnapshot s = tiny_snapshot();
  ASSERT_TRUE(save_snapshot(s, dir_.string()).ok());
  // Token id out of range.
  FILE* f = fopen((dir_ / "pools.csv").string().c_str(), "w");
  fputs("pool_id,token0,token1,reserve0,reserve1,fee\n0,0,99,1,1,0.003\n", f);
  fclose(f);
  auto loaded = load_snapshot(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kParseError);
}

}  // namespace
}  // namespace arb::market
