#include "market/price_process.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "market/generator.hpp"
#include "sim/replay.hpp"

namespace arb::market {
namespace {

MarketSnapshot small_snapshot(std::uint64_t seed = 3) {
  GeneratorConfig config;
  config.token_count = 10;
  config.pool_count = 18;
  config.seed = seed;
  return generate_snapshot(config);
}

TEST(PriceProcessTest, FundamentalsInitializedFromCexQuotes) {
  const MarketSnapshot snapshot = small_snapshot();
  const PriceProcess process(snapshot, PriceProcessConfig{}, 1);
  for (const TokenId token : snapshot.graph.tokens()) {
    EXPECT_DOUBLE_EQ(process.fundamental(token),
                     snapshot.prices.price_unchecked(token));
  }
}

TEST(PriceProcessTest, StepPreservesConstantProduct) {
  MarketSnapshot snapshot = small_snapshot();
  std::vector<double> k_before;
  for (const amm::AnyPool& pool : snapshot.graph.pools()) {
    k_before.push_back(pool.cpmm().k());
  }
  PriceProcess process(snapshot, PriceProcessConfig{}, 2);
  process.step(snapshot);
  for (std::size_t i = 0; i < k_before.size(); ++i) {
    EXPECT_NEAR(snapshot.graph.pool(PoolId{(unsigned)i}).cpmm().k(),
                k_before[i], k_before[i] * 1e-9);
  }
}

TEST(PriceProcessTest, DriftlessGbmHasMatchingLogVolatility) {
  MarketSnapshot snapshot = small_snapshot();
  PriceProcessConfig config;
  config.volatility = 0.01;
  config.pool_tracking = 0.0;
  config.pool_noise = 0.0;
  config.cex_noise = 0.0;
  PriceProcess process(snapshot, config, 5);
  const TokenId token{0};
  StreamingStats log_returns;
  double previous = process.fundamental(token);
  for (int block = 0; block < 4000; ++block) {
    process.step(snapshot);
    const double current = process.fundamental(token);
    log_returns.add(std::log(current / previous));
    previous = current;
  }
  EXPECT_NEAR(log_returns.stddev(), 0.01, 0.001);
  EXPECT_NEAR(log_returns.mean(), 0.0, 0.001);
}

TEST(PriceProcessTest, PoolsTrackFundamentals) {
  MarketSnapshot snapshot = small_snapshot();
  PriceProcessConfig config;
  config.volatility = 0.0;   // freeze fundamentals
  config.pool_noise = 0.0;   // no idiosyncratic noise
  config.pool_tracking = 0.5;
  config.cex_noise = 0.0;
  PriceProcess process(snapshot, config, 6);
  // After many blocks of pure tracking, every pool's implied ratio must
  // converge to the fundamental ratio.
  for (int block = 0; block < 40; ++block) process.step(snapshot);
  for (const amm::AnyPool& pool : snapshot.graph.pools()) {
    const double fundamental_ratio =
        process.fundamental(pool.token0()) /
        process.fundamental(pool.token1());
    const double pool_ratio = pool.reserve1() / pool.reserve0();
    EXPECT_NEAR(std::log(pool_ratio / fundamental_ratio), 0.0, 1e-6)
        << pool.to_string();
  }
}

TEST(PriceProcessTest, CexQuotesFollowFundamentals) {
  MarketSnapshot snapshot = small_snapshot();
  PriceProcessConfig config;
  config.cex_noise = 0.0;
  PriceProcess process(snapshot, config, 7);
  process.step(snapshot);
  for (const TokenId token : snapshot.graph.tokens()) {
    EXPECT_DOUBLE_EQ(snapshot.prices.price_unchecked(token),
                     process.fundamental(token));
  }
}

TEST(PriceProcessTest, InvalidConfigRejected) {
  const MarketSnapshot snapshot = small_snapshot();
  PriceProcessConfig config;
  config.pool_tracking = 1.5;
  EXPECT_THROW(PriceProcess(snapshot, config, 1), PreconditionError);
  config = PriceProcessConfig{};
  config.volatility = -1.0;
  EXPECT_THROW(PriceProcess(snapshot, config, 1), PreconditionError);
}

TEST(PriceProcessReplayTest, ReplayRunsOnPriceProcess) {
  sim::ReplayConfig config;
  config.blocks = 12;
  config.use_price_process = true;
  config.price_process.volatility = 0.01;
  auto result = sim::run_replay(small_snapshot(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks.size(), 12u);
  // Volatile fundamentals with lagging pools keep producing loops.
  std::size_t with_loops = 0;
  for (const auto& row : result->blocks) {
    if (row.arbitrage_loops > 0) ++with_loops;
  }
  EXPECT_GT(with_loops, 3u);
  // Realized equals planned per block (plans execute on the same state).
  for (const auto& row : result->blocks) {
    EXPECT_NEAR(row.realized_usd, row.planned_usd,
                1e-6 * std::max(1.0, row.planned_usd));
  }
}

TEST(PriceProcessReplayTest, DeterministicForSeed) {
  sim::ReplayConfig config;
  config.blocks = 8;
  config.use_price_process = true;
  auto a = sim::run_replay(small_snapshot(), config);
  auto b = sim::run_replay(small_snapshot(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->total_realized_usd, b->total_realized_usd);
}

}  // namespace
}  // namespace arb::market
