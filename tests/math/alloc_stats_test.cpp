// Allocation instrumentation and the capacity-preserving contracts that
// the solver fast path relies on: moves steal buffers, shrinking resizes
// keep capacity, and the counter observes exactly the math-layer heap
// traffic.

#include "math/alloc_stats.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::math {
namespace {

TEST(AllocStatsTest, CounterObservesVectorAndMatrixAllocations) {
  reset_allocation_count();
  const Vector v(8, 1.0);
  EXPECT_EQ(allocation_count(), 1u);
  const Matrix m(4, 4);
  EXPECT_EQ(allocation_count(), 2u);
  const Vector copy = v;  // copies allocate their own buffer
  EXPECT_EQ(allocation_count(), 3u);
  EXPECT_EQ(copy.size(), 8u);
}

TEST(AllocStatsTest, VectorMoveStealsBufferWithoutAllocating) {
  Vector source(16, 3.0);
  reset_allocation_count();
  const Vector moved(std::move(source));
  EXPECT_EQ(allocation_count(), 0u);
  EXPECT_EQ(moved.size(), 16u);
  EXPECT_DOUBLE_EQ(moved[15], 3.0);
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move): documented

  Vector target;
  Vector other(4, 2.0);
  reset_allocation_count();
  target = std::move(other);
  EXPECT_EQ(allocation_count(), 0u);
  EXPECT_EQ(target.size(), 4u);
}

TEST(AllocStatsTest, MatrixMoveStealsBufferWithoutAllocating) {
  Matrix source(5, 5, 2.0);
  reset_allocation_count();
  const Matrix moved(std::move(source));
  EXPECT_EQ(allocation_count(), 0u);
  EXPECT_EQ(moved.rows(), 5u);
  EXPECT_EQ(moved.cols(), 5u);
  EXPECT_DOUBLE_EQ(moved(4, 4), 2.0);
  // NOLINTNEXTLINE(bugprone-use-after-move): moved-from state is specified
  EXPECT_EQ(source.rows(), 0u);
  EXPECT_EQ(source.cols(), 0u);
}

TEST(AllocStatsTest, ResizeWithinCapacityDoesNotAllocate) {
  Vector v(12);
  reset_allocation_count();
  v.resize(5);   // shrink: capacity kept
  v.resize(12);  // regrow within capacity
  v.assign(8, 7.0);
  EXPECT_EQ(allocation_count(), 0u);
  EXPECT_GE(v.capacity(), 12u);
  EXPECT_DOUBLE_EQ(v[7], 7.0);

  v.resize(v.capacity() + 1);  // genuine growth allocates
  EXPECT_EQ(allocation_count(), 1u);
}

TEST(AllocStatsTest, MatrixAssignWithinCapacityDoesNotAllocate) {
  Matrix m(6, 6);
  reset_allocation_count();
  m.assign(3, 4, 1.0);  // 12 <= 36: reshape in place
  m.assign(6, 6, 0.0);
  EXPECT_EQ(allocation_count(), 0u);
  m.assign(7, 7, 0.0);  // 49 > 36: grows
  EXPECT_EQ(allocation_count(), 1u);
}

TEST(AllocStatsTest, ReserveThenGrowIsAllocationFree) {
  Vector v;
  Matrix m;
  v.reserve(10);
  m.reserve(10, 10);
  reset_allocation_count();
  v.resize(10);
  m.assign(10, 10, 0.0);
  EXPECT_EQ(allocation_count(), 0u);
}

}  // namespace
}  // namespace arb::math
