#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "math/linear_solve.hpp"
#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::math {
namespace {

TEST(VectorTest, ConstructionAndIndexing) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 1.5);
  v[1] = -2.0;
  EXPECT_DOUBLE_EQ(v[1], -2.0);
  EXPECT_THROW((void)v[3], PreconditionError);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vector{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vector{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vector{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vector{2.0, 4.0}));
}

TEST(VectorTest, SizeMismatchThrows) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_THROW(a += b, PreconditionError);
  EXPECT_THROW((void)a.dot(b), PreconditionError);
}

TEST(VectorTest, DotAndNorms) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ((Vector{-7.0, 2.0}).norm_inf(), 7.0);
}

TEST(VectorTest, AllFinite) {
  EXPECT_TRUE((Vector{1.0, 2.0}).all_finite());
  Vector v{1.0, 2.0};
  v[0] = std::nan("");
  EXPECT_FALSE(v.all_finite());
  v[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(v.all_finite());
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  const Matrix d = Matrix::diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const Vector r = m.multiply(Vector{1.0, 1.0});
  EXPECT_EQ(r, (Vector{3.0, 7.0}));
}

TEST(MatrixTest, MultiplyMatrixAgainstHandComputed) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int k = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = k++;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = k++;
  const Matrix p = a.multiply(b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12] → p = [58 64; 139 154].
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m(0, 2) = 5.0;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

TEST(MatrixTest, OuterProductUpdate) {
  Matrix m(2, 2);
  m.add_outer_product(Vector{1.0, 2.0}, Vector{3.0, 4.0}, 2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 16.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.multiply(Vector{1.0, 2.0}), PreconditionError);
  EXPECT_THROW((void)m(2, 0), PreconditionError);
}

TEST(CholeskyTest, FactorOfKnownSpdMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  auto l = cholesky_factor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ((*l)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*l)(1, 0), 1.0);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-15);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky_factor(a).ok());
}

TEST(CholeskySolveTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  auto x = cholesky_solve(a, Vector{10.0, 9.0});
  ASSERT_TRUE(x.ok());
  const Vector residual = a.multiply(*x) - Vector{10.0, 9.0};
  EXPECT_LT(residual.norm_inf(), 1e-12);
}

TEST(LuSolveTest, SolvesNonSymmetric) {
  Matrix a(3, 3);
  const double data[3][3] = {{0.0, 2.0, 1.0}, {1.0, -1.0, 0.0}, {3.0, 0.0, 2.0}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = data[r][c];
  const Vector b{5.0, 1.0, 10.0};
  auto x = lu_solve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT((a.multiply(*x) - b).norm_inf(), 1e-12);
}

TEST(LuSolveTest, PivotsOnZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  auto x = lu_solve(a, Vector{2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 3.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(LuSolveTest, SingularFails) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_FALSE(lu_solve(a, Vector{1.0, 2.0}).ok());
}

TEST(RegularizedSolveTest, FallsBackOnSemidefinite) {
  Matrix a(2, 2);  // rank-1 PSD
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  auto x = regularized_spd_solve(a, Vector{1.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x->all_finite());
}

TEST(LinalgPropertyTest, RandomSpdSystemsSolveAccurately) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.index(8);
    // A = Bᵀ B + I is SPD.
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.normal();
    Matrix a = b.transposed().multiply(b);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
    Vector rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = rng.normal();

    auto x_chol = cholesky_solve(a, rhs);
    auto x_lu = lu_solve(a, rhs);
    ASSERT_TRUE(x_chol.ok());
    ASSERT_TRUE(x_lu.ok());
    EXPECT_LT((a.multiply(*x_chol) - rhs).norm_inf(), 1e-9);
    EXPECT_LT((*x_chol - *x_lu).norm_inf(), 1e-8);
  }
}

}  // namespace
}  // namespace arb::math
