// Tests for scalar_solve.hpp, derivative.hpp and dual.hpp.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "math/derivative.hpp"
#include "math/dual.hpp"
#include "math/scalar_solve.hpp"

namespace arb::math {
namespace {

TEST(BisectTest, FindsSqrtTwo) {
  auto root = bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->converged);
  EXPECT_NEAR(root->x, std::sqrt(2.0), 1e-10);
}

TEST(BisectTest, AcceptsRootAtEndpoint) {
  auto root = bisect_root([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(root.ok());
  EXPECT_DOUBLE_EQ(root->x, 0.0);
}

TEST(BisectTest, NoSignChangeFails) {
  auto root = bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.error().code, ErrorCode::kInvalidArgument);
}

TEST(BisectTest, DecreasingFunction) {
  auto root = bisect_root([](double x) { return 1.0 - x; }, 0.0, 3.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root->x, 1.0, 1e-10);
}

TEST(BrentTest, FindsRootFasterThanBisection) {
  int brent_calls = 0;
  int bisect_calls = 0;
  const auto fn = [](double x) { return std::cos(x) - x; };
  auto brent = brent_root([&](double x) { ++brent_calls; return fn(x); }, 0.0, 1.0);
  auto bisect = bisect_root([&](double x) { ++bisect_calls; return fn(x); }, 0.0, 1.0);
  ASSERT_TRUE(brent.ok());
  ASSERT_TRUE(bisect.ok());
  EXPECT_NEAR(brent->x, bisect->x, 1e-8);
  EXPECT_LT(brent_calls, bisect_calls);
}

TEST(BrentTest, HandlesSteepFunction) {
  auto root = brent_root([](double x) { return std::expm1(10.0 * (x - 0.3)); },
                         0.0, 1.0);
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root->x, 0.3, 1e-9);
}

TEST(BrentTest, NoSignChangeFails) {
  EXPECT_FALSE(brent_root([](double) { return 1.0; }, 0.0, 1.0).ok());
}

TEST(GoldenSectionTest, MaximizesParabola) {
  const auto report = golden_section_maximize(
      [](double x) { return -(x - 2.5) * (x - 2.5); }, 0.0, 10.0);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(report.x, 2.5, 1e-7);
}

TEST(GoldenSectionTest, MaximumAtBoundary) {
  const auto report =
      golden_section_maximize([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(report.x, 1.0, 1e-7);
}

TEST(ExpandBracketTest, FindsSignChange) {
  auto bracket = expand_bracket_right(
      [](double x) { return 100.0 - x; }, 0.0, 1.0, 1e9);
  ASSERT_TRUE(bracket.ok());
  EXPECT_LE(bracket->first, 100.0);
  EXPECT_GE(bracket->second, 100.0);
}

TEST(ExpandBracketTest, FailsBeyondLimit) {
  auto bracket =
      expand_bracket_right([](double) { return 1.0; }, 0.0, 1.0, 1e3);
  ASSERT_FALSE(bracket.ok());
  EXPECT_EQ(bracket.error().code, ErrorCode::kNumericFailure);
}

TEST(ScalarPropertyTest, BisectAndBrentAgreeOnRandomCubics) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const double r = rng.uniform(-5.0, 5.0);
    const double a = rng.uniform(0.5, 2.0);
    // f(x) = a(x - r)(x² + 1): single real root at r.
    const auto fn = [a, r](double x) { return a * (x - r) * (x * x + 1.0); };
    auto b1 = bisect_root(fn, -10.0, 10.0);
    auto b2 = brent_root(fn, -10.0, 10.0);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    EXPECT_NEAR(b1->x, r, 1e-8);
    EXPECT_NEAR(b2->x, r, 1e-8);
  }
}

TEST(DerivativeTest, CentralDifferenceOnPolynomial) {
  const auto fn = [](double x) { return x * x * x; };
  EXPECT_NEAR(central_derivative(fn, 2.0), 12.0, 1e-5);
  EXPECT_NEAR(central_second_derivative(fn, 2.0), 12.0, 1e-3);
}

TEST(DualTest, ArithmeticPropagatesDerivatives) {
  const Dual x = Dual::variable(3.0);
  const Dual y = x * x + Dual{2.0} * x + Dual{1.0};  // f = x²+2x+1, f' = 2x+2
  EXPECT_DOUBLE_EQ(y.value, 16.0);
  EXPECT_DOUBLE_EQ(y.deriv, 8.0);
}

TEST(DualTest, QuotientRule) {
  const Dual x = Dual::variable(2.0);
  const Dual y = Dual{1.0} / x;  // f' = -1/x²
  EXPECT_DOUBLE_EQ(y.value, 0.5);
  EXPECT_DOUBLE_EQ(y.deriv, -0.25);
}

TEST(DualTest, TranscendentalFunctions) {
  const Dual x = Dual::variable(4.0);
  EXPECT_DOUBLE_EQ(sqrt(x).value, 2.0);
  EXPECT_DOUBLE_EQ(sqrt(x).deriv, 0.25);
  EXPECT_DOUBLE_EQ(log(x).deriv, 0.25);
  EXPECT_DOUBLE_EQ(exp(Dual::variable(0.0)).deriv, 1.0);
}

TEST(DualTest, MatchesNumericDerivativeOnComposite) {
  const auto fn_dual = [](Dual x) {
    return sqrt(x * x + Dual{1.0}) / (x + Dual{2.0});
  };
  const auto fn = [&](double x) { return fn_dual(Dual{x}).value; };
  for (double x : {0.5, 1.0, 3.0, 10.0}) {
    const Dual d = fn_dual(Dual::variable(x));
    EXPECT_NEAR(d.deriv, central_derivative(fn, x), 1e-6) << "x=" << x;
  }
}

}  // namespace
}  // namespace arb::math
