// Combinatorial ground truth: on the complete graph K_n the number of
// simple cycles of each length has a closed formula, which pins the
// enumeration algorithms exactly.
//
//   undirected k-cycles in K_n:  C(n,k) · (k−1)! / 2     (k >= 3)
//   directed (both orientations): twice that.

#include <gtest/gtest.h>

#include "graph/cycle_enumeration.hpp"
#include "graph/johnson.hpp"

namespace arb::graph {
namespace {

TokenGraph make_complete(std::size_t n) {
  TokenGraph g;
  for (std::size_t i = 0; i < n; ++i) g.add_token("T" + std::to_string(i));
  const auto tokens = g.tokens();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_pool(tokens[i], tokens[j], 100.0 + static_cast<double>(i),
                 100.0 + static_cast<double>(j));
    }
  }
  return g;
}

std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::size_t result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

std::size_t factorial(std::size_t k) {
  std::size_t result = 1;
  for (std::size_t i = 2; i <= k; ++i) result *= i;
  return result;
}

/// Directed k-cycles of K_n (both orientations).
std::size_t expected_directed_cycles(std::size_t n, std::size_t k) {
  return binomial(n, k) * factorial(k - 1);  // = 2 · C(n,k)·(k−1)!/2
}

struct Params {
  std::size_t n;
  std::size_t k;
};

class CompleteGraphTest : public ::testing::TestWithParam<Params> {};

TEST_P(CompleteGraphTest, FixedLengthCountMatchesFormula) {
  const auto [n, k] = GetParam();
  const TokenGraph g = make_complete(n);
  EXPECT_EQ(enumerate_fixed_length_cycles(g, k).size(),
            expected_directed_cycles(n, k));
}

INSTANTIATE_TEST_SUITE_P(
    Counts, CompleteGraphTest,
    ::testing::Values(Params{4, 3}, Params{5, 3}, Params{6, 3}, Params{5, 4},
                      Params{6, 4}, Params{6, 5}, Params{7, 3}, Params{7, 6}));

TEST(CompleteGraphTotalsTest, JohnsonMatchesSummedFormula) {
  for (const std::size_t n : {4u, 5u, 6u}) {
    const TokenGraph g = make_complete(n);
    std::size_t expected = 0;
    for (std::size_t k = 3; k <= n; ++k) {
      expected += expected_directed_cycles(n, k);
    }
    const JohnsonResult johnson = enumerate_elementary_cycles(g);
    EXPECT_FALSE(johnson.truncated);
    EXPECT_EQ(johnson.cycles.size(), expected) << "n=" << n;
    EXPECT_EQ(enumerate_cycles_up_to(g, n).size(), expected) << "n=" << n;
  }
}

}  // namespace
}  // namespace arb::graph
