#include "graph/token_graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace arb::graph {
namespace {

TEST(TokenGraphTest, AddTokensAssignsDenseIds) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(g.token_count(), 2u);
  EXPECT_EQ(g.symbol(a), "A");
  EXPECT_EQ(g.symbol(b), "B");
}

TEST(TokenGraphTest, AddPoolWiresAdjacency) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const TokenId c = g.add_token("C");
  const PoolId ab = g.add_pool(a, b, 10.0, 20.0);
  const PoolId bc = g.add_pool(b, c, 30.0, 40.0);
  EXPECT_EQ(g.pool_count(), 2u);
  EXPECT_EQ(g.pools_of(a), (std::vector<PoolId>{ab}));
  EXPECT_EQ(g.pools_of(b), (std::vector<PoolId>{ab, bc}));
  EXPECT_EQ(g.pools_of(c), (std::vector<PoolId>{bc}));
}

TEST(TokenGraphTest, PoolLookup) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const PoolId id = g.add_pool(a, b, 10.0, 20.0, 0.001);
  const amm::AnyPool& pool = g.pool(id);
  EXPECT_EQ(pool.id(), id);
  EXPECT_EQ(pool.kind(), amm::PoolKind::kCpmm);
  EXPECT_DOUBLE_EQ(pool.fee(), 0.001);
  EXPECT_THROW((void)g.pool(PoolId{5}), PreconditionError);
}

TEST(TokenGraphTest, MutablePoolAllowsStateUpdates) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const PoolId id = g.add_pool(a, b, 10.0, 20.0);
  ASSERT_TRUE(g.mutable_pool(id).apply_swap(a, 1.0).ok());
  EXPECT_GT(g.pool(id).reserve0(), 10.0);
}

TEST(TokenGraphTest, UnknownTokenInPoolThrows) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  EXPECT_THROW(g.add_pool(a, TokenId{7}, 1.0, 1.0), PreconditionError);
}

TEST(TokenGraphTest, ParallelPoolsAllowed) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  g.add_pool(a, b, 10.0, 20.0);
  g.add_pool(a, b, 11.0, 19.0);
  EXPECT_EQ(g.pools_of(a).size(), 2u);
}

TEST(TokenGraphTest, TokensListsAll) {
  TokenGraph g;
  g.add_token("A");
  g.add_token("B");
  const auto tokens = g.tokens();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].value(), 1u);
}

TEST(TokenGraphTest, FindTokenBySymbol) {
  TokenGraph g;
  g.add_token("WETH");
  const TokenId usdc = g.add_token("USDC");
  auto found = g.find_token("USDC");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, usdc);
  EXPECT_FALSE(g.find_token("NOPE").ok());
}

}  // namespace
}  // namespace arb::graph
