#include "graph/cycle.hpp"

#include <gtest/gtest.h>

namespace arb::graph {
namespace {

struct TriangleFixture {
  TokenGraph g;
  TokenId x, y, z;
  PoolId xy, yz, zx;

  TriangleFixture() {
    x = g.add_token("X");
    y = g.add_token("Y");
    z = g.add_token("Z");
    xy = g.add_pool(x, y, 100.0, 200.0);
    yz = g.add_pool(y, z, 300.0, 200.0);
    zx = g.add_pool(z, x, 200.0, 400.0);
  }

  Cycle make() const {
    return *Cycle::create(g, {x, y, z}, {xy, yz, zx});
  }
};

TEST(CycleTest, CreateValidCycle) {
  const TriangleFixture f;
  const Cycle c = f.make();
  EXPECT_EQ(c.length(), 3u);
  EXPECT_EQ(c.tokens()[0], f.x);
}

TEST(CycleTest, CreateRejectsBrokenChains) {
  const TriangleFixture f;
  // Wrong pool order: xy cannot carry y -> z.
  EXPECT_FALSE(Cycle::create(f.g, {f.x, f.y, f.z}, {f.xy, f.zx, f.yz}).ok());
  // Repeated token.
  EXPECT_FALSE(Cycle::create(f.g, {f.x, f.y, f.x}, {f.xy, f.yz, f.zx}).ok());
  // Repeated pool.
  EXPECT_FALSE(Cycle::create(f.g, {f.x, f.y, f.z}, {f.xy, f.xy, f.zx}).ok());
  // Too short.
  EXPECT_FALSE(Cycle::create(f.g, {f.x}, {f.xy}).ok());
  // Count mismatch.
  EXPECT_FALSE(Cycle::create(f.g, {f.x, f.y}, {f.xy}).ok());
}

TEST(CycleTest, RotationPreservesLoop) {
  const TriangleFixture f;
  const Cycle c = f.make();
  const Cycle r = c.rotated(1);
  EXPECT_EQ(r.tokens()[0], f.y);
  EXPECT_EQ(r.pools()[0], f.yz);
  EXPECT_EQ(r.tokens()[2], f.x);
  // Rotation by length is identity.
  const Cycle full = c.rotated(3);
  EXPECT_EQ(full.tokens(), c.tokens());
}

TEST(CycleTest, ReverseWalksBackwards) {
  const TriangleFixture f;
  const Cycle rev = f.make().reversed();
  EXPECT_EQ(rev.tokens(), (std::vector<TokenId>{f.x, f.z, f.y}));
  EXPECT_EQ(rev.pools(), (std::vector<PoolId>{f.zx, f.yz, f.xy}));
  // Reversing twice restores the original.
  const Cycle twice = rev.reversed();
  EXPECT_EQ(twice.tokens(), f.make().tokens());
  EXPECT_EQ(twice.pools(), f.make().pools());
}

TEST(CycleTest, RotationKeyIdentifiesRotations) {
  const TriangleFixture f;
  const Cycle c = f.make();
  EXPECT_EQ(c.rotation_key(), c.rotated(1).rotation_key());
  EXPECT_EQ(c.rotation_key(), c.rotated(2).rotation_key());
  EXPECT_NE(c.rotation_key(), c.reversed().rotation_key());
}

TEST(CycleTest, LoopKeyIdentifiesReflectionsToo) {
  const TriangleFixture f;
  const Cycle c = f.make();
  EXPECT_EQ(c.loop_key(), c.reversed().loop_key());
  EXPECT_EQ(c.loop_key(), c.rotated(2).reversed().loop_key());
}

TEST(CycleTest, PriceProductMatchesPaperExample) {
  const TriangleFixture f;
  // (1-λ)³ · 2 · (2/3) · 2 = 8/3 · 0.997³.
  EXPECT_NEAR(f.make().price_product(f.g),
              8.0 / 3.0 * 0.997 * 0.997 * 0.997, 1e-12);
}

TEST(CycleTest, ForwardAndBackwardProductsMultiplyToGamma2n) {
  const TriangleFixture f;
  const Cycle c = f.make();
  const double product =
      c.price_product(f.g) * c.reversed().price_product(f.g);
  EXPECT_NEAR(product, std::pow(0.997, 6.0), 1e-12);
}

TEST(CycleTest, PathStartsAtRequestedOffset) {
  const TriangleFixture f;
  const Cycle c = f.make();
  EXPECT_EQ(c.path(f.g, 0).start_token(), f.x);
  EXPECT_EQ(c.path(f.g, 1).start_token(), f.y);
  EXPECT_EQ(c.path(f.g, 2).start_token(), f.z);
  EXPECT_TRUE(c.path(f.g, 1).is_cycle());
}

TEST(CycleTest, DescribeUsesSymbols) {
  const TriangleFixture f;
  EXPECT_EQ(f.make().describe(f.g), "X -> Y -> Z -> X");
}

TEST(CycleTest, TwoTokenCycleThroughParallelPools) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const PoolId p1 = g.add_pool(a, b, 100.0, 200.0);
  const PoolId p2 = g.add_pool(a, b, 300.0, 150.0);
  auto cycle = Cycle::create(g, {a, b}, {p1, p2});
  ASSERT_TRUE(cycle.ok());
  EXPECT_EQ(cycle->length(), 2u);
  // Mispriced parallel pools: one orientation profitable.
  const double fwd = cycle->price_product(g);
  const double bwd = cycle->reversed().price_product(g);
  EXPECT_GT(std::max(fwd, bwd), 1.0);
  EXPECT_LT(std::min(fwd, bwd), 1.0);
}

}  // namespace
}  // namespace arb::graph
