#include "graph/cycle_enumeration.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace arb::graph {
namespace {

/// K4: complete graph on 4 tokens with mildly imbalanced pools.
TokenGraph make_k4() {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const TokenId c = g.add_token("C");
  const TokenId d = g.add_token("D");
  g.add_pool(a, b, 100.0, 110.0);
  g.add_pool(a, c, 100.0, 120.0);
  g.add_pool(a, d, 100.0, 130.0);
  g.add_pool(b, c, 100.0, 105.0);
  g.add_pool(b, d, 100.0, 115.0);
  g.add_pool(c, d, 100.0, 108.0);
  return g;
}

TEST(EnumerationTest, TriangleCountOnK4) {
  const TokenGraph g = make_k4();
  const auto cycles = enumerate_fixed_length_cycles(g, 3);
  // K4 has C(4,3) = 4 triangles, each in two orientations.
  EXPECT_EQ(cycles.size(), 8u);
  // All distinct up to rotation.
  std::set<std::string> keys;
  for (const Cycle& c : cycles) keys.insert(c.rotation_key());
  EXPECT_EQ(keys.size(), 8u);
  // Exactly 4 distinct loops up to reflection.
  std::set<std::string> loop_keys;
  for (const Cycle& c : cycles) loop_keys.insert(c.loop_key());
  EXPECT_EQ(loop_keys.size(), 4u);
}

TEST(EnumerationTest, Length4CountOnK4) {
  const TokenGraph g = make_k4();
  const auto cycles = enumerate_fixed_length_cycles(g, 4);
  // K4 has 3 Hamiltonian 4-cycles, two orientations each.
  EXPECT_EQ(cycles.size(), 6u);
}

TEST(EnumerationTest, NoCyclesInTree) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const TokenId c = g.add_token("C");
  g.add_pool(a, b, 10.0, 10.0);
  g.add_pool(a, c, 10.0, 10.0);
  EXPECT_TRUE(enumerate_fixed_length_cycles(g, 3).empty());
  EXPECT_TRUE(enumerate_cycles_up_to(g, 5).empty());
}

TEST(EnumerationTest, ParallelPoolsMakeTwoCycles) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  g.add_pool(a, b, 100.0, 200.0);
  g.add_pool(a, b, 300.0, 150.0);
  const auto cycles = enumerate_fixed_length_cycles(g, 2);
  // Two orientations of the one 2-loop (p1 then p2, or p2 then p1).
  EXPECT_EQ(cycles.size(), 2u);
  for (const Cycle& c : cycles) {
    EXPECT_EQ(c.length(), 2u);
    EXPECT_NE(c.pools()[0], c.pools()[1]);
  }
}

TEST(EnumerationTest, SinglePoolYieldsNoTwoCycle) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  g.add_pool(a, b, 100.0, 200.0);
  EXPECT_TRUE(enumerate_fixed_length_cycles(g, 2).empty());
}

TEST(EnumerationTest, UpToCollectsAllLengths) {
  const TokenGraph g = make_k4();
  const auto all = enumerate_cycles_up_to(g, 4);
  EXPECT_EQ(all.size(), 8u + 6u);  // triangles + 4-cycles (no 2-cycles)
}

TEST(EnumerationTest, EveryEnumeratedCycleIsValid) {
  const TokenGraph g = make_k4();
  for (const Cycle& c : enumerate_cycles_up_to(g, 4)) {
    // Re-validating through the factory must succeed.
    auto check = Cycle::create(
        g, std::vector<TokenId>(c.tokens()), std::vector<PoolId>(c.pools()));
    EXPECT_TRUE(check.ok());
  }
}

TEST(FilterArbitrageTest, KeepsAtMostOneOrientationPerLoop) {
  const TokenGraph g = make_k4();
  const auto cycles = enumerate_fixed_length_cycles(g, 3);
  const auto arbs = filter_arbitrage(g, cycles);
  std::set<std::string> loop_keys;
  for (const Cycle& c : arbs) {
    EXPECT_GT(c.price_product(g), 1.0);
    EXPECT_TRUE(loop_keys.insert(c.loop_key()).second)
        << "both orientations survived";
  }
}

TEST(FilterArbitrageTest, MarginExcludesThinLoops) {
  const TokenGraph g = make_k4();
  const auto cycles = enumerate_fixed_length_cycles(g, 3);
  const auto all = filter_arbitrage(g, cycles, 0.0);
  const auto strict = filter_arbitrage(g, cycles, 10.0);  // impossible bar
  EXPECT_TRUE(strict.empty());
  EXPECT_GE(all.size(), strict.size());
}

TEST(NegativeCycleTest, FindsArbitrageWhenPresent) {
  const TokenGraph g = make_k4();
  // K4 with these imbalances definitely has an arbitrage triangle.
  ASSERT_FALSE(filter_arbitrage(g, enumerate_cycles_up_to(g, 4)).empty());
  const auto cycle = find_negative_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GT(cycle->price_product(g), 1.0);
}

TEST(NegativeCycleTest, SilentOnBalancedMarket) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const TokenId c = g.add_token("C");
  // Consistent prices: A=1, B=2, C=4 in every pool → no arbitrage
  // (fees make every loop lose).
  g.add_pool(a, b, 200.0, 100.0);
  g.add_pool(b, c, 100.0, 50.0);
  g.add_pool(c, a, 50.0, 200.0);
  EXPECT_TRUE(filter_arbitrage(g, enumerate_cycles_up_to(g, 3)).empty());
  EXPECT_FALSE(find_negative_cycle(g).has_value());
}

TEST(NegativeCycleTest, EmptyGraph) {
  TokenGraph g;
  EXPECT_FALSE(find_negative_cycle(g).has_value());
}

TEST(NegativeCyclePropertyTest, AgreementWithEnumerationOnRandomMarkets) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    TokenGraph g;
    const std::size_t n = 4 + rng.index(5);
    for (std::size_t i = 0; i < n; ++i) g.add_token("T" + std::to_string(i));
    // Random connected-ish graph.
    const auto tokens = g.tokens();
    for (std::size_t i = 1; i < n; ++i) {
      g.add_pool(tokens[i], tokens[rng.index(i)], rng.uniform(50.0, 500.0),
                 rng.uniform(50.0, 500.0));
    }
    for (std::size_t extra = 0; extra < n; ++extra) {
      const std::size_t a = rng.index(n);
      const std::size_t b = rng.index(n);
      if (a == b) continue;
      g.add_pool(tokens[a], tokens[b], rng.uniform(50.0, 500.0),
                 rng.uniform(50.0, 500.0));
    }
    const bool enumeration_finds =
        !filter_arbitrage(g, enumerate_cycles_up_to(g, n)).empty();
    const bool bfm_finds = find_negative_cycle(g).has_value();
    // BFM must never hallucinate; it may only miss loops longer than the
    // enumeration bound (impossible here since bound = n).
    EXPECT_EQ(bfm_finds, enumeration_finds) << "trial " << trial;
  }
}

}  // namespace
}  // namespace arb::graph
