#include "graph/johnson.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/cycle_enumeration.hpp"

namespace arb::graph {
namespace {

TokenGraph make_k4() {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  const TokenId c = g.add_token("C");
  const TokenId d = g.add_token("D");
  g.add_pool(a, b, 100.0, 110.0);
  g.add_pool(a, c, 100.0, 120.0);
  g.add_pool(a, d, 100.0, 130.0);
  g.add_pool(b, c, 100.0, 105.0);
  g.add_pool(b, d, 100.0, 115.0);
  g.add_pool(c, d, 100.0, 108.0);
  return g;
}

TEST(JohnsonTest, K4CircuitCount) {
  const TokenGraph g = make_k4();
  const JohnsonResult result = enumerate_elementary_cycles(g);
  EXPECT_FALSE(result.truncated);
  // K4: 4 triangles + 3 Hamiltonian 4-cycles, each in two orientations.
  EXPECT_EQ(result.cycles.size(), 14u);
}

TEST(JohnsonTest, MatchesBoundedDfsOnK4) {
  const TokenGraph g = make_k4();
  const auto dfs = enumerate_cycles_up_to(g, 4);
  const JohnsonResult johnson = enumerate_elementary_cycles(g);
  std::set<std::string> dfs_keys;
  std::set<std::string> johnson_keys;
  for (const Cycle& c : dfs) dfs_keys.insert(c.rotation_key());
  for (const Cycle& c : johnson.cycles) {
    johnson_keys.insert(c.rotation_key());
  }
  EXPECT_EQ(dfs_keys, johnson_keys);
}

TEST(JohnsonTest, EmptyAndTreeGraphs) {
  TokenGraph empty;
  EXPECT_TRUE(enumerate_elementary_cycles(empty).cycles.empty());

  TokenGraph tree;
  const TokenId a = tree.add_token("A");
  const TokenId b = tree.add_token("B");
  const TokenId c = tree.add_token("C");
  tree.add_pool(a, b, 10.0, 10.0);
  tree.add_pool(b, c, 10.0, 10.0);
  EXPECT_TRUE(enumerate_elementary_cycles(tree).cycles.empty());
}

TEST(JohnsonTest, SinglePoolHasNoCircuit) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  g.add_pool(a, b, 10.0, 10.0);
  // The only directed circuit is the degenerate same-pool 2-cycle,
  // which must be excluded.
  EXPECT_TRUE(enumerate_elementary_cycles(g).cycles.empty());
}

TEST(JohnsonTest, ParallelPools) {
  TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  g.add_pool(a, b, 100.0, 200.0);
  g.add_pool(a, b, 300.0, 150.0);
  const JohnsonResult result = enumerate_elementary_cycles(g);
  EXPECT_EQ(result.cycles.size(), 2u);  // one loop, two orientations
}

TEST(JohnsonTest, CapTruncates) {
  const TokenGraph g = make_k4();
  const JohnsonResult result = enumerate_elementary_cycles(g, 5);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.cycles.size(), 5u);
  EXPECT_THROW(enumerate_elementary_cycles(g, 0), PreconditionError);
}

TEST(JohnsonTest, AllCyclesValidAndRotationCanonical) {
  const TokenGraph g = make_k4();
  for (const Cycle& c : enumerate_elementary_cycles(g).cycles) {
    auto check = Cycle::create(g, std::vector<TokenId>(c.tokens()),
                               std::vector<PoolId>(c.pools()));
    EXPECT_TRUE(check.ok());
    // Anchored at the smallest token id.
    for (const TokenId t : c.tokens()) {
      EXPECT_LE(c.tokens().front(), t);
    }
  }
}

TEST(JohnsonPropertyTest, MatchesBoundedDfsOnRandomGraphs) {
  Rng rng(71);
  for (int trial = 0; trial < 20; ++trial) {
    TokenGraph g;
    const std::size_t n = 4 + rng.index(4);
    for (std::size_t i = 0; i < n; ++i) g.add_token("T" + std::to_string(i));
    const auto tokens = g.tokens();
    const std::size_t extra = n + rng.index(n);
    for (std::size_t e = 0; e < extra; ++e) {
      const std::size_t a = rng.index(n);
      const std::size_t b = rng.index(n);
      if (a == b) continue;
      g.add_pool(tokens[a], tokens[b], rng.uniform(50.0, 500.0),
                 rng.uniform(50.0, 500.0));
    }
    std::set<std::string> dfs_keys;
    for (const Cycle& c : enumerate_cycles_up_to(g, n)) {
      dfs_keys.insert(c.rotation_key());
    }
    std::set<std::string> johnson_keys;
    const JohnsonResult johnson = enumerate_elementary_cycles(g);
    EXPECT_FALSE(johnson.truncated);
    for (const Cycle& c : johnson.cycles) {
      johnson_keys.insert(c.rotation_key());
    }
    EXPECT_EQ(dfs_keys, johnson_keys) << "trial " << trial;
  }
}

}  // namespace
}  // namespace arb::graph
