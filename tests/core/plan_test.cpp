// Tests for plan.hpp and comparison.hpp.
#include <gtest/gtest.h>

#include "core/comparison.hpp"
#include "core/plan.hpp"
#include "market/generator.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::Section5Market;

TEST(PlanTest, SingleStartPlanChainsAmounts) {
  const Section5Market m;
  auto outcome = evaluate_max_max(m.graph, m.prices, m.loop());
  ASSERT_TRUE(outcome.ok());
  auto plan = plan_from_single_start(m.graph, m.loop(), *outcome);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps.size(), 3u);
  EXPECT_EQ(plan->steps[0].token_in, outcome->start_token);
  for (std::size_t i = 0; i + 1 < 3; ++i) {
    EXPECT_EQ(plan->steps[i].token_out, plan->steps[i + 1].token_in);
    EXPECT_DOUBLE_EQ(plan->steps[i].amount_out,
                     plan->steps[i + 1].amount_in);
  }
  // Loop closes: last output token = start, amounts net to the profit.
  EXPECT_EQ(plan->steps[2].token_out, outcome->start_token);
  EXPECT_NEAR(plan->steps[2].amount_out - plan->steps[0].amount_in,
              outcome->profits[0].amount, 1e-9);
}

TEST(PlanTest, SingleStartUpfrontIsTheInput) {
  const Section5Market m;
  auto outcome = evaluate_max_max(m.graph, m.prices, m.loop());
  auto plan = plan_from_single_start(m.graph, m.loop(), *outcome);
  ASSERT_TRUE(plan.ok());
  const auto upfront = plan->required_upfront();
  ASSERT_EQ(upfront.size(), 1u);
  EXPECT_EQ(upfront[0].token, outcome->start_token);
  EXPECT_NEAR(upfront[0].amount, outcome->input, 1e-12);
}

TEST(PlanTest, ConvexNeedsMoreInputThanTraditionalSameToken) {
  // The paper notes the Convex strategy "needs to input more tokens
  // compared to the MaxMax strategy": its X-hop input (31.3) exceeds the
  // traditional start-X optimal input (27.0).
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(solution.ok());
  auto traditional = evaluate_traditional(m.graph, m.prices, m.loop(), 0);
  ASSERT_TRUE(traditional.ok());
  EXPECT_GT(solution->inputs[0], traditional->input);

  // Executed in loop order starting at X, only the first hop's input
  // must be borrowed: every later hop is funded by its predecessor
  // (retentions are non-negative).
  auto plan = plan_from_convex(m.graph, m.loop(), *solution);
  ASSERT_TRUE(plan.ok());
  const auto upfront = plan->required_upfront();
  ASSERT_EQ(upfront.size(), 1u);
  EXPECT_EQ(upfront[0].token, m.x);
  EXPECT_NEAR(upfront[0].amount, solution->inputs[0], 1e-9);
}

TEST(PlanTest, WrongStartTokenFails) {
  const Section5Market m;
  auto outcome = evaluate_max_max(m.graph, m.prices, m.loop());
  outcome->start_token = TokenId{99};
  auto plan = plan_from_single_start(m.graph, m.loop(), *outcome);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, ErrorCode::kInvalidArgument);
}

TEST(PlanTest, ConvexLengthMismatchFails) {
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  solution->inputs.pop_back();
  auto plan = plan_from_convex(m.graph, m.loop(), *solution);
  EXPECT_FALSE(plan.ok());
}

TEST(PlanTest, OverpromisingConvexSolutionRejected) {
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  solution->outputs[0] *= 2.0;  // promise double the feasible output
  auto plan = plan_from_convex(m.graph, m.loop(), *solution);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.error().code, ErrorCode::kInvariantViolated);
}

TEST(PlanTest, DescribeMentionsSymbolsAndProfit) {
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  auto plan = plan_from_convex(m.graph, m.loop(), *solution);
  const std::string text = plan->describe(m.graph);
  EXPECT_NE(text.find("X"), std::string::npos);
  EXPECT_NE(text.find("expected profit"), std::string::npos);
}

TEST(ComparisonTest, RunsAllStrategiesOnSectionFive) {
  const Section5Market m;
  auto rows = compare_strategies(m.graph, m.prices, {m.loop()});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const LoopComparison& row = rows->front();
  EXPECT_EQ(row.traditional.size(), 3u);
  EXPECT_NEAR(row.max_max.monetized_usd, 205.6, 0.5);
  EXPECT_NEAR(row.convex.outcome.monetized_usd, 206.1, 0.3);
  EXPECT_GE(row.convex.outcome.monetized_usd, row.max_max.monetized_usd);
  EXPECT_GE(row.max_max.monetized_usd, row.max_price.monetized_usd);
}

TEST(MarketStudyTest, EndToEndOnSyntheticMarket) {
  market::GeneratorConfig config;
  config.token_count = 20;
  config.pool_count = 45;
  const auto snapshot = market::generate_snapshot(config);
  auto study = run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  EXPECT_GT(study->loops.size(), 0u);
  for (const LoopComparison& row : study->loops) {
    EXPECT_EQ(row.cycle.length(), 3u);
    EXPECT_GT(row.cycle.price_product(study->market.graph), 1.0);
    // The paper's ordering holds on every loop.
    for (const StrategyOutcome& t : row.traditional) {
      EXPECT_LE(t.monetized_usd, row.max_max.monetized_usd + 1e-9);
    }
    EXPECT_LE(row.max_price.monetized_usd,
              row.max_max.monetized_usd + 1e-9);
    EXPECT_GE(row.convex.outcome.monetized_usd,
              row.max_max.monetized_usd - 1e-6);
  }
}

TEST(MarketStudyTest, FilterShrinksMarket) {
  market::GeneratorConfig config;
  config.token_count = 20;
  config.pool_count = 45;
  config.below_filter_pools = 10;
  const auto snapshot = market::generate_snapshot(config);
  auto study = run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  EXPECT_LE(study->market.graph.pool_count(), 45u);
}

}  // namespace
}  // namespace arb::core
