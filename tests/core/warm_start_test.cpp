// Differential validation of warm-started barrier solves: across
// thousands of randomized reserve perturbations, a solve that resumes
// from the previous optimum must agree with a cold solve of the same
// market state. Warm-starting is a performance path only — it must never
// change what the solver finds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/convex.hpp"
#include "math/alloc_stats.hpp"
#include "optim/workspace.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::Section5Market;

/// Applies a bounded multiplicative shock to every pool of the Section V
/// market (relative size up to `magnitude` per reserve).
void perturb(Section5Market& m, std::mt19937_64& rng, double magnitude) {
  std::uniform_real_distribution<double> shock(1.0 - magnitude,
                                               1.0 + magnitude);
  for (std::size_t p = 0; p < m.graph.pool_count(); ++p) {
    const auto& pool = m.graph.pool(PoolId{static_cast<std::uint32_t>(p)});
    ASSERT_TRUE(m.graph
                    .set_pool_reserves(PoolId{static_cast<std::uint32_t>(p)},
                                       pool.reserve0() * shock(rng),
                                       pool.reserve1() * shock(rng))
                    .ok());
  }
}

TEST(WarmStartTest, WarmAgreesWithColdAcrossPerturbationStream) {
  Section5Market m;
  const auto loop = m.loop();

  ConvexOptions options;
  ConvexContext warm_ctx;
  optim::WarmStart slot;
  warm_ctx.warm = &slot;

  std::mt19937_64 rng(7);
  int hits = 0;
  int solves = 0;
  for (int event = 0; event < 1200; ++event) {
    // Mostly small reserve moves (the streaming steady state) with an
    // occasional large shock that should invalidate the warm iterate.
    const double magnitude = event % 50 == 49 ? 0.30 : 0.02;
    perturb(m, rng, magnitude);

    auto warm = solve_convex(m.graph, m.prices, loop, options, warm_ctx);
    ASSERT_TRUE(warm.ok()) << "event " << event;

    ConvexContext cold_ctx;  // no warm slot: always cold
    auto cold = solve_convex(m.graph, m.prices, loop, options, cold_ctx);
    ASSERT_TRUE(cold.ok()) << "event " << event;
    EXPECT_FALSE(cold_ctx.warm_hit);

    const double scale =
        std::max(1.0, std::abs(cold->outcome.monetized_usd));
    EXPECT_NEAR(warm->outcome.monetized_usd, cold->outcome.monetized_usd,
                1e-6 * scale)
        << "event " << event;
    ++solves;
    if (warm_ctx.warm_hit) ++hits;
  }
  // The stream of small perturbations must actually exercise the warm
  // path, not silently fall back to cold every time.
  EXPECT_GT(hits, solves / 2) << hits << "/" << solves;
}

TEST(WarmStartTest, InvalidSlotIsEquivalentToCold) {
  const Section5Market m;
  ConvexOptions options;

  ConvexContext plain;
  auto reference = solve_convex(m.graph, m.prices, m.loop(), options, plain);
  ASSERT_TRUE(reference.ok());

  ConvexContext ctx;
  optim::WarmStart slot;  // valid == false
  ctx.warm = &slot;
  auto solved = solve_convex(m.graph, m.prices, m.loop(), options, ctx);
  ASSERT_TRUE(solved.ok());
  EXPECT_FALSE(ctx.warm_hit);
  // Identical arithmetic path: bit-equal results.
  EXPECT_EQ(solved->outcome.monetized_usd, reference->outcome.monetized_usd);
  // The solve refreshes the slot for next time.
  EXPECT_TRUE(slot.valid);
  EXPECT_GT(slot.t, 0.0);
}

TEST(WarmStartTest, SlotSurvivesProfitlessVisit) {
  Section5Market m;
  ConvexOptions options;
  ConvexContext ctx;
  optim::WarmStart slot;
  ctx.warm = &slot;

  auto first = solve_convex(m.graph, m.prices, m.loop(), options, ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(slot.valid);
  const double remembered_t = slot.t;

  // Flip the XY pool so hard the loop loses money in this orientation.
  // The price-product gate zeroes the solve without touching the slot:
  // profitless visits used to clear it, which made every flicker around
  // the profitability boundary pay a cold restart when the loop came
  // back (the live warm-hit-rate leak).
  const auto& xy = m.graph.pool(m.xy);
  const double r0 = xy.reserve0();
  const double r1 = xy.reserve1();
  ASSERT_TRUE(m.graph.set_pool_reserves(m.xy, 10000.0, 2.0).ok());
  auto second = solve_convex(m.graph, m.prices, m.loop(), options, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->outcome.monetized_usd, 0.0);
  EXPECT_FALSE(ctx.warm_hit);
  EXPECT_TRUE(slot.valid);
  EXPECT_EQ(slot.t, remembered_t);

  // When profitability returns to the original state, the kept slot
  // warm-starts and agrees with a cold solve of the same state.
  ASSERT_TRUE(m.graph.set_pool_reserves(m.xy, r0, r1).ok());
  auto third = solve_convex(m.graph, m.prices, m.loop(), options, ctx);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(ctx.warm_hit);
  const double scale = std::max(1.0, std::abs(first->outcome.monetized_usd));
  EXPECT_NEAR(third->outcome.monetized_usd, first->outcome.monetized_usd,
              1e-6 * scale);
}

TEST(WarmStartTest, SteadyStateSolvesAreAllocationFree) {
  Section5Market m;
  ConvexOptions options;
  // Dual refinement rebuilds per-constraint gradients on the heap; the
  // documented hot-path setting turns it off (the streaming runtime only
  // consumes the primal optimum).
  options.barrier.refine_duals = false;
  ConvexContext ctx;
  optim::WarmStart slot;
  ctx.warm = &slot;

  std::mt19937_64 rng(11);
  // Grow every buffer: a few solves across perturbed states.
  for (int i = 0; i < 5; ++i) {
    perturb(m, rng, 0.02);
    ASSERT_TRUE(solve_convex(m.graph, m.prices, m.loop(), options, ctx).ok());
  }

  // A warm miss legitimately rebuilds its cold starting point on the
  // heap, so the zero-allocation contract is asserted per warm-hit solve
  // (the overwhelming majority under small perturbations).
  int hits = 0;
  for (int i = 0; i < 50; ++i) {
    perturb(m, rng, 0.02);
    math::reset_allocation_count();
    auto solved = solve_convex(m.graph, m.prices, m.loop(), options, ctx);
    ASSERT_TRUE(solved.ok());
    if (ctx.warm_hit) {
      ++hits;
      EXPECT_EQ(math::allocation_count(), 0u) << "event " << i;
    }
  }
  EXPECT_GT(hits, 25);
}

}  // namespace
}  // namespace arb::core
