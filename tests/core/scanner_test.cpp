#include "core/scanner.hpp"

#include <gtest/gtest.h>

#include "market/generator.hpp"
#include "sim/engine.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::NoArbMarket;
using testing::Section5Market;

TEST(ScannerTest, FindsTheSectionFiveLoop) {
  const Section5Market m;
  ScannerConfig config;
  config.loop_lengths = {3};
  const auto opportunities = scan_market(m.graph, m.prices, config).value();
  ASSERT_EQ(opportunities.size(), 1u);
  const Opportunity& best = opportunities.front();
  EXPECT_NEAR(best.net_profit_usd, 205.6, 0.5);  // MaxMax default
  EXPECT_EQ(best.plan.steps.size(), 3u);
  EXPECT_EQ(best.diagnostics.length, 3u);
  EXPECT_GT(best.diagnostics.price_product, 1.0);
}

TEST(ScannerTest, EmptyOnNoArbMarket) {
  const NoArbMarket m;
  EXPECT_TRUE(scan_market(m.graph, m.prices).value().empty());
}

TEST(ScannerTest, SortedByNetProfitDescending) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const auto snapshot = market::generate_snapshot(gen);
  ScannerConfig config;
  config.loop_lengths = {3};
  const auto opportunities =
      scan_market(snapshot.graph, snapshot.prices, config).value();
  ASSERT_GT(opportunities.size(), 1u);
  for (std::size_t i = 1; i < opportunities.size(); ++i) {
    EXPECT_GE(opportunities[i - 1].net_profit_usd,
              opportunities[i].net_profit_usd);
  }
}

TEST(ScannerTest, MultipleLengthsCombine) {
  market::GeneratorConfig gen;
  gen.token_count = 14;
  gen.pool_count = 30;
  const auto snapshot = market::generate_snapshot(gen);
  ScannerConfig only3;
  only3.loop_lengths = {3};
  ScannerConfig both;
  both.loop_lengths = {3, 4};
  const auto a = scan_market(snapshot.graph, snapshot.prices, only3).value();
  const auto b = scan_market(snapshot.graph, snapshot.prices, both).value();
  EXPECT_GT(b.size(), a.size());
}

TEST(ScannerTest, GasModelFiltersAndNets) {
  const Section5Market m;
  ScannerConfig config;
  config.loop_lengths = {3};
  config.gas = GasModel{};  // defaults: ~$15.8 per 3-swap bundle
  const auto opportunities = scan_market(m.graph, m.prices, config).value();
  ASSERT_EQ(opportunities.size(), 1u);
  EXPECT_NEAR(opportunities.front().net_profit_usd,
              205.6 - config.gas->bundle_cost_usd(3), 0.5);

  // An impossible threshold drops everything.
  config.min_net_profit_usd = 1e9;
  EXPECT_TRUE(scan_market(m.graph, m.prices, config).value().empty());
}

TEST(ScannerTest, ConvexStrategySupported) {
  const Section5Market m;
  ScannerConfig config;
  config.loop_lengths = {3};
  config.strategy = StrategyKind::kConvexOptimization;
  const auto opportunities = scan_market(m.graph, m.prices, config).value();
  ASSERT_EQ(opportunities.size(), 1u);
  EXPECT_NEAR(opportunities.front().net_profit_usd, 206.1, 0.3);
}

TEST(ScannerTest, PlansAreExecutable) {
  Section5Market m;
  const auto opportunities = scan_market(m.graph, m.prices).value();
  ASSERT_FALSE(opportunities.empty());
  const auto report = sim::ExecutionEngine().execute(
      m.graph, m.prices, opportunities.front().plan);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->realized_usd,
              opportunities.front().outcome.monetized_usd, 1e-6);
}

TEST(ScannerTest, ValidationRejectsBadConfig) {
  const Section5Market m;
  ScannerConfig empty;
  empty.loop_lengths = {};
  EXPECT_FALSE(scan_market(m.graph, m.prices, empty).ok());
  ScannerConfig bad_length;
  bad_length.loop_lengths = {1};
  EXPECT_FALSE(scan_market(m.graph, m.prices, bad_length).ok());
}

}  // namespace
}  // namespace arb::core
