#include "core/gas.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/single_start.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::Section5Market;

TEST(GasModelTest, BundleCostFormula) {
  GasModel model;
  model.gas_per_swap = 100'000.0;
  model.overhead_gas = 50'000.0;
  model.gas_price_gwei = 10.0;
  model.eth_price_usd = 2000.0;
  // (50k + 3·100k) gas · 10 gwei · $2000 = 350k · 1e-8 · 2000 = $7.
  EXPECT_NEAR(model.bundle_cost_usd(3), 7.0, 1e-12);
}

TEST(GasModelTest, ZeroGasPriceIsFree) {
  GasModel model;
  model.gas_price_gwei = 0.0;
  EXPECT_DOUBLE_EQ(model.bundle_cost_usd(5), 0.0);
}

TEST(GasModelTest, CostGrowsWithSwapCount) {
  GasModel model;
  EXPECT_LT(model.bundle_cost_usd(3), model.bundle_cost_usd(4));
}

TEST(GasModelTest, NetProfitSubtractsCost) {
  const Section5Market m;
  const auto outcome = evaluate_max_max(m.graph, m.prices, m.loop()).value();
  GasModel model;  // defaults: ~$15.8 for 3 swaps
  const double net = model.net_profit_usd(outcome, 3);
  EXPECT_NEAR(net, outcome.monetized_usd - model.bundle_cost_usd(3), 1e-12);
  EXPECT_LT(net, outcome.monetized_usd);
  EXPECT_TRUE(model.profitable_after_gas(outcome, 3));
}

TEST(GasModelTest, HighGasKillsThinLoops) {
  const Section5Market m;
  const auto outcome = evaluate_max_max(m.graph, m.prices, m.loop()).value();
  GasModel expensive;
  expensive.gas_price_gwei = 500.0;  // bundle ≈ $396 > $205.6 profit
  EXPECT_FALSE(expensive.profitable_after_gas(outcome, 3));
  EXPECT_LT(expensive.net_profit_usd(outcome, 3), 0.0);
}

TEST(GasModelTest, NegativeParametersRejected) {
  GasModel model;
  model.gas_per_swap = -1.0;
  EXPECT_THROW((void)model.bundle_cost_usd(1), PreconditionError);
}

}  // namespace
}  // namespace arb::core
