// Whole-graph router: deterministic path enumeration, method dispatch
// (direct / water-filling / flow solve), query validation, and the
// exact-output inversion built on the concave continuation.

#include "core/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/routing.hpp"

namespace arb::core {
namespace {

struct RouterMarket {
  graph::TokenGraph graph;
  TokenId a, b, c, d, isolated;
  PoolId direct1, direct2, leg_ac, leg_cb, stable_ad, conc_db;

  RouterMarket() {
    a = graph.add_token("A");
    b = graph.add_token("B");
    c = graph.add_token("C");
    d = graph.add_token("D");
    isolated = graph.add_token("LONELY");
    direct1 = graph.add_pool(a, b, 1'000.0, 2'000.0);
    direct2 = graph.add_pool(a, b, 400.0, 900.0);
    leg_ac = graph.add_pool(a, c, 800.0, 800.0);
    leg_cb = graph.add_pool(c, b, 700.0, 1'500.0);
    stable_ad = graph.add_stable_pool(a, d, 5'000.0, 5'000.0, 200.0);
    conc_db = graph.add_concentrated_pool(d, b, /*liquidity=*/4'000.0,
                                          /*price=*/2.0, /*p_lo=*/0.5,
                                          /*p_hi=*/8.0);
  }
};

TEST(EnumeratePathsTest, FindsAllSimplePathsRankedByRate) {
  RouterMarket m;
  const auto paths = enumerate_paths(m.graph, m.a, m.b, 2, 8);
  ASSERT_EQ(paths.size(), 4u);
  // Best zero-size rate first: direct2 (900/400 = 2.25 pre-fee) beats
  // direct1 (2.0), the C leg and the stable+concentrated route.
  EXPECT_EQ(paths[0], std::vector<PoolId>{m.direct2});
  // Every path is simple, starts at A, ends at B.
  for (const auto& path : paths) {
    TokenId cur = m.a;
    for (PoolId id : path) cur = m.graph.pool(id).other(cur);
    EXPECT_EQ(cur, m.b);
  }
}

TEST(EnumeratePathsTest, RespectsHopAndWidthBounds) {
  RouterMarket m;
  EXPECT_EQ(enumerate_paths(m.graph, m.a, m.b, 1, 8).size(), 2u);
  EXPECT_EQ(enumerate_paths(m.graph, m.a, m.b, 2, 3).size(), 3u);
  EXPECT_TRUE(enumerate_paths(m.graph, m.a, m.b, 0, 8).empty());
  EXPECT_TRUE(enumerate_paths(m.graph, m.a, m.isolated, 3, 8).empty());
}

TEST(EnumeratePathsTest, IsDeterministic) {
  RouterMarket m;
  const auto first = enumerate_paths(m.graph, m.a, m.b, 3, 8);
  const auto second = enumerate_paths(m.graph, m.a, m.b, 3, 8);
  EXPECT_EQ(first, second);
}

TEST(RouteTest, SinglePathGoesDirect) {
  RouterMarket m;
  RouteQuery query;
  query.token_in = m.c;
  query.token_out = m.b;
  query.amount_in = 10.0;
  query.max_hops = 1;
  auto result = route(m.graph, query);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->method, RouteMethod::kDirect);
  ASSERT_EQ(result->paths.size(), 1u);
  const double expected =
      m.graph.pool(m.leg_cb).quote(m.c, 10.0).amount_out;
  EXPECT_DOUBLE_EQ(result->amount_out, expected);
}

TEST(RouteTest, ParallelCpmmPathsUseWaterFilling) {
  RouterMarket m;
  RouteQuery query;
  query.token_in = m.a;
  query.token_out = m.b;
  query.amount_in = 150.0;
  query.max_hops = 2;
  query.max_paths = 3;  // direct1, direct2, the C leg — all CPMM
  auto result = route(m.graph, query);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->method, RouteMethod::kWaterFilling);

  auto split = optimal_route_split(
      m.graph, m.a, m.b,
      {{m.direct2}, {m.direct1}, {m.leg_ac, m.leg_cb}}, 150.0);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(result->amount_out, split->total_output,
              1e-9 * split->total_output);
  double spent = 0.0;
  for (const RoutedPath& path : result->paths) spent += path.input;
  EXPECT_NEAR(spent, 150.0, 1e-9 * 150.0);
}

TEST(RouteTest, MixedVenuesUseFlowSolver) {
  RouterMarket m;
  RouteQuery query;
  query.token_in = m.a;
  query.token_out = m.b;
  query.amount_in = 200.0;
  query.max_hops = 2;
  auto result = route(m.graph, query);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result->method, RouteMethod::kFlowSolve);
  EXPECT_GT(result->amount_out, 0.0);
  EXPECT_GE(result->duality_gap, 0.0);

  // Must beat the best unsplit route.
  const auto paths = enumerate_paths(m.graph, m.a, m.b, 2, 8);
  auto single = best_single_path_output(m.graph, m.a, m.b, paths, 200.0);
  ASSERT_TRUE(single.ok());
  EXPECT_GE(result->amount_out, *single * (1.0 - 1e-6));
}

TEST(RouteTest, RejectsMalformedQueries) {
  RouterMarket m;
  RouteQuery query;
  query.token_in = m.a;
  query.token_out = m.a;
  query.amount_in = 1.0;
  EXPECT_FALSE(route(m.graph, query).ok());
  query.token_out = TokenId{99};
  EXPECT_FALSE(route(m.graph, query).ok());
  query.token_out = m.b;
  query.amount_in = -1.0;
  EXPECT_FALSE(route(m.graph, query).ok());
  query.amount_in = 1.0;
  query.token_out = m.isolated;
  auto result = route(m.graph, query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
}

TEST(RouteTest, ZeroAmountRoutesToZero) {
  RouterMarket m;
  RouteQuery query;
  query.token_in = m.a;
  query.token_out = m.b;
  query.amount_in = 0.0;
  auto result = route(m.graph, query);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_DOUBLE_EQ(result->amount_out, 0.0);
}

// ---- Exact-output inversion --------------------------------------------

TEST(RequiredInputTest, InvertsForwardChain) {
  RouterMarket m;
  const std::vector<PoolId> path{m.leg_ac, m.leg_cb};
  const double input = 37.0;
  double amount = input;
  TokenId cur = m.a;
  for (PoolId id : path) {
    amount = m.graph.pool(id).quote(cur, amount).amount_out;
    cur = m.graph.pool(id).other(cur);
  }
  auto required = required_input_for_output(m.graph, m.a, path, amount);
  ASSERT_TRUE(required.ok()) << required.error().message;
  EXPECT_NEAR(*required, input, 1e-9 * input);
}

TEST(RequiredInputTest, InvertsMixedVenueChain) {
  RouterMarket m;
  const std::vector<PoolId> path{m.stable_ad, m.conc_db};
  const double input = 250.0;
  double amount = input;
  TokenId cur = m.a;
  for (PoolId id : path) {
    amount = m.graph.pool(id).quote(cur, amount).amount_out;
    cur = m.graph.pool(id).other(cur);
  }
  auto required = required_input_for_output(m.graph, m.a, path, amount);
  ASSERT_TRUE(required.ok()) << required.error().message;
  // Stable inversion goes through the cached-D curve's Newton solve.
  EXPECT_NEAR(*required, input, 1e-6 * input);
}

TEST(RequiredInputTest, ReportsCapacityExceeded) {
  RouterMarket m;
  // leg_cb holds 1500 B; asking for more cannot be served.
  auto required =
      required_input_for_output(m.graph, m.c, {m.leg_cb}, 1'600.0);
  ASSERT_FALSE(required.ok());
  EXPECT_EQ(required.error().code, ErrorCode::kCapacityExceeded);
}

TEST(RequiredInputTest, ValidatesThePath) {
  RouterMarket m;
  EXPECT_FALSE(required_input_for_output(m.graph, m.a, {}, 1.0).ok());
  EXPECT_FALSE(
      required_input_for_output(m.graph, m.a, {m.leg_cb}, 1.0).ok());
  EXPECT_FALSE(
      required_input_for_output(m.graph, m.a, {PoolId{99}}, 1.0).ok());
  EXPECT_FALSE(
      required_input_for_output(m.graph, m.a, {m.direct1}, -1.0).ok());
  auto zero = required_input_for_output(m.graph, m.a, {m.direct1}, 0.0);
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(*zero, 0.0);
}

}  // namespace
}  // namespace arb::core
