// The paper develops its theory for length-3 loops and notes it applies
// to any length. The shortest possible loop — two tokens through two
// parallel pools pricing the pair differently — exercises every
// wrap-around index in the strategy code, so it gets its own suite.

#include <gtest/gtest.h>

#include "core/comparison.hpp"
#include "core/coordinate.hpp"
#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"
#include "sim/engine.hpp"

namespace arb::core {
namespace {

struct TwoPoolMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  TokenId a, b;

  TwoPoolMarket() {
    a = graph.add_token("A");
    b = graph.add_token("B");
    graph.add_pool(a, b, 1'000.0, 2'000.0);  // 1 A = 2 B here
    graph.add_pool(a, b, 900.0, 2'000.0);    // 1 A = 2.22 B here
    prices.set_price(a, 10.0);
    prices.set_price(b, 5.0);
  }

  [[nodiscard]] graph::Cycle loop() const {
    const auto loops = graph::filter_arbitrage(
        graph, graph::enumerate_fixed_length_cycles(graph, 2));
    ARB_REQUIRE(loops.size() == 1, "expected exactly one 2-token arb loop");
    return loops.front();
  }
};

TEST(TwoTokenLoopTest, DetectionFindsTheProfitableOrientation) {
  const TwoPoolMarket m;
  const graph::Cycle loop = m.loop();
  EXPECT_EQ(loop.length(), 2u);
  EXPECT_GT(loop.price_product(m.graph), 1.0);
}

TEST(TwoTokenLoopTest, AllStrategiesRun) {
  const TwoPoolMarket m;
  const graph::Cycle loop = m.loop();
  auto rows = compare_strategies(m.graph, m.prices, {loop});
  ASSERT_TRUE(rows.ok());
  const LoopComparison& row = rows->front();
  EXPECT_EQ(row.traditional.size(), 2u);
  EXPECT_GT(row.max_max.monetized_usd, 0.0);
  for (const StrategyOutcome& t : row.traditional) {
    EXPECT_LE(t.monetized_usd, row.max_max.monetized_usd + 1e-9);
  }
  EXPECT_GE(row.convex.outcome.monetized_usd,
            row.max_max.monetized_usd - 1e-6);
}

TEST(TwoTokenLoopTest, CoordinateSolverAgreesWithBarrier) {
  const TwoPoolMarket m;
  const graph::Cycle loop = m.loop();
  const auto hops = make_hop_data(m.graph, m.prices, loop).value();
  const CoordinateReport coordinate = solve_reduced_coordinate(hops);
  const auto barrier = solve_convex(m.graph, m.prices, loop).value();
  EXPECT_NEAR(coordinate.profit_usd, barrier.outcome.monetized_usd,
              1e-4 * std::max(1.0, barrier.outcome.monetized_usd));
}

TEST(TwoTokenLoopTest, PlanExecutesAndDrainsTheLoop) {
  TwoPoolMarket m;
  const graph::Cycle loop = m.loop();
  auto outcome = evaluate_max_max(m.graph, m.prices, loop).value();
  auto plan = plan_from_single_start(m.graph, loop, outcome).value();
  auto report = sim::ExecutionEngine().execute(m.graph, m.prices, plan);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->realized_usd, outcome.monetized_usd, 1e-6);
  EXPECT_LE(loop.price_product(m.graph), 1.0 + 1e-9);
}

TEST(TwoTokenLoopTest, BalancedParallelPoolsHoldNoArbitrage) {
  graph::TokenGraph g;
  const TokenId a = g.add_token("A");
  const TokenId b = g.add_token("B");
  g.add_pool(a, b, 1'000.0, 2'000.0);
  g.add_pool(a, b, 500.0, 1'000.0);  // identical price, different depth
  EXPECT_TRUE(graph::filter_arbitrage(
                  g, graph::enumerate_fixed_length_cycles(g, 2))
                  .empty());
}

TEST(FlashLoanFeeTest, FeeReducesRealizedProfit) {
  TwoPoolMarket no_fee_market;
  TwoPoolMarket fee_market;
  const graph::Cycle loop = no_fee_market.loop();
  auto outcome =
      evaluate_max_max(no_fee_market.graph, no_fee_market.prices, loop)
          .value();
  auto plan =
      plan_from_single_start(no_fee_market.graph, loop, outcome).value();

  auto plain = sim::ExecutionEngine().execute(no_fee_market.graph,
                                              no_fee_market.prices, plan);
  sim::ExecutionOptions with_fee;
  with_fee.flash_loan_fee = 0.0009;  // Aave V2
  auto charged = sim::ExecutionEngine(with_fee).execute(
      fee_market.graph, fee_market.prices, plan);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(charged.ok());
  EXPECT_LT(charged->realized_usd, plain->realized_usd);
  // The fee equals 0.09% of the borrowed input valued at CEX price.
  const double expected_fee =
      outcome.input * 0.0009 *
      no_fee_market.prices.price_unchecked(outcome.start_token);
  EXPECT_NEAR(plain->realized_usd - charged->realized_usd, expected_fee,
              1e-9);
}

TEST(FlashLoanFeeTest, ExorbitantFeeRevertsBundle) {
  TwoPoolMarket m;
  const graph::Cycle loop = m.loop();
  auto outcome = evaluate_max_max(m.graph, m.prices, loop).value();
  auto plan = plan_from_single_start(m.graph, loop, outcome).value();
  sim::ExecutionOptions options;
  options.flash_loan_fee = 0.5;  // 50% borrow fee: nothing survives
  auto report = sim::ExecutionEngine(options).execute(m.graph, m.prices, plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInvariantViolated);
  // And the revert rolled the pools back.
  EXPECT_GT(loop.price_product(m.graph), 1.0);
}

}  // namespace
}  // namespace arb::core
