#include "core/generic_convex.hpp"

#include <gtest/gtest.h>

#include "amm/concentrated_pool.hpp"
#include "amm/stable_pool.hpp"
#include "core/convex.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::NoArbMarket;
using testing::Section5Market;

std::vector<GenericHop> section5_hops(const Section5Market& m) {
  return {
      GenericHop{amm::swap_fn(m.graph.pool(m.xy), m.x), 2.0},
      GenericHop{amm::swap_fn(m.graph.pool(m.yz), m.y), 10.2},
      GenericHop{amm::swap_fn(m.graph.pool(m.zx), m.z), 20.0},
  };
}

TEST(GenericConvexTest, MatchesBarrierOnPaperExample) {
  const Section5Market m;
  GenericConvexOptions options;
  options.initial_scale = 10.0;
  const auto generic =
      solve_generic_convex(section5_hops(m), options).value();
  const auto barrier = solve_convex(m.graph, m.prices, m.loop()).value();
  EXPECT_TRUE(generic.converged);
  EXPECT_NEAR(generic.profit_usd, barrier.outcome.monetized_usd, 0.05);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(generic.inputs[i], barrier.inputs[i], 0.2) << "hop " << i;
  }
}

TEST(GenericConvexTest, ZeroOnProfitlessLoop) {
  const NoArbMarket m;
  std::vector<GenericHop> hops{
      GenericHop{amm::swap_fn(m.graph.pool(PoolId{0}), m.a), 1.0},
      GenericHop{amm::swap_fn(m.graph.pool(PoolId{1}), m.b), 2.0},
      GenericHop{amm::swap_fn(m.graph.pool(PoolId{2}), m.c), 4.0},
  };
  const auto report = solve_generic_convex(hops).value();
  EXPECT_DOUBLE_EQ(report.profit_usd, 0.0);
  for (double d : report.inputs) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(GenericConvexTest, ValidationRejectsBadInputs) {
  EXPECT_FALSE(solve_generic_convex({}).ok());
  const Section5Market m;
  auto hops = section5_hops(m);
  EXPECT_FALSE(
      solve_generic_convex({hops[0]}).ok());  // single hop
  hops[1].price_in = 0.0;
  EXPECT_FALSE(solve_generic_convex(hops).ok());
  hops[1].price_in = 10.2;
  hops[2].swap = nullptr;
  EXPECT_FALSE(solve_generic_convex(hops).ok());
}

TEST(GenericConvexTest, MixedStableLoopRetainsBeyondMaxMax) {
  // Stable USDC/USDT leg (mispriced) + two CPMM legs with the paper's
  // adversarial flavor: the retained-profit optimum must dominate the
  // best single-start trade on the same mixed loop.
  const TokenId usdc{0};
  const TokenId usdt{1};
  const TokenId weth{2};
  const amm::StablePool stable(PoolId{0}, usdc, usdt, 1'100'000.0,
                               900'000.0, 100.0, 0.0004);
  const amm::CpmmPool usdt_weth(PoolId{1}, usdt, weth, 1'830'000.0,
                                1'000.0);
  const amm::CpmmPool weth_usdc(PoolId{2}, weth, usdc, 1'000.0,
                                1'860'000.0);
  const std::vector<GenericHop> hops{
      GenericHop{amm::swap_fn(stable, usdc), 1.0},
      GenericHop{amm::swap_fn(usdt_weth, usdt), 1.0},
      GenericHop{amm::swap_fn(weth_usdc, weth), 1830.0},
  };
  GenericConvexOptions options;
  options.initial_scale = 1'000.0;
  const auto convex = solve_generic_convex(hops, options).value();
  EXPECT_GT(convex.profit_usd, 0.0);

  // MaxMax over the same mixed loop: best rotation's single-start trade.
  double max_max = 0.0;
  for (std::size_t anchor = 0; anchor < 3; ++anchor) {
    std::vector<amm::SwapFn> fns;
    for (std::size_t i = 0; i < 3; ++i) fns.push_back(hops[(anchor + i) % 3].swap);
    const amm::GenericPath path{std::move(fns)};
    amm::GenericOptimizeOptions go;
    go.initial_scale = 1'000.0;
    const auto trade = amm::optimize_input_generic(path, go).value();
    max_max = std::max(max_max, hops[anchor].price_in * trade.profit);
  }
  EXPECT_GE(convex.profit_usd, max_max * (1.0 - 1e-6));
}

TEST(GenericConvexTest, MixedConcentratedLoopSolves) {
  const TokenId usdc{0};
  const TokenId usdt{1};
  const TokenId weth{2};
  const auto cl = amm::ConcentratedPool::from_reserves(
                      PoolId{0}, usdc, usdt, 1'004'000.0, 996'000.0, 0.8,
                      1.25, 0.0004)
                      .value();
  const amm::CpmmPool usdt_weth(PoolId{1}, usdt, weth, 1'830'000.0,
                                1'000.0);
  const amm::CpmmPool weth_usdc(PoolId{2}, weth, usdc, 1'000.0,
                                1'860'000.0);
  const std::vector<GenericHop> hops{
      GenericHop{amm::swap_fn(cl, usdc), 1.0},
      GenericHop{amm::swap_fn(usdt_weth, usdt), 1.0},
      GenericHop{amm::swap_fn(weth_usdc, weth), 1830.0},
  };
  GenericConvexOptions options;
  options.initial_scale = 1'000.0;
  const auto report = solve_generic_convex(hops, options).value();
  EXPECT_GT(report.profit_usd, 0.0);
  // Retentions are non-negative (risk-free property).
  for (std::size_t j = 0; j < 3; ++j) {
    const std::size_t prev = (j + 2) % 3;
    EXPECT_GE(report.outputs[prev] - report.inputs[j], -1e-6);
  }
}

}  // namespace
}  // namespace arb::core
