#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "market/generator.hpp"
#include "graph/cycle_enumeration.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::NoArbMarket;
using testing::Section5Market;

TEST(AnalysisTest, SectionFiveLoopDiagnostics) {
  const Section5Market m;
  const auto diag = analyze_loop(m.graph, m.prices, m.loop()).value();
  EXPECT_EQ(diag.length, 3u);
  EXPECT_NEAR(diag.price_product, 8.0 / 3.0 * 0.997 * 0.997 * 0.997, 1e-12);
  EXPECT_NEAR(diag.log_margin, std::log(diag.price_product), 1e-15);
  EXPECT_NEAR(diag.optimal_input, 26.96, 0.01);
  // 26.96 / 100 ~ 27% of the X reserve of the first pool.
  EXPECT_NEAR(diag.input_to_reserve_ratio, 0.2696, 0.001);
  EXPECT_NEAR(diag.best_profit_usd, 205.6, 0.5);
  // TVL: (100·2 + 200·10.2) + (300·10.2 + 200·20) + (200·20 + 400·2).
  EXPECT_NEAR(diag.loop_tvl_usd, 2240.0 + 7060.0 + 4800.0, 1e-9);
  EXPECT_NEAR(diag.bottleneck_tvl_usd, 2240.0, 1e-9);
  EXPECT_NEAR(diag.profit_per_tvl, diag.best_profit_usd / diag.loop_tvl_usd,
              1e-12);
}

TEST(AnalysisTest, NoArbLoopHasZeroProfitButValidGeometry) {
  const NoArbMarket m;
  const auto diag = analyze_loop(m.graph, m.prices, m.loop()).value();
  EXPECT_LT(diag.price_product, 1.0);
  EXPECT_LT(diag.log_margin, 0.0);
  EXPECT_DOUBLE_EQ(diag.optimal_input, 0.0);
  EXPECT_DOUBLE_EQ(diag.best_profit_usd, 0.0);
  EXPECT_GT(diag.loop_tvl_usd, 0.0);
}

TEST(AnalysisTest, MissingPriceFails) {
  Section5Market m;
  market::CexPriceFeed partial;
  partial.set_price(m.x, 2.0);
  auto diag = analyze_loop(m.graph, partial, m.loop());
  ASSERT_FALSE(diag.ok());
  EXPECT_EQ(diag.error().code, ErrorCode::kNotFound);
}

TEST(AnalysisTest, EmpiricalLoopsAreThin) {
  // The reason Fig. 7 shows Convex ≈ MaxMax: real (synthetic-calibrated)
  // loops are thin — the optimal input is a tiny fraction of reserves,
  // so the swap curves are near-linear and retention buys nothing.
  market::GeneratorConfig config;
  const auto snapshot =
      market::generate_snapshot(config).filtered(market::PoolFilter{});
  const auto loops = graph::filter_arbitrage(
      snapshot.graph,
      graph::enumerate_fixed_length_cycles(snapshot.graph, 3));
  ASSERT_FALSE(loops.empty());
  double worst_utilization = 0.0;
  for (const graph::Cycle& loop : loops) {
    const auto diag =
        analyze_loop(snapshot.graph, snapshot.prices, loop).value();
    worst_utilization =
        std::max(worst_utilization, diag.input_to_reserve_ratio);
  }
  // Section V's constructed example uses 27% of the reserve; empirical
  // loops stay a couple of orders of magnitude below that.
  EXPECT_LT(worst_utilization, 0.05);
}

}  // namespace
}  // namespace arb::core
