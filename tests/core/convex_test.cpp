#include "core/convex.hpp"

#include <gtest/gtest.h>

#include "core/single_start.hpp"
#include "math/derivative.hpp"
#include "optim/kkt.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::NoArbMarket;
using testing::Section5Market;

TEST(LoopNlpTest, HopDataMatchesPools) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  ASSERT_TRUE(hops.ok());
  ASSERT_EQ(hops->size(), 3u);
  EXPECT_DOUBLE_EQ((*hops)[0].reserve_in, 100.0);
  EXPECT_DOUBLE_EQ((*hops)[0].reserve_out, 200.0);
  EXPECT_DOUBLE_EQ((*hops)[0].price_in, 2.0);
  EXPECT_DOUBLE_EQ((*hops)[0].price_out, 10.2);
  EXPECT_EQ((*hops)[2].token_out, m.x);
}

TEST(LoopNlpTest, HopDataRespectsRotation) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop(), 1);
  ASSERT_TRUE(hops.ok());
  EXPECT_EQ((*hops)[0].token_in, m.y);
  EXPECT_DOUBLE_EQ((*hops)[0].reserve_in, 300.0);
}

TEST(LoopNlpTest, ReducedGradientsMatchNumeric) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  const ReducedLoopProblem problem(*hops);
  const math::Vector d{5.0, 11.0, 4.0};
  const math::Vector grad = problem.objective_gradient(d);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto partial = [&](double v) {
      math::Vector p = d;
      p[i] = v;
      return problem.objective(p);
    };
    EXPECT_NEAR(grad[i], math::central_derivative(partial, d[i]), 1e-5)
        << "coordinate " << i;
  }
}

TEST(LoopNlpTest, ReducedHessianIsDiagonalPsd) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  const ReducedLoopProblem problem(*hops);
  const math::Matrix h = problem.objective_hessian(math::Vector{5.0, 5.0, 5.0});
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      if (r == c) {
        EXPECT_GT(h(r, c), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(h(r, c), 0.0);
      }
    }
  }
}

TEST(LoopNlpTest, ConstraintGradientsMatchNumeric) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  const ReducedLoopProblem problem(*hops);
  const math::Vector d{5.0, 11.0, 4.0};
  for (std::size_t ci = 0; ci < problem.num_inequalities(); ++ci) {
    const math::Vector grad = problem.constraint_gradient(ci, d);
    for (std::size_t i = 0; i < 3; ++i) {
      const auto partial = [&](double v) {
        math::Vector p = d;
        p[i] = v;
        return problem.constraint(ci, p);
      };
      EXPECT_NEAR(grad[i], math::central_derivative(partial, d[i]), 1e-5)
          << "constraint " << ci << " coordinate " << i;
    }
  }
}

TEST(LoopNlpTest, InteriorStartIsStrictlyFeasible) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  const ReducedLoopProblem problem(*hops);
  auto start = reduced_interior_start(*hops);
  ASSERT_TRUE(start.ok());
  EXPECT_TRUE(problem.strictly_feasible(*start));
}

TEST(LoopNlpTest, FullInteriorStartIsStrictlyFeasible) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  const FullLoopProblem problem(*hops);
  auto start = full_interior_start(*hops);
  ASSERT_TRUE(start.ok());
  EXPECT_TRUE(problem.strictly_feasible(*start));
}

TEST(LoopNlpTest, NoInteriorWithoutArbitrage) {
  const NoArbMarket m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  EXPECT_FALSE(reduced_interior_start(*hops).ok());
  EXPECT_FALSE(full_interior_start(*hops).ok());
}

TEST(ConvexTest, PaperExampleValue) {
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(solution.ok());
  // Paper: $206.1.
  EXPECT_NEAR(solution->outcome.monetized_usd, 206.1, 0.3);
}

TEST(ConvexTest, PaperExamplePlanAmounts) {
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(solution.ok());
  // Paper: input 31.3 X -> 47.6 Y; 42.6 Y -> 24.8 Z; 17.1 Z -> 31.3 X.
  EXPECT_NEAR(solution->inputs[0], 31.3, 0.2);
  EXPECT_NEAR(solution->outputs[0], 47.6, 0.2);
  EXPECT_NEAR(solution->inputs[1], 42.6, 0.2);
  EXPECT_NEAR(solution->outputs[1], 24.8, 0.2);
  EXPECT_NEAR(solution->inputs[2], 17.1, 0.2);
  EXPECT_NEAR(solution->outputs[2], 31.3, 0.2);
  // Retained: ~0 X, ~5 Y, ~7.7 Z.
  ASSERT_EQ(solution->outcome.profits.size(), 3u);
  EXPECT_NEAR(solution->outcome.profits[0].amount, 0.0, 0.05);
  EXPECT_NEAR(solution->outcome.profits[1].amount, 5.0, 0.2);
  EXPECT_NEAR(solution->outcome.profits[2].amount, 7.7, 0.2);
}

TEST(ConvexTest, FullFormulationMatchesReduced) {
  const Section5Market m;
  ConvexOptions reduced;
  ConvexOptions full;
  full.use_full_formulation = true;
  auto a = solve_convex(m.graph, m.prices, m.loop(), reduced);
  auto b = solve_convex(m.graph, m.prices, m.loop(), full);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->outcome.monetized_usd, b->outcome.monetized_usd, 0.01);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a->inputs[i], b->inputs[i], 0.05) << "hop " << i;
    EXPECT_NEAR(a->outputs[i], b->outputs[i], 0.05) << "hop " << i;
  }
}

TEST(ConvexTest, BeatsOrMatchesMaxMax) {
  const Section5Market m;
  auto convex = solve_convex(m.graph, m.prices, m.loop());
  auto max_max = evaluate_max_max(m.graph, m.prices, m.loop());
  ASSERT_TRUE(convex.ok());
  ASSERT_TRUE(max_max.ok());
  EXPECT_GE(convex->outcome.monetized_usd,
            max_max->monetized_usd - 1e-6);
  // On this adversarial example the gap is real (paper: 206.1 vs 205.6).
  EXPECT_GT(convex->outcome.monetized_usd, max_max->monetized_usd);
}

TEST(ConvexTest, RotationInvariant) {
  const Section5Market m;
  auto base = solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(base.ok());
  for (std::size_t offset = 1; offset < 3; ++offset) {
    const graph::Cycle rotated = m.loop().rotated(offset);
    auto sol = solve_convex(m.graph, m.prices, rotated);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol->outcome.monetized_usd, base->outcome.monetized_usd,
                1e-4);
  }
}

TEST(ConvexTest, NoArbitrageGivesExactZero) {
  // Section IV theorem: MaxMax finds nothing ⇒ Convex finds nothing.
  const NoArbMarket m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->outcome.monetized_usd, 0.0);
  for (double v : solution->inputs) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : solution->outputs) EXPECT_DOUBLE_EQ(v, 0.0);
  for (const TokenProfit& p : solution->outcome.profits) {
    EXPECT_DOUBLE_EQ(p.amount, 0.0);
  }
}

TEST(ConvexTest, SolutionSatisfiesKkt) {
  const Section5Market m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  const ReducedLoopProblem problem(*hops);
  ConvexOptions options;
  options.barrier.gap_tolerance = 1e-10;
  const optim::BarrierSolver solver(options.barrier);
  auto start = reduced_interior_start(*hops);
  ASSERT_TRUE(start.ok());
  auto report = solver.solve(problem, *start);
  ASSERT_TRUE(report.ok());
  const optim::KktResiduals kkt =
      optim::evaluate_kkt(problem, report->x, report->dual);
  // Scale: prices up to $20, reserves hundreds → residual 1e-4 is tight.
  EXPECT_TRUE(kkt.satisfied(1e-4)) << "worst residual " << kkt.worst();
}

TEST(ConvexTest, FlowConstraintsActiveOnlyWhereNoProfitRetained) {
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(solution.ok());
  // Where profit is retained in a token, the flow constraint out >= in is
  // slack; where nothing is retained it is tight.
  const std::size_t n = 3;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t prev = (j + n - 1) % n;
    const double retained = solution->outputs[prev] - solution->inputs[j];
    EXPECT_NEAR(retained, solution->outcome.profits[j].amount, 1e-9);
    EXPECT_GE(retained, -1e-9);
  }
}

TEST(ConvexTest, ProfitsNonNegativePerToken) {
  // Risk-free property of eq. (8): no token ends at a loss.
  const Section5Market m;
  auto solution = solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(solution.ok());
  for (const TokenProfit& p : solution->outcome.profits) {
    EXPECT_GE(p.amount, -1e-9);
  }
}

TEST(ConvexTest, MissingPriceFails) {
  Section5Market m;
  market::CexPriceFeed partial;
  partial.set_price(m.x, 2.0);
  auto solution = solve_convex(m.graph, partial, m.loop());
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.error().code, ErrorCode::kNotFound);
}

TEST(ConvexTest, EvaluateWrapperReturnsOutcomeOnly) {
  const Section5Market m;
  auto outcome = evaluate_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, StrategyKind::kConvexOptimization);
  EXPECT_NEAR(outcome->monetized_usd, 206.1, 0.3);
}

}  // namespace
}  // namespace arb::core
