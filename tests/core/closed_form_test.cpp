#include "core/closed_form.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/convex.hpp"
#include "core/loop_nlp.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace arb::core {
namespace {

/// Two-pool market over the same token pair with a reserve imbalance:
/// pool 0 prices A cheap, pool 1 prices it dear, so A -> B -> A profits.
struct TwoPoolMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  TokenId a, b;
  PoolId p0, p1;

  TwoPoolMarket(double x0 = 100.0, double y0 = 220.0, double x1 = 200.0,
                double y1 = 100.0, double fee = 0.003) {
    a = graph.add_token("A");
    b = graph.add_token("B");
    p0 = graph.add_pool(a, b, x0, y0, fee);
    p1 = graph.add_pool(b, a, x1, y1, fee);
    prices.set_price(a, 1.0);
    prices.set_price(b, 0.5);
  }

  [[nodiscard]] graph::Cycle loop() const {
    return *graph::Cycle::create(graph, {a, b}, {p0, p1});
  }
};

TEST(ClosedFormTest, SingleHopOptimumMatchesFirstOrderCondition) {
  LoopHopData hop;
  hop.reserve_in = 100.0;
  hop.reserve_out = 220.0;
  hop.gamma = 0.997;
  hop.price_in = 1.0;
  hop.price_out = 0.5;
  const double d = optimal_single_hop_input(hop);
  ASSERT_GT(d, 0.0);
  // Interior optimum: marginal revenue equals marginal cost.
  EXPECT_NEAR(hop.price_out * hop.swap_deriv(d), hop.price_in, 1e-9);
}

TEST(ClosedFormTest, LosingHopTradesNothing) {
  LoopHopData hop;
  hop.reserve_in = 100.0;
  hop.reserve_out = 100.0;
  hop.gamma = 0.997;
  hop.price_in = 1.0;
  hop.price_out = 1.0;  // marginal rate at zero is gamma < 1: a loss
  EXPECT_DOUBLE_EQ(optimal_single_hop_input(hop), 0.0);
}

TEST(ClosedFormTest, GoldenSymmetricLoop) {
  // Hand-derived optimum: both hops trade against (100, 150) reserves at
  // unit CEX prices, fee 0.3%. Each hop alone is profitable
  // (gamma·150/100 > 1) and the symmetric per-hop optima
  //   d* = (sqrt(gamma·100·150) − 100) / gamma ≈ 22.36
  // satisfy both flow constraints (F(d*) ≈ 27.3 > d*), so the interior
  // candidate with both flow constraints slack is the global optimum and
  // the profit is 2·(F(d*) − d*).
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  const TokenId a = graph.add_token("A");
  const TokenId b = graph.add_token("B");
  const PoolId p0 = graph.add_pool(a, b, 100.0, 150.0, 0.003);
  const PoolId p1 = graph.add_pool(b, a, 100.0, 150.0, 0.003);
  prices.set_price(a, 1.0);
  prices.set_price(b, 1.0);
  const auto loop = *graph::Cycle::create(graph, {a, b}, {p0, p1});

  auto hops = make_hop_data(graph, prices, loop);
  ASSERT_TRUE(hops.ok());
  const auto solution = solve_length2_closed_form(*hops);
  ASSERT_TRUE(solution.has_value());

  const double g = 0.997;
  const double d = (std::sqrt(g * 100.0 * 150.0) - 100.0) / g;
  const double out = (*hops)[0].swap(d);
  ASSERT_GT(out, d);          // each hop profits
  ASSERT_GT(out, d + 1e-12);  // flow constraints strictly slack
  EXPECT_NEAR(solution->inputs[0], d, 1e-12 * d);
  EXPECT_NEAR(solution->inputs[1], d, 1e-12 * d);
  EXPECT_NEAR(solution->outputs[0], out, 1e-12 * out);
  EXPECT_NEAR(solution->profit_usd, 2.0 * (out - d),
              1e-12 * 2.0 * (out - d));
}

TEST(ClosedFormTest, AgreesWithBarrierAcrossRandomMarkets) {
  std::mt19937_64 rng(20240807);
  std::uniform_real_distribution<double> reserve(50.0, 5000.0);
  std::uniform_real_distribution<double> fee(0.0, 0.01);
  int profitable = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const TwoPoolMarket m(reserve(rng), reserve(rng), reserve(rng),
                          reserve(rng), fee(rng));

    ConvexOptions analytic;
    analytic.use_closed_form_length2 = true;
    auto fast = solve_convex(m.graph, m.prices, m.loop(), analytic);
    ASSERT_TRUE(fast.ok()) << "trial " << trial;

    ConvexOptions iterative;
    iterative.use_closed_form_length2 = false;
    auto slow = solve_convex(m.graph, m.prices, m.loop(), iterative);
    ASSERT_TRUE(slow.ok()) << "trial " << trial;

    const double scale =
        std::max(1e-12, std::abs(slow->outcome.monetized_usd));
    EXPECT_NEAR(fast->outcome.monetized_usd, slow->outcome.monetized_usd,
                1e-9 * scale)
        << "trial " << trial;
    if (slow->outcome.monetized_usd > 1e-6) ++profitable;
  }
  // The random family must actually exercise the profitable branch.
  EXPECT_GT(profitable, 20);
}

TEST(ClosedFormTest, RejectsDegenerateAndWrongLengthInputs) {
  const TwoPoolMarket m;
  auto hops = make_hop_data(m.graph, m.prices, m.loop());
  ASSERT_TRUE(hops.ok());

  auto three = *hops;
  three.push_back((*hops)[0]);
  EXPECT_FALSE(solve_length2_closed_form(three).has_value());

  auto degenerate = *hops;
  degenerate[0].reserve_in = 0.0;
  EXPECT_FALSE(solve_length2_closed_form(degenerate).has_value());
}

}  // namespace
}  // namespace arb::core
