#include "core/single_start.hpp"

#include <gtest/gtest.h>

#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::NoArbMarket;
using testing::Section5Market;

TEST(TraditionalTest, PaperNumbersStartX) {
  const Section5Market m;
  auto outcome = evaluate_traditional(m.graph, m.prices, m.loop(), 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, StrategyKind::kTraditional);
  EXPECT_EQ(outcome->start_token, m.x);
  EXPECT_NEAR(outcome->input, 27.0, 0.1);             // paper: 27.0
  EXPECT_NEAR(outcome->profits[0].amount, 16.87, 0.1); // paper: 16.8
  EXPECT_NEAR(outcome->monetized_usd, 33.7, 0.2);     // paper: $33.7
}

TEST(TraditionalTest, PaperNumbersStartY) {
  const Section5Market m;
  auto outcome = evaluate_traditional(m.graph, m.prices, m.loop(), 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->start_token, m.y);
  EXPECT_NEAR(outcome->input, 31.5, 0.1);             // paper: 31.5
  EXPECT_NEAR(outcome->profits[0].amount, 19.7, 0.1); // paper: 19.7
  EXPECT_NEAR(outcome->monetized_usd, 201.1, 0.5);    // paper: $201.1
}

TEST(TraditionalTest, PaperNumbersStartZ) {
  const Section5Market m;
  auto outcome = evaluate_traditional(m.graph, m.prices, m.loop(), 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->start_token, m.z);
  EXPECT_NEAR(outcome->input, 16.4, 0.1);              // paper: 16.4
  EXPECT_NEAR(outcome->profits[0].amount, 10.3, 0.1);  // paper: 10.3
  EXPECT_NEAR(outcome->monetized_usd, 205.6, 0.5);     // paper: $205.6
}

TEST(TraditionalTest, AnalyticAndBisectionAgree) {
  const Section5Market m;
  SingleStartOptions bisect;
  bisect.use_bisection = true;
  SingleStartOptions analytic;
  analytic.use_bisection = false;
  for (std::size_t offset = 0; offset < 3; ++offset) {
    auto a = evaluate_traditional(m.graph, m.prices, m.loop(), offset, bisect);
    auto b =
        evaluate_traditional(m.graph, m.prices, m.loop(), offset, analytic);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->monetized_usd, b->monetized_usd, 1e-5);
    EXPECT_GT(a->solver_iterations, 0);
    EXPECT_EQ(b->solver_iterations, 0);
  }
}

TEST(TraditionalTest, OffsetWrapsModuloLength) {
  const Section5Market m;
  auto a = evaluate_traditional(m.graph, m.prices, m.loop(), 1);
  auto b = evaluate_traditional(m.graph, m.prices, m.loop(), 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->start_token, b->start_token);
  EXPECT_DOUBLE_EQ(a->monetized_usd, b->monetized_usd);
}

TEST(TraditionalTest, MissingPriceFails) {
  Section5Market m;
  market::CexPriceFeed partial;
  partial.set_price(m.x, 2.0);  // y, z missing
  auto outcome = evaluate_traditional(m.graph, partial, m.loop(), 1);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kNotFound);
}

TEST(TraditionalTest, NoArbLoopGivesZeroEverywhere) {
  const NoArbMarket m;
  for (std::size_t offset = 0; offset < 3; ++offset) {
    auto outcome = evaluate_traditional(m.graph, m.prices, m.loop(), offset);
    ASSERT_TRUE(outcome.ok());
    EXPECT_DOUBLE_EQ(outcome->input, 0.0);
    EXPECT_DOUBLE_EQ(outcome->monetized_usd, 0.0);
  }
}

TEST(MaxPriceTest, PicksHighestCexPriceToken) {
  const Section5Market m;
  auto outcome = evaluate_max_price(m.graph, m.prices, m.loop());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, StrategyKind::kMaxPrice);
  EXPECT_EQ(outcome->start_token, m.z);  // $20 is the highest price
  EXPECT_NEAR(outcome->monetized_usd, 205.6, 0.5);
}

TEST(MaxPriceTest, CanBeStrictlyWorseThanMaxMax) {
  // The paper's Fig. 6 phenomenon: raise X's price to ~$15 — MaxPrice
  // still starts from Z ($20) but starting from X now monetizes best.
  Section5Market m;
  m.prices.set_price(m.x, 15.0);
  auto max_price = evaluate_max_price(m.graph, m.prices, m.loop());
  auto max_max = evaluate_max_max(m.graph, m.prices, m.loop());
  ASSERT_TRUE(max_price.ok());
  ASSERT_TRUE(max_max.ok());
  EXPECT_EQ(max_price->start_token, m.z);
  EXPECT_EQ(max_max->start_token, m.x);
  EXPECT_GT(max_max->monetized_usd, max_price->monetized_usd * 1.05);
}

TEST(MaxMaxTest, PaperNumbers) {
  const Section5Market m;
  auto outcome = evaluate_max_max(m.graph, m.prices, m.loop());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->kind, StrategyKind::kMaxMax);
  EXPECT_EQ(outcome->start_token, m.z);
  EXPECT_NEAR(outcome->monetized_usd, 205.6, 0.5);
}

TEST(MaxMaxTest, UpperBoundsEveryRotation) {
  const Section5Market m;
  auto rotations = evaluate_all_rotations(m.graph, m.prices, m.loop());
  auto max_max = evaluate_max_max(m.graph, m.prices, m.loop());
  ASSERT_TRUE(rotations.ok());
  ASSERT_TRUE(max_max.ok());
  ASSERT_EQ(rotations->size(), 3u);
  for (const StrategyOutcome& rotation : *rotations) {
    EXPECT_GE(max_max->monetized_usd, rotation.monetized_usd);
  }
}

TEST(MaxMaxTest, EqualsBestRotationExactly) {
  const Section5Market m;
  auto rotations = evaluate_all_rotations(m.graph, m.prices, m.loop());
  auto max_max = evaluate_max_max(m.graph, m.prices, m.loop());
  double best = 0.0;
  for (const StrategyOutcome& r : *rotations) {
    best = std::max(best, r.monetized_usd);
  }
  EXPECT_DOUBLE_EQ(max_max->monetized_usd, best);
}

TEST(MaxMaxTest, ZeroOnNoArbLoop) {
  const NoArbMarket m;
  auto outcome = evaluate_max_max(m.graph, m.prices, m.loop());
  ASSERT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome->monetized_usd, 0.0);
}

TEST(AllRotationsTest, StartTokensAreDistinctLoopTokens) {
  const Section5Market m;
  auto rotations = evaluate_all_rotations(m.graph, m.prices, m.loop());
  ASSERT_TRUE(rotations.ok());
  EXPECT_EQ((*rotations)[0].start_token, m.x);
  EXPECT_EQ((*rotations)[1].start_token, m.y);
  EXPECT_EQ((*rotations)[2].start_token, m.z);
}

TEST(StrategyKindTest, Names) {
  EXPECT_EQ(to_string(StrategyKind::kTraditional), "Traditional");
  EXPECT_EQ(to_string(StrategyKind::kMaxPrice), "MaxPrice");
  EXPECT_EQ(to_string(StrategyKind::kMaxMax), "MaxMax");
  EXPECT_EQ(to_string(StrategyKind::kConvexOptimization),
            "ConvexOptimization");
}

}  // namespace
}  // namespace arb::core
