// Flow-form problem layer: finite-difference checks of the NLP
// transcription, builder validation, one-cycle equivalence with the
// loop solver, routing instances against independent 1-D optima, and
// the attribution/trivial/infeasible edge cases.

#include "core/flow_nlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/convex.hpp"
#include "core/fixtures.hpp"
#include "core/loop_nlp.hpp"
#include "core/routing.hpp"
#include "math/scalar_solve.hpp"

namespace arb::core {
namespace {

/// Parallel A->B routing market: two CPMM directs, a two-hop CPMM
/// route, and one stable + one concentrated direct.
struct SwapMarket {
  graph::TokenGraph graph;
  TokenId a, b, c;
  PoolId direct1, direct2, leg_ac, leg_cb, stable_ab, conc_ab;

  SwapMarket() {
    a = graph.add_token("A");
    b = graph.add_token("B");
    c = graph.add_token("C");
    direct1 = graph.add_pool(a, b, 1'000.0, 2'000.0);
    direct2 = graph.add_pool(a, b, 400.0, 900.0);
    leg_ac = graph.add_pool(a, c, 800.0, 800.0);
    leg_cb = graph.add_pool(c, b, 700.0, 1'500.0);
    stable_ab = graph.add_stable_pool(a, b, 5'000.0, 5'000.0, 200.0);
    conc_ab = graph.add_concentrated_pool(a, b, /*liquidity=*/4'000.0,
                                          /*price=*/2.0, /*p_lo=*/0.5,
                                          /*p_hi=*/8.0);
  }
};

// ---- Transcription: finite-difference consistency ----------------------

TEST(FlowProblemTest, GradientAndHessianMatchFiniteDifferences) {
  SwapMarket m;
  auto instance = FlowInstance::for_swap(
      m.graph, m.a, m.b, {{m.direct1}, {m.leg_ac, m.leg_cb}}, 50.0);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  const FlowProblem problem(*instance);
  ASSERT_EQ(problem.dimension(), 3u);

  const math::Vector d{3.0, 5.0, 4.0};
  const double h = 1e-6;
  const math::Vector grad = problem.objective_gradient(d);
  const math::Matrix hess = problem.objective_hessian(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    math::Vector up = d;
    math::Vector dn = d;
    up[i] += h;
    dn[i] -= h;
    const double fd =
        (problem.objective(up) - problem.objective(dn)) / (2.0 * h);
    EXPECT_NEAR(grad[i], fd, 1e-5 * std::max(1.0, std::abs(fd)))
        << "gradient component " << i;
    const math::Vector gu = problem.objective_gradient(up);
    const math::Vector gd = problem.objective_gradient(dn);
    for (std::size_t j = 0; j < d.size(); ++j) {
      const double fd2 = (gu[j] - gd[j]) / (2.0 * h);
      EXPECT_NEAR(hess(j, i), fd2, 1e-4 * std::max(1.0, std::abs(fd2)))
          << "hessian (" << j << "," << i << ")";
    }
  }

  for (std::size_t k = 0; k < problem.num_inequalities(); ++k) {
    const math::Vector cg = problem.constraint_gradient(k, d);
    for (std::size_t i = 0; i < d.size(); ++i) {
      math::Vector up = d;
      math::Vector dn = d;
      up[i] += h;
      dn[i] -= h;
      const double fd =
          (problem.constraint(k, up) - problem.constraint(k, dn)) /
          (2.0 * h);
      EXPECT_NEAR(cg[i], fd, 1e-5 * std::max(1.0, std::abs(fd)))
          << "constraint " << k << " component " << i;
    }
  }
}

// ---- Builders ----------------------------------------------------------

TEST(FlowInstanceTest, ForSwapRejectsMalformedInputs) {
  SwapMarket m;
  // No paths.
  EXPECT_FALSE(FlowInstance::for_swap(m.graph, m.a, m.b, {}, 1.0).ok());
  // Negative / non-finite budget.
  EXPECT_FALSE(
      FlowInstance::for_swap(m.graph, m.a, m.b, {{m.direct1}}, -1.0).ok());
  // Same endpoints.
  EXPECT_FALSE(
      FlowInstance::for_swap(m.graph, m.a, m.a, {{m.direct1}}, 1.0).ok());
  // Discontinuous path (leg_cb does not touch A).
  EXPECT_FALSE(
      FlowInstance::for_swap(m.graph, m.a, m.b, {{m.leg_cb}}, 1.0).ok());
  // Path ending at the wrong token.
  EXPECT_FALSE(
      FlowInstance::for_swap(m.graph, m.a, m.c, {{m.direct1}}, 1.0).ok());
  // Unknown pool id.
  EXPECT_FALSE(
      FlowInstance::for_swap(m.graph, m.a, m.b, {{PoolId{99}}}, 1.0).ok());
  // Pass-through of the sink token.
  EXPECT_FALSE(FlowInstance::for_swap(m.graph, m.a, m.b,
                                      {{m.direct1, m.direct2}}, 1.0)
                   .ok());
}

TEST(FlowInstanceTest, ForSwapDeduplicatesSharedEdges) {
  SwapMarket m;
  // Both paths cross leg_ac in the same direction: one edge, two chains.
  const PoolId cb2 = m.graph.add_pool(m.c, m.b, 900.0, 1'800.0);
  auto instance = FlowInstance::for_swap(
      m.graph, m.a, m.b, {{m.leg_ac, m.leg_cb}, {m.leg_ac, cb2}}, 10.0);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  EXPECT_EQ(instance->edges.size(), 3u);
  EXPECT_EQ(instance->support.size(), 2u);
  EXPECT_EQ(instance->support[0][0], instance->support[1][0]);
}

// ---- One-cycle equivalence with the loop solver ------------------------

TEST(FlowSolveTest, OneCycleMatchesConvexLoopSolver) {
  testing::Section5Market m;
  const graph::Cycle cycle = m.loop();
  auto reference = solve_convex(m.graph, m.prices, cycle);
  ASSERT_TRUE(reference.ok()) << reference.error().message;

  auto instance = FlowInstance::from_cycle(m.graph, m.prices, cycle);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;
  EXPECT_FALSE(flow->trivial);

  const double expected = reference->outcome.monetized_usd;
  EXPECT_NEAR(flow->objective, expected,
              1e-6 * std::max(1.0, std::abs(expected)));
}

TEST(FlowSolveTest, UnprofitableCycleIsTriviallyZero) {
  testing::NoArbMarket m;
  auto instance = FlowInstance::from_cycle(m.graph, m.prices, m.loop());
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;
  EXPECT_TRUE(flow->trivial);
  EXPECT_DOUBLE_EQ(flow->objective, 0.0);
  for (const double d : flow->edge_inputs) EXPECT_DOUBLE_EQ(d, 0.0);
}

// ---- Routing instances -------------------------------------------------

TEST(FlowSolveTest, TwoPathSplitMatchesGoldenSection) {
  SwapMarket m;
  const double budget = 120.0;
  auto instance = FlowInstance::for_swap(m.graph, m.a, m.b,
                                         {{m.direct1}, {m.direct2}}, budget);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;

  const auto out1 = [&](double d) {
    return m.graph.pool(m.direct1).quote(m.a, d).amount_out;
  };
  const auto out2 = [&](double d) {
    return m.graph.pool(m.direct2).quote(m.a, d).amount_out;
  };
  const auto best = math::golden_section_maximize(
      [&](double d) { return out1(d) + out2(budget - d); }, 0.0, budget);
  EXPECT_NEAR(flow->objective, best.f, 1e-6 * best.f);
}

TEST(FlowSolveTest, MixedVenueSplitMatchesGoldenSection) {
  SwapMarket m;
  const double budget = 400.0;
  auto instance = FlowInstance::for_swap(
      m.graph, m.a, m.b, {{m.stable_ab}, {m.conc_ab}}, budget);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;

  const auto stable_out = [&](double d) {
    return m.graph.pool(m.stable_ab).quote(m.a, d).amount_out;
  };
  const auto conc_out = [&](double d) {
    return m.graph.pool(m.conc_ab).quote(m.a, d).amount_out;
  };
  const auto best = math::golden_section_maximize(
      [&](double d) { return stable_out(d) + conc_out(budget - d); }, 0.0,
      budget);
  EXPECT_NEAR(flow->objective, best.f, 1e-5 * best.f);
  EXPECT_GE(flow->objective, best.f * (1.0 - 1e-5));
}

TEST(FlowSolveTest, AgreesWithWaterFillingOnDisjointCpmmPaths) {
  SwapMarket m;
  const double budget = 150.0;
  const std::vector<std::vector<PoolId>> paths{
      {m.direct1}, {m.direct2}, {m.leg_ac, m.leg_cb}};
  auto split = optimal_route_split(m.graph, m.a, m.b, paths, budget);
  ASSERT_TRUE(split.ok()) << split.error().message;
  EXPECT_FALSE(split->used_flow_solver);

  auto instance = FlowInstance::for_swap(m.graph, m.a, m.b, paths, budget);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;
  EXPECT_NEAR(flow->objective, split->total_output,
              1e-6 * split->total_output);
}

TEST(FlowSolveTest, ZeroBudgetIsTrivial) {
  SwapMarket m;
  auto instance =
      FlowInstance::for_swap(m.graph, m.a, m.b, {{m.direct1}}, 0.0);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;
  EXPECT_TRUE(flow->trivial);
  EXPECT_DOUBLE_EQ(flow->objective, 0.0);
}

TEST(FlowSolveTest, BudgetConstraintBindsAtTheOptimum) {
  SwapMarket m;
  const double budget = 80.0;
  auto instance = FlowInstance::for_swap(m.graph, m.a, m.b,
                                         {{m.direct1}, {m.direct2}}, budget);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;
  // Routing is strictly improving in budget, so the source spends it all
  // (up to the barrier's duality gap).
  double spent = 0.0;
  for (std::size_t e = 0; e < flow->edge_inputs.size(); ++e) {
    if (instance->edge_from[e] == instance->source) {
      spent += flow->edge_inputs[e];
    }
  }
  EXPECT_NEAR(spent, budget, 1e-6 * budget);
}

TEST(FlowSolveTest, TickPinnedEdgeIsInfeasible) {
  SwapMarket m;
  auto instance =
      FlowInstance::for_swap(m.graph, m.a, m.b, {{m.conc_ab}}, 10.0);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  instance->edges[0].input_cap = 0.0;  // simulate a pinned tick
  auto flow = solve_flow(*instance);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.error().code, ErrorCode::kInfeasible);
}

// ---- Attribution -------------------------------------------------------

TEST(FlowAttributionTest, DisjointPathsDecomposeExactly) {
  SwapMarket m;
  const double budget = 150.0;
  const std::vector<std::vector<PoolId>> paths{
      {m.direct1}, {m.direct2}, {m.leg_ac, m.leg_cb}};
  auto instance = FlowInstance::for_swap(m.graph, m.a, m.b, paths, budget);
  ASSERT_TRUE(instance.ok()) << instance.error().message;
  auto flow = solve_flow(*instance);
  ASSERT_TRUE(flow.ok()) << flow.error().message;

  const PathAttribution split = attribute_support(*instance, *flow);
  ASSERT_EQ(split.inputs.size(), paths.size());
  double total_in = 0.0;
  double total_out = 0.0;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    total_in += split.inputs[p];
    total_out += split.outputs[p];
  }
  EXPECT_NEAR(total_in, budget, 1e-6 * budget);
  EXPECT_NEAR(total_out, flow->objective, 1e-6 * flow->objective);
}

}  // namespace
}  // namespace arb::core
