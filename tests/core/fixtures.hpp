#pragma once

// Shared fixtures for core-strategy tests: the paper's Section V market
// and helpers to build small custom loops.

#include "graph/cycle.hpp"
#include "graph/cycle_enumeration.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace arb::core::testing {

/// The paper's worked example: pools (100,200), (300,200), (200,400),
/// CEX prices $2 / $10.2 / $20.
struct Section5Market {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  TokenId x, y, z;
  PoolId xy, yz, zx;

  Section5Market() {
    x = graph.add_token("X");
    y = graph.add_token("Y");
    z = graph.add_token("Z");
    xy = graph.add_pool(x, y, 100.0, 200.0);
    yz = graph.add_pool(y, z, 300.0, 200.0);
    zx = graph.add_pool(z, x, 200.0, 400.0);
    prices.set_price(x, 2.0);
    prices.set_price(y, 10.2);
    prices.set_price(z, 20.0);
  }

  /// The (unique) profitable orientation X -> Y -> Z -> X.
  [[nodiscard]] graph::Cycle loop() const {
    return *graph::Cycle::create(graph, {x, y, z}, {xy, yz, zx});
  }
};

/// A balanced three-token market with no arbitrage anywhere (consistent
/// internal prices; fees make every loop strictly unprofitable).
struct NoArbMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  TokenId a, b, c;

  NoArbMarket() {
    a = graph.add_token("A");
    b = graph.add_token("B");
    c = graph.add_token("C");
    // Consistent: A=$1, B=$2, C=$4.
    graph.add_pool(a, b, 400.0, 200.0);
    graph.add_pool(b, c, 200.0, 100.0);
    graph.add_pool(c, a, 100.0, 400.0);
    prices.set_price(a, 1.0);
    prices.set_price(b, 2.0);
    prices.set_price(c, 4.0);
  }

  [[nodiscard]] graph::Cycle loop() const {
    return *graph::Cycle::create(
        graph, {a, b, c}, {PoolId{0}, PoolId{1}, PoolId{2}});
  }
};

}  // namespace arb::core::testing
