#include "core/routing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "math/scalar_solve.hpp"

namespace arb::core {
namespace {

const TokenId kA{0};
const TokenId kB{1};
const TokenId kC{2};

/// Two direct A->B pools plus a two-hop A->C->B route.
struct RoutedMarket {
  amm::CpmmPool direct1{PoolId{0}, kA, kB, 1'000.0, 2'000.0};
  amm::CpmmPool direct2{PoolId{1}, kA, kB, 400.0, 900.0};
  amm::CpmmPool leg_ac{PoolId{2}, kA, kC, 800.0, 800.0};
  amm::CpmmPool leg_cb{PoolId{3}, kC, kB, 700.0, 1'500.0};

  [[nodiscard]] std::vector<amm::PoolPath> paths() const {
    return {*amm::PoolPath::create({amm::Hop{&direct1, kA}}),
            *amm::PoolPath::create({amm::Hop{&direct2, kA}}),
            *amm::PoolPath::create(
                {amm::Hop{&leg_ac, kA}, amm::Hop{&leg_cb, kC}})};
  }
};

TEST(RoutingTest, IdenticalPathsSplitEvenly) {
  amm::CpmmPool p1(PoolId{0}, kA, kB, 1'000.0, 2'000.0);
  amm::CpmmPool p2(PoolId{1}, kA, kB, 1'000.0, 2'000.0);
  const std::vector<amm::PoolPath> paths{
      *amm::PoolPath::create({amm::Hop{&p1, kA}}),
      *amm::PoolPath::create({amm::Hop{&p2, kA}})};
  const auto split = optimal_route_split(paths, 100.0).value();
  EXPECT_NEAR(split.inputs[0], 50.0, 1e-6);
  EXPECT_NEAR(split.inputs[1], 50.0, 1e-6);
  EXPECT_NEAR(split.inputs[0] + split.inputs[1], 100.0, 1e-9);
}

TEST(RoutingTest, MarginalRatesEqualizeOnFundedPaths) {
  const RoutedMarket m;
  const auto paths = m.paths();
  const auto split = optimal_route_split(paths, 150.0).value();
  for (std::size_t p = 0; p < paths.size(); ++p) {
    if (split.inputs[p] > 1e-9) {
      const double marginal =
          paths[p].compose().derivative(split.inputs[p]);
      EXPECT_NEAR(marginal, split.marginal_rate,
                  1e-6 * split.marginal_rate)
          << "path " << p;
    }
  }
}

TEST(RoutingTest, BeatsEverySinglePathForLargeBudget) {
  const RoutedMarket m;
  const auto paths = m.paths();
  const double budget = 300.0;
  const auto split = optimal_route_split(paths, budget).value();
  const double single = best_single_path_output(paths, budget).value();
  EXPECT_GT(split.total_output, single * 1.02);  // splitting pays
}

TEST(RoutingTest, TinyBudgetGoesToBestRatePath) {
  const RoutedMarket m;
  const auto paths = m.paths();
  // Best zero-size rate: direct2 = 0.997·900/400 = 2.243.
  const auto split = optimal_route_split(paths, 1e-6).value();
  EXPECT_GT(split.inputs[1], split.inputs[0]);
  EXPECT_GT(split.inputs[1], split.inputs[2]);
}

TEST(RoutingTest, ZeroBudgetYieldsZeroSplit) {
  const RoutedMarket m;
  const auto split = optimal_route_split(m.paths(), 0.0).value();
  for (double d : split.inputs) EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_DOUBLE_EQ(split.total_output, 0.0);
}

TEST(RoutingTest, MatchesGoldenSectionOnTwoPaths) {
  amm::CpmmPool p1(PoolId{0}, kA, kB, 1'000.0, 2'000.0);
  amm::CpmmPool p2(PoolId{1}, kA, kB, 300.0, 750.0);
  const std::vector<amm::PoolPath> paths{
      *amm::PoolPath::create({amm::Hop{&p1, kA}}),
      *amm::PoolPath::create({amm::Hop{&p2, kA}})};
  const double budget = 120.0;
  const auto split = optimal_route_split(paths, budget).value();

  // Independent 1-D check: out1(d) + out2(budget − d) over d.
  const auto m1 = paths[0].compose();
  const auto m2 = paths[1].compose();
  const auto report = math::golden_section_maximize(
      [&](double d) { return m1.evaluate(d) + m2.evaluate(budget - d); },
      0.0, budget);
  EXPECT_NEAR(split.inputs[0], report.x, 1e-5);
  EXPECT_NEAR(split.total_output, report.f, 1e-7 * report.f);
}

TEST(RoutingTest, SplitSpendsExactlyTheBudget) {
  Rng rng(81);
  for (int trial = 0; trial < 30; ++trial) {
    amm::CpmmPool p1(PoolId{0}, kA, kB, rng.uniform(100.0, 5'000.0),
                     rng.uniform(100.0, 5'000.0));
    amm::CpmmPool p2(PoolId{1}, kA, kB, rng.uniform(100.0, 5'000.0),
                     rng.uniform(100.0, 5'000.0));
    const std::vector<amm::PoolPath> paths{
        *amm::PoolPath::create({amm::Hop{&p1, kA}}),
        *amm::PoolPath::create({amm::Hop{&p2, kA}})};
    const double budget = rng.uniform(1.0, 1'000.0);
    const auto split = optimal_route_split(paths, budget).value();
    EXPECT_NEAR(split.inputs[0] + split.inputs[1], budget, 1e-9 * budget);
    // Never worse than the best unsplit route.
    const double single = best_single_path_output(paths, budget).value();
    EXPECT_GE(split.total_output, single * (1.0 - 1e-9));
  }
}

// Regression: the bisection tolerance used to be absolute (1e-12 on λ),
// which at huge budgets either never converged or stopped with inputs
// that missed the budget by whole tokens. The tolerance is now relative
// to the bracket scale, so a 1e12 budget against ~1e3 reserves converges
// and lands the budget exactly.
TEST(RoutingTest, LargeBudgetConvergesWithRelativeTolerance) {
  const RoutedMarket m;
  const auto paths = m.paths();
  for (const double budget : {1e6, 1e9, 1e12}) {
    const auto result = optimal_route_split(paths, budget);
    ASSERT_TRUE(result.ok()) << "budget " << budget;
    const auto& split = *result;
    double spent = 0.0;
    for (double d : split.inputs) spent += d;
    EXPECT_NEAR(spent, budget, 1e-9 * budget) << "budget " << budget;
    EXPECT_LT(split.iterations, 200) << "budget " << budget;
    // Deep in every pool, marginal rates still equalize.
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (split.inputs[p] > 1e-9 * budget) {
        const double marginal =
            paths[p].compose().derivative(split.inputs[p]);
        EXPECT_NEAR(marginal, split.marginal_rate,
                    1e-6 * split.marginal_rate)
            << "budget " << budget << " path " << p;
      }
    }
  }
}

TEST(RoutingTest, ValidationRejectsBadInputs) {
  const RoutedMarket m;
  EXPECT_FALSE(optimal_route_split({}, 1.0).ok());
  EXPECT_FALSE(optimal_route_split(m.paths(), -1.0).ok());
  // Mismatched endpoints.
  amm::CpmmPool odd(PoolId{9}, kA, kC, 100.0, 100.0);
  auto paths = m.paths();
  paths.push_back(*amm::PoolPath::create({amm::Hop{&odd, kA}}));
  EXPECT_FALSE(optimal_route_split(paths, 1.0).ok());
}

}  // namespace
}  // namespace arb::core
