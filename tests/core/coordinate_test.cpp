#include "core/coordinate.hpp"

#include <gtest/gtest.h>

#include "core/convex.hpp"
#include "core/single_start.hpp"
#include "market/generator.hpp"
#include "graph/cycle_enumeration.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::core {
namespace {

using testing::NoArbMarket;
using testing::Section5Market;

TEST(CoordinateTest, MatchesBarrierOnPaperExample) {
  const Section5Market m;
  const auto hops = make_hop_data(m.graph, m.prices, m.loop()).value();
  const CoordinateReport coordinate = solve_reduced_coordinate(hops);
  const auto barrier = solve_convex(m.graph, m.prices, m.loop()).value();
  EXPECT_TRUE(coordinate.converged);
  // Paper value $206.1; both solvers must land there.
  EXPECT_NEAR(coordinate.profit_usd, 206.15, 0.05);
  EXPECT_NEAR(coordinate.profit_usd, barrier.outcome.monetized_usd, 0.05);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_NEAR(coordinate.inputs[i], barrier.inputs[i], 0.1) << "hop " << i;
  }
}

TEST(CoordinateTest, AtLeastMaxMaxByConstruction) {
  const Section5Market m;
  const auto hops = make_hop_data(m.graph, m.prices, m.loop()).value();
  const CoordinateReport report = solve_reduced_coordinate(hops);
  const auto max_max = evaluate_max_max(m.graph, m.prices, m.loop()).value();
  // Seeded at the best single-start point of rotation 0 and ascending,
  // the result dominates that rotation; on this example it also beats
  // the global MaxMax.
  EXPECT_GE(report.profit_usd, max_max.monetized_usd - 1e-9);
}

TEST(CoordinateTest, ZeroOnProfitlessLoop) {
  const NoArbMarket m;
  const auto hops = make_hop_data(m.graph, m.prices, m.loop()).value();
  const CoordinateReport report = solve_reduced_coordinate(hops);
  EXPECT_TRUE(report.converged);
  EXPECT_DOUBLE_EQ(report.profit_usd, 0.0);
  for (double d : report.inputs) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(CoordinateTest, AgreesWithBarrierAcrossPriceSweep) {
  Section5Market m;
  for (double px = 1.0; px <= 20.0; px += 2.0) {
    m.prices.set_price(m.x, px);
    const auto hops = make_hop_data(m.graph, m.prices, m.loop()).value();
    const CoordinateReport coordinate = solve_reduced_coordinate(hops);
    const auto barrier = solve_convex(m.graph, m.prices, m.loop()).value();
    EXPECT_NEAR(coordinate.profit_usd, barrier.outcome.monetized_usd,
                0.01 * std::max(1.0, barrier.outcome.monetized_usd))
        << "px=" << px;
  }
}

TEST(CoordinateTest, AgreesWithBarrierOnRandomLoops) {
  market::GeneratorConfig config;
  config.token_count = 14;
  config.pool_count = 30;
  config.seed = 77;
  const auto snapshot = market::generate_snapshot(config);
  const auto loops = graph::filter_arbitrage(
      snapshot.graph,
      graph::enumerate_fixed_length_cycles(snapshot.graph, 3));
  ASSERT_FALSE(loops.empty());
  std::size_t checked = 0;
  for (const graph::Cycle& loop : loops) {
    if (++checked > 12) break;
    const auto hops =
        make_hop_data(snapshot.graph, snapshot.prices, loop).value();
    const CoordinateReport coordinate = solve_reduced_coordinate(hops);
    const auto barrier =
        solve_convex(snapshot.graph, snapshot.prices, loop).value();
    EXPECT_NEAR(coordinate.profit_usd, barrier.outcome.monetized_usd,
                1e-4 * std::max(1.0, barrier.outcome.monetized_usd));
  }
}

TEST(CoordinateTest, Length4Loop) {
  // Ring of 4 with an edge per hop.
  graph::TokenGraph g;
  std::vector<TokenId> tokens;
  market::CexPriceFeed prices;
  for (int i = 0; i < 4; ++i) {
    tokens.push_back(g.add_token("T" + std::to_string(i)));
    prices.set_price(tokens.back(), 1.0 + i);
  }
  std::vector<PoolId> pools;
  for (int i = 0; i < 4; ++i) {
    pools.push_back(g.add_pool(tokens[i], tokens[(i + 1) % 4], 1000.0,
                               1015.0));
  }
  const auto cycle = graph::Cycle::create(g, tokens, pools).value();
  const auto hops = make_hop_data(g, prices, cycle).value();
  const CoordinateReport coordinate = solve_reduced_coordinate(hops);
  const auto barrier = solve_convex(g, prices, cycle).value();
  EXPECT_GT(coordinate.profit_usd, 0.0);
  EXPECT_NEAR(coordinate.profit_usd, barrier.outcome.monetized_usd,
              1e-3 * barrier.outcome.monetized_usd);
}

}  // namespace
}  // namespace arb::core
