#include "core/study_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "market/generator.hpp"

namespace arb::core {
namespace {

MarketStudy small_study() {
  market::GeneratorConfig config;
  config.token_count = 14;
  config.pool_count = 30;
  config.seed = 11;
  return run_market_study(market::generate_snapshot(config), 3).value();
}

class StudyIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("arb_study_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(StudyIoTest, WritesOneRowPerOutcome) {
  const MarketStudy study = small_study();
  ASSERT_TRUE(write_study_csv(study, path_).ok());
  auto table = read_csv_file(path_);
  ASSERT_TRUE(table.ok());
  // 3 traditional + MaxPrice + MaxMax + Convex = 6 rows per loop.
  EXPECT_EQ(table->rows.size(), study.loops.size() * 6);
  EXPECT_EQ(table->header.size(), 8u);
}

TEST_F(StudyIoTest, RowsCarryConsistentValues) {
  const MarketStudy study = small_study();
  ASSERT_TRUE(write_study_csv(study, path_).ok());
  auto table = read_csv_file(path_).value();
  const std::size_t strategy_col = table.column_index("strategy");
  const std::size_t usd_col = table.column_index("monetized_usd");
  const std::size_t loop_col = table.column_index("loop_id");

  // For every loop, the written MaxMax value matches the in-memory one.
  for (const auto& row : table.rows) {
    if (row[strategy_col] != "MaxMax") continue;
    const std::size_t loop_id = *parse_u64(row[loop_col]);
    ASSERT_LT(loop_id, study.loops.size());
    EXPECT_DOUBLE_EQ(*parse_double(row[usd_col]),
                     study.loops[loop_id].max_max.monetized_usd);
  }
}

TEST_F(StudyIoTest, UnwritablePathFails) {
  const MarketStudy study = small_study();
  EXPECT_FALSE(write_study_csv(study, "/nonexistent/dir/out.csv").ok());
}

TEST(StudySummaryTest, AggregatesMatchDefinition) {
  const MarketStudy study = small_study();
  const StudySummary summary = summarize_study(study);
  EXPECT_EQ(summary.max_max.loops, study.loops.size());
  // MaxMax always matches itself.
  EXPECT_EQ(summary.max_max.matches_max_max, study.loops.size());
  // Convex >= MaxMax - tolerance everywhere.
  EXPECT_EQ(summary.convex.matches_max_max, study.loops.size());
  // Totals ordered like the strategies.
  EXPECT_LE(summary.max_price.total_usd, summary.max_max.total_usd + 1e-9);
  EXPECT_LE(summary.max_max.total_usd, summary.convex.total_usd + 1e-3);
  // Max is bounded by total for non-negative profits.
  EXPECT_LE(summary.max_max.max_usd, summary.max_max.total_usd + 1e-12);
}

TEST(StudySummaryTest, EmptyStudy) {
  MarketStudy study;
  const StudySummary summary = summarize_study(study);
  EXPECT_EQ(summary.max_max.loops, 0u);
  EXPECT_DOUBLE_EQ(summary.max_max.total_usd, 0.0);
}

}  // namespace
}  // namespace arb::core
