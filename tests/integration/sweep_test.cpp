// Integration tests for the Section V price sweep (Figs. 2-4) and the
// snapshot IO round trip feeding the strategy pipeline.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "core/comparison.hpp"
#include "market/generator.hpp"
#include "market/io.hpp"
#include "tests/core/fixtures.hpp"

namespace arb {
namespace {

using core::testing::Section5Market;

TEST(SweepTest, MaxMaxIsEnvelopeAcrossPriceSweep) {
  // Fig. 2: as P_x sweeps 0..20, MaxMax equals the max of the three
  // start-token curves at every point.
  Section5Market m;
  for (double px = 0.2; px <= 20.0; px += 0.4) {
    m.prices.set_price(m.x, px);
    auto rotations = core::evaluate_all_rotations(m.graph, m.prices, m.loop());
    auto max_max = core::evaluate_max_max(m.graph, m.prices, m.loop());
    ASSERT_TRUE(rotations.ok());
    ASSERT_TRUE(max_max.ok());
    double best = 0.0;
    for (const auto& r : *rotations) best = std::max(best, r.monetized_usd);
    EXPECT_DOUBLE_EQ(max_max->monetized_usd, best) << "px=" << px;
  }
}

TEST(SweepTest, ConvexDominatesMaxMaxAcrossPriceSweep) {
  // Fig. 3: Convex >= MaxMax at every P_x.
  Section5Market m;
  for (double px = 0.2; px <= 20.0; px += 0.4) {
    m.prices.set_price(m.x, px);
    auto max_max = core::evaluate_max_max(m.graph, m.prices, m.loop());
    auto convex = core::solve_convex(m.graph, m.prices, m.loop());
    ASSERT_TRUE(max_max.ok());
    ASSERT_TRUE(convex.ok());
    EXPECT_GE(convex->outcome.monetized_usd,
              max_max->monetized_usd * (1.0 - 1e-9) - 1e-9)
        << "px=" << px;
  }
}

TEST(SweepTest, MaxPriceSwitchesStartTokenWithPrices) {
  Section5Market m;
  m.prices.set_price(m.x, 25.0);  // now X has the highest CEX price
  auto outcome = core::evaluate_max_price(m.graph, m.prices, m.loop());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->start_token, m.x);
}

TEST(SweepTest, TokenCompositionHasFewDistinctOptima) {
  // Fig. 4: across the sweep the optimal retention pattern clusters on a
  // handful of positions (the paper reports ~6). Verify it is small and
  // the composition switches at least once.
  Section5Market m;
  std::set<std::string> patterns;
  for (double px = 0.2; px <= 20.0; px += 0.2) {
    m.prices.set_price(m.x, px);
    auto convex = core::solve_convex(m.graph, m.prices, m.loop());
    ASSERT_TRUE(convex.ok());
    std::string pattern;
    for (const core::TokenProfit& p : convex->outcome.profits) {
      pattern += p.amount > 0.05 ? '1' : '0';
    }
    patterns.insert(pattern);
  }
  EXPECT_GE(patterns.size(), 2u);
  EXPECT_LE(patterns.size(), 8u);
}

TEST(SweepTest, ZeroPriceTokenStillHandled) {
  // P_x -> 0 degenerates gracefully: profits held in X are worthless but
  // the solve must not fail. (Feed forbids exactly zero, use epsilon.)
  Section5Market m;
  m.prices.set_price(m.x, 1e-9);
  auto convex = core::solve_convex(m.graph, m.prices, m.loop());
  ASSERT_TRUE(convex.ok());
  auto max_max = core::evaluate_max_max(m.graph, m.prices, m.loop());
  ASSERT_TRUE(max_max.ok());
  EXPECT_GE(convex->outcome.monetized_usd,
            max_max->monetized_usd * (1.0 - 1e-7) - 1e-9);
  EXPECT_NE(max_max->start_token, m.x);
}

TEST(IoPipelineTest, StudyOnReloadedSnapshotMatchesOriginal) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("arb_sweep_io_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  market::GeneratorConfig config;
  config.token_count = 14;
  config.pool_count = 30;
  const auto snapshot = market::generate_snapshot(config);
  ASSERT_TRUE(market::save_snapshot(snapshot, dir.string()).ok());
  auto reloaded = market::load_snapshot(dir.string());
  ASSERT_TRUE(reloaded.ok());

  auto study_a = core::run_market_study(snapshot, 3);
  auto study_b = core::run_market_study(*reloaded, 3);
  ASSERT_TRUE(study_a.ok());
  ASSERT_TRUE(study_b.ok());
  ASSERT_EQ(study_a->loops.size(), study_b->loops.size());
  for (std::size_t i = 0; i < study_a->loops.size(); ++i) {
    EXPECT_DOUBLE_EQ(study_a->loops[i].max_max.monetized_usd,
                     study_b->loops[i].max_max.monetized_usd);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace arb
