// CPMM homogeneity: scaling every reserve of a loop by c scales the
// optimal input and the profit by exactly c (the swap function is
// positively homogeneous: F(c·d | c·x, c·y) = c·F(d | x, y)). These
// tests pin that invariance across strategies and check the library
// stays numerically sound at extreme reserve/price scales.

#include <gtest/gtest.h>

#include "core/comparison.hpp"
#include "core/plan.hpp"
#include "sim/engine.hpp"

namespace arb {
namespace {

struct ScaledMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  graph::Cycle loop;

  explicit ScaledMarket(double reserve_scale, double price_scale = 1.0)
      : loop(make(graph, prices, reserve_scale, price_scale)) {}

  static graph::Cycle make(graph::TokenGraph& g, market::CexPriceFeed& p,
                           double c, double q) {
    const TokenId x = g.add_token("X");
    const TokenId y = g.add_token("Y");
    const TokenId z = g.add_token("Z");
    const PoolId xy = g.add_pool(x, y, 100.0 * c, 200.0 * c);
    const PoolId yz = g.add_pool(y, z, 300.0 * c, 200.0 * c);
    const PoolId zx = g.add_pool(z, x, 200.0 * c, 400.0 * c);
    p.set_price(x, 2.0 * q);
    p.set_price(y, 10.2 * q);
    p.set_price(z, 20.0 * q);
    return *graph::Cycle::create(g, {x, y, z}, {xy, yz, zx});
  }
};

class ReserveScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(ReserveScaleTest, ProfitsScaleLinearly) {
  const double c = GetParam();
  const ScaledMarket base(1.0);
  const ScaledMarket scaled(c);
  const auto base_mm =
      core::evaluate_max_max(base.graph, base.prices, base.loop).value();
  const auto scaled_mm =
      core::evaluate_max_max(scaled.graph, scaled.prices, scaled.loop)
          .value();
  EXPECT_NEAR(scaled_mm.input, base_mm.input * c, 1e-6 * base_mm.input * c);
  EXPECT_NEAR(scaled_mm.monetized_usd, base_mm.monetized_usd * c,
              1e-6 * base_mm.monetized_usd * c);

  const auto base_cv =
      core::solve_convex(base.graph, base.prices, base.loop).value();
  const auto scaled_cv =
      core::solve_convex(scaled.graph, scaled.prices, scaled.loop).value();
  EXPECT_NEAR(scaled_cv.outcome.monetized_usd,
              base_cv.outcome.monetized_usd * c,
              1e-4 * base_cv.outcome.monetized_usd * c);
}

TEST_P(ReserveScaleTest, PriceProductIsScaleInvariant) {
  const ScaledMarket base(1.0);
  const ScaledMarket scaled(GetParam());
  EXPECT_NEAR(scaled.loop.price_product(scaled.graph),
              base.loop.price_product(base.graph), 1e-12);
}

TEST_P(ReserveScaleTest, ExecutionStillRealizesAtScale) {
  ScaledMarket m(GetParam());
  const auto solution =
      core::solve_convex(m.graph, m.prices, m.loop).value();
  const auto plan = core::plan_from_convex(m.graph, m.loop, solution).value();
  const auto report =
      sim::ExecutionEngine().execute(m.graph, m.prices, plan).value();
  EXPECT_NEAR(report.realized_usd, solution.outcome.monetized_usd,
              1e-5 * std::max(1.0, solution.outcome.monetized_usd));
}

INSTANTIATE_TEST_SUITE_P(Scales, ReserveScaleTest,
                         ::testing::Values(1e-4, 1e-2, 1e2, 1e5, 1e8));

class PriceScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(PriceScaleTest, MonetizationScalesWithPrices) {
  // USD prices scale the objective but not the token-space optimum.
  const double q = GetParam();
  const ScaledMarket base(1.0, 1.0);
  const ScaledMarket scaled(1.0, q);
  const auto base_mm =
      core::evaluate_max_max(base.graph, base.prices, base.loop).value();
  const auto scaled_mm =
      core::evaluate_max_max(scaled.graph, scaled.prices, scaled.loop)
          .value();
  EXPECT_EQ(scaled_mm.start_token, base_mm.start_token);
  EXPECT_NEAR(scaled_mm.input, base_mm.input, 1e-7 * base_mm.input);
  EXPECT_NEAR(scaled_mm.monetized_usd, base_mm.monetized_usd * q,
              1e-6 * base_mm.monetized_usd * q);

  const auto base_cv =
      core::solve_convex(base.graph, base.prices, base.loop).value();
  const auto scaled_cv =
      core::solve_convex(scaled.graph, scaled.prices, scaled.loop).value();
  EXPECT_NEAR(scaled_cv.outcome.monetized_usd,
              base_cv.outcome.monetized_usd * q,
              1e-4 * base_cv.outcome.monetized_usd * q);
}

INSTANTIATE_TEST_SUITE_P(PriceScales, PriceScaleTest,
                         ::testing::Values(1e-6, 1e-3, 1e3, 1e6));

}  // namespace
}  // namespace arb
