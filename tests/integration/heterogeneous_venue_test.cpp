// End-to-end validation of the heterogeneous venue layer.
//
// Three claims are established here:
//  1. Dispatch safety: on all-CPMM markets the scanner's new kind
//     dispatch is bit-identical to the pre-refactor fast path — verified
//     differentially by streaming 500+ randomized reserve events through
//     the incremental scanner (whose slots go through the dispatch) and
//     comparing against from-scratch scans, with exact equality.
//  2. Coverage: a StableSwap hop can make a loop profitable that a
//     CPMM-only view of the same reserves misses entirely; the mixed
//     barrier fast path finds and plans it (and agrees with the generic
//     solver when the fast path is forced off).
//  3. Pipeline: a mixed-venue market survives generate -> save -> load
//     round-trip exactly, scans, and streams 1000 events through the
//     scanner service with mixed loops repriced along the way.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/convex.hpp"
#include "core/scanner.hpp"
#include "graph/cycle.hpp"
#include "graph/cycle_enumeration.hpp"
#include "market/generator.hpp"
#include "market/io.hpp"
#include "runtime/incremental_scanner.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"

namespace arb {
namespace {

/// USDC -> USDT -> WETH -> USDC where the first leg is a near-pegged
/// StableSwap pool. The stable curve quotes ~1:1 on the slightly
/// imbalanced pair where a CPMM would quote ~0.992, and that difference
/// is exactly what makes the loop clear its fees.
struct StableEdgeMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  TokenId usdc, usdt, weth;
  PoolId stable_leg, usdt_weth, weth_usdc;

  explicit StableEdgeMarket(bool stable_as_cpmm) {
    usdc = graph.add_token("USDC");
    usdt = graph.add_token("USDT");
    weth = graph.add_token("WETH");
    stable_leg =
        stable_as_cpmm
            ? graph.add_pool(usdc, usdt, 1'004'000.0, 996'000.0, 0.0004)
            : graph.add_stable_pool(usdc, usdt, 1'004'000.0, 996'000.0,
                                    200.0, 0.0004);
    usdt_weth = graph.add_pool(usdt, weth, 1'830'000.0, 1'000.0);
    weth_usdc = graph.add_pool(weth, usdc, 1'000.0, 1'850'000.0);
    prices.set_price(usdc, 1.0);
    prices.set_price(usdt, 1.0);
    prices.set_price(weth, 1'840.0);
  }

  [[nodiscard]] graph::Cycle loop() const {
    return *graph::Cycle::create(graph, {usdc, usdt, weth},
                                 {stable_leg, usdt_weth, weth_usdc});
  }
};

TEST(HeterogeneousVenueTest, StableHopCreatesLoopCpmmViewMisses) {
  const StableEdgeMarket mixed(/*stable_as_cpmm=*/false);
  const StableEdgeMarket cpmm_view(/*stable_as_cpmm=*/true);

  // The profitability gate itself disagrees between the two views.
  EXPECT_GT(mixed.loop().price_product(mixed.graph), 1.0);
  EXPECT_LT(cpmm_view.loop().price_product(cpmm_view.graph), 1.0);

  core::ScannerConfig config;
  config.loop_lengths = {3};
  config.strategy = core::StrategyKind::kConvexOptimization;

  const auto mixed_ops =
      core::scan_market(mixed.graph, mixed.prices, config).value();
  ASSERT_EQ(mixed_ops.size(), 1u);
  EXPECT_GT(mixed_ops[0].net_profit_usd, 0.0);
  ASSERT_EQ(mixed_ops[0].plan.steps.size(), 3u);
  // The plan routes real volume through the stable leg.
  EXPECT_EQ(mixed_ops[0].plan.steps[0].pool, mixed.stable_leg);
  EXPECT_GT(mixed_ops[0].plan.steps[0].amount_in, 0.0);

  const auto cpmm_ops =
      core::scan_market(cpmm_view.graph, cpmm_view.prices, config).value();
  EXPECT_TRUE(cpmm_ops.empty());
}

TEST(HeterogeneousVenueTest, ConvexDispatchReportsPathTaken) {
  const StableEdgeMarket mixed(false);
  const StableEdgeMarket cpmm(true);
  core::ConvexContext ctx;

  // Mixed loops ride the analytic-kernel barrier fast path by default.
  auto fast = core::solve_convex(mixed.graph, mixed.prices, mixed.loop(),
                                 {}, ctx);
  ASSERT_TRUE(fast.ok());
  EXPECT_FALSE(ctx.used_generic);
  EXPECT_FALSE(ctx.used_closed_form);
  EXPECT_FALSE(ctx.warm_hit);
  EXPECT_GT(fast->outcome.monetized_usd, 0.0);

  // Turning the fast path off forces the derivative-free generic route;
  // the two must agree on the monetized optimum.
  core::ConvexOptions no_fast;
  no_fast.use_mixed_fast_path = false;
  auto generic = core::solve_convex(mixed.graph, mixed.prices, mixed.loop(),
                                    no_fast, ctx);
  ASSERT_TRUE(generic.ok());
  EXPECT_TRUE(ctx.used_generic);
  EXPECT_FALSE(ctx.warm_hit);
  EXPECT_GT(generic->outcome.monetized_usd, 0.0);
  EXPECT_NEAR(fast->outcome.monetized_usd, generic->outcome.monetized_usd,
              1e-6 * std::max(1.0, generic->outcome.monetized_usd));

  // All-CPMM loops stay on the barrier/closed-form path; a profitable
  // two-pool CPMM market proves the flag resets between solves.
  graph::TokenGraph g2;
  const TokenId a = g2.add_token("A");
  const TokenId b = g2.add_token("B");
  const PoolId p1 = g2.add_pool(a, b, 100.0, 220.0);
  const PoolId p2 = g2.add_pool(b, a, 200.0, 110.0);
  market::CexPriceFeed f2;
  f2.set_price(a, 1.0);
  f2.set_price(b, 0.5);
  const auto loops =
      graph::filter_arbitrage(g2, graph::enumerate_fixed_length_cycles(g2, 2));
  ASSERT_EQ(loops.size(), 1u);
  auto barrier = core::solve_convex(g2, f2, loops[0], {}, ctx);
  ASSERT_TRUE(barrier.ok());
  EXPECT_FALSE(ctx.used_generic);
  (void)p1;
  (void)p2;
  (void)cpmm;
}

/// Exact-equality comparison of two ranked opportunity sets.
void expect_identical(const std::vector<core::Opportunity>& full,
                      const std::vector<core::Opportunity>& incremental) {
  ASSERT_EQ(full.size(), incremental.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].cycle.rotation_key(),
              incremental[i].cycle.rotation_key())
        << "rank " << i;
    EXPECT_EQ(full[i].net_profit_usd, incremental[i].net_profit_usd)
        << "rank " << i;
    EXPECT_EQ(full[i].outcome.monetized_usd,
              incremental[i].outcome.monetized_usd)
        << "rank " << i;
  }
}

TEST(HeterogeneousVenueTest, AllCpmmDispatchBitIdenticalOver500Events) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_TRUE(snapshot.graph.all_cpmm());

  core::ScannerConfig config;
  config.loop_lengths = {3};
  config.strategy = core::StrategyKind::kConvexOptimization;
  // Warm starts stay off: a warm-started solve converges within
  // tolerance of the cold one but not to the same bits, and this test's
  // whole point is exact equality with a from-scratch scan.
  config.convex_warm_start = false;

  auto scanner =
      runtime::IncrementalScanner::create(snapshot, config).value();

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = 512;
  stream_config.pools_per_block = 1;
  stream_config.seed = 99;
  runtime::ReplayUpdateStream stream(snapshot, stream_config);

  market::MarketSnapshot reference = snapshot;
  std::size_t events = 0;
  std::vector<runtime::PoolUpdateEvent> batch;
  while (auto event = stream.next()) {
    ASSERT_EQ(event->liquidity, 0.0);  // all-CPMM stream: reserve events
    ASSERT_TRUE(reference.graph
                    .set_pool_reserves(event->pool, event->reserve0,
                                       event->reserve1)
                    .ok());
    batch.push_back(*event);
    ++events;
    if (batch.size() == 16) {
      const auto report = scanner.apply(batch).value();
      EXPECT_EQ(report.repriced_mixed, 0u);  // no generic solves, ever
      EXPECT_EQ(report.repriced_cpmm, report.repriced);
      batch.clear();
      expect_identical(
          core::scan_market(reference.graph, reference.prices, config)
              .value(),
          scanner.collect());
    }
  }
  EXPECT_GE(events, 500u);
}

TEST(HeterogeneousVenueTest, MixedMarketEndToEnd) {
  market::GeneratorConfig gen;
  gen.token_count = 20;
  gen.pool_count = 48;
  gen.stable_fraction = 0.2;
  gen.concentrated_fraction = 0.2;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);

  std::size_t stable = 0;
  std::size_t concentrated = 0;
  for (const amm::AnyPool& pool : snapshot.graph.pools()) {
    stable += pool.kind() == amm::PoolKind::kStable;
    concentrated += pool.kind() == amm::PoolKind::kConcentrated;
  }
  ASSERT_GT(concentrated, 0u);
  ASSERT_FALSE(snapshot.graph.all_cpmm());

  // --- save / load round-trip: every kind and parameter exact. ---
  const auto dir = std::filesystem::temp_directory_path() /
                   "arb_hetero_e2e_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(market::save_snapshot(snapshot, dir.string()).ok());
  const auto loaded = market::load_snapshot(dir.string()).value();
  ASSERT_EQ(loaded.graph.pool_count(), snapshot.graph.pool_count());
  for (std::size_t i = 0; i < snapshot.graph.pool_count(); ++i) {
    const amm::AnyPool& a = snapshot.graph.pool(PoolId{(unsigned)i});
    const amm::AnyPool& b = loaded.graph.pool(PoolId{(unsigned)i});
    ASSERT_EQ(a.kind(), b.kind()) << "pool " << i;
    EXPECT_EQ(a.reserve0(), b.reserve0()) << "pool " << i;
    EXPECT_EQ(a.reserve1(), b.reserve1()) << "pool " << i;
    EXPECT_EQ(a.fee(), b.fee()) << "pool " << i;
    if (a.kind() == amm::PoolKind::kStable) {
      EXPECT_EQ(a.stable().amplification(), b.stable().amplification());
    } else if (a.kind() == amm::PoolKind::kConcentrated) {
      EXPECT_EQ(a.concentrated().liquidity(), b.concentrated().liquidity());
      EXPECT_EQ(a.concentrated().price(), b.concentrated().price());
      EXPECT_EQ(a.concentrated().p_lo(), b.concentrated().p_lo());
      EXPECT_EQ(a.concentrated().p_hi(), b.concentrated().p_hi());
    }
  }
  std::filesystem::remove_all(dir);

  // --- scan: mixed loops price through the same facade. ---
  core::ScannerConfig config;
  config.loop_lengths = {3};
  config.strategy = core::StrategyKind::kConvexOptimization;
  const auto ops =
      core::scan_market(loaded.graph, loaded.prices, config).value();
  for (const core::Opportunity& op : ops) {
    EXPECT_GE(op.net_profit_usd, 0.0);
    EXPECT_EQ(op.plan.steps.size(), op.cycle.length());
  }

  // --- stream 1000 events through the service. ---
  runtime::ServiceConfig service_config;
  service_config.scanner = config;
  service_config.worker_threads = 2;
  service_config.max_batch = 32;
  auto service = runtime::ScannerService::start(loaded, service_config).value();

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = 1000;
  stream_config.pools_per_block = 1;
  stream_config.seed = 5;
  runtime::ReplayUpdateStream stream(loaded, stream_config);

  market::MarketSnapshot reference = loaded;
  std::size_t published = 0;
  std::size_t concentrated_events = 0;
  while (auto event = stream.next()) {
    if (event->liquidity > 0.0) {
      ++concentrated_events;
      ASSERT_TRUE(reference.graph.mutable_pool(event->pool)
                      .set_concentrated_state(event->liquidity, event->price)
                      .ok());
    } else {
      ASSERT_TRUE(reference.graph
                      .set_pool_reserves(event->pool, event->reserve0,
                                         event->reserve1)
                      .ok());
    }
    ASSERT_TRUE(service->publish(*event));
    ++published;
  }
  EXPECT_EQ(published, 1000u);
  EXPECT_GT(concentrated_events, 0u);
  service->drain();
  ASSERT_TRUE(service->status().ok());

  expect_identical(
      core::scan_market(reference.graph, reference.prices, config).value(),
      service->opportunities());

  const runtime::MetricsSnapshot metrics = service->metrics();
  EXPECT_EQ(metrics.events_ingested, published);
  EXPECT_GT(metrics.loops_repriced_mixed, 0u);
  EXPECT_EQ(metrics.loops_repriced,
            metrics.loops_repriced_cpmm + metrics.loops_repriced_mixed);
  EXPECT_GT(metrics.mixed_reprice_samples, 0u);
  service->stop();
}

TEST(HeterogeneousVenueTest, GeneratorKnobsProduceValidMixedPools) {
  market::GeneratorConfig gen;
  gen.token_count = 24;
  gen.pool_count = 60;
  gen.stable_fraction = 0.3;
  gen.concentrated_fraction = 0.3;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);

  for (const amm::AnyPool& pool : snapshot.graph.pools()) {
    if (pool.kind() == amm::PoolKind::kStable) {
      EXPECT_GE(pool.stable().amplification(), gen.min_amplification);
      EXPECT_LE(pool.stable().amplification(), gen.max_amplification);
      EXPECT_EQ(pool.fee(), gen.stable_fee);
    } else if (pool.kind() == amm::PoolKind::kConcentrated) {
      const amm::ConcentratedPool& clp = pool.concentrated();
      EXPECT_GT(clp.price(), clp.p_lo());
      EXPECT_LT(clp.price(), clp.p_hi());
      EXPECT_GT(clp.reserve0(), 0.0);
      EXPECT_GT(clp.reserve1(), 0.0);
      EXPECT_EQ(pool.fee(), gen.concentrated_fee);
    }
  }

  // Same seed, same config: generation is deterministic.
  const market::MarketSnapshot again = market::generate_snapshot(gen);
  ASSERT_EQ(again.graph.pool_count(), snapshot.graph.pool_count());
  for (std::size_t i = 0; i < snapshot.graph.pool_count(); ++i) {
    const amm::AnyPool& a = snapshot.graph.pool(PoolId{(unsigned)i});
    const amm::AnyPool& b = again.graph.pool(PoolId{(unsigned)i});
    ASSERT_EQ(a.kind(), b.kind());
    EXPECT_EQ(a.reserve0(), b.reserve0());
    EXPECT_EQ(a.reserve1(), b.reserve1());
  }
}

}  // namespace
}  // namespace arb
