// The committed sample snapshot (data/sample_snapshot) is the repo's
// "golden" market: exactly the paper's scale. These tests pin it so a
// regression in IO, filtering or the strategies shows up as a concrete
// diff against checked-in data.

#include <gtest/gtest.h>

#include "core/scanner.hpp"
#include "market/io.hpp"

#ifndef ARB_REPO_DIR
#define ARB_REPO_DIR "."
#endif

namespace arb {
namespace {

market::MarketSnapshot load_sample() {
  auto snapshot =
      market::load_snapshot(std::string(ARB_REPO_DIR) +
                            "/data/sample_snapshot");
  EXPECT_TRUE(snapshot.ok()) << (snapshot.ok()
                                     ? ""
                                     : snapshot.error().to_string());
  return *std::move(snapshot);
}

TEST(SampleDatasetTest, MatchesPaperScale) {
  const auto snapshot = load_sample();
  EXPECT_EQ(snapshot.graph.token_count(), 51u);
  EXPECT_EQ(snapshot.graph.pool_count(), 208u);
  const auto filtered = snapshot.filtered(market::PoolFilter{});
  EXPECT_EQ(filtered.graph.pool_count(), 208u);  // all pass the filter
}

TEST(SampleDatasetTest, HasExactly123ArbitrageLoops) {
  const auto snapshot = load_sample().filtered(market::PoolFilter{});
  core::ScannerConfig config;
  config.loop_lengths = {3};
  const auto opportunities =
      core::scan_market(snapshot.graph, snapshot.prices, config).value();
  EXPECT_EQ(opportunities.size(), 123u);  // the paper's count
}

TEST(SampleDatasetTest, ScannerAgreesWithMarketStudy) {
  const auto snapshot = load_sample();
  auto study = core::run_market_study(snapshot, 3).value();
  core::ScannerConfig config;
  config.loop_lengths = {3};
  const auto opportunities =
      core::scan_market(study.market.graph, study.market.prices, config)
          .value();
  ASSERT_EQ(opportunities.size(), study.loops.size());
  // The scanner's best equals the study's best MaxMax value.
  double best_study = 0.0;
  for (const auto& row : study.loops) {
    best_study = std::max(best_study, row.max_max.monetized_usd);
  }
  EXPECT_NEAR(opportunities.front().net_profit_usd, best_study, 1e-9);
  // Total value agrees too.
  double scanner_total = 0.0;
  for (const auto& o : opportunities) scanner_total += o.net_profit_usd;
  double study_total = 0.0;
  for (const auto& row : study.loops) {
    study_total += row.max_max.monetized_usd;
  }
  EXPECT_NEAR(scanner_total, study_total, 1e-6);
}

}  // namespace
}  // namespace arb
