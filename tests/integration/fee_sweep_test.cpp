// Parameterized sweep over the pool fee: every theorem of the paper must
// hold at fee = 0 (the idealized CPMM), the Uniswap 0.3%, and fatter
// fees. Also pins the qualitative effect of fees: profit shrinks, the
// no-arbitrage threshold widens.

#include <gtest/gtest.h>

#include "core/comparison.hpp"
#include "core/plan.hpp"
#include "graph/cycle.hpp"
#include "sim/engine.hpp"

namespace arb {
namespace {

struct FeeMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  graph::Cycle loop;

  explicit FeeMarket(double fee)
      : loop(make(graph, prices, fee)) {}

  static graph::Cycle make(graph::TokenGraph& g, market::CexPriceFeed& p,
                           double fee) {
    const TokenId x = g.add_token("X");
    const TokenId y = g.add_token("Y");
    const TokenId z = g.add_token("Z");
    const PoolId xy = g.add_pool(x, y, 100.0, 200.0, fee);
    const PoolId yz = g.add_pool(y, z, 300.0, 200.0, fee);
    const PoolId zx = g.add_pool(z, x, 200.0, 400.0, fee);
    p.set_price(x, 2.0);
    p.set_price(y, 10.2);
    p.set_price(z, 20.0);
    return *graph::Cycle::create(g, {x, y, z}, {xy, yz, zx});
  }
};

class FeeSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(FeeSweepTest, AnalyticEqualsBisection) {
  const FeeMarket m(GetParam());
  core::SingleStartOptions bisect;
  core::SingleStartOptions analytic;
  analytic.use_bisection = false;
  for (std::size_t offset = 0; offset < 3; ++offset) {
    const auto a =
        core::evaluate_traditional(m.graph, m.prices, m.loop, offset, bisect)
            .value();
    const auto b = core::evaluate_traditional(m.graph, m.prices, m.loop,
                                              offset, analytic)
                       .value();
    EXPECT_NEAR(a.monetized_usd, b.monetized_usd,
                1e-6 * std::max(1.0, b.monetized_usd));
  }
}

TEST_P(FeeSweepTest, StrategyOrderingHolds) {
  const FeeMarket m(GetParam());
  const auto rows =
      core::compare_strategies(m.graph, m.prices, {m.loop}).value();
  const core::LoopComparison& row = rows.front();
  for (const core::StrategyOutcome& t : row.traditional) {
    EXPECT_LE(t.monetized_usd, row.max_max.monetized_usd + 1e-9);
  }
  EXPECT_LE(row.max_price.monetized_usd, row.max_max.monetized_usd + 1e-9);
  EXPECT_GE(row.convex.outcome.monetized_usd,
            row.max_max.monetized_usd * (1.0 - 1e-7) - 1e-9);
}

TEST_P(FeeSweepTest, ExecutionRealizesThePromise) {
  FeeMarket m(GetParam());
  const auto solution =
      core::solve_convex(m.graph, m.prices, m.loop).value();
  const auto plan =
      core::plan_from_convex(m.graph, m.loop, solution).value();
  const auto report =
      sim::ExecutionEngine().execute(m.graph, m.prices, plan).value();
  EXPECT_NEAR(report.realized_usd, solution.outcome.monetized_usd,
              1e-5 * std::max(1.0, solution.outcome.monetized_usd));
}

TEST_P(FeeSweepTest, PostTradeLoopIsDrained) {
  FeeMarket m(GetParam());
  const auto outcome =
      core::evaluate_max_max(m.graph, m.prices, m.loop).value();
  const auto plan =
      core::plan_from_single_start(m.graph, m.loop, outcome).value();
  ASSERT_TRUE(sim::ExecutionEngine().execute(m.graph, m.prices, plan).ok());
  EXPECT_LE(m.loop.price_product(m.graph), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fees, FeeSweepTest,
                         ::testing::Values(0.0, 0.001, 0.003, 0.01, 0.03,
                                           0.1));

TEST(FeeMonotonicityTest, ProfitDecreasesWithFee) {
  double previous = std::numeric_limits<double>::infinity();
  for (const double fee : {0.0, 0.003, 0.01, 0.03, 0.1}) {
    const FeeMarket m(fee);
    const auto outcome =
        core::evaluate_max_max(m.graph, m.prices, m.loop).value();
    EXPECT_LT(outcome.monetized_usd, previous) << "fee=" << fee;
    previous = outcome.monetized_usd;
  }
}

TEST(FeeMonotonicityTest, LargeEnoughFeeKillsTheLoop) {
  // The Section V loop's price ratio product is 8/3; γ³ < 3/8 ⇔
  // fee > 1 − (3/8)^(1/3) ≈ 0.279 kills it.
  const FeeMarket alive(0.25);
  const FeeMarket dead(0.30);
  EXPECT_GT(alive.loop.price_product(alive.graph), 1.0);
  EXPECT_LT(dead.loop.price_product(dead.graph), 1.0);
  const auto dead_outcome =
      core::evaluate_max_max(dead.graph, dead.prices, dead.loop).value();
  EXPECT_DOUBLE_EQ(dead_outcome.monetized_usd, 0.0);
  const auto dead_convex =
      core::solve_convex(dead.graph, dead.prices, dead.loop).value();
  EXPECT_DOUBLE_EQ(dead_convex.outcome.monetized_usd, 0.0);
}

}  // namespace
}  // namespace arb
