// Mixed-solver route differential: the analytic-kernel barrier fast
// path for mixed loops (warm-started and cold) and the derivative-free
// generic solver are three routes to the same optimum, and this suite
// pins their agreement while a mixed market streams.
//
// Two layers:
//  1. Solver level — 1000+ reserve/liquidity events replayed into a
//     mutable mixed market; after every event, each affected mixed loop
//     in the profitable orientation is solved warm, cold, and (on a
//     deterministic 1-in-32 subsample — the generic route is ~100x
//     slower, which is the point of the fast path) via the generic
//     solver with the fast path forced off. Monetized profits must
//     agree to ≤1e-6 relative (1e-6 USD absolute floor).
//  2. Engine level — the same 1000+-event stream through the scanner
//     service at shards K ∈ {1, 4} x pipeline depth ∈ {1, 2} with warm
//     starts on: ranked sets must be bit-identical across every pair
//     (the sharded/pipelined engine may not perturb the mixed fast
//     path's warm trajectories).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/convex.hpp"
#include "core/scanner.hpp"
#include "graph/cycle.hpp"
#include "graph/cycle_enumeration.hpp"
#include "market/generator.hpp"
#include "optim/workspace.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"

namespace arb {
namespace {

constexpr std::uint64_t kStreamSeed = 4242;

/// |a − b| ≤ 1e-6·max(|a|, |b|, 1) — the suite's agreement bar.
void expect_agree(double a, double b, const std::string& what,
                  std::size_t event, std::size_t cycle) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  EXPECT_LE(std::abs(a - b), 1e-6 * scale)
      << what << " disagree at event " << event << ", cycle " << cycle
      << ": " << a << " vs " << b;
}

TEST(MixedSolverDifferentialTest, WarmColdGenericAgreeOverStreamingEvents) {
  market::GeneratorConfig gen;
  gen.token_count = 8;
  gen.pool_count = 20;
  gen.stable_fraction = 0.25;
  gen.concentrated_fraction = 0.25;
  market::MarketSnapshot market = market::generate_snapshot(gen);
  ASSERT_FALSE(market.graph.all_cpmm());

  const std::vector<graph::Cycle> cycles =
      graph::enumerate_fixed_length_cycles(market.graph, 3);
  std::vector<const graph::Cycle*> mixed;
  for (const graph::Cycle& cycle : cycles) {
    if (!cycle.all_cpmm(market.graph)) mixed.push_back(&cycle);
  }
  ASSERT_FALSE(mixed.empty()) << "market has no mixed 3-loops";

  // Route contexts. The warm context carries one WarmStart slot per
  // mixed cycle (exactly the scanner's per-cycle ownership); cold and
  // generic reuse their workspaces but never a warm slot.
  core::ConvexContext warm_ctx;
  core::ConvexContext cold_ctx;
  core::ConvexContext generic_ctx;
  std::vector<optim::WarmStart> warm_slots(mixed.size());
  const core::ConvexOptions fast_options;
  core::ConvexOptions generic_options;
  generic_options.use_mixed_fast_path = false;

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = 52;  // 52 x 20 pools = 1040 events
  stream_config.seed = kStreamSeed;
  runtime::ReplayUpdateStream stream(market, stream_config);

  std::size_t events = 0;
  std::size_t compared = 0;
  std::size_t generic_compared = 0;
  while (auto event = stream.next()) {
    if (event->liquidity > 0.0) {
      ASSERT_TRUE(market.graph
                      .set_concentrated_state(event->pool, event->liquidity,
                                              event->price)
                      .ok());
    } else {
      ASSERT_TRUE(market.graph
                      .set_pool_reserves(event->pool, event->reserve0,
                                         event->reserve1)
                      .ok());
    }
    ++events;
    for (std::size_t i = 0; i < mixed.size(); ++i) {
      const graph::Cycle& cycle = *mixed[i];
      const auto& pools = cycle.pools();
      if (std::find(pools.begin(), pools.end(), event->pool) == pools.end()) {
        continue;
      }
      // Stay clear of the solver's no-arbitrage margin (1e-12) so every
      // compared solve actually runs its route.
      if (!(cycle.price_product(market.graph) > 1.0 + 1e-9)) continue;

      warm_ctx.warm = &warm_slots[i];
      auto warm = core::solve_convex(market.graph, market.prices, cycle,
                                     fast_options, warm_ctx);
      warm_ctx.warm = nullptr;
      auto cold = core::solve_convex(market.graph, market.prices, cycle,
                                     fast_options, cold_ctx);
      ASSERT_TRUE(warm.ok()) << warm.error().message;
      ASSERT_TRUE(cold.ok()) << cold.error().message;
      expect_agree(warm->outcome.monetized_usd, cold->outcome.monetized_usd,
                   "warm vs cold", events, i);
      ++compared;

      if (compared % 32 == 0) {
        auto generic = core::solve_convex(market.graph, market.prices, cycle,
                                          generic_options, generic_ctx);
        ASSERT_TRUE(generic.ok()) << generic.error().message;
        EXPECT_TRUE(generic_ctx.used_generic);
        expect_agree(cold->outcome.monetized_usd,
                     generic->outcome.monetized_usd, "cold vs generic",
                     events, i);
        ++generic_compared;
      }
    }
  }
  EXPECT_GE(events, 1000u);
  EXPECT_GE(compared, 100u) << "stream never exercised the mixed loops";
  EXPECT_GE(generic_compared, 25u);
}

/// One service run on the shared mixed stream; returns the ranked set.
std::vector<core::Opportunity> run_service(
    const market::MarketSnapshot& snapshot, std::size_t shards,
    std::size_t depth) {
  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  scanner.strategy = core::StrategyKind::kConvexOptimization;
  scanner.convex_warm_start = true;

  runtime::ServiceConfig config;
  config.scanner = scanner;
  config.worker_threads = 2;
  config.shards = shards;
  config.pipeline_depth = depth;
  config.max_batch = 1;  // batch composition == stream order
  auto service = runtime::ScannerService::start(snapshot, config).value();

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = 21;
  stream_config.seed = kStreamSeed;
  runtime::ReplayUpdateStream stream(snapshot, stream_config);
  std::size_t events = 0;
  while (auto event = stream.next()) {
    EXPECT_TRUE(service->publish(*event));
    ++events;
  }
  EXPECT_GE(events, 1000u);
  service->drain();
  EXPECT_TRUE(service->status().ok()) << service->status().error().message;

  std::vector<core::Opportunity> ranked = service->opportunities();
  const runtime::MetricsSnapshot metrics = service->metrics();
  // The fast path carries the mixed load; the generic rungs (tick
  // crossings, rescues) stay a remainder, and the split never exceeds
  // the gate survivors.
  EXPECT_GT(metrics.loops_repriced_mixed_fast, 0u);
  EXPECT_LE(metrics.loops_repriced_mixed_fast +
                metrics.loops_repriced_mixed_generic,
            metrics.loops_repriced_mixed);
  service->stop();
  return ranked;
}

TEST(MixedSolverDifferentialTest, BitStableAcrossShardsAndPipelineDepth) {
  market::GeneratorConfig gen;
  gen.token_count = 20;
  gen.pool_count = 48;
  gen.stable_fraction = 0.2;
  gen.concentrated_fraction = 0.2;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_FALSE(snapshot.graph.all_cpmm());

  const std::vector<core::Opportunity> base = run_service(snapshot, 1, 1);
  for (const std::size_t shards : {1, 4}) {
    for (const std::size_t depth : {1, 2}) {
      if (shards == 1 && depth == 1) continue;
      SCOPED_TRACE("K=" + std::to_string(shards) + " depth=" +
                   std::to_string(depth));
      const std::vector<core::Opportunity> run =
          run_service(snapshot, shards, depth);
      ASSERT_EQ(base.size(), run.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].cycle.rotation_key(), run[i].cycle.rotation_key())
            << "rank " << i;
        EXPECT_EQ(base[i].net_profit_usd, run[i].net_profit_usd)
            << "rank " << i;
        EXPECT_EQ(base[i].outcome.monetized_usd, run[i].outcome.monetized_usd)
            << "rank " << i;
      }
    }
  }
}

}  // namespace
}  // namespace arb
