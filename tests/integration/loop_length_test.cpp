// Parameterized sweep over loop length 2..8 (the paper's Section IV
// notes the strategies "can be applied to the loops with any length";
// Section VII discusses length 10). Rings of mildly imbalanced pools.

#include <gtest/gtest.h>

#include "core/comparison.hpp"
#include "core/coordinate.hpp"
#include "core/plan.hpp"
#include "sim/engine.hpp"
#include "sim/integer_check.hpp"

namespace arb {
namespace {

struct RingMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  std::vector<TokenId> tokens;
  std::vector<PoolId> pools;

  explicit RingMarket(std::size_t length) {
    for (std::size_t i = 0; i < length; ++i) {
      tokens.push_back(graph.add_token("T" + std::to_string(i)));
      // Varied prices so the monetization genuinely differs per start.
      prices.set_price(tokens.back(), 0.5 + 1.7 * static_cast<double>(i));
    }
    for (std::size_t i = 0; i < length; ++i) {
      // 1.5% edge per hop: profitable for every length up to 8 after
      // the 0.3% fee per hop.
      pools.push_back(graph.add_pool(tokens[i], tokens[(i + 1) % length],
                                     1000.0, 1015.0));
    }
  }

  [[nodiscard]] graph::Cycle loop() const {
    return *graph::Cycle::create(graph, tokens, pools);
  }
};

class LoopLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LoopLengthTest, LoopIsProfitable) {
  const RingMarket m(GetParam());
  EXPECT_GT(m.loop().price_product(m.graph), 1.0);
}

TEST_P(LoopLengthTest, StrategyOrderingHolds) {
  const RingMarket m(GetParam());
  const auto rows =
      core::compare_strategies(m.graph, m.prices, {m.loop()}).value();
  const core::LoopComparison& row = rows.front();
  ASSERT_EQ(row.traditional.size(), GetParam());
  for (const core::StrategyOutcome& t : row.traditional) {
    EXPECT_LE(t.monetized_usd, row.max_max.monetized_usd + 1e-9);
    EXPECT_GT(t.monetized_usd, 0.0);
  }
  EXPECT_GE(row.convex.outcome.monetized_usd,
            row.max_max.monetized_usd * (1.0 - 1e-7) - 1e-9);
}

TEST_P(LoopLengthTest, ConvexRotationInvariant) {
  const RingMarket m(GetParam());
  const graph::Cycle base = m.loop();
  const double reference =
      core::solve_convex(m.graph, m.prices, base).value().outcome
          .monetized_usd;
  for (std::size_t offset = 1; offset < GetParam(); offset += 2) {
    const double rotated =
        core::solve_convex(m.graph, m.prices, base.rotated(offset))
            .value()
            .outcome.monetized_usd;
    EXPECT_NEAR(rotated, reference, 1e-4 * std::max(1.0, reference))
        << "offset " << offset;
  }
}

TEST_P(LoopLengthTest, CoordinateSolverAgrees) {
  const RingMarket m(GetParam());
  const auto hops =
      core::make_hop_data(m.graph, m.prices, m.loop()).value();
  const auto coordinate = core::solve_reduced_coordinate(hops);
  const double barrier =
      core::solve_convex(m.graph, m.prices, m.loop()).value().outcome
          .monetized_usd;
  EXPECT_NEAR(coordinate.profit_usd, barrier,
              5e-3 * std::max(1.0, barrier));
}

TEST_P(LoopLengthTest, PlanExecutesAndSettlesInIntegerArithmetic) {
  RingMarket m(GetParam());
  const auto solution =
      core::solve_convex(m.graph, m.prices, m.loop()).value();
  const auto plan =
      core::plan_from_convex(m.graph, m.loop(), solution).value();

  const auto integer =
      sim::check_plan_integer(m.graph, m.prices, plan).value();
  EXPECT_TRUE(integer.settles);
  EXPECT_NEAR(integer.realized_usd, plan.expected_monetized_usd,
              0.01 * std::max(1.0, plan.expected_monetized_usd));

  const auto report =
      sim::ExecutionEngine().execute(m.graph, m.prices, plan).value();
  EXPECT_NEAR(report.realized_usd, solution.outcome.monetized_usd,
              1e-5 * std::max(1.0, solution.outcome.monetized_usd));
}

TEST_P(LoopLengthTest, MarginalReturnIsOneAtMaxMaxOptimum) {
  const RingMarket m(GetParam());
  const amm::PoolPath path = m.loop().path(m.graph, 0);
  const amm::OptimalTrade trade = amm::optimize_input_analytic(path);
  ASSERT_GT(trade.input, 0.0);
  EXPECT_NEAR(path.evaluate_dual(trade.input).deriv, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LoopLengthTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

}  // namespace
}  // namespace arb
