// Chaos differential test: the scanner service under fault injection
// must stay exactly explainable. A mirror EventValidator replays the
// identical faulted event sequence on the side, maintaining a reference
// snapshot of everything the service should have accepted; after the
// storm, the service's ranked set must equal a fresh scan_market of
// that reference with the quarantined pools' loops filtered out —
// valid because the ranking is a strict total order, so a subset of a
// ranked sequence is the ranked sequence of the subset. Run on an
// all-CPMM market and on a mixed StableSwap/concentrated market.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/scanner.hpp"
#include "market/generator.hpp"
#include "runtime/fault.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"
#include "runtime/validation.hpp"

namespace arb {
namespace {

constexpr std::uint64_t kChaosSeed = 31337;

/// Exact-equality comparison of two ranked opportunity sets.
void expect_identical(const std::vector<core::Opportunity>& expected,
                      const std::vector<core::Opportunity>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].cycle.rotation_key(), actual[i].cycle.rotation_key())
        << "rank " << i;
    EXPECT_EQ(expected[i].net_profit_usd, actual[i].net_profit_usd)
        << "rank " << i;
  }
}

/// Runs one faulted stream through the service and through the mirror
/// validator + reference snapshot, then checks the differential claim.
void run_chaos_differential(const market::MarketSnapshot& snapshot,
                            const core::ScannerConfig& scanner_config,
                            double fault_rate, std::size_t blocks) {
  SCOPED_TRACE("fault rate " + std::to_string(fault_rate) + " seed " +
               std::to_string(kChaosSeed));
  runtime::ServiceConfig config;
  config.scanner = scanner_config;
  config.worker_threads = 2;
  config.max_batch = 32;
  auto service = runtime::ScannerService::start(snapshot, config).value();

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = blocks;
  stream_config.seed = 23;
  runtime::ReplayUpdateStream inner(snapshot, stream_config);
  runtime::FaultInjector injector(
      inner, runtime::FaultProfile::uniform(fault_rate, kChaosSeed),
      snapshot.graph.pool_count());

  // The mirror sees the identical delivered sequence in the identical
  // order (the service consumes its queue FIFO), so its quarantine
  // trajectory is the service's by construction.
  market::MarketSnapshot reference = snapshot;
  runtime::EventValidator mirror(reference.graph, config.validation);
  while (auto event = injector.next()) {
    const runtime::EventVerdict verdict = mirror.check(*event);
    if (verdict.accepted) {
      if (event->liquidity > 0.0) {
        ASSERT_TRUE(reference.graph.mutable_pool(event->pool)
                        .set_concentrated_state(event->liquidity,
                                                event->price)
                        .ok());
      } else {
        ASSERT_TRUE(reference.graph
                        .set_pool_reserves(event->pool, event->reserve0,
                                           event->reserve1)
                        .ok());
      }
    }
    ASSERT_TRUE(service->publish(*event));
  }
  service->drain();
  ASSERT_TRUE(service->status().ok()) << service->status().error().message;

  // The service and the mirror agree on who survived.
  const std::vector<PoolId> quarantined = mirror.quarantined_pools();
  EXPECT_EQ(service->quarantined_pools(), quarantined);

  // Differential claim: the incremental ranked set equals a fresh scan
  // of the reference state, minus loops touching quarantined pools.
  std::unordered_set<std::uint32_t> dead;
  for (const PoolId pool : quarantined) dead.insert(pool.value());
  auto expected =
      core::scan_market(reference.graph, reference.prices, scanner_config)
          .value();
  std::erase_if(expected, [&dead](const core::Opportunity& op) {
    return std::any_of(op.cycle.pools().begin(), op.cycle.pools().end(),
                       [&dead](PoolId pool) {
                         return dead.count(pool.value()) != 0;
                       });
  });
  expect_identical(expected, service->opportunities());
  service->stop();
}

TEST(ChaosDifferentialTest, AllCpmmMarket) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_TRUE(snapshot.graph.all_cpmm());

  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  for (const double rate : {0.05, 0.20}) {
    run_chaos_differential(snapshot, scanner, rate, /*blocks=*/100);
  }
}

TEST(ChaosDifferentialTest, MixedVenueMarket) {
  market::GeneratorConfig gen;
  gen.token_count = 20;
  gen.pool_count = 48;
  gen.stable_fraction = 0.2;
  gen.concentrated_fraction = 0.2;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_FALSE(snapshot.graph.all_cpmm());

  // Convex strategy with warm starts off: the mixed loops route through
  // the generic solver, and every reprice stays bit-comparable to the
  // from-scratch scan.
  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  scanner.strategy = core::StrategyKind::kConvexOptimization;
  for (const double rate : {0.05, 0.20}) {
    run_chaos_differential(snapshot, scanner, rate, /*blocks=*/60);
  }
}

// Recovery differential: after the storm, a clean tail releases every
// quarantined pool; the service must then match an unfiltered fresh
// scan of the final reference state — full parity restored.
TEST(ChaosDifferentialTest, FullParityAfterRecovery) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);

  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  runtime::ServiceConfig config;
  config.scanner = scanner;
  config.worker_threads = 2;
  auto service = runtime::ScannerService::start(snapshot, config).value();

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = 60;
  stream_config.seed = 23;
  runtime::ReplayUpdateStream inner(snapshot, stream_config);
  runtime::FaultProfile profile;
  profile.seed = kChaosSeed;
  profile.corrupt_rate = 0.4;
  runtime::FaultInjector injector(inner, profile,
                                  snapshot.graph.pool_count());

  market::MarketSnapshot reference = snapshot;
  runtime::EventValidator mirror(reference.graph, config.validation);
  auto feed = [&](const runtime::PoolUpdateEvent& event) {
    if (mirror.check(event).accepted) {
      ASSERT_TRUE(reference.graph
                      .set_pool_reserves(event.pool, event.reserve0,
                                         event.reserve1)
                      .ok());
    }
    ASSERT_TRUE(service->publish(event));
  };
  while (auto event = injector.next()) feed(*event);
  service->drain();
  ASSERT_TRUE(service->status().ok());
  ASSERT_GT(service->metrics().pools_quarantined, 0u)
      << "storm should quarantine at least one pool";

  // Clean tail: 300 fresh events per pool clears the 256-event backoff
  // cap for every pool.
  std::uint64_t sequence = 1u << 20;
  for (std::size_t round = 0; round < 300; ++round) {
    for (const amm::AnyPool& pool : snapshot.graph.pools()) {
      runtime::PoolUpdateEvent event;
      event.pool = pool.id();
      event.reserve0 = pool.reserve0() * (1.0 + 1e-7 * (round + 1));
      event.reserve1 = pool.reserve1();
      event.sequence = ++sequence;
      feed(event);
    }
  }
  service->drain();
  ASSERT_TRUE(service->status().ok());
  EXPECT_TRUE(mirror.quarantined_pools().empty());
  EXPECT_TRUE(service->quarantined_pools().empty());
  expect_identical(
      core::scan_market(reference.graph, reference.prices, scanner).value(),
      service->opportunities());
  service->stop();
}

}  // namespace
}  // namespace arb
