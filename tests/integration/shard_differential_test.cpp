// Shard/pipeline-sweep differential suite: the sharded engine's contract
// is that the shard count K and the pipeline depth are unobservable from
// the outside. The identical event stream — clean and fault-injected —
// is replayed through services at K ∈ {1, 2, 4, 8} and pipeline depths
// {1, 2, 3}; the ranked sets, per-reason reject counts and quarantine
// states must be bit-identical across every (K, depth) pair, and (via
// the K=1 engine's established parity) equal a fresh scan_market of the
// mirror reference with quarantined pools' loops filtered out. Run on an
// all-CPMM market and on a mixed StableSwap/concentrated market, plus a
// warm-start-enabled sweep (across-K/depth only: warm starts perturb
// nothing because each shard owns its cycles' warm slots exclusively).
//
// The harness pins max_batch = 1 so batch composition is exactly stream
// order regardless of consumer/producer timing — that makes even the
// repriced counters and warm-start trajectories bit-comparable across
// runs. (With larger batches the *results* stay identical but batch
// boundaries — and therefore per-batch counters — depend on thread
// timing; multi-event batch bit-identity is covered deterministically by
// the scanner-level staged-vs-apply tests.)

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/scanner.hpp"
#include "market/generator.hpp"
#include "runtime/fault.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"
#include "runtime/validation.hpp"

namespace arb {
namespace {

constexpr std::uint64_t kFaultSeed = 424242;
constexpr std::uint64_t kStreamSeed = 77;
const std::vector<std::size_t> kShardSweep = {1, 2, 4, 8};

/// Everything observable about one service run.
struct RunResult {
  std::vector<core::Opportunity> opportunities;
  std::array<std::uint64_t, runtime::kRejectReasonCount> rejected{};
  std::vector<PoolId> quarantined;
  std::uint64_t repriced = 0;
  std::vector<std::uint64_t> shard_repriced;
};

/// Exact-equality comparison of two ranked opportunity sets.
void expect_identical(const std::vector<core::Opportunity>& expected,
                      const std::vector<core::Opportunity>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].cycle.rotation_key(), actual[i].cycle.rotation_key())
        << "rank " << i;
    EXPECT_EQ(expected[i].net_profit_usd, actual[i].net_profit_usd)
        << "rank " << i;
  }
}

/// Full observable equality between two runs.
void expect_same_run(const RunResult& expected, const RunResult& actual) {
  expect_identical(expected.opportunities, actual.opportunities);
  EXPECT_EQ(expected.rejected, actual.rejected);
  EXPECT_EQ(expected.quarantined, actual.quarantined);
  EXPECT_EQ(expected.repriced, actual.repriced);
}

/// Replays `blocks` blocks (optionally fault-injected) through a service
/// with `shards` shards at pipeline depth `depth` and returns the
/// observable outcome.
RunResult run_stream(const market::MarketSnapshot& snapshot,
                     const core::ScannerConfig& scanner_config,
                     std::size_t shards, std::size_t depth, double fault_rate,
                     std::size_t blocks) {
  runtime::ServiceConfig config;
  config.scanner = scanner_config;
  config.worker_threads = 2;
  config.shards = shards;
  config.pipeline_depth = depth;
  config.max_batch = 1;  // batch composition == stream order (see header)
  auto service = runtime::ScannerService::start(snapshot, config).value();

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = blocks;
  stream_config.seed = kStreamSeed;
  runtime::ReplayUpdateStream inner(snapshot, stream_config);
  runtime::UpdateStream* stream = &inner;
  std::unique_ptr<runtime::FaultInjector> injector;
  if (fault_rate > 0.0) {
    injector = std::make_unique<runtime::FaultInjector>(
        inner, runtime::FaultProfile::uniform(fault_rate, kFaultSeed),
        snapshot.graph.pool_count());
    stream = injector.get();
  }
  std::size_t events = 0;
  while (auto event = stream->next()) {
    EXPECT_TRUE(service->publish(*event));
    ++events;
  }
  // The clean stream delivers exactly blocks * pool_count (>= 1000)
  // events; the faulted one drops/duplicates a few percent around that.
  EXPECT_GE(events, 900u) << "the sweep is specified over ~1000 events";
  service->drain();
  EXPECT_TRUE(service->status().ok()) << service->status().error().message;

  RunResult result;
  service->opportunities_into(result.opportunities);
  result.quarantined = service->quarantined_pools();
  const runtime::MetricsSnapshot metrics = service->metrics();
  result.rejected = metrics.events_rejected;
  result.repriced = metrics.loops_repriced;
  result.shard_repriced = metrics.shard_repriced;
  service->stop();
  return result;
}

/// Mirror reference: the accepted-event state and quarantine trajectory
/// the service should end at, replayed on the side (same construction as
/// the chaos differential).
market::MarketSnapshot mirror_reference(
    const market::MarketSnapshot& snapshot,
    const runtime::ValidationConfig& validation, double fault_rate,
    std::size_t blocks, std::vector<PoolId>& quarantined_out) {
  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = blocks;
  stream_config.seed = kStreamSeed;
  runtime::ReplayUpdateStream inner(snapshot, stream_config);
  runtime::UpdateStream* stream = &inner;
  std::unique_ptr<runtime::FaultInjector> injector;
  if (fault_rate > 0.0) {
    injector = std::make_unique<runtime::FaultInjector>(
        inner, runtime::FaultProfile::uniform(fault_rate, kFaultSeed),
        snapshot.graph.pool_count());
    stream = injector.get();
  }
  market::MarketSnapshot reference = snapshot;
  runtime::EventValidator mirror(reference.graph, validation);
  while (auto event = stream->next()) {
    if (!mirror.check(*event).accepted) continue;
    if (event->liquidity > 0.0) {
      EXPECT_TRUE(reference.graph
                      .set_concentrated_state(event->pool, event->liquidity,
                                              event->price)
                      .ok());
    } else {
      EXPECT_TRUE(reference.graph
                      .set_pool_reserves(event->pool, event->reserve0,
                                         event->reserve1)
                      .ok());
    }
  }
  quarantined_out = mirror.quarantined_pools();
  return reference;
}

/// The full sweep at one pipeline depth: identical streams at every K,
/// cross-compared and (when `check_scan` is set) compared against the
/// fresh-scan oracle. Returns the K=1 run for cross-depth comparison.
RunResult run_shard_sweep(const market::MarketSnapshot& snapshot,
                          const core::ScannerConfig& scanner_config,
                          std::size_t depth, double fault_rate,
                          std::size_t blocks, bool check_scan) {
  SCOPED_TRACE("fault rate " + std::to_string(fault_rate) + ", depth " +
               std::to_string(depth));
  std::vector<RunResult> runs;
  for (const std::size_t k : kShardSweep) {
    SCOPED_TRACE("shards " + std::to_string(k));
    runs.push_back(
        run_stream(snapshot, scanner_config, k, depth, fault_rate, blocks));
    if (runs.back().shard_repriced.size() != k) {
      ADD_FAILURE() << "expected " << k << " shard counters";
      return runs.front();
    }
  }
  const RunResult& base = runs.front();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("K=" + std::to_string(kShardSweep[i]) + " vs K=1");
    expect_same_run(base, runs[i]);
    // The per-shard counters partition the global one.
    std::uint64_t shard_total = 0;
    for (const std::uint64_t n : runs[i].shard_repriced) shard_total += n;
    EXPECT_EQ(shard_total, runs[i].repriced);
  }
  if (!check_scan) return base;

  std::vector<PoolId> quarantined;
  const market::MarketSnapshot reference = mirror_reference(
      snapshot, runtime::ValidationConfig{}, fault_rate, blocks, quarantined);
  EXPECT_EQ(base.quarantined, quarantined);
  std::unordered_set<std::uint32_t> dead;
  for (const PoolId pool : quarantined) dead.insert(pool.value());
  auto expected =
      core::scan_market(reference.graph, reference.prices, scanner_config)
          .value();
  std::erase_if(expected, [&dead](const core::Opportunity& op) {
    return std::any_of(op.cycle.pools().begin(), op.cycle.pools().end(),
                       [&dead](PoolId pool) {
                         return dead.count(pool.value()) != 0;
                       });
  });
  expect_identical(expected, base.opportunities);
  return base;
}

TEST(ShardDifferentialTest, AllCpmmMarket) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_TRUE(snapshot.graph.all_cpmm());

  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  // 40 pools x 25 blocks = 1000 clean events; the faulted replay pulls
  // the same stream through the injector. The full depth x K matrix runs
  // here (the cheap market); the heavier markets below sample it.
  for (const double rate : {0.0, 0.10}) {
    std::vector<RunResult> per_depth;
    for (const std::size_t depth : {1, 2, 3}) {
      per_depth.push_back(run_shard_sweep(snapshot, scanner, depth, rate,
                                          /*blocks=*/25, /*check_scan=*/true));
    }
    for (std::size_t i = 1; i < per_depth.size(); ++i) {
      SCOPED_TRACE("fault rate " + std::to_string(rate) + ": depth " +
                   std::to_string(i + 1) + " vs depth 1");
      expect_same_run(per_depth.front(), per_depth[i]);
    }
  }
}

TEST(ShardDifferentialTest, MixedVenueMarket) {
  market::GeneratorConfig gen;
  gen.token_count = 20;
  gen.pool_count = 48;
  gen.stable_fraction = 0.2;
  gen.concentrated_fraction = 0.2;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_FALSE(snapshot.graph.all_cpmm());

  // Convex with warm starts off keeps every reprice bit-comparable to
  // the from-scratch scan (the K=1 parity the chaos suite established).
  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  scanner.strategy = core::StrategyKind::kConvexOptimization;
  for (const double rate : {0.0, 0.10}) {
    const RunResult base = run_shard_sweep(snapshot, scanner, /*depth=*/2,
                                           rate, /*blocks=*/21,
                                           /*check_scan=*/true);
    // One deeper-pipeline probe per rate (the generic solver makes the
    // full matrix too slow for tier 1): K=4 at depth 3 must match.
    SCOPED_TRACE("fault rate " + std::to_string(rate) +
                 ": K=4 depth 3 vs K=1 depth 2");
    expect_same_run(base, run_stream(snapshot, scanner, /*shards=*/4,
                                     /*depth=*/3, rate, /*blocks=*/21));
  }
}

TEST(ShardDifferentialTest, WarmStartsIdenticalAcrossShards) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);

  // Warm starts make each solve depend on the cycle's *own* history,
  // which shards preserve exactly (exclusive slot ownership) and the
  // depth-pinned batching keeps identical across runs — so the sweep
  // must still agree across K and depth. The fresh-scan oracle is
  // skipped: a warm-started trajectory legitimately differs from a cold
  // scan at the last-ulp level.
  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  scanner.strategy = core::StrategyKind::kConvexOptimization;
  scanner.convex_warm_start = true;
  for (const double rate : {0.0, 0.10}) {
    const RunResult base = run_shard_sweep(snapshot, scanner, /*depth=*/2,
                                           rate, /*blocks=*/25,
                                           /*check_scan=*/false);
    SCOPED_TRACE("fault rate " + std::to_string(rate) +
                 ": K=8 depth 3 vs K=1 depth 2");
    expect_same_run(base, run_stream(snapshot, scanner, /*shards=*/8,
                                     /*depth=*/3, rate, /*blocks=*/25));
  }
}

}  // namespace
}  // namespace arb
