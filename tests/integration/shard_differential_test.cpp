// Shard-sweep differential suite: the sharded engine's contract is that
// the shard count K is unobservable from the outside. The identical
// event stream — clean and fault-injected — is replayed through services
// at K ∈ {1, 2, 4, 8}; the ranked sets, per-reason reject counts and
// quarantine states must be bit-identical across K, and (via the K=1
// engine's established parity) equal a fresh scan_market of the mirror
// reference with quarantined pools' loops filtered out. Run on an
// all-CPMM market and on a mixed StableSwap/concentrated market, plus a
// warm-start-enabled sweep (across-K only: warm starts perturb nothing
// because each shard owns its cycles' warm slots exclusively).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/scanner.hpp"
#include "market/generator.hpp"
#include "runtime/fault.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"
#include "runtime/validation.hpp"

namespace arb {
namespace {

constexpr std::uint64_t kFaultSeed = 424242;
constexpr std::uint64_t kStreamSeed = 77;
const std::vector<std::size_t> kShardSweep = {1, 2, 4, 8};

/// Everything observable about one service run.
struct RunResult {
  std::vector<core::Opportunity> opportunities;
  std::array<std::uint64_t, runtime::kRejectReasonCount> rejected{};
  std::vector<PoolId> quarantined;
  std::uint64_t repriced = 0;
  std::vector<std::uint64_t> shard_repriced;
};

/// Exact-equality comparison of two ranked opportunity sets.
void expect_identical(const std::vector<core::Opportunity>& expected,
                      const std::vector<core::Opportunity>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].cycle.rotation_key(), actual[i].cycle.rotation_key())
        << "rank " << i;
    EXPECT_EQ(expected[i].net_profit_usd, actual[i].net_profit_usd)
        << "rank " << i;
  }
}

/// Replays `blocks` blocks (optionally fault-injected) through a service
/// with `shards` shards and returns the observable outcome.
RunResult run_stream(const market::MarketSnapshot& snapshot,
                     const core::ScannerConfig& scanner_config,
                     std::size_t shards, double fault_rate,
                     std::size_t blocks) {
  runtime::ServiceConfig config;
  config.scanner = scanner_config;
  config.worker_threads = 2;
  config.shards = shards;
  config.max_batch = 32;
  auto service = runtime::ScannerService::start(snapshot, config).value();

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = blocks;
  stream_config.seed = kStreamSeed;
  runtime::ReplayUpdateStream inner(snapshot, stream_config);
  runtime::UpdateStream* stream = &inner;
  std::unique_ptr<runtime::FaultInjector> injector;
  if (fault_rate > 0.0) {
    injector = std::make_unique<runtime::FaultInjector>(
        inner, runtime::FaultProfile::uniform(fault_rate, kFaultSeed),
        snapshot.graph.pool_count());
    stream = injector.get();
  }
  std::size_t events = 0;
  while (auto event = stream->next()) {
    EXPECT_TRUE(service->publish(*event));
    ++events;
  }
  // The clean stream delivers exactly blocks * pool_count (>= 1000)
  // events; the faulted one drops/duplicates a few percent around that.
  EXPECT_GE(events, 900u) << "the sweep is specified over ~1000 events";
  service->drain();
  EXPECT_TRUE(service->status().ok()) << service->status().error().message;

  RunResult result;
  service->opportunities_into(result.opportunities);
  result.quarantined = service->quarantined_pools();
  const runtime::MetricsSnapshot metrics = service->metrics();
  result.rejected = metrics.events_rejected;
  result.repriced = metrics.loops_repriced;
  result.shard_repriced = metrics.shard_repriced;
  service->stop();
  return result;
}

/// Mirror reference: the accepted-event state and quarantine trajectory
/// the service should end at, replayed on the side (same construction as
/// the chaos differential).
market::MarketSnapshot mirror_reference(
    const market::MarketSnapshot& snapshot,
    const runtime::ValidationConfig& validation, double fault_rate,
    std::size_t blocks, std::vector<PoolId>& quarantined_out) {
  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = blocks;
  stream_config.seed = kStreamSeed;
  runtime::ReplayUpdateStream inner(snapshot, stream_config);
  runtime::UpdateStream* stream = &inner;
  std::unique_ptr<runtime::FaultInjector> injector;
  if (fault_rate > 0.0) {
    injector = std::make_unique<runtime::FaultInjector>(
        inner, runtime::FaultProfile::uniform(fault_rate, kFaultSeed),
        snapshot.graph.pool_count());
    stream = injector.get();
  }
  market::MarketSnapshot reference = snapshot;
  runtime::EventValidator mirror(reference.graph, validation);
  while (auto event = stream->next()) {
    if (!mirror.check(*event).accepted) continue;
    if (event->liquidity > 0.0) {
      EXPECT_TRUE(reference.graph
                      .set_concentrated_state(event->pool, event->liquidity,
                                              event->price)
                      .ok());
    } else {
      EXPECT_TRUE(reference.graph
                      .set_pool_reserves(event->pool, event->reserve0,
                                         event->reserve1)
                      .ok());
    }
  }
  quarantined_out = mirror.quarantined_pools();
  return reference;
}

/// The full sweep: identical streams at every K, cross-compared and
/// (when `check_scan` is set) compared against the fresh-scan oracle.
void run_shard_sweep(const market::MarketSnapshot& snapshot,
                     const core::ScannerConfig& scanner_config,
                     double fault_rate, std::size_t blocks, bool check_scan) {
  SCOPED_TRACE("fault rate " + std::to_string(fault_rate));
  std::vector<RunResult> runs;
  for (const std::size_t k : kShardSweep) {
    SCOPED_TRACE("shards " + std::to_string(k));
    runs.push_back(
        run_stream(snapshot, scanner_config, k, fault_rate, blocks));
    ASSERT_EQ(runs.back().shard_repriced.size(), k);
  }
  const RunResult& base = runs.front();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("K=" + std::to_string(kShardSweep[i]) + " vs K=1");
    expect_identical(base.opportunities, runs[i].opportunities);
    EXPECT_EQ(base.rejected, runs[i].rejected);
    EXPECT_EQ(base.quarantined, runs[i].quarantined);
    EXPECT_EQ(base.repriced, runs[i].repriced);
    // The per-shard counters partition the global one.
    std::uint64_t shard_total = 0;
    for (const std::uint64_t n : runs[i].shard_repriced) shard_total += n;
    EXPECT_EQ(shard_total, runs[i].repriced);
  }
  if (!check_scan) return;

  std::vector<PoolId> quarantined;
  const market::MarketSnapshot reference = mirror_reference(
      snapshot, runtime::ValidationConfig{}, fault_rate, blocks, quarantined);
  EXPECT_EQ(base.quarantined, quarantined);
  std::unordered_set<std::uint32_t> dead;
  for (const PoolId pool : quarantined) dead.insert(pool.value());
  auto expected =
      core::scan_market(reference.graph, reference.prices, scanner_config)
          .value();
  std::erase_if(expected, [&dead](const core::Opportunity& op) {
    return std::any_of(op.cycle.pools().begin(), op.cycle.pools().end(),
                       [&dead](PoolId pool) {
                         return dead.count(pool.value()) != 0;
                       });
  });
  expect_identical(expected, base.opportunities);
}

TEST(ShardDifferentialTest, AllCpmmMarket) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_TRUE(snapshot.graph.all_cpmm());

  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  // 40 pools x 25 blocks = 1000 clean events; the faulted replay pulls
  // the same stream through the injector.
  for (const double rate : {0.0, 0.10}) {
    run_shard_sweep(snapshot, scanner, rate, /*blocks=*/25,
                    /*check_scan=*/true);
  }
}

TEST(ShardDifferentialTest, MixedVenueMarket) {
  market::GeneratorConfig gen;
  gen.token_count = 20;
  gen.pool_count = 48;
  gen.stable_fraction = 0.2;
  gen.concentrated_fraction = 0.2;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  ASSERT_FALSE(snapshot.graph.all_cpmm());

  // Convex with warm starts off keeps every reprice bit-comparable to
  // the from-scratch scan (the K=1 parity the chaos suite established).
  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  scanner.strategy = core::StrategyKind::kConvexOptimization;
  for (const double rate : {0.0, 0.10}) {
    run_shard_sweep(snapshot, scanner, rate, /*blocks=*/21,
                    /*check_scan=*/true);
  }
}

TEST(ShardDifferentialTest, WarmStartsIdenticalAcrossShards) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);

  // Warm starts make each solve depend on the cycle's *own* history,
  // which shards preserve exactly (exclusive slot ownership) — so the
  // sweep must still agree across K. The fresh-scan oracle is skipped:
  // a warm-started trajectory legitimately differs from a cold scan at
  // the last-ulp level.
  core::ScannerConfig scanner;
  scanner.loop_lengths = {3};
  scanner.strategy = core::StrategyKind::kConvexOptimization;
  scanner.convex_warm_start = true;
  for (const double rate : {0.0, 0.10}) {
    run_shard_sweep(snapshot, scanner, rate, /*blocks=*/25,
                    /*check_scan=*/false);
  }
}

}  // namespace
}  // namespace arb
