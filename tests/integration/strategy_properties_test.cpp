// Property-based tests of the paper's theorems over randomized markets.
//
// Parameterized over RNG seeds: each instantiation generates a fresh
// synthetic market and checks the ordering / equivalence / zero-profit
// theorems on every arbitrage loop found there.

#include <gtest/gtest.h>

#include "core/comparison.hpp"
#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"
#include "market/generator.hpp"
#include "sim/engine.hpp"

namespace arb {
namespace {

class StrategyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  market::MarketSnapshot make_market(std::size_t tokens = 16,
                                     std::size_t pools = 34) const {
    market::GeneratorConfig config;
    config.seed = GetParam();
    config.token_count = tokens;
    config.pool_count = pools;
    return market::generate_snapshot(config);
  }
};

TEST_P(StrategyPropertyTest, MaxMaxUpperBoundsTraditionalOnEveryLoop) {
  const auto snapshot = make_market();
  auto study = core::run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  for (const core::LoopComparison& row : study->loops) {
    double best = 0.0;
    for (const core::StrategyOutcome& t : row.traditional) {
      EXPECT_LE(t.monetized_usd, row.max_max.monetized_usd + 1e-9);
      best = std::max(best, t.monetized_usd);
    }
    EXPECT_NEAR(row.max_max.monetized_usd, best, 1e-12);
  }
}

TEST_P(StrategyPropertyTest, ConvexDominatesMaxMaxOnEveryLoop) {
  const auto snapshot = make_market();
  auto study = core::run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  for (const core::LoopComparison& row : study->loops) {
    EXPECT_GE(row.convex.outcome.monetized_usd,
              row.max_max.monetized_usd * (1.0 - 1e-7) - 1e-9)
        << row.cycle.describe(study->market.graph);
  }
}

TEST_P(StrategyPropertyTest, ConvexNearlyEqualsMaxMaxEmpirically) {
  // The paper's Fig. 7 observation: on market data the two strategies are
  // almost identical (unlike the adversarial Section V example).
  const auto snapshot = make_market();
  auto study = core::run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  std::size_t close = 0;
  std::size_t total = 0;
  for (const core::LoopComparison& row : study->loops) {
    if (row.max_max.monetized_usd <= 0.0) continue;
    ++total;
    const double ratio =
        row.convex.outcome.monetized_usd / row.max_max.monetized_usd;
    if (ratio < 1.10) ++close;
  }
  if (total > 0) {
    EXPECT_GE(static_cast<double>(close) / static_cast<double>(total), 0.8);
  }
}

TEST_P(StrategyPropertyTest, ZeroProfitTheoremOnUnprofitableOrientations) {
  // Section IV: if MaxMax finds nothing, Convex finds nothing. Feed the
  // *unprofitable* orientations (price product <= 1) to both.
  const auto snapshot = make_market();
  const auto all = graph::enumerate_fixed_length_cycles(snapshot.graph, 3);
  std::size_t tested = 0;
  for (const graph::Cycle& cycle : all) {
    if (cycle.price_product(snapshot.graph) > 1.0) continue;
    if (++tested > 25) break;  // bound runtime
    auto max_max =
        core::evaluate_max_max(snapshot.graph, snapshot.prices, cycle);
    auto convex =
        core::solve_convex(snapshot.graph, snapshot.prices, cycle);
    ASSERT_TRUE(max_max.ok());
    ASSERT_TRUE(convex.ok());
    EXPECT_DOUBLE_EQ(max_max->monetized_usd, 0.0);
    EXPECT_DOUBLE_EQ(convex->outcome.monetized_usd, 0.0);
  }
  EXPECT_GT(tested, 0u);
}

TEST_P(StrategyPropertyTest, PlansRealizeTheirPromisesUnderExecution) {
  auto snapshot = make_market();
  auto study = core::run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  const sim::ExecutionEngine engine;
  std::size_t executed = 0;
  for (const core::LoopComparison& row : study->loops) {
    if (++executed > 10) break;  // bound runtime
    // Execute on a fresh copy of the filtered market each time.
    market::MarketSnapshot working = study->market;
    auto plan = core::plan_from_convex(working.graph, row.cycle, row.convex);
    ASSERT_TRUE(plan.ok());
    if (plan->steps.empty() || row.convex.outcome.monetized_usd <= 0.0) {
      continue;
    }
    auto report = engine.execute(working.graph, working.prices, *plan);
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    EXPECT_NEAR(report->realized_usd, row.convex.outcome.monetized_usd,
                1e-5 * std::max(1.0, row.convex.outcome.monetized_usd));
  }
}

TEST_P(StrategyPropertyTest, MaxMaxPlanLeavesLoopUnprofitable) {
  auto snapshot = make_market();
  auto study = core::run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  const sim::ExecutionEngine engine;
  std::size_t executed = 0;
  for (const core::LoopComparison& row : study->loops) {
    if (row.max_max.monetized_usd <= 0.0) continue;
    if (++executed > 8) break;
    market::MarketSnapshot working = study->market;
    auto plan =
        core::plan_from_single_start(working.graph, row.cycle, row.max_max);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine.execute(working.graph, working.prices, *plan).ok());
    // Post-trade, this orientation holds no more profit.
    auto after = core::evaluate_traditional(
        working.graph, working.prices, row.cycle,
        /*start_offset=*/0, core::SingleStartOptions{.use_bisection = false});
    // Find the rotation matching the executed start token for exactness.
    for (std::size_t offset = 0; offset < row.cycle.length(); ++offset) {
      if (row.cycle.tokens()[offset] == row.max_max.start_token) {
        after = core::evaluate_traditional(
            working.graph, working.prices, row.cycle, offset,
            core::SingleStartOptions{.use_bisection = false});
      }
    }
    ASSERT_TRUE(after.ok());
    EXPECT_LT(after->monetized_usd,
              row.max_max.monetized_usd * 1e-3 + 1e-9);
  }
}

TEST_P(StrategyPropertyTest, Length4LoopsObeySameOrdering) {
  const auto snapshot = make_market(12, 26);
  auto study = core::run_market_study(snapshot, 4);
  ASSERT_TRUE(study.ok());
  for (const core::LoopComparison& row : study->loops) {
    ASSERT_EQ(row.traditional.size(), 4u);
    for (const core::StrategyOutcome& t : row.traditional) {
      EXPECT_LE(t.monetized_usd, row.max_max.monetized_usd + 1e-9);
    }
    EXPECT_GE(row.convex.outcome.monetized_usd,
              row.max_max.monetized_usd * (1.0 - 1e-7) - 1e-9);
  }
}

TEST_P(StrategyPropertyTest, ConvexProfitsPerTokenNonNegative) {
  const auto snapshot = make_market();
  auto study = core::run_market_study(snapshot, 3);
  ASSERT_TRUE(study.ok());
  for (const core::LoopComparison& row : study->loops) {
    for (const core::TokenProfit& p : row.convex.outcome.profits) {
      EXPECT_GE(p.amount, -1e-8) << "risk-free property violated";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace arb
