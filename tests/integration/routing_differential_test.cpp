// Flow-form vs convex-loop differential: a one-cycle flow instance
// (FlowInstance::from_cycle, CEX-price node weights) is the *same*
// convex program as the reduced loop transcription, so solve_flow and
// solve_convex are two independent routes to one optimum. This suite
// sweeps generated markets — all-CPMM and mixed stable/concentrated
// mixes across several seeds — and pins their monetized profits to
// ≤1e-6 relative agreement over 500+ profitable length-3 loops.
//
// A second check pins the routing layer: on all-CPMM parallel path sets
// drawn from the same markets, the flow solve must agree with the
// water-filling closed form that handles them on the fast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/convex.hpp"
#include "core/flow_nlp.hpp"
#include "core/router.hpp"
#include "core/routing.hpp"
#include "graph/cycle.hpp"
#include "graph/cycle_enumeration.hpp"
#include "market/generator.hpp"

namespace arb {
namespace {

/// |a − b| ≤ 1e-6·max(|a|, |b|, 1) — the suite's agreement bar.
void expect_agree(double a, double b, const std::string& what) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  EXPECT_LE(std::abs(a - b), 1e-6 * scale)
      << what << ": " << a << " vs " << b;
}

struct MarketMix {
  std::uint64_t seed;
  double stable_fraction;
  double concentrated_fraction;
};

TEST(RoutingDifferentialTest, OneCycleFlowMatchesConvexLoopSolver) {
  // Six markets: two all-CPMM, two stable-heavy, two with all venues.
  const std::vector<MarketMix> mixes{
      {101, 0.0, 0.0},  {202, 0.0, 0.0},  {303, 0.3, 0.0},
      {404, 0.25, 0.0}, {505, 0.2, 0.2},  {606, 0.15, 0.3},
  };

  core::ConvexContext convex_ctx;
  core::FlowContext flow_ctx;
  const core::ConvexOptions convex_options;
  const core::FlowOptions flow_options;

  std::size_t compared = 0;
  std::size_t mixed_compared = 0;
  for (const MarketMix& mix : mixes) {
    market::GeneratorConfig gen;
    gen.seed = mix.seed;
    gen.token_count = 24;
    gen.pool_count = 96;
    gen.stable_fraction = mix.stable_fraction;
    gen.concentrated_fraction = mix.concentrated_fraction;
    // A little extra mispricing keeps the profitable-loop count high
    // enough to clear the 500-comparison bar in six markets.
    gen.pool_price_noise_sigma = 0.02;
    const market::MarketSnapshot market = market::generate_snapshot(gen);
    SCOPED_TRACE("seed " + std::to_string(mix.seed));

    const std::vector<graph::Cycle> cycles =
        graph::enumerate_fixed_length_cycles(market.graph, 3);
    for (const graph::Cycle& cycle : cycles) {
      // Stay clear of the solver's no-arbitrage margin so both routes
      // actually run their solves.
      if (!(cycle.price_product(market.graph) > 1.0 + 1e-9)) continue;

      auto instance =
          core::FlowInstance::from_cycle(market.graph, market.prices, cycle);
      ASSERT_TRUE(instance.ok()) << instance.error().message;
      auto flow = core::solve_flow(*instance, flow_options, flow_ctx);
      ASSERT_TRUE(flow.ok()) << flow.error().message;

      auto convex = core::solve_convex(market.graph, market.prices, cycle,
                                       convex_options, convex_ctx);
      ASSERT_TRUE(convex.ok()) << convex.error().message;

      expect_agree(flow->objective, convex->outcome.monetized_usd,
                   "flow vs convex, cycle " + std::to_string(compared));
      ++compared;
      if (!cycle.all_cpmm(market.graph)) ++mixed_compared;
    }
  }
  EXPECT_GE(compared, 500u) << "markets too quiet for the differential";
  EXPECT_GE(mixed_compared, 50u) << "mixed venues barely exercised";
}

TEST(RoutingDifferentialTest, FlowMatchesWaterFillingOnCpmmSplits) {
  market::GeneratorConfig gen;
  gen.seed = 707;
  gen.token_count = 16;
  gen.pool_count = 64;
  const market::MarketSnapshot market = market::generate_snapshot(gen);
  ASSERT_TRUE(market.graph.all_cpmm());

  core::FlowContext flow_ctx;
  std::size_t compared = 0;
  for (std::uint32_t t = 1; t < market.graph.token_count(); ++t) {
    const TokenId token_in{0};
    const TokenId token_out{t};
    const auto paths =
        core::enumerate_paths(market.graph, token_in, token_out, 2, 6);
    if (paths.size() < 2) continue;

    // Water-filling handles edge-disjoint sets only; shared pools go to
    // the flow solver, which is not what this differential pins.
    std::vector<PoolId> used;
    bool disjoint = true;
    for (const auto& path : paths) {
      for (PoolId id : path) {
        if (std::find(used.begin(), used.end(), id) != used.end()) {
          disjoint = false;
        }
        used.push_back(id);
      }
    }
    if (!disjoint) continue;

    const double budget = 250.0;
    auto split = core::optimal_route_split(market.graph, token_in, token_out,
                                           paths, budget);
    ASSERT_TRUE(split.ok()) << split.error().message;
    EXPECT_FALSE(split->used_flow_solver);

    auto instance = core::FlowInstance::for_swap(market.graph, token_in,
                                                 token_out, paths, budget);
    ASSERT_TRUE(instance.ok()) << instance.error().message;
    auto flow = core::solve_flow(*instance, core::FlowOptions{}, flow_ctx);
    ASSERT_TRUE(flow.ok()) << flow.error().message;

    expect_agree(split->total_output, flow->objective,
                 "water-filling vs flow, token " + std::to_string(t));
    ++compared;
  }
  EXPECT_GE(compared, 5u) << "market offered too few disjoint splits";
}

}  // namespace
}  // namespace arb
