// Differential testing of the three convex-solver routes (barrier on the
// reduced form, barrier on the full eq.-8 form, compensated coordinate
// ascent) plus the MaxMax lower bound, on randomized loops of random
// length — the strongest correctness evidence the library has for the
// Convex Optimization strategy.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/convex.hpp"
#include "core/coordinate.hpp"
#include "core/single_start.hpp"
#include "graph/cycle.hpp"

namespace arb {
namespace {

struct RandomLoop {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  std::vector<TokenId> tokens;
  std::vector<PoolId> pools;

  RandomLoop(Rng& rng, std::size_t length) {
    for (std::size_t i = 0; i < length; ++i) {
      tokens.push_back(graph.add_token("T" + std::to_string(i)));
      prices.set_price(tokens.back(),
                       std::exp(rng.uniform(std::log(0.01), std::log(3000.0))));
    }
    for (std::size_t i = 0; i < length; ++i) {
      // Log-uniform reserves over several decades.
      const double r0 = std::exp(rng.uniform(std::log(50.0), std::log(5e6)));
      const double r1 = std::exp(rng.uniform(std::log(50.0), std::log(5e6)));
      pools.push_back(
          graph.add_pool(tokens[i], tokens[(i + 1) % length], r0, r1));
    }
  }

  [[nodiscard]] graph::Cycle cycle() const {
    return *graph::Cycle::create(graph, tokens, pools);
  }
};

class SolverDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverDifferentialTest, AllRoutesAgreeOnRandomLoops) {
  Rng rng(GetParam());
  int profitable = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t length = 2 + rng.index(5);  // 2..6
    const RandomLoop loop(rng, length);
    const graph::Cycle cycle = loop.cycle();

    const auto maxmax =
        core::evaluate_max_max(loop.graph, loop.prices, cycle).value();
    const auto reduced =
        core::solve_convex(loop.graph, loop.prices, cycle).value();
    core::ConvexOptions full_options;
    full_options.use_full_formulation = true;
    const auto full =
        core::solve_convex(loop.graph, loop.prices, cycle, full_options)
            .value();
    const auto hops =
        core::make_hop_data(loop.graph, loop.prices, cycle).value();
    const auto coordinate = core::solve_reduced_coordinate(hops);

    const double reference = reduced.outcome.monetized_usd;
    if (cycle.price_product(loop.graph) <= 1.0) {
      EXPECT_DOUBLE_EQ(maxmax.monetized_usd, 0.0);
      EXPECT_DOUBLE_EQ(reference, 0.0);
      EXPECT_DOUBLE_EQ(full.outcome.monetized_usd, 0.0);
      EXPECT_DOUBLE_EQ(coordinate.profit_usd, 0.0);
      continue;
    }
    ++profitable;
    const double tol = 1e-4 * std::max(1e-9, reference);
    EXPECT_NEAR(full.outcome.monetized_usd, reference, tol)
        << "len=" << length << " trial=" << trial;
    EXPECT_NEAR(coordinate.profit_usd, reference,
                5e-3 * std::max(1e-9, reference))
        << "len=" << length << " trial=" << trial;
    // MaxMax is a valid lower bound for every route.
    EXPECT_LE(maxmax.monetized_usd, reference + tol);
    EXPECT_GE(reference, maxmax.monetized_usd * (1.0 - 1e-7) - 1e-12);
  }
  EXPECT_GT(profitable, 5);  // random pools are usually mispriced
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverDifferentialTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace arb
