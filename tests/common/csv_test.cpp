#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace arb {
namespace {

TEST(CsvWriterTest, BasicRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row(std::string("x"), 1.5);
  csv.row(std::string("y"), 2.0);
  EXPECT_EQ(out.str(), "a,b\nx,1.5\ny,2\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell("hello, world").cell("say \"hi\"").cell("line\nbreak");
  csv.end_row();
  EXPECT_EQ(out.str(), "\"hello, world\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, RowWidthEnforced) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.cell("only-one");
  EXPECT_THROW(csv.end_row(), PreconditionError);
}

TEST(CsvWriterTest, HeaderMustComeFirst) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row(std::string("data"));
  EXPECT_THROW(csv.header({"late"}), PreconditionError);
}

TEST(CsvWriterTest, DoubleRoundTripPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  const double value = 0.1 + 0.2;  // 0.30000000000000004
  csv.row(value);
  auto table = parse_csv("v\n" + out.str());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(std::stod(table->rows[0][0]), value);
}

TEST(CsvParseTest, SimpleTable) {
  auto table = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][2], "6");
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndQuotes) {
  auto table = parse_csv("name,note\nalice,\"x, y\"\nbob,\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "x, y");
  EXPECT_EQ(table->rows[1][1], "say \"hi\"");
}

TEST(CsvParseTest, CrlfLineEndings) {
  auto table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "1");
}

TEST(CsvParseTest, ClassicMacCrLineEndings) {
  // CR-only files used to merge adjacent records ("1,23,4"); every CR
  // is a record terminator now.
  auto table = parse_csv("a,b\r1,2\r3,4\r");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, CrInsideQuotesIsPreserved) {
  auto table = parse_csv("a\n\"x\ry\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "x\ry");
}

TEST(CsvParseTest, TrailingEmptyFieldsAccepted) {
  // Spreadsheet-style export: rows (and the header) end with a stray
  // separator. Trailing empty cells are trimmed to the header width.
  auto table = parse_csv("a,b,\n1,2,\n3,4,,\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, TrailingEmptyFieldsWithCrlf) {
  auto table = parse_csv("a,b\r\n1,2,\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, EmptyInteriorCellsAreKept) {
  // Trimming is strictly trailing: an interior empty cell (or a trailing
  // one within the header width) still counts.
  auto table = parse_csv("a,b,c\n1,,3\n1,2,\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "", "3"}));
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"1", "2", ""}));
}

TEST(CsvParseTest, ExtraNonEmptyCellStillError) {
  auto table = parse_csv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.error().code, ErrorCode::kParseError);
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto table = parse_csv("a\n42");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], "42");
}

TEST(CsvParseTest, EmbeddedNewlineInQuotes) {
  auto table = parse_csv("a\n\"two\nlines\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "two\nlines");
}

TEST(CsvParseTest, RaggedRowIsError) {
  auto table = parse_csv("a,b\n1\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.error().code, ErrorCode::kParseError);
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(parse_csv("a\n\"oops\n").ok());
}

TEST(CsvParseTest, QuoteMidFieldIsError) {
  EXPECT_FALSE(parse_csv("a\nab\"c\n").ok());
}

TEST(CsvParseTest, EmptyInputIsError) {
  EXPECT_FALSE(parse_csv("").ok());
}

TEST(CsvParseTest, BlankLinesSkipped) {
  auto table = parse_csv("a\n1\n\n2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvParseTest, ColumnIndexLookup) {
  auto table = parse_csv("x,y,z\n1,2,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column_index("y"), 1u);
  EXPECT_THROW((void)table->column_index("missing"), PreconditionError);
}

TEST(CsvFileTest, MissingFileIsIoError) {
  auto result = read_csv_file("/nonexistent/path/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kIoError);
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"sym", "price"});
  csv.row(std::string("A,B"), 1.25);
  csv.row(std::string("plain"), -3.5);
  auto table = parse_csv(out.str());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "A,B");
  EXPECT_EQ(table->rows[1][1], "-3.5");
}

TEST(FormatDoubleTest, ShortestRoundTrip) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(std::stod(format_double(1.0 / 3.0)), 1.0 / 3.0);
}

}  // namespace
}  // namespace arb
