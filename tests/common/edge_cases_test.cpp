// Edge-case sweep across modules: the error paths and boundary inputs
// that the happy-path suites do not reach.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "amm/path.hpp"
#include "amm/pool.hpp"
#include "common/error.hpp"
#include "common/uint256.hpp"
#include "market/io.hpp"
#include "math/scalar_solve.hpp"

namespace arb {
namespace {

TEST(U256EdgeTest, ShiftOutOfRangeThrows) {
  const U256 v{1};
  EXPECT_THROW(v << 256, PreconditionError);
  EXPECT_THROW(v >> 256, PreconditionError);
  EXPECT_THROW(v << -1, PreconditionError);
}

TEST(U256EdgeTest, DivisionBySelfAndByOne) {
  const U256 v = U256::from_limbs(0x123, 0x456, 0x789, 0xabc);
  EXPECT_EQ(v / v, U256{1});
  EXPECT_EQ(v % v, U256{0});
  EXPECT_EQ(v / U256{1}, v);
  EXPECT_EQ(v % U256{1}, U256{0});
}

TEST(U256EdgeTest, DivisionOfSmallerByLarger) {
  EXPECT_EQ(U256{5} / U256{7}, U256{0});
  EXPECT_EQ(U256{5} % U256{7}, U256{5});
}

TEST(ScalarSolveEdgeTest, ExpandBracketValidation) {
  const auto fn = [](double x) { return 1.0 - x; };
  EXPECT_THROW(
      { auto r = math::expand_bracket_right(fn, 0.0, -1.0, 10.0); (void)r; },
      PreconditionError);
  EXPECT_THROW(
      {
        auto r = math::expand_bracket_right(fn, 0.0, 1.0, 10.0, 0.5);
        (void)r;
      },
      PreconditionError);
}

TEST(ScalarSolveEdgeTest, GoldenSectionDegenerateInterval) {
  const auto report = math::golden_section_maximize(
      [](double x) { return -x * x; }, 2.0, 2.0);
  EXPECT_DOUBLE_EQ(report.x, 2.0);
}

TEST(ScalarSolveEdgeTest, BisectRejectsInvertedBracket) {
  EXPECT_THROW(
      {
        auto r = math::bisect_root([](double x) { return x; }, 1.0, -1.0);
        (void)r;
      },
      PreconditionError);
}

TEST(PoolEdgeTest, ExtremeReserveRatios) {
  // 12 orders of magnitude between the sides.
  const amm::CpmmPool pool(PoolId{0}, TokenId{0}, TokenId{1}, 1e-3, 1e9);
  const amm::SwapQuote q = pool.quote(TokenId{0}, 1e-4);
  EXPECT_GT(q.amount_out, 0.0);
  EXPECT_LT(q.amount_out, 1e9);
  EXPECT_TRUE(std::isfinite(q.marginal_rate));
}

TEST(PoolEdgeTest, TinySwapKeepsPrecision) {
  const amm::CpmmPool pool(PoolId{0}, TokenId{0}, TokenId{1}, 1e6, 2e6);
  const amm::SwapQuote q = pool.quote(TokenId{0}, 1e-9);
  // At infinitesimal size the rate equals the marginal price.
  EXPECT_NEAR(q.amount_out / 1e-9, pool.relative_price_of(TokenId{0}),
              1e-6);
}

TEST(PathEdgeTest, SingleHopPathIsNotACycle) {
  const amm::CpmmPool pool(PoolId{0}, TokenId{0}, TokenId{1}, 100.0, 200.0);
  const amm::PoolPath path =
      *amm::PoolPath::create({amm::Hop{&pool, TokenId{0}}});
  EXPECT_FALSE(path.is_cycle());
  // Optimizing an open path is mathematically fine (output is another
  // token); the analytic optimum maximizes out − in, which for a single
  // hop with rate < 1/γ... just confirm it does not crash and respects
  // monotonicity.
  const auto trade = amm::optimize_input_analytic(path);
  EXPECT_GE(trade.input, 0.0);
}

TEST(MarketIoEdgeTest, CorruptTokensCsvFails) {
  const auto dir = std::filesystem::temp_directory_path() / "arb_edge_io";
  std::filesystem::create_directories(dir);
  {
    std::ofstream tokens(dir / "tokens.csv");
    tokens << "token_id,symbol,cex_price_usd\n0,AAA,not_a_number\n";
    std::ofstream pools(dir / "pools.csv");
    pools << "pool_id,token0,token1,reserve0,reserve1,fee\n";
  }
  auto loaded = market::load_snapshot(dir.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kParseError);
  std::filesystem::remove_all(dir);
}

TEST(MarketIoEdgeTest, NegativePriceSkippedNotFatal) {
  const auto dir =
      std::filesystem::temp_directory_path() / "arb_edge_io_neg";
  std::filesystem::create_directories(dir);
  {
    std::ofstream tokens(dir / "tokens.csv");
    // 0 price encodes "unknown" (save_snapshot writes 0 for missing).
    tokens << "token_id,symbol,cex_price_usd\n0,AAA,0\n1,BBB,2.5\n";
    std::ofstream pools(dir / "pools.csv");
    pools << "pool_id,token0,token1,reserve0,reserve1,fee\n"
             "0,0,1,100,200,0.003\n";
  }
  auto loaded = market::load_snapshot(dir.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->prices.has_price(TokenId{0}));
  EXPECT_TRUE(loaded->prices.has_price(TokenId{1}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace arb
