#include "common/svg.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace arb {
namespace {

TEST(NiceTicksTest, CoversRangeWithRoundSteps) {
  const auto ticks = nice_ticks(0.0, 10.0);
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks.front(), 0.0);
  EXPECT_LE(ticks.back(), 10.0 + 1e-9);
  // Uniform spacing with a 1-2-5 step.
  const double step = ticks[1] - ticks[0];
  for (std::size_t i = 2; i < ticks.size(); ++i) {
    EXPECT_NEAR(ticks[i] - ticks[i - 1], step, 1e-9);
  }
}

TEST(NiceTicksTest, NegativeAndFractionalRanges) {
  const auto ticks = nice_ticks(-0.37, 0.41);
  EXPECT_GE(ticks.front(), -0.37 - 1e-9);
  EXPECT_LE(ticks.back(), 0.41 + 1e-9);
  // Zero must be exactly representable, not -1.4e-17.
  bool has_exact_zero = false;
  for (double t : ticks) {
    if (t == 0.0) has_exact_zero = true;
  }
  EXPECT_TRUE(has_exact_zero);
}

TEST(NiceTicksTest, DegenerateRange) {
  const auto ticks = nice_ticks(5.0, 5.0);
  EXPECT_FALSE(ticks.empty());
}

TEST(SvgPlotTest, RenderContainsStructure) {
  SvgPlot plot("Test Title", "xs", "ys");
  plot.add_series(SvgSeries{"lineA", {{0.0, 1.0}, {1.0, 2.0}}, true});
  plot.add_series(SvgSeries{"dots", {{0.5, 1.5}}, false});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("Test Title"), std::string::npos);
  EXPECT_NE(svg.find("xs"), std::string::npos);
  EXPECT_NE(svg.find("ys"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("lineA"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlotTest, DiagonalRendered) {
  SvgPlot plot("d", "x", "y");
  plot.add_series(SvgSeries{"s", {{0.0, 0.0}, {10.0, 10.0}}, false});
  plot.add_diagonal();
  EXPECT_NE(plot.render().find("stroke-dasharray"), std::string::npos);
}

TEST(SvgPlotTest, EscapesXmlInLabels) {
  SvgPlot plot("a < b & c", "x", "y");
  plot.add_series(SvgSeries{"s", {{0.0, 0.0}}, true});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

TEST(SvgPlotTest, EmptyPlotStillRenders) {
  SvgPlot plot("empty", "x", "y");
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlotTest, WriteFailsOnBadPath) {
  SvgPlot plot("t", "x", "y");
  EXPECT_FALSE(plot.write("/nonexistent/dir/plot.svg").ok());
}

TEST(SvgPlotTest, TooSmallCanvasRejected) {
  EXPECT_THROW(SvgPlot("t", "x", "y", 50, 50), PreconditionError);
}

}  // namespace
}  // namespace arb
