// Tests for types.hpp, error.hpp, result.hpp, strings.hpp, logging.hpp.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/result.hpp"
#include "common/strings.hpp"
#include "common/types.hpp"

namespace arb {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  TokenId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, TokenId::invalid());
}

TEST(StrongIdTest, ValueRoundTrip) {
  TokenId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(TokenId{1}, TokenId{2});
  EXPECT_EQ(PoolId{3}, PoolId{3});
}

TEST(StrongIdTest, DistinctTypesAreNotInterchangeable) {
  static_assert(!std::is_convertible_v<TokenId, PoolId>);
  static_assert(!std::is_convertible_v<PoolId, TokenId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<TokenId> set{TokenId{1}, TokenId{2}, TokenId{1}};
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, ToString) {
  EXPECT_EQ(to_string(TokenId{5}), "token#5");
  EXPECT_EQ(to_string(PoolId{9}), "pool#9");
  EXPECT_EQ(to_string(TokenId{}), "token#<invalid>");
}

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  const Error e = make_error(ErrorCode::kNotFound, "token xyz");
  EXPECT_EQ(e.to_string(), "not_found: token xyz");
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kNumericFailure, ErrorCode::kInfeasible,
        ErrorCode::kParseError, ErrorCode::kIoError,
        ErrorCode::kInvariantViolated, ErrorCode::kCapacityExceeded}) {
    EXPECT_NE(to_string(code), "unknown");
  }
}

TEST(RequireTest, ThrowsWithContext) {
  try {
    ARB_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = make_error(ErrorCode::kNotFound, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW((void)r.value(), PreconditionError);
}

TEST(ResultTest, ErrorAccessOnSuccessThrows) {
  Result<int> r = 1;
  EXPECT_THROW((void)r.error(), PreconditionError);
}

TEST(ResultTest, MapPropagates) {
  Result<int> ok = 10;
  auto doubled = ok.map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 20);

  Result<int> bad = make_error(ErrorCode::kIoError, "x");
  auto still_bad = bad.map([](int v) { return v * 2; });
  EXPECT_FALSE(still_bad.ok());
  EXPECT_EQ(still_bad.error().code, ErrorCode::kIoError);
}

TEST(StatusTest, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW((void)s.error(), PreconditionError);
}

TEST(StatusTest, CarriesError) {
  Status s = make_error(ErrorCode::kIoError, "disk full");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "disk full");
}

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(trim("  hi there \t\n"), "hi there");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parse_double(" -1e3 "), -1000.0);
  EXPECT_FALSE(parse_double("12abc").ok());
  EXPECT_FALSE(parse_double("").ok());
}

TEST(StringsTest, ParseU64Strict) {
  EXPECT_EQ(*parse_u64("123"), 123u);
  EXPECT_FALSE(parse_u64("-1").ok());
  EXPECT_FALSE(parse_u64("1.5").ok());
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("token#1", "token"));
  EXPECT_FALSE(starts_with("tok", "token"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(LoggingTest, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  ARB_LOG_DEBUG("this must not crash even when filtered");
  set_log_level(before);
}

}  // namespace
}  // namespace arb
