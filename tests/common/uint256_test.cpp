#include "common/uint256.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace arb {
namespace {

TEST(U256Test, DefaultIsZero) {
  U256 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.bit_length(), 0);
  EXPECT_EQ(v.to_decimal(), "0");
}

TEST(U256Test, SmallArithmetic) {
  const U256 a{7};
  const U256 b{5};
  EXPECT_EQ((a + b).to_u64(), 12u);
  EXPECT_EQ((a - b).to_u64(), 2u);
  EXPECT_EQ((a * b).to_u64(), 35u);
  EXPECT_EQ((a / b).to_u64(), 1u);
  EXPECT_EQ((a % b).to_u64(), 2u);
}

TEST(U256Test, ComparisonOrdering) {
  const U256 small{1};
  const U256 big = U256::from_limbs(0, 0, 0, 1);
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, U256{1});
  EXPECT_NE(small, big);
}

TEST(U256Test, AdditionCarriesAcrossLimbs) {
  const U256 max_limb{~std::uint64_t{0}};
  const U256 sum = max_limb + U256{1};
  EXPECT_EQ(sum, U256::from_limbs(0, 1, 0, 0));
}

TEST(U256Test, SubtractionBorrowsAcrossLimbs) {
  const U256 value = U256::from_limbs(0, 1, 0, 0);
  const U256 result = value - U256{1};
  EXPECT_EQ(result, U256{~std::uint64_t{0}});
}

TEST(U256Test, AdditionOverflowThrows) {
  const U256 max = U256::from_limbs(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  EXPECT_THROW(max + U256{1}, PreconditionError);
  EXPECT_TRUE(U256::add_overflows(max, U256{1}));
  EXPECT_FALSE(U256::add_overflows(max, U256{0}));
}

TEST(U256Test, SubtractionUnderflowThrows) {
  EXPECT_THROW(U256{1} - U256{2}, PreconditionError);
}

TEST(U256Test, MultiplicationOverflowThrows) {
  const U256 big = U256::from_limbs(0, 0, 1, 0);  // 2^128
  EXPECT_THROW(big * big, PreconditionError);
  EXPECT_TRUE(U256::mul_overflows(big, big));
  EXPECT_FALSE(U256::mul_overflows(big, U256{2}));
}

TEST(U256Test, DivisionByZeroThrows) {
  EXPECT_THROW(U256{1} / U256{0}, PreconditionError);
}

TEST(U256Test, WideMultiplication) {
  // (2^64)·(2^64) = 2^128.
  const U256 two64 = U256::from_limbs(0, 1, 0, 0);
  EXPECT_EQ(two64 * two64, U256::from_limbs(0, 0, 1, 0));
}

TEST(U256Test, ShiftRoundTrip) {
  const U256 v{0xdeadbeefULL};
  for (int s : {1, 7, 63, 64, 65, 127, 128, 200}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
}

TEST(U256Test, DecimalRoundTripSmall) {
  for (std::uint64_t v : {0ULL, 1ULL, 9ULL, 10ULL, 123456789ULL}) {
    const U256 u{v};
    auto parsed = U256::from_decimal(u.to_decimal());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, u);
  }
}

TEST(U256Test, DecimalKnownBigValue) {
  // 2^128 = 340282366920938463463374607431768211456.
  const U256 two128 = U256::from_limbs(0, 0, 1, 0);
  EXPECT_EQ(two128.to_decimal(), "340282366920938463463374607431768211456");
  auto parsed =
      U256::from_decimal("340282366920938463463374607431768211456");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, two128);
}

TEST(U256Test, DecimalParseRejectsJunk) {
  EXPECT_FALSE(U256::from_decimal("").ok());
  EXPECT_FALSE(U256::from_decimal("12a3").ok());
  EXPECT_FALSE(U256::from_decimal("-5").ok());
  // 2^256 overflows by one digit-level operation.
  EXPECT_FALSE(
      U256::from_decimal("1157920892373161954235709850086879078532699846656405"
                         "64039457584007913129639936")
          .ok());
}

TEST(U256Test, MaxValueDecimalRoundTrip) {
  const U256 max = U256::from_limbs(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  auto parsed = U256::from_decimal(max.to_decimal());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, max);
}

TEST(U256Test, ToDoubleMatchesKnownValues) {
  EXPECT_DOUBLE_EQ(U256{1000}.to_double(), 1000.0);
  EXPECT_DOUBLE_EQ(U256::from_limbs(0, 1, 0, 0).to_double(), 0x1.0p64);
}

TEST(U256Test, BitLength) {
  EXPECT_EQ(U256{1}.bit_length(), 1);
  EXPECT_EQ(U256{255}.bit_length(), 8);
  EXPECT_EQ(U256{256}.bit_length(), 9);
  EXPECT_EQ(U256::from_limbs(0, 0, 0, 1).bit_length(), 193);
}

TEST(U256PropertyTest, DivModReconstructsRandomly) {
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    const U256 a = U256::from_limbs(rng.next_u64(), rng.next_u64(),
                                    rng.next_u64(), 0);
    const U256 b = U256::from_limbs(rng.next_u64(),
                                    trial % 3 == 0 ? rng.next_u64() : 0, 0, 0);
    if (b.is_zero()) continue;
    const auto dm = U256::divmod(a, b);
    EXPECT_LT(dm.remainder, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  }
}

TEST(U256PropertyTest, AdditionCommutesAndAssociates) {
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    const U256 a = U256::from_limbs(rng.next_u64(), rng.next_u64(), 0, 0);
    const U256 b = U256::from_limbs(rng.next_u64(), rng.next_u64(), 0, 0);
    const U256 c = U256::from_limbs(rng.next_u64(), 0, 0, 0);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(U256PropertyTest, MulDistributesOverAdd) {
  Rng rng(44);
  for (int trial = 0; trial < 200; ++trial) {
    const U256 a{rng.next_u64()};
    const U256 b{rng.next_u64()};
    const U256 c{rng.next_u64() >> 1};
    EXPECT_EQ(c * (a + b), c * a + c * b);
  }
}

TEST(U256PropertyTest, DecimalRoundTripRandom) {
  Rng rng(45);
  for (int trial = 0; trial < 200; ++trial) {
    const U256 v = U256::from_limbs(rng.next_u64(), rng.next_u64(),
                                    rng.next_u64(), rng.next_u64());
    auto parsed = U256::from_decimal(v.to_decimal());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, v);
  }
}

}  // namespace
}  // namespace arb
