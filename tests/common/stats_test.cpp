#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace arb {
namespace {

TEST(StreamingStatsTest, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_THROW((void)s.min(), PreconditionError);
  EXPECT_THROW((void)s.max(), PreconditionError);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StreamingStatsTest, KnownSample) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: Σ(x-5)² = 32 → 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, NegativeValues) {
  StreamingStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(StreamingStatsTest, SummaryMentionsCount) {
  StreamingStats s;
  s.add(1.0);
  EXPECT_NE(s.summary().find("n=1"), std::string::npos);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStats) {
  // Sorted: 10, 20. p50 → 15.
  EXPECT_DOUBLE_EQ(percentile({20.0, 10.0}, 0.5), 15.0);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, Preconditions) {
  EXPECT_THROW((void)percentile({}, 0.5), PreconditionError);
  EXPECT_THROW((void)percentile({1.0}, 1.5), PreconditionError);
}

TEST(PearsonTest, PerfectPositiveCorrelation) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSampleGivesZero) {
  EXPECT_DOUBLE_EQ(pearson_correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, MismatchedLengthsThrow) {
  EXPECT_THROW((void)pearson_correlation({1.0}, {1.0, 2.0}), PreconditionError);
}

TEST(HistogramTest, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(5.0);   // bin 2 (left-closed)
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(2), 1u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(3), 1u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, RenderContainsEachBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string render = h.render(10);
  EXPECT_NE(render.find("1"), std::string::npos);
  EXPECT_NE(render.find("2"), std::string::npos);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace arb
