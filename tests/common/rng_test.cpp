#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace arb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng rng(0);
  // splitmix expansion must not yield the all-zero xoshiro state.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(rng.next_u64());
  EXPECT_GT(values.size(), 10u);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(8);
  StreamingStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(12);
  StreamingStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, NormalShiftScale) {
  Rng rng(13);
  StreamingStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LogNormalIsPositiveWithMatchingLogMoments) {
  Rng rng(14);
  StreamingStats log_stats;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.log_normal(1.5, 0.7);
    ASSERT_GT(v, 0.0);
    log_stats.add(std::log(v));
  }
  EXPECT_NEAR(log_stats.mean(), 1.5, 0.02);
  EXPECT_NEAR(log_stats.stddev(), 0.7, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, IndexBounds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), PreconditionError);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(19);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, InvalidArgumentsThrow) {
  Rng rng(20);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

}  // namespace
}  // namespace arb
