#pragma once

// Test helper: an NlpProblem assembled from lambdas, so tests can state
// small known problems inline.

#include <functional>
#include <vector>

#include "optim/problem.hpp"

namespace arb::optim::testing {

struct ConstraintFns {
  std::function<double(const math::Vector&)> value;
  std::function<math::Vector(const math::Vector&)> gradient;
  std::function<math::Matrix(const math::Vector&)> hessian;
};

class LambdaNlp final : public NlpProblem {
 public:
  LambdaNlp(std::size_t dim,
            std::function<double(const math::Vector&)> f,
            std::function<math::Vector(const math::Vector&)> grad,
            std::function<math::Matrix(const math::Vector&)> hess,
            std::vector<ConstraintFns> constraints)
      : dim_(dim),
        f_(std::move(f)),
        grad_(std::move(grad)),
        hess_(std::move(hess)),
        constraints_(std::move(constraints)) {}

  std::size_t dimension() const override { return dim_; }
  std::size_t num_inequalities() const override { return constraints_.size(); }
  double objective(const math::Vector& x) const override { return f_(x); }
  math::Vector objective_gradient(const math::Vector& x) const override {
    return grad_(x);
  }
  math::Matrix objective_hessian(const math::Vector& x) const override {
    return hess_(x);
  }
  double constraint(std::size_t i, const math::Vector& x) const override {
    return constraints_[i].value(x);
  }
  math::Vector constraint_gradient(std::size_t i,
                                   const math::Vector& x) const override {
    return constraints_[i].gradient(x);
  }
  math::Matrix constraint_hessian(std::size_t i,
                                  const math::Vector& x) const override {
    if (constraints_[i].hessian) return constraints_[i].hessian(x);
    return math::Matrix(dim_, dim_);  // linear constraint
  }

 private:
  std::size_t dim_;
  std::function<double(const math::Vector&)> f_;
  std::function<math::Vector(const math::Vector&)> grad_;
  std::function<math::Matrix(const math::Vector&)> hess_;
  std::vector<ConstraintFns> constraints_;
};

/// Linear constraint a·x + b <= 0.
inline ConstraintFns linear_constraint(math::Vector a, double b) {
  ConstraintFns fns;
  auto a_copy = a;
  fns.value = [a, b](const math::Vector& x) { return a.dot(x) + b; };
  fns.gradient = [a_copy](const math::Vector&) { return a_copy; };
  return fns;
}

}  // namespace arb::optim::testing
