// SolveWorkspace contract: buffers grow to the largest problem seen and
// then stay put, so steady-state barrier solves — including across
// heterogeneous problem sizes — perform zero math-layer heap
// allocations, and reuse never changes the answer.

#include "optim/workspace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/loop_nlp.hpp"
#include "math/alloc_stats.hpp"
#include "optim/barrier_solver.hpp"

namespace arb::optim {
namespace {

/// Symmetric profitable ring of length n: every hop trades against
/// (100, 150) reserves at unit CEX prices, so d = (1, ..., 1) is a
/// strictly feasible interior point for the reduced transcription.
std::vector<core::LoopHopData> ring(std::size_t n) {
  std::vector<core::LoopHopData> hops(n);
  for (auto& hop : hops) {
    hop.reserve_in = 100.0;
    hop.reserve_out = 150.0;
    hop.gamma = 0.997;
    hop.price_in = 1.0;
    hop.price_out = 1.0;
  }
  return hops;
}

BarrierOptions hot_path_options() {
  BarrierOptions options;
  options.refine_duals = false;  // the documented hot-path setting
  return options;
}

TEST(SolveWorkspaceTest, SteadyStateSolvesAreAllocationFree) {
  const core::ReducedLoopProblem problem(ring(3));
  const BarrierSolver solver(hot_path_options());
  SolveWorkspace ws;
  BarrierReport report;
  const math::Vector start(3, 1.0);

  // Warm-up grows every buffer (workspace and report) to capacity.
  ASSERT_TRUE(solver.solve_into(problem, start, ws, report).ok());

  math::reset_allocation_count();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(solver.solve_into(problem, start, ws, report).ok());
  }
  EXPECT_EQ(math::allocation_count(), 0u);
  EXPECT_GT(-report.objective, 0.0);  // the ring is profitable
}

TEST(SolveWorkspaceTest, ReuseAcrossHeterogeneousSizesStaysAllocationFree) {
  const BarrierSolver solver(hot_path_options());
  SolveWorkspace ws;
  BarrierReport report;

  // Warm up at the largest size; every smaller problem then fits in the
  // existing buffers.
  {
    const core::ReducedLoopProblem largest(ring(6));
    ASSERT_TRUE(
        solver.solve_into(largest, math::Vector(6, 1.0), ws, report).ok());
  }

  // The start point is staged in a workspace buffer (solve_into allows
  // x0 to alias ws members), so the whole round is allocation-free.
  math::reset_allocation_count();
  for (const std::size_t n : {std::size_t{2}, std::size_t{5}, std::size_t{3},
                              std::size_t{6}, std::size_t{4}}) {
    const core::ReducedLoopProblem problem(ring(n));
    ws.candidate.assign(n, 1.0);
    ASSERT_TRUE(solver.solve_into(problem, ws.candidate, ws, report).ok())
        << n;
    EXPECT_EQ(report.x.size(), n);
  }
  EXPECT_EQ(math::allocation_count(), 0u);
}

TEST(SolveWorkspaceTest, ReuseDoesNotChangeTheAnswer) {
  const BarrierSolver solver(hot_path_options());

  // Fresh workspace per solve: the reference.
  std::vector<double> reference;
  for (const std::size_t n :
       {std::size_t{2}, std::size_t{4}, std::size_t{3}}) {
    const core::ReducedLoopProblem problem(ring(n));
    SolveWorkspace ws;
    BarrierReport report;
    ASSERT_TRUE(
        solver.solve_into(problem, math::Vector(n, 1.0), ws, report).ok());
    reference.push_back(report.objective);
  }

  // One reused workspace: bit-identical objectives in any order.
  SolveWorkspace ws;
  BarrierReport report;
  std::size_t k = 0;
  for (const std::size_t n :
       {std::size_t{2}, std::size_t{4}, std::size_t{3}}) {
    const core::ReducedLoopProblem problem(ring(n));
    ASSERT_TRUE(
        solver.solve_into(problem, math::Vector(n, 1.0), ws, report).ok());
    EXPECT_EQ(report.objective, reference[k++]) << "size " << n;
  }
}

TEST(SolveWorkspaceTest, ReservePreallocatesEveryBuffer) {
  SolveWorkspace ws;
  ws.reserve(8);
  const std::uint64_t after_reserve = math::allocation_count();

  // Touching every buffer at the reserved size must not allocate.
  math::reset_allocation_count();
  ws.x.resize(8);
  ws.grad.resize(8);
  ws.neg_grad.resize(8);
  ws.direction.resize(8);
  ws.candidate.resize(8);
  ws.constraint_grad.resize(8);
  ws.problem_scratch.resize(8);
  ws.hess.assign(8, 8, 0.0);
  ws.constraint_hess.assign(8, 8, 0.0);
  EXPECT_EQ(math::allocation_count(), 0u);
  (void)after_reserve;
}

}  // namespace
}  // namespace arb::optim
