#include "optim/phase1.hpp"

#include <gtest/gtest.h>

#include "core/loop_nlp.hpp"
#include "tests/core/fixtures.hpp"
#include "tests/optim/lambda_nlp.hpp"

namespace arb::optim {
namespace {

using math::Matrix;
using math::Vector;
using testing::LambdaNlp;
using testing::linear_constraint;

/// Feasible box: 1 <= x <= 2 (as two linear constraints).
LambdaNlp box_problem() {
  return LambdaNlp(
      1, [](const Vector& x) { return x[0] * x[0]; },
      [](const Vector& x) { return Vector{2.0 * x[0]}; },
      [](const Vector&) {
        Matrix h(1, 1);
        h(0, 0) = 2.0;
        return h;
      },
      {linear_constraint(Vector{-1.0}, 1.0),    // x >= 1
       linear_constraint(Vector{1.0}, -2.0)});  // x <= 2
}

/// Empty feasible set: x <= -1 AND x >= 1.
LambdaNlp infeasible_problem() {
  return LambdaNlp(
      1, [](const Vector& x) { return x[0]; },
      [](const Vector&) { return Vector{1.0}; },
      [](const Vector&) { return Matrix(1, 1); },
      {linear_constraint(Vector{1.0}, 1.0),      // x <= -1
       linear_constraint(Vector{-1.0}, 1.0)});   // x >= 1
}

TEST(Phase1Test, FindsInteriorFromInfeasibleStart) {
  const auto problem = box_problem();
  auto point = find_strictly_feasible(problem, Vector{-5.0});
  ASSERT_TRUE(point.ok());
  EXPECT_TRUE(problem.strictly_feasible(*point));
  EXPECT_GT((*point)[0], 1.0);
  EXPECT_LT((*point)[0], 2.0);
}

TEST(Phase1Test, AlreadyFeasibleStartReturnedAsIs) {
  const auto problem = box_problem();
  auto point = find_strictly_feasible(problem, Vector{1.5});
  ASSERT_TRUE(point.ok());
  EXPECT_DOUBLE_EQ((*point)[0], 1.5);
}

TEST(Phase1Test, CertifiesInfeasibility) {
  const auto problem = infeasible_problem();
  auto point = find_strictly_feasible(problem, Vector{0.0});
  ASSERT_FALSE(point.ok());
  EXPECT_EQ(point.error().code, ErrorCode::kInfeasible);
}

TEST(Phase1Test, SolveEndToEndFromInfeasibleStart) {
  const auto problem = box_problem();
  auto report = solve_with_phase1(problem, Vector{100.0});
  ASSERT_TRUE(report.ok());
  // min x² on [1,2] is at x = 1.
  EXPECT_NEAR(report->x[0], 1.0, 1e-5);
}

TEST(Phase1Test, UnconstrainedProblemPassesThrough) {
  LambdaNlp unconstrained(
      1, [](const Vector& x) { return (x[0] - 3.0) * (x[0] - 3.0); },
      [](const Vector& x) { return Vector{2.0 * (x[0] - 3.0)}; },
      [](const Vector&) {
        Matrix h(1, 1);
        h(0, 0) = 2.0;
        return h;
      },
      {});
  auto report = solve_with_phase1(unconstrained, Vector{0.0});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->x[0], 3.0, 1e-7);
}

TEST(Phase1Test, RecoversArbitrageLoopInteriorFromZero) {
  // The reduced loop problem's natural start (the zero vector) sits ON
  // the boundary; phase-I must find the interior the analytic
  // construction finds, and the final solve must match the paper value.
  const core::testing::Section5Market m;
  const auto hops = core::make_hop_data(m.graph, m.prices, m.loop()).value();
  const core::ReducedLoopProblem problem(hops);
  auto report = solve_with_phase1(problem, math::Vector(3, 0.0));
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(-report->objective, 206.15, 0.05);
}

}  // namespace
}  // namespace arb::optim
