// Randomized QP fuzzing of the barrier solver: generate strictly convex
// quadratic programs with random linear inequality constraints, solve,
// and certify the result through the KKT residuals plus an independent
// projected check. Parameterized over seeds.
//
// Setting ARB_LONG_TESTS=1 in the environment multiplies the trial
// counts by 5 — the nightly-style deep fuzz CI's long-tests job runs.

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.hpp"
#include "optim/barrier_solver.hpp"
#include "optim/kkt.hpp"
#include "optim/phase1.hpp"
#include "tests/optim/lambda_nlp.hpp"

namespace arb::optim {
namespace {

using math::Matrix;
using math::Vector;
using testing::ConstraintFns;
using testing::LambdaNlp;

struct RandomQp {
  Matrix q;       // SPD
  Vector linear;  // objective = ½ xᵀQx + linearᵀx
  std::vector<Vector> normals;
  std::vector<double> offsets;  // constraints: normalᵀx <= offset
  std::size_t dim;

  explicit RandomQp(Rng& rng)
      : q(0, 0), linear(0), dim(1 + rng.index(5)) {
    Matrix b(dim, dim);
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) b(r, c) = rng.normal();
    }
    q = b.transposed().multiply(b);
    for (std::size_t i = 0; i < dim; ++i) q(i, i) += 1.0;
    linear = Vector(dim);
    for (std::size_t i = 0; i < dim; ++i) linear[i] = rng.normal(0.0, 3.0);
    // Constraints through random points at distance >= 1 from origin,
    // all satisfied strictly at x = 0 (so 0 is a valid start).
    const std::size_t m = 1 + rng.index(2 * dim);
    for (std::size_t c = 0; c < m; ++c) {
      Vector normal(dim);
      for (std::size_t i = 0; i < dim; ++i) normal[i] = rng.normal();
      normals.push_back(normal);
      offsets.push_back(rng.uniform(0.5, 3.0) * std::max(1.0, normal.norm()));
    }
  }

  [[nodiscard]] LambdaNlp problem() const {
    std::vector<ConstraintFns> constraints;
    for (std::size_t c = 0; c < normals.size(); ++c) {
      constraints.push_back(
          testing::linear_constraint(normals[c], -offsets[c]));
    }
    const Matrix q_copy = q;
    const Vector linear_copy = linear;
    return LambdaNlp(
        dim,
        [q_copy, linear_copy](const Vector& x) {
          return 0.5 * x.dot(q_copy.multiply(x)) + linear_copy.dot(x);
        },
        [q_copy, linear_copy](const Vector& x) {
          return q_copy.multiply(x) + linear_copy;
        },
        [q_copy](const Vector&) { return q_copy; }, constraints);
  }
};

/// 5x trials when ARB_LONG_TESTS=1 (any non-empty value but "0").
int trial_multiplier() {
  const char* flag = std::getenv("ARB_LONG_TESTS");
  return (flag != nullptr && flag[0] != '\0' && flag[0] != '0') ? 5 : 1;
}

class BarrierFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BarrierFuzzTest, RandomQpsSolveToKktCertificate) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20 * trial_multiplier(); ++trial) {
    const RandomQp qp(rng);
    const LambdaNlp problem = qp.problem();
    const Vector start(qp.dim, 0.0);
    ASSERT_TRUE(problem.strictly_feasible(start));

    BarrierOptions options;
    options.gap_tolerance = 1e-10;
    auto report = BarrierSolver(options).solve(problem, start);
    ASSERT_TRUE(report.ok()) << report.error().to_string();

    const KktResiduals kkt =
        evaluate_kkt(problem, report->x, report->dual);
    EXPECT_TRUE(kkt.satisfied(1e-4))
        << "trial " << trial << " worst residual " << kkt.worst();

    // Independent optimality probe: random feasible perturbations never
    // improve the objective.
    for (int probe = 0; probe < 20; ++probe) {
      Vector candidate = report->x;
      for (std::size_t i = 0; i < qp.dim; ++i) {
        candidate[i] += rng.normal(0.0, 0.05);
      }
      if (!problem.strictly_feasible(candidate, 0.0)) continue;
      EXPECT_GE(problem.objective(candidate),
                problem.objective(report->x) - 1e-6)
          << "trial " << trial;
    }
  }
}

TEST_P(BarrierFuzzTest, Phase1RecoversFromRandomInfeasibleStarts) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 10 * trial_multiplier(); ++trial) {
    const RandomQp qp(rng);
    const LambdaNlp problem = qp.problem();
    // Random (likely infeasible) start far from the origin.
    Vector start(qp.dim);
    for (std::size_t i = 0; i < qp.dim; ++i) {
      start[i] = rng.normal(0.0, 25.0);
    }
    auto report = solve_with_phase1(problem, start);
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    EXPECT_LE(problem.max_violation(report->x), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierFuzzTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace arb::optim
