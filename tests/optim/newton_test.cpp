#include "optim/newton.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::optim {
namespace {

using math::Matrix;
using math::Vector;

SmoothFunction quadratic_bowl() {
  // f(x) = (x0-1)² + 2(x1+3)², minimum at (1, -3).
  SmoothFunction fn;
  fn.value = [](const Vector& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + 2.0 * (x[1] + 3.0) * (x[1] + 3.0);
  };
  fn.gradient = [](const Vector& x) {
    return Vector{2.0 * (x[0] - 1.0), 4.0 * (x[1] + 3.0)};
  };
  fn.hessian = [](const Vector&) {
    Matrix h(2, 2);
    h(0, 0) = 2.0;
    h(1, 1) = 4.0;
    return h;
  };
  return fn;
}

TEST(NewtonTest, QuadraticConvergesInOneStep) {
  auto report = newton_minimize(quadratic_bowl(), Vector{10.0, 10.0});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_LE(report->iterations, 2);
  EXPECT_NEAR(report->x[0], 1.0, 1e-9);
  EXPECT_NEAR(report->x[1], -3.0, 1e-9);
}

TEST(NewtonTest, StartAtOptimumStaysPut) {
  auto report = newton_minimize(quadratic_bowl(), Vector{1.0, -3.0});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_EQ(report->iterations, 0);
}

TEST(NewtonTest, LogSumExpSmoothConvex) {
  // f(x) = log(e^x + e^-x) — minimum at 0, non-quadratic.
  SmoothFunction fn;
  fn.value = [](const Vector& x) {
    return std::log(std::exp(x[0]) + std::exp(-x[0]));
  };
  fn.gradient = [](const Vector& x) {
    return Vector{std::tanh(x[0])};
  };
  fn.hessian = [](const Vector& x) {
    Matrix h(1, 1);
    const double t = std::tanh(x[0]);
    h(0, 0) = 1.0 - t * t;
    return h;
  };
  auto report = newton_minimize(fn, Vector{3.0});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(report->x[0], 0.0, 1e-7);
}

TEST(NewtonTest, DomainGuardKeepsIterateInside) {
  // f(x) = x - log(x) on x > 0, minimum at 1.
  SmoothFunction fn;
  fn.value = [](const Vector& x) { return x[0] - std::log(x[0]); };
  fn.gradient = [](const Vector& x) { return Vector{1.0 - 1.0 / x[0]}; };
  fn.hessian = [](const Vector& x) {
    Matrix h(1, 1);
    h(0, 0) = 1.0 / (x[0] * x[0]);
    return h;
  };
  fn.in_domain = [](const Vector& x) { return x[0] > 0.0; };
  auto report = newton_minimize(fn, Vector{0.01});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(report->x[0], 1.0, 1e-8);
}

TEST(NewtonTest, StartOutsideDomainFails) {
  SmoothFunction fn = quadratic_bowl();
  fn.in_domain = [](const Vector& x) { return x[0] > 0.0; };
  auto report = newton_minimize(fn, Vector{-1.0, 0.0});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInvalidArgument);
}

TEST(NewtonTest, MissingCallbacksThrow) {
  SmoothFunction fn;
  EXPECT_THROW(
      { auto r = newton_minimize(fn, Vector{0.0}); (void)r; },
      PreconditionError);
}

TEST(NewtonTest, IllConditionedQuadraticStillConverges) {
  // Condition number 1e8.
  SmoothFunction fn;
  fn.value = [](const Vector& x) {
    return 1e8 * x[0] * x[0] + x[1] * x[1];
  };
  fn.gradient = [](const Vector& x) {
    return Vector{2e8 * x[0], 2.0 * x[1]};
  };
  fn.hessian = [](const Vector&) {
    Matrix h(2, 2);
    h(0, 0) = 2e8;
    h(1, 1) = 2.0;
    return h;
  };
  auto report = newton_minimize(fn, Vector{1.0, 1.0});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_NEAR(report->x[0], 0.0, 1e-8);
  EXPECT_NEAR(report->x[1], 0.0, 1e-6);
}

}  // namespace
}  // namespace arb::optim
