#include <gtest/gtest.h>

#include "optim/barrier_solver.hpp"
#include "tests/optim/lambda_nlp.hpp"

namespace arb::optim {
namespace {

using math::Matrix;
using math::Vector;
using testing::LambdaNlp;
using testing::linear_constraint;

/// min (x-5)² s.t. x <= 10, x >= 0 — unconstrained interior optimum 5.
LambdaNlp simple_problem() {
  return LambdaNlp(
      1, [](const Vector& x) { return (x[0] - 5.0) * (x[0] - 5.0); },
      [](const Vector& x) { return Vector{2.0 * (x[0] - 5.0)}; },
      [](const Vector&) {
        Matrix h(1, 1);
        h(0, 0) = 2.0;
        return h;
      },
      {linear_constraint(Vector{1.0}, -10.0),
       linear_constraint(Vector{-1.0}, 0.0)});
}

TEST(BarrierEarlyStopTest, StopsAtFirstSatisfyingIterate) {
  const auto problem = simple_problem();
  BarrierOptions options;
  int calls = 0;
  options.early_stop = [&calls](const Vector&) {
    ++calls;
    return true;  // satisfied immediately
  };
  auto report = BarrierSolver(options).solve(problem, Vector{1.0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(report->outer_iterations, 1);
}

TEST(BarrierEarlyStopTest, NeverSatisfiedRunsToConvergence) {
  const auto problem = simple_problem();
  BarrierOptions plain;
  auto reference = BarrierSolver(plain).solve(problem, Vector{1.0});
  BarrierOptions options;
  options.early_stop = [](const Vector&) { return false; };
  auto report = BarrierSolver(options).solve(problem, Vector{1.0});
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->x[0], reference->x[0], 1e-9);
  EXPECT_NEAR(report->x[0], 5.0, 1e-6);
}

TEST(BarrierEarlyStopTest, PredicateStopMidway) {
  // Stop once the iterate is within 0.5 of the optimum: the result is
  // close but the solver did less work than the full solve.
  const auto problem = simple_problem();
  BarrierOptions options;
  options.early_stop = [](const Vector& x) {
    return std::abs(x[0] - 5.0) < 0.5;
  };
  auto report = BarrierSolver(options).solve(problem, Vector{9.9});
  ASSERT_TRUE(report.ok());
  EXPECT_LT(std::abs(report->x[0] - 5.0), 0.5);

  BarrierOptions plain;
  auto full = BarrierSolver(plain).solve(problem, Vector{9.9});
  ASSERT_TRUE(full.ok());
  EXPECT_LE(report->outer_iterations, full->outer_iterations);
}

}  // namespace
}  // namespace arb::optim
