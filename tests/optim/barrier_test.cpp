#include "optim/barrier_solver.hpp"

#include <gtest/gtest.h>

#include "optim/kkt.hpp"
#include "tests/optim/lambda_nlp.hpp"

namespace arb::optim {
namespace {

using math::Matrix;
using math::Vector;
using testing::ConstraintFns;
using testing::LambdaNlp;
using testing::linear_constraint;

/// min x² + y²  s.t. x + y >= 1  → optimum (0.5, 0.5), f* = 0.5, dual 1.
LambdaNlp projection_qp() {
  return LambdaNlp(
      2,
      [](const Vector& x) { return x[0] * x[0] + x[1] * x[1]; },
      [](const Vector& x) { return Vector{2.0 * x[0], 2.0 * x[1]}; },
      [](const Vector&) {
        Matrix h(2, 2);
        h(0, 0) = 2.0;
        h(1, 1) = 2.0;
        return h;
      },
      {linear_constraint(Vector{-1.0, -1.0}, 1.0)});
}

/// LP: min −x−y  s.t. 0 <= x <= 1, 0 <= y <= 2 → optimum (1, 2).
LambdaNlp box_lp() {
  return LambdaNlp(
      2, [](const Vector& x) { return -x[0] - x[1]; },
      [](const Vector&) { return Vector{-1.0, -1.0}; },
      [](const Vector&) { return Matrix(2, 2); },
      {linear_constraint(Vector{1.0, 0.0}, -1.0),   // x <= 1
       linear_constraint(Vector{0.0, 1.0}, -2.0),   // y <= 2
       linear_constraint(Vector{-1.0, 0.0}, 0.0),   // x >= 0
       linear_constraint(Vector{0.0, -1.0}, 0.0)}); // y >= 0
}

TEST(BarrierTest, ProjectionQpReachesKnownOptimum) {
  const auto problem = projection_qp();
  const BarrierSolver solver;
  auto report = solver.solve(problem, Vector{2.0, 2.0});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->x[0], 0.5, 1e-6);
  EXPECT_NEAR(report->x[1], 0.5, 1e-6);
  EXPECT_NEAR(report->objective, 0.5, 1e-7);
  EXPECT_LE(report->duality_gap, 1e-8);
}

TEST(BarrierTest, ProjectionQpDualsSatisfyKkt) {
  const auto problem = projection_qp();
  const BarrierSolver solver;
  auto report = solver.solve(problem, Vector{2.0, 2.0});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->dual[0], 1.0, 1e-5);
  const KktResiduals kkt = evaluate_kkt(problem, report->x, report->dual);
  EXPECT_TRUE(kkt.satisfied(1e-5)) << "worst residual " << kkt.worst();
}

TEST(BarrierTest, BoxLpReachesVertex) {
  const auto problem = box_lp();
  const BarrierSolver solver;
  auto report = solver.solve(problem, Vector{0.5, 0.5});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->x[0], 1.0, 1e-6);
  EXPECT_NEAR(report->x[1], 2.0, 1e-6);
  const KktResiduals kkt = evaluate_kkt(problem, report->x, report->dual);
  EXPECT_TRUE(kkt.satisfied(1e-5)) << "worst residual " << kkt.worst();
}

TEST(BarrierTest, InactiveConstraintGetsZeroDual) {
  // min (x-0.2)² s.t. x <= 1: constraint inactive at optimum 0.2.
  LambdaNlp problem(
      1, [](const Vector& x) { return (x[0] - 0.2) * (x[0] - 0.2); },
      [](const Vector& x) { return Vector{2.0 * (x[0] - 0.2)}; },
      [](const Vector&) {
        Matrix h(1, 1);
        h(0, 0) = 2.0;
        return h;
      },
      {linear_constraint(Vector{1.0}, -1.0)});
  const BarrierSolver solver;
  auto report = solver.solve(problem, Vector{0.5});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->x[0], 0.2, 1e-6);
  EXPECT_LT(report->dual[0], 1e-6);
}

TEST(BarrierTest, InfeasibleStartRejected) {
  const auto problem = projection_qp();
  const BarrierSolver solver;
  auto report = solver.solve(problem, Vector{0.0, 0.0});  // violates x+y>=1
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInfeasible);
}

TEST(BarrierTest, BoundaryStartRejected) {
  const auto problem = projection_qp();
  const BarrierSolver solver;
  // Exactly on the constraint: not *strictly* feasible.
  auto report = solver.solve(problem, Vector{0.5, 0.5});
  ASSERT_FALSE(report.ok());
}

TEST(BarrierTest, UnconstrainedFallsBackToNewton) {
  LambdaNlp problem(
      1, [](const Vector& x) { return (x[0] - 7.0) * (x[0] - 7.0); },
      [](const Vector& x) { return Vector{2.0 * (x[0] - 7.0)}; },
      [](const Vector&) {
        Matrix h(1, 1);
        h(0, 0) = 2.0;
        return h;
      },
      {});
  const BarrierSolver solver;
  auto report = solver.solve(problem, Vector{0.0});
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->x[0], 7.0, 1e-8);
}

TEST(BarrierTest, TighterToleranceGivesSmallerGap) {
  BarrierOptions loose;
  loose.gap_tolerance = 1e-4;
  BarrierOptions tight;
  tight.gap_tolerance = 1e-10;
  const auto problem = projection_qp();
  auto r_loose = BarrierSolver(loose).solve(problem, Vector{2.0, 2.0});
  auto r_tight = BarrierSolver(tight).solve(problem, Vector{2.0, 2.0});
  ASSERT_TRUE(r_loose.ok());
  ASSERT_TRUE(r_tight.ok());
  EXPECT_LT(r_tight->duality_gap, r_loose->duality_gap);
  // Objective gap bounded by the certificate.
  EXPECT_NEAR(r_tight->objective, 0.5, 1e-9);
}

TEST(KktTest, ResidualsDetectWrongDuals) {
  const auto problem = projection_qp();
  // Correct primal with a wrong multiplier must fail stationarity.
  const KktResiduals bad =
      evaluate_kkt(problem, Vector{0.5, 0.5}, Vector{5.0});
  EXPECT_FALSE(bad.satisfied(1e-3));
  EXPECT_GT(bad.stationarity, 1.0);
}

TEST(KktTest, NegativeDualFlagsDualInfeasibility) {
  const auto problem = projection_qp();
  const KktResiduals res =
      evaluate_kkt(problem, Vector{0.5, 0.5}, Vector{-1.0});
  EXPECT_GT(res.dual_feasibility, 0.5);
}

TEST(KktTest, PrimalViolationDetected) {
  const auto problem = projection_qp();
  const KktResiduals res =
      evaluate_kkt(problem, Vector{0.0, 0.0}, Vector{1.0});
  EXPECT_GT(res.primal_feasibility, 0.5);
}

}  // namespace
}  // namespace arb::optim
