#include "optim/line_search.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace arb::optim {
namespace {

using math::Vector;

double quadratic(const Vector& x) {
  return (x[0] - 2.0) * (x[0] - 2.0);
}

TEST(LineSearchTest, FullStepAcceptedWhenSufficient) {
  const Vector x{0.0};
  const Vector direction{2.0};  // lands exactly on the minimum
  const auto result = backtracking_line_search(
      quadratic, nullptr, x, direction, quadratic(x), /*deriv=*/-8.0);
  EXPECT_TRUE(result.success);
  EXPECT_DOUBLE_EQ(result.step, 1.0);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(LineSearchTest, BacktracksOnOvershoot) {
  const Vector x{0.0};
  const Vector direction{100.0};  // way past the minimum
  const auto result = backtracking_line_search(
      quadratic, nullptr, x, direction, quadratic(x), -400.0);
  EXPECT_TRUE(result.success);
  EXPECT_LT(result.step, 1.0);
  EXPECT_LT(result.value, quadratic(x));
}

TEST(LineSearchTest, NonDescentDirectionFailsImmediately) {
  const Vector x{0.0};
  const Vector direction{-1.0};  // uphill
  const auto result = backtracking_line_search(
      quadratic, nullptr, x, direction, quadratic(x), /*deriv=*/+4.0);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.evaluations, 0);
}

TEST(LineSearchTest, DomainGuardShrinksStep) {
  // Minimize -log(x) moving right from 0.5 with a huge step; the guard
  // x < 1 forces backtracking even though the objective keeps falling.
  const auto objective = [](const Vector& x) { return -std::log(x[0]); };
  const auto in_domain = [](const Vector& x) {
    return x[0] > 0.0 && x[0] < 1.0;
  };
  const Vector x{0.5};
  const Vector direction{10.0};
  const auto result = backtracking_line_search(
      objective, in_domain, x, direction, objective(x), -20.0);
  EXPECT_TRUE(result.success);
  EXPECT_LT(x[0] + result.step * direction[0], 1.0);
}

TEST(LineSearchTest, ImpossibleDomainFails) {
  const auto never = [](const Vector&) { return false; };
  const Vector x{0.0};
  const Vector direction{1.0};
  const auto result = backtracking_line_search(quadratic, never, x,
                                               direction, 4.0, -4.0);
  EXPECT_FALSE(result.success);
}

TEST(LineSearchTest, ArmijoConditionEnforced) {
  // A function that decreases slower than its initial slope promises:
  // f(x) = |x| - 0.9·x for x >= 0 has slope 0.1 but we claim -1.
  const auto objective = [](const Vector& x) { return 0.1 * x[0]; };
  const Vector x{0.0};
  const Vector direction{1.0};
  LineSearchOptions options;
  options.max_backtracks = 10;
  const auto result = backtracking_line_search(
      objective, nullptr, x, direction, 0.0, -1.0, options);
  // Function increases along the direction → Armijo never satisfied.
  EXPECT_FALSE(result.success);
}

TEST(LineSearchTest, InfiniteValuesRejected) {
  const auto objective = [](const Vector& x) {
    return x[0] > 0.5 ? std::numeric_limits<double>::infinity()
                      : x[0] * -1.0;
  };
  const Vector x{0.0};
  const Vector direction{1.0};
  const auto result = backtracking_line_search(objective, nullptr, x,
                                               direction, 0.0, -1.0);
  EXPECT_TRUE(result.success);
  EXPECT_LE(result.step, 0.5);
}

}  // namespace
}  // namespace arb::optim
