#include "sim/competition.hpp"

#include <gtest/gtest.h>

#include "market/generator.hpp"

namespace arb::sim {
namespace {

market::MarketSnapshot competitive_market() {
  market::GeneratorConfig config;
  config.token_count = 16;
  config.pool_count = 34;
  config.seed = 21;
  // Noisier CEX quotes make the MaxPrice pick wrong more often.
  config.cex_price_noise_sigma = 0.02;
  return market::generate_snapshot(config);
}

CompetitionConfig default_config(std::size_t blocks = 30) {
  CompetitionConfig config;
  config.blocks = blocks;
  config.dynamics.volatility = 0.01;
  return config;
}

TEST(CompetitionTest, ValidationRejectsDegenerateSetups) {
  const auto snapshot = competitive_market();
  EXPECT_FALSE(run_competition(snapshot, {}, default_config()).ok());
  CompetitionConfig zero_blocks;
  zero_blocks.blocks = 0;
  EXPECT_FALSE(
      run_competition(snapshot,
                      {BotSpec{"a", core::StrategyKind::kMaxMax,
                               core::ComparisonOptions{}}},
                      zero_blocks)
          .ok());
}

TEST(CompetitionTest, SingleBotWinsEveryContestedBlock) {
  const auto snapshot = competitive_market();
  const std::vector<BotSpec> bots{
      BotSpec{"solo", core::StrategyKind::kMaxMax, core::ComparisonOptions{}}};
  const auto result =
      run_competition(snapshot, bots, default_config()).value();
  EXPECT_EQ(result.standings.size(), 1u);
  EXPECT_EQ(result.standings[0].blocks_won, result.contested_blocks);
  EXPECT_GT(result.contested_blocks, 0u);
  EXPECT_GT(result.standings[0].realized_usd, 0.0);
}

TEST(CompetitionTest, DeterministicForSeed) {
  const auto snapshot = competitive_market();
  const std::vector<BotSpec> bots{
      BotSpec{"a", core::StrategyKind::kMaxMax, core::ComparisonOptions{}},
      BotSpec{"b", core::StrategyKind::kMaxPrice, core::ComparisonOptions{}}};
  const auto r1 = run_competition(snapshot, bots, default_config()).value();
  const auto r2 = run_competition(snapshot, bots, default_config()).value();
  for (std::size_t i = 0; i < bots.size(); ++i) {
    EXPECT_EQ(r1.standings[i].blocks_won, r2.standings[i].blocks_won);
    EXPECT_DOUBLE_EQ(r1.standings[i].realized_usd,
                     r2.standings[i].realized_usd);
  }
}

TEST(CompetitionTest, MaxMaxNeverLosesToMaxPrice) {
  // MaxMax's bid upper-bounds MaxPrice's on every loop by construction,
  // so in a sealed-bid auction the MaxPrice bot can win only by tie.
  const auto snapshot = competitive_market();
  const std::vector<BotSpec> bots{
      BotSpec{"maxmax", core::StrategyKind::kMaxMax, core::ComparisonOptions{}},
      BotSpec{"maxprice", core::StrategyKind::kMaxPrice, core::ComparisonOptions{}}};
  const auto result =
      run_competition(snapshot, bots, default_config(40)).value();
  EXPECT_GT(result.contested_blocks, 5u);
  EXPECT_GT(result.standings[0].blocks_won, 0u);
  EXPECT_GE(result.standings[0].realized_usd,
            result.standings[1].realized_usd);
  // With noisy CEX quotes MaxPrice genuinely picks the wrong start on
  // some loops, so MaxMax must win strictly more than it loses.
  EXPECT_GT(result.standings[0].blocks_won,
            result.standings[1].blocks_won);
}

TEST(CompetitionTest, ConvexMatchesMaxMaxBids) {
  // Empirically the two strategies bid almost identical amounts; ties
  // resolve to the first bot, so Convex wins at most a few blocks on
  // genuine (tiny) gaps.
  const auto snapshot = competitive_market();
  const std::vector<BotSpec> bots{
      BotSpec{"maxmax", core::StrategyKind::kMaxMax, core::ComparisonOptions{}},
      BotSpec{"convex", core::StrategyKind::kConvexOptimization, core::ComparisonOptions{}}};
  const auto result =
      run_competition(snapshot, bots, default_config(15)).value();
  const double total = result.standings[0].realized_usd +
                       result.standings[1].realized_usd;
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace arb::sim
