// Tests for sim/extraction.hpp and sim/integer_check.hpp.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"
#include "market/generator.hpp"
#include "sim/extraction.hpp"
#include "sim/integer_check.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::sim {
namespace {

using core::testing::Section5Market;

TEST(ExtractionTest, SingleLoopExtractsOnceThenStops) {
  Section5Market m;
  const std::vector<graph::Cycle> loops{m.loop()};
  auto result = extract_all(m.graph, m.prices, loops);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 1u);
  EXPECT_NEAR(result->steps[0].realized_usd, 205.6, 0.5);
  EXPECT_EQ(result->remaining_profitable, 0u);
  // The loop is drained afterwards.
  EXPECT_LE(m.loop().price_product(m.graph), 1.0 + 1e-9);
}

TEST(ExtractionTest, ConvexStrategyExtractsAtLeastAsMuchFromOneLoop) {
  Section5Market maxmax_market;
  Section5Market convex_market;
  const std::vector<graph::Cycle> loops{maxmax_market.loop()};

  ExtractionConfig maxmax_config;
  auto a = extract_all(maxmax_market.graph, maxmax_market.prices, loops,
                       maxmax_config);
  ExtractionConfig convex_config;
  convex_config.strategy = core::StrategyKind::kConvexOptimization;
  auto b = extract_all(convex_market.graph, convex_market.prices,
                       {convex_market.loop()}, convex_config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->total_realized_usd, a->total_realized_usd - 1e-4);
}

TEST(ExtractionTest, MarketWideExtractionConverges) {
  market::GeneratorConfig config;
  config.token_count = 16;
  config.pool_count = 34;
  config.seed = 5;
  auto snapshot = market::generate_snapshot(config);
  auto loops = graph::filter_arbitrage(
      snapshot.graph,
      graph::enumerate_fixed_length_cycles(snapshot.graph, 3));
  ASSERT_FALSE(loops.empty());
  const std::size_t initial_loops = loops.size();

  ExtractionConfig cfg;
  cfg.min_profit_usd = 1e-4;
  auto result = extract_all(snapshot.graph, snapshot.prices, loops, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_realized_usd, 0.0);
  EXPECT_EQ(result->remaining_profitable, 0u);
  // Executions can exceed the loop count (loops re-open), but not wildly.
  EXPECT_LE(result->steps.size(), initial_loops * 5);

  // Post-condition: no length-3 loop in this market clears the threshold.
  const auto after = graph::filter_arbitrage(
      snapshot.graph,
      graph::enumerate_fixed_length_cycles(snapshot.graph, 3));
  for (const graph::Cycle& loop : after) {
    auto outcome =
        core::evaluate_max_max(snapshot.graph, snapshot.prices, loop);
    ASSERT_TRUE(outcome.ok());
    EXPECT_LT(outcome->monetized_usd, cfg.min_profit_usd + 1e-6);
  }
}

TEST(ExtractionTest, GreedyPicksBiggestFirst) {
  market::GeneratorConfig config;
  config.token_count = 16;
  config.pool_count = 34;
  config.seed = 5;
  auto snapshot = market::generate_snapshot(config);
  auto loops = graph::filter_arbitrage(
      snapshot.graph,
      graph::enumerate_fixed_length_cycles(snapshot.graph, 3));
  // The first execution must be the best opportunity at the *initial*
  // state. (Later steps may plan more than the first: executing a loop
  // can widen a mispricing elsewhere.)
  double best_initial = 0.0;
  for (const graph::Cycle& loop : loops) {
    auto outcome =
        core::evaluate_max_max(snapshot.graph, snapshot.prices, loop);
    ASSERT_TRUE(outcome.ok());
    best_initial = std::max(best_initial, outcome->monetized_usd);
  }
  auto result = extract_all(snapshot.graph, snapshot.prices, loops);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->steps.size(), 1u);
  EXPECT_NEAR(result->steps[0].planned_usd, best_initial, 1e-9);
}

TEST(ExtractionTest, MaxExecutionsCapRespected) {
  market::GeneratorConfig config;
  config.token_count = 16;
  config.pool_count = 34;
  auto snapshot = market::generate_snapshot(config);
  auto loops = graph::filter_arbitrage(
      snapshot.graph,
      graph::enumerate_fixed_length_cycles(snapshot.graph, 3));
  ExtractionConfig cfg;
  cfg.max_executions = 2;
  auto result = extract_all(snapshot.graph, snapshot.prices, loops, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->steps.size(), 2u);
}

TEST(IntegerCheckTest, ConvexPlanSurvivesQuantization) {
  Section5Market m;
  auto solution = core::solve_convex(m.graph, m.prices, m.loop()).value();
  auto plan = core::plan_from_convex(m.graph, m.loop(), solution).value();
  auto report = check_plan_integer(m.graph, m.prices, plan);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->settles);
  EXPECT_NEAR(report->realized_usd, plan.expected_monetized_usd, 0.01);
  EXPECT_LT(std::abs(report->quantization_loss_usd), 0.01);
}

TEST(IntegerCheckTest, MaxMaxPlanSurvivesQuantization) {
  Section5Market m;
  auto outcome = core::evaluate_max_max(m.graph, m.prices, m.loop()).value();
  auto plan =
      core::plan_from_single_start(m.graph, m.loop(), outcome).value();
  auto report = check_plan_integer(m.graph, m.prices, plan);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->settles);
  EXPECT_NEAR(report->realized_usd, plan.expected_monetized_usd, 0.01);
}

TEST(IntegerCheckTest, CoarseQuantizationLosesMoreValue) {
  Section5Market m;
  auto solution = core::solve_convex(m.graph, m.prices, m.loop()).value();
  auto plan = core::plan_from_convex(m.graph, m.loop(), solution).value();
  IntegerCheckOptions fine;
  fine.units_per_token = 1e12;
  IntegerCheckOptions coarse;
  coarse.units_per_token = 1e2;
  auto fine_report = check_plan_integer(m.graph, m.prices, plan, fine);
  auto coarse_report = check_plan_integer(m.graph, m.prices, plan, coarse);
  ASSERT_TRUE(fine_report.ok());
  ASSERT_TRUE(coarse_report.ok());
  EXPECT_GT(std::abs(coarse_report->quantization_loss_usd),
            std::abs(fine_report->quantization_loss_usd));
}

TEST(IntegerCheckTest, EmptyPlanRejected) {
  Section5Market m;
  core::ArbitragePlan plan;
  EXPECT_FALSE(check_plan_integer(m.graph, m.prices, plan).ok());
}

TEST(IntegerCheckTest, DoesNotTouchRealPools) {
  Section5Market m;
  const double before = m.graph.pool(m.xy).reserve0();
  auto solution = core::solve_convex(m.graph, m.prices, m.loop()).value();
  auto plan = core::plan_from_convex(m.graph, m.loop(), solution).value();
  ASSERT_TRUE(check_plan_integer(m.graph, m.prices, plan).ok());
  EXPECT_DOUBLE_EQ(m.graph.pool(m.xy).reserve0(), before);
}

}  // namespace
}  // namespace arb::sim
