#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "core/single_start.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::sim {
namespace {

using core::testing::Section5Market;

TEST(EngineTest, RealizesMaxMaxPlanExactly) {
  Section5Market m;
  auto outcome = core::evaluate_max_max(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_single_start(m.graph, m.loop(), *outcome);
  const ExecutionEngine engine;
  auto report = engine.execute(m.graph, m.prices, *plan);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->steps_executed, 3u);
  EXPECT_NEAR(report->realized_usd, outcome->monetized_usd, 1e-6);
  EXPECT_NEAR(report->mismatch_usd, 0.0, 1e-6);
}

TEST(EngineTest, RealizesConvexPlanExactly) {
  Section5Market m;
  auto solution = core::solve_convex(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_convex(m.graph, m.loop(), *solution);
  const ExecutionEngine engine;
  auto report = engine.execute(m.graph, m.prices, *plan);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->realized_usd, solution->outcome.monetized_usd, 1e-4);
}

TEST(EngineTest, MutatesPoolReserves) {
  Section5Market m;
  const double before = m.graph.pool(m.xy).reserve0();
  auto outcome = core::evaluate_max_max(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_single_start(m.graph, m.loop(), *outcome);
  ASSERT_TRUE(ExecutionEngine().execute(m.graph, m.prices, *plan).ok());
  EXPECT_NE(m.graph.pool(m.xy).reserve0(), before);
}

TEST(EngineTest, SecondExecutionOfSamePlanFailsOnSlippage) {
  Section5Market m;
  auto outcome = core::evaluate_max_max(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_single_start(m.graph, m.loop(), *outcome);
  const ExecutionEngine engine;
  ASSERT_TRUE(engine.execute(m.graph, m.prices, *plan).ok());
  // The first run drained the opportunity; replaying the same plan
  // cannot meet its planned outputs.
  auto replay = engine.execute(m.graph, m.prices, *plan);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, ErrorCode::kInvariantViolated);
}

TEST(EngineTest, FailedExecutionRollsBackReserves) {
  Section5Market m;
  auto outcome = core::evaluate_max_max(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_single_start(m.graph, m.loop(), *outcome);
  const ExecutionEngine engine;
  ASSERT_TRUE(engine.execute(m.graph, m.prices, *plan).ok());
  const double r0 = m.graph.pool(m.xy).reserve0();
  const double r1 = m.graph.pool(m.xy).reserve1();
  ASSERT_FALSE(engine.execute(m.graph, m.prices, *plan).ok());
  EXPECT_DOUBLE_EQ(m.graph.pool(m.xy).reserve0(), r0);
  EXPECT_DOUBLE_EQ(m.graph.pool(m.xy).reserve1(), r1);
}

TEST(EngineTest, SlippageToleranceAllowsSecondRunIfLoose) {
  Section5Market m;
  auto outcome = core::evaluate_max_max(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_single_start(m.graph, m.loop(), *outcome);
  ExecutionOptions loose;
  loose.slippage_tolerance = 0.9;  // accept up to 90% shortfall
  const ExecutionEngine engine(loose);
  ASSERT_TRUE(engine.execute(m.graph, m.prices, *plan).ok());
  auto replay = engine.execute(m.graph, m.prices, *plan);
  // Still fails: after the arb the loop is unprofitable, so the final
  // balance goes negative (flash loan cannot be repaid) even though
  // slippage is tolerated.
  ASSERT_FALSE(replay.ok());
}

TEST(EngineTest, NonFlashLoanModeRejectsUnfundedFirstStep) {
  Section5Market m;
  auto outcome = core::evaluate_max_max(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_single_start(m.graph, m.loop(), *outcome);
  ExecutionOptions options;
  options.flash_loan = false;
  auto report = ExecutionEngine(options).execute(m.graph, m.prices, *plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInvariantViolated);
}

TEST(EngineTest, EmptyPlanRejected) {
  Section5Market m;
  core::ArbitragePlan plan;
  auto report = ExecutionEngine().execute(m.graph, m.prices, plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInvalidArgument);
}

TEST(EngineTest, MisroutedStepRejected) {
  Section5Market m;
  core::ArbitragePlan plan;
  plan.steps.push_back(core::PlanStep{m.xy, m.z, m.x, 1.0, 1.0});
  auto report = ExecutionEngine().execute(m.graph, m.prices, plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInvalidArgument);
}

TEST(EngineTest, ProfitsReportedPerToken) {
  Section5Market m;
  auto solution = core::solve_convex(m.graph, m.prices, m.loop());
  auto plan = core::plan_from_convex(m.graph, m.loop(), *solution);
  auto report = ExecutionEngine().execute(m.graph, m.prices, *plan);
  ASSERT_TRUE(report.ok());
  // Paper: profit of ~5 Y and ~7.7 Z.
  double y_profit = 0.0;
  double z_profit = 0.0;
  for (const core::TokenProfit& p : report->realized_profits) {
    if (p.token == m.y) y_profit = p.amount;
    if (p.token == m.z) z_profit = p.amount;
  }
  EXPECT_NEAR(y_profit, 5.0, 0.2);
  EXPECT_NEAR(z_profit, 7.7, 0.2);
}

TEST(EngineTest, ConvexPlanExecutesInAnyOrder) {
  // Section V: "The strategy can be implemented in any order" (with a
  // flash loan fronting the inputs). Execute the same convex plan with
  // its steps rotated and reversed; realized profit is identical.
  const auto run_with_order = [](const std::vector<std::size_t>& order) {
    Section5Market m;
    auto solution = core::solve_convex(m.graph, m.prices, m.loop()).value();
    auto plan = core::plan_from_convex(m.graph, m.loop(), solution).value();
    core::ArbitragePlan permuted;
    for (const std::size_t i : order) permuted.steps.push_back(plan.steps[i]);
    permuted.expected_profits = plan.expected_profits;
    permuted.expected_monetized_usd = plan.expected_monetized_usd;
    return ExecutionEngine().execute(m.graph, m.prices, permuted);
  };
  const auto base = run_with_order({0, 1, 2});
  ASSERT_TRUE(base.ok());
  for (const std::vector<std::size_t>& order :
       {std::vector<std::size_t>{1, 2, 0}, std::vector<std::size_t>{2, 0, 1},
        std::vector<std::size_t>{2, 1, 0}}) {
    const auto report = run_with_order(order);
    ASSERT_TRUE(report.ok());
    EXPECT_NEAR(report->realized_usd, base->realized_usd, 1e-9);
  }
}

TEST(EngineTest, NonFlashLoanOrderMattersForFunding) {
  // Without a flash loan, only the loop order starting at the borrowed
  // token is fundable — and only if the wallet is pre-funded, which the
  // engine models as "no step may exceed current balance".
  Section5Market m;
  auto solution = core::solve_convex(m.graph, m.prices, m.loop()).value();
  auto plan = core::plan_from_convex(m.graph, m.loop(), solution).value();
  ExecutionOptions options;
  options.flash_loan = false;
  // In-order execution fails at step 0 (nothing funds the first input).
  auto report = ExecutionEngine(options).execute(m.graph, m.prices, plan);
  ASSERT_FALSE(report.ok());
}

}  // namespace
}  // namespace arb::sim
