#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "market/generator.hpp"

namespace arb::sim {
namespace {

market::MarketSnapshot small_market() {
  market::GeneratorConfig config;
  config.token_count = 12;
  config.pool_count = 24;
  config.seed = 99;
  return market::generate_snapshot(config);
}

TEST(ReplayTest, RunsConfiguredBlockCount) {
  ReplayConfig config;
  config.blocks = 5;
  auto result = run_replay(small_market(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->blocks.size(), 5u);
}

TEST(ReplayTest, DoesNotMutateInputSnapshot) {
  const market::MarketSnapshot snapshot = small_market();
  const double before = snapshot.graph.pool(PoolId{0}).reserve0();
  ReplayConfig config;
  config.blocks = 3;
  ASSERT_TRUE(run_replay(snapshot, config).ok());
  EXPECT_DOUBLE_EQ(snapshot.graph.pool(PoolId{0}).reserve0(), before);
}

TEST(ReplayTest, DeterministicForSeed) {
  ReplayConfig config;
  config.blocks = 8;
  auto a = run_replay(small_market(), config);
  auto b = run_replay(small_market(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->total_realized_usd, b->total_realized_usd);
}

TEST(ReplayTest, RealizedTracksPlannedPerBlock) {
  ReplayConfig config;
  config.blocks = 10;
  auto result = run_replay(small_market(), config);
  ASSERT_TRUE(result.ok());
  for (const BlockResult& row : result->blocks) {
    // Plans execute against the same state they were computed on, so
    // realized profit matches planned within numerical tolerance.
    EXPECT_NEAR(row.realized_usd, row.planned_usd,
                1e-6 * std::max(1.0, row.planned_usd));
    EXPECT_GE(row.realized_usd, -1e-9);
  }
}

TEST(ReplayTest, NoiseCreatesOpportunities) {
  ReplayConfig config;
  config.blocks = 20;
  config.block_noise_sigma = 0.03;
  auto result = run_replay(small_market(), config);
  ASSERT_TRUE(result.ok());
  std::size_t blocks_with_loops = 0;
  for (const BlockResult& row : result->blocks) {
    if (row.arbitrage_loops > 0) ++blocks_with_loops;
  }
  EXPECT_GT(blocks_with_loops, 10u);
  EXPECT_GT(result->total_realized_usd, 0.0);
}

TEST(ReplayTest, ConvexStrategyEarnsAtLeastMaxMax) {
  ReplayConfig max_max_config;
  max_max_config.blocks = 15;
  max_max_config.strategy = core::StrategyKind::kMaxMax;
  ReplayConfig convex_config = max_max_config;
  convex_config.strategy = core::StrategyKind::kConvexOptimization;

  auto mm = run_replay(small_market(), max_max_config);
  auto cv = run_replay(small_market(), convex_config);
  ASSERT_TRUE(mm.ok());
  ASSERT_TRUE(cv.ok());
  // Same noise stream (same seed), per-block convex >= maxmax on the
  // first block; over time pool states diverge, so compare only block 0.
  ASSERT_FALSE(mm->blocks.empty());
  EXPECT_GE(cv->blocks[0].planned_usd, mm->blocks[0].planned_usd - 1e-6);
}

TEST(ReplayTest, MaxPriceStrategySupported) {
  ReplayConfig config;
  config.blocks = 5;
  config.strategy = core::StrategyKind::kMaxPrice;
  auto result = run_replay(small_market(), config);
  ASSERT_TRUE(result.ok());
}

}  // namespace
}  // namespace arb::sim
