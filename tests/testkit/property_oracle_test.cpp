#include "testkit/oracle.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "amm/integer_pool.hpp"
#include "amm/path.hpp"
#include "amm/pool.hpp"
#include "common/rng.hpp"
#include "common/uint256.hpp"

namespace arb::testkit {
namespace {

constexpr std::uint64_t kSeed = 20260807;
constexpr int kReserveBits = 112;  // uint112 on-chain reserve width
constexpr std::size_t kTriples = 10'000;

ExactHop random_hop(Rng& rng) {
  ExactHop hop;
  hop.reserve_in = random_magnitude(rng, kReserveBits);
  hop.reserve_out = random_magnitude(rng, kReserveBits);
  hop.fee_numerator = random_fee_numerator(rng);
  return hop;
}

// 10k seeded (reserve, fee, input) triples: the double quote must land
// within the oracle's accumulated bound of the exact integer output.
TEST(PropertyOracleTest, QuoteMatchesExactOverTenThousandTriples) {
  Rng rng(kSeed);
  for (std::size_t i = 0; i < kTriples; ++i) {
    const ExactHop hop = random_hop(rng);
    const U256 amount = random_magnitude(rng, kReserveBits);
    const ExactChainResult exact = exact_out(hop, amount);

    const amm::CpmmPool pool = real_pool_of(hop, PoolId{0});
    const amm::SwapQuote quote = pool.quote(TokenId{0}, amount.to_double());
    ASSERT_TRUE(within_bound(quote.amount_out, exact))
        << "case " << i << " seed " << kSeed << ": model "
        << quote.amount_out << " vs exact " << exact.amount_out.to_decimal()
        << " (tolerance " << exact.tolerance << ", reserves "
        << hop.reserve_in.to_decimal() << "/" << hop.reserve_out.to_decimal()
        << ", fee " << hop.fee_numerator << "/1000, in "
        << amount.to_decimal() << ")";
  }
}

// apply_swap must agree with the exact pair-contract state transition:
// same output (within bound), input-side reserve grows by the full
// input, output-side reserve shrinks by the emitted amount.
TEST(PropertyOracleTest, ApplySwapMatchesExactStateTransition) {
  Rng rng(kSeed + 1);
  for (std::size_t i = 0; i < kTriples; ++i) {
    const ExactHop hop = random_hop(rng);
    const U256 amount = random_magnitude(rng, kReserveBits);
    const ExactChainResult exact = exact_out(hop, amount);

    amm::IntegerPool exact_pool(PoolId{0}, TokenId{0}, TokenId{1},
                                hop.reserve_in, hop.reserve_out,
                                hop.fee_numerator, hop.fee_denominator);
    const auto exact_swapped = exact_pool.apply_swap(TokenId{0}, amount);
    ASSERT_TRUE(exact_swapped.ok());
    ASSERT_EQ(*exact_swapped, exact.amount_out)
        << "IntegerPool disagrees with the raw oracle on case " << i;

    amm::CpmmPool model_pool = real_pool_of(hop, PoolId{0});
    const auto model_swapped =
        model_pool.apply_swap(TokenId{0}, amount.to_double());
    if (!model_swapped.ok()) {
      // Near-drain boundary: the double output rounded up to the whole
      // reserve and the model pool rightly refused the swap, while the
      // integer pool always leaves at least one unit. Legitimate only
      // when the exact swap empties the reserve to within the bound.
      EXPECT_LE(hop.reserve_out.to_double() - exact.amount_out.to_double(),
                exact.tolerance)
          << "case " << i << " seed " << kSeed + 1;
      continue;
    }
    EXPECT_TRUE(within_bound(model_swapped->amount_out, exact))
        << "case " << i << " seed " << kSeed + 1;

    // Reserve deltas: input side is exact up to float rounding of the
    // operands; output side additionally inherits the swap bound.
    const double in_scale =
        hop.reserve_in.to_double() + amount.to_double();
    EXPECT_NEAR(model_pool.reserve0(), exact_pool.reserve0().to_double(),
                1e-9 * in_scale + 1.0)
        << "case " << i;
    EXPECT_NEAR(model_pool.reserve1(), exact_pool.reserve1().to_double(),
                exact.tolerance + 1e-9 * hop.reserve_out.to_double())
        << "case " << i;
  }
}

// Multi-hop composition: hop-by-hop evaluation and the Möbius closed
// form must both track the exact integer chain within the bound the
// oracle accumulates across hops.
TEST(PropertyOracleTest, PathCompositionMatchesExactChain) {
  Rng rng(kSeed + 2);
  for (std::size_t i = 0; i < 2'000; ++i) {
    const std::size_t hops = 2 + rng.index(3);  // 2..4 hops
    std::vector<ExactHop> chain;
    chain.reserve(hops);
    for (std::size_t h = 0; h < hops; ++h) chain.push_back(random_hop(rng));
    const U256 amount = random_magnitude(rng, kReserveBits);
    const ExactChainResult exact = exact_chain_out(chain, amount);

    // Mirror the chain as CPMM pools along tokens 0 → 1 → … → hops.
    std::vector<amm::CpmmPool> pools;
    pools.reserve(hops);
    for (std::size_t h = 0; h < hops; ++h) {
      const double fee =
          1.0 - static_cast<double>(chain[h].fee_numerator) /
                    static_cast<double>(chain[h].fee_denominator);
      pools.emplace_back(PoolId{static_cast<std::uint32_t>(h)},
                         TokenId{static_cast<std::uint32_t>(h)},
                         TokenId{static_cast<std::uint32_t>(h + 1)},
                         chain[h].reserve_in.to_double(),
                         chain[h].reserve_out.to_double(), fee);
    }
    std::vector<amm::Hop> path_hops;
    path_hops.reserve(hops);
    for (std::size_t h = 0; h < hops; ++h) {
      path_hops.push_back(
          amm::Hop{&pools[h], TokenId{static_cast<std::uint32_t>(h)}});
    }
    const auto path = amm::PoolPath::create(std::move(path_hops));
    ASSERT_TRUE(path.ok());

    const double stepwise = path->evaluate(amount.to_double());
    const double composed = path->compose().evaluate(amount.to_double());
    EXPECT_TRUE(within_bound(stepwise, exact))
        << "stepwise, case " << i << " seed " << kSeed + 2 << ": " << stepwise
        << " vs " << exact.amount_out.to_decimal() << " (tolerance "
        << exact.tolerance << ", " << hops << " hops)";
    EXPECT_TRUE(within_bound(composed, exact))
        << "composed, case " << i << " seed " << kSeed + 2 << ": " << composed
        << " vs " << exact.amount_out.to_decimal() << " (tolerance "
        << exact.tolerance << ", " << hops << " hops)";
  }
}

// Hand-picked extreme magnitudes: 1-wei pools, 1-wei inputs against
// uint112-scale reserves, and uint112-scale inputs against tiny pools.
TEST(PropertyOracleTest, ExtremeMagnitudes) {
  const U256 kMax112 = (U256(1) << 112) - U256(1);
  struct Case {
    U256 reserve_in;
    U256 reserve_out;
    U256 amount_in;
  };
  const Case cases[] = {
      {U256(1), U256(1), U256(1)},
      {U256(1), kMax112, U256(1)},
      {kMax112, U256(1), U256(1)},
      {kMax112, kMax112, U256(1)},
      {U256(1), U256(1), kMax112},
      {U256(1), kMax112, kMax112},
      {kMax112, kMax112, kMax112},
      {U256(3), (U256(1) << 60), U256(7)},
  };
  for (std::size_t i = 0; i < sizeof(cases) / sizeof(cases[0]); ++i) {
    ExactHop hop;
    hop.reserve_in = cases[i].reserve_in;
    hop.reserve_out = cases[i].reserve_out;
    const ExactChainResult exact = exact_out(hop, cases[i].amount_in);
    const amm::CpmmPool pool = real_pool_of(hop, PoolId{0});
    const amm::SwapQuote quote =
        pool.quote(TokenId{0}, cases[i].amount_in.to_double());
    EXPECT_TRUE(within_bound(quote.amount_out, exact))
        << "extreme case " << i << ": model " << quote.amount_out
        << " vs exact " << exact.amount_out.to_decimal() << " (tolerance "
        << exact.tolerance << ")";
  }
}

// The oracle itself must respect the constant-product law: k never
// decreases across an exact swap, and strictly grows with a fee.
TEST(PropertyOracleTest, OracleRespectsConstantProduct) {
  Rng rng(kSeed + 3);
  for (std::size_t i = 0; i < 1'000; ++i) {
    const ExactHop hop = random_hop(rng);
    const U256 amount = random_magnitude(rng, kReserveBits);
    amm::IntegerPool pool(PoolId{0}, TokenId{0}, TokenId{1}, hop.reserve_in,
                          hop.reserve_out, hop.fee_numerator,
                          hop.fee_denominator);
    const U256 k_before = pool.k();
    ASSERT_TRUE(pool.apply_swap(TokenId{0}, amount).ok());
    EXPECT_GE(pool.k(), k_before) << "case " << i;
  }
}

}  // namespace
}  // namespace arb::testkit
