#pragma once

/// \file oracle.hpp
/// Exact rational swap oracle for property tests.
///
/// The analytical layer models swaps in doubles; the chain computes them
/// in uint256 with flooring division. This kit evaluates the same swap
/// (and multi-hop chains of swaps) in exact integer arithmetic — on top
/// of get_amount_out_exact, the bit-for-bit V2 pipeline — and derives a
/// sound per-case error bound the double model must satisfy.
///
/// Error model. The real-valued hop output F(Δ) = γΔy/(x+γΔ) with
/// γ = fn/fd equals Δ·fn·y / (x·fd + Δ·fn) — the *same* rational the
/// contract floors — so per hop
///
///   exact = floor(real)  ⇒  0 <= real − exact < 1 unit.
///
/// Errors are propagated in absolute units. If the model's running
/// amount differs from the exact chain's by at most E entering a hop,
/// then after the hop it differs by at most
///
///   E' = ( E · sup F' + 1 + kRelPerHop·(out + 1) ) · (1 + kRelPerHop)
///
/// — the carried error amplified by the hop's steepest slope over the
/// uncertainty interval (F' = γxy/(x+γΔ)² is decreasing, so the sup
/// sits at max(Δ−E, 0)), plus the hop's own floor loss (< 1 unit) and
/// its double-arithmetic noise. kRelPerHop = 1e-12 is ~3 orders of
/// magnitude above the actual float noise (~8·2⁻⁵³ ≈ 1.8e-15 per hop).
/// For realistic magnitudes (intermediate amounts ≫ 1 unit) the bound
/// stays at ppm-of-output scale; for degenerate dust chains — an
/// intermediate hop flooring to zero, then a high-price hop blowing the
/// sub-unit remainder up again — it grows with the price product, which
/// is exactly the true worst case of the double model.
///
/// Reserves are uint112 on-chain; with fee denominators <= 2¹⁰ every
/// intermediate product stays under 234 bits, so U256 never overflows.

#include <cstdint>
#include <vector>

#include "amm/concentrated_pool.hpp"
#include "amm/pool.hpp"
#include "amm/stable_pool.hpp"
#include "amm/swap_math.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/uint256.hpp"

namespace arb::testkit {

/// Per-hop float-noise allowance (see file comment).
inline constexpr double kRelPerHop = 1e-12;
/// Flat absolute headroom in units on top of the propagated bound.
inline constexpr double kAbsSlack = 2.0;

/// One hop of exact integer state, oriented input → output.
struct ExactHop {
  U256 reserve_in;
  U256 reserve_out;
  std::uint64_t fee_numerator = 997;
  std::uint64_t fee_denominator = 1000;

  [[nodiscard]] double gamma() const {
    return static_cast<double>(fee_numerator) /
           static_cast<double>(fee_denominator);
  }
};

/// Exact output of a chain of hops plus the admissible model deviation.
struct ExactChainResult {
  U256 amount_out;
  std::vector<U256> hop_outputs;
  /// Admissible |model − exact| in output units for a double model of
  /// the same chain.
  double tolerance = 0.0;
};

/// Evaluates a swap chain in exact integer arithmetic and accumulates
/// the error bound for a real-valued model of the same chain.
inline ExactChainResult exact_chain_out(const std::vector<ExactHop>& hops,
                                        const U256& amount_in) {
  ARB_REQUIRE(!hops.empty(), "oracle chain needs at least one hop");
  ExactChainResult result;
  result.hop_outputs.reserve(hops.size());
  U256 amount = amount_in;
  double error = kRelPerHop * amount_in.to_double();  // input rounding
  for (const ExactHop& hop : hops) {
    const double x = hop.reserve_in.to_double();
    const double y = hop.reserve_out.to_double();
    const double g = hop.gamma();
    const double a = amount.to_double();
    // Steepest slope over the uncertainty interval: F' decreases in Δ.
    const double low = a > error ? a - error : 0.0;
    const double denom = x + g * low;
    const double slope = g * x * y / (denom * denom);
    amount = amm::get_amount_out_exact(amount, hop.reserve_in,
                                       hop.reserve_out, hop.fee_numerator,
                                       hop.fee_denominator);
    result.hop_outputs.push_back(amount);
    const double out = amount.to_double();
    error = (error * slope + 1.0 + kRelPerHop * (out + 1.0)) *
            (1.0 + kRelPerHop);
  }
  result.amount_out = amount;
  result.tolerance = error + kAbsSlack;
  return result;
}

/// Single-hop convenience.
inline ExactChainResult exact_out(const ExactHop& hop, const U256& amount_in) {
  return exact_chain_out({hop}, amount_in);
}

/// True iff a double model's output is within the oracle's bound.
inline bool within_bound(double model_out, const ExactChainResult& exact) {
  const double deviation = model_out - exact.amount_out.to_double();
  return (deviation < 0.0 ? -deviation : deviation) <= exact.tolerance;
}

/// The real-valued CpmmPool mirroring a hop: reserves converted to
/// double (rounds above 2⁵³ — that loss is inside the bound).
inline amm::CpmmPool real_pool_of(const ExactHop& hop, PoolId id) {
  const double fee =
      1.0 - static_cast<double>(hop.fee_numerator) /
                static_cast<double>(hop.fee_denominator);
  return amm::CpmmPool(id, TokenId{0}, TokenId{1},
                       hop.reserve_in.to_double(), hop.reserve_out.to_double(),
                       fee);
}

/// Log-uniform random magnitude in [1, 2^max_bits): picks a bit length
/// uniformly, then uniform bits below it. Covers 1 wei through
/// 2¹¹²-scale reserves with equal weight per decade instead of piling
/// all mass at the top.
inline U256 random_magnitude(Rng& rng, int max_bits) {
  ARB_REQUIRE(max_bits >= 1 && max_bits <= 128, "bad magnitude range");
  const int bits = static_cast<int>(rng.uniform_int(1, max_bits));
  U256 value = U256(1) << (bits - 1);
  if (bits > 1) {
    const int low = bits - 1 < 64 ? bits - 1 : 64;
    const std::uint64_t mask =
        low == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << low) - 1);
    value = value + U256(rng.next_u64() & mask);
    if (bits - 1 > 64) {
      value = value + (U256(rng.next_u64() &
                            ((std::uint64_t{1} << (bits - 1 - 64)) - 1))
                       << 64);
    }
  }
  return value;
}

/// The fee menu the property tests draw from (numerator over 1000):
/// mainnet 997, plus spreads from fee-free to 5%.
inline std::uint64_t random_fee_numerator(Rng& rng) {
  static constexpr std::uint64_t kMenu[] = {1000, 997, 995, 990, 970, 950};
  return kMenu[rng.index(sizeof(kMenu) / sizeof(kMenu[0]))];
}

// ---------------------------------------------------------------------------
// StableSwap exact oracle
//
// Mirrors the Curve contract's two-coin integer pipeline: get_D's
// monotone fixed-point iteration, get_y's Newton descent from D, the
// 1-unit output haircut, and the output-side fee — all in U256 with
// flooring division. Reserves are capped at 2⁶⁴ so every intermediate
// product (≤ ~2¹⁹⁵ for the most imbalanced D_P) stays under 256 bits.
//
// Error model. Unlike the CPMM rational, the stable swap is the
// difference of two iteratively-solved balances, so the bound has three
// parts: (a) the integer iterations stop when successive iterates move
// ≤ 1 unit, leaving the fixed point up to a few units away (amplified
// through ∂y/∂D ∈ (1, 2)); (b) the double model's own Newton stops at
// 1e-12 relative, so its absolute noise scales with the *balances*, not
// the output — y₀ − Y(x₀+Δ) is a catastrophic cancellation for small
// trades; (c) double rounding of 2⁶⁴-scale integer inputs. All three
// scale with the reserve magnitude, hence the reserve-relative term.
// kStableOracleRel is ~3 orders above the observed worst case, and a
// genuine kernel bug (wrong Ann, fee on the wrong side, dropped D
// refresh) shows up at ≥1e-6 of the reserve scale — far outside it.
// ---------------------------------------------------------------------------

/// Reserve-relative allowance for stable-swap models (see above).
inline constexpr double kStableOracleRel = 1e-9;
/// Flat unit headroom for the integer iterations' termination radius.
inline constexpr double kStableOracleAbs = 32.0;
/// Reserve cap (bits) keeping the integer D pipeline overflow-free.
inline constexpr int kStableReserveBits = 64;

/// One stable hop of exact integer state, oriented input → output.
struct ExactStableHop {
  U256 reserve_in;
  U256 reserve_out;
  std::uint64_t amplification = 100;  ///< Curve A (Ann = 4A for 2 coins)
  std::uint64_t fee_numerator = 996;
  std::uint64_t fee_denominator = 1000;

  [[nodiscard]] double gamma() const {
    return static_cast<double>(fee_numerator) /
           static_cast<double>(fee_denominator);
  }
};

struct ExactStableResult {
  U256 amount_out;
  /// Admissible |model − exact| in output units.
  double tolerance = 0.0;
};

inline U256 u256_absdiff(const U256& a, const U256& b) {
  return a > b ? a - b : b - a;
}

/// Curve's get_D for two coins: D ← (Ann·S + 2·D_P)·D /
/// ((Ann−1)·D + 3·D_P) with D_P = D³/(4xy), floored at every division,
/// from D₀ = S until successive iterates differ by ≤ 1 unit.
inline U256 stable_d_exact(const U256& x, const U256& y,
                           std::uint64_t amplification) {
  ARB_REQUIRE(!x.is_zero() && !y.is_zero(), "stable oracle needs reserves");
  const U256 s = x + y;
  const U256 ann = U256(4 * amplification);
  U256 d = s;
  for (int i = 0; i < 255; ++i) {
    U256 d_p = d * d / (x * U256(2));
    d_p = d_p * d / (y * U256(2));
    const U256 next = (ann * s + d_p * U256(2)) * d /
                      ((ann - U256(1)) * d + d_p * U256(3));
    const U256 diff = u256_absdiff(next, d);
    d = next;
    if (diff <= U256(1)) break;
  }
  return d;
}

/// Curve's get_y: the output-side balance solving the invariant at the
/// new input-side balance, by Newton from y₀ = D:
///   y ← (y² + c) / (2y + b − D),  b = x' + D/Ann,  c = D³/(4·x'·Ann).
inline U256 stable_y_exact(const U256& new_x, const U256& d,
                           std::uint64_t amplification) {
  ARB_REQUIRE(!new_x.is_zero(), "stable oracle needs a positive balance");
  const U256 ann = U256(4 * amplification);
  U256 c = d * d / (new_x * U256(2));
  c = c * d / (ann * U256(2));
  const U256 b = new_x + d / ann;
  U256 y = d;
  for (int i = 0; i < 255; ++i) {
    const U256 denom = y * U256(2) + b;
    // Newton descends from above the root, where 2y + b − D > 0; a
    // floor pushing past it would underflow the subtraction — at that
    // point the iterate is already within the termination radius.
    if (denom <= d) break;
    const U256 next = (y * y + c) / (denom - d);
    const U256 diff = u256_absdiff(next, y);
    y = next;
    if (diff <= U256(1)) break;
  }
  return y;
}

/// Exact stable swap: D from the current reserves, the post-trade
/// output balance from get_y, Curve's 1-unit rounding haircut, then the
/// output-side fee γ = fn/fd — floored, as the contract does.
inline ExactStableResult exact_stable_out(const ExactStableHop& hop,
                                          const U256& amount_in) {
  const U256 d =
      stable_d_exact(hop.reserve_in, hop.reserve_out, hop.amplification);
  const U256 new_y =
      stable_y_exact(hop.reserve_in + amount_in, d, hop.amplification);
  U256 dy = hop.reserve_out > new_y ? hop.reserve_out - new_y : U256(0);
  if (!dy.is_zero()) dy = dy - U256(1);
  ExactStableResult result;
  result.amount_out =
      dy * U256(hop.fee_numerator) / U256(hop.fee_denominator);
  const double scale = hop.reserve_in.to_double() +
                       hop.reserve_out.to_double() + amount_in.to_double();
  result.tolerance = kStableOracleRel * scale + kStableOracleAbs;
  return result;
}

inline bool within_stable_bound(double model_out,
                                const ExactStableResult& exact) {
  const double deviation = model_out - exact.amount_out.to_double();
  return (deviation < 0.0 ? -deviation : deviation) <= exact.tolerance;
}

/// The real-valued StablePool mirroring a hop (reserves round above
/// 2⁵³ — that loss is inside the bound).
inline amm::StablePool real_stable_pool_of(const ExactStableHop& hop,
                                           PoolId id) {
  const double fee =
      1.0 - static_cast<double>(hop.fee_numerator) /
                static_cast<double>(hop.fee_denominator);
  return amm::StablePool(id, TokenId{0}, TokenId{1},
                         hop.reserve_in.to_double(),
                         hop.reserve_out.to_double(),
                         static_cast<double>(hop.amplification), fee);
}

/// The amplification menu the property tests draw from: flat-curve
/// 5000 down to the near-CPMM A=1 corner.
inline std::uint64_t random_amplification(Rng& rng) {
  static constexpr std::uint64_t kMenu[] = {1, 5, 20, 100, 200, 1000, 5000};
  return kMenu[rng.index(sizeof(kMenu) / sizeof(kMenu[0]))];
}

// ---------------------------------------------------------------------------
// Concentrated-liquidity in-range exact oracle
//
// In range, a V3 position is a CPMM on virtual reserves x_v = L/√P,
// y_v = L·√P, and the swap output is a single rational in the integer
// parameters once √-prices are scaled integers sp = √P·2²⁴:
//
//   token0 in:  out = fn·Δ·L·sp²  / (S·(L·S·fd + fn·Δ·sp))
//   token1 in:  out = fn·Δ·L·S²   / (sp·(L·sp·fd + fn·Δ·S))
//
// (derived by clearing denominators from Δ_eff·y_v/(x_v + Δ_eff) with
// Δ_eff = fn·Δ/fd). The oracle floors that rational exactly, so
// 0 ≤ real − exact < 1 unit, like the CPMM oracle. With Δ, L < 2⁷²,
// sp < 2⁴⁸ and fd ≤ 2¹⁰ the worst numerator is < 2²⁵⁰: no overflow.
//
// The model's error is float-only: the pool stores √P (one square root
// of the double-rounded price ratio, ~1 ulp) and the output
// L·(√P − √P') cancels for small trades, so the bound carries the
// output-side *virtual* reserve scale, not the output scale.
// ---------------------------------------------------------------------------

/// √-price fixed-point scale (S = 2²⁴).
inline constexpr std::uint64_t kSqrtScale = std::uint64_t{1} << 24;
/// Virtual-reserve-relative float allowance for the concentrated model.
inline constexpr double kConcOracleRel = 1e-11;
inline constexpr double kConcOracleAbs = 2.0;

/// One in-range concentrated hop of exact integer state. `sqrt_price`
/// and `sqrt_edge` are √-prices scaled by kSqrtScale; `sqrt_edge` is the
/// range boundary in the direction of travel (√p_lo for token0 in,
/// √p_hi for token1 in).
struct ExactConcentratedHop {
  U256 liquidity;
  U256 sqrt_price;
  U256 sqrt_edge;
  bool token0_in = true;
  std::uint64_t fee_numerator = 997;
  std::uint64_t fee_denominator = 1000;
};

struct ExactConcentratedResult {
  U256 amount_out;
  double tolerance = 0.0;
};

/// Largest input that keeps the swap in range (Δ_eff ≤ distance to the
/// edge in virtual-reserve units), floored.
inline U256 concentrated_max_in(const ExactConcentratedHop& hop) {
  const U256 fd(hop.fee_denominator);
  const U256 fn(hop.fee_numerator);
  const U256 s(kSqrtScale);
  if (hop.token0_in) {
    ARB_REQUIRE(hop.sqrt_edge < hop.sqrt_price, "edge must be below price");
    // Δ_eff ≤ L·S·(sp − sl)/(sl·sp)
    const U256 gap = hop.sqrt_price - hop.sqrt_edge;
    return fd * hop.liquidity * s * gap /
           (fn * hop.sqrt_edge * hop.sqrt_price);
  }
  ARB_REQUIRE(hop.sqrt_edge > hop.sqrt_price, "edge must be above price");
  // Δ_eff ≤ L·(sh − sp)/S
  const U256 gap = hop.sqrt_edge - hop.sqrt_price;
  return fd * hop.liquidity * gap / (fn * s);
}

/// Exact in-range concentrated swap output (see the rational above).
inline ExactConcentratedResult exact_concentrated_out(
    const ExactConcentratedHop& hop, const U256& amount_in) {
  const U256 fd(hop.fee_denominator);
  const U256 fn(hop.fee_numerator);
  const U256 s(kSqrtScale);
  const U256& sp = hop.sqrt_price;
  const U256& ell = hop.liquidity;
  ExactConcentratedResult result;
  double out_side_virtual;
  if (hop.token0_in) {
    result.amount_out = fn * amount_in * ell * sp * sp /
                        (s * (ell * s * fd + fn * amount_in * sp));
    out_side_virtual = ell.to_double() * sp.to_double() /
                       static_cast<double>(kSqrtScale);
  } else {
    result.amount_out = fn * amount_in * ell * s * s /
                        (sp * (ell * sp * fd + fn * amount_in * s));
    out_side_virtual = ell.to_double() * static_cast<double>(kSqrtScale) /
                       sp.to_double();
  }
  result.tolerance =
      kConcOracleRel * (out_side_virtual + result.amount_out.to_double()) +
      kConcOracleAbs;
  return result;
}

inline bool within_concentrated_bound(double model_out,
                                      const ExactConcentratedResult& exact) {
  const double deviation = model_out - exact.amount_out.to_double();
  return (deviation < 0.0 ? -deviation : deviation) <= exact.tolerance;
}

/// The real-valued ConcentratedPool mirroring a hop. The unused range
/// side is placed one scaled unit beyond the price (the model's output
/// never reads it in range).
inline amm::ConcentratedPool real_concentrated_pool_of(
    const ExactConcentratedHop& hop, PoolId id) {
  const double fee =
      1.0 - static_cast<double>(hop.fee_numerator) /
                static_cast<double>(hop.fee_denominator);
  const double scale = static_cast<double>(kSqrtScale);
  const double sp = hop.sqrt_price.to_double() / scale;
  const double edge = hop.sqrt_edge.to_double() / scale;
  const double lo = hop.token0_in ? edge : sp / 2.0;
  const double hi = hop.token0_in ? sp * 2.0 : edge;
  return amm::ConcentratedPool(id, TokenId{0}, TokenId{1},
                               hop.liquidity.to_double(), sp * sp, lo * lo,
                               hi * hi, fee);
}

}  // namespace arb::testkit
