#pragma once

/// \file oracle.hpp
/// Exact rational swap oracle for property tests.
///
/// The analytical layer models swaps in doubles; the chain computes them
/// in uint256 with flooring division. This kit evaluates the same swap
/// (and multi-hop chains of swaps) in exact integer arithmetic — on top
/// of get_amount_out_exact, the bit-for-bit V2 pipeline — and derives a
/// sound per-case error bound the double model must satisfy.
///
/// Error model. The real-valued hop output F(Δ) = γΔy/(x+γΔ) with
/// γ = fn/fd equals Δ·fn·y / (x·fd + Δ·fn) — the *same* rational the
/// contract floors — so per hop
///
///   exact = floor(real)  ⇒  0 <= real − exact < 1 unit.
///
/// Errors are propagated in absolute units. If the model's running
/// amount differs from the exact chain's by at most E entering a hop,
/// then after the hop it differs by at most
///
///   E' = ( E · sup F' + 1 + kRelPerHop·(out + 1) ) · (1 + kRelPerHop)
///
/// — the carried error amplified by the hop's steepest slope over the
/// uncertainty interval (F' = γxy/(x+γΔ)² is decreasing, so the sup
/// sits at max(Δ−E, 0)), plus the hop's own floor loss (< 1 unit) and
/// its double-arithmetic noise. kRelPerHop = 1e-12 is ~3 orders of
/// magnitude above the actual float noise (~8·2⁻⁵³ ≈ 1.8e-15 per hop).
/// For realistic magnitudes (intermediate amounts ≫ 1 unit) the bound
/// stays at ppm-of-output scale; for degenerate dust chains — an
/// intermediate hop flooring to zero, then a high-price hop blowing the
/// sub-unit remainder up again — it grows with the price product, which
/// is exactly the true worst case of the double model.
///
/// Reserves are uint112 on-chain; with fee denominators <= 2¹⁰ every
/// intermediate product stays under 234 bits, so U256 never overflows.

#include <cstdint>
#include <vector>

#include "amm/pool.hpp"
#include "amm/swap_math.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/uint256.hpp"

namespace arb::testkit {

/// Per-hop float-noise allowance (see file comment).
inline constexpr double kRelPerHop = 1e-12;
/// Flat absolute headroom in units on top of the propagated bound.
inline constexpr double kAbsSlack = 2.0;

/// One hop of exact integer state, oriented input → output.
struct ExactHop {
  U256 reserve_in;
  U256 reserve_out;
  std::uint64_t fee_numerator = 997;
  std::uint64_t fee_denominator = 1000;

  [[nodiscard]] double gamma() const {
    return static_cast<double>(fee_numerator) /
           static_cast<double>(fee_denominator);
  }
};

/// Exact output of a chain of hops plus the admissible model deviation.
struct ExactChainResult {
  U256 amount_out;
  std::vector<U256> hop_outputs;
  /// Admissible |model − exact| in output units for a double model of
  /// the same chain.
  double tolerance = 0.0;
};

/// Evaluates a swap chain in exact integer arithmetic and accumulates
/// the error bound for a real-valued model of the same chain.
inline ExactChainResult exact_chain_out(const std::vector<ExactHop>& hops,
                                        const U256& amount_in) {
  ARB_REQUIRE(!hops.empty(), "oracle chain needs at least one hop");
  ExactChainResult result;
  result.hop_outputs.reserve(hops.size());
  U256 amount = amount_in;
  double error = kRelPerHop * amount_in.to_double();  // input rounding
  for (const ExactHop& hop : hops) {
    const double x = hop.reserve_in.to_double();
    const double y = hop.reserve_out.to_double();
    const double g = hop.gamma();
    const double a = amount.to_double();
    // Steepest slope over the uncertainty interval: F' decreases in Δ.
    const double low = a > error ? a - error : 0.0;
    const double denom = x + g * low;
    const double slope = g * x * y / (denom * denom);
    amount = amm::get_amount_out_exact(amount, hop.reserve_in,
                                       hop.reserve_out, hop.fee_numerator,
                                       hop.fee_denominator);
    result.hop_outputs.push_back(amount);
    const double out = amount.to_double();
    error = (error * slope + 1.0 + kRelPerHop * (out + 1.0)) *
            (1.0 + kRelPerHop);
  }
  result.amount_out = amount;
  result.tolerance = error + kAbsSlack;
  return result;
}

/// Single-hop convenience.
inline ExactChainResult exact_out(const ExactHop& hop, const U256& amount_in) {
  return exact_chain_out({hop}, amount_in);
}

/// True iff a double model's output is within the oracle's bound.
inline bool within_bound(double model_out, const ExactChainResult& exact) {
  const double deviation = model_out - exact.amount_out.to_double();
  return (deviation < 0.0 ? -deviation : deviation) <= exact.tolerance;
}

/// The real-valued CpmmPool mirroring a hop: reserves converted to
/// double (rounds above 2⁵³ — that loss is inside the bound).
inline amm::CpmmPool real_pool_of(const ExactHop& hop, PoolId id) {
  const double fee =
      1.0 - static_cast<double>(hop.fee_numerator) /
                static_cast<double>(hop.fee_denominator);
  return amm::CpmmPool(id, TokenId{0}, TokenId{1},
                       hop.reserve_in.to_double(), hop.reserve_out.to_double(),
                       fee);
}

/// Log-uniform random magnitude in [1, 2^max_bits): picks a bit length
/// uniformly, then uniform bits below it. Covers 1 wei through
/// 2¹¹²-scale reserves with equal weight per decade instead of piling
/// all mass at the top.
inline U256 random_magnitude(Rng& rng, int max_bits) {
  ARB_REQUIRE(max_bits >= 1 && max_bits <= 128, "bad magnitude range");
  const int bits = static_cast<int>(rng.uniform_int(1, max_bits));
  U256 value = U256(1) << (bits - 1);
  if (bits > 1) {
    const int low = bits - 1 < 64 ? bits - 1 : 64;
    const std::uint64_t mask =
        low == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << low) - 1);
    value = value + U256(rng.next_u64() & mask);
    if (bits - 1 > 64) {
      value = value + (U256(rng.next_u64() &
                            ((std::uint64_t{1} << (bits - 1 - 64)) - 1))
                       << 64);
    }
  }
  return value;
}

/// The fee menu the property tests draw from (numerator over 1000):
/// mainnet 997, plus spreads from fee-free to 5%.
inline std::uint64_t random_fee_numerator(Rng& rng) {
  static constexpr std::uint64_t kMenu[] = {1000, 997, 995, 990, 970, 950};
  return kMenu[rng.index(sizeof(kMenu) / sizeof(kMenu[0]))];
}

}  // namespace arb::testkit
