#include "amm/concentrated_pool.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace arb::amm {
namespace {

const TokenId kX{0};
const TokenId kY{1};
const TokenId kZ{2};

TEST(ConcentratedPoolTest, ConstructionValidation) {
  EXPECT_THROW(ConcentratedPool(PoolId{0}, kX, kX, 1.0, 1.0, 0.5, 2.0),
               PreconditionError);
  EXPECT_THROW(ConcentratedPool(PoolId{0}, kX, kY, -1.0, 1.0, 0.5, 2.0),
               PreconditionError);
  // Price outside the range.
  EXPECT_THROW(ConcentratedPool(PoolId{0}, kX, kY, 1.0, 3.0, 0.5, 2.0),
               PreconditionError);
  EXPECT_THROW(ConcentratedPool(PoolId{0}, kX, kY, 1.0, 1.0, 0.5, 2.0, 1.0),
               PreconditionError);
}

TEST(ConcentratedPoolTest, RealReservesMatchFormulas) {
  // L = 1000, P = 4 (√P = 2), range [1, 16] (√ ∈ [1, 4]).
  const ConcentratedPool pool(PoolId{0}, kX, kY, 1000.0, 4.0, 1.0, 16.0);
  EXPECT_NEAR(pool.reserve0(), 1000.0 * (0.5 - 0.25), 1e-9);  // 250
  EXPECT_NEAR(pool.reserve1(), 1000.0 * (2.0 - 1.0), 1e-9);   // 1000
  EXPECT_NEAR(pool.price(), 4.0, 1e-12);
}

TEST(ConcentratedPoolTest, FullRangeLimitEqualsCpmm) {
  // CPMM with reserves (100, 400): price 4, L = √(xy) = 200.
  const CpmmPool cpmm(PoolId{0}, kX, kY, 100.0, 400.0, 0.003);
  const ConcentratedPool cl(PoolId{1}, kX, kY, 200.0, 4.0, 1e-12, 1e12,
                            0.003);
  EXPECT_NEAR(cl.reserve0(), 100.0, 1e-3);
  EXPECT_NEAR(cl.reserve1(), 400.0, 1e-3);
  for (double dx : {0.1, 1.0, 10.0, 50.0}) {
    EXPECT_NEAR(cl.quote(kX, dx).amount_out, cpmm.quote(kX, dx).amount_out,
                1e-6 * cpmm.quote(kX, dx).amount_out)
        << "dx=" << dx;
    EXPECT_NEAR(cl.quote(kY, dx).amount_out, cpmm.quote(kY, dx).amount_out,
                1e-6 * std::max(1e-12, cpmm.quote(kY, dx).amount_out))
        << "dy=" << dx;
  }
}

TEST(ConcentratedPoolTest, ConcentrationBeatsCpmmDepth) {
  // Same real reserves, narrow range: far less slippage.
  const CpmmPool cpmm(PoolId{0}, kX, kY, 1000.0, 1000.0, 0.0);
  const auto cl = ConcentratedPool::from_reserves(
                      PoolId{1}, kX, kY, 1000.0, 1000.0, 0.64, 1.5625, 0.0)
                      .value();
  EXPECT_NEAR(cl.price(), 1.0, 1e-6);
  const double trade = 200.0;
  EXPECT_GT(cl.quote(kX, trade).amount_out,
            cpmm.quote(kX, trade).amount_out * 1.02);
}

TEST(ConcentratedPoolTest, OutputClampsAtRangeEdge) {
  const ConcentratedPool pool(PoolId{0}, kX, kY, 1000.0, 4.0, 1.0, 16.0,
                              0.0);
  // Selling X pushes √P toward 1; the pool can emit at most reserve1.
  const double huge = pool.quote(kX, 1e12).amount_out;
  EXPECT_NEAR(huge, pool.reserve1(), 1e-6);
  // Marginal rate at the clamp is zero.
  EXPECT_DOUBLE_EQ(pool.quote(kX, 1e12).marginal_rate, 0.0);
}

TEST(ConcentratedPoolTest, DerivativeAtExactTickBoundaryIsRightLimit) {
  // All quantities are powers of two so the edge-hitting input is exact
  // in floating point: √P = 1, √ range [0.5, 2], L = 1024, no fee. The
  // input that lands the price exactly on an edge is L·(1/√lo − 1/√P) =
  // L·(√hi − √P) = 1024 on either side. The derivative is discontinuous
  // there; the quote must report the *right* limit (the flat post-edge
  // slope, zero), because the solver treats marginal_rate as the slope
  // of further input — the left limit used to leak through and fed the
  // barrier a positive slope in a direction with no output left.
  const ConcentratedPool pool(PoolId{0}, kX, kY, 1024.0, 1.0, 0.25, 4.0,
                              0.0);
  const double edge_in = 1024.0;

  // Token0 in, price driven down to √lo: output is the whole token1
  // side, L·(√P − √lo) = 512, and the slope at the boundary is zero.
  const SwapQuote at0 = pool.quote(kX, edge_in);
  EXPECT_DOUBLE_EQ(at0.amount_out, 512.0);
  EXPECT_DOUBLE_EQ(at0.marginal_rate, 0.0);
  // Token1 in, price driven up to √hi: output is the whole token0 side,
  // L·(1/√P − 1/√hi) = 512.
  const SwapQuote at1 = pool.quote(kY, edge_in);
  EXPECT_DOUBLE_EQ(at1.amount_out, 512.0);
  EXPECT_DOUBLE_EQ(at1.marginal_rate, 0.0);

  // Just inside the range the slope is still strictly positive and the
  // output strictly below the clamp; just beyond, it stays flat.
  const double eps = std::ldexp(1.0, -10);  // 2^-10, exact
  const SwapQuote inside = pool.quote(kX, edge_in - eps);
  EXPECT_GT(inside.marginal_rate, 0.0);
  EXPECT_LT(inside.amount_out, 512.0);
  const SwapQuote beyond = pool.quote(kX, edge_in + eps);
  EXPECT_DOUBLE_EQ(beyond.amount_out, 512.0);
  EXPECT_DOUBLE_EQ(beyond.marginal_rate, 0.0);
}

TEST(ConcentratedPoolTest, MonotoneAndConcave) {
  const ConcentratedPool pool(PoolId{0}, kX, kY, 5000.0, 2.25, 1.0, 4.0,
                              0.003);
  double prev_out = -1.0;
  double prev_rate = 1e18;
  for (double dx = 1.0; dx <= 4096.0; dx *= 2.0) {
    const SwapQuote q = pool.quote(kX, dx);
    EXPECT_GE(q.amount_out, prev_out);
    EXPECT_LE(q.marginal_rate, prev_rate + 1e-12);
    prev_out = q.amount_out;
    prev_rate = q.marginal_rate;
  }
}

TEST(ConcentratedPoolTest, MarginalRateMatchesNumeric) {
  const ConcentratedPool pool(PoolId{0}, kX, kY, 5000.0, 2.25, 1.0, 4.0,
                              0.003);
  for (double dx : {0.0, 10.0, 200.0}) {
    const double h = 1e-4;
    const double numeric = (pool.quote(kX, dx + h).amount_out -
                            pool.quote(kX, std::max(0.0, dx - h)).amount_out) /
                           (dx < h ? dx + h : 2 * h);
    EXPECT_NEAR(pool.quote(kX, dx).marginal_rate, numeric, 1e-4)
        << "dx=" << dx;
  }
}

TEST(ConcentratedPoolTest, ApplySwapMovesPriceAndReserves) {
  ConcentratedPool pool(PoolId{0}, kX, kY, 1000.0, 4.0, 1.0, 16.0, 0.0);
  const double x_before = pool.reserve0();
  const double p_before = pool.price();
  auto q = pool.apply_swap(kX, 50.0);
  ASSERT_TRUE(q.ok());
  EXPECT_LT(pool.price(), p_before);       // selling X lowers the price
  EXPECT_GT(pool.reserve0(), x_before);    // pool holds more X
  EXPECT_NEAR(pool.reserve1(),
              1000.0 * (std::sqrt(pool.price()) - 1.0), 1e-9);
}

TEST(ConcentratedPoolTest, ApplySwapRejectsRangeExit) {
  ConcentratedPool pool(PoolId{0}, kX, kY, 1000.0, 4.0, 2.25, 9.0, 0.0);
  auto q = pool.apply_swap(kX, 1e9);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.error().code, ErrorCode::kCapacityExceeded);
  EXPECT_NEAR(pool.price(), 4.0, 1e-12);  // state unchanged on failure
}

TEST(ConcentratedPoolTest, FromReservesRoundTrip) {
  Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    const double r0 = rng.uniform(10.0, 1e5);
    const double r1 = rng.uniform(10.0, 1e5);
    const double implied = r1 / r0;  // rough scale of the price
    auto pool = ConcentratedPool::from_reserves(
        PoolId{0}, kX, kY, r0, r1, implied / 16.0, implied * 16.0);
    ASSERT_TRUE(pool.ok()) << "trial " << trial;
    EXPECT_NEAR(pool->reserve0(), r0, r0 * 1e-6);
    EXPECT_NEAR(pool->reserve1(), r1, r1 * 1e-6);
  }
}

TEST(ConcentratedPoolTest, FromReservesPriceIsNotTheNaiveRatio) {
  // For a concentrated position the reserve ratio does NOT imply the
  // price r1/r0 (as it does for CPMM): equal reserves on the range
  // [100, 400] correspond to a price deep inside that range, nowhere
  // near 1. The solver must land strictly inside the range.
  auto pool = ConcentratedPool::from_reserves(PoolId{0}, kX, kY, 1000.0,
                                              1000.0, 100.0, 400.0);
  ASSERT_TRUE(pool.ok());
  EXPECT_GT(pool->price(), 100.0);
  EXPECT_LT(pool->price(), 400.0);
  EXPECT_NEAR(pool->reserve0(), 1000.0, 1e-3);
  EXPECT_NEAR(pool->reserve1(), 1000.0, 1e-3);
}

TEST(ConcentratedPoolTest, RoundTripLosesFee) {
  ConcentratedPool pool(PoolId{0}, kX, kY, 10'000.0, 1.0, 0.25, 4.0,
                        0.003);
  auto out = pool.apply_swap(kX, 100.0);
  ASSERT_TRUE(out.ok());
  auto back = pool.apply_swap(kY, out->amount_out);
  ASSERT_TRUE(back.ok());
  EXPECT_LT(back->amount_out, 100.0);
}

TEST(ConcentratedPoolTest, GenericPathIntegration) {
  // Mixed loop: CL pool (narrow USDC/USDT) + two CPMM legs; the generic
  // optimizer finds a positive optimum with marginal return 1.
  const auto cl = ConcentratedPool::from_reserves(
                      PoolId{0}, kX, kY, 1'004'000.0, 996'000.0, 0.8, 1.25,
                      0.0004)
                      .value();
  const CpmmPool usdt_weth(PoolId{1}, kY, kZ, 1'830'000.0, 1'000.0);
  const CpmmPool weth_usdc(PoolId{2}, kZ, kX, 1'000.0, 1'860'000.0);
  const GenericPath loop({swap_fn(cl, kX), swap_fn(usdt_weth, kY),
                          swap_fn(weth_usdc, kZ)});
  GenericOptimizeOptions options;
  options.initial_scale = 1'000.0;
  const auto trade = optimize_input_generic(loop, options).value();
  EXPECT_GT(trade.profit, 0.0);
  // Concentration makes this loop strictly more profitable than the
  // CPMM version of the same pegged leg.
  const CpmmPool cpmm_leg(PoolId{0}, kX, kY, 1'004'000.0, 996'000.0,
                          0.0004);
  const GenericPath cpmm_loop({swap_fn(cpmm_leg, kX),
                               swap_fn(usdt_weth, kY),
                               swap_fn(weth_usdc, kZ)});
  const auto cpmm_trade =
      optimize_input_generic(cpmm_loop, options).value();
  EXPECT_GT(trade.profit, cpmm_trade.profit);
}

}  // namespace
}  // namespace arb::amm
