#include "amm/integer_pool.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace arb::amm {
namespace {

const TokenId kA{0};
const TokenId kB{1};
const TokenId kC{2};

IntegerPool make_pool(std::uint64_t r0 = 1'000'000,
                      std::uint64_t r1 = 2'000'000) {
  return IntegerPool(PoolId{0}, kA, kB, U256{r0}, U256{r1});
}

TEST(IntegerPoolTest, ConstructionValidation) {
  EXPECT_THROW(IntegerPool(PoolId{0}, kA, kA, U256{1}, U256{1}),
               PreconditionError);
  EXPECT_THROW(IntegerPool(PoolId{0}, kA, kB, U256{0}, U256{1}),
               PreconditionError);
  EXPECT_THROW(IntegerPool(PoolId{0}, kA, kB, U256{1}, U256{1}, 1001, 1000),
               PreconditionError);
}

TEST(IntegerPoolTest, Accessors) {
  const IntegerPool pool = make_pool();
  EXPECT_TRUE(pool.contains(kA));
  EXPECT_FALSE(pool.contains(kC));
  EXPECT_EQ(pool.other(kA), kB);
  EXPECT_EQ(pool.reserve_of(kA), U256{1'000'000});
  EXPECT_EQ(pool.k(), U256{1'000'000} * U256{2'000'000});
}

TEST(IntegerPoolTest, QuoteMatchesGetAmountOut) {
  const IntegerPool pool = make_pool();
  EXPECT_EQ(pool.quote(kA, U256{10'000}),
            get_amount_out_exact(U256{10'000}, U256{1'000'000},
                                 U256{2'000'000}));
}

TEST(IntegerPoolTest, ApplySwapMovesReserves) {
  IntegerPool pool = make_pool();
  auto out = pool.apply_swap(kA, U256{10'000});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(pool.reserve0(), U256{1'010'000});
  EXPECT_EQ(pool.reserve1(), U256{2'000'000} - *out);
}

TEST(IntegerPoolTest, KNeverDecreasesAcrossRandomSwaps) {
  Rng rng(61);
  IntegerPool pool = make_pool(123'456'789ULL, 987'654'321ULL);
  for (int i = 0; i < 200; ++i) {
    const U256 k_before = pool.k();
    const TokenId side = rng.bernoulli(0.5) ? kA : kB;
    const U256 amount{(rng.next_u64() % 1'000'000) + 1};
    ASSERT_TRUE(pool.apply_swap(side, amount).ok());
    EXPECT_GE(pool.k(), k_before);
  }
}

TEST(IntegerPoolTest, FromRealQuantizes) {
  const CpmmPool real(PoolId{3}, kA, kB, 100.5, 200.25);
  const IntegerPool integer = IntegerPool::from_real(real, 100.0);
  EXPECT_EQ(integer.reserve0(), U256{10050});
  EXPECT_EQ(integer.reserve1(), U256{20025});
  EXPECT_EQ(integer.id(), PoolId{3});
}

TEST(IntegerPoolTest, FromRealRejectsZeroQuantization) {
  const CpmmPool tiny(PoolId{0}, kA, kB, 0.5, 100.0);
  EXPECT_THROW((void)IntegerPool::from_real(tiny, 1.0), PreconditionError);
}

TEST(IntegerPoolTest, FromRealTracksDoubleModel) {
  Rng rng(62);
  for (int trial = 0; trial < 50; ++trial) {
    const double r0 = rng.uniform(100.0, 1e6);
    const double r1 = rng.uniform(100.0, 1e6);
    const CpmmPool real(PoolId{0}, kA, kB, r0, r1);
    const IntegerPool integer = IntegerPool::from_real(real, 1e9);
    const double dx = rng.uniform(0.1, r0);
    const double real_out = real.quote(kA, dx).amount_out;
    const double int_out =
        integer.quote(kA, U256{static_cast<std::uint64_t>(dx * 1e9)})
            .to_double() /
        1e9;
    EXPECT_NEAR(int_out / real_out, 1.0, 1e-6);
  }
}

TEST(IntegerPoolTest, DrainRejected) {
  IntegerPool pool(PoolId{0}, kA, kB, U256{1000}, U256{2});
  // Enormous input would floor the output to reserve-1 at most; the
  // contract still forbids taking the whole reserve.
  auto out = pool.apply_swap(kA, U256{1} << 120);
  // getAmountOut floors below the reserve, so this either succeeds with
  // out < reserve or fails cleanly; never drains to zero.
  if (out.ok()) {
    EXPECT_FALSE(pool.reserve_of(kB).is_zero());
  } else {
    EXPECT_EQ(out.error().code, ErrorCode::kCapacityExceeded);
  }
}

}  // namespace
}  // namespace arb::amm
