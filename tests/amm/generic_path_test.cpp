// Concave-continuation edge cases for the signed swap wrappers
// (amm signed_swap_fn / GenericPath::evaluate_signed): round-trip
// inversion against each venue's forward quote, domain boundaries
// (reserve depletion, concentrated range edges, near-pinned ticks), the
// fee kink at zero, and a cross-check of the forward side against the
// exact integer oracle.

#include "amm/generic_path.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "amm/any_pool.hpp"
#include "amm/concentrated_pool.hpp"
#include "amm/pool.hpp"
#include "amm/stable_pool.hpp"
#include "common/rng.hpp"
#include "testkit/oracle.hpp"

namespace arb::amm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const TokenId kA{0};
const TokenId kB{1};

// F̃_rev(−out) = −F⁻¹(out): selling the forward output back through the
// reverse continuation must recover (minus) the forward input.
TEST(GenericPathSignedTest, CpmmRoundTripInvertsForwardQuote) {
  const CpmmPool pool(PoolId{0}, kA, kB, 5'000.0, 11'000.0, 0.003);
  const SwapFn reverse = signed_swap_fn(pool, kB);
  for (const double d : {1e-6, 0.5, 37.0, 1'000.0, 4'999.0}) {
    const double out = pool.quote(kA, d).amount_out;
    const double recovered = -reverse(-out);
    EXPECT_NEAR(recovered, d, 1e-9 * d) << "input " << d;
  }
}

TEST(GenericPathSignedTest, CpmmContinuationDomainEndsAtReserve) {
  const CpmmPool pool(PoolId{0}, kA, kB, 1'000.0, 2'000.0, 0.003);
  // signed_swap_fn(pool, kA) continues below zero until the pool would
  // have to emit its whole token-A reserve (x = 1000).
  const SwapFn signed_fn = signed_swap_fn(pool, kA);
  EXPECT_EQ(signed_fn(-1'000.0), -kInf);
  EXPECT_EQ(signed_fn(-1'500.0), -kInf);
  const double near = signed_fn(-1'000.0 * (1.0 - 1e-9));
  EXPECT_TRUE(std::isfinite(near));
  EXPECT_LT(near, -1e9);  // blows up toward −∞ at the boundary
  // Strictly increasing inside the domain.
  EXPECT_LT(near, signed_fn(-999.0));
  EXPECT_LT(signed_fn(-999.0), signed_fn(-1.0));
  EXPECT_LT(signed_fn(-1.0), signed_fn(0.0));
  EXPECT_DOUBLE_EQ(signed_fn(0.0), 0.0);
}

// The fee kink: F̃'(0⁻) = F'(0⁺)/γ² — crossing zero costs the fee twice,
// which is exactly why round-tripping a pool loses money.
TEST(GenericPathSignedTest, FeeKinkAtZeroIsGammaSquared) {
  const double fee = 0.003;
  const double gamma = 1.0 - fee;
  const CpmmPool pool(PoolId{0}, kA, kB, 10'000.0, 30'000.0, fee);
  const SwapFn signed_fn = signed_swap_fn(pool, kA);
  const double h = 1e-6;
  const double right = (signed_fn(h) - signed_fn(0.0)) / h;
  const double left = (signed_fn(0.0) - signed_fn(-h)) / h;
  EXPECT_NEAR(right, gamma * 3.0, 1e-6);
  EXPECT_NEAR(left, 3.0 / gamma, 1e-6);
  EXPECT_NEAR(left / right, 1.0 / (gamma * gamma), 1e-6);
}

TEST(GenericPathSignedTest, StableRoundTripInvertsForwardQuote) {
  const StablePool pool(PoolId{0}, kA, kB, 1'000'000.0, 1'020'000.0, 200.0,
                        0.0004);
  const SwapFn reverse = signed_swap_fn(pool, kB);
  for (const double d : {1.0, 500.0, 50'000.0, 800'000.0}) {
    const double out = pool.quote(kA, d).amount_out;
    const double recovered = -reverse(-out);
    // The cached-D curve solves Y by Newton; allow its slack.
    EXPECT_NEAR(recovered, d, 1e-6 * d) << "input " << d;
  }
}

TEST(GenericPathSignedTest, StableContinuationDomainEndsAtReserve) {
  const double fee = 0.0004;
  const StablePool pool(PoolId{0}, kA, kB, 2'000.0, 2'000.0, 100.0, fee);
  const SwapFn signed_fn = signed_swap_fn(pool, kA);
  // Fee-on-output: emitting −d of token A costs the pool −d/γ off its
  // reserve, so the domain ends at γ·x₀.
  const double gamma = 1.0 - fee;
  EXPECT_EQ(signed_fn(-gamma * 2'000.0), -kInf);
  EXPECT_EQ(signed_fn(-3'000.0), -kInf);
  EXPECT_TRUE(std::isfinite(signed_fn(-gamma * 2'000.0 * (1.0 - 1e-9))));
  EXPECT_LT(signed_fn(-1'000.0), signed_fn(-10.0));
  EXPECT_LT(signed_fn(-10.0), 0.0);
}

TEST(GenericPathSignedTest, ConcentratedRoundTripInvertsForwardQuote) {
  const ConcentratedPool pool(PoolId{0}, kA, kB, /*liquidity=*/50'000.0,
                              /*price=*/2.0, /*p_lo=*/1.0, /*p_hi=*/4.0,
                              /*fee=*/0.003);
  const SwapFn reverse = signed_swap_fn(pool, kB);
  for (const double d : {1e-3, 10.0, 500.0, 5'000.0}) {
    const double out = pool.quote(kA, d).amount_out;
    const double recovered = -reverse(-out);
    EXPECT_NEAR(recovered, d, 1e-9 * d) << "input " << d;
  }
}

TEST(GenericPathSignedTest, ConcentratedContinuationStopsAtRangeEdge) {
  const ConcentratedPool pool(PoolId{0}, kA, kB, 50'000.0, 2.0, 1.0, 4.0,
                              0.003);
  // Reverse of selling A: the pool emits token A, of which it holds the
  // real in-range reserve L·(1/√P − 1/√hi).
  const double reserve_a =
      pool.liquidity() * (1.0 / pool.sqrt_price() - 1.0 / pool.sqrt_hi());
  const SwapFn signed_fn = signed_swap_fn(pool, kA);
  EXPECT_EQ(signed_fn(-reserve_a), -kInf);
  EXPECT_EQ(signed_fn(-2.0 * reserve_a), -kInf);
  EXPECT_TRUE(std::isfinite(signed_fn(-reserve_a * (1.0 - 1e-9))));
}

// A position priced essentially at its lower tick has ~zero token-B
// reserve: the continuation admits (almost) nothing in the direction
// that drains it, while the other side keeps its full capacity.
TEST(GenericPathSignedTest, NearPinnedTickHasOneSidedCapacity) {
  const double p_lo = 1.0;
  const double price = p_lo * (1.0 + 1e-12);
  const ConcentratedPool pool(PoolId{0}, kA, kB, 10'000.0, price, p_lo, 4.0,
                              0.003);
  const double reserve_b =
      pool.liquidity() * (pool.sqrt_price() - pool.sqrt_lo());
  EXPECT_LT(reserve_b, 1e-7);  // ~pinned
  // Receiving token B beyond the dust reserve is impossible...
  const SwapFn drained = signed_swap_fn(pool, kB);
  EXPECT_EQ(drained(-2.0 * reserve_b - 1e-9), -kInf);
  // ...while the token-A side still has its full range capacity.
  const SwapFn full = signed_swap_fn(pool, kA);
  const double reserve_a =
      pool.liquidity() * (1.0 / pool.sqrt_price() - 1.0 / pool.sqrt_hi());
  EXPECT_TRUE(std::isfinite(full(-0.5 * reserve_a)));
  EXPECT_LT(full(-0.5 * reserve_a), 0.0);
}

// Near-zero liquidity: the continuation stays well-behaved at dust
// scale — monotone inside the (tiny) domain, −∞ outside.
TEST(GenericPathSignedTest, DustReservesKeepDomainSemantics) {
  const CpmmPool pool(PoolId{0}, kA, kB, 1e-9, 1e-9, 0.003);
  const SwapFn signed_fn = signed_swap_fn(pool, kA);
  EXPECT_EQ(signed_fn(-1e-9), -kInf);
  EXPECT_EQ(signed_fn(-1.0), -kInf);
  const double inside = signed_fn(-0.5e-9);
  EXPECT_TRUE(std::isfinite(inside));
  EXPECT_LT(inside, 0.0);
  EXPECT_DOUBLE_EQ(signed_fn(0.0), 0.0);
}

// −∞ is absorbing through a signed chain: once a hop cannot emit the
// required amount, the whole path reports −∞.
TEST(GenericPathSignedTest, EvaluateSignedAbsorbsInfinity) {
  const CpmmPool small(PoolId{0}, kA, kB, 10.0, 10.0, 0.003);
  const CpmmPool big(PoolId{1}, kB, kA, 1e6, 1e6, 0.003);
  const GenericPath chain(
      {signed_swap_fn(small, kA), signed_swap_fn(big, kB)});
  EXPECT_EQ(chain.evaluate_signed(-20.0), -kInf);
  EXPECT_TRUE(std::isfinite(chain.evaluate_signed(-5.0)));
  EXPECT_TRUE(std::isfinite(chain.evaluate_signed(5.0)));
  // Positive side agrees with the plain forward evaluation.
  const GenericPath forward({swap_fn(small, kA), swap_fn(big, kB)});
  EXPECT_DOUBLE_EQ(chain.evaluate_signed(7.0), forward.evaluate(7.0));
}

// Forward side of the signed wrapper against the exact integer oracle:
// seeded random (reserves, fee, input) cases must stay within the
// oracle's sound per-case bound, so the continuation's d ≥ 0 branch is
// pinned to the same truth as the quote pipeline.
TEST(GenericPathSignedTest, ForwardBranchMatchesExactOracle) {
  Rng rng(4711);
  for (int i = 0; i < 2'000; ++i) {
    testkit::ExactHop hop;
    hop.reserve_in = testkit::random_magnitude(rng, 100);
    hop.reserve_out = testkit::random_magnitude(rng, 100);
    hop.fee_numerator = testkit::random_fee_numerator(rng);
    const U256 amount = testkit::random_magnitude(rng, 100);
    const testkit::ExactChainResult exact = testkit::exact_out(hop, amount);

    const CpmmPool pool = testkit::real_pool_of(hop, PoolId{0});
    const SwapFn signed_fn = signed_swap_fn(pool, pool.token0());
    ASSERT_TRUE(
        testkit::within_bound(signed_fn(amount.to_double()), exact))
        << "case " << i << ": in " << amount.to_decimal() << " reserves "
        << hop.reserve_in.to_decimal() << "/"
        << hop.reserve_out.to_decimal() << " fee " << hop.fee_numerator;
  }
}

// Kind-dispatched AnyPool wrapper agrees with the per-venue wrappers.
TEST(GenericPathSignedTest, AnyPoolDispatchMatchesConcreteWrappers) {
  const CpmmPool cpmm(PoolId{0}, kA, kB, 1'000.0, 2'000.0, 0.003);
  const StablePool stable(PoolId{1}, kA, kB, 1'000.0, 1'000.0, 100.0,
                          0.0004);
  const ConcentratedPool conc(PoolId{2}, kA, kB, 10'000.0, 2.0, 1.0, 4.0,
                              0.003);
  for (const double d : {-200.0, -1.0, 0.0, 3.0, 400.0}) {
    EXPECT_DOUBLE_EQ(signed_swap_fn(AnyPool(cpmm), kA)(d),
                     signed_swap_fn(cpmm, kA)(d));
    EXPECT_DOUBLE_EQ(signed_swap_fn(AnyPool(stable), kA)(d),
                     signed_swap_fn(stable, kA)(d));
    EXPECT_DOUBLE_EQ(signed_swap_fn(AnyPool(conc), kA)(d),
                     signed_swap_fn(conc, kA)(d));
  }
}

}  // namespace
}  // namespace arb::amm
