#include "amm/pool.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace arb::amm {
namespace {

const TokenId kX{0};
const TokenId kY{1};
const TokenId kZ{2};

CpmmPool make_pool(double r0 = 100.0, double r1 = 200.0,
                   double fee = kUniswapV2Fee) {
  return CpmmPool(PoolId{0}, kX, kY, r0, r1, fee);
}

TEST(PoolTest, ConstructionValidation) {
  EXPECT_THROW(CpmmPool(PoolId{0}, kX, kX, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(CpmmPool(PoolId{0}, kX, kY, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(CpmmPool(PoolId{0}, kX, kY, 1.0, -1.0), PreconditionError);
  EXPECT_THROW(CpmmPool(PoolId{0}, kX, kY, 1.0, 1.0, 1.0), PreconditionError);
  EXPECT_THROW(CpmmPool(PoolId{0}, TokenId{}, kY, 1.0, 1.0),
               PreconditionError);
}

TEST(PoolTest, Accessors) {
  const CpmmPool pool = make_pool();
  EXPECT_EQ(pool.token0(), kX);
  EXPECT_EQ(pool.token1(), kY);
  EXPECT_DOUBLE_EQ(pool.reserve0(), 100.0);
  EXPECT_DOUBLE_EQ(pool.reserve1(), 200.0);
  EXPECT_DOUBLE_EQ(pool.gamma(), 1.0 - kUniswapV2Fee);
  EXPECT_DOUBLE_EQ(pool.k(), 20000.0);
}

TEST(PoolTest, ContainsAndOther) {
  const CpmmPool pool = make_pool();
  EXPECT_TRUE(pool.contains(kX));
  EXPECT_TRUE(pool.contains(kY));
  EXPECT_FALSE(pool.contains(kZ));
  EXPECT_EQ(pool.other(kX), kY);
  EXPECT_EQ(pool.other(kY), kX);
  EXPECT_THROW((void)pool.other(kZ), PreconditionError);
}

TEST(PoolTest, ReserveOf) {
  const CpmmPool pool = make_pool();
  EXPECT_DOUBLE_EQ(pool.reserve_of(kX), 100.0);
  EXPECT_DOUBLE_EQ(pool.reserve_of(kY), 200.0);
  EXPECT_THROW((void)pool.reserve_of(kZ), PreconditionError);
}

TEST(PoolTest, RelativePricesMultiplyToGammaSquared) {
  const CpmmPool pool = make_pool();
  EXPECT_NEAR(pool.relative_price_of(kX) * pool.relative_price_of(kY),
              pool.gamma() * pool.gamma(), 1e-15);
}

TEST(PoolTest, QuoteIsPure) {
  const CpmmPool pool = make_pool();
  const SwapQuote q1 = pool.quote(kX, 10.0);
  const SwapQuote q2 = pool.quote(kX, 10.0);
  EXPECT_DOUBLE_EQ(q1.amount_out, q2.amount_out);
  EXPECT_DOUBLE_EQ(pool.reserve0(), 100.0);  // unchanged
}

TEST(PoolTest, QuoteDirectionsDiffer) {
  const CpmmPool pool = make_pool();
  EXPECT_NE(pool.quote(kX, 10.0).amount_out, pool.quote(kY, 10.0).amount_out);
}

TEST(PoolTest, ApplySwapMovesReserves) {
  CpmmPool pool = make_pool();
  auto quote = pool.apply_swap(kX, 10.0);
  ASSERT_TRUE(quote.ok());
  EXPECT_DOUBLE_EQ(pool.reserve0(), 110.0);
  EXPECT_DOUBLE_EQ(pool.reserve1(), 200.0 - quote->amount_out);
}

TEST(PoolTest, ApplySwapGrowsKWithFee) {
  CpmmPool pool = make_pool();
  const double k_before = pool.k();
  ASSERT_TRUE(pool.apply_swap(kX, 25.0).ok());
  EXPECT_GT(pool.k(), k_before);  // fee accrues to LPs
}

TEST(PoolTest, FeeFreeSwapPreservesK) {
  CpmmPool pool = make_pool(100.0, 200.0, 0.0);
  const double k_before = pool.k();
  ASSERT_TRUE(pool.apply_swap(kX, 25.0).ok());
  EXPECT_NEAR(pool.k(), k_before, k_before * 1e-12);
}

TEST(PoolTest, RoundTripSwapLosesMoney) {
  CpmmPool pool = make_pool();
  auto out = pool.apply_swap(kX, 10.0);
  ASSERT_TRUE(out.ok());
  auto back = pool.apply_swap(kY, out->amount_out);
  ASSERT_TRUE(back.ok());
  EXPECT_LT(back->amount_out, 10.0);  // fees + slippage
}

TEST(PoolTest, SwapNegativeAmountThrows) {
  CpmmPool pool = make_pool();
  EXPECT_THROW((void)pool.quote(kX, -1.0), PreconditionError);
}

TEST(PoolTest, SequentialSwapsMatchOneBigSwapWhenFeeFree) {
  // Path-independence of the constant product (no fee): two half swaps
  // equal one full swap.
  CpmmPool two_steps = make_pool(100.0, 200.0, 0.0);
  ASSERT_TRUE(two_steps.apply_swap(kX, 5.0).ok());
  ASSERT_TRUE(two_steps.apply_swap(kX, 5.0).ok());
  CpmmPool one_step = make_pool(100.0, 200.0, 0.0);
  ASSERT_TRUE(one_step.apply_swap(kX, 10.0).ok());
  EXPECT_NEAR(two_steps.reserve1(), one_step.reserve1(), 1e-9);
}

TEST(PoolTest, WithFeeSplittingTradesIsWorse) {
  CpmmPool two_steps = make_pool();
  double got_split = 0.0;
  got_split += two_steps.apply_swap(kX, 5.0)->amount_out;
  got_split += two_steps.apply_swap(kX, 5.0)->amount_out;
  CpmmPool one_step = make_pool();
  const double got_whole = one_step.apply_swap(kX, 10.0)->amount_out;
  EXPECT_LT(got_split, got_whole);
}

TEST(PoolPropertyTest, QuoteNeverExceedsLinearPrice) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const double r_in = rng.uniform(10.0, 1e6);
    const double r_out = rng.uniform(10.0, 1e6);
    const CpmmPool pool(PoolId{1}, kX, kY, r_in, r_out);
    const double dx = rng.uniform(0.0, r_in * 10.0);
    const SwapQuote q = pool.quote(kX, dx);
    // Slippage: realized rate <= marginal rate at zero.
    EXPECT_LE(q.amount_out, pool.relative_price_of(kX) * dx * (1.0 + 1e-12));
    EXPECT_LT(q.amount_out, r_out);
  }
}

TEST(PoolTest, ToStringMentionsTokensAndReserves) {
  const std::string s = make_pool().to_string();
  EXPECT_NE(s.find("token#0"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

}  // namespace
}  // namespace arb::amm
