#include "amm/path.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace arb::amm {
namespace {

const TokenId kX{0};
const TokenId kY{1};
const TokenId kZ{2};

/// The paper's Section V pools.
struct Fixture {
  CpmmPool xy{PoolId{0}, kX, kY, 100.0, 200.0};
  CpmmPool yz{PoolId{1}, kY, kZ, 300.0, 200.0};
  CpmmPool zx{PoolId{2}, kZ, kX, 200.0, 400.0};

  PoolPath loop_from_x() const {
    return *PoolPath::create(
        {Hop{&xy, kX}, Hop{&yz, kY}, Hop{&zx, kZ}});
  }
};

TEST(MobiusTest, IdentityMapsInputToItself) {
  const auto id = MobiusCoefficients::identity();
  EXPECT_DOUBLE_EQ(id.evaluate(5.0), 5.0);
  EXPECT_DOUBLE_EQ(id.derivative(5.0), 1.0);
  EXPECT_DOUBLE_EQ(id.rate_at_zero(), 1.0);
  EXPECT_DOUBLE_EQ(id.optimal_input(), 0.0);
}

TEST(MobiusTest, SingleHopMatchesSwapOut) {
  const auto m = MobiusCoefficients::identity().then_hop(100.0, 200.0, 0.997);
  for (double dx : {0.0, 1.0, 50.0, 500.0}) {
    EXPECT_NEAR(m.evaluate(dx), swap_out(100.0, 200.0, 0.997, dx), 1e-9);
  }
}

TEST(MobiusTest, RateAtZeroIsPriceProduct) {
  const Fixture f;
  const PoolPath path = f.loop_from_x();
  EXPECT_NEAR(path.compose().rate_at_zero(), path.price_product(), 1e-12);
}

TEST(MobiusTest, OptimalInputStationary) {
  const Fixture f;
  const auto m = f.loop_from_x().compose();
  const double d_star = m.optimal_input();
  ASSERT_GT(d_star, 0.0);
  EXPECT_NEAR(m.derivative(d_star), 1.0, 1e-9);
}

TEST(MobiusTest, UnprofitableMapHasZeroOptimum) {
  // Single pool: a = γ·y·1, b = x. With γy < x the rate at zero < 1.
  const auto m = MobiusCoefficients::identity().then_hop(200.0, 100.0, 0.997);
  EXPECT_LT(m.rate_at_zero(), 1.0);
  EXPECT_DOUBLE_EQ(m.optimal_input(), 0.0);
}

TEST(PathTest, CreateValidatesContinuity) {
  const Fixture f;
  // Y into the zx pool: not a member.
  auto bad = PoolPath::create({Hop{&f.xy, kX}, Hop{&f.zx, kY}});
  EXPECT_FALSE(bad.ok());
  // Discontinuous: X->Y then Z->X.
  auto discontinuous = PoolPath::create({Hop{&f.xy, kX}, Hop{&f.zx, kZ}});
  EXPECT_FALSE(discontinuous.ok());
  EXPECT_FALSE(PoolPath::create({}).ok());
  auto null_pool = PoolPath::create({Hop{nullptr, kX}});
  EXPECT_FALSE(null_pool.ok());
}

TEST(PathTest, StartEndAndCycle) {
  const Fixture f;
  const PoolPath loop = f.loop_from_x();
  EXPECT_EQ(loop.start_token(), kX);
  EXPECT_EQ(loop.end_token(), kX);
  EXPECT_TRUE(loop.is_cycle());

  const PoolPath open = *PoolPath::create({Hop{&f.xy, kX}, Hop{&f.yz, kY}});
  EXPECT_EQ(open.end_token(), kZ);
  EXPECT_FALSE(open.is_cycle());
}

TEST(PathTest, EvaluateMatchesCompose) {
  const Fixture f;
  const PoolPath loop = f.loop_from_x();
  const auto m = loop.compose();
  for (double dx : {0.5, 5.0, 27.0, 100.0}) {
    EXPECT_NEAR(loop.evaluate(dx), m.evaluate(dx), 1e-9) << "dx=" << dx;
  }
}

TEST(PathTest, DualDerivativeMatchesMobius) {
  const Fixture f;
  const PoolPath loop = f.loop_from_x();
  const auto m = loop.compose();
  for (double dx : {0.0, 1.0, 27.0, 80.0}) {
    const math::Dual d = loop.evaluate_dual(dx);
    EXPECT_NEAR(d.value, m.evaluate(dx), 1e-9);
    EXPECT_NEAR(d.deriv, m.derivative(dx), 1e-9);
  }
}

TEST(PathTest, HopAmountsChain) {
  const Fixture f;
  const PoolPath loop = f.loop_from_x();
  const auto quotes = loop.hop_amounts(27.0);
  ASSERT_EQ(quotes.size(), 3u);
  EXPECT_DOUBLE_EQ(quotes[0].amount_in, 27.0);
  EXPECT_DOUBLE_EQ(quotes[1].amount_in, quotes[0].amount_out);
  EXPECT_DOUBLE_EQ(quotes[2].amount_in, quotes[1].amount_out);
  EXPECT_NEAR(quotes[2].amount_out, loop.evaluate(27.0), 1e-12);
}

TEST(OptimizeTest, AnalyticMatchesPaperExample) {
  const Fixture f;
  const OptimalTrade trade = optimize_input_analytic(f.loop_from_x());
  // Paper: input 27.0, profit 16.8 (with the 0.3% fee).
  EXPECT_NEAR(trade.input, 26.96, 0.01);
  EXPECT_NEAR(trade.profit, 16.87, 0.01);
}

TEST(OptimizeTest, BisectionAgreesWithAnalytic) {
  const Fixture f;
  const PoolPath loop = f.loop_from_x();
  const OptimalTrade analytic = optimize_input_analytic(loop);
  auto bisect = optimize_input_bisection(loop);
  ASSERT_TRUE(bisect.ok());
  EXPECT_NEAR(bisect->input, analytic.input, 1e-6);
  EXPECT_NEAR(bisect->profit, analytic.profit, 1e-6);
  EXPECT_GT(bisect->iterations, 0);
}

TEST(OptimizeTest, UnprofitableLoopGivesZero) {
  // Balanced pools: every loop loses the fee.
  CpmmPool xy(PoolId{0}, kX, kY, 100.0, 100.0);
  CpmmPool yz(PoolId{1}, kY, kZ, 100.0, 100.0);
  CpmmPool zx(PoolId{2}, kZ, kX, 100.0, 100.0);
  const PoolPath loop =
      *PoolPath::create({Hop{&xy, kX}, Hop{&yz, kY}, Hop{&zx, kZ}});
  EXPECT_LT(loop.price_product(), 1.0);
  EXPECT_DOUBLE_EQ(optimize_input_analytic(loop).profit, 0.0);
  auto bisect = optimize_input_bisection(loop);
  ASSERT_TRUE(bisect.ok());
  EXPECT_DOUBLE_EQ(bisect->input, 0.0);
  EXPECT_DOUBLE_EQ(bisect->profit, 0.0);
}

TEST(OptimizeTest, ProfitAtOptimumBeatsNeighbors) {
  const Fixture f;
  const PoolPath loop = f.loop_from_x();
  const OptimalTrade trade = optimize_input_analytic(loop);
  const auto profit = [&](double dx) { return loop.evaluate(dx) - dx; };
  EXPECT_GT(trade.profit, profit(trade.input * 0.9));
  EXPECT_GT(trade.profit, profit(trade.input * 1.1));
}

TEST(OptimizePropertyTest, RandomTrianglesAnalyticEqualsBisection) {
  Rng rng(21);
  int profitable_seen = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const CpmmPool xy(PoolId{0}, kX, kY, rng.uniform(50.0, 5000.0),
                      rng.uniform(50.0, 5000.0));
    const CpmmPool yz(PoolId{1}, kY, kZ, rng.uniform(50.0, 5000.0),
                      rng.uniform(50.0, 5000.0));
    const CpmmPool zx(PoolId{2}, kZ, kX, rng.uniform(50.0, 5000.0),
                      rng.uniform(50.0, 5000.0));
    const PoolPath loop =
        *PoolPath::create({Hop{&xy, kX}, Hop{&yz, kY}, Hop{&zx, kZ}});
    const OptimalTrade analytic = optimize_input_analytic(loop);
    auto bisect = optimize_input_bisection(loop);
    ASSERT_TRUE(bisect.ok());
    EXPECT_NEAR(bisect->profit, analytic.profit,
                1e-6 * std::max(1.0, analytic.profit));
    EXPECT_GE(analytic.profit, 0.0);
    if (analytic.profit > 0.0) {
      ++profitable_seen;
      // Marginal return equals one at the optimum (paper's condition).
      EXPECT_NEAR(loop.evaluate_dual(analytic.input).deriv, 1.0, 1e-6);
    }
  }
  EXPECT_GT(profitable_seen, 10);  // random pools are usually imbalanced
}

TEST(OptimizePropertyTest, PostTradePriceProductIsOne) {
  // After executing the optimal trade, the loop's price product collapses
  // to ~1 (no residual arbitrage) — the paper's equilibrium statement.
  const Fixture f;
  CpmmPool xy = f.xy;
  CpmmPool yz = f.yz;
  CpmmPool zx = f.zx;
  const PoolPath loop =
      *PoolPath::create({Hop{&xy, kX}, Hop{&yz, kY}, Hop{&zx, kZ}});
  const OptimalTrade trade = optimize_input_analytic(loop);
  double amount = trade.input;
  amount = xy.apply_swap(kX, amount)->amount_out;
  amount = yz.apply_swap(kY, amount)->amount_out;
  amount = zx.apply_swap(kZ, amount)->amount_out;
  EXPECT_NEAR(amount - trade.input, trade.profit, 1e-9);

  const PoolPath after =
      *PoolPath::create({Hop{&xy, kX}, Hop{&yz, kY}, Hop{&zx, kZ}});
  // No residual arbitrage: the price product drops to <= 1. (It lands
  // slightly *below* 1 because the pool keeps the fee share of the input
  // in its reserves, which the paper's idealized update ignores.)
  EXPECT_LE(after.price_product(), 1.0 + 1e-9);
  EXPECT_GT(after.price_product(), 0.99);
  // And re-optimizing the drained loop finds nothing.
  EXPECT_DOUBLE_EQ(optimize_input_analytic(after).profit, 0.0);
}

TEST(PathTest, LongPathComposition) {
  // Chain of 10 pools; composition must stay finite and consistent.
  std::vector<CpmmPool> pools;
  pools.reserve(10);
  for (std::uint32_t i = 0; i < 10; ++i) {
    pools.emplace_back(PoolId{i}, TokenId{i}, TokenId{i + 1},
                       1000.0 + 100.0 * i, 1200.0 + 50.0 * i);
  }
  std::vector<Hop> hops;
  for (std::uint32_t i = 0; i < 10; ++i) {
    hops.push_back(Hop{&pools[i], TokenId{i}});
  }
  const PoolPath path = *PoolPath::create(hops);
  EXPECT_NEAR(path.evaluate(57.0), path.compose().evaluate(57.0), 1e-6);
}

}  // namespace
}  // namespace arb::amm
