// Exact-oracle property suite for the non-CPMM venues, mirroring
// testkit/property_oracle_test.cpp: 10k seeded (state, fee, input)
// triples per venue, each checked against the exact integer oracle with
// its sound per-case error bound.
//
//  - StableSwap: the double quote pipeline (cached-D curve + Newton)
//    against the Curve-contract integer pipeline (get_D / get_y with
//    flooring division, 1-unit haircut, output-side fee).
//  - Concentrated liquidity: the double in-range quote against the
//    exact rational on scaled integer (√P, L) state, both orientations,
//    including inputs landing exactly on the range edge.
//
// These oracles are what "proven correct" means for the mixed solver
// fast path: the same quote() surface the analytic hop kernels are
// validated against downstream (solver differential tests) is itself
// pinned to exact integer arithmetic here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "amm/concentrated_pool.hpp"
#include "amm/pool.hpp"
#include "amm/stable_pool.hpp"
#include "common/rng.hpp"
#include "common/uint256.hpp"
#include "testkit/oracle.hpp"

namespace arb::testkit {
namespace {

constexpr std::uint64_t kSeed = 20260809;
constexpr std::size_t kTriples = 10'000;

/// A near-pegged-to-wildly-depegged stable pair: log-uniform input-side
/// reserve, output side within 2^±16 of it (far beyond any realistic
/// depeg, still inside the oracle's overflow budget).
ExactStableHop random_stable_hop(Rng& rng) {
  ExactStableHop hop;
  hop.reserve_in = random_magnitude(rng, kStableReserveBits);
  const int shift = static_cast<int>(rng.uniform_int(-16, 16));
  U256 out = shift >= 0 ? hop.reserve_in << shift : hop.reserve_in >> -shift;
  const U256 cap = (U256(1) << kStableReserveBits) - U256(1);
  if (out.is_zero()) out = U256(1);
  if (out > cap) out = cap;
  hop.reserve_out = out;
  hop.amplification = random_amplification(rng);
  hop.fee_numerator = random_fee_numerator(rng);
  return hop;
}

// 10k seeded (reserves, A, fee, input) cases: the StablePool double
// quote must land within the oracle's bound of the Curve integer
// pipeline's output.
TEST(VenueOraclePropertyTest, StableQuoteMatchesExactOverTenThousandTriples) {
  Rng rng(kSeed);
  for (std::size_t i = 0; i < kTriples; ++i) {
    const ExactStableHop hop = random_stable_hop(rng);
    const U256 amount = random_magnitude(rng, kStableReserveBits);
    const ExactStableResult exact = exact_stable_out(hop, amount);

    const amm::StablePool pool = real_stable_pool_of(hop, PoolId{0});
    const amm::SwapQuote quote = pool.quote(TokenId{0}, amount.to_double());
    ASSERT_TRUE(within_stable_bound(quote.amount_out, exact))
        << "case " << i << " seed " << kSeed << ": model " << quote.amount_out
        << " vs exact " << exact.amount_out.to_decimal() << " (tolerance "
        << exact.tolerance << ", reserves " << hop.reserve_in.to_decimal()
        << "/" << hop.reserve_out.to_decimal() << ", A "
        << hop.amplification << ", fee " << hop.fee_numerator
        << "/1000, in " << amount.to_decimal() << ")";
  }
}

// The exact oracle itself must respect the StableSwap invariant: with
// the fee retained in the output reserve, D never decreases across a
// swap (up to the integer iterations' unit-scale termination radius).
TEST(VenueOraclePropertyTest, StableOracleRespectsInvariant) {
  Rng rng(kSeed + 1);
  for (std::size_t i = 0; i < 1'000; ++i) {
    const ExactStableHop hop = random_stable_hop(rng);
    const U256 amount = random_magnitude(rng, kStableReserveBits);
    const ExactStableResult exact = exact_stable_out(hop, amount);
    if (exact.amount_out >= hop.reserve_out) continue;  // drained: skip

    const U256 d_before =
        stable_d_exact(hop.reserve_in, hop.reserve_out, hop.amplification);
    const U256 d_after =
        stable_d_exact(hop.reserve_in + amount,
                       hop.reserve_out - exact.amount_out,
                       hop.amplification);
    EXPECT_LE(d_before, d_after + U256(8)) << "case " << i;
  }
}

// The cached-D fast-path curve (StableCurve) must agree with the quote
// pipeline it is derived from: γ·(y₀ − Y(x₀+Δ)) vs quote(Δ), exactly
// the identity the solver's analytic stable kernel relies on.
TEST(VenueOraclePropertyTest, StableCurveMatchesQuotePipeline) {
  Rng rng(kSeed + 2);
  for (std::size_t i = 0; i < 2'000; ++i) {
    const ExactStableHop hop = random_stable_hop(rng);
    const amm::StablePool pool = real_stable_pool_of(hop, PoolId{0});
    const amm::StableCurve curve = pool.curve();
    const double x0 = pool.reserve0();
    const double y0 = pool.reserve1();
    const double gamma = 1.0 - pool.fee();
    const double in =
        random_magnitude(rng, kStableReserveBits).to_double();

    const double kernel = gamma * std::max(0.0, y0 - curve.y(x0 + in));
    const double quoted = pool.quote(TokenId{0}, in).amount_out;
    // Same D, same Newton family: agreement is float-level, far inside
    // the integer oracle's bound.
    EXPECT_NEAR(kernel, quoted, 1e-9 * (x0 + y0) + 1e-9)
        << "case " << i << " A=" << hop.amplification;
  }
}

/// In-range concentrated state: log-uniform L, scaled √-price, an edge
/// strictly on the travel side, and a log-uniform input clamped into
/// the in-range budget (clamping piles mass near the edge — the region
/// the boundary fix cares about).
struct ConcentratedCase {
  ExactConcentratedHop hop;
  U256 amount;
  bool valid = false;
};

ConcentratedCase random_concentrated_case(Rng& rng, bool token0_in) {
  ConcentratedCase c;
  c.hop.token0_in = token0_in;
  c.hop.liquidity = random_magnitude(rng, 72);
  U256 sp = random_magnitude(rng, 48);
  if (sp < U256(2)) sp = U256(2);
  c.hop.sqrt_price = sp;
  const std::uint64_t sp_u = sp.to_u64();
  if (token0_in) {
    c.hop.sqrt_edge = U256(static_cast<std::uint64_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(sp_u - 1))));
  } else {
    const std::uint64_t hi_cap = std::uint64_t{1} << 48;
    if (sp_u + 1 >= hi_cap) return c;
    c.hop.sqrt_edge = U256(static_cast<std::uint64_t>(
        rng.uniform_int(static_cast<std::int64_t>(sp_u + 1),
                        static_cast<std::int64_t>(hi_cap))));
  }
  const U256 cap = concentrated_max_in(c.hop);
  if (cap.is_zero()) return c;
  const U256 overflow_cap = (U256(1) << 72) - U256(1);
  U256 amount = random_magnitude(rng, 72);
  if (amount > cap) amount = cap;
  if (amount > overflow_cap) amount = overflow_cap;
  c.amount = amount;
  c.valid = true;
  return c;
}

// 10k seeded in-range cases, both orientations: the ConcentratedPool
// double quote must land within the oracle's bound of the exact
// rational output.
TEST(VenueOraclePropertyTest,
     ConcentratedQuoteMatchesExactOverTenThousandTriples) {
  Rng rng(kSeed + 3);
  std::size_t checked = 0;
  std::size_t attempts = 0;
  while (checked < kTriples && attempts < 4 * kTriples) {
    const bool token0_in = (attempts++ % 2) == 0;
    const ConcentratedCase c = random_concentrated_case(rng, token0_in);
    if (!c.valid) continue;
    const ExactConcentratedResult exact =
        exact_concentrated_out(c.hop, c.amount);

    const amm::ConcentratedPool pool =
        real_concentrated_pool_of(c.hop, PoolId{0});
    const TokenId token_in = token0_in ? TokenId{0} : TokenId{1};
    const amm::SwapQuote quote = pool.quote(token_in, c.amount.to_double());
    ASSERT_TRUE(within_concentrated_bound(quote.amount_out, exact))
        << "case " << checked << " seed " << kSeed + 3 << ": model "
        << quote.amount_out << " vs exact " << exact.amount_out.to_decimal()
        << " (tolerance " << exact.tolerance << ", L "
        << c.hop.liquidity.to_decimal() << ", sp "
        << c.hop.sqrt_price.to_decimal() << ", edge "
        << c.hop.sqrt_edge.to_decimal() << ", token0_in " << token0_in
        << ", in " << c.amount.to_decimal() << ")";
    ++checked;
  }
  EXPECT_EQ(checked, kTriples);
}

// Inputs sized exactly to the in-range budget land on the tick
// boundary: the quote must emit the whole in-range output (the edge
// clamp), still within the oracle bound, with the right-limit marginal
// rate of zero.
TEST(VenueOraclePropertyTest, ConcentratedEdgeExactInputsStayBounded) {
  Rng rng(kSeed + 4);
  std::size_t checked = 0;
  std::size_t attempts = 0;
  while (checked < 2'000 && attempts < 8'000) {
    const bool token0_in = (attempts++ % 2) == 0;
    ConcentratedCase c = random_concentrated_case(rng, token0_in);
    if (!c.valid) continue;
    const U256 cap = concentrated_max_in(c.hop);
    const U256 overflow_cap = (U256(1) << 72) - U256(1);
    if (cap > overflow_cap) continue;
    c.amount = cap;
    const ExactConcentratedResult exact =
        exact_concentrated_out(c.hop, c.amount);

    const amm::ConcentratedPool pool =
        real_concentrated_pool_of(c.hop, PoolId{0});
    const TokenId token_in = token0_in ? TokenId{0} : TokenId{1};
    const amm::SwapQuote quote = pool.quote(token_in, c.amount.to_double());
    ASSERT_TRUE(within_concentrated_bound(quote.amount_out, exact))
        << "edge case " << checked << " seed " << kSeed + 4 << ": model "
        << quote.amount_out << " vs exact " << exact.amount_out.to_decimal()
        << " (tolerance " << exact.tolerance << ")";
    // The integer cap is the *floor* of the real in-range budget, so the
    // model may keep a sub-unit of range past it (worth up to one input
    // unit at the edge price — far above the oracle tolerance when the
    // cap is tiny). One more integer unit provably crosses the edge:
    // from cap+1 on, the output is flat and the slope zero.
    const amm::SwapQuote plus = pool.quote(token_in, (cap + U256(1)).to_double());
    const amm::SwapQuote beyond =
        pool.quote(token_in, c.amount.to_double() * 2.0 + 2.0);
    EXPECT_EQ(beyond.marginal_rate, 0.0) << "edge case " << checked;
    EXPECT_NEAR(beyond.amount_out, plus.amount_out,
                1e-9 * plus.amount_out + exact.tolerance)
        << "edge case " << checked << ": L " << c.hop.liquidity.to_decimal()
        << " sp " << c.hop.sqrt_price.to_decimal() << " edge "
        << c.hop.sqrt_edge.to_decimal() << " token0_in " << token0_in
        << " cap " << cap.to_decimal();
    ++checked;
  }
  EXPECT_EQ(checked, 2'000u);
}

}  // namespace
}  // namespace arb::testkit
