// Tests for stable_pool.hpp and generic_path.hpp.
#include <gtest/gtest.h>

#include "amm/generic_path.hpp"
#include "amm/stable_pool.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace arb::amm {
namespace {

const TokenId kUsdc{0};
const TokenId kUsdt{1};
const TokenId kWeth{2};

StablePool balanced_pool(double amplification = 100.0, double fee = 0.0) {
  return StablePool(PoolId{0}, kUsdc, kUsdt, 1'000'000.0, 1'000'000.0,
                    amplification, fee);
}

TEST(StablePoolTest, ConstructionValidation) {
  EXPECT_THROW(StablePool(PoolId{0}, kUsdc, kUsdc, 1.0, 1.0),
               PreconditionError);
  EXPECT_THROW(StablePool(PoolId{0}, kUsdc, kUsdt, 0.0, 1.0),
               PreconditionError);
  EXPECT_THROW(StablePool(PoolId{0}, kUsdc, kUsdt, 1.0, 1.0, -5.0),
               PreconditionError);
  EXPECT_THROW(StablePool(PoolId{0}, kUsdc, kUsdt, 1.0, 1.0, 10.0, 1.0),
               PreconditionError);
}

TEST(StablePoolTest, BalancedInvariantIsTotalSupply) {
  // At x = y the invariant D = 2x exactly (both terms balance).
  const StablePool pool = balanced_pool();
  EXPECT_NEAR(pool.invariant(), 2'000'000.0, 1e-3);
}

TEST(StablePoolTest, NearPegSwapIsNearOneToOne) {
  const StablePool pool = balanced_pool();
  const SwapQuote q = pool.quote(kUsdc, 10'000.0);
  // 1% of reserves at A=100 moves the price a few basis points at most.
  EXPECT_GT(q.amount_out, 9'990.0);
  EXPECT_LT(q.amount_out, 10'000.0);
}

TEST(StablePoolTest, MuchDeeperThanConstantProduct) {
  const StablePool stable = balanced_pool();
  const CpmmPool cpmm(PoolId{1}, kUsdc, kUsdt, 1'000'000.0, 1'000'000.0,
                      0.0);
  const double trade = 100'000.0;  // 10% of reserves
  const double stable_out = stable.quote(kUsdc, trade).amount_out;
  const double cpmm_out = cpmm.quote(kUsdc, trade).amount_out;
  EXPECT_GT(stable_out, cpmm_out);
  EXPECT_GT(stable_out, 99'000.0);   // still near peg
  EXPECT_LT(cpmm_out, 91'000.0);     // heavy slippage
}

TEST(StablePoolTest, AmplificationInterpolatesTowardConstantProduct) {
  // As A -> 0 the curve approaches constant product; slippage grows.
  const double trade = 200'000.0;
  double previous_out = 0.0;
  for (const double amplification : {0.2, 2.0, 20.0, 200.0}) {
    const StablePool pool = balanced_pool(amplification);
    const double out = pool.quote(kUsdc, trade).amount_out;
    EXPECT_GT(out, previous_out) << "A=" << amplification;
    previous_out = out;
  }
}

TEST(StablePoolTest, SwapFunctionMonotoneAndConcave) {
  const StablePool pool(PoolId{0}, kUsdc, kUsdt, 800'000.0, 1'200'000.0,
                        50.0);
  double previous_out = 0.0;
  double previous_slope = 1e18;
  for (double dx = 1'000.0; dx <= 1'024'000.0; dx *= 2.0) {
    const double out = pool.quote(kUsdc, dx).amount_out;
    EXPECT_GT(out, previous_out);
    const double slope = (out - previous_out) / (dx / 2.0 + 1e-12);
    EXPECT_LT(slope, previous_slope * (1.0 + 1e-9));
    previous_out = out;
    previous_slope = slope;
  }
}

TEST(StablePoolTest, FeeFreeSwapPreservesInvariant) {
  StablePool pool = balanced_pool(100.0, 0.0);
  const double d_before = pool.invariant();
  ASSERT_TRUE(pool.apply_swap(kUsdc, 50'000.0).ok());
  EXPECT_NEAR(pool.invariant(), d_before, d_before * 1e-9);
}

TEST(StablePoolTest, FeeGrowsInvariant) {
  StablePool pool = balanced_pool(100.0, 0.0004);
  const double d_before = pool.invariant();
  ASSERT_TRUE(pool.apply_swap(kUsdc, 100'000.0).ok());
  EXPECT_GT(pool.invariant(), d_before);
}

TEST(StablePoolTest, RoundTripLosesMoney) {
  StablePool pool = balanced_pool(100.0, 0.0004);
  const double out = pool.apply_swap(kUsdc, 10'000.0)->amount_out;
  const double back = pool.apply_swap(kUsdt, out)->amount_out;
  EXPECT_LT(back, 10'000.0);
}

TEST(StablePoolTest, SpotRateNearOneAtBalance) {
  const StablePool pool = balanced_pool(100.0, 0.0);
  EXPECT_NEAR(pool.spot_rate(kUsdc), 1.0, 1e-3);
}

TEST(StablePoolTest, ImbalancedPoolPricesTheScarceSideHigher) {
  const StablePool pool(PoolId{0}, kUsdc, kUsdt, 1'500'000.0, 500'000.0,
                        100.0, 0.0);
  // USDT is scarce: selling USDC (abundant) yields less than 1:1.
  EXPECT_LT(pool.spot_rate(kUsdc), 1.0);
  EXPECT_GT(pool.spot_rate(kUsdt), 1.0);
}

// --- generic path / optimizer ---------------------------------------------

TEST(GenericPathTest, MatchesMobiusOnAllCpmmLoop) {
  const CpmmPool xy(PoolId{0}, kUsdc, kUsdt, 100.0, 200.0);
  const CpmmPool yz(PoolId{1}, kUsdt, kWeth, 300.0, 200.0);
  const CpmmPool zx(PoolId{2}, kWeth, kUsdc, 200.0, 400.0);
  const PoolPath exact =
      *PoolPath::create({Hop{&xy, kUsdc}, Hop{&yz, kUsdt}, Hop{&zx, kWeth}});
  const GenericPath generic({swap_fn(xy, kUsdc), swap_fn(yz, kUsdt),
                             swap_fn(zx, kWeth)});
  for (double d : {1.0, 10.0, 27.0, 60.0}) {
    EXPECT_NEAR(generic.evaluate(d), exact.evaluate(d), 1e-9);
  }
  const OptimalTrade analytic = optimize_input_analytic(exact);
  const auto numeric = optimize_input_generic(generic).value();
  EXPECT_NEAR(numeric.input, analytic.input, 1e-4);
  EXPECT_NEAR(numeric.profit, analytic.profit, 1e-6 * analytic.profit);
}

TEST(GenericPathTest, UnprofitableChainReturnsZero) {
  const CpmmPool ab(PoolId{0}, kUsdc, kUsdt, 100.0, 100.0);
  const CpmmPool ba(PoolId{1}, kUsdt, kUsdc, 100.0, 100.0);
  const GenericPath path({swap_fn(ab, kUsdc), swap_fn(ba, kUsdt)});
  const auto trade = optimize_input_generic(path).value();
  EXPECT_DOUBLE_EQ(trade.input, 0.0);
  EXPECT_DOUBLE_EQ(trade.profit, 0.0);
}

TEST(GenericPathTest, MixedStableCpmmLoopOptimizes) {
  // USDC/USDT mispriced in the stable pool vs the two CPMM legs.
  const StablePool stable(PoolId{0}, kUsdc, kUsdt, 1'100'000.0, 900'000.0,
                          100.0, 0.0004);
  const CpmmPool usdt_weth(PoolId{1}, kUsdt, kWeth, 1'830'000.0, 1'000.0);
  const CpmmPool weth_usdc(PoolId{2}, kWeth, kUsdc, 1'000.0, 1'860'000.0);
  const GenericPath loop({swap_fn(stable, kUsdc),
                          swap_fn(usdt_weth, kUsdt),
                          swap_fn(weth_usdc, kWeth)});
  GenericOptimizeOptions options;
  options.initial_scale = 1'000.0;
  const auto trade = optimize_input_generic(loop, options).value();
  EXPECT_GT(trade.profit, 0.0);
  // Marginal return ~1 at the optimum (numeric check).
  const double h = trade.input * 1e-5;
  const double marginal =
      (loop.evaluate(trade.input + h) - loop.evaluate(trade.input - h)) /
      (2.0 * h);
  EXPECT_NEAR(marginal, 1.0, 1e-3);
}

TEST(GenericPathTest, HopInputsChain) {
  const CpmmPool xy(PoolId{0}, kUsdc, kUsdt, 100.0, 200.0);
  const CpmmPool yz(PoolId{1}, kUsdt, kWeth, 300.0, 200.0);
  const GenericPath path({swap_fn(xy, kUsdc), swap_fn(yz, kUsdt)});
  const auto inputs = path.hop_inputs(10.0);
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_DOUBLE_EQ(inputs[0], 10.0);
  EXPECT_DOUBLE_EQ(inputs[1], xy.quote(kUsdc, 10.0).amount_out);
}

TEST(GenericPathTest, ValidationRejectsBadInputs) {
  EXPECT_THROW(GenericPath({}), PreconditionError);
  EXPECT_THROW(GenericPath({SwapFn{}}), PreconditionError);
  const CpmmPool xy(PoolId{0}, kUsdc, kUsdt, 100.0, 200.0);
  EXPECT_THROW(swap_fn(xy, kWeth), PreconditionError);
  const GenericPath path({swap_fn(xy, kUsdc)});
  EXPECT_THROW((void)path.evaluate(-1.0), PreconditionError);
}

TEST(GenericPathPropertyTest, StableLoopProfitGrowsWithAmplification) {
  // Same mispricing, deeper curve (bigger A) → more extractable value.
  // At low A the stable pool behaves like CPMM and the loop may hold no
  // profit at all (hence >=); at high A it must be strictly profitable.
  double previous = -1.0;
  double last = 0.0;
  for (const double amplification : {1.0, 10.0, 100.0, 1000.0}) {
    const StablePool stable(PoolId{0}, kUsdc, kUsdt, 1'100'000.0,
                            900'000.0, amplification, 0.0004);
    const CpmmPool usdt_weth(PoolId{1}, kUsdt, kWeth, 1'830'000.0, 1'000.0);
    const CpmmPool weth_usdc(PoolId{2}, kWeth, kUsdc, 1'000.0,
                             1'860'000.0);
    const GenericPath loop({swap_fn(stable, kUsdc),
                            swap_fn(usdt_weth, kUsdt),
                            swap_fn(weth_usdc, kWeth)});
    GenericOptimizeOptions options;
    options.initial_scale = 1'000.0;
    const auto trade = optimize_input_generic(loop, options).value();
    EXPECT_GE(trade.profit, previous) << "A=" << amplification;
    previous = trade.profit;
    last = trade.profit;
  }
  EXPECT_GT(last, 0.0);
}

}  // namespace
}  // namespace arb::amm
