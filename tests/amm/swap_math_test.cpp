#include "amm/swap_math.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "math/derivative.hpp"

namespace arb::amm {
namespace {

TEST(SwapMathTest, ZeroInputZeroOutput) {
  EXPECT_DOUBLE_EQ(swap_out(100.0, 200.0, 0.997, 0.0), 0.0);
}

TEST(SwapMathTest, KnownFeeFreeSwap) {
  // (100 + 100)(200 - dy) = 100·200 → dy = 100.
  EXPECT_NEAR(swap_out(100.0, 200.0, 1.0, 100.0), 100.0, 1e-12);
}

TEST(SwapMathTest, FeeReducesOutput) {
  const double with_fee = swap_out(100.0, 200.0, 0.997, 50.0);
  const double without = swap_out(100.0, 200.0, 1.0, 50.0);
  EXPECT_LT(with_fee, without);
  EXPECT_GT(with_fee, 0.0);
}

TEST(SwapMathTest, OutputBoundedByReserve) {
  // Even an enormous trade cannot drain the output reserve.
  EXPECT_LT(swap_out(100.0, 200.0, 0.997, 1e15), 200.0);
}

TEST(SwapMathTest, MonotoneIncreasingAndConcave) {
  double prev_out = 0.0;
  double prev_slope = 1e18;
  for (double dx = 1.0; dx <= 512.0; dx *= 2.0) {
    const double out = swap_out(100.0, 200.0, 0.997, dx);
    EXPECT_GT(out, prev_out);
    const double slope = swap_out_derivative(100.0, 200.0, 0.997, dx);
    EXPECT_LT(slope, prev_slope);  // concavity: marginal rate decreases
    prev_out = out;
    prev_slope = slope;
  }
}

TEST(SwapMathTest, DerivativeMatchesNumeric) {
  for (double dx : {0.0, 1.0, 10.0, 250.0}) {
    const double analytic = swap_out_derivative(100.0, 200.0, 0.997, dx);
    const double numeric = math::central_derivative(
        [](double d) { return swap_out(100.0, 200.0, 0.997, d); }, dx + 1e-9);
    EXPECT_NEAR(analytic, numeric, 1e-5) << "dx=" << dx;
  }
}

TEST(SwapMathTest, DerivativeAtZeroIsMarginalPrice) {
  EXPECT_NEAR(swap_out_derivative(100.0, 200.0, 0.997, 0.0),
              relative_price(100.0, 200.0, 0.997), 1e-15);
}

TEST(SwapMathTest, DualEvaluationMatchesDoubleAndDerivative) {
  const math::Dual d = swap_out(math::Dual{100.0}, math::Dual{200.0}, 0.997,
                                math::Dual::variable(37.0));
  EXPECT_DOUBLE_EQ(d.value, swap_out(100.0, 200.0, 0.997, 37.0));
  EXPECT_NEAR(d.deriv, swap_out_derivative(100.0, 200.0, 0.997, 37.0), 1e-12);
}

TEST(SwapMathTest, InverseRoundTrip) {
  const double dy = swap_out(100.0, 200.0, 0.997, 42.0);
  auto dx = swap_in_for_out(100.0, 200.0, 0.997, dy);
  ASSERT_TRUE(dx.ok());
  EXPECT_NEAR(*dx, 42.0, 1e-9);
}

TEST(SwapMathTest, InverseRejectsDrainingReserve) {
  auto dx = swap_in_for_out(100.0, 200.0, 0.997, 200.0);
  ASSERT_FALSE(dx.ok());
  EXPECT_EQ(dx.error().code, ErrorCode::kCapacityExceeded);
}

TEST(SwapMathTest, RelativePriceMatchesPaperDefinition) {
  // p_ij = (1-λ)·r_j/r_i.
  EXPECT_DOUBLE_EQ(relative_price(100.0, 200.0, 0.997), 0.997 * 2.0);
}

TEST(SwapMathTest, PreconditionsThrow) {
  EXPECT_THROW((void)relative_price(0.0, 1.0, 0.997), PreconditionError);
  EXPECT_THROW(
      { auto r = swap_in_for_out(1.0, 1.0, 0.0, 0.5); (void)r; },
      PreconditionError);
}

// --- exact integer layer -------------------------------------------------

TEST(ExactSwapTest, MatchesUniswapReferenceValues) {
  // Reference from UniswapV2Library.getAmountOut:
  // amountIn=1e18, reserves (100e18, 200e18):
  //   out = 1e18·997·200e18 / (100e18·1000 + 1e18·997) = 1974316068794122597.
  const U256 e18{1000000000000000000ULL};
  const U256 out = get_amount_out_exact(e18, e18 * U256{100}, e18 * U256{200});
  EXPECT_EQ(out.to_decimal(), "1974316068794122597");
}

TEST(ExactSwapTest, ZeroInputZeroOutput) {
  EXPECT_TRUE(get_amount_out_exact(U256{0}, U256{100}, U256{200}).is_zero());
}

TEST(ExactSwapTest, OutputAlwaysBelowReserve) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const U256 in{rng.next_u64() >> 8};
    const U256 r_in{(rng.next_u64() >> 16) + 1};
    const U256 r_out{(rng.next_u64() >> 16) + 1};
    EXPECT_LT(get_amount_out_exact(in, r_in, r_out), r_out);
  }
}

TEST(ExactSwapTest, KNeverDecreases) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const U256 in{(rng.next_u64() >> 20) + 1};
    const U256 r_in{(rng.next_u64() >> 24) + 1000};
    const U256 r_out{(rng.next_u64() >> 24) + 1000};
    const U256 out = get_amount_out_exact(in, r_in, r_out);
    // (r_in + in)(r_out − out) >= r_in·r_out.
    EXPECT_GE((r_in + in) * (r_out - out), r_in * r_out);
  }
}

TEST(ExactSwapTest, DoubleModelTracksIntegerModel) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t in = (rng.next_u64() >> 24) + 1'000'000;
    const std::uint64_t r_in = (rng.next_u64() >> 20) + 100'000'000;
    const std::uint64_t r_out = (rng.next_u64() >> 20) + 100'000'000;
    const double exact =
        get_amount_out_exact(U256{in}, U256{r_in}, U256{r_out}).to_double();
    const double model = swap_out(static_cast<double>(r_in),
                                  static_cast<double>(r_out), 0.997,
                                  static_cast<double>(in));
    // Flooring plus double rounding: relative error stays tiny.
    EXPECT_NEAR(exact / model, 1.0, 1e-6);
  }
}

TEST(ExactSwapTest, AmountInRoundTripCoversRequestedOutput) {
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const U256 r_in{(rng.next_u64() >> 24) + 1'000'000};
    const U256 r_out{(rng.next_u64() >> 24) + 1'000'000};
    const U256 want = r_out / U256{(rng.next_u64() % 50) + 2};
    if (want.is_zero()) continue;
    auto need = get_amount_in_exact(want, r_in, r_out);
    ASSERT_TRUE(need.ok());
    // Paying the quoted input must yield at least the wanted output.
    EXPECT_GE(get_amount_out_exact(*need, r_in, r_out), want);
  }
}

TEST(ExactSwapTest, AmountInRejectsFullReserve) {
  EXPECT_FALSE(get_amount_in_exact(U256{200}, U256{100}, U256{200}).ok());
}

}  // namespace
}  // namespace arb::amm
