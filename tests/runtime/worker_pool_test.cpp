#include "runtime/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arb::runtime {
namespace {

/// Manual-reset gate used to hold workers busy deterministically.
class Gate {
 public:
  void open() {
    {
      std::lock_guard lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(WorkerPool::Config{.threads = 4, .queue_capacity = 64});
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.submit([&counter] { ++counter; }));
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(WorkerPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  WorkerPool pool(WorkerPool::Config{.threads = 2, .queue_capacity = 8});
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(WorkerPoolTest, RejectPolicyRefusesWhenFull) {
  WorkerPool pool(WorkerPool::Config{.threads = 1,
                                     .queue_capacity = 2,
                                     .overflow = WorkerPool::Overflow::kReject});
  Gate gate;
  std::atomic<int> ran{0};
  // Occupy the single worker...
  ASSERT_TRUE(pool.submit([&] {
    gate.wait();
    ++ran;
  }));
  // ...then fill the queue. The worker may still be picking up the first
  // task, so allow one extra submission before expecting rejection.
  int accepted = 0;
  for (int i = 0; i < 8; ++i) {
    if (pool.submit([&] {
          gate.wait();
          ++ran;
        })) {
      ++accepted;
    }
  }
  EXPECT_LE(accepted, 3);  // capacity 2 + possibly one already dequeued
  EXPECT_LT(accepted, 8);  // at least one rejection observed
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1 + accepted);
}

TEST(WorkerPoolTest, GracefulShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    WorkerPool pool(WorkerPool::Config{.threads = 2, .queue_capacity = 128});
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      }));
    }
    pool.shutdown();  // must run everything already accepted
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(WorkerPoolTest, SubmitAfterShutdownIsRejected) {
  WorkerPool pool(WorkerPool::Config{.threads = 1, .queue_capacity = 4});
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  pool.shutdown();  // idempotent
}

TEST(WorkerPoolTest, TaskGroupWaitsForItsOwnTasksOnly) {
  WorkerPool pool(WorkerPool::Config{.threads = 2, .queue_capacity = 64});
  Gate gate;
  std::atomic<int> foreign{0};
  std::atomic<int> mine{0};
  // A foreign gated task keeps one worker busy indefinitely...
  ASSERT_TRUE(pool.submit([&] {
    gate.wait();
    ++foreign;
  }));
  // ...while the group's own tasks run on the other worker. wait() must
  // return once *the group's* tasks are done, not the whole pool.
  TaskGroup group;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.submit([&mine] { ++mine; }, &group));
  }
  group.wait();
  EXPECT_EQ(mine.load(), 16);
  EXPECT_TRUE(group.idle());
  EXPECT_EQ(foreign.load(), 0);  // still gated: wait() did not join it
  gate.open();
  pool.wait_idle();
  EXPECT_EQ(foreign.load(), 1);
}

TEST(WorkerPoolTest, TaskGroupIsReusableAcrossRounds) {
  WorkerPool pool(WorkerPool::Config{.threads = 3, .queue_capacity = 64});
  TaskGroup group;
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.submit([&counter] { ++counter; }, &group));
    }
    group.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 8);
  }
}

TEST(WorkerPoolTest, SubmitManyRunsAllOrNothing) {
  WorkerPool pool(WorkerPool::Config{.threads = 2, .queue_capacity = 64});
  TaskGroup group;
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&counter] { ++counter; });
  }
  ASSERT_TRUE(pool.submit_many(tasks, &group));
  EXPECT_TRUE(tasks.empty());  // moved from on success
  group.wait();
  EXPECT_EQ(counter.load(), 32);

  // A batch that can never fit is refused outright and left untouched —
  // the caller's inline-fallback contract.
  std::vector<std::function<void()>> oversized(65, [&counter] { ++counter; });
  EXPECT_FALSE(pool.submit_many(oversized, &group));
  EXPECT_EQ(oversized.size(), 65u);
  EXPECT_TRUE(group.idle());

  pool.shutdown();
  std::vector<std::function<void()>> late(1, [&counter] { ++counter; });
  EXPECT_FALSE(pool.submit_many(late));
  EXPECT_EQ(late.size(), 1u);
}

TEST(WorkerPoolTest, ManyProducersOneCounter) {
  WorkerPool pool(WorkerPool::Config{.threads = 3, .queue_capacity = 32});
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 100; ++i) {
        // kBlock backpressure: submission may wait but never fails while
        // the pool is alive.
        ASSERT_TRUE(pool.submit([&counter] { ++counter; }));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 400);
}

}  // namespace
}  // namespace arb::runtime
