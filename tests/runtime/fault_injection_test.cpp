#include "runtime/fault.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "market/generator.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"
#include "runtime/validation.hpp"

namespace arb::runtime {
namespace {

constexpr std::uint64_t kFaultSeed = 424242;

market::MarketSnapshot test_snapshot() {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  return market::generate_snapshot(gen);
}

ServiceConfig service_config() {
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 2;
  return config;
}

// 250 blocks × 40 pools = a 10k-event stream.
ReplayStreamConfig stream_config() {
  ReplayStreamConfig config;
  config.blocks = 250;
  config.seed = 17;
  return config;
}

// With every rate at zero the injector must be a pure pass-through:
// the emitted sequence is bit-identical to the inner stream.
TEST(FaultInjectorTest, ZeroRateIsBitIdentical) {
  const auto snapshot = test_snapshot();
  ReplayStreamConfig config;
  config.blocks = 25;
  config.seed = 17;
  ReplayUpdateStream direct(snapshot, config);
  ReplayUpdateStream inner(snapshot, config);
  FaultInjector injector(inner, FaultProfile::uniform(0.0, kFaultSeed),
                         snapshot.graph.pool_count());
  std::size_t count = 0;
  while (true) {
    const auto expected = direct.next();
    const auto injected = injector.next();
    ASSERT_EQ(expected.has_value(), injected.has_value());
    if (!expected.has_value()) break;
    EXPECT_EQ(expected->pool, injected->pool);
    EXPECT_EQ(expected->reserve0, injected->reserve0);
    EXPECT_EQ(expected->reserve1, injected->reserve1);
    EXPECT_EQ(expected->liquidity, injected->liquidity);
    EXPECT_EQ(expected->price, injected->price);
    EXPECT_EQ(expected->sequence, injected->sequence);
    ++count;
  }
  EXPECT_EQ(count, 25u * snapshot.graph.pool_count());
  EXPECT_EQ(injector.counts().faults(), 0u);
  EXPECT_EQ(injector.counts().delivered, injector.counts().pulled);
}

// Every fault class fires at a 20% rate over 10k pulls, and the count
// ledger balances exactly: delivered = pulled − dropped + duplicated
// + stale replays (reorders and corruption do not change the count).
TEST(FaultInjectorTest, CountLedgerBalances) {
  const auto snapshot = test_snapshot();
  ReplayUpdateStream inner(snapshot, stream_config());
  FaultInjector injector(inner, FaultProfile::uniform(0.20, kFaultSeed),
                         snapshot.graph.pool_count());
  std::uint64_t delivered = 0;
  while (injector.next()) ++delivered;

  const FaultCounts& counts = injector.counts();
  EXPECT_EQ(counts.pulled, 250u * snapshot.graph.pool_count());
  EXPECT_EQ(counts.delivered, delivered);
  EXPECT_EQ(counts.delivered, counts.pulled - counts.dropped +
                                  counts.duplicated + counts.stale_replayed);
  EXPECT_GT(counts.corrupted, 0u);
  EXPECT_GT(counts.duplicated, 0u);
  EXPECT_GT(counts.dropped, 0u);
  EXPECT_GT(counts.reordered, 0u);
  EXPECT_GT(counts.stale_replayed, 0u);
}

// The headline chaos run: 10k-event streams at 1%, 5% and 20% fault
// rates. The service must survive every one (no error status, no
// crash), keep quarantine bounded, and keep its metric ledger coherent.
TEST(FaultInjectionTest, ServiceSurvivesTenThousandEventStreams) {
  const auto snapshot = test_snapshot();
  for (const double rate : {0.01, 0.05, 0.20}) {
    SCOPED_TRACE("fault rate " + std::to_string(rate) + " seed " +
                 std::to_string(kFaultSeed));
    auto service = ScannerService::start(snapshot, service_config()).value();
    ReplayUpdateStream inner(snapshot, stream_config());
    FaultInjector injector(inner, FaultProfile::uniform(rate, kFaultSeed),
                           snapshot.graph.pool_count());
    std::uint64_t published = 0;
    while (auto event = injector.next()) {
      ASSERT_TRUE(service->publish(*event));
      ++published;
    }
    service->drain();
    EXPECT_TRUE(service->status().ok()) << service->status().error().message;

    const MetricsSnapshot metrics = service->metrics();
    EXPECT_EQ(metrics.events_ingested, published);
    EXPECT_EQ(metrics.events_ingested, injector.counts().delivered);
    // Corruption is certain at these rates over 10k events, and every
    // corrupted payload must be rejected, never applied.
    EXPECT_GT(metrics.events_rejected_total(), 0u);
    EXPECT_LE(metrics.events_rejected_total(), metrics.events_ingested);
    // Quarantine stays bounded by the pool set and the live gauge agrees
    // with the service's own listing.
    const auto quarantined = service->quarantined_pools();
    EXPECT_EQ(metrics.pools_quarantined_now, quarantined.size());
    EXPECT_LE(quarantined.size(), snapshot.graph.pool_count());
    EXPECT_GE(metrics.pools_quarantined,
              metrics.pools_quarantined_now + metrics.resyncs);
    // Metrics parity: the per-kind split always sums to the total, with
    // quarantine-skipped loops counted in neither.
    EXPECT_EQ(metrics.loops_repriced,
              metrics.loops_repriced_cpmm + metrics.loops_repriced_mixed);
    // The ranked view stays servable throughout.
    (void)service->opportunities();
    service->stop();
  }
}

// The whole trajectory is a pure function of (stream seed, fault seed,
// profile): two identical runs must agree on every reject counter, the
// quarantine ledger, and the final ranked set.
TEST(FaultInjectionTest, RejectCountsAreDeterministicPerSeed) {
  const auto snapshot = test_snapshot();
  struct RunResult {
    std::array<std::uint64_t, kRejectReasonCount> rejected{};
    std::uint64_t entered = 0;
    std::uint64_t resyncs = 0;
    std::vector<PoolId> quarantined;
    std::vector<std::string> keys;
    std::vector<double> profits;
  };
  auto run = [&snapshot]() {
    auto service = ScannerService::start(snapshot, service_config()).value();
    ReplayUpdateStream inner(snapshot, stream_config());
    FaultInjector injector(inner, FaultProfile::uniform(0.05, kFaultSeed),
                           snapshot.graph.pool_count());
    while (auto event = injector.next()) {
      EXPECT_TRUE(service->publish(*event));
    }
    service->drain();
    EXPECT_TRUE(service->status().ok());
    RunResult result;
    const MetricsSnapshot metrics = service->metrics();
    result.rejected = metrics.events_rejected;
    result.entered = metrics.pools_quarantined;
    result.resyncs = metrics.resyncs;
    result.quarantined = service->quarantined_pools();
    for (const auto& opp : service->opportunities()) {
      result.keys.push_back(opp.cycle.rotation_key());
      result.profits.push_back(opp.net_profit_usd);
    }
    service->stop();
    return result;
  };
  const RunResult first = run();
  const RunResult second = run();
  for (std::size_t r = 0; r < kRejectReasonCount; ++r) {
    EXPECT_EQ(first.rejected[r], second.rejected[r])
        << to_string(static_cast<RejectReason>(r));
  }
  EXPECT_EQ(first.entered, second.entered);
  EXPECT_EQ(first.resyncs, second.resyncs);
  EXPECT_EQ(first.quarantined, second.quarantined);
  EXPECT_EQ(first.keys, second.keys);
  EXPECT_EQ(first.profits, second.profits);
}

// Heavy corruption quarantines pools; a clean tail of fresh events then
// releases every one of them (capped exponential backoff), so the
// steady state after the fault burst is a fully recovered scanner.
TEST(FaultInjectionTest, QuarantinedPoolsRecoverOnCleanData) {
  const auto snapshot = test_snapshot();
  auto service = ScannerService::start(snapshot, service_config()).value();

  FaultProfile profile;
  profile.seed = kFaultSeed;
  profile.corrupt_rate = 0.5;
  ReplayStreamConfig dirty_config;
  dirty_config.blocks = 50;
  dirty_config.seed = 17;
  ReplayUpdateStream dirty(snapshot, dirty_config);
  FaultInjector injector(dirty, profile, snapshot.graph.pool_count());
  while (auto event = injector.next()) {
    ASSERT_TRUE(service->publish(*event));
  }
  service->drain();
  ASSERT_TRUE(service->status().ok());
  const MetricsSnapshot after_burst = service->metrics();
  EXPECT_GT(after_burst.pools_quarantined, 0u)
      << "corruption burst should have quarantined at least one pool";

  // Clean tail: 300 fresh valid events per pool — beyond the 256-event
  // backoff cap, so every quarantined pool must be released.
  std::uint64_t sequence = 1u << 20;
  for (std::size_t round = 0; round < 300; ++round) {
    for (const amm::AnyPool& pool : snapshot.graph.pools()) {
      PoolUpdateEvent event;
      event.pool = pool.id();
      if (pool.kind() == amm::PoolKind::kConcentrated) {
        event.liquidity = pool.concentrated().liquidity();
        event.price = pool.concentrated().price();
      } else {
        event.reserve0 = pool.reserve0();
        event.reserve1 = pool.reserve1();
      }
      event.sequence = ++sequence;
      ASSERT_TRUE(service->publish(event));
    }
  }
  service->drain();
  EXPECT_TRUE(service->status().ok());
  const MetricsSnapshot metrics = service->metrics();
  EXPECT_EQ(metrics.pools_quarantined_now, 0u);
  EXPECT_TRUE(service->quarantined_pools().empty());
  // Every quarantine entry was eventually released as a resync.
  EXPECT_EQ(metrics.resyncs, metrics.pools_quarantined);
  service->stop();
}

}  // namespace
}  // namespace arb::runtime
