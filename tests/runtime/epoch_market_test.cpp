#include "runtime/epoch_market.hpp"

#include <gtest/gtest.h>

#include "tests/core/fixtures.hpp"

namespace arb::runtime {
namespace {

using core::testing::Section5Market;

market::MarketSnapshot section5_snapshot() {
  const Section5Market m;
  market::MarketSnapshot snapshot;
  snapshot.graph = m.graph;
  snapshot.prices = m.prices;
  return snapshot;
}

PoolUpdateEvent reserve_event(PoolId pool, double r0, double r1,
                              std::uint64_t sequence = 0) {
  PoolUpdateEvent event;
  event.pool = pool;
  event.reserve0 = r0;
  event.reserve1 = r1;
  event.sequence = sequence;
  return event;
}

TEST(EpochMarketTest, CommitSwapsBackToFront) {
  const Section5Market m;
  EpochMarket market(section5_snapshot());
  EXPECT_EQ(market.epoch(), 0u);
  const double original = market.front_view().reserve0(m.xy);

  market.begin_writes();
  ASSERT_TRUE(market.write(reserve_event(m.xy, 123.0, 456.0)).ok());
  // Swap-barrier ordering: until commit(), readers of the front buffer
  // see nothing of the staged epoch — graph and view alike.
  EXPECT_EQ(market.front().graph.pool(m.xy).reserve0(), original);
  EXPECT_EQ(market.front_view().reserve0(m.xy), original);
  // ... while the back buffer already holds it.
  EXPECT_EQ(market.back().graph.pool(m.xy).reserve0(), 123.0);
  EXPECT_EQ(market.back_view().reserve0(m.xy), 123.0);

  market.commit();
  EXPECT_EQ(market.epoch(), 1u);
  EXPECT_EQ(market.front().graph.pool(m.xy).reserve0(), 123.0);
  EXPECT_EQ(market.front_view().reserve0(m.xy), 123.0);
}

TEST(EpochMarketTest, StaleReadDetectionViaEpochPair) {
  const Section5Market m;
  EpochMarket market(section5_snapshot());

  // Committed buffers are always self-consistent: view epoch == graph
  // epoch. A mid-write back buffer is detectably stale — its graph epoch
  // has advanced past its view's.
  EXPECT_EQ(market.front_view().epoch(), market.front().graph.epoch());

  market.begin_writes();
  ASSERT_TRUE(market.write(reserve_event(m.xy, 150.0, 150.0)).ok());
  EXPECT_EQ(market.front_view().epoch(), market.front().graph.epoch());
  EXPECT_LT(market.back_view().epoch(), market.back().graph.epoch());

  market.commit();
  // The commit seals the freshly swapped front (view adopts graph epoch)
  // — and the new back is last epoch's front, still self-consistent.
  EXPECT_EQ(market.front_view().epoch(), market.front().graph.epoch());
  EXPECT_EQ(market.back_view().epoch(), market.back().graph.epoch());
}

TEST(EpochMarketTest, BeginWritesCatchesBackBufferUp) {
  const Section5Market m;
  EpochMarket market(section5_snapshot());

  market.begin_writes();
  ASSERT_TRUE(market.write(reserve_event(m.xy, 111.0, 222.0)).ok());
  ASSERT_TRUE(market.write(reserve_event(m.yz, 333.0, 444.0)).ok());
  market.commit();

  // The new back buffer is the previous front: it has not seen epoch 1's
  // writes yet. begin_writes() replays them (absolute state → exact),
  // landing the back buffer bit-identically on the front state.
  EXPECT_NE(market.back().graph.pool(m.xy).reserve0(), 111.0);
  market.begin_writes();
  EXPECT_EQ(market.back().graph.pool(m.xy).reserve0(), 111.0);
  EXPECT_EQ(market.back().graph.pool(m.xy).reserve1(), 222.0);
  EXPECT_EQ(market.back().graph.pool(m.yz).reserve0(), 333.0);
  EXPECT_EQ(market.back_view().reserve0(m.yz), 333.0);

  // Several epochs in a row stay consistent (journal swap each commit).
  ASSERT_TRUE(market.write(reserve_event(m.zx, 50.0, 60.0)).ok());
  market.commit();
  market.begin_writes();
  EXPECT_EQ(market.back().graph.pool(m.xy).reserve0(), 111.0);
  EXPECT_EQ(market.back().graph.pool(m.zx).reserve0(), 50.0);
  market.commit();
  EXPECT_EQ(market.epoch(), 3u);
  EXPECT_EQ(market.front().graph.pool(m.zx).reserve0(), 50.0);
}

TEST(EpochMarketTest, FrontReferencesStableAcrossBackWrites) {
  const Section5Market m;
  EpochMarket market(section5_snapshot());

  // The pointer a reader captured before the writes began (what a
  // repricing lane holds while the next epoch is staged) stays valid and
  // frozen for the whole write phase.
  const market::MarketView& frozen = market.front_view();
  const double r0 = frozen.reserve0(m.xy);
  const double* rel0 = frozen.rel_price0_data();
  const double rel0_xy = rel0[m.xy.value()];

  market.begin_writes();
  ASSERT_TRUE(market.write(reserve_event(m.xy, 9999.0, 1.0)).ok());
  EXPECT_EQ(frozen.reserve0(m.xy), r0);
  EXPECT_EQ(frozen.rel_price0_data()[m.xy.value()], rel0_xy);
}

TEST(EpochMarketTest, RollbackRestoresFrontState) {
  const Section5Market m;
  EpochMarket market(section5_snapshot());
  market.begin_writes();
  ASSERT_TRUE(market.write(reserve_event(m.xy, 77.0, 88.0)).ok());
  market.commit();

  // Stage a partial epoch, then abandon it.
  market.begin_writes();
  ASSERT_TRUE(market.write(reserve_event(m.yz, 1.0, 2.0)).ok());
  market.rollback();
  EXPECT_EQ(market.epoch(), 1u);
  EXPECT_EQ(market.back().graph.pool(m.yz).reserve0(),
            market.front().graph.pool(m.yz).reserve0());
  EXPECT_EQ(market.back().graph.pool(m.xy).reserve0(), 77.0);

  // The store keeps working after a rollback: the next epoch commits
  // cleanly and must not replay the discarded write.
  market.begin_writes();
  ASSERT_TRUE(market.write(reserve_event(m.zx, 10.0, 20.0)).ok());
  market.commit();
  EXPECT_EQ(market.epoch(), 2u);
  EXPECT_EQ(market.front().graph.pool(m.zx).reserve0(), 10.0);
  EXPECT_NE(market.front().graph.pool(m.yz).reserve0(), 1.0);
}

TEST(EpochMarketTest, WriteRejectsNonPositiveReserves) {
  const Section5Market m;
  EpochMarket market(section5_snapshot());
  market.begin_writes();
  EXPECT_FALSE(market.write(reserve_event(m.xy, -1.0, 5.0)).ok());
  market.rollback();
  EXPECT_EQ(market.front_view().epoch(), market.front().graph.epoch());
}

}  // namespace
}  // namespace arb::runtime
