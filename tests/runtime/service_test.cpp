#include "runtime/service.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/scanner.hpp"
#include "market/generator.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/routing_service.hpp"

namespace arb::runtime {
namespace {

market::MarketSnapshot test_snapshot() {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  return market::generate_snapshot(gen);
}

TEST(ScannerServiceTest, ConvergesToFullScanOfFinalState) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 2;
  config.max_batch = 16;
  auto service = ScannerService::start(snapshot, config).value();

  // Stream three blocks of updates; track the final absolute state on
  // the side.
  market::MarketSnapshot reference = snapshot;
  ReplayStreamConfig stream_config;
  stream_config.blocks = 3;
  stream_config.seed = 21;
  ReplayUpdateStream stream(snapshot, stream_config);
  std::size_t published = 0;
  while (auto event = stream.next()) {
    ASSERT_TRUE(reference.graph
                    .set_pool_reserves(event->pool, event->reserve0,
                                       event->reserve1)
                    .ok());
    ASSERT_TRUE(service->publish(*event));
    ++published;
  }
  EXPECT_EQ(published, 3u * snapshot.graph.pool_count());
  service->drain();
  ASSERT_TRUE(service->status().ok());

  // Regardless of how events were batched/coalesced on the way, the
  // final ranked set must equal a from-scratch scan of the final state.
  const auto full =
      core::scan_market(reference.graph, reference.prices, config.scanner)
          .value();
  const auto incremental = service->opportunities();
  ASSERT_EQ(full.size(), incremental.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].cycle.rotation_key(),
              incremental[i].cycle.rotation_key());
    EXPECT_EQ(full[i].net_profit_usd, incremental[i].net_profit_usd);
  }

  const MetricsSnapshot metrics = service->metrics();
  EXPECT_EQ(metrics.events_ingested, published);
  EXPECT_EQ(metrics.events_dropped, 0u);
  EXPECT_GE(metrics.batches, 1u);
  EXPECT_GT(metrics.loops_repriced, 0u);
  EXPECT_EQ(metrics.reprice_samples, metrics.batches);
  EXPECT_GT(metrics.reprice_p50_us, 0.0);
  EXPECT_LE(metrics.reprice_p50_us, metrics.reprice_max_us);
  service->stop();
}

TEST(ScannerServiceTest, DropNewestCountsDrops) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 1;
  config.queue_capacity = 2;
  config.max_batch = 2;
  config.backpressure = BackpressurePolicy::kDropNewest;
  auto service = ScannerService::start(snapshot, config).value();

  // Publish a burst far beyond capacity from this thread; some must be
  // accepted, and every publish must report its fate truthfully.
  const amm::AnyPool& pool = snapshot.graph.pool(PoolId{0});
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    PoolUpdateEvent event;
    event.pool = pool.id();
    event.reserve0 = pool.reserve0() * (1.0 + 1e-6 * static_cast<double>(i));
    event.reserve1 = pool.reserve1();
    event.sequence = i;
    if (service->publish(event)) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  service->drain();
  const MetricsSnapshot metrics = service->metrics();
  EXPECT_EQ(metrics.events_ingested, accepted);
  EXPECT_EQ(metrics.events_dropped, rejected);
  EXPECT_GT(accepted, 0u);
  service->stop();
}

TEST(ScannerServiceTest, DropOldestAcceptsEverything) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 1;
  config.queue_capacity = 2;
  config.max_batch = 2;
  config.backpressure = BackpressurePolicy::kDropOldest;
  auto service = ScannerService::start(snapshot, config).value();

  const amm::AnyPool& pool = snapshot.graph.pool(PoolId{0});
  for (std::uint64_t i = 0; i < 100; ++i) {
    PoolUpdateEvent event;
    event.pool = pool.id();
    event.reserve0 = pool.reserve0();
    event.reserve1 = pool.reserve1();
    event.sequence = i;
    EXPECT_TRUE(service->publish(event));
  }
  service->drain();
  const MetricsSnapshot metrics = service->metrics();
  EXPECT_EQ(metrics.events_ingested, 100u);
  service->stop();
}

TEST(ScannerServiceTest, PublishAfterStopIsRejected) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 1;
  auto service = ScannerService::start(snapshot, config).value();
  service->stop();
  service->stop();  // idempotent
  PoolUpdateEvent event;
  event.pool = PoolId{0};
  event.reserve0 = 1.0;
  event.reserve1 = 1.0;
  EXPECT_FALSE(service->publish(event));
}

// Default contract since the validation stage landed: a malformed event
// is rejected and counted, and the service keeps consuming.
TEST(ScannerServiceTest, RejectsBadEventAndContinues) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 1;
  auto service = ScannerService::start(snapshot, config).value();

  PoolUpdateEvent bad;
  bad.pool = PoolId{static_cast<PoolId::underlying_type>(
      snapshot.graph.pool_count() + 7)};
  bad.reserve0 = 1.0;
  bad.reserve1 = 1.0;
  ASSERT_TRUE(service->publish(bad));
  service->drain();
  EXPECT_TRUE(service->status().ok());
  const MetricsSnapshot metrics = service->metrics();
  EXPECT_EQ(metrics.events_rejected[static_cast<std::size_t>(
                RejectReason::kUnknownPool)],
            1u);

  // A good event after the bad one still lands.
  PoolUpdateEvent good;
  good.pool = PoolId{0};
  good.reserve0 = snapshot.graph.pool(PoolId{0}).reserve0() * 1.01;
  good.reserve1 = snapshot.graph.pool(PoolId{0}).reserve1();
  good.sequence = 1;
  ASSERT_TRUE(service->publish(good));
  service->drain();
  EXPECT_TRUE(service->status().ok());
  EXPECT_GE(service->metrics().batches, 1u);
  service->stop();
}

// validate=false restores the pre-validation fail-fast contract for
// trusted in-process streams: the first bad event stops the service.
TEST(ScannerServiceTest, StopsOnBadEventWithoutValidation) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 1;
  config.validate = false;
  auto service = ScannerService::start(snapshot, config).value();

  PoolUpdateEvent bad;
  bad.pool = PoolId{static_cast<PoolId::underlying_type>(
      snapshot.graph.pool_count() + 7)};
  bad.reserve0 = 1.0;
  bad.reserve1 = 1.0;
  ASSERT_TRUE(service->publish(bad));
  service->drain();
  EXPECT_FALSE(service->status().ok());
  service->stop();
}

TEST(ScannerServiceTest, ValidatesConfig) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.max_batch = 0;
  EXPECT_FALSE(ScannerService::start(snapshot, config).ok());
  // A zero-thread worker pool could never drain reprice tasks; the
  // service must reject it up front instead of tripping the pool's
  // precondition.
  ServiceConfig no_threads;
  no_threads.worker_threads = 0;
  EXPECT_FALSE(ScannerService::start(snapshot, no_threads).ok());
  // Depth 0 would mean "never run the stages" — rejected up front.
  ServiceConfig no_depth;
  no_depth.pipeline_depth = 0;
  EXPECT_FALSE(ScannerService::start(snapshot, no_depth).ok());
}

TEST(ScannerServiceTest, PipelineDepthsConvergeIdentically) {
  const auto snapshot = test_snapshot();

  // The same stream at depths 1 (serial), 2 (write/reprice overlap) and
  // 4 (plus prefetch) must land on identical ranked sets and identical
  // pipeline-independent counters — the service-level face of the
  // staged-epoch bit-identity contract.
  std::vector<std::vector<core::Opportunity>> results;
  std::vector<std::uint64_t> ingested;
  for (const std::size_t depth : {1, 2, 4}) {
    ServiceConfig config;
    config.scanner.loop_lengths = {3};
    config.worker_threads = 2;
    config.shards = 2;
    config.pipeline_depth = depth;
    config.max_batch = 8;
    auto service = ScannerService::start(snapshot, config).value();

    ReplayStreamConfig stream_config;
    stream_config.blocks = 3;
    stream_config.seed = 33;
    ReplayUpdateStream stream(snapshot, stream_config);
    while (auto event = stream.next()) {
      ASSERT_TRUE(service->publish(*event));
    }
    service->drain();
    ASSERT_TRUE(service->status().ok());

    const MetricsSnapshot metrics = service->metrics();
    EXPECT_EQ(metrics.pipeline_depth, depth);
    EXPECT_EQ(metrics.epoch_lag, 0u);  // drained == settled
    EXPECT_GE(metrics.batches, 1u);
    EXPECT_EQ(metrics.reprice_samples, metrics.batches);
    EXPECT_EQ(metrics.stage_write_samples, metrics.batches);
    EXPECT_GE(metrics.stage_validate_samples, metrics.batches);
    results.push_back(service->opportunities());
    ingested.push_back(metrics.events_ingested);
    service->stop();
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(ingested[0], ingested[i]);
    ASSERT_EQ(results[0].size(), results[i].size());
    for (std::size_t r = 0; r < results[0].size(); ++r) {
      EXPECT_EQ(results[0][r].cycle.rotation_key(),
                results[i][r].cycle.rotation_key());
      EXPECT_EQ(results[0][r].net_profit_usd, results[i][r].net_profit_usd);
    }
  }
}

TEST(ScannerServiceTest, WarmHitRateAboveEightyPercentInSteadyState) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.scanner.strategy = core::StrategyKind::kConvexOptimization;
  config.scanner.convex_warm_start = true;
  config.worker_threads = 2;
  config.shards = 2;
  // One block (40 pools, one event each) per batch. The test thread
  // floods the queue far faster than the consumer drains it, so the
  // default max_batch would fold several blocks into one epoch and the
  // universe would only be swept a handful of times — first-visit cold
  // solves would dominate the ratio regardless of how well slots
  // survive. Steady state means one reprice round per block.
  config.max_batch = 40;
  auto service = ScannerService::start(snapshot, config).value();

  // A long clean stream of small reserve moves: after the first visit
  // primes each slot, nearly every solve should resume warm. Keeping
  // warm slots across profitless visits is what holds the rate up —
  // loops flickering around the profitability boundary used to pay a
  // cold restart on every return.
  ReplayStreamConfig stream_config;
  stream_config.blocks = 25;
  stream_config.seed = 9;
  ReplayUpdateStream stream(snapshot, stream_config);
  while (auto event = stream.next()) {
    ASSERT_TRUE(service->publish(*event));
  }
  service->drain();
  ASSERT_TRUE(service->status().ok());

  const MetricsSnapshot metrics = service->metrics();
  const std::uint64_t solves = metrics.warm_hits + metrics.warm_misses;
  ASSERT_GT(solves, 0u);
  const double rate = static_cast<double>(metrics.warm_hits) /
                      static_cast<double>(solves);
  EXPECT_GE(rate, 0.80) << metrics.warm_hits << "/" << solves;
  service->stop();
}

TEST(ScannerServiceTest, MixedWarmHitRateAboveSixtyPercentInSteadyState) {
  // The mixed-venue analogue of the test above: stable and concentrated
  // hops run the same barrier fast path, so their cycles' warm slots
  // must survive streaming too. The bar is lower than the all-CPMM 80%
  // because mixed repricing occasionally detours through the generic
  // solver (tick-crossing containment), and those solves don't count as
  // hits — but on a clean in-range stream the barrier route dominates.
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  gen.stable_fraction = 0.25;
  gen.concentrated_fraction = 0.25;
  const auto snapshot = market::generate_snapshot(gen);
  ASSERT_FALSE(snapshot.graph.all_cpmm());

  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.scanner.strategy = core::StrategyKind::kConvexOptimization;
  config.scanner.convex_warm_start = true;
  config.worker_threads = 2;
  config.shards = 2;
  config.max_batch = 40;  // one block per batch (see the CPMM test)
  auto service = ScannerService::start(snapshot, config).value();

  ReplayStreamConfig stream_config;
  stream_config.blocks = 25;
  stream_config.seed = 9;
  ReplayUpdateStream stream(snapshot, stream_config);
  while (auto event = stream.next()) {
    ASSERT_TRUE(service->publish(*event));
  }
  service->drain();
  ASSERT_TRUE(service->status().ok());

  const MetricsSnapshot metrics = service->metrics();
  // The stream actually exercised mixed loops on the fast path.
  EXPECT_GT(metrics.loops_repriced_mixed, 0u);
  EXPECT_GT(metrics.loops_repriced_mixed_fast, 0u);
  const std::uint64_t solves = metrics.warm_hits + metrics.warm_misses;
  ASSERT_GT(solves, 0u);
  const double rate = static_cast<double>(metrics.warm_hits) /
                      static_cast<double>(solves);
  EXPECT_GE(rate, 0.60) << metrics.warm_hits << "/" << solves;
  // Clean stream, in-range moves: no slot ever goes valid → invalid
  // (quarantines and generic-route invalidation are fault/edge events).
  EXPECT_EQ(metrics.warm_invalidations, 0u);
  service->stop();
}

TEST(RoutingServiceTest, AnswersQueriesAndCountsMethods) {
  const auto snapshot = test_snapshot();
  ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = 2;
  auto service = ScannerService::start(snapshot, config).value();
  RoutingService routing(*service);

  // Generated markets are hub-and-spoke: token 0 is a hub, so 0 → 1 is
  // reachable within two hops.
  core::RouteQuery query;
  query.token_in = TokenId{0};
  query.token_out = TokenId{1};
  query.amount_in = 10.0;
  query.max_hops = 2;
  auto result = routing.best_execution(query);
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_GT(result->amount_out, 0.0);
  double spent = 0.0;
  for (const core::RoutedPath& path : result->paths) spent += path.input;
  EXPECT_NEAR(spent, query.amount_in, 1e-9 * query.amount_in);

  // Malformed query: counted as a failure, service unharmed.
  core::RouteQuery bad = query;
  bad.token_out = bad.token_in;
  EXPECT_FALSE(routing.best_execution(bad).ok());

  // Stream a block of updates, then route again on the settled state.
  ReplayStreamConfig stream_config;
  stream_config.blocks = 1;
  stream_config.seed = 7;
  ReplayUpdateStream stream(snapshot, stream_config);
  while (auto event = stream.next()) ASSERT_TRUE(service->publish(*event));
  service->drain();
  auto after = routing.best_execution(query);
  ASSERT_TRUE(after.ok()) << after.error().message;
  EXPECT_GT(after->amount_out, 0.0);

  const MetricsSnapshot metrics = service->metrics();
  EXPECT_EQ(metrics.routing_queries, 3u);
  EXPECT_EQ(metrics.routing_failures, 1u);
  EXPECT_EQ(metrics.routing_direct + metrics.routing_water_filling +
                metrics.routing_flow_solves,
            2u);
  EXPECT_EQ(metrics.routing_samples, 3u);
  EXPECT_GE(metrics.routing_max_us, metrics.routing_p50_us);
  service->stop();
}

TEST(ReplayStreamTest, DeterministicAndBounded) {
  const auto snapshot = test_snapshot();
  ReplayStreamConfig config;
  config.blocks = 2;
  config.seed = 5;
  ReplayUpdateStream a(snapshot, config);
  ReplayUpdateStream b(snapshot, config);
  std::size_t count = 0;
  while (true) {
    const auto ea = a.next();
    const auto eb = b.next();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea.has_value()) break;
    EXPECT_EQ(ea->pool, eb->pool);
    EXPECT_EQ(ea->reserve0, eb->reserve0);
    EXPECT_EQ(ea->reserve1, eb->reserve1);
    EXPECT_EQ(ea->sequence, eb->sequence);
    ++count;
  }
  EXPECT_EQ(count, 2u * snapshot.graph.pool_count());
}

TEST(ReplayStreamTest, SinglePoolMode) {
  const auto snapshot = test_snapshot();
  ReplayStreamConfig config;
  config.blocks = 10;
  config.pools_per_block = 1;
  ReplayUpdateStream stream(snapshot, config);
  std::size_t count = 0;
  while (auto event = stream.next()) {
    EXPECT_LT(event->pool.value(), snapshot.graph.pool_count());
    EXPECT_GT(event->reserve0, 0.0);
    EXPECT_GT(event->reserve1, 0.0);
    ++count;
  }
  EXPECT_EQ(count, 10u);
}

}  // namespace
}  // namespace arb::runtime
