#include "runtime/incremental_scanner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/scanner.hpp"
#include "market/generator.hpp"
#include "sim/replay.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::runtime {
namespace {

using core::testing::Section5Market;

/// Draws one pool-update event by shocking the reference graph's current
/// reserves (so consecutive shocks compound), applies it to the
/// reference, and returns it for the incremental scanner.
PoolUpdateEvent random_event(graph::TokenGraph& reference, Rng& rng,
                             double sigma, std::uint64_t sequence) {
  const auto pool_value = static_cast<PoolId::underlying_type>(rng.uniform_int(
      0, static_cast<std::int64_t>(reference.pool_count()) - 1));
  const PoolId id{pool_value};
  const auto [r0, r1] =
      sim::shocked_reserves(reference.pool(id), rng.normal(0.0, sigma));
  EXPECT_TRUE(reference.set_pool_reserves(id, r0, r1).ok());
  PoolUpdateEvent event;
  event.pool = id;
  event.reserve0 = r0;
  event.reserve1 = r1;
  event.sequence = sequence;
  return event;
}

/// Asserts the incremental scanner's ranked set is element-for-element
/// bit-identical to a from-scratch scan_market: same cycles in the same
/// order with exactly equal profits.
void expect_identical(const std::vector<core::Opportunity>& full,
                      const std::vector<core::Opportunity>& incremental) {
  ASSERT_EQ(full.size(), incremental.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].cycle.rotation_key(), incremental[i].cycle.rotation_key())
        << "rank " << i;
    // EXPECT_EQ on doubles is exact: both sides must run the same
    // arithmetic on the same reserves.
    EXPECT_EQ(full[i].net_profit_usd, incremental[i].net_profit_usd);
    EXPECT_EQ(full[i].outcome.monetized_usd,
              incremental[i].outcome.monetized_usd);
    EXPECT_EQ(full[i].outcome.input, incremental[i].outcome.input);
    EXPECT_EQ(full[i].outcome.output, incremental[i].outcome.output);
    EXPECT_EQ(full[i].plan.steps.size(), incremental[i].plan.steps.size());
    EXPECT_EQ(full[i].diagnostics.price_product,
              incremental[i].diagnostics.price_product);
  }
}

/// Runs `total_events` random updates in random-sized batches against
/// both scanners and compares after every batch.
void run_differential(const market::MarketSnapshot& snapshot,
                      const core::ScannerConfig& config,
                      std::size_t total_events, std::uint64_t seed,
                      WorkerPool* workers = nullptr) {
  auto scanner =
      IncrementalScanner::create(snapshot, config, workers).value();
  market::MarketSnapshot reference = snapshot;

  // Initial state must already agree.
  expect_identical(
      core::scan_market(reference.graph, reference.prices, config).value(),
      scanner.collect());

  Rng rng(seed);
  std::uint64_t sequence = 0;
  std::size_t emitted = 0;
  while (emitted < total_events) {
    const std::size_t batch_size = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform_int(1, 8)),
        total_events - emitted);
    std::vector<PoolUpdateEvent> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(random_event(reference.graph, rng, 0.02, sequence++));
    }
    emitted += batch_size;

    const ApplyReport report = scanner.apply(batch).value();
    EXPECT_EQ(report.events, batch_size);
    EXPECT_LE(report.unique_pools, batch_size);

    expect_identical(
        core::scan_market(reference.graph, reference.prices, config).value(),
        scanner.collect());
    if (::testing::Test::HasFailure()) {
      FAIL() << "diverged after " << emitted << " events";
    }
  }
}

market::MarketSnapshot test_snapshot() {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  return market::generate_snapshot(gen);
}

TEST(IncrementalScannerTest, DifferentialThousandEventsMaxMax) {
  core::ScannerConfig config;
  config.loop_lengths = {3};
  run_differential(test_snapshot(), config, 1000, /*seed=*/11);
}

TEST(IncrementalScannerTest, DifferentialMultiLengthWithGasAndThreshold) {
  core::ScannerConfig config;
  config.loop_lengths = {2, 3};
  config.gas = core::GasModel{};
  config.min_net_profit_usd = 1.0;
  run_differential(test_snapshot(), config, 300, /*seed=*/12);
}

TEST(IncrementalScannerTest, DifferentialConvexStrategy) {
  core::ScannerConfig config;
  config.loop_lengths = {3};
  config.strategy = core::StrategyKind::kConvexOptimization;
  run_differential(test_snapshot(), config, 60, /*seed=*/13);
}

TEST(IncrementalScannerTest, DifferentialWithWorkerPool) {
  WorkerPool workers(
      WorkerPool::Config{.threads = 3, .queue_capacity = 1024});
  core::ScannerConfig config;
  config.loop_lengths = {3};
  run_differential(test_snapshot(), config, 300, /*seed=*/14, &workers);
}

TEST(IncrementalScannerTest, CoalescesDuplicatePoolsInBatch) {
  const Section5Market m;
  market::MarketSnapshot snapshot;
  snapshot.graph = m.graph;
  snapshot.prices = m.prices;
  core::ScannerConfig config;
  config.loop_lengths = {3};
  auto scanner = IncrementalScanner::create(snapshot, config, nullptr).value();

  // Three updates, two to the same pool: only the last one per pool may
  // count, and the intermediate (absurd) state must never be observed.
  std::vector<PoolUpdateEvent> batch;
  batch.push_back({m.xy, 1.0, 1e9, 0});  // superseded
  batch.push_back({m.yz, 310.0, 205.0, 1});
  batch.push_back({m.xy, 105.0, 195.0, 2});
  const ApplyReport report = scanner.apply(batch).value();
  EXPECT_EQ(report.events, 3u);
  EXPECT_EQ(report.unique_pools, 2u);
  EXPECT_GT(report.repriced, 0u);

  market::MarketSnapshot reference = snapshot;
  ASSERT_TRUE(reference.graph.set_pool_reserves(m.yz, 310.0, 205.0).ok());
  ASSERT_TRUE(reference.graph.set_pool_reserves(m.xy, 105.0, 195.0).ok());
  expect_identical(
      core::scan_market(reference.graph, reference.prices, config).value(),
      scanner.collect());
}

TEST(IncrementalScannerTest, UntouchedPoolsAreNotRepriced) {
  const Section5Market m;
  market::MarketSnapshot snapshot;
  snapshot.graph = m.graph;
  snapshot.prices = m.prices;
  core::ScannerConfig config;
  config.loop_lengths = {3};
  auto scanner = IncrementalScanner::create(snapshot, config, nullptr).value();

  // The triangle has 2 universe cycles, both through every pool; a
  // single-pool update dirties exactly those 2.
  std::vector<PoolUpdateEvent> batch;
  batch.push_back({m.xy, 101.0, 199.0, 0});
  const ApplyReport report = scanner.apply(batch).value();
  EXPECT_EQ(report.repriced, 2u);
}

/// Drives the staged epoch API at pipeline depth 2 — begin_epoch(N+1)
/// while epoch N's reprice is still in flight — against the serial
/// apply() on a twin scanner, with identical random batches. The ranked
/// sets must stay bit-identical after every harvest: the frozen-front /
/// back-buffer protocol may never leak a half-written epoch into a lane.
TEST(IncrementalScannerTest, StagedPipelineMatchesSerialApply) {
  const market::MarketSnapshot snapshot = test_snapshot();
  core::ScannerConfig config;
  config.loop_lengths = {3};
  config.strategy = core::StrategyKind::kConvexOptimization;
  config.convex_warm_start = true;
  WorkerPool workers(WorkerPool::Config{.threads = 2, .queue_capacity = 1024});

  auto serial = IncrementalScanner::create(snapshot, config, nullptr).value();
  auto staged =
      IncrementalScanner::create(snapshot, config, &workers, 4).value();

  Rng rng(21);
  market::MarketSnapshot reference = snapshot;
  std::uint64_t sequence = 0;
  std::vector<std::vector<PoolUpdateEvent>> batches;
  for (int b = 0; b < 40; ++b) {
    std::vector<PoolUpdateEvent> batch;
    const auto batch_size = static_cast<std::size_t>(rng.uniform_int(1, 6));
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(random_event(reference.graph, rng, 0.02, sequence++));
    }
    batches.push_back(std::move(batch));
  }

  bool inflight = false;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    // Stage batch b while batch b-1's lanes are (potentially) running.
    ASSERT_TRUE(staged.begin_epoch(batches[b]).ok());
    if (inflight) {
      ASSERT_TRUE(staged.wait_reprice().ok());
      // Barrier crossed for b-1: both engines agree on its epoch.
      ASSERT_TRUE(serial.apply(batches[b - 1]).ok());
      expect_identical(serial.collect(), staged.collect());
    }
    staged.commit_epoch();
    staged.launch_reprice();
    EXPECT_TRUE(staged.reprice_in_flight());
    inflight = true;
  }
  ASSERT_TRUE(staged.wait_reprice().ok());
  ASSERT_TRUE(serial.apply(batches.back()).ok());
  expect_identical(serial.collect(), staged.collect());
}

TEST(IncrementalScannerTest, BeginEpochFailureRollsBackWholeBatch) {
  const Section5Market m;
  market::MarketSnapshot snapshot;
  snapshot.graph = m.graph;
  snapshot.prices = m.prices;
  core::ScannerConfig config;
  config.loop_lengths = {3};
  auto scanner = IncrementalScanner::create(snapshot, config, nullptr).value();
  const auto before = scanner.collect();

  // First event valid, second not: nothing of the batch may survive —
  // neither in the market buffers nor as dirty state.
  std::vector<PoolUpdateEvent> batch;
  batch.push_back({m.xy, 123.0, 456.0, 0});
  batch.push_back({m.yz, -5.0, 5.0, 1});
  EXPECT_FALSE(scanner.begin_epoch(batch).ok());
  EXPECT_EQ(scanner.snapshot().graph.pool(m.xy).reserve0(),
            snapshot.graph.pool(m.xy).reserve0());

  // The scanner keeps working: an empty apply leaves the ranked set
  // exactly as it was.
  const ApplyReport report =
      scanner.apply(std::vector<PoolUpdateEvent>{}).value();
  EXPECT_EQ(report.repriced, 0u);
  expect_identical(before, scanner.collect());
}

TEST(IncrementalScannerTest, RejectsBadEvents) {
  const Section5Market m;
  market::MarketSnapshot snapshot;
  snapshot.graph = m.graph;
  snapshot.prices = m.prices;
  core::ScannerConfig config;
  config.loop_lengths = {3};
  auto scanner = IncrementalScanner::create(snapshot, config, nullptr).value();

  std::vector<PoolUpdateEvent> unknown;
  unknown.push_back({PoolId{99}, 1.0, 1.0, 0});
  EXPECT_FALSE(scanner.apply(unknown).ok());

  std::vector<PoolUpdateEvent> negative;
  negative.push_back({m.xy, -1.0, 5.0, 0});
  EXPECT_FALSE(scanner.apply(negative).ok());
}

TEST(IncrementalScannerTest, CreateValidatesConfig) {
  const auto snapshot = test_snapshot();
  core::ScannerConfig empty;
  empty.loop_lengths = {};
  EXPECT_FALSE(IncrementalScanner::create(snapshot, empty).ok());
  core::ScannerConfig bad;
  bad.loop_lengths = {1};
  EXPECT_FALSE(IncrementalScanner::create(snapshot, bad).ok());
}

}  // namespace
}  // namespace arb::runtime
