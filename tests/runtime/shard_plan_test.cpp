// ShardPlan unit tests: the partition is deterministic, covers the
// universe exactly once, routes multi-shard pools to every owner, and
// the greedy balance pass keeps the load spread tight.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "market/generator.hpp"
#include "market/snapshot.hpp"
#include "runtime/pool_index.hpp"
#include "runtime/shard_plan.hpp"

namespace arb {
namespace {

runtime::PoolCycleIndex sample_index(std::size_t tokens, std::size_t pools) {
  market::GeneratorConfig gen;
  gen.token_count = tokens;
  gen.pool_count = pools;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  return runtime::PoolCycleIndex::build(snapshot.graph, {2, 3}).value();
}

TEST(ShardPlanTest, RejectsZeroShards) {
  const auto index = sample_index(12, 24);
  EXPECT_FALSE(runtime::ShardPlan::build(index, 0).ok());
}

TEST(ShardPlanTest, ExclusiveCoverage) {
  const auto index = sample_index(16, 36);
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    const auto plan = runtime::ShardPlan::build(index, k).value();
    ASSERT_EQ(plan.shard_count(), k);
    // Every universe cycle appears in exactly one shard, at the local
    // position shard_of/local_of claim.
    std::vector<std::size_t> seen(index.cycles().size(), 0);
    for (std::size_t s = 0; s < k; ++s) {
      const auto& cycles = plan.cycles_of(s);
      EXPECT_TRUE(std::is_sorted(cycles.begin(), cycles.end()));
      for (std::size_t local = 0; local < cycles.size(); ++local) {
        const std::uint32_t universe = cycles[local];
        ++seen[universe];
        EXPECT_EQ(plan.shard_of(universe), s);
        EXPECT_EQ(plan.local_of(universe), local);
      }
    }
    for (const std::size_t count : seen) EXPECT_EQ(count, 1u);
    // Loads are the per-shard pool fan-out.
    std::size_t total_load = 0;
    for (std::size_t s = 0; s < k; ++s) {
      std::size_t load = 0;
      for (const std::uint32_t universe : plan.cycles_of(s)) {
        load += index.cycles()[universe].length();
      }
      EXPECT_EQ(plan.loads()[s], load);
      total_load += load;
    }
    std::size_t universe_load = 0;
    for (const auto& cycle : index.cycles()) universe_load += cycle.length();
    EXPECT_EQ(total_load, universe_load);
  }
}

TEST(ShardPlanTest, PoolRoutingMatchesInvertedIndex) {
  const auto index = sample_index(16, 36);
  const auto plan = runtime::ShardPlan::build(index, 4).value();
  for (std::size_t p = 0; p < index.pool_count(); ++p) {
    const PoolId pool{static_cast<PoolId::underlying_type>(p)};
    // shards_of_pool = exactly the owners of the pool's cycles.
    std::vector<std::uint32_t> expected_shards;
    for (const std::uint32_t cycle : index.cycles_of(pool)) {
      expected_shards.push_back(plan.shard_of(cycle));
    }
    std::sort(expected_shards.begin(), expected_shards.end());
    expected_shards.erase(
        std::unique(expected_shards.begin(), expected_shards.end()),
        expected_shards.end());
    EXPECT_EQ(plan.shards_of_pool(pool), expected_shards);
    // The per-shard sub-index lists exactly the pool's local positions.
    for (std::size_t s = 0; s < plan.shard_count(); ++s) {
      std::vector<std::uint32_t> expected_locals;
      for (const std::uint32_t cycle : index.cycles_of(pool)) {
        if (plan.shard_of(cycle) == s) {
          expected_locals.push_back(plan.local_of(cycle));
        }
      }
      std::sort(expected_locals.begin(), expected_locals.end());
      EXPECT_EQ(plan.sub_index(s, pool), expected_locals);
    }
  }
}

TEST(ShardPlanTest, Deterministic) {
  const auto index = sample_index(16, 36);
  for (const std::size_t k : {2u, 4u, 8u}) {
    const auto a = runtime::ShardPlan::build(index, k).value();
    const auto b = runtime::ShardPlan::build(index, k).value();
    ASSERT_EQ(a.shard_count(), b.shard_count());
    for (std::size_t i = 0; i < index.cycles().size(); ++i) {
      EXPECT_EQ(a.shard_of(static_cast<std::uint32_t>(i)),
                b.shard_of(static_cast<std::uint32_t>(i)));
      EXPECT_EQ(a.local_of(static_cast<std::uint32_t>(i)),
                b.local_of(static_cast<std::uint32_t>(i)));
    }
    EXPECT_EQ(a.loads(), b.loads());
  }
}

TEST(ShardPlanTest, BalancePassKeepsSpreadTight) {
  const auto index = sample_index(20, 48);
  std::size_t universe_load = 0;
  for (const auto& cycle : index.cycles()) universe_load += cycle.length();
  for (const std::size_t k : {2u, 4u}) {
    const auto plan = runtime::ShardPlan::build(index, k).value();
    const auto [lo, hi] =
        std::minmax_element(plan.loads().begin(), plan.loads().end());
    // After the greedy pass no single move can narrow the spread, which
    // bounds max-min by the largest cycle length (3 hops here).
    EXPECT_LE(*hi - *lo, 3u);
    EXPECT_GE(plan.imbalance(), 1.0);
    EXPECT_LT(plan.imbalance(),
              1.0 + 3.0 * static_cast<double>(k) /
                        static_cast<double>(universe_load));
  }
}

TEST(ShardPlanTest, MoreShardsThanCycles) {
  market::GeneratorConfig gen;
  gen.token_count = 5;
  gen.pool_count = 7;
  gen.hub_count = 3;
  const market::MarketSnapshot snapshot = market::generate_snapshot(gen);
  const auto index =
      runtime::PoolCycleIndex::build(snapshot.graph, {3}).value();
  ASSERT_LT(index.cycles().size(), 64u);
  const auto plan = runtime::ShardPlan::build(index, 64).value();
  EXPECT_EQ(plan.shard_count(), 64u);
  std::size_t assigned = 0;
  for (std::size_t s = 0; s < 64; ++s) assigned += plan.cycles_of(s).size();
  EXPECT_EQ(assigned, index.cycles().size());
}

}  // namespace
}  // namespace arb
