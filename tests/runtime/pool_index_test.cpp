#include "runtime/pool_index.hpp"

#include <gtest/gtest.h>

#include <set>

#include "market/generator.hpp"
#include "tests/core/fixtures.hpp"

namespace arb::runtime {
namespace {

using core::testing::Section5Market;

TEST(PoolIndexTest, ValidationMirrorsScanMarket) {
  const Section5Market m;
  EXPECT_FALSE(PoolCycleIndex::build(m.graph, {}).ok());
  EXPECT_FALSE(PoolCycleIndex::build(m.graph, {1}).ok());
  EXPECT_TRUE(PoolCycleIndex::build(m.graph, {2, 3}).ok());
}

TEST(PoolIndexTest, TriangleUniverseAndFanout) {
  const Section5Market m;
  const auto index = PoolCycleIndex::build(m.graph, {3}).value();
  // Both orientations of the single triangle.
  ASSERT_EQ(index.cycles().size(), 2u);
  EXPECT_EQ(index.pool_count(), 3u);
  // Every pool is traversed by both orientations.
  for (const PoolId pool : {m.xy, m.yz, m.zx}) {
    EXPECT_EQ(index.cycles_of(pool).size(), 2u);
  }
  EXPECT_EQ(index.max_fanout(), 2u);
  EXPECT_DOUBLE_EQ(index.mean_fanout(), 2.0);
}

TEST(PoolIndexTest, RotationKeysMatchCycles) {
  const Section5Market m;
  const auto index = PoolCycleIndex::build(m.graph, {3}).value();
  ASSERT_EQ(index.rotation_keys().size(), index.cycles().size());
  for (std::size_t i = 0; i < index.cycles().size(); ++i) {
    EXPECT_EQ(index.rotation_keys()[i], index.cycles()[i].rotation_key());
  }
  // Distinct cycles have distinct keys (the ranking tie-break relies on
  // this).
  const std::set<std::string> keys(index.rotation_keys().begin(),
                                   index.rotation_keys().end());
  EXPECT_EQ(keys.size(), index.cycles().size());
}

TEST(PoolIndexTest, InvertedIndexIsExactOnGeneratedMarket) {
  market::GeneratorConfig gen;
  gen.token_count = 18;
  gen.pool_count = 40;
  const auto snapshot = market::generate_snapshot(gen);
  const auto index = PoolCycleIndex::build(snapshot.graph, {2, 3}).value();

  // Forward check: every cycle is listed under each of its pools.
  for (std::uint32_t i = 0; i < index.cycles().size(); ++i) {
    for (const PoolId pool : index.cycles()[i].pools()) {
      const auto& list = index.cycles_of(pool);
      EXPECT_TRUE(std::binary_search(list.begin(), list.end(), i))
          << "cycle " << i << " missing under pool " << pool.value();
    }
  }

  // Backward check: total fan-out equals the sum of cycle lengths
  // (each cycle traverses `length` distinct pools).
  std::size_t total_fanout = 0;
  for (std::size_t p = 0; p < index.pool_count(); ++p) {
    total_fanout +=
        index.cycles_of(PoolId{static_cast<PoolId::underlying_type>(p)})
            .size();
  }
  std::size_t total_length = 0;
  for (const auto& cycle : index.cycles()) total_length += cycle.length();
  EXPECT_EQ(total_fanout, total_length);
}

TEST(PoolIndexTest, UniverseMatchesScanMarketEnumerationOrder) {
  market::GeneratorConfig gen;
  gen.token_count = 12;
  gen.pool_count = 24;
  const auto snapshot = market::generate_snapshot(gen);
  const auto index = PoolCycleIndex::build(snapshot.graph, {3, 4}).value();

  std::vector<graph::Cycle> expected;
  for (const std::size_t length : {3u, 4u}) {
    auto cycles =
        graph::enumerate_fixed_length_cycles(snapshot.graph, length);
    expected.insert(expected.end(), cycles.begin(), cycles.end());
  }
  ASSERT_EQ(index.cycles().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(index.cycles()[i].rotation_key(), expected[i].rotation_key());
  }
}

}  // namespace
}  // namespace arb::runtime
