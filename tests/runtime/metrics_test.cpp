#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "common/csv.hpp"

namespace arb::runtime {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.samples(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.max_us(), 0.0);
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneAndBracketed) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.samples(), 1000u);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Power-of-two buckets: estimates are within a factor of 2.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 2048.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 1000.0);
}

TEST(LatencyHistogramTest, SubMicrosecondAndNegativeSamples) {
  LatencyHistogram h;
  h.record(0.25);   // lands in bucket 0
  h.record(-5.0);   // dropped
  EXPECT_EQ(h.samples(), 1u);
  // Bucket 0 spans [0, 2) µs, so the estimate stays below 2.
  EXPECT_LE(h.quantile(1.0), 2.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10'000; ++i) h.record(100.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.samples(), 40'000u);
}

TEST(RuntimeMetricsTest, SnapshotReflectsCounters) {
  RuntimeMetrics metrics;
  metrics.add_ingested(10);
  metrics.add_dropped(2);
  metrics.add_coalesced(3);
  metrics.add_batch();
  metrics.add_batch();
  metrics.add_repriced(7);
  metrics.set_queue_depth(5);
  metrics.record_reprice_latency(128.0);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.events_ingested, 10u);
  EXPECT_EQ(snap.events_dropped, 2u);
  EXPECT_EQ(snap.events_coalesced, 3u);
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_EQ(snap.loops_repriced, 7u);
  EXPECT_EQ(snap.queue_depth, 5u);
  EXPECT_EQ(snap.reprice_samples, 1u);
  EXPECT_GT(snap.reprice_p50_us, 0.0);
  EXPECT_DOUBLE_EQ(snap.reprice_max_us, 128.0);

  const std::string line = snap.summary();
  EXPECT_NE(line.find("ingested=10"), std::string::npos);
  EXPECT_NE(line.find("repriced=7"), std::string::npos);
}

TEST(RuntimeMetricsTest, SolverCountersFlowThroughSnapshotAndSummary) {
  RuntimeMetrics metrics;
  metrics.add_solver_iterations(100);
  metrics.add_solver_iterations(23);
  metrics.add_warm_hits(9);
  metrics.add_warm_misses(3);
  metrics.add_warm_misses(1);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.solver_iterations, 123u);
  EXPECT_EQ(snap.warm_hits, 9u);
  EXPECT_EQ(snap.warm_misses, 4u);

  const std::string line = snap.summary();
  EXPECT_NE(line.find("newton=123"), std::string::npos);
  // Rendered as hits over total solves.
  EXPECT_NE(line.find("warm=9/13"), std::string::npos);
}

TEST(RuntimeMetricsTest, SolverCountersRoundTripThroughCsv) {
  RuntimeMetrics metrics;
  metrics.add_solver_iterations(77);
  metrics.add_warm_hits(5);
  metrics.add_warm_misses(2);
  const std::vector<MetricsSnapshot> rows = {metrics.snapshot()};
  const std::string path =
      ::testing::TempDir() + "runtime_metrics_solver_test.csv";
  ASSERT_TRUE(write_metrics_csv(rows, path).ok());

  const auto table = read_csv_file(path).value();
  EXPECT_EQ(table.header, MetricsSnapshot::csv_columns());
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][table.column_index("solver_iterations")], "77");
  EXPECT_EQ(table.rows[0][table.column_index("warm_hits")], "5");
  EXPECT_EQ(table.rows[0][table.column_index("warm_misses")], "2");
  std::remove(path.c_str());
}

TEST(RuntimeMetricsTest, ShardCountersFlowThroughSnapshotAndCsv) {
  RuntimeMetrics metrics;
  metrics.set_shard_plan(4, 1.25);
  metrics.add_shard_repriced(0, 10);
  metrics.add_shard_repriced(1, 4);
  metrics.add_shard_repriced(2, 7);
  metrics.add_shard_repriced(1, 2);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.shards, 4u);
  EXPECT_DOUBLE_EQ(snap.shard_imbalance, 1.25);
  ASSERT_EQ(snap.shard_repriced.size(), 4u);
  EXPECT_EQ(snap.shard_repriced[0], 10u);
  EXPECT_EQ(snap.shard_repriced[1], 6u);
  EXPECT_EQ(snap.shard_repriced[2], 7u);
  EXPECT_EQ(snap.shard_repriced[3], 0u);
  EXPECT_EQ(snap.shard_repriced_min(), 0u);
  EXPECT_EQ(snap.shard_repriced_max(), 10u);
  EXPECT_NE(snap.summary().find("shards=4"), std::string::npos);

  const std::string path = ::testing::TempDir() + "runtime_metrics_shard.csv";
  ASSERT_TRUE(write_metrics_csv({snap}, path).ok());
  const auto table = read_csv_file(path).value();
  EXPECT_EQ(table.header, MetricsSnapshot::csv_columns());
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][table.column_index("shards")], "4");
  EXPECT_EQ(table.rows[0][table.column_index("shard_repriced_min")], "0");
  EXPECT_EQ(table.rows[0][table.column_index("shard_repriced_max")], "10");
  std::remove(path.c_str());
}

TEST(RuntimeMetricsTest, DefaultSnapshotHasSingleShardGauges) {
  RuntimeMetrics metrics;
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.shards, 1u);
  EXPECT_TRUE(snap.shard_repriced.empty());
  EXPECT_EQ(snap.shard_repriced_min(), 0u);
  EXPECT_EQ(snap.shard_repriced_max(), 0u);
}

TEST(RuntimeMetricsTest, PipelineGaugesFlowThroughSnapshotSummaryAndCsv) {
  RuntimeMetrics metrics;
  metrics.set_pipeline_depth(3);
  metrics.set_epoch_lag(2);
  metrics.add_warm_invalidations(4);
  metrics.add_warm_invalidations(1);
  metrics.set_worker_queue_depth(6);
  metrics.record_validate_latency(32.0);
  metrics.record_validate_latency(48.0);
  metrics.record_write_latency(16.0);

  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.pipeline_depth, 3u);
  EXPECT_EQ(snap.epoch_lag, 2u);
  EXPECT_EQ(snap.warm_invalidations, 5u);
  EXPECT_EQ(snap.worker_queue_depth, 6u);
  EXPECT_EQ(snap.stage_validate_samples, 2u);
  EXPECT_EQ(snap.stage_write_samples, 1u);
  EXPECT_GT(snap.stage_validate_p50_us, 0.0);
  EXPECT_LE(snap.stage_validate_p50_us, snap.stage_validate_p99_us);
  EXPECT_GT(snap.stage_write_p50_us, 0.0);

  const std::string line = snap.summary();
  EXPECT_NE(line.find("warm_inval=5"), std::string::npos);
  EXPECT_NE(line.find("pipeline{depth=3 lag=2 wq=6}"), std::string::npos);
  EXPECT_NE(line.find("stage_us{"), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "runtime_metrics_pipeline.csv";
  ASSERT_TRUE(write_metrics_csv({snap}, path).ok());
  const auto table = read_csv_file(path).value();
  EXPECT_EQ(table.header, MetricsSnapshot::csv_columns());
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][table.column_index("pipeline_depth")], "3");
  EXPECT_EQ(table.rows[0][table.column_index("epoch_lag")], "2");
  EXPECT_EQ(table.rows[0][table.column_index("warm_invalidations")], "5");
  EXPECT_EQ(table.rows[0][table.column_index("worker_queue_depth")], "6");
  std::remove(path.c_str());
}

TEST(RuntimeMetricsTest, DefaultSnapshotIsSerialDepthOne) {
  RuntimeMetrics metrics;
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.pipeline_depth, 1u);
  EXPECT_EQ(snap.epoch_lag, 0u);
  EXPECT_EQ(snap.warm_invalidations, 0u);
  EXPECT_EQ(snap.stage_validate_samples, 0u);
  EXPECT_EQ(snap.stage_write_samples, 0u);
}

TEST(RuntimeMetricsTest, CsvRoundTrip) {
  RuntimeMetrics metrics;
  metrics.add_ingested(42);
  metrics.record_reprice_latency(64.0);
  const std::vector<MetricsSnapshot> rows = {metrics.snapshot(),
                                             metrics.snapshot()};
  const std::string path = ::testing::TempDir() + "runtime_metrics_test.csv";
  ASSERT_TRUE(write_metrics_csv(rows, path).ok());

  const auto table = read_csv_file(path).value();
  EXPECT_EQ(table.header, MetricsSnapshot::csv_columns());
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][table.column_index("events_ingested")], "42");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace arb::runtime
