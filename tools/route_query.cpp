// Best-execution CLI: loads a market snapshot and answers one routing
// query — "swap AMOUNT of FROM into TO" — with the whole-graph router
// (path enumeration + water-filling / flow-form barrier dispatch).
//
// Usage: route_query [--snapshot DIR] [--max-hops N] [--max-paths N]
//                    FROM TO AMOUNT
// Defaults: the repo's data/sample_snapshot, 3 hops, 8 paths. FROM/TO
// are token symbols (first match wins). Prints the split table (per-path
// pools, input, output) plus the solve method and certificate.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "amm/any_pool.hpp"
#include "core/router.hpp"
#include "market/io.hpp"
#include "market/snapshot.hpp"

using namespace arb;

namespace {

[[noreturn]] void die(const std::string& what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what.c_str(), error.to_string().c_str());
  std::exit(1);
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: route_query [--snapshot DIR] [--max-hops N] "
               "[--max-paths N] FROM TO AMOUNT\n");
  std::exit(2);
}

const char* method_name(core::RouteMethod method) {
  switch (method) {
    case core::RouteMethod::kDirect: return "direct";
    case core::RouteMethod::kWaterFilling: return "water-filling";
    case core::RouteMethod::kFlowSolve: return "flow-solve";
  }
  return "unknown";
}

std::string describe_path(const graph::TokenGraph& graph, TokenId start,
                          const std::vector<PoolId>& pools) {
  std::string out = graph.symbol(start);
  TokenId cur = start;
  for (PoolId id : pools) {
    const amm::AnyPool& pool = graph.pool(id);
    cur = pool.other(cur);
    out += " -[#";
    out += std::to_string(id.value());
    out += "]-> ";
    out += graph.symbol(cur);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = std::string(ARB_REPO_DIR) + "/data/sample_snapshot";
  core::RouteQuery query;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--snapshot" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--max-hops" && i + 1 < argc) {
      query.max_hops = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--max-paths" && i + 1 < argc) {
      query.max_paths = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 3) usage();
  query.amount_in = std::atof(positional[2].c_str());

  auto loaded = market::load_snapshot(dir);
  if (!loaded) die("load_snapshot(" + dir + ")", loaded.error());
  const market::MarketSnapshot snapshot =
      loaded->filtered(market::PoolFilter{});
  const graph::TokenGraph& graph = snapshot.graph;

  auto from = graph.find_token(positional[0]);
  if (!from) die("find_token(" + positional[0] + ")", from.error());
  auto to = graph.find_token(positional[1]);
  if (!to) die("find_token(" + positional[1] + ")", to.error());
  query.token_in = *from;
  query.token_out = *to;

  std::printf("snapshot: %s — %zu tokens, %zu pools after filter\n",
              snapshot.label.c_str(), graph.token_count(),
              graph.pool_count());
  std::printf("query: %.6g %s -> %s (max %zu hops, %zu paths)\n",
              query.amount_in, graph.symbol(query.token_in).c_str(),
              graph.symbol(query.token_out).c_str(), query.max_hops,
              query.max_paths);

  auto result = core::route(graph, query);
  if (!result) die("route", result.error());

  std::printf("\nmethod: %s  (%d iterations", method_name(result->method),
              result->iterations);
  if (result->method == core::RouteMethod::kFlowSolve) {
    std::printf(", duality gap %.3g", result->duality_gap);
  }
  std::printf(")\n");
  std::printf("%-10s %-14s %-14s path\n", "", "input", "output");
  for (std::size_t p = 0; p < result->paths.size(); ++p) {
    const core::RoutedPath& path = result->paths[p];
    std::printf("path %-4zu  %-14.6g %-14.6g %s\n", p, path.input,
                path.output,
                describe_path(graph, query.token_in, path.pools).c_str());
  }
  std::printf("\ntotal %s out: %.10g\n",
              graph.symbol(query.token_out).c_str(), result->amount_out);
  return 0;
}
