// Renders every figure CSV the bench harness produced into a standalone
// SVG, approximating the paper's plots:
//
//   $ cd build/bench && for b in ./bench_*; do "$b"; done
//   $ ../tools/render_figures .
//
// Unknown/missing CSVs are skipped with a note; nothing fails.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/svg.hpp"

using namespace arb;

namespace {

struct SeriesSpec {
  std::string column;
  std::string label;
  bool line = true;
};

struct FigureSpec {
  std::string csv;
  std::string title;
  std::string x_column;
  std::string x_label;
  std::string y_label;
  std::vector<SeriesSpec> series;
  bool diagonal = false;
};

const std::vector<FigureSpec> kFigures = {
    {"fig1.csv", "Fig. 1 — profit vs input", "input_x", "input (token X)",
     "profit (token X)", {{"profit_x", "profit", true}}, false},
    {"fig2.csv", "Fig. 2 — per-start profit + MaxMax envelope", "P_x",
     "P_x (USD)", "monetized profit (USD)",
     {{"start_X_usd", "start X", true},
      {"start_Y_usd", "start Y", true},
      {"start_Z_usd", "start Z", true},
      {"maxmax_usd", "MaxMax", true}},
     false},
    {"fig3.csv", "Fig. 3 — Convex vs MaxMax across the P_x sweep", "P_x",
     "P_x (USD)", "monetized profit (USD)",
     {{"maxmax_usd", "MaxMax", true}, {"convex_usd", "Convex", true}},
     false},
    {"fig4.csv", "Fig. 4 — profit token composition", "P_x", "P_x (USD)",
     "net tokens retained",
     {{"net_X", "net X", true},
      {"net_Y", "net Y", true},
      {"net_Z", "net Z", true}},
     false},
    {"fig5.csv", "Fig. 5 — MaxMax vs traditional", "maxmax_usd",
     "MaxMax (USD)", "traditional (USD)",
     {{"traditional_usd", "traditional starts", false}}, true},
    {"fig6.csv", "Fig. 6 — MaxPrice vs MaxMax", "maxmax_usd",
     "MaxMax (USD)", "MaxPrice (USD)",
     {{"maxprice_usd", "MaxPrice", false}}, true},
    {"fig7.csv", "Fig. 7 — Convex vs MaxMax (empirical)", "convex_usd",
     "Convex (USD)", "MaxMax (USD)",
     {{"maxmax_usd", "MaxMax", false}}, true},
    {"fig8.csv", "Fig. 8 — per-token net profit", "convex_tokens",
     "Convex (tokens)", "MaxMax (tokens)",
     {{"maxmax_tokens", "MaxMax", false}}, true},
    {"fig9.csv", "Fig. 9 — Convex vs traditional (length 4)", "convex_usd",
     "Convex (USD)", "traditional (USD)",
     {{"traditional_usd", "traditional starts", false}}, true},
    {"fig10.csv", "Fig. 10 — Convex vs MaxMax (length 4)", "convex_usd",
     "Convex (USD)", "MaxMax (USD)",
     {{"maxmax_usd", "MaxMax", false}}, true},
    {"ablation_gas.csv", "Ablation — loops alive vs gas price",
     "gas_price_gwei", "gas price (gwei)", "loops profitable after gas",
     {{"maxmax_loops_alive", "MaxMax", true},
      {"convex_loops_alive", "Convex", true}},
     false},
    {"ablation_routing.csv", "Ablation — order splitting", "budget",
     "trade size", "output (token B)",
     {{"split_output", "water-filling split", true},
      {"single_output", "best single path", true}},
     false},
    {"ablation_stable.csv", "Ablation — StableSwap amplification",
     "amplification", "amplification A", "profit (USDC)",
     {{"profit_usdc", "stable-leg loop profit", true}}, false},
    {"seed_sweep.csv", "Robustness — loops per seed", "seed", "seed #",
     "length-3 arbitrage loops", {{"arb_loops", "loops", false}}, false},
};

int render_one(const std::filesystem::path& dir, const FigureSpec& spec) {
  const auto path = dir / spec.csv;
  if (!std::filesystem::exists(path)) {
    std::printf("  skip %-22s (not found — run the bench first)\n",
                spec.csv.c_str());
    return 0;
  }
  auto table = read_csv_file(path.string());
  if (!table.ok()) {
    std::fprintf(stderr, "  %s: %s\n", spec.csv.c_str(),
                 table.error().to_string().c_str());
    return 1;
  }
  SvgPlot plot(spec.title, spec.x_label, spec.y_label);
  const std::size_t x_col = table->column_index(spec.x_column);
  for (const SeriesSpec& series_spec : spec.series) {
    const std::size_t y_col = table->column_index(series_spec.column);
    SvgSeries series;
    series.name = series_spec.label;
    series.line = series_spec.line;
    for (const auto& row : table->rows) {
      auto x = parse_double(row[x_col]);
      auto y = parse_double(row[y_col]);
      if (x.ok() && y.ok()) series.points.emplace_back(*x, *y);
    }
    plot.add_series(std::move(series));
  }
  if (spec.diagonal) plot.add_diagonal();
  const std::string out =
      (dir / (spec.csv.substr(0, spec.csv.size() - 4) + ".svg")).string();
  if (auto written = plot.write(out); !written.ok()) {
    std::fprintf(stderr, "  %s: %s\n", out.c_str(),
                 written.error().to_string().c_str());
    return 1;
  }
  std::printf("  wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : ".";
  std::printf("rendering figure CSVs in %s:\n", dir.string().c_str());
  int failures = 0;
  for (const FigureSpec& spec : kFigures) {
    failures += render_one(dir, spec);
  }
  return failures == 0 ? 0 : 1;
}
