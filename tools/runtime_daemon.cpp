// Streaming-runtime driver: loads the committed sample snapshot, replays
// it as a pool-update stream through the ScannerService, and reports the
// ranked opportunity set plus the metrics layer's view of the run.
//
// Usage: runtime_daemon [--shards N] [--pipeline-depth N] [snapshot_dir]
//                       [blocks] [worker_threads] [fault_rate] [fault_seed]
// Defaults: the repo's data/sample_snapshot, 50 blocks, 4 threads, one
// shard, pipeline depth 2, no fault injection. --shards N partitions the
// cycle universe across N parallel shard scanners (the ranked output is
// bit-identical for any N). --pipeline-depth N overlaps epoch N+1's
// validate/write stages with epoch N's repricing (1 = fully serial;
// >2 additionally prefetches validated batches; output is bit-identical
// at any depth). A positive fault_rate wraps the stream in a seeded
// FaultInjector (uniform rate across all five fault classes) to exercise
// the validation/quarantine stage; the run then reports the injector's
// fault counts next to the service's rejection metrics.
// Writes runtime_metrics.csv (one metrics snapshot per block, including
// the per-stage latency and epoch-lag columns).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "amm/any_pool.hpp"
#include "market/io.hpp"
#include "market/snapshot.hpp"
#include "runtime/fault.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"
#include "runtime/validation.hpp"

using namespace arb;

namespace {

[[noreturn]] void die(const std::string& what, const Error& error) {
  std::fprintf(stderr, "%s: %s\n", what.c_str(), error.to_string().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  int shards_arg = 1;
  int depth_arg = 2;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--shards") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--shards needs a value\n");
        return 2;
      }
      shards_arg = std::atoi(argv[++i]);
      continue;
    }
    if (std::string(argv[i]) == "--pipeline-depth") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--pipeline-depth needs a value\n");
        return 2;
      }
      depth_arg = std::atoi(argv[++i]);
      continue;
    }
    positional.emplace_back(argv[i]);
  }
  const std::string dir =
      !positional.empty() ? positional[0]
                          : std::string(ARB_REPO_DIR) + "/data/sample_snapshot";
  const int blocks_arg =
      positional.size() > 1 ? std::atoi(positional[1].c_str()) : 50;
  const int threads_arg =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 4;
  const double fault_rate =
      positional.size() > 3 ? std::atof(positional[3].c_str()) : 0.0;
  const long long fault_seed =
      positional.size() > 4 ? std::atoll(positional[4].c_str()) : 1;
  if (blocks_arg <= 0 || threads_arg <= 0 || shards_arg <= 0 ||
      depth_arg <= 0 || fault_rate < 0.0 || fault_rate > 1.0) {
    std::fprintf(stderr,
                 "usage: runtime_daemon [--shards N] [--pipeline-depth N] "
                 "[snapshot_dir] [blocks] [worker_threads] [fault_rate] "
                 "[fault_seed]\nblocks, worker_threads, shards and "
                 "pipeline-depth must be positive integers, fault_rate in "
                 "[0, 1]\n");
    return 2;
  }
  const auto blocks = static_cast<std::size_t>(blocks_arg);
  const auto threads = static_cast<std::size_t>(threads_arg);

  auto loaded = market::load_snapshot(dir);
  if (!loaded) die("load_snapshot(" + dir + ")", loaded.error());
  const market::MarketSnapshot snapshot =
      loaded->filtered(market::PoolFilter{});
  std::size_t cpmm_pools = 0;
  std::size_t stable_pools = 0;
  std::size_t concentrated_pools = 0;
  for (const amm::AnyPool& pool : snapshot.graph.pools()) {
    switch (pool.kind()) {
      case amm::PoolKind::kCpmm: ++cpmm_pools; break;
      case amm::PoolKind::kStable: ++stable_pools; break;
      case amm::PoolKind::kConcentrated: ++concentrated_pools; break;
    }
  }
  std::printf("snapshot: %s — %zu tokens, %zu pools after filter "
              "(cpmm=%zu stable=%zu concentrated=%zu)\n",
              snapshot.label.c_str(), snapshot.graph.token_count(),
              snapshot.graph.pool_count(), cpmm_pools, stable_pools,
              concentrated_pools);

  runtime::ServiceConfig config;
  config.scanner.loop_lengths = {3};
  config.worker_threads = threads;
  config.shards = static_cast<std::size_t>(shards_arg);
  config.pipeline_depth = static_cast<std::size_t>(depth_arg);
  auto service = runtime::ScannerService::start(snapshot, config);
  if (!service) die("ScannerService::start", service.error());

  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = blocks;
  runtime::ReplayUpdateStream replay(snapshot, stream_config);

  std::unique_ptr<runtime::FaultInjector> injector;
  runtime::UpdateStream* stream = &replay;
  if (fault_rate > 0.0) {
    const auto profile = runtime::FaultProfile::uniform(
        fault_rate, static_cast<std::uint64_t>(fault_seed));
    injector = std::make_unique<runtime::FaultInjector>(
        replay, profile, snapshot.graph.pool_count());
    stream = injector.get();
    std::printf("fault injection: rate %.3f seed %llu on all classes\n",
                fault_rate, static_cast<unsigned long long>(profile.seed));
  }

  std::vector<runtime::MetricsSnapshot> per_block;
  std::size_t published = 0;
  std::size_t block_events = 0;
  while (auto event = stream->next()) {
    if ((*service)->publish(*event)) ++published;
    // One metrics snapshot per block (every pool shocked once per block;
    // under fault injection drops/duplicates make this approximate).
    if (++block_events >= snapshot.graph.pool_count()) {
      (*service)->drain();
      per_block.push_back((*service)->metrics());
      block_events = 0;
    }
  }
  (*service)->drain();
  if (Status status = (*service)->status(); !status.ok()) {
    die("service", status.error());
  }

  std::vector<core::Opportunity> opportunities;
  (*service)->opportunities_into(opportunities);
  const auto quarantined = (*service)->quarantined_pools();
  const runtime::MetricsSnapshot metrics = (*service)->metrics();
  (*service)->stop();

  std::printf("published %zu events over %zu blocks\n", published, blocks);
  std::printf("metrics: %s\n", metrics.summary().c_str());
  if (injector != nullptr) {
    const runtime::FaultCounts& counts = injector->counts();
    std::printf("injected faults: corrupted=%llu duplicated=%llu "
                "dropped=%llu reordered=%llu stale=%llu "
                "(pulled=%llu delivered=%llu)\n",
                static_cast<unsigned long long>(counts.corrupted),
                static_cast<unsigned long long>(counts.duplicated),
                static_cast<unsigned long long>(counts.dropped),
                static_cast<unsigned long long>(counts.reordered),
                static_cast<unsigned long long>(counts.stale_replayed),
                static_cast<unsigned long long>(counts.pulled),
                static_cast<unsigned long long>(counts.delivered));
  }
  if (metrics.events_rejected_total() > 0 || injector != nullptr) {
    std::printf("rejected by reason:");
    for (std::size_t r = 0; r < runtime::kRejectReasonCount; ++r) {
      std::printf(" %s=%llu",
                  runtime::to_string(static_cast<runtime::RejectReason>(r)),
                  static_cast<unsigned long long>(metrics.events_rejected[r]));
    }
    std::printf("\n");
    std::printf("quarantine: entered=%llu now=%zu resyncs=%llu "
                "solver_fallbacks=%llu\n",
                static_cast<unsigned long long>(metrics.pools_quarantined),
                quarantined.size(),
                static_cast<unsigned long long>(metrics.resyncs),
                static_cast<unsigned long long>(metrics.solver_fallbacks));
    for (const PoolId pool : quarantined) {
      std::printf("  quarantined: %s\n",
                  snapshot.graph.pool(pool).to_string().c_str());
    }
  }
  std::printf("repricing by venue kind:\n");
  std::printf("  cpmm : %llu loops, per-loop us p50=%.1f p99=%.1f max=%.1f\n",
              static_cast<unsigned long long>(metrics.loops_repriced_cpmm),
              metrics.cpmm_reprice_p50_us, metrics.cpmm_reprice_p99_us,
              metrics.cpmm_reprice_max_us);
  std::printf("  mixed: %llu loops, per-loop us p50=%.1f p99=%.1f max=%.1f\n",
              static_cast<unsigned long long>(metrics.loops_repriced_mixed),
              metrics.mixed_reprice_p50_us, metrics.mixed_reprice_p99_us,
              metrics.mixed_reprice_max_us);
  std::printf("pipeline: depth %llu, epoch lag %llu, worker queue %llu, "
              "warm invalidations %llu\n",
              static_cast<unsigned long long>(metrics.pipeline_depth),
              static_cast<unsigned long long>(metrics.epoch_lag),
              static_cast<unsigned long long>(metrics.worker_queue_depth),
              static_cast<unsigned long long>(metrics.warm_invalidations));
  std::printf("  validate stage: us p50=%.1f p99=%.1f (%llu batches)\n",
              metrics.stage_validate_p50_us, metrics.stage_validate_p99_us,
              static_cast<unsigned long long>(metrics.stage_validate_samples));
  std::printf("  write stage   : us p50=%.1f p99=%.1f (%llu epochs)\n",
              metrics.stage_write_p50_us, metrics.stage_write_p99_us,
              static_cast<unsigned long long>(metrics.stage_write_samples));
  std::printf("  reprice stage : us p50=%.1f p99=%.1f\n",
              metrics.reprice_p50_us, metrics.reprice_p99_us);
  std::printf("shard router: %llu shards, plan imbalance %.3f\n",
              static_cast<unsigned long long>(metrics.shards),
              metrics.shard_imbalance);
  for (std::size_t s = 0; s < metrics.shard_repriced.size(); ++s) {
    std::printf("  shard %zu: %llu loops repriced\n", s,
                static_cast<unsigned long long>(metrics.shard_repriced[s]));
  }
  std::printf("\ntop opportunities after final block:\n");
  const std::size_t top = std::min<std::size_t>(5, opportunities.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& op = opportunities[i];
    std::printf("  %2zu. $%9.2f  %s\n", i + 1, op.net_profit_usd,
                op.cycle.describe(snapshot.graph).c_str());
  }
  if (opportunities.empty()) std::printf("  (none)\n");

  if (Status status = runtime::write_metrics_csv(per_block,
                                                 "runtime_metrics.csv");
      !status.ok()) {
    die("write_metrics_csv", status.error());
  }
  std::printf("\nper-block metrics written to runtime_metrics.csv\n");
  return 0;
}
