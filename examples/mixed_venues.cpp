// Mixed-venue arbitrage: one loop crossing three different AMM designs —
// a Curve-style StableSwap pool (USDC/USDT), a Uniswap-V2 CPMM
// (USDT/WETH), and a V3-style concentrated position (WETH/USDC).
//
// The paper's theory is CPMM-only; this example shows the library's
// curve-agnostic layer carrying the same two questions — "how much should
// I trade?" (single-start optimum) and "in which tokens should I keep the
// profit?" (convex retention) — across heterogeneous venues.
//
//   $ ./mixed_venues

#include <cstdio>

#include "amm/concentrated_pool.hpp"
#include "amm/stable_pool.hpp"
#include "core/generic_convex.hpp"

using namespace arb;

int main() {
  const TokenId usdc{0};
  const TokenId usdt{1};
  const TokenId weth{2};

  // The three venues. USDC/USDT is mispriced on the stable pool; WETH is
  // slightly cheaper in USDC terms on the concentrated position than on
  // the CPMM — a realistic cross-venue misalignment.
  const amm::StablePool stable(PoolId{0}, usdc, usdt, 1'060'000.0,
                               940'000.0, 200.0, 0.0004);
  const amm::CpmmPool cpmm(PoolId{1}, usdt, weth, 1'830'000.0, 1'000.0,
                           0.003);
  const auto concentrated =
      amm::ConcentratedPool::from_reserves(PoolId{2}, weth, usdc, 800.0,
                                           1'530'000.0, 1'500.0, 2'300.0,
                                           0.0005)
          .value();

  std::printf("venues:\n");
  std::printf("  StableSwap  USDC/USDT  reserves %.0f / %.0f  (A = %.0f)\n",
              stable.reserve0(), stable.reserve1(), stable.amplification());
  std::printf("  CPMM        USDT/WETH  reserves %.0f / %.0f\n",
              cpmm.reserve0(), cpmm.reserve1());
  std::printf("  V3 position WETH/USDC  reserves %.1f / %.0f  (price %.1f "
              "in [1400, 2400])\n\n",
              concentrated.reserve0(), concentrated.reserve1(),
              concentrated.price());

  // Loop: USDC -> USDT (stable) -> WETH (cpmm) -> USDC (concentrated).
  const std::vector<core::GenericHop> hops{
      core::GenericHop{amm::swap_fn(stable, usdc), 1.0},
      core::GenericHop{amm::swap_fn(cpmm, usdt), 1.0},
      core::GenericHop{amm::swap_fn(concentrated, weth), 1825.0},
  };

  // Question 1: the best single-start trade per rotation (MaxMax).
  const char* names[] = {"USDC", "USDT", "WETH"};
  double max_max = 0.0;
  for (std::size_t anchor = 0; anchor < 3; ++anchor) {
    std::vector<amm::SwapFn> fns;
    for (std::size_t i = 0; i < 3; ++i) {
      fns.push_back(hops[(anchor + i) % 3].swap);
    }
    const amm::GenericPath path{std::move(fns)};
    amm::GenericOptimizeOptions options;
    options.initial_scale = 1'000.0;
    const auto trade = amm::optimize_input_generic(path, options).value();
    const double usd = hops[anchor].price_in * trade.profit;
    std::printf("start %-4s: input %10.2f, profit %10.4f %-4s = $%8.2f\n",
                names[anchor], trade.input, trade.profit, names[anchor],
                usd);
    max_max = std::max(max_max, usd);
  }

  // Question 2: convex retention across the mixed loop.
  core::GenericConvexOptions options;
  options.initial_scale = 1'000.0;
  const auto convex = core::solve_generic_convex(hops, options).value();
  std::printf("\nMaxMax  (best single start): $%8.2f\n", max_max);
  std::printf("Convex  (retained profit)  : $%8.2f\n", convex.profit_usd);
  for (std::size_t j = 0; j < 3; ++j) {
    const std::size_t prev = (j + 2) % 3;
    const double retained = convex.outputs[prev] - convex.inputs[j];
    if (retained > 1e-6) {
      std::printf("  retain %10.4f %s\n", retained, names[j]);
    }
  }
  return 0;
}
