// Snapshot tool: generate, persist, reload and inspect market snapshots.
//
//   $ ./snapshot_tool gen <dir> [seed] [tokens] [pools] [stable_frac]
//                     [concentrated_frac]                 # generate + save
//   $ ./snapshot_tool info <dir>                          # inspect a saved one
//   $ ./snapshot_tool study <dir> <out.csv> [length]      # run + export study
//
// The CSV format (tokens.csv / pools.csv) is the library's interchange
// format; a user with real on-chain data reproduces the paper's Section
// VI on it by dropping their snapshot into the same files.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/study_io.hpp"
#include "graph/cycle_enumeration.hpp"
#include "market/generator.hpp"
#include "market/io.hpp"

using namespace arb;

namespace {

int cmd_gen(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: snapshot_tool gen <dir> [seed] [tokens] [pools] "
                 "[stable_frac] [concentrated_frac]\n");
    return 2;
  }
  market::GeneratorConfig config;
  if (argc > 3) config.seed = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) config.token_count = std::strtoul(argv[4], nullptr, 10);
  if (argc > 5) config.pool_count = std::strtoul(argv[5], nullptr, 10);
  if (argc > 6) config.stable_fraction = std::strtod(argv[6], nullptr);
  if (argc > 7) config.concentrated_fraction = std::strtod(argv[7], nullptr);
  const market::MarketSnapshot snapshot = market::generate_snapshot(config);
  auto saved = market::save_snapshot(snapshot, argv[2]);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.error().to_string().c_str());
    return 1;
  }
  std::printf("wrote %zu tokens / %zu pools to %s/{tokens,pools}.csv\n",
              snapshot.graph.token_count(), snapshot.graph.pool_count(),
              argv[2]);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: snapshot_tool info <dir>\n");
    return 2;
  }
  auto snapshot = market::load_snapshot(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 snapshot.error().to_string().c_str());
    return 1;
  }
  const auto filtered = snapshot->filtered(market::PoolFilter{});
  std::printf("snapshot: %zu tokens, %zu pools (filtered: %zu / %zu)\n",
              snapshot->graph.token_count(), snapshot->graph.pool_count(),
              filtered.graph.token_count(), filtered.graph.pool_count());
  double tvl = 0.0;
  std::size_t kinds[3] = {0, 0, 0};
  for (const amm::AnyPool& pool : snapshot->graph.pools()) {
    tvl += snapshot->pool_tvl_usd(pool.id());
    ++kinds[static_cast<std::size_t>(pool.kind())];
  }
  std::printf("total TVL: $%.0f\n", tvl);
  std::printf("venue kinds: cpmm=%zu stable=%zu concentrated=%zu\n",
              kinds[0], kinds[1], kinds[2]);
  for (std::size_t len : {2, 3, 4}) {
    const auto loops = graph::filter_arbitrage(
        filtered.graph,
        graph::enumerate_fixed_length_cycles(filtered.graph, len));
    std::printf("length-%zu arbitrage loops: %zu\n", len, loops.size());
  }
  return 0;
}

int cmd_study(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: snapshot_tool study <dir> <out.csv> [length]\n");
    return 2;
  }
  const std::size_t length =
      argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 3;
  auto snapshot = market::load_snapshot(argv[2]);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 snapshot.error().to_string().c_str());
    return 1;
  }
  auto study = core::run_market_study(*snapshot, length);
  if (!study.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 study.error().to_string().c_str());
    return 1;
  }
  auto written = core::write_study_csv(*study, argv[3]);
  if (!written.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 written.error().to_string().c_str());
    return 1;
  }
  const core::StudySummary summary = core::summarize_study(*study);
  std::printf("%zu loops -> %s\n", study->loops.size(), argv[3]);
  std::printf("MaxPrice: total $%.2f, matches MaxMax on %zu/%zu loops\n",
              summary.max_price.total_usd, summary.max_price.matches_max_max,
              summary.max_price.loops);
  std::printf("MaxMax:   total $%.2f\n", summary.max_max.total_usd);
  std::printf("Convex:   total $%.2f, >= MaxMax on %zu/%zu loops\n",
              summary.convex.total_usd, summary.convex.matches_max_max,
              summary.convex.loops);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: snapshot_tool gen|info|study ...\n");
    return 2;
  }
  if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return cmd_info(argc, argv);
  if (std::strcmp(argv[1], "study") == 0) return cmd_study(argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
  return 2;
}
