// Quickstart: the 60-second tour of the library.
//
// Build a tiny market, detect the arbitrage loop, run all four of the
// paper's strategies on it, and execute the winning plan atomically.
//
//   $ ./quickstart

#include <cstdio>

#include "core/comparison.hpp"
#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"
#include "sim/engine.hpp"

using namespace arb;

int main() {
  // 1. A market: tokens are nodes, constant-product pools are edges.
  graph::TokenGraph g;
  const TokenId weth = g.add_token("WETH");
  const TokenId usdc = g.add_token("USDC");
  const TokenId dai = g.add_token("DAI");
  g.add_pool(weth, usdc, 1'000.0, 1'830'000.0);  // 1 WETH ~ 1830 USDC
  g.add_pool(usdc, dai, 2'000'000.0, 1'990'000.0);
  g.add_pool(dai, weth, 1'850'000.0, 1'040.0);  // WETH ~2.9% cheap here

  // 2. CEX prices for monetization (the paper's key ingredient).
  market::CexPriceFeed cex;
  cex.set_price(weth, 1825.0);
  cex.set_price(usdc, 1.0);
  cex.set_price(dai, 0.999);

  // 3. Detect arbitrage loops: price product > 1 around a cycle.
  const auto loops =
      graph::filter_arbitrage(g, graph::enumerate_fixed_length_cycles(g, 3));
  std::printf("arbitrage loops found: %zu\n", loops.size());
  if (loops.empty()) return 0;
  const graph::Cycle& loop = loops.front();
  std::printf("loop: %s (price product %.5f)\n\n", loop.describe(g).c_str(),
              loop.price_product(g));

  // 4. The paper's four strategies.
  const auto comparisons =
      core::compare_strategies(g, cex, {loop}).value();
  const core::LoopComparison& row = comparisons.front();
  for (const core::StrategyOutcome& t : row.traditional) {
    std::printf("Traditional from %-5s: $%8.2f\n",
                g.symbol(t.start_token).c_str(), t.monetized_usd);
  }
  std::printf("MaxPrice  (from %-5s): $%8.2f\n",
              g.symbol(row.max_price.start_token).c_str(),
              row.max_price.monetized_usd);
  std::printf("MaxMax    (from %-5s): $%8.2f\n",
              g.symbol(row.max_max.start_token).c_str(),
              row.max_max.monetized_usd);
  std::printf("ConvexOptimization   : $%8.2f\n\n",
              row.convex.outcome.monetized_usd);

  // 5. Turn the best solution into an executable plan and run it.
  const auto plan = core::plan_from_convex(g, loop, row.convex).value();
  std::printf("plan:\n%s\n\n", plan.describe(g).c_str());
  const auto report = sim::ExecutionEngine().execute(g, cex, plan);
  if (!report.ok()) {
    std::printf("execution failed: %s\n", report.error().to_string().c_str());
    return 1;
  }
  std::printf("executed %zu swaps atomically; realized $%.2f "
              "(promised $%.2f)\n",
              report->steps_executed, report->realized_usd,
              plan.expected_monetized_usd);

  // 6. The opportunity is gone afterwards.
  std::printf("loop price product after execution: %.6f (no residual "
              "arbitrage)\n",
              loop.price_product(g));
  return 0;
}
