// MEV competition: three bots — MaxPrice, MaxMax, Convex — watch the
// same market. Each block (GBM fundamentals, lagging pools), every bot
// plans its best bundle; the highest-value bundle wins the block and
// executes. The paper's profit ordering becomes a competitive payoff:
// the MaxPrice bot systematically loses the blocks where the start
// token matters.
//
//   $ ./mev_competition [blocks] [seed]

#include <cstdio>
#include <cstdlib>

#include "market/generator.hpp"
#include "sim/competition.hpp"

using namespace arb;

int main(int argc, char** argv) {
  const std::size_t blocks =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  market::GeneratorConfig market_config;
  market_config.token_count = 20;
  market_config.pool_count = 46;
  market_config.seed = seed;
  market_config.cex_price_noise_sigma = 0.02;  // MaxPrice picks go wrong
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market_config);

  const std::vector<sim::BotSpec> bots{
      sim::BotSpec{"maxprice", core::StrategyKind::kMaxPrice, {}},
      sim::BotSpec{"maxmax", core::StrategyKind::kMaxMax, {}},
      sim::BotSpec{"convex", core::StrategyKind::kConvexOptimization, {}},
  };

  sim::CompetitionConfig config;
  config.blocks = blocks;
  config.seed = seed;
  config.dynamics.volatility = 0.01;

  std::printf("market: %zu tokens / %zu pools | %zu blocks | 3 bots\n\n",
              snapshot.graph.token_count(), snapshot.graph.pool_count(),
              blocks);
  auto result = sim::run_competition(snapshot, bots, config);
  if (!result.ok()) {
    std::fprintf(stderr, "competition failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }

  std::printf("contested blocks: %zu / %zu\n\n", result->contested_blocks,
              blocks);
  std::printf("%-10s %12s %16s\n", "bot", "blocks won", "realized $");
  for (const sim::BotStanding& standing : result->standings) {
    std::printf("%-10s %12zu %16.2f\n", standing.name.c_str(),
                standing.blocks_won, standing.realized_usd);
  }
  std::printf("\nNote: ties go to the earlier bot in the list; MaxPrice is "
              "listed first, so every block it 'wins' is a genuine tie "
              "with MaxMax, while MaxMax/Convex wins over MaxPrice are "
              "strict.\n");
  return 0;
}
