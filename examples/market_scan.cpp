// Market scan: the paper's full Section VI pipeline on a realistic
// snapshot.
//
//   $ ./market_scan [seed] [loop_length] [snapshot_dir]
//
// Generates (or loads, if snapshot_dir is given and holds tokens.csv /
// pools.csv) a Uniswap-V2-style market, applies the paper's pool-quality
// filter ($30k TVL, >100 units per reserve), enumerates all arbitrage
// loops of the requested length and compares the four strategies,
// printing the most profitable loops.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "core/analysis.hpp"
#include "core/comparison.hpp"
#include "market/generator.hpp"
#include "market/io.hpp"

using namespace arb;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20230901ULL;
  const std::size_t loop_length =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;

  market::MarketSnapshot snapshot;
  if (argc > 3) {
    auto loaded = market::load_snapshot(argv[3]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load snapshot: %s\n",
                   loaded.error().to_string().c_str());
      return 1;
    }
    snapshot = *std::move(loaded);
  } else {
    market::GeneratorConfig config;
    config.seed = seed;
    config.below_filter_pools = 15;  // junk pools to exercise the filter
    snapshot = market::generate_snapshot(config);
  }
  std::printf("snapshot '%s': %zu tokens, %zu pools\n",
              snapshot.label.c_str(), snapshot.graph.token_count(),
              snapshot.graph.pool_count());

  auto study = core::run_market_study(snapshot, loop_length);
  if (!study.ok()) {
    std::fprintf(stderr, "study failed: %s\n",
                 study.error().to_string().c_str());
    return 1;
  }
  std::printf("after quality filter: %zu tokens, %zu pools\n",
              study->market.graph.token_count(),
              study->market.graph.pool_count());
  std::printf("length-%zu arbitrage loops: %zu\n\n", loop_length,
              study->loops.size());

  // Aggregate profitability per strategy.
  StreamingStats traditional_worst;
  StreamingStats max_price_usd;
  StreamingStats max_max_usd;
  StreamingStats convex_usd;
  for (const core::LoopComparison& row : study->loops) {
    double worst = row.traditional.empty() ? 0.0
                                           : row.traditional[0].monetized_usd;
    for (const core::StrategyOutcome& t : row.traditional) {
      worst = std::min(worst, t.monetized_usd);
    }
    traditional_worst.add(worst);
    max_price_usd.add(row.max_price.monetized_usd);
    max_max_usd.add(row.max_max.monetized_usd);
    convex_usd.add(row.convex.outcome.monetized_usd);
  }
  std::printf("strategy totals across all loops:\n");
  std::printf("  worst traditional start: $%10.2f\n", traditional_worst.sum());
  std::printf("  MaxPrice               : $%10.2f\n", max_price_usd.sum());
  std::printf("  MaxMax                 : $%10.2f\n", max_max_usd.sum());
  std::printf("  ConvexOptimization     : $%10.2f\n\n", convex_usd.sum());

  // Top loops by convex profit.
  std::vector<const core::LoopComparison*> sorted;
  sorted.reserve(study->loops.size());
  for (const auto& row : study->loops) sorted.push_back(&row);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return a->convex.outcome.monetized_usd > b->convex.outcome.monetized_usd;
  });

  std::printf("top %zu loops (capacity = optimal input / first reserve):\n",
              std::min<std::size_t>(10, sorted.size()));
  std::printf("%-40s %10s %10s %10s %10s %12s\n", "loop", "MaxPrice$",
              "MaxMax$", "Convex$", "capacity", "loop TVL$");
  for (std::size_t i = 0; i < sorted.size() && i < 10; ++i) {
    const core::LoopComparison& row = *sorted[i];
    const auto diag = core::analyze_loop(study->market.graph,
                                         study->market.prices, row.cycle);
    std::printf("%-40s %10.2f %10.2f %10.2f %9.2f%% %12.0f\n",
                row.cycle.describe(study->market.graph).c_str(),
                row.max_price.monetized_usd, row.max_max.monetized_usd,
                row.convex.outcome.monetized_usd,
                diag.ok() ? 100.0 * diag->input_to_reserve_ratio : 0.0,
                diag.ok() ? diag->loop_tvl_usd : 0.0);
  }
  return 0;
}
