// Reproduces the worked example of Section V of the paper.
//
// Pools: (x,y) = (100,200), (y,z) = (300,200), (z,x) = (200,400);
// CEX prices P_x = $2, P_y = $10.2, P_z = $20.
//
// Paper numbers (with the 0.3% Uniswap V2 fee):
//   start X: input 27.0, profit 16.8 X  -> $33.7
//   start Y: input 31.5, profit 19.7 Y  -> $201.1
//   start Z: input 16.4, profit 10.3 Z  -> $205.6
//   Convex Optimization: $206.1, plan 31.3 X -> 47.6 Y; 42.6 Y -> 24.8 Z;
//   17.1 Z -> 31.3 X, retaining ~5 Y and ~7.7 Z.

#include <cstdio>

#include "core/comparison.hpp"
#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"
#include "sim/engine.hpp"

using namespace arb;

int main() {
  graph::TokenGraph g;
  const TokenId x = g.add_token("X");
  const TokenId y = g.add_token("Y");
  const TokenId z = g.add_token("Z");
  g.add_pool(x, y, 100.0, 200.0);
  g.add_pool(y, z, 300.0, 200.0);
  g.add_pool(z, x, 200.0, 400.0);

  market::CexPriceFeed prices;
  prices.set_price(x, 2.0);
  prices.set_price(y, 10.2);
  prices.set_price(z, 20.0);

  const auto cycles = graph::enumerate_fixed_length_cycles(g, 3);
  const auto loops = graph::filter_arbitrage(g, cycles);
  std::printf("directed 3-cycles: %zu, profitable orientations: %zu\n",
              cycles.size(), loops.size());
  if (loops.empty()) return 1;
  const graph::Cycle& loop = loops.front();
  std::printf("arbitrage loop: %s  (price product %.4f)\n\n",
              loop.describe(g).c_str(), loop.price_product(g));

  auto rotations = core::evaluate_all_rotations(g, prices, loop);
  for (const auto& outcome : rotations.value()) {
    std::printf("start %s: input %.3f, profit %.3f %s  -> $%.2f\n",
                g.symbol(outcome.start_token).c_str(), outcome.input,
                outcome.profits.front().amount,
                g.symbol(outcome.start_token).c_str(),
                outcome.monetized_usd);
  }

  const auto max_price = core::evaluate_max_price(g, prices, loop).value();
  const auto max_max = core::evaluate_max_max(g, prices, loop).value();
  std::printf("\nMaxPrice (starts %s): $%.2f\n",
              g.symbol(max_price.start_token).c_str(),
              max_price.monetized_usd);
  std::printf("MaxMax   (starts %s): $%.2f\n",
              g.symbol(max_max.start_token).c_str(), max_max.monetized_usd);

  const auto convex = core::solve_convex(g, prices, loop).value();
  std::printf("Convex Optimization:  $%.2f\n", convex.outcome.monetized_usd);
  for (std::size_t i = 0; i < convex.inputs.size(); ++i) {
    std::printf("  hop %zu: %.2f %s -> %.2f %s\n", i, convex.inputs[i],
                g.symbol(loop.tokens()[i]).c_str(), convex.outputs[i],
                g.symbol(loop.tokens()[(i + 1) % loop.length()]).c_str());
  }
  std::printf("  retained:");
  for (const auto& p : convex.outcome.profits) {
    std::printf(" %.3f %s", p.amount, g.symbol(p.token).c_str());
  }
  std::printf("\n\nExecuting the convex plan against the pools...\n");
  auto plan = core::plan_from_convex(g, loop, convex).value();
  const sim::ExecutionEngine engine;
  auto report = engine.execute(g, prices, plan);
  if (!report.ok()) {
    std::printf("execution failed: %s\n", report.error().to_string().c_str());
    return 1;
  }
  std::printf("realized $%.2f across %zu steps (plan promised $%.2f)\n",
              report->realized_usd, report->steps_executed,
              plan.expected_monetized_usd);
  return 0;
}
