// Live-bot simulation: an arbitrage bot operating block after block.
//
//   $ ./live_bot [strategy] [blocks] [seed]
//
// strategy: maxmax (default) | maxprice | convex
//
// Each block, exogenous trading flow perturbs every pool's price; the
// bot re-scans for length-3 arbitrage loops, picks the most profitable
// one under its strategy, and executes the plan atomically (flash-loan
// semantics). Prints the per-block and cumulative realized PnL —
// exercising detection, optimization and execution together, the way the
// paper's introduction motivates the problem.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "market/generator.hpp"
#include "sim/replay.hpp"

using namespace arb;

int main(int argc, char** argv) {
  const char* strategy_name = argc > 1 ? argv[1] : "maxmax";
  const std::size_t blocks =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 40;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  sim::ReplayConfig config;
  config.blocks = blocks;
  config.seed = seed;
  if (std::strcmp(strategy_name, "convex") == 0) {
    config.strategy = core::StrategyKind::kConvexOptimization;
  } else if (std::strcmp(strategy_name, "maxprice") == 0) {
    config.strategy = core::StrategyKind::kMaxPrice;
  } else if (std::strcmp(strategy_name, "maxmax") == 0) {
    config.strategy = core::StrategyKind::kMaxMax;
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (maxmax|maxprice|convex)\n",
                 strategy_name);
    return 1;
  }

  market::GeneratorConfig market_config;
  market_config.token_count = 24;
  market_config.pool_count = 60;
  market_config.seed = seed;
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market_config);
  std::printf("bot strategy: %s | market: %zu tokens / %zu pools | %zu "
              "blocks\n\n",
              strategy_name, snapshot.graph.token_count(),
              snapshot.graph.pool_count(), blocks);

  auto result = sim::run_replay(snapshot, config);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }

  std::printf("%6s %8s %14s %14s %14s\n", "block", "loops", "planned$",
              "realized$", "cumulative$");
  double cumulative = 0.0;
  for (const sim::BlockResult& row : result->blocks) {
    cumulative += row.realized_usd;
    std::printf("%6zu %8zu %14.2f %14.2f %14.2f\n", row.block,
                row.arbitrage_loops, row.planned_usd, row.realized_usd,
                cumulative);
  }
  std::printf("\ntotal realized over %zu blocks: $%.2f\n", blocks,
              result->total_realized_usd);
  return 0;
}
