// Ablation: concentrated liquidity on the pegged leg.
//
// Companion to the StableSwap ablation: the pegged USDC/USDT leg is a
// V3-style single position holding the same real reserves, and the range
// width sweeps from full-range (≡ CPMM) down to ±1%. Narrower range =
// more virtual depth at the peg = the same mispricing supports a larger
// optimal trade — quantifying why concentrated pools intensify arbitrage.

#include <cmath>

#include "amm/concentrated_pool.hpp"
#include "bench/bench_util.hpp"

using namespace arb;

int main() {
  const TokenId usdc{0};
  const TokenId usdt{1};
  const TokenId weth{2};
  const amm::CpmmPool usdt_weth(PoolId{1}, usdt, weth, 1'830'000.0, 1'000.0);
  const amm::CpmmPool weth_usdc(PoolId{2}, weth, usdc, 1'000.0, 1'860'000.0);
  const double r0 = 1'004'000.0;
  const double r1 = 996'000.0;

  // CPMM baseline (identical real reserves and fee).
  const amm::CpmmPool cpmm_leg(PoolId{0}, usdc, usdt, r0, r1, 0.0004);
  const amm::GenericPath cpmm_loop({amm::swap_fn(cpmm_leg, usdc),
                                    amm::swap_fn(usdt_weth, usdt),
                                    amm::swap_fn(weth_usdc, weth)});
  amm::GenericOptimizeOptions options;
  options.initial_scale = 1'000.0;
  const auto baseline = bench::expect_ok(
      amm::optimize_input_generic(cpmm_loop, options), "cpmm baseline");
  std::printf("CPMM baseline: input %.1f USDC, profit %.2f USDC\n\n",
              baseline.input, baseline.profit);

  bench::FigureSink sink(
      "ablation_concentrated",
      "pegged-leg concentration: profit vs position range width",
      {"range_width_pct", "optimal_input_usdc", "profit_usdc",
       "profit_vs_cpmm"});

  // Range ±w around the implied price; w from (near) full range to 1%.
  for (const double width : {100.0, 10.0, 2.0, 1.0, 0.5, 0.2, 0.1, 0.05}) {
    const double implied = r1 / r0;
    const auto leg = amm::ConcentratedPool::from_reserves(
        PoolId{0}, usdc, usdt, r0, r1, implied / (1.0 + width),
        implied * (1.0 + width), 0.0004);
    if (!leg.ok()) {
      std::fprintf(stderr, "position construction failed at width %g\n",
                   width);
      return 1;
    }
    const amm::GenericPath loop({amm::swap_fn(*leg, usdc),
                                 amm::swap_fn(usdt_weth, usdt),
                                 amm::swap_fn(weth_usdc, weth)});
    const auto trade = bench::expect_ok(
        amm::optimize_input_generic(loop, options), "cl loop");
    sink.row({100.0 * width, trade.input, trade.profit,
              baseline.profit > 0.0 ? trade.profit / baseline.profit : 0.0});
  }
  std::printf("shape check: profit grows monotonically as the range "
              "narrows and approaches the CPMM baseline as it widens. "
              "(Below ~5%% width the position cannot hold these reserves "
              "near the peg at all — concentration has limits.)\n\n");
  return 0;
}
