// Ablation: solver choices behind the Convex Optimization strategy.
//
// Three routes to the same optimum are compared on the Section VI loops:
//   barrier-reduced  — log-barrier interior point on the n-variable form
//   barrier-full     — same solver on the 2n-variable eq. (8) transcription
//   coordinate       — barrier-free compensated coordinate ascent
// plus MaxMax (bisection) as the baseline lower bound. Reported: profit
// agreement vs barrier-reduced and wall-clock per loop.

#include <chrono>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "core/coordinate.hpp"

using namespace arb;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const core::MarketStudy study = bench::section6_study(3);
  const auto& graph = study.market.graph;
  const auto& prices = study.market.prices;

  StreamingStats full_gap;
  StreamingStats coordinate_gap;
  StreamingStats maxmax_gap;
  double t_reduced = 0.0;
  double t_full = 0.0;
  double t_coordinate = 0.0;
  double t_maxmax = 0.0;

  for (const core::LoopComparison& row : study.loops) {
    const graph::Cycle& loop = row.cycle;

    double t0 = now_seconds();
    const auto reduced =
        bench::expect_ok(core::solve_convex(graph, prices, loop), "reduced");
    t_reduced += now_seconds() - t0;
    const double reference = reduced.outcome.monetized_usd;
    if (reference <= 0.0) continue;

    core::ConvexOptions full_options;
    full_options.use_full_formulation = true;
    t0 = now_seconds();
    const auto full = bench::expect_ok(
        core::solve_convex(graph, prices, loop, full_options), "full");
    t_full += now_seconds() - t0;

    t0 = now_seconds();
    const auto hops =
        bench::expect_ok(core::make_hop_data(graph, prices, loop), "hops");
    const auto coordinate = core::solve_reduced_coordinate(hops);
    t_coordinate += now_seconds() - t0;

    t0 = now_seconds();
    const auto maxmax = bench::expect_ok(
        core::evaluate_max_max(graph, prices, loop), "maxmax");
    t_maxmax += now_seconds() - t0;

    full_gap.add((full.outcome.monetized_usd - reference) / reference);
    coordinate_gap.add((coordinate.profit_usd - reference) / reference);
    maxmax_gap.add((maxmax.monetized_usd - reference) / reference);
  }

  bench::FigureSink sink(
      "ablation_solvers",
      "solver agreement (relative to barrier-reduced) and cost",
      {"solver_id", "mean_rel_gap", "worst_rel_gap", "total_seconds"});
  sink.row({0.0, 0.0, 0.0, t_reduced});  // barrier-reduced (reference)
  sink.row({1.0, full_gap.mean(),
            std::max(std::abs(full_gap.min()), std::abs(full_gap.max())),
            t_full});
  sink.row({2.0, coordinate_gap.mean(),
            std::max(std::abs(coordinate_gap.min()),
                     std::abs(coordinate_gap.max())),
            t_coordinate});
  sink.row({3.0, maxmax_gap.mean(),
            std::max(std::abs(maxmax_gap.min()), std::abs(maxmax_gap.max())),
            t_maxmax});

  std::printf("solver ids: 0=barrier-reduced 1=barrier-full(eq.8) "
              "2=coordinate-ascent 3=maxmax-baseline\n");
  std::printf("full-form gap:   %s\n", full_gap.summary().c_str());
  std::printf("coordinate gap:  %s\n", coordinate_gap.summary().c_str());
  std::printf("maxmax gap:      %s\n", maxmax_gap.summary().c_str());
  std::printf("shape check: all three convex routes agree to ~1e-4 "
              "relative; the reduced transcription is the cheapest; MaxMax "
              "sits just below (it is the lower bound)\n\n");
  return 0;
}
