// Robustness of the Section VI reproduction across generator seeds: the
// default seed is calibrated to the paper's 123 loops, but the paper's
// *claims* must hold on any seed. Sweeps 10 seeds and reports, per
// market: loop count, strategy totals, MaxPrice shortfall rate, and the
// worst Convex-vs-MaxMax relative gap.

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "core/study_io.hpp"

using namespace arb;

int main() {
  bench::FigureSink sink(
      "seed_sweep", "Section VI claims across generator seeds",
      {"seed", "arb_loops", "maxprice_total_usd", "maxmax_total_usd",
       "convex_total_usd", "maxprice_suboptimal_pct", "worst_convex_gap"});

  StreamingStats loop_counts;
  bool ordering_held_everywhere = true;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    market::GeneratorConfig config;
    config.seed = seed * 7919;  // spread the seeds out
    const auto snapshot = market::generate_snapshot(config);
    auto study = core::run_market_study(snapshot, 3);
    if (!study.ok()) {
      std::fprintf(stderr, "study failed: %s\n",
                   study.error().to_string().c_str());
      return 1;
    }
    const core::StudySummary summary = core::summarize_study(*study);

    std::size_t suboptimal = 0;
    double worst_gap = 0.0;
    for (const core::LoopComparison& row : study->loops) {
      if (row.max_price.monetized_usd <
          row.max_max.monetized_usd - 1e-9) {
        ++suboptimal;
      }
      if (row.max_max.monetized_usd > 0.0) {
        worst_gap = std::min(
            worst_gap, (row.convex.outcome.monetized_usd -
                        row.max_max.monetized_usd) /
                           row.max_max.monetized_usd);
      }
      for (const core::StrategyOutcome& t : row.traditional) {
        if (t.monetized_usd > row.max_max.monetized_usd + 1e-9) {
          ordering_held_everywhere = false;
        }
      }
    }
    loop_counts.add(static_cast<double>(study->loops.size()));
    sink.row({static_cast<double>(seed), static_cast<double>(study->loops.size()),
              summary.max_price.total_usd, summary.max_max.total_usd,
              summary.convex.total_usd,
              study->loops.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(suboptimal) /
                        static_cast<double>(study->loops.size()),
              worst_gap});
  }
  std::printf("loop count across seeds: %s (paper: 123)\n",
              loop_counts.summary().c_str());
  std::printf("MaxMax >= every traditional start on every loop of every "
              "seed: %s\n",
              ordering_held_everywhere ? "yes" : "NO — BUG");
  std::printf("shape check: on every seed MaxPrice leaves money on the "
              "table on a large fraction of loops while Convex tracks "
              "MaxMax to solver precision\n\n");
  return 0;
}
