// Market-level extraction: how much total value each strategy pulls out
// of the whole Section VI market when loops are executed greedily until
// nothing clears the threshold (loops share pools, so each execution
// shifts the others). Complements the paper's per-loop comparison with
// the market-level consequence, and re-checks quantization robustness by
// validating the first executed plan in exact integer arithmetic.

#include "bench/bench_util.hpp"
#include "core/plan.hpp"
#include "graph/cycle_enumeration.hpp"
#include "sim/extraction.hpp"
#include "sim/integer_check.hpp"

using namespace arb;

namespace {

struct Row {
  double total_usd = 0.0;
  std::size_t executions = 0;
};

Row run(core::StrategyKind strategy) {
  core::MarketStudy study = bench::section6_study(3);
  std::vector<graph::Cycle> loops;
  loops.reserve(study.loops.size());
  for (const auto& row : study.loops) loops.push_back(row.cycle);

  sim::ExtractionConfig config;
  config.strategy = strategy;
  config.min_profit_usd = 1e-3;
  auto result = bench::expect_ok(
      sim::extract_all(study.market.graph, study.market.prices, loops,
                       config),
      "extract_all");
  return Row{result.total_realized_usd, result.steps.size()};
}

}  // namespace

int main() {
  const Row maxprice = run(core::StrategyKind::kMaxPrice);
  const Row maxmax = run(core::StrategyKind::kMaxMax);
  const Row convex = run(core::StrategyKind::kConvexOptimization);

  bench::FigureSink sink(
      "market_extraction",
      "greedy whole-market extraction until dry, by strategy",
      {"strategy_id", "total_realized_usd", "executions"});
  sink.row({0.0, maxprice.total_usd, static_cast<double>(maxprice.executions)});
  sink.row({1.0, maxmax.total_usd, static_cast<double>(maxmax.executions)});
  sink.row({2.0, convex.total_usd, static_cast<double>(convex.executions)});
  std::printf("strategy ids: 0=MaxPrice 1=MaxMax 2=Convex\n");
  std::printf("shape check: MaxMax and Convex extract essentially the same "
              "total; MaxPrice trails (wrong start token wastes slippage "
              "budget)\n\n");

  // Integer-arithmetic pre-flight of the single best plan.
  core::MarketStudy study = bench::section6_study(3);
  const core::LoopComparison* best = nullptr;
  for (const auto& row : study.loops) {
    if (best == nullptr ||
        row.convex.outcome.monetized_usd >
            best->convex.outcome.monetized_usd) {
      best = &row;
    }
  }
  if (best != nullptr) {
    auto plan = bench::expect_ok(
        core::plan_from_convex(study.market.graph, best->cycle, best->convex),
        "plan");
    auto integer = bench::expect_ok(
        sim::check_plan_integer(study.market.graph, study.market.prices, plan),
        "integer check");
    std::printf("best plan integer pre-flight: promised $%.4f, integer "
                "realization $%.4f, quantization loss $%.2e, settles=%s\n\n",
                plan.expected_monetized_usd, integer.realized_usd,
                integer.quantization_loss_usd,
                integer.settles ? "yes" : "no");
  }
  return 0;
}
