// Fig. 8: arbitrage profit measured as the net number of each token
// retained — Convex Optimization vs MaxMax, one point per (loop, token).
// The paper finds the two point clouds overlap almost exactly.

#include <cmath>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"

using namespace arb;

int main() {
  const core::MarketStudy study = bench::section6_study(3);

  bench::FigureSink sink(
      "fig8", "net token profit, Convex vs MaxMax (scatter)",
      {"loop_id", "token_id", "convex_tokens", "maxmax_tokens"});

  StreamingStats abs_diff_usd;
  for (std::size_t loop_id = 0; loop_id < study.loops.size(); ++loop_id) {
    const core::LoopComparison& row = study.loops[loop_id];
    for (const core::TokenProfit& p : row.convex.outcome.profits) {
      // MaxMax retains everything in its single start token.
      double maxmax_amount = 0.0;
      if (p.token == row.max_max.start_token) {
        maxmax_amount = row.max_max.profits.front().amount;
      }
      sink.row({static_cast<double>(loop_id),
                static_cast<double>(p.token.value()), p.amount,
                maxmax_amount});
      abs_diff_usd.add(
          std::abs(p.amount - maxmax_amount) *
          study.market.prices.price_unchecked(p.token));
    }
  }
  std::printf("per-token |convex - maxmax| in USD: %s\n",
              abs_diff_usd.summary().c_str());
  std::printf("paper shape check: the overwhelming majority of points "
              "coincide (Convex retains profit in the same token MaxMax "
              "picks)\n\n");
  return 0;
}
