// Section VII timing claims, as a google-benchmark suite.
//
// The paper reports: for a loop of length 10, MaxMax runs in milliseconds
// while the Convex Optimization strategy takes seconds (their Python/Ipopt
// stack) — convex is the slower strategy and its cost grows with loop
// length. Our native solver is much faster in absolute terms, but the
// *shape* must hold: Convex cost >> MaxMax cost, growing with length.

#include <benchmark/benchmark.h>

#include "core/convex.hpp"
#include "core/single_start.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace {

using namespace arb;

/// A profitable ring of `length` tokens: pool i connects token i to
/// token i+1 with a mild systematic imbalance so the loop product > 1.
struct RingMarket {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  std::vector<TokenId> tokens;
  std::vector<PoolId> pools;

  explicit RingMarket(std::size_t length) {
    for (std::size_t i = 0; i < length; ++i) {
      tokens.push_back(graph.add_token("T" + std::to_string(i)));
      prices.set_price(tokens.back(), 1.0 + static_cast<double>(i));
    }
    for (std::size_t i = 0; i < length; ++i) {
      // 1.2% price edge per hop: comfortably profitable after fees.
      pools.push_back(graph.add_pool(tokens[i], tokens[(i + 1) % length],
                                     1000.0, 1012.0));
    }
  }

  [[nodiscard]] graph::Cycle cycle() const {
    return *graph::Cycle::create(graph, tokens, pools);
  }
};

void BM_MaxMax(benchmark::State& state) {
  const RingMarket market(static_cast<std::size_t>(state.range(0)));
  const graph::Cycle loop = market.cycle();
  for (auto _ : state) {
    auto outcome = core::evaluate_max_max(market.graph, market.prices, loop);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_MaxMax)->Arg(3)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_MaxMaxAnalytic(benchmark::State& state) {
  const RingMarket market(static_cast<std::size_t>(state.range(0)));
  const graph::Cycle loop = market.cycle();
  core::SingleStartOptions options;
  options.use_bisection = false;
  for (auto _ : state) {
    auto outcome =
        core::evaluate_max_max(market.graph, market.prices, loop, options);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_MaxMaxAnalytic)->Arg(3)->Arg(6)->Arg(10)->Arg(12);

void BM_ConvexReduced(benchmark::State& state) {
  const RingMarket market(static_cast<std::size_t>(state.range(0)));
  const graph::Cycle loop = market.cycle();
  for (auto _ : state) {
    auto solution = core::solve_convex(market.graph, market.prices, loop);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_ConvexReduced)->Arg(3)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

void BM_ConvexFull(benchmark::State& state) {
  const RingMarket market(static_cast<std::size_t>(state.range(0)));
  const graph::Cycle loop = market.cycle();
  core::ConvexOptions options;
  options.use_full_formulation = true;
  for (auto _ : state) {
    auto solution =
        core::solve_convex(market.graph, market.prices, loop, options);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_ConvexFull)->Arg(3)->Arg(6)->Arg(10)->Arg(12);

void BM_MaxPrice(benchmark::State& state) {
  const RingMarket market(static_cast<std::size_t>(state.range(0)));
  const graph::Cycle loop = market.cycle();
  for (auto _ : state) {
    auto outcome =
        core::evaluate_max_price(market.graph, market.prices, loop);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_MaxPrice)->Arg(3)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
