// Detection-algorithm comparison on the Section VI market (the paper
// cites three detection approaches from prior work; this bench measures
// our implementations of all of them on the same graph):
//   fixed-length DFS (the paper's own traversal, lengths 3 and 4),
//   Johnson's elementary-circuits algorithm (McLaughlin et al.),
//   Bellman–Ford–Moore negative-cycle detection (Zhou et al.).

#include <chrono>

#include "bench/bench_util.hpp"
#include "graph/cycle_enumeration.hpp"
#include "graph/johnson.hpp"

using namespace arb;

namespace {

template <typename Fn>
double timed_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market::GeneratorConfig{})
          .filtered(market::PoolFilter{});
  const graph::TokenGraph& g = snapshot.graph;
  std::printf("graph: %zu tokens, %zu pools\n\n", g.token_count(),
              g.pool_count());

  bench::FigureSink sink(
      "detection", "cycle-detection algorithms on the Section VI graph",
      {"algorithm_id", "cycles_found", "arbitrage_loops", "seconds"});

  // 0: fixed-length DFS, length 3.
  {
    std::vector<graph::Cycle> cycles;
    const double secs = timed_seconds(
        [&] { cycles = graph::enumerate_fixed_length_cycles(g, 3); });
    const auto arbs = graph::filter_arbitrage(g, cycles);
    sink.row({0.0, static_cast<double>(cycles.size()),
              static_cast<double>(arbs.size()), secs});
  }
  // 1: fixed-length DFS, length 4.
  {
    std::vector<graph::Cycle> cycles;
    const double secs = timed_seconds(
        [&] { cycles = graph::enumerate_fixed_length_cycles(g, 4); });
    const auto arbs = graph::filter_arbitrage(g, cycles);
    sink.row({1.0, static_cast<double>(cycles.size()),
              static_cast<double>(arbs.size()), secs});
  }
  // 2: bounded DFS, all lengths up to 4.
  {
    std::vector<graph::Cycle> cycles;
    const double secs =
        timed_seconds([&] { cycles = graph::enumerate_cycles_up_to(g, 4); });
    const auto arbs = graph::filter_arbitrage(g, cycles);
    sink.row({2.0, static_cast<double>(cycles.size()),
              static_cast<double>(arbs.size()), secs});
  }
  // 3: Johnson elementary circuits (capped).
  {
    graph::JohnsonResult result;
    const double secs = timed_seconds(
        [&] { result = graph::enumerate_elementary_cycles(g, 200'000); });
    const auto arbs = graph::filter_arbitrage(g, result.cycles);
    std::printf("johnson truncated: %s\n", result.truncated ? "yes" : "no");
    sink.row({3.0, static_cast<double>(result.cycles.size()),
              static_cast<double>(arbs.size()), secs});
  }
  // 4: Bellman–Ford–Moore (finds ONE arbitrage cycle, any length).
  {
    std::optional<graph::Cycle> cycle;
    const double secs =
        timed_seconds([&] { cycle = graph::find_negative_cycle(g); });
    sink.row({4.0, cycle.has_value() ? 1.0 : 0.0,
              cycle.has_value() ? 1.0 : 0.0, secs});
    if (cycle) {
      std::printf("BFM found a length-%zu loop with price product %.6f\n",
                  cycle->length(), cycle->price_product(g));
    }
  }
  std::printf("algorithm ids: 0=dfs-len3 1=dfs-len4 2=dfs-upto4 "
              "3=johnson-all 4=bellman-ford-moore\n");
  std::printf("shape check: BFM is the cheapest (one loop, fast); bounded "
              "DFS scales with the count at that length; Johnson pays for "
              "exhaustiveness\n\n");
  return 0;
}
