// Fig. 7: scatter of monetized profit — Convex Optimization vs MaxMax on
// the empirical market. The paper observes the two strategies are almost
// identical on real loops (all points ~on the 45° line), in contrast to
// the constructed Section V example where Convex wins visibly.

#include "bench/bench_util.hpp"
#include "common/stats.hpp"

using namespace arb;

int main() {
  const core::MarketStudy study = bench::section6_study(3);

  bench::FigureSink sink("fig7", "Convex vs MaxMax, empirical (scatter)",
                         {"loop_id", "convex_usd", "maxmax_usd",
                          "relative_gap"});

  StreamingStats gaps;
  std::size_t dominated = 0;
  for (std::size_t loop_id = 0; loop_id < study.loops.size(); ++loop_id) {
    const core::LoopComparison& row = study.loops[loop_id];
    const double convex = row.convex.outcome.monetized_usd;
    const double maxmax = row.max_max.monetized_usd;
    const double rel_gap =
        maxmax > 0.0 ? (convex - maxmax) / maxmax : 0.0;
    sink.row({static_cast<double>(loop_id), convex, maxmax, rel_gap});
    gaps.add(rel_gap);
    if (convex >= maxmax - 1e-9) ++dominated;
  }
  std::printf("Convex >= MaxMax on %zu/%zu loops (theory: all)\n", dominated,
              study.loops.size());
  std::printf("relative gap (convex/maxmax - 1): %s\n", gaps.summary().c_str());
  std::printf("paper shape check: gaps are tiny — the strategies nearly "
              "coincide on market data\n\n");
  return 0;
}
