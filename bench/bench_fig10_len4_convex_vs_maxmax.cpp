// Fig. 10 (appendix): length-4 loops — Convex Optimization vs MaxMax.
// Same shape as Fig. 7: Convex dominates with an almost-zero gap.

#include "bench/bench_util.hpp"
#include "common/stats.hpp"

using namespace arb;

int main() {
  const core::MarketStudy study = bench::section6_study(4);

  bench::FigureSink sink("fig10", "Convex vs MaxMax, length-4 loops",
                         {"loop_id", "convex_usd", "maxmax_usd",
                          "relative_gap"});

  StreamingStats gaps;
  std::size_t dominated = 0;
  for (std::size_t loop_id = 0; loop_id < study.loops.size(); ++loop_id) {
    const core::LoopComparison& row = study.loops[loop_id];
    const double convex = row.convex.outcome.monetized_usd;
    const double maxmax = row.max_max.monetized_usd;
    sink.row({static_cast<double>(loop_id), convex, maxmax,
              maxmax > 0.0 ? (convex - maxmax) / maxmax : 0.0});
    if (maxmax > 0.0) gaps.add((convex - maxmax) / maxmax);
    if (convex >= maxmax - 1e-9) ++dominated;
  }
  std::printf("Convex >= MaxMax on %zu/%zu length-4 loops\n", dominated,
              study.loops.size());
  std::printf("relative gap: %s\n\n", gaps.summary().c_str());
  return 0;
}
