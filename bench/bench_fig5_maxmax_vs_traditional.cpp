// Fig. 5: scatter of monetized profit — MaxMax (x-axis) vs each
// traditional start (y-axis) over all length-3 arbitrage loops of the
// Section VI market. Every point must lie on or under the 45° line.

#include "bench/bench_util.hpp"

using namespace arb;

int main() {
  const core::MarketStudy study = bench::section6_study(3);
  std::printf("market: %zu tokens, %zu pools, %zu length-3 arbitrage loops "
              "(paper: 51 / 208 / 123)\n\n",
              study.market.graph.token_count(),
              study.market.graph.pool_count(), study.loops.size());

  bench::FigureSink sink(
      "fig5", "MaxMax vs traditional per start (scatter points)",
      {"loop_id", "start_index", "maxmax_usd", "traditional_usd"});

  std::size_t points = 0;
  std::size_t under_or_on_line = 0;
  std::size_t strictly_under = 0;
  for (std::size_t loop_id = 0; loop_id < study.loops.size(); ++loop_id) {
    const core::LoopComparison& row = study.loops[loop_id];
    for (std::size_t s = 0; s < row.traditional.size(); ++s) {
      const double traditional = row.traditional[s].monetized_usd;
      sink.row({static_cast<double>(loop_id), static_cast<double>(s),
                row.max_max.monetized_usd, traditional});
      ++points;
      if (traditional <= row.max_max.monetized_usd + 1e-9) {
        ++under_or_on_line;
      }
      if (traditional < row.max_max.monetized_usd - 1e-9) ++strictly_under;
    }
  }
  std::printf("points on/under the 45-degree line: %zu/%zu (paper: all)\n",
              under_or_on_line, points);
  std::printf("points strictly under (suboptimal start): %zu\n\n",
              strictly_under);
  return 0;
}
