// Solver hot-path microbenchmarks:
//   (a) per-stage timings — phase-I feasibility, SPD factorization, and
//       the Armijo line search — each measured with warm-up + median,
//   (b) steady-state allocation count of the workspace barrier solve
//       (must be zero: the whole point of SolveWorkspace),
//   (c) cold-start vs warm-start barrier solves over a stream of reserve
//       perturbations, enforcing the >=3x warm speedup bar,
//   (d) closed-form 2-pool kernel vs the barrier solver (agreement to
//       <=1e-9 relative profit and the analytic speedup).
// Emits BENCH_solver.json with median + p99 nanoseconds per section.
// Set ARB_BENCH_RELAXED=1 to relax the performance bars (CI smoke runs
// on shared hardware where a 3x median can wobble).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/convex.hpp"
#include "core/loop_nlp.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"
#include "math/alloc_stats.hpp"
#include "math/linear_solve.hpp"
#include "optim/line_search.hpp"
#include "optim/phase1.hpp"
#include "optim/workspace.hpp"

using namespace arb;

namespace {

/// Deterministic xorshift so perturbation streams are reproducible.
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  double uniform() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
  /// Multiplier in [1-spread, 1+spread].
  double jitter(double spread) { return 1.0 + spread * (2.0 * uniform() - 1.0); }
};

/// The paper's Section V market (profitable 3-loop).
struct Market3 {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  TokenId x, y, z;
  PoolId xy, yz, zx;

  Market3() {
    x = graph.add_token("X");
    y = graph.add_token("Y");
    z = graph.add_token("Z");
    xy = graph.add_pool(x, y, 100.0, 200.0);
    yz = graph.add_pool(y, z, 300.0, 200.0);
    zx = graph.add_pool(z, x, 200.0, 400.0);
    prices.set_price(x, 2.0);
    prices.set_price(y, 10.2);
    prices.set_price(z, 20.0);
  }

  [[nodiscard]] graph::Cycle loop() const {
    return *graph::Cycle::create(graph, {x, y, z}, {xy, yz, zx});
  }
};

/// Two pools between the same token pair, priced apart: the 2-loop the
/// closed-form kernel handles.
struct Market2 {
  graph::TokenGraph graph;
  market::CexPriceFeed prices;
  TokenId a, b;
  PoolId ab, ba;

  Market2() {
    a = graph.add_token("A");
    b = graph.add_token("B");
    ab = graph.add_pool(a, b, 100.0, 200.0);
    ba = graph.add_pool(b, a, 150.0, 120.0);
    prices.set_price(a, 1.0);
    prices.set_price(b, 2.0);
  }

  [[nodiscard]] graph::Cycle loop() const {
    return *graph::Cycle::create(graph, {a, b}, {ab, ba});
  }
};

/// Minimal smooth objective for the line-search stage timing.
struct Quadratic final : optim::SmoothObjective {
  double value(const math::Vector& x) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * x[i];
    return 0.5 * s;
  }
  void gradient_into(const math::Vector& x,
                     math::Vector& grad) const override {
    grad = x;
  }
  void hessian_into(const math::Vector& x, math::Matrix& hess) const override {
    hess.assign(x.size(), x.size(), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) hess(i, i) = 1.0;
  }
};

double relative_difference(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale > 0.0 ? std::abs(a - b) / scale : 0.0;
}

}  // namespace

int main() {
  const bool relaxed = std::getenv("ARB_BENCH_RELAXED") != nullptr;
  bench::BenchJson json;
  bench::FigureSink sink("solver_hotpath", "solver fast-path timings",
                         {"metric", "value"});
  bool failed = false;

  Market3 market;
  const graph::Cycle loop = market.loop();
  const auto hops =
      bench::expect_ok(core::make_hop_data(market.graph, market.prices, loop),
                       "make_hop_data");
  const core::ReducedLoopProblem problem(hops);
  const std::size_t n = hops.size();

  // -- (a) Per-stage timings -----------------------------------------------
  {
    optim::SolveWorkspace ws;
    optim::Phase1Options phase1;
    phase1.barrier.refine_duals = false;
    const math::Vector zero(n, 0.0);
    const bench::Timing phase1_timing = bench::measure([&] {
      auto found = optim::find_strictly_feasible(problem, zero, phase1, ws);
      if (!found.ok()) std::exit(2);
    });
    json.set("stage.phase1", phase1_timing);
    sink.labeled_row("phase1_median_ns", {phase1_timing.median_ns});

    // SPD solve (factorize + substitute), the inner Newton's kernel.
    constexpr std::size_t kDim = 8;
    math::Matrix a(kDim, kDim);
    Rng rng;
    for (std::size_t i = 0; i < kDim; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double v = rng.uniform() - 0.5;
        a(i, j) += v;  // build B, then A = B·Bᵀ + I below
      }
    }
    math::Matrix spd = a.multiply(a.transposed());
    for (std::size_t i = 0; i < kDim; ++i) spd(i, i) += 1.0;
    math::Vector rhs(kDim, 1.0);
    math::Vector solution(kDim);
    math::LinearSolveScratch scratch;
    scratch.reserve(kDim);
    const bench::Timing factor_timing = bench::measure(
        [&] {
          if (!math::regularized_spd_solve_into(spd, rhs, solution, scratch)
                   .ok()) {
            std::exit(2);
          }
        },
        10, 200);
    json.set("stage.factorize_solve", factor_timing);
    sink.labeled_row("factorize_median_ns", {factor_timing.median_ns});

    const Quadratic quadratic;
    math::Vector point(kDim, 1.0);
    math::Vector direction(kDim, -1.0);
    math::Vector candidate(kDim);
    const double value = quadratic.value(point);
    const double slope = -static_cast<double>(kDim);
    const bench::Timing ls_timing = bench::measure(
        [&] {
          const auto result = optim::backtracking_line_search(
              quadratic, point, direction, value, slope, candidate);
          if (!result.success) std::exit(2);
        },
        10, 200);
    json.set("stage.line_search", ls_timing);
    sink.labeled_row("line_search_median_ns", {ls_timing.median_ns});
  }

  // -- (b) Steady-state allocation count -----------------------------------
  {
    optim::BarrierOptions options;
    options.refine_duals = false;  // the documented hot-path setting
    const optim::BarrierSolver solver(options);
    optim::SolveWorkspace ws;
    optim::BarrierReport report;
    const auto start = bench::expect_ok(core::reduced_interior_start(hops),
                                        "reduced_interior_start");
    // Warm-up grows every buffer to its steady-state capacity.
    if (!solver.solve_into(problem, start, ws, report).ok()) return 2;

    constexpr int kSolves = 100;
    math::reset_allocation_count();
    for (int i = 0; i < kSolves; ++i) {
      if (!solver.solve_into(problem, start, ws, report).ok()) return 2;
    }
    const std::uint64_t allocations = math::allocation_count();
    json.set("steady_state.solves", static_cast<double>(kSolves));
    json.set("steady_state.allocations", static_cast<double>(allocations));
    sink.labeled_row("steady_state_allocations",
                     {static_cast<double>(allocations)});
    if (allocations != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu heap allocations across %d steady-state "
                   "barrier solves (expected 0)\n",
                   static_cast<unsigned long long>(allocations), kSolves);
      failed = true;
    }

    const bench::Timing solve_timing = bench::measure([&] {
      if (!solver.solve_into(problem, start, ws, report).ok()) std::exit(2);
    });
    json.set("barrier.solve_into", solve_timing);
    sink.labeled_row("barrier_solve_median_ns", {solve_timing.median_ns});
  }

  // -- (c) Cold vs warm over reserve perturbations --------------------------
  {
    core::ConvexOptions options;
    options.barrier.refine_duals = false;

    core::ConvexContext cold_ctx;
    core::ConvexContext warm_ctx;
    optim::WarmStart warm_slot;
    warm_ctx.warm = &warm_slot;

    // Prime: one solve fills the warm slot and grows both workspaces.
    (void)bench::expect_ok(core::solve_convex(market.graph, market.prices,
                                              loop, options, warm_ctx),
                           "warm prime");
    (void)bench::expect_ok(core::solve_convex(market.graph, market.prices,
                                              loop, options, cold_ctx),
                           "cold prime");

    constexpr int kEvents = 300;
    constexpr double kSpread = 0.01;  // +-1% reserve moves
    Rng rng;
    std::vector<double> cold_ns, warm_ns;
    std::vector<double> cold_iters, warm_iters;
    cold_ns.reserve(kEvents);
    warm_ns.reserve(kEvents);
    int warm_hits = 0;
    double worst_disagreement = 0.0;

    const std::vector<PoolId> pools = {market.xy, market.yz, market.zx};
    for (int event = 0; event < kEvents; ++event) {
      for (const PoolId pool : pools) {
        const amm::AnyPool& p = market.graph.pool(pool);
        ARB_REQUIRE(market.graph
                        .set_pool_reserves(pool,
                                           p.reserve0() * rng.jitter(kSpread),
                                           p.reserve1() * rng.jitter(kSpread))
                        .ok(),
                    "jittered reserves invalid");
      }

      const auto warm_start_time = std::chrono::steady_clock::now();
      const auto warm = bench::expect_ok(
          core::solve_convex(market.graph, market.prices, loop, options,
                             warm_ctx),
          "warm solve");
      warm_ns.push_back(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - warm_start_time)
                            .count());
      warm_hits += warm_ctx.warm_hit ? 1 : 0;
      warm_iters.push_back(
          static_cast<double>(warm.outcome.solver_iterations));

      const auto cold_start_time = std::chrono::steady_clock::now();
      const auto cold = bench::expect_ok(
          core::solve_convex(market.graph, market.prices, loop, options,
                             cold_ctx),
          "cold solve");
      cold_ns.push_back(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - cold_start_time)
                            .count());
      cold_iters.push_back(
          static_cast<double>(cold.outcome.solver_iterations));

      worst_disagreement = std::max(
          worst_disagreement,
          relative_difference(warm.outcome.monetized_usd,
                              cold.outcome.monetized_usd));
    }

    const double cold_median = percentile(cold_ns, 0.50);
    const double warm_median = percentile(warm_ns, 0.50);
    const double speedup = cold_median / warm_median;
    const double hit_rate =
        static_cast<double>(warm_hits) / static_cast<double>(kEvents);

    json.set("cold.median_ns", cold_median);
    json.set("cold.p99_ns", percentile(cold_ns, 0.99));
    json.set("warm.median_ns", warm_median);
    json.set("warm.p99_ns", percentile(warm_ns, 0.99));
    json.set("warm.speedup_x", speedup);
    json.set("warm.hit_rate", hit_rate);
    json.set("cold.median_newton_iterations", percentile(cold_iters, 0.50));
    json.set("warm.median_newton_iterations", percentile(warm_iters, 0.50));
    json.set("warm.worst_profit_disagreement", worst_disagreement);

    sink.labeled_row("cold_median_ns", {cold_median});
    sink.labeled_row("warm_median_ns", {warm_median});
    sink.labeled_row("warm_speedup_x", {speedup});
    sink.labeled_row("warm_hit_rate", {hit_rate});

    std::printf("\ncold %.0fns (med %g Newton iters) -> warm %.0fns "
                "(med %g iters): %.2fx, hit rate %.1f%%\n",
                cold_median, percentile(cold_iters, 0.50), warm_median,
                percentile(warm_iters, 0.50), speedup, 100.0 * hit_rate);

    const double speedup_bar = relaxed ? 1.2 : 3.0;
    if (speedup < speedup_bar) {
      std::fprintf(stderr, "FAIL: warm-start speedup %.2fx below %.1fx bar\n",
                   speedup, speedup_bar);
      failed = true;
    }
    if (hit_rate < 0.95) {
      std::fprintf(stderr, "FAIL: warm hit rate %.2f below 0.95\n", hit_rate);
      failed = true;
    }
    if (worst_disagreement > 1e-6) {
      std::fprintf(stderr,
                   "FAIL: warm and cold profits disagree by %.3g relative\n",
                   worst_disagreement);
      failed = true;
    }
  }

  // -- (d) Closed-form 2-pool kernel vs barrier ------------------------------
  {
    Market2 market2;
    const graph::Cycle loop2 = market2.loop();

    core::ConvexOptions closed_options;
    closed_options.barrier.refine_duals = false;
    core::ConvexOptions barrier_options = closed_options;
    barrier_options.use_closed_form_length2 = false;

    core::ConvexContext closed_ctx;
    core::ConvexContext barrier_ctx;
    const auto closed = bench::expect_ok(
        core::solve_convex(market2.graph, market2.prices, loop2,
                           closed_options, closed_ctx),
        "closed-form solve");
    const auto barrier = bench::expect_ok(
        core::solve_convex(market2.graph, market2.prices, loop2,
                           barrier_options, barrier_ctx),
        "barrier 2-pool solve");
    if (!closed_ctx.used_closed_form) {
      std::fprintf(stderr, "FAIL: closed-form kernel did not fire\n");
      failed = true;
    }
    const double disagreement = relative_difference(
        closed.outcome.monetized_usd, barrier.outcome.monetized_usd);
    json.set("closed_form.profit_usd", closed.outcome.monetized_usd);
    json.set("closed_form.vs_barrier_relative", disagreement);
    sink.labeled_row("closed_form_vs_barrier_rel", {disagreement});
    if (disagreement > 1e-9) {
      std::fprintf(stderr,
                   "FAIL: closed form disagrees with barrier by %.3g\n",
                   disagreement);
      failed = true;
    }

    const bench::Timing closed_timing = bench::measure([&] {
      (void)bench::expect_ok(
          core::solve_convex(market2.graph, market2.prices, loop2,
                             closed_options, closed_ctx),
          "closed-form solve");
    });
    const bench::Timing barrier_timing = bench::measure([&] {
      (void)bench::expect_ok(
          core::solve_convex(market2.graph, market2.prices, loop2,
                             barrier_options, barrier_ctx),
          "barrier 2-pool solve");
    });
    json.set("closed_form.solve", closed_timing);
    json.set("closed_form.barrier_solve", barrier_timing);
    json.set("closed_form.speedup_x",
             barrier_timing.median_ns / closed_timing.median_ns);
    sink.labeled_row("closed_form_median_ns", {closed_timing.median_ns});
    sink.labeled_row("closed_form_speedup_x",
                     {barrier_timing.median_ns / closed_timing.median_ns});
    std::printf("closed form %.0fns vs barrier %.0fns (%.1fx)\n",
                closed_timing.median_ns, barrier_timing.median_ns,
                barrier_timing.median_ns / closed_timing.median_ns);
  }

  if (!json.write("BENCH_solver.json")) return 1;
  return failed ? 1 : 0;
}
