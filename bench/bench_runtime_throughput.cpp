// Streaming-runtime throughput on the Section VI sample market:
//   (a) full scan_market rescan latency (the batch baseline),
//   (b) incremental re-price latency under single-pool updates via the
//       pool→cycle index (the runtime's claim: work ∝ affected loops),
//   (c) the same stream under the Convex strategy with warm-started
//       barrier solves, reporting hit rate and Newton iterations through
//       RuntimeMetrics,
//   (d) end-to-end events/sec through the ScannerService with its
//       metrics layer reporting p50/p99 re-price latency,
//   (e) the convex workload on a mixed-venue market: per-kind loop
//       split (fast path vs generic route) and per-solve medians, with
//       a mixed ≤ 5x CPMM median bar under ARB_BENCH_MIXED_STRICT,
//   (f) a shard sweep: deterministic batch replay through the sharded
//       scanner at K ∈ {1, 2, 4, 8}, with a K=4 ≥ K=1-median throughput
//       bar under ARB_BENCH_SHARD_STRICT,
//   (g) a pipelined sweep: the same batches driven through the staged
//       epoch API (begin N+1 overlapped with reprice N) at the same K
//       grid, against an inline serial K=1 baseline; perf-smoke exports
//       ARB_BENCH_PIPELINE_STRICT demanding monotone scaling and K=8
//       pipelined ≥ 2.0× the serial median.
// All latencies are warmed-up order statistics (median/p99), not
// single-shot means. Emits runtime_throughput.csv, runtime_throughput.svg
// and the machine-readable BENCH_runtime.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/svg.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "runtime/incremental_scanner.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"

using namespace arb;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Replays a single-pool-per-block stream through a fresh
/// IncrementalScanner, discarding the first \p warmup events (first-touch
/// page faults, cache fill, cycle-cache population) and returning the
/// per-event apply latencies of the rest plus the aggregated counters.
struct StreamResult {
  std::vector<double> series_us;
  std::uint64_t solver_iterations = 0;
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  std::size_t repriced_cpmm = 0;
  std::size_t repriced_mixed = 0;
  std::size_t repriced_mixed_fast = 0;
  std::size_t repriced_mixed_generic = 0;
  double reprice_cpmm_us = 0.0;
  double reprice_mixed_us = 0.0;
  /// Per-event per-loop cost samples by kind (the event's kind-total
  /// divided by its loop count): the medians of these series are the
  /// per-solve medians the mixed-vs-CPMM ratio bar compares.
  std::vector<double> cpmm_loop_us_samples;
  std::vector<double> mixed_loop_us_samples;
};

StreamResult replay_stream(const market::MarketSnapshot& snapshot,
                           const core::ScannerConfig& config, int blocks,
                           int warmup) {
  auto scanner = bench::expect_ok(
      runtime::IncrementalScanner::create(snapshot, config, nullptr),
      "IncrementalScanner::create");
  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = blocks;
  stream_config.pools_per_block = 1;
  stream_config.seed = 99;
  runtime::ReplayUpdateStream stream(snapshot, stream_config);
  StreamResult result;
  int seen = 0;
  while (auto event = stream.next()) {
    std::vector<runtime::PoolUpdateEvent> batch{*event};
    const double start = now_us();
    const auto report = bench::expect_ok(scanner.apply(batch),
                                         "IncrementalScanner::apply");
    const double micros = now_us() - start;
    if (++seen <= warmup) continue;
    result.series_us.push_back(micros);
    result.solver_iterations += report.solver_iterations;
    result.warm_hits += report.warm_hits;
    result.warm_misses += report.warm_misses;
    result.repriced_cpmm += report.repriced_cpmm;
    result.repriced_mixed += report.repriced_mixed;
    result.repriced_mixed_fast += report.repriced_mixed_fast;
    result.repriced_mixed_generic += report.repriced_mixed_generic;
    result.reprice_cpmm_us += report.reprice_cpmm_us;
    result.reprice_mixed_us += report.reprice_mixed_us;
    if (report.repriced_cpmm > 0) {
      result.cpmm_loop_us_samples.push_back(
          report.reprice_cpmm_us / static_cast<double>(report.repriced_cpmm));
    }
    if (report.repriced_mixed > 0) {
      result.mixed_loop_us_samples.push_back(
          report.reprice_mixed_us /
          static_cast<double>(report.repriced_mixed));
    }
  }
  return result;
}

}  // namespace

int main() {
  const bool relaxed = std::getenv("ARB_BENCH_RELAXED") != nullptr;
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market::GeneratorConfig{})
          .filtered(market::PoolFilter{});
  core::ScannerConfig config;
  config.loop_lengths = {3};
  std::printf("market: %zu tokens, %zu pools\n", snapshot.graph.token_count(),
              snapshot.graph.pool_count());

  bench::FigureSink sink("runtime_throughput",
                         "streaming runtime vs batch rescan",
                         {"metric", "value"});
  bench::BenchJson json;

  // (a) Full-rescan baseline: enumerate + filter + optimize everything.
  std::size_t full_opportunities = 0;
  const bench::Timing full = bench::measure(
      [&] {
        full_opportunities =
            bench::expect_ok(core::scan_market(snapshot.graph,
                                               snapshot.prices, config),
                             "scan_market")
                .size();
      },
      /*warmup=*/3, /*runs=*/20);
  std::printf("full scan: %zu opportunities\n", full_opportunities);

  // (b) Incremental re-pricing under single-pool updates.
  const StreamResult incremental =
      replay_stream(snapshot, config, /*blocks=*/400, /*warmup=*/32);
  const double incremental_median_us = percentile(incremental.series_us, 0.50);
  const double incremental_p99_us = percentile(incremental.series_us, 0.99);
  const double full_median_us = full.median_ns * 1e-3;
  const double speedup = full_median_us / incremental_median_us;

  // (c) The same stream under Convex with warm-started barrier solves.
  core::ScannerConfig convex_config = config;
  convex_config.strategy = core::StrategyKind::kConvexOptimization;
  convex_config.convex_warm_start = true;
  const StreamResult convex_stream =
      replay_stream(snapshot, convex_config, /*blocks=*/400, /*warmup=*/32);
  const double convex_median_us = percentile(convex_stream.series_us, 0.50);
  const std::size_t convex_solves =
      convex_stream.warm_hits + convex_stream.warm_misses;
  const double warm_hit_rate =
      convex_solves == 0
          ? 0.0
          : static_cast<double>(convex_stream.warm_hits) /
                static_cast<double>(convex_solves);

  // (d) Service throughput: replay blocks shocking every pool, pushed
  // through the bounded queue + worker pool.
  runtime::ServiceConfig service_config;
  service_config.scanner = config;
  service_config.worker_threads = 4;
  service_config.max_batch = 256;
  auto service = bench::expect_ok(
      runtime::ScannerService::start(snapshot, service_config),
      "ScannerService::start");
  runtime::ReplayStreamConfig burst_config;
  burst_config.blocks = 20;
  burst_config.seed = 7;
  runtime::ReplayUpdateStream burst(snapshot, burst_config);
  std::size_t published = 0;
  const double burst_start = now_us();
  while (auto event = burst.next()) {
    if (service->publish(*event)) ++published;
  }
  service->drain();
  const double burst_us = now_us() - burst_start;
  const double events_per_sec =
      static_cast<double>(published) / (burst_us * 1e-6);
  const runtime::MetricsSnapshot metrics = service->metrics();
  service->stop();

  // (e) Mixed-venue stream: the same convex workload on a market where a
  // fifth of the pools are StableSwap and a fifth concentrated, so a
  // slice of the loop universe routes through the generic solver. The
  // per-kind counters split the cost of that slice out of the aggregate.
  market::GeneratorConfig mixed_gen;
  mixed_gen.stable_fraction = 0.2;
  mixed_gen.concentrated_fraction = 0.2;
  const market::MarketSnapshot mixed_snapshot =
      market::generate_snapshot(mixed_gen).filtered(market::PoolFilter{});
  const StreamResult mixed_stream = replay_stream(
      mixed_snapshot, convex_config, /*blocks=*/200, /*warmup=*/32);
  const double mixed_median_us = percentile(mixed_stream.series_us, 0.50);
  const double mixed_loop_cpmm_us =
      mixed_stream.repriced_cpmm == 0
          ? 0.0
          : mixed_stream.reprice_cpmm_us /
                static_cast<double>(mixed_stream.repriced_cpmm);
  const double mixed_loop_mixed_us =
      mixed_stream.repriced_mixed == 0
          ? 0.0
          : mixed_stream.reprice_mixed_us /
                static_cast<double>(mixed_stream.repriced_mixed);
  // Per-solve medians by kind: with the analytic mixed kernels on the
  // barrier fast path, a mixed solve should cost the same order as a
  // CPMM one rather than the generic solver's ~100x.
  const double mixed_loop_cpmm_median_us =
      mixed_stream.cpmm_loop_us_samples.empty()
          ? 0.0
          : percentile(mixed_stream.cpmm_loop_us_samples, 0.50);
  const double mixed_loop_mixed_median_us =
      mixed_stream.mixed_loop_us_samples.empty()
          ? 0.0
          : percentile(mixed_stream.mixed_loop_us_samples, 0.50);
  const double mixed_median_ratio =
      mixed_loop_cpmm_median_us > 0.0
          ? mixed_loop_mixed_median_us / mixed_loop_cpmm_median_us
          : 0.0;

  // (f) Shard sweep: identical precomputed event batches applied straight
  // through the IncrementalScanner at K ∈ {1, 2, 4, 8} shards on a shared
  // worker pool. Driving the scanner directly (no publish/drain race)
  // makes the per-K work deterministic — every K coalesces and re-prices
  // exactly the same dirty sets — so the sweep isolates the sharding
  // overhead instead of queue-timing noise. The ranked output is
  // bit-identical across K (the differential suite proves it); the
  // cross-K check below pins the ranked-set size as a cheap canary.
  struct SweepPoint {
    std::size_t shards = 1;
    double events_per_sec = 0.0;         ///< best of kSweepReps
    double median_events_per_sec = 0.0;  ///< median of kSweepReps
    double imbalance = 0.0;
    std::size_t ranked = 0;
  };
  // max_batch-sized slices of the same burst replay section (d) pushed
  // through the service.
  std::vector<std::vector<runtime::PoolUpdateEvent>> sweep_batches;
  {
    runtime::ReplayUpdateStream replay(snapshot, burst_config);
    std::vector<runtime::PoolUpdateEvent> current;
    while (auto event = replay.next()) {
      current.push_back(*event);
      if (current.size() == service_config.max_batch) {
        sweep_batches.push_back(std::move(current));
        current.clear();
      }
    }
    if (!current.empty()) sweep_batches.push_back(std::move(current));
  }
  std::size_t sweep_events = 0;
  for (const auto& batch : sweep_batches) sweep_events += batch.size();

  runtime::WorkerPool::Config sweep_pool_config;
  sweep_pool_config.threads = service_config.worker_threads;
  runtime::WorkerPool sweep_pool(sweep_pool_config);
  // Reps are interleaved round-robin across K so slow machine drift
  // (thermal, cache, background load) hits every K equally instead of
  // biasing whichever K happened to run first.
  constexpr int kSweepReps = 7;
  const std::vector<std::size_t> sweep_ks = {1, 2, 4, 8};
  std::vector<SweepPoint> sweep(sweep_ks.size());
  std::vector<std::vector<double>> sweep_rates(sweep_ks.size());
  std::vector<core::Opportunity> poll;  // capacity reused across polls
  for (int rep = 0; rep < kSweepReps; ++rep) {
    for (std::size_t i = 0; i < sweep_ks.size(); ++i) {
      auto sharded = bench::expect_ok(
          runtime::IncrementalScanner::create(snapshot, config, &sweep_pool,
                                              sweep_ks[i]),
          "IncrementalScanner::create (shard sweep)");
      const double t0 = now_us();
      for (const auto& batch : sweep_batches) {
        (void)bench::expect_ok(sharded.apply(batch), "apply (shard sweep)");
      }
      sharded.collect_into(poll);
      const double elapsed_us = now_us() - t0;
      sweep_rates[i].push_back(static_cast<double>(sweep_events) /
                               (elapsed_us * 1e-6));
      sweep[i].shards = sweep_ks[i];
      sweep[i].imbalance = sharded.plan().imbalance();
      sweep[i].ranked = poll.size();
    }
  }
  for (std::size_t i = 0; i < sweep_ks.size(); ++i) {
    std::vector<double>& rates = sweep_rates[i];
    std::sort(rates.begin(), rates.end());
    sweep[i].events_per_sec = rates.back();
    sweep[i].median_events_per_sec = rates[rates.size() / 2];
  }
  // Cheap cross-K sanity: every K must publish a ranked set of the same
  // size (the differential tests pin down full bit-identity).
  for (const SweepPoint& point : sweep) {
    if (point.ranked != sweep.front().ranked) {
      std::fprintf(stderr,
                   "FAIL: shard sweep ranked-set size diverged (K=%zu: %zu "
                   "vs K=%zu: %zu)\n",
                   point.shards, point.ranked, sweep.front().shards,
                   sweep.front().ranked);
      return 1;
    }
  }

  // (g) Pipelined sweep: identical batches through the staged epoch API —
  // begin_epoch(N+1) writes the back buffer while epoch N's lanes still
  // read the frozen front — at the same K grid, plus an inline serial
  // K=1 run (no worker pool at all) as the scaling denominator. Reps are
  // interleaved with the serial baseline for the same drift-fairness as
  // the (f) sweep.
  std::vector<SweepPoint> pipelined(sweep_ks.size());
  std::vector<std::vector<double>> pipelined_rates(sweep_ks.size());
  std::vector<double> serial_rates;
  for (int rep = 0; rep < kSweepReps; ++rep) {
    {
      auto serial = bench::expect_ok(
          runtime::IncrementalScanner::create(snapshot, config, nullptr),
          "IncrementalScanner::create (serial baseline)");
      const double t0 = now_us();
      for (const auto& batch : sweep_batches) {
        (void)bench::expect_ok(serial.apply(batch), "apply (serial)");
      }
      serial.collect_into(poll);
      serial_rates.push_back(static_cast<double>(sweep_events) /
                             ((now_us() - t0) * 1e-6));
    }
    for (std::size_t i = 0; i < sweep_ks.size(); ++i) {
      auto staged = bench::expect_ok(
          runtime::IncrementalScanner::create(snapshot, config, &sweep_pool,
                                              sweep_ks[i]),
          "IncrementalScanner::create (pipelined sweep)");
      const double t0 = now_us();
      bool inflight = false;
      for (const auto& batch : sweep_batches) {
        (void)bench::expect_ok(staged.begin_epoch(batch),
                               "begin_epoch (pipelined sweep)");
        if (inflight) {
          (void)bench::expect_ok(staged.wait_reprice(),
                                 "wait_reprice (pipelined sweep)");
        }
        staged.commit_epoch();
        staged.launch_reprice();
        inflight = true;
      }
      if (inflight) {
        (void)bench::expect_ok(staged.wait_reprice(),
                               "wait_reprice (pipelined sweep drain)");
      }
      staged.collect_into(poll);
      const double elapsed_us = now_us() - t0;
      pipelined_rates[i].push_back(static_cast<double>(sweep_events) /
                                   (elapsed_us * 1e-6));
      pipelined[i].shards = sweep_ks[i];
      pipelined[i].imbalance = staged.plan().imbalance();
      pipelined[i].ranked = poll.size();
    }
  }
  std::sort(serial_rates.begin(), serial_rates.end());
  const double serial_median = serial_rates[serial_rates.size() / 2];
  for (std::size_t i = 0; i < sweep_ks.size(); ++i) {
    std::vector<double>& rates = pipelined_rates[i];
    std::sort(rates.begin(), rates.end());
    pipelined[i].events_per_sec = rates.back();
    pipelined[i].median_events_per_sec = rates[rates.size() / 2];
  }
  // The pipelined path must publish the same ranked set as the plain
  // sharded path — the differential suite proves bit-identity; the size
  // check here is the cheap canary.
  for (const SweepPoint& point : pipelined) {
    if (point.ranked != sweep.front().ranked) {
      std::fprintf(stderr,
                   "FAIL: pipelined sweep ranked-set size diverged (K=%zu: "
                   "%zu vs %zu)\n",
                   point.shards, point.ranked, sweep.front().ranked);
      return 1;
    }
  }

  auto scanner = bench::expect_ok(
      runtime::IncrementalScanner::create(snapshot, config, nullptr),
      "IncrementalScanner::create");
  const auto& index = scanner.index();

  sink.labeled_row("full_scan_median_us", {full_median_us});
  sink.labeled_row("full_scan_p99_us", {full.p99_ns * 1e-3});
  sink.labeled_row("incremental_median_us", {incremental_median_us});
  sink.labeled_row("incremental_p99_us", {incremental_p99_us});
  sink.labeled_row("speedup_x", {speedup});
  sink.labeled_row("convex_median_us", {convex_median_us});
  sink.labeled_row("convex_warm_hit_rate", {warm_hit_rate});
  sink.labeled_row("convex_newton_iters",
                   {static_cast<double>(convex_stream.solver_iterations)});
  sink.labeled_row("universe_cycles",
                   {static_cast<double>(index.cycles().size())});
  sink.labeled_row("index_mean_fanout", {index.mean_fanout()});
  sink.labeled_row("index_max_fanout",
                   {static_cast<double>(index.max_fanout())});
  sink.labeled_row("service_events_per_sec", {events_per_sec});
  sink.labeled_row("service_batches", {static_cast<double>(metrics.batches)});
  sink.labeled_row("service_coalesced",
                   {static_cast<double>(metrics.events_coalesced)});
  sink.labeled_row("service_reprice_p50_us", {metrics.reprice_p50_us});
  sink.labeled_row("service_reprice_p99_us", {metrics.reprice_p99_us});
  sink.labeled_row("mixed_apply_median_us", {mixed_median_us});
  sink.labeled_row("mixed_loops_cpmm",
                   {static_cast<double>(mixed_stream.repriced_cpmm)});
  sink.labeled_row("mixed_loops_mixed",
                   {static_cast<double>(mixed_stream.repriced_mixed)});
  sink.labeled_row("mixed_loop_cpmm_us", {mixed_loop_cpmm_us});
  sink.labeled_row("mixed_loop_mixed_us", {mixed_loop_mixed_us});
  sink.labeled_row("mixed_loop_cpmm_median_us", {mixed_loop_cpmm_median_us});
  sink.labeled_row("mixed_loop_mixed_median_us",
                   {mixed_loop_mixed_median_us});
  sink.labeled_row("mixed_median_ratio", {mixed_median_ratio});
  sink.labeled_row("mixed_loops_fast",
                   {static_cast<double>(mixed_stream.repriced_mixed_fast)});
  sink.labeled_row("mixed_loops_generic",
                   {static_cast<double>(mixed_stream.repriced_mixed_generic)});
  for (const SweepPoint& point : sweep) {
    sink.labeled_row("shard" + std::to_string(point.shards) + "_events_per_sec",
                     {point.events_per_sec});
  }

  json.set("full_scan", full);
  json.set("incremental.median_us", incremental_median_us);
  json.set("incremental.p99_us", incremental_p99_us);
  json.set("incremental.events",
           static_cast<double>(incremental.series_us.size()));
  json.set("incremental.speedup_x", speedup);
  json.set("convex.median_us", convex_median_us);
  json.set("convex.warm_hit_rate", warm_hit_rate);
  json.set("convex.warm_hits", static_cast<double>(convex_stream.warm_hits));
  json.set("convex.warm_misses",
           static_cast<double>(convex_stream.warm_misses));
  json.set("convex.newton_iterations",
           static_cast<double>(convex_stream.solver_iterations));
  json.set("service.events_per_sec", events_per_sec);
  json.set("service.reprice_p50_us", metrics.reprice_p50_us);
  json.set("service.reprice_p99_us", metrics.reprice_p99_us);
  json.set("universe.cycles", static_cast<double>(index.cycles().size()));
  json.set("mixed.apply_median_us", mixed_median_us);
  json.set("mixed.events", static_cast<double>(mixed_stream.series_us.size()));
  json.set("mixed.loops_cpmm",
           static_cast<double>(mixed_stream.repriced_cpmm));
  json.set("mixed.loops_mixed",
           static_cast<double>(mixed_stream.repriced_mixed));
  json.set("mixed.loop_cpmm_us", mixed_loop_cpmm_us);
  json.set("mixed.loop_mixed_us", mixed_loop_mixed_us);
  json.set("mixed.loop_cpmm_median_us", mixed_loop_cpmm_median_us);
  json.set("mixed.loop_mixed_median_us", mixed_loop_mixed_median_us);
  json.set("mixed.median_ratio", mixed_median_ratio);
  json.set("mixed.loops_fast",
           static_cast<double>(mixed_stream.repriced_mixed_fast));
  json.set("mixed.loops_generic",
           static_cast<double>(mixed_stream.repriced_mixed_generic));
  for (const SweepPoint& point : sweep) {
    const std::string prefix = "shard_sweep.k" + std::to_string(point.shards);
    json.set(prefix + ".events_per_sec", point.events_per_sec);
    json.set(prefix + ".median_events_per_sec", point.median_events_per_sec);
    json.set(prefix + ".imbalance", point.imbalance);
    json.set(prefix + ".ranked", static_cast<double>(point.ranked));
  }
  json.set("shard_sweep.serial_k1.median_events_per_sec", serial_median);
  for (const SweepPoint& point : pipelined) {
    const std::string prefix = "shard_sweep.k" + std::to_string(point.shards);
    json.set(prefix + ".pipelined_events_per_sec", point.events_per_sec);
    json.set(prefix + ".pipelined_median_events_per_sec",
             point.median_events_per_sec);
  }
  if (!json.write("BENCH_runtime.json")) return 1;

  std::printf("\nincremental vs full rescan speedup: %.1fx (median)\n",
              speedup);
  std::printf("convex stream: median %.1fus, warm hit rate %.1f%%, "
              "%llu Newton iters\n",
              convex_median_us, 100.0 * warm_hit_rate,
              static_cast<unsigned long long>(
                  convex_stream.solver_iterations));
  std::printf("service: %.0f events/sec, reprice p50=%.1fus p99=%.1fus\n",
              events_per_sec, metrics.reprice_p50_us, metrics.reprice_p99_us);
  std::printf("mixed venue: apply median %.1fus, loops cpmm=%zu (%.1fus) "
              "mixed=%zu (%.1fus, fast=%zu generic=%zu)\n",
              mixed_median_us, mixed_stream.repriced_cpmm, mixed_loop_cpmm_us,
              mixed_stream.repriced_mixed, mixed_loop_mixed_us,
              mixed_stream.repriced_mixed_fast,
              mixed_stream.repriced_mixed_generic);
  std::printf("mixed venue medians: cpmm %.1fus, mixed %.1fus (ratio %.2fx)\n",
              mixed_loop_cpmm_median_us, mixed_loop_mixed_median_us,
              mixed_median_ratio);
  std::printf("shard sweep (best/median of %d):\n", kSweepReps);
  for (const SweepPoint& point : sweep) {
    std::printf(
        "  K=%zu: %.0f/%.0f events/sec, plan imbalance %.3f, %zu ranked\n",
        point.shards, point.events_per_sec, point.median_events_per_sec,
        point.imbalance, point.ranked);
  }
  std::printf("pipelined sweep (serial inline K=1 median %.0f ev/s):\n",
              serial_median);
  for (const SweepPoint& point : pipelined) {
    std::printf("  K=%zu: %.0f/%.0f events/sec pipelined\n", point.shards,
                point.events_per_sec, point.median_events_per_sec);
  }
  std::printf("metrics: %s\n", metrics.summary().c_str());

  SvgPlot plot("Streaming runtime: incremental re-price vs full rescan",
               "update event", "latency (µs)");
  SvgSeries incremental_points;
  incremental_points.name = "incremental apply";
  incremental_points.line = false;
  for (std::size_t i = 0; i < incremental.series_us.size(); ++i) {
    incremental_points.points.emplace_back(static_cast<double>(i),
                                           incremental.series_us[i]);
  }
  SvgSeries baseline;
  baseline.name = "full rescan (median)";
  baseline.points.emplace_back(0.0, full_median_us);
  baseline.points.emplace_back(
      static_cast<double>(incremental.series_us.size()), full_median_us);
  plot.add_series(std::move(incremental_points));
  plot.add_series(std::move(baseline));
  if (Status status = plot.write("runtime_throughput.svg"); !status.ok()) {
    std::fprintf(stderr, "svg write failed: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("figure written to runtime_throughput.svg\n");

  const double speedup_bar = relaxed ? 2.0 : 5.0;
  if (speedup < speedup_bar) {
    std::fprintf(stderr,
                 "FAIL: incremental speedup %.1fx below the %.1fx bar\n",
                 speedup, speedup_bar);
    return 1;
  }
  // Warm slots now survive profitless visits and the interior projection
  // rebuilds the tight Möbius chain on the perturbed pools, so even the
  // flickering loops of this replay stream should mostly resume warm.
  // The controlled small-perturbation workload in bench_solver_hotpath
  // holds the ≥95% bar; this bar checks realistic flickering traffic
  // keeps the cache engaged well past the old invalidate-on-gate ~46%.
  const double hit_bar = relaxed ? 0.5 : 0.6;
  if (convex_solves > 0 && warm_hit_rate < hit_bar) {
    std::fprintf(stderr,
                 "FAIL: convex stream warm hit rate %.2f below %.2f bar\n",
                 warm_hit_rate, hit_bar);
    return 1;
  }
  // Shard-throughput bar: K=4 must keep up with K=1 — the best sharded
  // rep against the single-shard *median*, so a genuine regression fails
  // while same-distribution scheduler jitter does not. Perf-smoke exports
  // ARB_BENCH_SHARD_STRICT=1 and demands sharded ≥ 1.0× the single-shard
  // median; un-relaxed local runs get 10% slack; plain relaxed runs
  // (slow/instrumented builds) skip the ratio entirely.
  const bool shard_strict = std::getenv("ARB_BENCH_SHARD_STRICT") != nullptr;
  const double k1_median = sweep[0].median_events_per_sec;
  const double k4_rate = sweep[2].events_per_sec;
  if (shard_strict || !relaxed) {
    const double shard_bar = shard_strict ? 1.0 : 0.9;
    if (k4_rate < shard_bar * k1_median) {
      std::fprintf(stderr,
                   "FAIL: 4-shard throughput %.0f ev/s below %.2fx the "
                   "single-shard median %.0f ev/s\n",
                   k4_rate, shard_bar, k1_median);
      return 1;
    }
  }
  // Pipelined-scaling bar: only perf-smoke (multi-core, quiet) exports
  // ARB_BENCH_PIPELINE_STRICT. Medians must not collapse as K grows
  // (0.95 tolerance absorbs same-distribution jitter), and K=8 pipelined
  // must beat 2.0× the serial inline median — the write/reprice overlap
  // plus lane parallelism has to buy real wall-clock, not just hide in
  // the shard bar above.
  if (std::getenv("ARB_BENCH_PIPELINE_STRICT") != nullptr) {
    for (std::size_t i = 1; i < pipelined.size(); ++i) {
      if (pipelined[i].median_events_per_sec <
          0.95 * pipelined[i - 1].median_events_per_sec) {
        std::fprintf(stderr,
                     "FAIL: pipelined throughput not monotone (K=%zu median "
                     "%.0f < 0.95x K=%zu median %.0f)\n",
                     pipelined[i].shards, pipelined[i].median_events_per_sec,
                     pipelined[i - 1].shards,
                     pipelined[i - 1].median_events_per_sec);
        return 1;
      }
    }
    if (pipelined.back().events_per_sec < 2.0 * serial_median) {
      std::fprintf(stderr,
                   "FAIL: K=8 pipelined %.0f ev/s below 2.0x the serial "
                   "inline median %.0f ev/s\n",
                   pipelined.back().events_per_sec, serial_median);
      return 1;
    }
  }
  // Mixed-venue fast-path bar: perf-smoke exports ARB_BENCH_MIXED_STRICT
  // and demands the per-solve mixed median stay within 5x the CPMM one —
  // the analytic stable/concentrated kernels on the barrier solver, not
  // the ~100x derivative-free generic route, must carry the mixed load.
  if (std::getenv("ARB_BENCH_MIXED_STRICT") != nullptr) {
    if (mixed_stream.repriced_mixed == 0 ||
        mixed_loop_cpmm_median_us <= 0.0) {
      std::fprintf(stderr,
                   "FAIL: mixed strict bar ran without mixed/CPMM samples "
                   "(mixed=%zu, cpmm median %.1fus)\n",
                   mixed_stream.repriced_mixed, mixed_loop_cpmm_median_us);
      return 1;
    }
    const double mixed_bar = 5.0;
    if (mixed_median_ratio > mixed_bar) {
      std::fprintf(stderr,
                   "FAIL: mixed per-solve median %.1fus is %.2fx the CPMM "
                   "median %.1fus (bar %.1fx)\n",
                   mixed_loop_mixed_median_us, mixed_median_ratio,
                   mixed_loop_cpmm_median_us, mixed_bar);
      return 1;
    }
    if (mixed_stream.repriced_mixed_fast <
        mixed_stream.repriced_mixed_generic) {
      std::fprintf(stderr,
                   "FAIL: generic solves (%zu) outnumber fast-path solves "
                   "(%zu) on the mixed stream\n",
                   mixed_stream.repriced_mixed_generic,
                   mixed_stream.repriced_mixed_fast);
      return 1;
    }
  }
  return 0;
}
