// Streaming-runtime throughput on the Section VI sample market:
//   (a) full scan_market rescan latency (the batch baseline),
//   (b) incremental re-price latency under single-pool updates via the
//       pool→cycle index (the runtime's claim: work ∝ affected loops),
//   (c) end-to-end events/sec through the ScannerService with its
//       metrics layer reporting p50/p99 re-price latency.
// Emits runtime_throughput.csv plus runtime_throughput.svg (per-event
// incremental latency against the full-rescan baseline).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/svg.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "runtime/incremental_scanner.hpp"
#include "runtime/replay_stream.hpp"
#include "runtime/service.hpp"

using namespace arb;

namespace {

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market::GeneratorConfig{})
          .filtered(market::PoolFilter{});
  core::ScannerConfig config;
  config.loop_lengths = {3};
  std::printf("market: %zu tokens, %zu pools\n", snapshot.graph.token_count(),
              snapshot.graph.pool_count());

  bench::FigureSink sink("runtime_throughput",
                         "streaming runtime vs batch rescan",
                         {"metric", "value"});

  // (a) Full-rescan baseline: enumerate + filter + optimize everything.
  constexpr int kFullRuns = 20;
  StreamingStats full_us;
  for (int i = 0; i < kFullRuns; ++i) {
    const double start = now_us();
    const auto opportunities =
        bench::expect_ok(core::scan_market(snapshot.graph, snapshot.prices,
                                           config),
                         "scan_market");
    full_us.add(now_us() - start);
    if (i == 0) {
      std::printf("full scan: %zu opportunities\n", opportunities.size());
    }
  }

  // (b) Incremental re-pricing under single-pool updates.
  auto scanner = bench::expect_ok(
      runtime::IncrementalScanner::create(snapshot, config, nullptr),
      "IncrementalScanner::create");
  runtime::ReplayStreamConfig stream_config;
  stream_config.blocks = 400;
  stream_config.pools_per_block = 1;
  stream_config.seed = 99;
  runtime::ReplayUpdateStream stream(snapshot, stream_config);
  StreamingStats incremental_us;
  std::vector<double> incremental_series;
  while (auto event = stream.next()) {
    std::vector<runtime::PoolUpdateEvent> batch{*event};
    const double start = now_us();
    (void)bench::expect_ok(scanner.apply(batch), "IncrementalScanner::apply");
    const double micros = now_us() - start;
    incremental_us.add(micros);
    incremental_series.push_back(micros);
  }

  const double speedup = full_us.mean() / incremental_us.mean();
  const auto& index = scanner.index();

  // (c) Service throughput: replay blocks shocking every pool, pushed
  // through the bounded queue + worker pool.
  runtime::ServiceConfig service_config;
  service_config.scanner = config;
  service_config.worker_threads = 4;
  service_config.max_batch = 256;
  auto service = bench::expect_ok(
      runtime::ScannerService::start(snapshot, service_config),
      "ScannerService::start");
  runtime::ReplayStreamConfig burst_config;
  burst_config.blocks = 20;
  burst_config.seed = 7;
  runtime::ReplayUpdateStream burst(snapshot, burst_config);
  std::size_t published = 0;
  const double burst_start = now_us();
  while (auto event = burst.next()) {
    if (service->publish(*event)) ++published;
  }
  service->drain();
  const double burst_us = now_us() - burst_start;
  const double events_per_sec =
      static_cast<double>(published) / (burst_us * 1e-6);
  const runtime::MetricsSnapshot metrics = service->metrics();
  service->stop();

  sink.labeled_row("full_scan_mean_us", {full_us.mean()});
  sink.labeled_row("incremental_mean_us", {incremental_us.mean()});
  sink.labeled_row("incremental_p99_us",
                   {percentile(incremental_series, 0.99)});
  sink.labeled_row("speedup_x", {speedup});
  sink.labeled_row("universe_cycles",
                   {static_cast<double>(index.cycles().size())});
  sink.labeled_row("index_mean_fanout", {index.mean_fanout()});
  sink.labeled_row("index_max_fanout",
                   {static_cast<double>(index.max_fanout())});
  sink.labeled_row("service_events_per_sec", {events_per_sec});
  sink.labeled_row("service_batches", {static_cast<double>(metrics.batches)});
  sink.labeled_row("service_coalesced",
                   {static_cast<double>(metrics.events_coalesced)});
  sink.labeled_row("service_reprice_p50_us", {metrics.reprice_p50_us});
  sink.labeled_row("service_reprice_p99_us", {metrics.reprice_p99_us});

  std::printf("\nincremental vs full rescan speedup: %.1fx\n", speedup);
  std::printf("service: %.0f events/sec, reprice p50=%.1fus p99=%.1fus\n",
              events_per_sec, metrics.reprice_p50_us, metrics.reprice_p99_us);
  std::printf("metrics: %s\n", metrics.summary().c_str());

  SvgPlot plot("Streaming runtime: incremental re-price vs full rescan",
               "update event", "latency (µs)");
  SvgSeries incremental_points;
  incremental_points.name = "incremental apply";
  incremental_points.line = false;
  for (std::size_t i = 0; i < incremental_series.size(); ++i) {
    incremental_points.points.emplace_back(static_cast<double>(i),
                                           incremental_series[i]);
  }
  SvgSeries baseline;
  baseline.name = "full rescan (mean)";
  baseline.points.emplace_back(0.0, full_us.mean());
  baseline.points.emplace_back(
      static_cast<double>(incremental_series.size()), full_us.mean());
  plot.add_series(std::move(incremental_points));
  plot.add_series(std::move(baseline));
  if (Status status = plot.write("runtime_throughput.svg"); !status.ok()) {
    std::fprintf(stderr, "svg write failed: %s\n",
                 status.error().to_string().c_str());
    return 1;
  }
  std::printf("figure written to runtime_throughput.svg\n");

  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: incremental speedup %.1fx below the 5x bar\n",
                 speedup);
    return 1;
  }
  return 0;
}
