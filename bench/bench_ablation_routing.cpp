// Ablation: order splitting vs unsplit routing (the Danos et al. global-
// routing idea the paper builds on). On a pair served by several routes,
// sweeps the trade size and reports the output of the water-filling
// split against the best single path — splitting's edge grows with size
// because it spreads price impact.

#include "amm/path.hpp"
#include "bench/bench_util.hpp"
#include "core/routing.hpp"

using namespace arb;

int main() {
  const TokenId a{0};
  const TokenId b{1};
  const TokenId c{2};
  amm::CpmmPool direct1(PoolId{0}, a, b, 1'000.0, 2'000.0);
  amm::CpmmPool direct2(PoolId{1}, a, b, 400.0, 900.0);
  amm::CpmmPool leg_ac(PoolId{2}, a, c, 800.0, 800.0);
  amm::CpmmPool leg_cb(PoolId{3}, c, b, 700.0, 1'500.0);
  const std::vector<amm::PoolPath> paths{
      *amm::PoolPath::create({amm::Hop{&direct1, a}}),
      *amm::PoolPath::create({amm::Hop{&direct2, a}}),
      *amm::PoolPath::create(
          {amm::Hop{&leg_ac, a}, amm::Hop{&leg_cb, c}})};

  bench::FigureSink sink(
      "ablation_routing", "order splitting vs best single path",
      {"budget", "split_output", "single_output", "improvement_pct",
       "paths_funded"});

  for (double budget = 5.0; budget <= 640.0; budget *= 2.0) {
    const auto split =
        bench::expect_ok(core::optimal_route_split(paths, budget), "split");
    const double single = bench::expect_ok(
        core::best_single_path_output(paths, budget), "single");
    std::size_t funded = 0;
    for (double d : split.inputs) {
      if (d > 1e-9) ++funded;
    }
    sink.row({budget, split.total_output, single,
              100.0 * (split.total_output / single - 1.0),
              static_cast<double>(funded)});
  }
  std::printf("shape check: the split's advantage over the best single "
              "path grows with trade size, and more paths get funded as "
              "the budget grows\n\n");
  return 0;
}
