// Section V worked example: paper-reported numbers vs ours, as a table.
// This is the tightest quantitative check in the reproduction — every
// row should match the paper to its printed precision.

#include "bench/bench_util.hpp"
#include "core/convex.hpp"
#include "core/single_start.hpp"
#include "tests/core/fixtures.hpp"

using namespace arb;

int main() {
  const core::testing::Section5Market m;
  const graph::Cycle loop = m.loop();

  const auto rotations = bench::expect_ok(
      core::evaluate_all_rotations(m.graph, m.prices, loop), "rotations");
  const auto convex = bench::expect_ok(
      core::solve_convex(m.graph, m.prices, loop), "convex");

  bench::FigureSink sink("section5",
                         "worked example, paper value vs measured",
                         {"quantity", "paper", "measured"});
  sink.labeled_row("input_start_X", {27.0, rotations[0].input});
  sink.labeled_row("profit_X_tokens", {16.8, rotations[0].profits[0].amount});
  sink.labeled_row("monetized_X_usd", {33.7, rotations[0].monetized_usd});
  sink.labeled_row("input_start_Y", {31.5, rotations[1].input});
  sink.labeled_row("profit_Y_tokens", {19.7, rotations[1].profits[0].amount});
  sink.labeled_row("monetized_Y_usd", {201.1, rotations[1].monetized_usd});
  sink.labeled_row("input_start_Z", {16.4, rotations[2].input});
  sink.labeled_row("profit_Z_tokens", {10.3, rotations[2].profits[0].amount});
  sink.labeled_row("monetized_Z_usd", {205.6, rotations[2].monetized_usd});
  sink.labeled_row("convex_usd", {206.1, convex.outcome.monetized_usd});
  sink.labeled_row("convex_in_X", {31.3, convex.inputs[0]});
  sink.labeled_row("convex_out_Y", {47.6, convex.outputs[0]});
  sink.labeled_row("convex_in_Y", {42.6, convex.inputs[1]});
  sink.labeled_row("convex_out_Z", {24.8, convex.outputs[1]});
  sink.labeled_row("convex_in_Z", {17.1, convex.inputs[2]});
  sink.labeled_row("convex_out_X", {31.3, convex.outputs[2]});
  sink.labeled_row("convex_retain_Y", {5.0, convex.outcome.profits[1].amount});
  sink.labeled_row("convex_retain_Z", {7.7, convex.outcome.profits[2].amount});
  return 0;
}
