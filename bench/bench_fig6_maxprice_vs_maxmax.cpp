// Fig. 6: scatter of monetized profit — MaxPrice vs MaxMax over all
// length-3 arbitrage loops. The paper's point: MaxPrice is *unreliable* —
// a visible fraction of points falls strictly below the 45° line.

#include "bench/bench_util.hpp"

using namespace arb;

int main() {
  const core::MarketStudy study = bench::section6_study(3);

  bench::FigureSink sink("fig6", "MaxPrice vs MaxMax (scatter points)",
                         {"loop_id", "maxmax_usd", "maxprice_usd",
                          "shortfall_usd"});

  std::size_t suboptimal = 0;
  double total_shortfall = 0.0;
  for (std::size_t loop_id = 0; loop_id < study.loops.size(); ++loop_id) {
    const core::LoopComparison& row = study.loops[loop_id];
    const double shortfall =
        row.max_max.monetized_usd - row.max_price.monetized_usd;
    sink.row({static_cast<double>(loop_id), row.max_max.monetized_usd,
              row.max_price.monetized_usd, shortfall});
    if (shortfall > 1e-9) {
      ++suboptimal;
      total_shortfall += shortfall;
    }
  }
  std::printf("loops where MaxPrice left money on the table: %zu/%zu "
              "(total shortfall $%.2f) — the paper's conclusion that "
              "starting from the highest-priced token is not reliable\n\n",
              suboptimal, study.loops.size(), total_shortfall);
  return 0;
}
