// Loop-length study on the Section VI market: how opportunity count and
// value scale with loop length. The paper evaluates lengths 3 and 4
// (appendix); this bench extends the sweep to length 5 and adds the
// per-length profit distribution, quantifying why short loops dominate
// practice (the bulk of the value sits at length 3 while the enumeration
// cost explodes with length).

#include <chrono>

#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "graph/cycle_enumeration.hpp"

using namespace arb;

int main() {
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market::GeneratorConfig{})
          .filtered(market::PoolFilter{});

  bench::FigureSink sink(
      "loop_length_study", "arbitrage structure vs loop length",
      {"length", "cycles", "arb_loops", "maxmax_total_usd",
       "maxmax_mean_usd", "maxmax_p95_usd", "enumeration_ms"});

  for (std::size_t length = 2; length <= 5; ++length) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto cycles =
        graph::enumerate_fixed_length_cycles(snapshot.graph, length);
    const double enum_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const auto loops = graph::filter_arbitrage(snapshot.graph, cycles);

    StreamingStats profits;
    std::vector<double> sample;
    for (const graph::Cycle& loop : loops) {
      core::SingleStartOptions options;
      options.use_bisection = false;  // closed form; sweep is large
      const auto outcome = bench::expect_ok(
          core::evaluate_max_max(snapshot.graph, snapshot.prices, loop,
                                 options),
          "maxmax");
      profits.add(outcome.monetized_usd);
      sample.push_back(outcome.monetized_usd);
    }
    sink.row({static_cast<double>(length), static_cast<double>(cycles.size()),
              static_cast<double>(loops.size()), profits.sum(),
              profits.mean(),
              sample.empty() ? 0.0 : percentile(sample, 0.95), enum_ms});
  }
  std::printf("shape check: loop count explodes with length while total "
              "extractable value plateaus — longer loops mostly re-combine "
              "the same mispriced pools\n\n");
  return 0;
}
