// Whole-graph routing bench: correctness differentials plus timing bars
// for the three solve tiers (direct chain / water-filling bisection /
// flow-form barrier program). Emits BENCH_routing.json.
//
// Correctness checks are always strict: on an all-CPMM disjoint path set
// the flow-form barrier solve must agree with the water-filling closed
// form to 1e-6 relative, and every split must beat the best single path.
// The *timing* bars (water-filling beats the barrier solve by a healthy
// factor; a routed query stays sub-millisecond median) are same-run
// relative and only enforced with ARB_BENCH_ROUTING_STRICT=1 — shared CI
// hardware reports them without failing the build.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/flow_nlp.hpp"
#include "core/router.hpp"
#include "core/routing.hpp"
#include "graph/token_graph.hpp"

using namespace arb;

namespace {

double relative_difference(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale > 0.0 ? std::abs(a - b) / scale : 0.0;
}

}  // namespace

int main() {
  const bool strict = std::getenv("ARB_BENCH_ROUTING_STRICT") != nullptr;
  bench::BenchJson json;
  bench::FigureSink sink("routing", "whole-graph routing timings",
                         {"metric", "value"});
  bool failed = false;

  graph::TokenGraph graph;
  const TokenId a = graph.add_token("A");
  const TokenId b = graph.add_token("B");
  const TokenId c = graph.add_token("C");
  const TokenId d = graph.add_token("D");
  const PoolId direct1 = graph.add_pool(a, b, 10'000.0, 20'000.0);
  const PoolId direct2 = graph.add_pool(a, b, 4'000.0, 9'000.0);
  const PoolId leg_ac = graph.add_pool(a, c, 8'000.0, 8'000.0);
  const PoolId leg_cb = graph.add_pool(c, b, 7'000.0, 15'000.0);
  const PoolId leg_ad =
      graph.add_stable_pool(a, d, 20'000.0, 20'000.0, 200.0);
  const PoolId leg_db = graph.add_concentrated_pool(
      d, b, /*liquidity=*/60'000.0, /*price=*/2.0, /*p_lo=*/1.0,
      /*p_hi=*/4.0);

  const std::vector<std::vector<PoolId>> cpmm_paths{
      {direct1}, {direct2}, {leg_ac, leg_cb}};
  const std::vector<std::vector<PoolId>> mixed_paths{
      {direct1}, {direct2}, {leg_ac, leg_cb}, {leg_ad, leg_db}};
  const double budget = 500.0;

  // -- Differential: barrier flow solve vs water-filling closed form ------
  auto water = bench::expect_ok(
      core::optimal_route_split(graph, a, b, cpmm_paths, budget),
      "water-filling split");
  if (water.used_flow_solver) {
    std::fprintf(stderr,
                 "FAIL: all-CPMM disjoint split left the fast path\n");
    failed = true;
  }
  auto instance = bench::expect_ok(
      core::FlowInstance::for_swap(graph, a, b, cpmm_paths, budget),
      "for_swap");
  core::FlowContext flow_ctx;
  const core::FlowOptions flow_options;
  auto flow = bench::expect_ok(solve_flow(instance, flow_options, flow_ctx),
                               "flow solve");
  const double disagreement =
      relative_difference(water.total_output, flow.objective);
  json.set("diff.water_vs_flow_relative", disagreement);
  sink.labeled_row("water_vs_flow_rel", {disagreement});
  if (disagreement > 1e-6) {
    std::fprintf(stderr,
                 "FAIL: flow solve disagrees with water-filling by %.3g\n",
                 disagreement);
    failed = true;
  }

  const double single = bench::expect_ok(
      core::best_single_path_output(graph, a, b, cpmm_paths, budget),
      "single path");
  json.set("diff.split_vs_single_improvement_pct",
           100.0 * (water.total_output / single - 1.0));
  if (water.total_output < single * (1.0 - 1e-9)) {
    std::fprintf(stderr, "FAIL: split lost to the best single path\n");
    failed = true;
  }

  // Mixed venues must route through the flow solver and still beat the
  // best single path.
  auto mixed = bench::expect_ok(
      core::optimal_route_split(graph, a, b, mixed_paths, budget),
      "mixed split");
  if (!mixed.used_flow_solver) {
    std::fprintf(stderr, "FAIL: mixed-venue split skipped the flow solver\n");
    failed = true;
  }
  const double mixed_single = bench::expect_ok(
      core::best_single_path_output(graph, a, b, mixed_paths, budget),
      "mixed single path");
  json.set("diff.mixed_total_output", mixed.total_output);
  if (mixed.total_output < mixed_single * (1.0 - 1e-9)) {
    std::fprintf(stderr,
                 "FAIL: mixed split lost to the best single path\n");
    failed = true;
  }

  // -- Timings -------------------------------------------------------------
  const bench::Timing water_timing = bench::measure([&] {
    (void)bench::expect_ok(
        core::optimal_route_split(graph, a, b, cpmm_paths, budget),
        "water-filling split");
  });
  const bench::Timing flow_timing = bench::measure([&] {
    (void)bench::expect_ok(solve_flow(instance, flow_options, flow_ctx),
                           "flow solve");
  });
  core::RouterContext router_ctx;
  core::RouteQuery query;
  query.token_in = a;
  query.token_out = b;
  query.amount_in = budget;
  query.max_hops = 2;
  const bench::Timing route_timing = bench::measure([&] {
    (void)bench::expect_ok(core::route(graph, query, router_ctx), "route");
  });
  json.set("water_filling", water_timing);
  json.set("flow_solve", flow_timing);
  json.set("route_query", route_timing);
  const double speedup = flow_timing.median_ns / water_timing.median_ns;
  json.set("water_vs_flow_speedup_x", speedup);
  sink.labeled_row("water_median_ns", {water_timing.median_ns});
  sink.labeled_row("flow_median_ns", {flow_timing.median_ns});
  sink.labeled_row("route_median_ns", {route_timing.median_ns});
  sink.labeled_row("water_vs_flow_speedup_x", {speedup});
  std::printf("water %.0fns vs flow %.0fns (%.1fx), routed query %.0fns\n",
              water_timing.median_ns, flow_timing.median_ns, speedup,
              route_timing.median_ns);

  // Same-run relative bars: the closed form should beat the barrier
  // program comfortably, and a whole routed query (enumeration included)
  // should stay under a millisecond at the median on dedicated hardware.
  if (strict) {
    if (speedup < 1.5) {
      std::fprintf(stderr, "FAIL: water-filling only %.2fx faster than "
                   "the flow solve (bar: 1.5x)\n", speedup);
      failed = true;
    }
    if (route_timing.median_ns > 1e6) {
      std::fprintf(stderr, "FAIL: routed query median %.0fns exceeds 1ms\n",
                   route_timing.median_ns);
      failed = true;
    }
  }

  if (!json.write("BENCH_routing.json")) return 1;
  return failed ? 1 : 0;
}
