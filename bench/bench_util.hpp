#pragma once

// Shared helpers for the figure-reproduction harness: every bench binary
// prints the series behind one of the paper's figures as an aligned table
// and writes the same rows to a CSV file next to the binary, so the
// figures can be re-plotted externally.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/comparison.hpp"
#include "market/generator.hpp"

namespace arb::bench {

/// Column-aligned stdout table + CSV sink.
class FigureSink {
 public:
  FigureSink(std::string figure_id, std::string title,
             std::vector<std::string> columns)
      : figure_id_(std::move(figure_id)),
        columns_(std::move(columns)),
        csv_path_(figure_id_ + ".csv"),
        csv_stream_(csv_path_),
        csv_(csv_stream_) {
    std::printf("== %s — %s ==\n", figure_id_.c_str(), title.c_str());
    for (const std::string& c : columns_) std::printf("%18s", c.c_str());
    std::printf("\n");
    csv_.header(columns_);
  }

  ~FigureSink() {
    std::printf("-- %zu rows; series written to %s --\n\n", rows_,
                csv_path_.c_str());
  }

  void row(const std::vector<double>& values) {
    for (double v : values) std::printf("%18.6g", v);
    std::printf("\n");
    for (double v : values) csv_.cell(v);
    csv_.end_row();
    ++rows_;
  }

  /// First cell is a label, rest numeric.
  void labeled_row(const std::string& label,
                   const std::vector<double>& values) {
    std::printf("%18s", label.c_str());
    for (double v : values) std::printf("%18.6g", v);
    std::printf("\n");
    csv_.cell(label);
    for (double v : values) csv_.cell(v);
    csv_.end_row();
    ++rows_;
  }

 private:
  std::string figure_id_;
  std::vector<std::string> columns_;
  std::string csv_path_;
  std::ofstream csv_stream_;
  CsvWriter csv_;
  std::size_t rows_ = 0;
};

/// The empirical market used by the Section VI benches (Figs. 5-10):
/// default generator config — 51 tokens, 208 pools, 123 length-3 loops
/// after the paper's quality filter.
inline core::MarketStudy section6_study(std::size_t loop_length) {
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market::GeneratorConfig{});
  auto study = core::run_market_study(snapshot, loop_length);
  if (!study.ok()) {
    std::fprintf(stderr, "market study failed: %s\n",
                 study.error().to_string().c_str());
    std::exit(1);
  }
  return *std::move(study);
}

/// Exits with a message if a Result is an error (benches fail loudly).
template <typename T>
T expect_ok(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.error().to_string().c_str());
    std::exit(1);
  }
  // value()&& moves the payload out (works for move-only types too).
  return std::move(result).value();
}

}  // namespace arb::bench
