#pragma once

// Shared helpers for the figure-reproduction harness: every bench binary
// prints the series behind one of the paper's figures as an aligned table
// and writes the same rows to a CSV file next to the binary, so the
// figures can be re-plotted externally.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "core/comparison.hpp"
#include "market/generator.hpp"

namespace arb::bench {

/// Robust summary of repeated timed runs (nanoseconds).
struct Timing {
  double median_ns = 0.0;
  double p99_ns = 0.0;
  double min_ns = 0.0;
  int runs = 0;
};

/// Times \p fn with warm-up iterations (discarded: first-touch page
/// faults, cache fill, branch training) followed by \p runs measured
/// iterations, and summarizes with order statistics instead of a single
/// wall-clock — medians are insensitive to the scheduler hiccups that
/// used to make single-shot numbers jump around.
template <typename Fn>
Timing measure(Fn&& fn, int warmup = 5, int runs = 50) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    ns.push_back(std::chrono::duration<double, std::nano>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  Timing t;
  t.runs = runs;
  t.min_ns = *std::min_element(ns.begin(), ns.end());
  t.median_ns = percentile(ns, 0.50);
  t.p99_ns = percentile(ns, 0.99);
  return t;
}

/// Flat key→value JSON sink for machine-readable bench results (the
/// BENCH_*.json artifacts CI uploads). Keys are written in insertion
/// order; use dotted keys ("cold.median_ns") for grouping.
class BenchJson {
 public:
  void set(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    fields_.emplace_back(key, buffer);
  }

  void set(const std::string& key, const Timing& timing) {
    set(key + ".median_ns", timing.median_ns);
    set(key + ".p99_ns", timing.p99_ns);
    set(key + ".min_ns", timing.min_ns);
    set(key + ".runs", static_cast<double>(timing.runs));
  }

  void set_string(const std::string& key, const std::string& value) {
    std::string escaped;
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    fields_.emplace_back(key, "\"" + escaped + "\"");
  }

  /// Writes the object to \p path and reports the location on stdout.
  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    out << "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out << "  \"" << fields_[i].first << "\": " << fields_[i].second;
      if (i + 1 < fields_.size()) out << ",";
      out << "\n";
    }
    out << "}\n";
    std::printf("bench json written to %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  ///< rendered
};

/// Column-aligned stdout table + CSV sink.
class FigureSink {
 public:
  FigureSink(std::string figure_id, std::string title,
             std::vector<std::string> columns)
      : figure_id_(std::move(figure_id)),
        columns_(std::move(columns)),
        csv_path_(figure_id_ + ".csv"),
        csv_stream_(csv_path_),
        csv_(csv_stream_) {
    std::printf("== %s — %s ==\n", figure_id_.c_str(), title.c_str());
    for (const std::string& c : columns_) std::printf("%18s", c.c_str());
    std::printf("\n");
    csv_.header(columns_);
  }

  ~FigureSink() {
    std::printf("-- %zu rows; series written to %s --\n\n", rows_,
                csv_path_.c_str());
  }

  void row(const std::vector<double>& values) {
    for (double v : values) std::printf("%18.6g", v);
    std::printf("\n");
    for (double v : values) csv_.cell(v);
    csv_.end_row();
    ++rows_;
  }

  /// First cell is a label, rest numeric.
  void labeled_row(const std::string& label,
                   const std::vector<double>& values) {
    std::printf("%18s", label.c_str());
    for (double v : values) std::printf("%18.6g", v);
    std::printf("\n");
    csv_.cell(label);
    for (double v : values) csv_.cell(v);
    csv_.end_row();
    ++rows_;
  }

 private:
  std::string figure_id_;
  std::vector<std::string> columns_;
  std::string csv_path_;
  std::ofstream csv_stream_;
  CsvWriter csv_;
  std::size_t rows_ = 0;
};

/// The empirical market used by the Section VI benches (Figs. 5-10):
/// default generator config — 51 tokens, 208 pools, 123 length-3 loops
/// after the paper's quality filter.
inline core::MarketStudy section6_study(std::size_t loop_length) {
  const market::MarketSnapshot snapshot =
      market::generate_snapshot(market::GeneratorConfig{});
  auto study = core::run_market_study(snapshot, loop_length);
  if (!study.ok()) {
    std::fprintf(stderr, "market study failed: %s\n",
                 study.error().to_string().c_str());
    std::exit(1);
  }
  return *std::move(study);
}

/// Exits with a message if a Result is an error (benches fail loudly).
template <typename T>
T expect_ok(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 result.error().to_string().c_str());
    std::exit(1);
  }
  // value()&& moves the payload out (works for move-only types too).
  return std::move(result).value();
}

/// Status overload for payload-free operations (staged epoch calls, ...).
inline void expect_ok(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 status.error().to_string().c_str());
    std::exit(1);
  }
}

}  // namespace arb::bench
