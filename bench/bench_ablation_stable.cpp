// Ablation: AMM curve choice on the pegged leg of a loop.
//
// The paper is CPMM-only; this bench swaps the stable-pair leg of a
// triangle (USDC/USDT) for a Curve-style StableSwap pool of the same
// reserves and mispricing, and sweeps the amplification A. Because the
// stable curve is much deeper near the peg, the same mispricing supports
// a far larger optimal trade — the optimizer layer (curve-agnostic
// golden-section) handles both without modification.

#include "amm/generic_path.hpp"
#include "bench/bench_util.hpp"

using namespace arb;

int main() {
  const TokenId usdc{0};
  const TokenId usdt{1};
  const TokenId weth{2};
  // CPMM legs: USDT -> WETH -> USDC with a 1.6% edge.
  const amm::CpmmPool usdt_weth(PoolId{1}, usdt, weth, 1'830'000.0, 1'000.0);
  const amm::CpmmPool weth_usdc(PoolId{2}, weth, usdc, 1'000.0, 1'860'000.0);

  bench::FigureSink sink(
      "ablation_stable",
      "pegged-leg curve choice: CPMM vs StableSwap(A), same reserves",
      {"amplification", "optimal_input_usdc", "profit_usdc",
       "input_vs_cpmm", "profit_vs_cpmm"});

  // Baseline: the pegged leg as a CPMM pool.
  const amm::CpmmPool cpmm_leg(PoolId{0}, usdc, usdt, 1'004'000.0,
                               996'000.0, 0.0004);
  const amm::GenericPath cpmm_loop({amm::swap_fn(cpmm_leg, usdc),
                                    amm::swap_fn(usdt_weth, usdt),
                                    amm::swap_fn(weth_usdc, weth)});
  amm::GenericOptimizeOptions options;
  options.initial_scale = 1'000.0;
  const auto cpmm_trade =
      bench::expect_ok(amm::optimize_input_generic(cpmm_loop, options),
                       "cpmm baseline");
  std::printf("CPMM baseline: input %.1f USDC, profit %.2f USDC\n\n",
              cpmm_trade.input, cpmm_trade.profit);

  for (const double amplification : {0.05, 1.0, 5.0, 20.0, 100.0, 500.0,
                                     2000.0}) {
    const amm::StablePool stable_leg(PoolId{0}, usdc, usdt, 1'004'000.0,
                                     996'000.0, amplification, 0.0004);
    const amm::GenericPath loop({amm::swap_fn(stable_leg, usdc),
                                 amm::swap_fn(usdt_weth, usdt),
                                 amm::swap_fn(weth_usdc, weth)});
    const auto trade = bench::expect_ok(
        amm::optimize_input_generic(loop, options), "stable loop");
    sink.row({amplification, trade.input, trade.profit,
              cpmm_trade.input > 0.0 ? trade.input / cpmm_trade.input : 0.0,
              cpmm_trade.profit > 0.0 ? trade.profit / cpmm_trade.profit
                                      : 0.0});
  }
  std::printf("shape check: optimal input and profit grow monotonically "
              "with A (deeper curve, same mispricing), approaching the "
              "CPMM baseline as A -> 0\n\n");
  return 0;
}
