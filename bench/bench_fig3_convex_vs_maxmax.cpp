// Fig. 3: monetized profit of the Convex Optimization strategy vs the
// MaxMax strategy across the P_x sweep — Convex dominates everywhere.

#include "bench/bench_util.hpp"
#include "core/convex.hpp"
#include "core/single_start.hpp"
#include "tests/core/fixtures.hpp"

using namespace arb;

int main() {
  core::testing::Section5Market m;
  const graph::Cycle loop = m.loop();

  bench::FigureSink sink(
      "fig3", "Convex vs MaxMax monetized profit vs P_x",
      {"P_x", "maxmax_usd", "convex_usd", "gap_usd"});

  std::size_t dominated = 0;
  std::size_t rows = 0;
  double max_gap = 0.0;
  for (double px = 0.2; px <= 20.0 + 1e-9; px += 0.2) {
    m.prices.set_price(m.x, px);
    const auto maxmax = bench::expect_ok(
        core::evaluate_max_max(m.graph, m.prices, loop), "maxmax");
    const auto convex = bench::expect_ok(
        core::solve_convex(m.graph, m.prices, loop), "convex");
    const double gap = convex.outcome.monetized_usd - maxmax.monetized_usd;
    sink.row({px, maxmax.monetized_usd, convex.outcome.monetized_usd, gap});
    ++rows;
    if (gap >= -1e-6) ++dominated;
    max_gap = std::max(max_gap, gap);
  }
  std::printf("Convex >= MaxMax on %zu/%zu sweep points (largest gap "
              "$%.3f) — the paper's Fig. 3 dominance\n\n",
              dominated, rows, max_gap);
  return 0;
}
