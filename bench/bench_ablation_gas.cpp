// Ablation: transaction-cost sensitivity.
//
// The paper monetizes gross profit; a real bot pays gas. This bench runs
// the Section VI market and asks, per gas-price level: how many of the
// 123 arbitrage loops stay profitable after gas, and how much net value
// remains, for MaxMax vs Convex Optimization. The thin tail of loops dies
// first — at high gas only the fat opportunities survive.

#include "bench/bench_util.hpp"
#include "core/gas.hpp"

using namespace arb;

int main() {
  const core::MarketStudy study = bench::section6_study(3);
  std::printf("market: %zu loops, gross MaxMax total $%.2f\n\n",
              study.loops.size(), [&] {
                double total = 0.0;
                for (const auto& row : study.loops) {
                  total += row.max_max.monetized_usd;
                }
                return total;
              }());

  bench::FigureSink sink(
      "ablation_gas", "profitability vs gas price (3-hop bundles)",
      {"gas_price_gwei", "bundle_cost_usd", "maxmax_loops_alive",
       "convex_loops_alive", "maxmax_net_usd", "convex_net_usd"});

  for (double gwei : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
    core::GasModel gas;
    gas.gas_price_gwei = gwei;
    std::size_t maxmax_alive = 0;
    std::size_t convex_alive = 0;
    double maxmax_net = 0.0;
    double convex_net = 0.0;
    for (const core::LoopComparison& row : study.loops) {
      const std::size_t swaps = row.cycle.length();
      if (gas.profitable_after_gas(row.max_max, swaps)) {
        ++maxmax_alive;
        maxmax_net += gas.net_profit_usd(row.max_max, swaps);
      }
      if (gas.profitable_after_gas(row.convex.outcome, swaps)) {
        ++convex_alive;
        convex_net += gas.net_profit_usd(row.convex.outcome, swaps);
      }
    }
    sink.row({gwei, gas.bundle_cost_usd(3), static_cast<double>(maxmax_alive),
              static_cast<double>(convex_alive), maxmax_net, convex_net});
  }
  std::printf("shape check: loop survival and net value fall monotonically "
              "with gas price; MaxMax and Convex die together (their gross "
              "profits nearly coincide on market data)\n\n");
  return 0;
}
