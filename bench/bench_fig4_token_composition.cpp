// Fig. 4: the profit composition (net amount of X, Y, Z retained by the
// Convex Optimization strategy) as P_x sweeps 0 → 20 in 0.2 steps. The
// paper observes the optima cluster on about six distinct positions,
// i.e. the solution is piecewise constant-ish in the price, not linear.

#include <map>

#include "bench/bench_util.hpp"
#include "core/convex.hpp"
#include "tests/core/fixtures.hpp"

using namespace arb;

int main() {
  core::testing::Section5Market m;
  const graph::Cycle loop = m.loop();

  bench::FigureSink sink(
      "fig4", "profit token composition (net X,Y,Z) vs P_x",
      {"P_x", "net_X", "net_Y", "net_Z", "monetized_usd"});

  // Cluster detection: round the composition and count distinct patterns.
  std::map<std::string, std::size_t> clusters;
  for (double px = 0.2; px <= 20.0 + 1e-9; px += 0.2) {
    m.prices.set_price(m.x, px);
    const auto convex = bench::expect_ok(
        core::solve_convex(m.graph, m.prices, loop), "convex");
    const auto& p = convex.outcome.profits;
    sink.row({px, p[0].amount, p[1].amount, p[2].amount,
              convex.outcome.monetized_usd});
    char key[64];
    std::snprintf(key, sizeof(key), "%.0f/%.0f/%.0f", p[0].amount,
                  p[1].amount, p[2].amount);
    ++clusters[key];
  }
  std::printf("distinct (rounded) composition positions: %zu — the paper "
              "reports the optima lie mainly in ~6 positions\n",
              clusters.size());
  for (const auto& [key, count] : clusters) {
    std::printf("  composition (X/Y/Z) %s: %zu sweep points\n", key.c_str(),
                count);
  }
  std::printf("\n");
  return 0;
}
