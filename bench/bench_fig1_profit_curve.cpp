// Fig. 1: arbitrage profit Δx_out − Δx_in as a function of the input
// Δx_in on the Section V loop, showing the maximum where the marginal
// return d out/d in crosses 1.

#include "amm/path.hpp"
#include "bench/bench_util.hpp"
#include "tests/core/fixtures.hpp"

using namespace arb;

int main() {
  const core::testing::Section5Market m;
  const graph::Cycle loop = m.loop();
  const amm::PoolPath path = loop.path(m.graph, 0);
  const amm::OptimalTrade optimum = amm::optimize_input_analytic(path);

  bench::FigureSink sink(
      "fig1", "profit vs input (max where d out/d in = 1)",
      {"input_x", "output_x", "profit_x", "marginal_return"});
  for (double input = 0.0; input <= 80.0; input += 1.0) {
    const math::Dual out = path.evaluate_dual(input);
    sink.row({input, out.value, out.value - input, out.deriv});
  }

  std::printf("analytic optimum: input %.4f, profit %.4f, marginal %.6f\n",
              optimum.input, optimum.profit,
              path.evaluate_dual(optimum.input).deriv);
  std::printf("paper shape check: profit rises, peaks near %.1f, declines; "
              "marginal return crosses 1 at the peak\n\n",
              optimum.input);
  return 0;
}
