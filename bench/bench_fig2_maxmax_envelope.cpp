// Fig. 2: monetized arbitrage profit of the three start-token strategies
// and the MaxMax envelope while P_x sweeps 0 → 20 (P_y = $10.2,
// P_z = $20 fixed). MaxMax must be the pointwise max of the three curves,
// and the MaxPrice pick (start Z) must be beaten by start-X for high P_x.

#include "bench/bench_util.hpp"
#include "core/single_start.hpp"
#include "tests/core/fixtures.hpp"

using namespace arb;

int main() {
  core::testing::Section5Market m;
  const graph::Cycle loop = m.loop();

  bench::FigureSink sink(
      "fig2", "per-start monetized profit + MaxMax envelope vs P_x",
      {"P_x", "start_X_usd", "start_Y_usd", "start_Z_usd", "maxmax_usd"});

  std::size_t maxmax_is_envelope = 0;
  std::size_t rows = 0;
  std::size_t x_beats_maxprice_pick = 0;
  for (double px = 0.2; px <= 20.0 + 1e-9; px += 0.2) {
    m.prices.set_price(m.x, px);
    const auto rotations = bench::expect_ok(
        core::evaluate_all_rotations(m.graph, m.prices, loop), "rotations");
    const auto maxmax = bench::expect_ok(
        core::evaluate_max_max(m.graph, m.prices, loop), "maxmax");
    sink.row({px, rotations[0].monetized_usd, rotations[1].monetized_usd,
              rotations[2].monetized_usd, maxmax.monetized_usd});
    const double best = std::max({rotations[0].monetized_usd,
                                  rotations[1].monetized_usd,
                                  rotations[2].monetized_usd});
    ++rows;
    if (maxmax.monetized_usd == best) ++maxmax_is_envelope;
    if (rotations[0].monetized_usd > rotations[2].monetized_usd) {
      ++x_beats_maxprice_pick;
    }
  }
  std::printf("MaxMax equals the envelope on %zu/%zu sweep points\n",
              maxmax_is_envelope, rows);
  std::printf("start-X beats the MaxPrice pick (start-Z, P_z=$20) on %zu "
              "points — the paper's Fig. 2 observation that MaxPrice is "
              "unreliable\n\n",
              x_beats_maxprice_pick);
  return 0;
}
