// Fig. 9 (appendix): length-4 loops — Convex Optimization vs the four
// traditional starts. Same shape as Fig. 5: all points on/under the line.

#include "bench/bench_util.hpp"

using namespace arb;

int main() {
  const core::MarketStudy study = bench::section6_study(4);
  std::printf("length-4 arbitrage loops found: %zu\n\n", study.loops.size());

  bench::FigureSink sink(
      "fig9", "Convex vs traditional per start, length-4 loops",
      {"loop_id", "start_index", "convex_usd", "traditional_usd"});

  std::size_t points = 0;
  std::size_t under_or_on = 0;
  for (std::size_t loop_id = 0; loop_id < study.loops.size(); ++loop_id) {
    const core::LoopComparison& row = study.loops[loop_id];
    for (std::size_t s = 0; s < row.traditional.size(); ++s) {
      sink.row({static_cast<double>(loop_id), static_cast<double>(s),
                row.convex.outcome.monetized_usd,
                row.traditional[s].monetized_usd});
      ++points;
      if (row.traditional[s].monetized_usd <=
          row.convex.outcome.monetized_usd + 1e-6) {
        ++under_or_on;
      }
    }
  }
  std::printf("points on/under the 45-degree line: %zu/%zu (paper: all)\n\n",
              under_or_on, points);
  return 0;
}
