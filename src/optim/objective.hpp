#pragma once

/// \file objective.hpp
/// Virtual-dispatch description of a smooth function for the hot solver
/// path. The original std::function-based SmoothFunction (newton.hpp)
/// remains for tests and one-off callers, but closures that capture state
/// may heap-allocate on construction and force the minimizer to return
/// freshly allocated vectors; this interface writes derivatives into
/// caller-owned buffers so a steady-state solve performs no allocations.

#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::optim {

class SmoothObjective {
 public:
  virtual ~SmoothObjective() = default;

  [[nodiscard]] virtual double value(const math::Vector& x) const = 0;
  /// Writes ∇f(x) into \p grad (reshaped to x.size(), capacity-preserving).
  virtual void gradient_into(const math::Vector& x,
                             math::Vector& grad) const = 0;
  /// Writes ∇²f(x) into \p hess.
  virtual void hessian_into(const math::Vector& x,
                            math::Matrix& hess) const = 0;
  /// Domain membership (barrier: strict feasibility). Default: all of Rⁿ.
  [[nodiscard]] virtual bool in_domain(const math::Vector& x) const {
    (void)x;
    return true;
  }

  /// Extra acceptance test for a line-search trial step from \p from to
  /// \p to, checked in addition to in_domain(to). Default: accept.
  /// The barrier centering objective uses this to veto steps that
  /// collapse a constraint slack by orders of magnitude in one iteration
  /// (an Armijo-approved dive toward the boundary wrecks the Hessian
  /// conditioning and traps Newton in a tangential crawl).
  [[nodiscard]] virtual bool step_ok(const math::Vector& from,
                                     const math::Vector& to) const {
    (void)from;
    (void)to;
    return true;
  }
};

}  // namespace arb::optim
