#include "optim/newton.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "math/linear_solve.hpp"
#include "optim/line_search.hpp"

namespace arb::optim {
namespace {

/// Adapts the std::function-based SmoothFunction to the virtual
/// interface so the legacy entry point shares the workspace kernel.
class FunctionObjective final : public SmoothObjective {
 public:
  explicit FunctionObjective(const SmoothFunction& fn) : fn_(fn) {}

  [[nodiscard]] double value(const math::Vector& x) const override {
    return fn_.value(x);
  }
  void gradient_into(const math::Vector& x,
                     math::Vector& grad) const override {
    grad = fn_.gradient(x);
  }
  void hessian_into(const math::Vector& x,
                    math::Matrix& hess) const override {
    hess = fn_.hessian(x);
  }
  [[nodiscard]] bool in_domain(const math::Vector& x) const override {
    return !fn_.in_domain || fn_.in_domain(x);
  }

 private:
  const SmoothFunction& fn_;
};

}  // namespace

Status newton_minimize_into(const SmoothObjective& fn, const math::Vector& x0,
                            const NewtonOptions& options, SolveWorkspace& ws,
                            NewtonStats& stats) {
  if (!fn.in_domain(x0)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "newton_minimize: x0 outside domain");
  }

  stats = NewtonStats{};
  ws.x = x0;  // capacity-preserving copy; x0 may alias ws.x
  stats.value = fn.value(ws.x);
  if (!std::isfinite(stats.value)) {
    return make_error(ErrorCode::kNumericFailure,
                      "newton_minimize: non-finite objective at x0");
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    stats.iterations = iter;
    fn.gradient_into(ws.x, ws.grad);
    stats.gradient_norm = ws.grad.norm_inf();
    if (!ws.grad.all_finite()) {
      return make_error(ErrorCode::kNumericFailure,
                        "newton_minimize: non-finite gradient");
    }
    if (stats.gradient_norm <= options.gradient_tolerance) {
      stats.converged = true;
      return Status::success();
    }

    fn.hessian_into(ws.x, ws.hess);
    // Newton step solves H d = -grad.
    ws.neg_grad = ws.grad;
    ws.neg_grad *= -1.0;
    auto step = math::regularized_spd_solve_into(ws.hess, ws.neg_grad,
                                                 ws.direction, ws.linear);
    if (!step) {
      return make_error(ErrorCode::kNumericFailure,
                        "newton_minimize: Hessian solve failed: " +
                            step.error().message);
    }

    // Newton decrement: λ² = -gradᵀd; stop when the predicted decrease
    // λ²/2 is negligible — in absolute terms or relative to the
    // magnitude of f (below which decreases are floating-point noise).
    const double decrement_sq = -ws.grad.dot(ws.direction);
    const double noise_floor =
        options.decrement_tolerance +
        options.relative_decrement_tolerance * std::abs(stats.value);
    if (decrement_sq * 0.5 <= noise_floor) {
      stats.converged = true;
      return Status::success();
    }

    const auto search = backtracking_line_search(
        fn, ws.x, ws.direction, stats.value, ws.grad.dot(ws.direction),
        ws.candidate);
    if (!search.success) {
      // A failed line search at a tiny decrement is convergence in
      // disguise (floating-point floor); otherwise it is a genuine error.
      if (decrement_sq * 0.5 <= std::max(1e-8, noise_floor)) {
        stats.converged = true;
        return Status::success();
      }
      ARB_LOG_DEBUG("newton_minimize line search failed: iter="
                    << iter << " f=" << stats.value << " |g|="
                    << stats.gradient_norm << " |d|="
                    << ws.direction.norm_inf() << " gTd="
                    << ws.grad.dot(ws.direction) << " decrement2="
                    << decrement_sq << " x=" << ws.x.to_string());
      return make_error(ErrorCode::kNumericFailure,
                        "newton_minimize: line search failed at iteration " +
                            std::to_string(iter));
    }
    // The accepted trial point x + step·direction is already built in
    // ws.candidate.
    ws.x = ws.candidate;
    stats.value = search.value;
    if (!std::isfinite(stats.value)) {
      return make_error(ErrorCode::kNumericFailure,
                        "newton_minimize: objective went non-finite at "
                        "iteration " +
                            std::to_string(iter));
    }
  }

  fn.gradient_into(ws.x, ws.grad);
  stats.converged = ws.grad.norm_inf() <= options.gradient_tolerance * 1e3;
  if (!stats.converged) {
    ARB_LOG_DEBUG("newton_minimize: hit max_iterations with ||g||="
                  << stats.gradient_norm);
  }
  return Status::success();
}

Result<NewtonReport> newton_minimize(const SmoothFunction& fn,
                                     const math::Vector& x0,
                                     const NewtonOptions& options) {
  ARB_REQUIRE(static_cast<bool>(fn.value) && static_cast<bool>(fn.gradient) &&
                  static_cast<bool>(fn.hessian),
              "newton_minimize requires value/gradient/hessian callbacks");
  const FunctionObjective objective(fn);
  SolveWorkspace ws;
  NewtonStats stats;
  auto status = newton_minimize_into(objective, x0, options, ws, stats);
  if (!status) return status.error();

  NewtonReport report;
  report.x = std::move(ws.x);
  report.value = stats.value;
  report.gradient_norm = stats.gradient_norm;
  report.iterations = stats.iterations;
  report.converged = stats.converged;
  return report;
}

}  // namespace arb::optim
