#include "optim/newton.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "math/linear_solve.hpp"
#include "optim/line_search.hpp"

namespace arb::optim {

Result<NewtonReport> newton_minimize(const SmoothFunction& fn,
                                     const math::Vector& x0,
                                     const NewtonOptions& options) {
  ARB_REQUIRE(static_cast<bool>(fn.value) && static_cast<bool>(fn.gradient) &&
                  static_cast<bool>(fn.hessian),
              "newton_minimize requires value/gradient/hessian callbacks");
  if (fn.in_domain && !fn.in_domain(x0)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "newton_minimize: x0 outside domain");
  }

  NewtonReport report;
  report.x = x0;
  report.value = fn.value(x0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter;
    const math::Vector grad = fn.gradient(report.x);
    report.gradient_norm = grad.norm_inf();
    if (!grad.all_finite()) {
      return make_error(ErrorCode::kNumericFailure,
                        "newton_minimize: non-finite gradient");
    }
    if (report.gradient_norm <= options.gradient_tolerance) {
      report.converged = true;
      return report;
    }

    const math::Matrix hess = fn.hessian(report.x);
    // Newton step solves H d = -grad.
    math::Vector negative_grad = grad;
    negative_grad *= -1.0;
    auto step = math::regularized_spd_solve(hess, negative_grad);
    if (!step) {
      return make_error(ErrorCode::kNumericFailure,
                        "newton_minimize: Hessian solve failed: " +
                            step.error().message);
    }
    const math::Vector& direction = *step;

    // Newton decrement: λ² = -gradᵀd; stop when the predicted decrease
    // λ²/2 is negligible.
    const double decrement_sq = -grad.dot(direction);
    if (decrement_sq * 0.5 <= options.decrement_tolerance) {
      report.converged = true;
      return report;
    }

    const auto search = backtracking_line_search(
        fn.value, fn.in_domain, report.x, direction, report.value,
        grad.dot(direction));
    if (!search.success) {
      // A failed line search at a tiny decrement is convergence in
      // disguise (floating-point floor); otherwise it is a genuine error.
      if (decrement_sq * 0.5 <= 1e-8) {
        report.converged = true;
        return report;
      }
      ARB_LOG_DEBUG("newton_minimize line search failed: iter="
                    << iter << " f=" << report.value << " |g|="
                    << report.gradient_norm << " |d|=" << direction.norm_inf()
                    << " gTd=" << grad.dot(direction) << " decrement2="
                    << decrement_sq << " x=" << report.x.to_string());
      return make_error(ErrorCode::kNumericFailure,
                        "newton_minimize: line search failed at iteration " +
                            std::to_string(iter));
    }
    report.x += search.step * direction;
    report.value = search.value;
  }

  report.converged =
      fn.gradient(report.x).norm_inf() <= options.gradient_tolerance * 1e3;
  if (!report.converged) {
    ARB_LOG_DEBUG("newton_minimize: hit max_iterations with ||g||="
                  << report.gradient_norm);
  }
  return report;
}

}  // namespace arb::optim
