#pragma once

/// \file phase1.hpp
/// Phase-I feasibility: find a strictly feasible point of {g_i(x) < 0}
/// or certify that none exists (to tolerance).
///
/// Standard construction (Boyd & Vandenberghe §11.4): introduce a slack
/// t and solve
///
///   minimize t   subject to   g_i(x) − t <= 0,
///
/// which is strictly feasible for ANY x0 by picking t0 > max_i g_i(x0).
/// If the optimum has t* < 0, the x found is strictly feasible for the
/// original constraints; if t* > 0 the problem is infeasible. The
/// augmented problem is convex whenever the g_i are, so the existing
/// BarrierSolver solves it.
///
/// The arbitrage strategies construct their interior points analytically
/// (core/loop_nlp.hpp); phase-I makes the solver stack self-contained for
/// problems that cannot.

#include "common/result.hpp"
#include "optim/barrier_solver.hpp"
#include "optim/problem.hpp"
#include "optim/workspace.hpp"

namespace arb::optim {

struct Phase1Options {
  BarrierOptions barrier;
  /// Strictness margin: accept x only if max_i g_i(x) < -margin.
  double margin = 0.0;
};

/// Searches for a strictly feasible point starting the phase-I barrier
/// from \p x0 (any point; need not be feasible). Returns the point, or
/// kInfeasible when the phase-I optimum certifies there is none.
[[nodiscard]] Result<math::Vector> find_strictly_feasible(
    const NlpProblem& problem, const math::Vector& x0,
    const Phase1Options& options = {});

/// Workspace variant reusing \p ws for the augmented (n+1)-dimensional
/// barrier solve.
[[nodiscard]] Result<math::Vector> find_strictly_feasible(
    const NlpProblem& problem, const math::Vector& x0,
    const Phase1Options& options, SolveWorkspace& ws);

/// Convenience: solve the problem end-to-end — phase-I from x0 if x0 is
/// not already strictly feasible, then the barrier solve.
[[nodiscard]] Result<BarrierReport> solve_with_phase1(
    const NlpProblem& problem, const math::Vector& x0,
    const Phase1Options& options = {});

/// Workspace variant of solve_with_phase1 writing into \p report.
[[nodiscard]] Status solve_with_phase1_into(const NlpProblem& problem,
                                            const math::Vector& x0,
                                            const Phase1Options& options,
                                            SolveWorkspace& ws,
                                            BarrierReport& report);

}  // namespace arb::optim
