#pragma once

/// \file problem.hpp
/// Abstract smooth NLP in standard form:
///
///   minimize f(x)   subject to  g_i(x) <= 0,  i = 0..m-1.
///
/// The arbitrage strategies maximize concave monetized profit, so they
/// implement this interface with f = -profit (convex) and convex g_i;
/// under those conditions BarrierSolver converges to the global optimum.

#include <cstddef>

#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::optim {

class NlpProblem {
 public:
  virtual ~NlpProblem() = default;

  /// Number of decision variables.
  [[nodiscard]] virtual std::size_t dimension() const = 0;

  /// Number of inequality constraints g_i(x) <= 0.
  [[nodiscard]] virtual std::size_t num_inequalities() const = 0;

  [[nodiscard]] virtual double objective(const math::Vector& x) const = 0;
  [[nodiscard]] virtual math::Vector objective_gradient(
      const math::Vector& x) const = 0;
  [[nodiscard]] virtual math::Matrix objective_hessian(
      const math::Vector& x) const = 0;

  [[nodiscard]] virtual double constraint(std::size_t i,
                                          const math::Vector& x) const = 0;
  [[nodiscard]] virtual math::Vector constraint_gradient(
      std::size_t i, const math::Vector& x) const = 0;
  [[nodiscard]] virtual math::Matrix constraint_hessian(
      std::size_t i, const math::Vector& x) const = 0;

  // Buffer-writing variants used by the allocation-free solver path.
  // Defaults delegate to the allocating virtuals above, so existing
  // problems keep working; hot transcriptions (loop_nlp, phase-1)
  // override these to write directly into the caller's buffer.
  virtual void objective_gradient_into(const math::Vector& x,
                                       math::Vector& grad) const;
  virtual void objective_hessian_into(const math::Vector& x,
                                      math::Matrix& hess) const;
  virtual void constraint_gradient_into(std::size_t i, const math::Vector& x,
                                        math::Vector& grad) const;
  virtual void constraint_hessian_into(std::size_t i, const math::Vector& x,
                                       math::Matrix& hess) const;

  /// True iff every g_i(x) < -margin (strict interior).
  [[nodiscard]] bool strictly_feasible(const math::Vector& x,
                                       double margin = 0.0) const;

  /// Max over i of g_i(x) (<= 0 means feasible). Returns -inf with no
  /// constraints.
  [[nodiscard]] double max_violation(const math::Vector& x) const;
};

}  // namespace arb::optim
