#pragma once

/// \file workspace.hpp
/// Reusable solver state threaded through the barrier interior-point
/// stack (newton → barrier_solver → phase1 → core strategies).
///
/// All buffers grow monotonically: after the first solve at the largest
/// problem dimension, subsequent solves of same-or-smaller problems touch
/// no allocator at all (verified by tests/optim/workspace_test.cpp using
/// math::allocation_count()). One workspace serves one thread; the
/// runtime keeps a workspace per worker.

#include <cstddef>

#include "math/linear_solve.hpp"
#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::optim {

class SolveWorkspace {
 public:
  /// Pre-grows every buffer for problems of dimension ≤ n. Optional —
  /// buffers also grow on demand — but calling it up front moves all
  /// allocations out of the solve.
  void reserve(std::size_t n) {
    x.reserve(n);
    grad.reserve(n);
    neg_grad.reserve(n);
    direction.reserve(n);
    candidate.reserve(n);
    constraint_grad.reserve(n);
    problem_scratch.reserve(n);
    hess.reserve(n, n);
    constraint_hess.reserve(n, n);
    linear.reserve(n);
    generic_chain.reserve(n);
    generic_rho.reserve(n);
    generic_rho_eval.reserve(n);
    generic_rho_comp.reserve(n);
  }

  // Newton-level state. `x` is the current iterate; newton_minimize_into
  // leaves the final iterate here.
  math::Vector x;
  math::Vector grad;       ///< gradient of the (centering) objective
  math::Vector neg_grad;   ///< right-hand side of the Newton system
  math::Vector direction;  ///< Newton step
  math::Vector candidate;  ///< line-search trial point
  math::Matrix hess;

  // Barrier-level accumulation buffers for per-constraint terms.
  math::Vector constraint_grad;
  math::Matrix constraint_hess;

  // Scratch for problem transcriptions that need a per-evaluation
  // temporary (phase-1 variable stripping, generic chains).
  math::Vector problem_scratch;

  // Derivative-free generic-solver scratch (core/generic_convex): the
  // forward-pass chain inputs and the coordinate-sweep fraction buffers.
  // Same monotone-growth discipline as the barrier buffers.
  math::Vector generic_chain;
  math::Vector generic_rho;
  math::Vector generic_rho_eval;
  math::Vector generic_rho_comp;

  math::LinearSolveScratch linear;
};

/// Terminal state of a previous barrier solve on the same cycle, reused
/// to warm-start the next solve when only pool reserves changed. The
/// caller defines the units of `x` (the runtime stores raw token amounts
/// so the cache survives re-normalization).
struct WarmStart {
  math::Vector x;      ///< primal iterate at the previous optimum
  double t = 0.0;      ///< final barrier sharpness of the previous solve
  bool valid = false;  ///< false until the first successful solve
};

}  // namespace arb::optim
