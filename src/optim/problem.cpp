#include "optim/problem.hpp"

#include <limits>

namespace arb::optim {

void NlpProblem::objective_gradient_into(const math::Vector& x,
                                         math::Vector& grad) const {
  grad = objective_gradient(x);
}

void NlpProblem::objective_hessian_into(const math::Vector& x,
                                        math::Matrix& hess) const {
  hess = objective_hessian(x);
}

void NlpProblem::constraint_gradient_into(std::size_t i, const math::Vector& x,
                                          math::Vector& grad) const {
  grad = constraint_gradient(i, x);
}

void NlpProblem::constraint_hessian_into(std::size_t i, const math::Vector& x,
                                         math::Matrix& hess) const {
  hess = constraint_hessian(i, x);
}

bool NlpProblem::strictly_feasible(const math::Vector& x,
                                   double margin) const {
  for (std::size_t i = 0; i < num_inequalities(); ++i) {
    if (!(constraint(i, x) < -margin)) return false;
  }
  return true;
}

double NlpProblem::max_violation(const math::Vector& x) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_inequalities(); ++i) {
    worst = std::max(worst, constraint(i, x));
  }
  return worst;
}

}  // namespace arb::optim
