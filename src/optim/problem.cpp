#include "optim/problem.hpp"

#include <limits>

namespace arb::optim {

bool NlpProblem::strictly_feasible(const math::Vector& x,
                                   double margin) const {
  for (std::size_t i = 0; i < num_inequalities(); ++i) {
    if (!(constraint(i, x) < -margin)) return false;
  }
  return true;
}

double NlpProblem::max_violation(const math::Vector& x) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_inequalities(); ++i) {
    worst = std::max(worst, constraint(i, x));
  }
  return worst;
}

}  // namespace arb::optim
