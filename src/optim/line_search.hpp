#pragma once

/// \file line_search.hpp
/// Backtracking (Armijo) line search with an optional domain guard, used
/// by both the unconstrained Newton solver and the barrier inner loop
/// (where the guard keeps iterates strictly inside the feasible region so
/// the log terms stay defined).

#include <functional>

#include "math/vector.hpp"
#include "optim/objective.hpp"

namespace arb::optim {

struct LineSearchOptions {
  double armijo_c = 1e-4;        ///< sufficient-decrease coefficient
  double shrink = 0.5;           ///< step shrink factor per backtrack
  double initial_step = 1.0;
  int max_backtracks = 60;
};

struct LineSearchResult {
  double step = 0.0;     ///< accepted step length (0 = failure)
  double value = 0.0;    ///< objective at the accepted point
  int evaluations = 0;
  bool success = false;
};

/// Searches x + t·direction for Armijo decrease of \p objective.
/// \p in_domain (may be null) rejects candidate points outright — used for
/// barrier feasibility. \p directional_derivative is ∇f(x)·direction and
/// must be negative (descent); otherwise the search fails immediately.
[[nodiscard]] LineSearchResult backtracking_line_search(
    const std::function<double(const math::Vector&)>& objective,
    const std::function<bool(const math::Vector&)>& in_domain,
    const math::Vector& x, const math::Vector& direction, double value_at_x,
    double directional_derivative, const LineSearchOptions& options = {});

/// Workspace variant: the trial point is built in \p candidate (reshaped,
/// capacity-preserving) instead of a fresh vector per backtrack, and the
/// accepted point — x + result.step·direction — is left in \p candidate
/// on success. Identical numerics to the callback overload.
[[nodiscard]] LineSearchResult backtracking_line_search(
    const SmoothObjective& objective, const math::Vector& x,
    const math::Vector& direction, double value_at_x,
    double directional_derivative, math::Vector& candidate,
    const LineSearchOptions& options = {});

}  // namespace arb::optim
