#include "optim/kkt.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace arb::optim {

double KktResiduals::worst() const {
  return std::max({stationarity, primal_feasibility, dual_feasibility,
                   complementarity});
}

bool KktResiduals::satisfied(double tolerance) const {
  return worst() <= tolerance;
}

KktResiduals evaluate_kkt(const NlpProblem& problem, const math::Vector& x,
                          const math::Vector& dual, SolveWorkspace& ws) {
  const std::size_t n = problem.dimension();
  const std::size_t m = problem.num_inequalities();
  ARB_REQUIRE(x.size() == n, "x dimension mismatch in evaluate_kkt");
  ARB_REQUIRE(dual.size() == m, "dual dimension mismatch in evaluate_kkt");

  KktResiduals res;
  problem.objective_gradient_into(x, ws.grad);
  for (std::size_t i = 0; i < m; ++i) {
    const double g = problem.constraint(i, x);
    res.primal_feasibility = std::max(res.primal_feasibility, g);
    res.dual_feasibility = std::max(res.dual_feasibility, -dual[i]);
    res.complementarity =
        std::max(res.complementarity, std::abs(dual[i] * g));
    problem.constraint_gradient_into(i, x, ws.constraint_grad);
    for (std::size_t k = 0; k < n; ++k) {
      ws.grad[k] += dual[i] * ws.constraint_grad[k];
    }
  }
  res.primal_feasibility = std::max(res.primal_feasibility, 0.0);
  res.dual_feasibility = std::max(res.dual_feasibility, 0.0);
  res.stationarity = ws.grad.norm_inf();
  return res;
}

KktResiduals evaluate_kkt(const NlpProblem& problem, const math::Vector& x,
                          const math::Vector& dual) {
  SolveWorkspace ws;
  return evaluate_kkt(problem, x, dual, ws);
}

}  // namespace arb::optim
