#include "optim/kkt.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace arb::optim {

double KktResiduals::worst() const {
  return std::max({stationarity, primal_feasibility, dual_feasibility,
                   complementarity});
}

bool KktResiduals::satisfied(double tolerance) const {
  return worst() <= tolerance;
}

KktResiduals evaluate_kkt(const NlpProblem& problem, const math::Vector& x,
                          const math::Vector& dual) {
  const std::size_t n = problem.dimension();
  const std::size_t m = problem.num_inequalities();
  ARB_REQUIRE(x.size() == n, "x dimension mismatch in evaluate_kkt");
  ARB_REQUIRE(dual.size() == m, "dual dimension mismatch in evaluate_kkt");

  KktResiduals res;
  math::Vector lagrangian_grad = problem.objective_gradient(x);
  for (std::size_t i = 0; i < m; ++i) {
    const double g = problem.constraint(i, x);
    res.primal_feasibility = std::max(res.primal_feasibility, g);
    res.dual_feasibility = std::max(res.dual_feasibility, -dual[i]);
    res.complementarity =
        std::max(res.complementarity, std::abs(dual[i] * g));
    const math::Vector gi = problem.constraint_gradient(i, x);
    for (std::size_t k = 0; k < n; ++k) {
      lagrangian_grad[k] += dual[i] * gi[k];
    }
  }
  res.primal_feasibility = std::max(res.primal_feasibility, 0.0);
  res.dual_feasibility = std::max(res.dual_feasibility, 0.0);
  res.stationarity = lagrangian_grad.norm_inf();
  return res;
}

}  // namespace arb::optim
