#include "optim/phase1.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace arb::optim {
namespace {

/// The phase-I program over z = (x, t): minimize t s.t. g_i(x) − t <= 0
/// and t >= lower. The lower bound keeps the program bounded below —
/// without it, problems whose feasible set extends to infinity make the
/// slack (and the Newton iterates) run away; any t < −margin certifies
/// strict feasibility, so clamping at a modestly negative lower bound
/// loses nothing.
class Phase1Problem final : public NlpProblem {
 public:
  Phase1Problem(const NlpProblem& original, double lower_bound)
      : original_(original), lower_bound_(lower_bound) {}

  [[nodiscard]] std::size_t dimension() const override {
    return original_.dimension() + 1;
  }
  [[nodiscard]] std::size_t num_inequalities() const override {
    return original_.num_inequalities() + 1;
  }

  [[nodiscard]] double objective(const math::Vector& z) const override {
    return z[original_.dimension()];
  }
  [[nodiscard]] math::Vector objective_gradient(
      const math::Vector& z) const override {
    math::Vector grad(z.size());
    grad[original_.dimension()] = 1.0;
    return grad;
  }
  [[nodiscard]] math::Matrix objective_hessian(
      const math::Vector& z) const override {
    return math::Matrix(z.size(), z.size());
  }

  void objective_gradient_into(const math::Vector& z,
                               math::Vector& grad) const override {
    grad.assign(z.size(), 0.0);
    grad[original_.dimension()] = 1.0;
  }
  void objective_hessian_into(const math::Vector& z,
                              math::Matrix& hess) const override {
    hess.assign(z.size(), z.size(), 0.0);
  }

  [[nodiscard]] double constraint(std::size_t i,
                                  const math::Vector& z) const override {
    if (i == original_.num_inequalities()) {
      return lower_bound_ - z[original_.dimension()];  // t >= lower
    }
    return original_.constraint(i, strip(z)) - z[original_.dimension()];
  }
  [[nodiscard]] math::Vector constraint_gradient(
      std::size_t i, const math::Vector& z) const override {
    math::Vector grad(z.size());
    constraint_gradient_into(i, z, grad);
    return grad;
  }
  [[nodiscard]] math::Matrix constraint_hessian(
      std::size_t i, const math::Vector& z) const override {
    math::Matrix hess(z.size(), z.size());
    constraint_hessian_into(i, z, hess);
    return hess;
  }

  void constraint_gradient_into(std::size_t i, const math::Vector& z,
                                math::Vector& grad) const override {
    grad.assign(z.size(), 0.0);
    if (i == original_.num_inequalities()) {
      grad[original_.dimension()] = -1.0;
      return;
    }
    original_.constraint_gradient_into(i, strip(z), inner_grad_);
    for (std::size_t k = 0; k < inner_grad_.size(); ++k) {
      grad[k] = inner_grad_[k];
    }
    grad[original_.dimension()] = -1.0;
  }
  void constraint_hessian_into(std::size_t i, const math::Vector& z,
                               math::Matrix& hess) const override {
    hess.assign(z.size(), z.size(), 0.0);
    if (i == original_.num_inequalities()) {
      return;  // linear bound
    }
    original_.constraint_hessian_into(i, strip(z), inner_hess_);
    for (std::size_t r = 0; r < inner_hess_.rows(); ++r) {
      for (std::size_t c = 0; c < inner_hess_.cols(); ++c) {
        hess(r, c) = inner_hess_(r, c);
      }
    }
  }

  [[nodiscard]] static math::Vector augment(const math::Vector& x, double t) {
    math::Vector z(x.size() + 1);
    for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i];
    z[x.size()] = t;
    return z;
  }

 private:
  /// Extracts the original variables into a reused scratch buffer (one
  /// evaluation at a time — evaluations never nest).
  [[nodiscard]] const math::Vector& strip(const math::Vector& z) const {
    strip_scratch_.resize(original_.dimension());
    for (std::size_t i = 0; i < strip_scratch_.size(); ++i) {
      strip_scratch_[i] = z[i];
    }
    return strip_scratch_;
  }

  const NlpProblem& original_;
  double lower_bound_;
  mutable math::Vector strip_scratch_;
  mutable math::Vector inner_grad_;
  mutable math::Matrix inner_hess_;
};

}  // namespace

Result<math::Vector> find_strictly_feasible(const NlpProblem& problem,
                                            const math::Vector& x0,
                                            const Phase1Options& options,
                                            SolveWorkspace& ws) {
  ARB_REQUIRE(x0.size() == problem.dimension(), "x0 dimension mismatch");
  if (problem.strictly_feasible(x0, options.margin)) {
    return x0;  // nothing to do
  }
  if (problem.num_inequalities() == 0) {
    return x0;  // unconstrained: everything is feasible
  }

  // Bound the slack at a comfortably negative value: any t below
  // -margin already certifies strict feasibility.
  const double lower_bound = -(1.0 + 10.0 * options.margin);
  const Phase1Problem phase1(problem, lower_bound);
  // t0 strictly above the worst violation makes (x0, t0) strictly
  // feasible for the augmented problem.
  const double worst = problem.max_violation(x0);
  const double t0 =
      std::max(worst + std::max(1.0, std::abs(worst)), lower_bound + 1.0);

  // The phase-I solve only needs *a* strictly feasible point, not the
  // optimum — stop at the first centering step that yields one (also
  // keeps x from drifting along unbounded directions of the augmented
  // feasible set).
  BarrierOptions barrier = options.barrier;
  const double margin = options.margin;
  barrier.early_stop = [&problem, margin](const math::Vector& z) {
    math::Vector x(problem.dimension());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = z[i];
    return problem.strictly_feasible(x, margin);
  };
  const BarrierSolver solver(barrier);
  BarrierReport report;
  auto status =
      solver.solve_into(phase1, Phase1Problem::augment(x0, t0), ws, report);
  if (!status) return status.error();

  math::Vector x(problem.dimension());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = report.x[i];
  if (!problem.strictly_feasible(x, options.margin)) {
    return make_error(ErrorCode::kInfeasible,
                      "phase-I optimum t=" +
                          std::to_string(report.objective) +
                          " certifies no strictly feasible point");
  }
  return x;
}

Result<math::Vector> find_strictly_feasible(const NlpProblem& problem,
                                            const math::Vector& x0,
                                            const Phase1Options& options) {
  SolveWorkspace ws;
  return find_strictly_feasible(problem, x0, options, ws);
}

Status solve_with_phase1_into(const NlpProblem& problem,
                              const math::Vector& x0,
                              const Phase1Options& options, SolveWorkspace& ws,
                              BarrierReport& report) {
  auto start = find_strictly_feasible(problem, x0, options, ws);
  if (!start) return start.error();
  const BarrierSolver solver(options.barrier);
  return solver.solve_into(problem, *start, ws, report);
}

Result<BarrierReport> solve_with_phase1(const NlpProblem& problem,
                                        const math::Vector& x0,
                                        const Phase1Options& options) {
  SolveWorkspace ws;
  BarrierReport report;
  auto status = solve_with_phase1_into(problem, x0, options, ws, report);
  if (!status) return status.error();
  return report;
}

}  // namespace arb::optim
