#include "optim/phase1.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace arb::optim {
namespace {

/// The phase-I program over z = (x, t): minimize t s.t. g_i(x) − t <= 0
/// and t >= lower. The lower bound keeps the program bounded below —
/// without it, problems whose feasible set extends to infinity make the
/// slack (and the Newton iterates) run away; any t < −margin certifies
/// strict feasibility, so clamping at a modestly negative lower bound
/// loses nothing.
class Phase1Problem final : public NlpProblem {
 public:
  Phase1Problem(const NlpProblem& original, double lower_bound)
      : original_(original), lower_bound_(lower_bound) {}

  [[nodiscard]] std::size_t dimension() const override {
    return original_.dimension() + 1;
  }
  [[nodiscard]] std::size_t num_inequalities() const override {
    return original_.num_inequalities() + 1;
  }

  [[nodiscard]] double objective(const math::Vector& z) const override {
    return z[original_.dimension()];
  }
  [[nodiscard]] math::Vector objective_gradient(
      const math::Vector& z) const override {
    math::Vector grad(z.size());
    grad[original_.dimension()] = 1.0;
    return grad;
  }
  [[nodiscard]] math::Matrix objective_hessian(
      const math::Vector& z) const override {
    return math::Matrix(z.size(), z.size());
  }

  [[nodiscard]] double constraint(std::size_t i,
                                  const math::Vector& z) const override {
    if (i == original_.num_inequalities()) {
      return lower_bound_ - z[original_.dimension()];  // t >= lower
    }
    return original_.constraint(i, strip(z)) - z[original_.dimension()];
  }
  [[nodiscard]] math::Vector constraint_gradient(
      std::size_t i, const math::Vector& z) const override {
    math::Vector grad(z.size());
    if (i == original_.num_inequalities()) {
      grad[original_.dimension()] = -1.0;
      return grad;
    }
    const math::Vector inner = original_.constraint_gradient(i, strip(z));
    for (std::size_t k = 0; k < inner.size(); ++k) grad[k] = inner[k];
    grad[original_.dimension()] = -1.0;
    return grad;
  }
  [[nodiscard]] math::Matrix constraint_hessian(
      std::size_t i, const math::Vector& z) const override {
    math::Matrix hess(z.size(), z.size());
    if (i == original_.num_inequalities()) {
      return hess;  // linear bound
    }
    const math::Matrix inner = original_.constraint_hessian(i, strip(z));
    for (std::size_t r = 0; r < inner.rows(); ++r) {
      for (std::size_t c = 0; c < inner.cols(); ++c) {
        hess(r, c) = inner(r, c);
      }
    }
    return hess;
  }

  [[nodiscard]] static math::Vector augment(const math::Vector& x, double t) {
    math::Vector z(x.size() + 1);
    for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i];
    z[x.size()] = t;
    return z;
  }

 private:
  [[nodiscard]] math::Vector strip(const math::Vector& z) const {
    math::Vector x(original_.dimension());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = z[i];
    return x;
  }

  const NlpProblem& original_;
  double lower_bound_;
};

}  // namespace

Result<math::Vector> find_strictly_feasible(const NlpProblem& problem,
                                            const math::Vector& x0,
                                            const Phase1Options& options) {
  ARB_REQUIRE(x0.size() == problem.dimension(), "x0 dimension mismatch");
  if (problem.strictly_feasible(x0, options.margin)) {
    return x0;  // nothing to do
  }
  if (problem.num_inequalities() == 0) {
    return x0;  // unconstrained: everything is feasible
  }

  // Bound the slack at a comfortably negative value: any t below
  // -margin already certifies strict feasibility.
  const double lower_bound = -(1.0 + 10.0 * options.margin);
  const Phase1Problem phase1(problem, lower_bound);
  // t0 strictly above the worst violation makes (x0, t0) strictly
  // feasible for the augmented problem.
  const double worst = problem.max_violation(x0);
  const double t0 =
      std::max(worst + std::max(1.0, std::abs(worst)), lower_bound + 1.0);

  // The phase-I solve only needs *a* strictly feasible point, not the
  // optimum — stop at the first centering step that yields one (also
  // keeps x from drifting along unbounded directions of the augmented
  // feasible set).
  BarrierOptions barrier = options.barrier;
  const double margin = options.margin;
  barrier.early_stop = [&problem, margin](const math::Vector& z) {
    math::Vector x(problem.dimension());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = z[i];
    return problem.strictly_feasible(x, margin);
  };
  const BarrierSolver solver(barrier);
  auto report = solver.solve(phase1, Phase1Problem::augment(x0, t0));
  if (!report) return report.error();

  math::Vector x(problem.dimension());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = report->x[i];
  if (!problem.strictly_feasible(x, options.margin)) {
    return make_error(ErrorCode::kInfeasible,
                      "phase-I optimum t=" +
                          std::to_string(report->objective) +
                          " certifies no strictly feasible point");
  }
  return x;
}

Result<BarrierReport> solve_with_phase1(const NlpProblem& problem,
                                        const math::Vector& x0,
                                        const Phase1Options& options) {
  auto start = find_strictly_feasible(problem, x0, options);
  if (!start) return start.error();
  const BarrierSolver solver(options.barrier);
  return solver.solve(problem, *start);
}

}  // namespace arb::optim
