#include "optim/barrier_solver.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "math/linear_solve.hpp"

namespace arb::optim {

BarrierSolver::BarrierSolver(BarrierOptions options)
    : options_(std::move(options)) {}

Result<BarrierReport> BarrierSolver::solve(const NlpProblem& problem,
                                           const math::Vector& x0) const {
  const std::size_t n = problem.dimension();
  const std::size_t m = problem.num_inequalities();
  ARB_REQUIRE(x0.size() == n, "x0 dimension mismatch");

  if (!problem.strictly_feasible(x0)) {
    return make_error(ErrorCode::kInfeasible,
                      "barrier solve requires strictly feasible start "
                      "(max violation " +
                          std::to_string(problem.max_violation(x0)) + ")");
  }
  if (m == 0) {
    // Pure Newton on f.
    SmoothFunction fn;
    fn.value = [&](const math::Vector& x) { return problem.objective(x); };
    fn.gradient = [&](const math::Vector& x) {
      return problem.objective_gradient(x);
    };
    fn.hessian = [&](const math::Vector& x) {
      return problem.objective_hessian(x);
    };
    auto inner = newton_minimize(fn, x0, options_.newton);
    if (!inner) return inner.error();
    BarrierReport report;
    report.x = inner->x;
    report.objective = inner->value;
    report.total_newton_iterations = inner->iterations;
    return report;
  }

  double t = options_.initial_t;
  math::Vector x = x0;
  BarrierReport report;

  const auto in_domain = [&](const math::Vector& candidate) {
    return candidate.all_finite() && problem.strictly_feasible(candidate);
  };

  for (int outer = 0; outer < options_.max_outer_iterations; ++outer) {
    report.outer_iterations = outer + 1;

    SmoothFunction fn;
    fn.in_domain = in_domain;
    fn.value = [&problem, t, m](const math::Vector& point) {
      double value = t * problem.objective(point);
      for (std::size_t i = 0; i < m; ++i) {
        const double g = problem.constraint(i, point);
        if (!(g < 0.0)) return std::numeric_limits<double>::infinity();
        value -= std::log(-g);
      }
      return value;
    };
    fn.gradient = [&problem, t, m, n](const math::Vector& point) {
      math::Vector grad = problem.objective_gradient(point);
      grad *= t;
      for (std::size_t i = 0; i < m; ++i) {
        const double g = problem.constraint(i, point);
        const math::Vector gi = problem.constraint_gradient(i, point);
        // d/dx [-log(-g)] = -g'/g  (g < 0).
        for (std::size_t k = 0; k < n; ++k) grad[k] += gi[k] / (-g);
      }
      return grad;
    };
    fn.hessian = [&problem, t, m, n](const math::Vector& point) {
      math::Matrix hess = problem.objective_hessian(point);
      hess *= t;
      for (std::size_t i = 0; i < m; ++i) {
        const double g = problem.constraint(i, point);
        const math::Vector gi = problem.constraint_gradient(i, point);
        const math::Matrix hi = problem.constraint_hessian(i, point);
        // ∇²[-log(-g)] = (g' g'ᵀ)/g² + (-1/g)·∇²g.
        const double inv_g = 1.0 / g;
        hess.add_outer_product(gi, gi, inv_g * inv_g);
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t c = 0; c < n; ++c) {
            hess(r, c) += (-inv_g) * hi(r, c);
          }
        }
      }
      return hess;
    };

    auto inner = newton_minimize(fn, x, options_.newton);
    if (!inner) {
      return make_error(ErrorCode::kNumericFailure,
                        "barrier inner Newton failed at t=" +
                            std::to_string(t) + ": " +
                            inner.error().message);
    }
    x = inner->x;
    report.total_newton_iterations += inner->iterations;

    if (options_.early_stop && options_.early_stop(x)) {
      report.duality_gap = static_cast<double>(m) / t;
      break;
    }

    const double gap = static_cast<double>(m) / t;
    ARB_LOG_DEBUG("barrier outer=" << outer << " t=" << t << " gap=" << gap
                                   << " f=" << problem.objective(x));
    if (gap <= options_.gap_tolerance) {
      report.duality_gap = gap;
      break;
    }
    t *= options_.mu;
    report.duality_gap = static_cast<double>(m) / t;
  }

  report.x = x;
  report.objective = problem.objective(x);
  report.dual = math::Vector(m);
  for (std::size_t i = 0; i < m; ++i) {
    report.dual[i] = 1.0 / (-t * problem.constraint(i, x));
  }
  refine_duals(problem, x, report.dual);
  return report;
}

void BarrierSolver::refine_duals(const NlpProblem& problem,
                                 const math::Vector& x, math::Vector& dual) {
  // The barrier estimate λᵢ = 1/(−t·gᵢ) is exact for the *barrier*
  // problem but noisy for the original KKT system: near the boundary its
  // sensitivity to the primal iterate grows with t. Recover clean
  // multipliers by least squares on the (numerically) active set:
  //   minimize ‖∇f + Σ_{i∈A} λᵢ ∇gᵢ‖²,  λ clamped to ≥ 0,
  // which the tiny dense normal equations solve directly.
  const std::size_t n = problem.dimension();
  const std::size_t m = problem.num_inequalities();
  if (m == 0) return;

  double max_dual = 0.0;
  for (std::size_t i = 0; i < m; ++i) max_dual = std::max(max_dual, dual[i]);
  if (max_dual <= 0.0) return;

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < m; ++i) {
    if (dual[i] > 1e-6 * max_dual) active.push_back(i);
  }
  if (active.empty()) return;

  const math::Vector grad_f = problem.objective_gradient(x);
  std::vector<math::Vector> grads;
  grads.reserve(active.size());
  for (const std::size_t i : active) {
    grads.push_back(problem.constraint_gradient(i, x));
  }

  const std::size_t a = active.size();
  math::Matrix gram(a, a);
  math::Vector rhs(a);
  for (std::size_t r = 0; r < a; ++r) {
    for (std::size_t c = 0; c < a; ++c) gram(r, c) = grads[r].dot(grads[c]);
    rhs[r] = -grads[r].dot(grad_f);
  }
  auto solved = math::regularized_spd_solve(gram, rhs);
  if (!solved) return;  // keep the barrier estimate

  // Accept the refinement only if it actually reduces the stationarity
  // residual (guards against a bad active-set guess).
  const auto residual = [&](const math::Vector& lambda_active) {
    math::Vector acc = grad_f;
    for (std::size_t r = 0; r < a; ++r) {
      for (std::size_t k = 0; k < n; ++k) {
        acc[k] += lambda_active[r] * grads[r][k];
      }
    }
    return acc.norm_inf();
  };
  math::Vector original_active(a);
  for (std::size_t r = 0; r < a; ++r) original_active[r] = dual[active[r]];
  math::Vector clamped = *solved;
  for (std::size_t r = 0; r < a; ++r) clamped[r] = std::max(0.0, clamped[r]);
  if (residual(clamped) < residual(original_active)) {
    for (std::size_t r = 0; r < a; ++r) dual[active[r]] = clamped[r];
  }
}

}  // namespace arb::optim
