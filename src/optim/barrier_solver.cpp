#include "optim/barrier_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "math/linear_solve.hpp"

namespace arb::optim {
namespace {

/// Plain Newton objective for the unconstrained (m == 0) case.
class ObjectiveOnly final : public SmoothObjective {
 public:
  explicit ObjectiveOnly(const NlpProblem& problem) : problem_(problem) {}

  [[nodiscard]] double value(const math::Vector& x) const override {
    return problem_.objective(x);
  }
  void gradient_into(const math::Vector& x,
                     math::Vector& grad) const override {
    problem_.objective_gradient_into(x, grad);
  }
  void hessian_into(const math::Vector& x,
                    math::Matrix& hess) const override {
    problem_.objective_hessian_into(x, hess);
  }

 private:
  const NlpProblem& problem_;
};

/// The centering objective  t·f(x) − Σᵢ log(−gᵢ(x))  for one outer
/// iteration. Per-constraint gradient/Hessian terms are accumulated in
/// workspace buffers, so evaluation is allocation-free. The same instance
/// serves every outer iteration via set_t.
class CenteringObjective final : public SmoothObjective {
 public:
  CenteringObjective(const NlpProblem& problem, SolveWorkspace& ws)
      : problem_(problem), ws_(ws) {}

  void set_t(double t) { t_ = t; }

  [[nodiscard]] double value(const math::Vector& point) const override {
    const std::size_t m = problem_.num_inequalities();
    double value = t_ * problem_.objective(point);
    for (std::size_t i = 0; i < m; ++i) {
      const double g = problem_.constraint(i, point);
      if (!(g < 0.0)) return std::numeric_limits<double>::infinity();
      value -= std::log(-g);
    }
    return value;
  }

  void gradient_into(const math::Vector& point,
                     math::Vector& grad) const override {
    const std::size_t m = problem_.num_inequalities();
    const std::size_t n = problem_.dimension();
    problem_.objective_gradient_into(point, grad);
    grad *= t_;
    for (std::size_t i = 0; i < m; ++i) {
      const double g = problem_.constraint(i, point);
      problem_.constraint_gradient_into(i, point, ws_.constraint_grad);
      // d/dx [-log(-g)] = -g'/g  (g < 0).
      for (std::size_t k = 0; k < n; ++k) {
        grad[k] += ws_.constraint_grad[k] / (-g);
      }
    }
  }

  void hessian_into(const math::Vector& point,
                    math::Matrix& hess) const override {
    const std::size_t m = problem_.num_inequalities();
    const std::size_t n = problem_.dimension();
    problem_.objective_hessian_into(point, hess);
    hess *= t_;
    for (std::size_t i = 0; i < m; ++i) {
      const double g = problem_.constraint(i, point);
      problem_.constraint_gradient_into(i, point, ws_.constraint_grad);
      problem_.constraint_hessian_into(i, point, ws_.constraint_hess);
      // ∇²[-log(-g)] = (g' g'ᵀ)/g² + (-1/g)·∇²g.
      const double inv_g = 1.0 / g;
      hess.add_outer_product(ws_.constraint_grad, ws_.constraint_grad,
                             inv_g * inv_g);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          hess(r, c) += (-inv_g) * ws_.constraint_hess(r, c);
        }
      }
    }
  }

  [[nodiscard]] bool in_domain(const math::Vector& point) const override {
    return point.all_finite() && problem_.strictly_feasible(point);
  }

  [[nodiscard]] bool step_ok(const math::Vector& from,
                             const math::Vector& to) const override {
    // Cap the per-step collapse of the tightest constraint slack at
    // 100x. Without this, Armijo happily accepts profit-chasing steps
    // that land just inside the boundary (each backtracking trial sits
    // at the feasibility edge), the tightest slack shrinks geometrically
    // far below its central-path value, and the (1/s²)-scaled barrier
    // Hessian becomes so ill-conditioned that Newton degenerates into a
    // tangential crawl. Warm restarts at moderate-to-high t hit this
    // reliably; the guard keeps every accepted iterate within two
    // decades of the previous slack, which damped Newton handles.
    const std::size_t m = problem_.num_inequalities();
    double min_from = std::numeric_limits<double>::infinity();
    double min_to = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      min_from = std::min(min_from, -problem_.constraint(i, from));
      min_to = std::min(min_to, -problem_.constraint(i, to));
    }
    return min_to * 100.0 >= min_from;
  }

 private:
  const NlpProblem& problem_;
  SolveWorkspace& ws_;
  double t_ = 1.0;
};

}  // namespace

BarrierSolver::BarrierSolver(BarrierOptions options)
    : options_(std::move(options)) {}

Status BarrierSolver::solve_into(const NlpProblem& problem,
                                 const math::Vector& x0, SolveWorkspace& ws,
                                 BarrierReport& report) const {
  const std::size_t n = problem.dimension();
  const std::size_t m = problem.num_inequalities();
  ARB_REQUIRE(x0.size() == n, "x0 dimension mismatch");

  report.objective = 0.0;
  report.duality_gap = 0.0;
  report.final_t = options_.initial_t;
  report.outer_iterations = 0;
  report.total_newton_iterations = 0;
  report.centerings_converged = true;

  if (!problem.strictly_feasible(x0)) {
    return make_error(ErrorCode::kInfeasible,
                      "barrier solve requires strictly feasible start "
                      "(max violation " +
                          std::to_string(problem.max_violation(x0)) + ")");
  }
  if (m == 0) {
    // Pure Newton on f.
    const ObjectiveOnly fn(problem);
    NewtonStats stats;
    auto inner = newton_minimize_into(fn, x0, options_.newton, ws, stats);
    if (!inner) return inner;
    report.x = ws.x;
    report.dual.assign(0, 0.0);
    report.objective = stats.value;
    report.total_newton_iterations = stats.iterations;
    report.centerings_converged = stats.converged;
    return Status::success();
  }

  double t = options_.initial_t;
  ws.x = x0;  // capacity-preserving; x0 may alias ws.x
  CenteringObjective fn(problem, ws);

  for (int outer = 0; outer < options_.max_outer_iterations; ++outer) {
    report.outer_iterations = outer + 1;
    fn.set_t(t);

    NewtonStats stats;
    auto inner = newton_minimize_into(fn, ws.x, options_.newton, ws, stats);
    if (!inner) {
      return make_error(ErrorCode::kNumericFailure,
                        "barrier inner Newton failed at t=" +
                            std::to_string(t) + ": " +
                            inner.error().message);
    }
    report.total_newton_iterations += stats.iterations;
    if (!stats.converged) report.centerings_converged = false;

    if (options_.early_stop && options_.early_stop(ws.x)) {
      report.duality_gap = static_cast<double>(m) / t;
      break;
    }

    const double gap = static_cast<double>(m) / t;
    ARB_LOG_DEBUG("barrier outer=" << outer << " t=" << t << " gap=" << gap
                                   << " f=" << problem.objective(ws.x));
    if (gap <= options_.gap_tolerance) {
      report.duality_gap = gap;
      break;
    }
    t *= options_.mu;
    report.duality_gap = static_cast<double>(m) / t;
  }

  report.final_t = t;
  report.x = ws.x;
  report.objective = problem.objective(ws.x);
  // Containment: never hand a non-finite iterate or objective back to
  // the caller as a "success" — the inner Newton guards should make this
  // unreachable, but a corrupted problem could still slip a NaN through
  // a converged-looking exit.
  if (!report.x.all_finite() || !std::isfinite(report.objective)) {
    return make_error(ErrorCode::kNumericFailure,
                      "barrier solve produced non-finite iterate at t=" +
                          std::to_string(t));
  }
  report.dual.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    report.dual[i] = 1.0 / (-t * problem.constraint(i, ws.x));
  }
  if (options_.refine_duals) refine_duals(problem, ws.x, report.dual);
  return Status::success();
}

Result<BarrierReport> BarrierSolver::solve(const NlpProblem& problem,
                                           const math::Vector& x0) const {
  SolveWorkspace ws;
  BarrierReport report;
  auto status = solve_into(problem, x0, ws, report);
  if (!status) return status.error();
  return report;
}

void BarrierSolver::refine_duals(const NlpProblem& problem,
                                 const math::Vector& x, math::Vector& dual) {
  // The barrier estimate λᵢ = 1/(−t·gᵢ) is exact for the *barrier*
  // problem but noisy for the original KKT system: near the boundary its
  // sensitivity to the primal iterate grows with t. Recover clean
  // multipliers by least squares on the (numerically) active set:
  //   minimize ‖∇f + Σ_{i∈A} λᵢ ∇gᵢ‖²,  λ clamped to ≥ 0,
  // which the tiny dense normal equations solve directly.
  const std::size_t n = problem.dimension();
  const std::size_t m = problem.num_inequalities();
  if (m == 0) return;

  double max_dual = 0.0;
  for (std::size_t i = 0; i < m; ++i) max_dual = std::max(max_dual, dual[i]);
  if (max_dual <= 0.0) return;

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < m; ++i) {
    if (dual[i] > 1e-6 * max_dual) active.push_back(i);
  }
  if (active.empty()) return;

  const math::Vector grad_f = problem.objective_gradient(x);
  std::vector<math::Vector> grads;
  grads.reserve(active.size());
  for (const std::size_t i : active) {
    grads.push_back(problem.constraint_gradient(i, x));
  }

  const std::size_t a = active.size();
  math::Matrix gram(a, a);
  math::Vector rhs(a);
  for (std::size_t r = 0; r < a; ++r) {
    for (std::size_t c = 0; c < a; ++c) gram(r, c) = grads[r].dot(grads[c]);
    rhs[r] = -grads[r].dot(grad_f);
  }
  auto solved = math::regularized_spd_solve(gram, rhs);
  if (!solved) return;  // keep the barrier estimate

  // Accept the refinement only if it actually reduces the stationarity
  // residual (guards against a bad active-set guess).
  const auto residual = [&](const math::Vector& lambda_active) {
    math::Vector acc = grad_f;
    for (std::size_t r = 0; r < a; ++r) {
      for (std::size_t k = 0; k < n; ++k) {
        acc[k] += lambda_active[r] * grads[r][k];
      }
    }
    return acc.norm_inf();
  };
  math::Vector original_active(a);
  for (std::size_t r = 0; r < a; ++r) original_active[r] = dual[active[r]];
  math::Vector clamped = *solved;
  for (std::size_t r = 0; r < a; ++r) clamped[r] = std::max(0.0, clamped[r]);
  if (residual(clamped) < residual(original_active)) {
    for (std::size_t r = 0; r < a; ++r) dual[active[r]] = clamped[r];
  }
}

}  // namespace arb::optim
