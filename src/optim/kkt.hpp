#pragma once

/// \file kkt.hpp
/// Karush–Kuhn–Tucker residuals for a candidate primal/dual pair. Tests
/// use these to certify that the barrier solver's answers are true optima
/// rather than merely "the solver stopped".

#include "math/vector.hpp"
#include "optim/problem.hpp"
#include "optim/workspace.hpp"

namespace arb::optim {

struct KktResiduals {
  double stationarity = 0.0;       ///< ||∇f + Σ λᵢ∇gᵢ||_inf
  double primal_feasibility = 0.0; ///< max(0, maxᵢ gᵢ(x))
  double dual_feasibility = 0.0;   ///< max(0, maxᵢ −λᵢ)
  double complementarity = 0.0;    ///< maxᵢ |λᵢ gᵢ(x)|

  [[nodiscard]] double worst() const;
  /// All residuals below the tolerance.
  [[nodiscard]] bool satisfied(double tolerance) const;
};

/// Evaluates KKT residuals at (x, λ).
[[nodiscard]] KktResiduals evaluate_kkt(const NlpProblem& problem,
                                        const math::Vector& x,
                                        const math::Vector& dual);

/// Workspace variant: the Lagrangian gradient is accumulated in ws.grad
/// and constraint gradients in ws.constraint_grad, so repeated
/// certification (e.g. per repriced cycle) allocates nothing.
[[nodiscard]] KktResiduals evaluate_kkt(const NlpProblem& problem,
                                        const math::Vector& x,
                                        const math::Vector& dual,
                                        SolveWorkspace& ws);

}  // namespace arb::optim
