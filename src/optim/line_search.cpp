#include "optim/line_search.hpp"

#include <cmath>

namespace arb::optim {
namespace {

/// Shared kernel: both public overloads run exactly this loop, so the
/// callback and workspace paths cannot drift numerically.
template <typename ValueFn, typename DomainFn>
LineSearchResult search_kernel(const ValueFn& objective,
                               const DomainFn& in_domain,
                               const math::Vector& x,
                               const math::Vector& direction,
                               double value_at_x,
                               double directional_derivative,
                               math::Vector& candidate,
                               const LineSearchOptions& options) {
  LineSearchResult result;
  if (!(directional_derivative < 0.0)) {
    return result;  // not a descent direction
  }
  double step = options.initial_step;
  for (int k = 0; k < options.max_backtracks; ++k) {
    candidate = x;
    candidate.add_scaled(direction, step);
    if (in_domain(candidate)) {
      const double value = objective(candidate);
      ++result.evaluations;
      if (std::isfinite(value) &&
          value <= value_at_x +
                       options.armijo_c * step * directional_derivative) {
        result.step = step;
        result.value = value;
        result.success = true;
        return result;
      }
    }
    step *= options.shrink;
  }
  return result;
}

}  // namespace

LineSearchResult backtracking_line_search(
    const std::function<double(const math::Vector&)>& objective,
    const std::function<bool(const math::Vector&)>& in_domain,
    const math::Vector& x, const math::Vector& direction, double value_at_x,
    double directional_derivative, const LineSearchOptions& options) {
  math::Vector candidate;
  const auto value_fn = [&](const math::Vector& p) { return objective(p); };
  const auto domain_fn = [&](const math::Vector& p) {
    return !in_domain || in_domain(p);
  };
  return search_kernel(value_fn, domain_fn, x, direction, value_at_x,
                       directional_derivative, candidate, options);
}

LineSearchResult backtracking_line_search(const SmoothObjective& objective,
                                          const math::Vector& x,
                                          const math::Vector& direction,
                                          double value_at_x,
                                          double directional_derivative,
                                          math::Vector& candidate,
                                          const LineSearchOptions& options) {
  const auto value_fn = [&](const math::Vector& p) {
    return objective.value(p);
  };
  const auto domain_fn = [&](const math::Vector& p) {
    return objective.in_domain(p) && objective.step_ok(x, p);
  };
  return search_kernel(value_fn, domain_fn, x, direction, value_at_x,
                       directional_derivative, candidate, options);
}

}  // namespace arb::optim
