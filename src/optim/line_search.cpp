#include "optim/line_search.hpp"

#include <cmath>

namespace arb::optim {

LineSearchResult backtracking_line_search(
    const std::function<double(const math::Vector&)>& objective,
    const std::function<bool(const math::Vector&)>& in_domain,
    const math::Vector& x, const math::Vector& direction, double value_at_x,
    double directional_derivative, const LineSearchOptions& options) {
  LineSearchResult result;
  if (!(directional_derivative < 0.0)) {
    return result;  // not a descent direction
  }
  double step = options.initial_step;
  for (int k = 0; k < options.max_backtracks; ++k) {
    const math::Vector candidate = x + step * direction;
    if (!in_domain || in_domain(candidate)) {
      const double value = objective(candidate);
      ++result.evaluations;
      if (std::isfinite(value) &&
          value <= value_at_x +
                       options.armijo_c * step * directional_derivative) {
        result.step = step;
        result.value = value;
        result.success = true;
        return result;
      }
    }
    step *= options.shrink;
  }
  return result;
}

}  // namespace arb::optim
