#pragma once

/// \file newton.hpp
/// Damped Newton minimizer for smooth (preferably convex) functions with a
/// domain guard. This is the inner engine of the barrier interior-point
/// solver but is exposed on its own for unconstrained problems and tests.
///
/// Two entry points share one implementation:
///  - newton_minimize_into: hot path. Takes a SmoothObjective and a
///    SolveWorkspace; performs no allocations once the workspace buffers
///    have grown to the problem dimension.
///  - newton_minimize: convenience wrapper over std::function callbacks,
///    allocating a workspace per call. Identical numerics.

#include <functional>

#include "common/result.hpp"
#include "math/matrix.hpp"
#include "math/vector.hpp"
#include "optim/objective.hpp"
#include "optim/workspace.hpp"

namespace arb::optim {

struct NewtonOptions {
  double gradient_tolerance = 1e-10;  ///< stop when ||grad||_inf below this
  double decrement_tolerance = 1e-12; ///< stop when λ²/2 below this
  /// Scale-relative part of the decrement stop: converged when
  /// λ²/2 ≤ decrement_tolerance + relative_decrement_tolerance·|f|.
  /// When |f| is large (barrier centerings at t ≥ 1e9 sit at |f| ~ 1e11)
  /// a predicted decrease this small is below the floating-point
  /// granularity of f itself — Armijo would accept bit-identical values
  /// forever while the absolute test never fires. ~20 ulp.
  double relative_decrement_tolerance = 4e-15;
  int max_iterations = 100;
};

struct NewtonReport {
  math::Vector x;
  double value = 0.0;
  double gradient_norm = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Allocation-free per-solve statistics for the workspace entry point;
/// the final iterate lives in SolveWorkspace::x.
struct NewtonStats {
  double value = 0.0;
  double gradient_norm = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Callbacks describing the smooth function to minimize.
struct SmoothFunction {
  std::function<double(const math::Vector&)> value;
  std::function<math::Vector(const math::Vector&)> gradient;
  std::function<math::Matrix(const math::Vector&)> hessian;
  /// Optional domain membership (barrier: strict feasibility). Null = R^n.
  std::function<bool(const math::Vector&)> in_domain;
};

/// Minimizes \p fn starting at \p x0 (must lie in the domain).
/// Fails with kNumericFailure if the Hessian solve breaks down or no
/// descent step is found before convergence.
[[nodiscard]] Result<NewtonReport> newton_minimize(
    const SmoothFunction& fn, const math::Vector& x0,
    const NewtonOptions& options = {});

/// Workspace variant: minimizes \p fn starting at \p x0, leaving the
/// final iterate in \p ws.x (x0 may alias ws.x). Zero allocations once
/// the workspace has capacity for the problem dimension.
[[nodiscard]] Status newton_minimize_into(const SmoothObjective& fn,
                                          const math::Vector& x0,
                                          const NewtonOptions& options,
                                          SolveWorkspace& ws,
                                          NewtonStats& stats);

}  // namespace arb::optim
