#pragma once

/// \file newton.hpp
/// Damped Newton minimizer for smooth (preferably convex) functions with a
/// domain guard. This is the inner engine of the barrier interior-point
/// solver but is exposed on its own for unconstrained problems and tests.

#include <functional>

#include "common/result.hpp"
#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::optim {

struct NewtonOptions {
  double gradient_tolerance = 1e-10;  ///< stop when ||grad||_inf below this
  double decrement_tolerance = 1e-12; ///< stop when λ²/2 below this
  int max_iterations = 100;
};

struct NewtonReport {
  math::Vector x;
  double value = 0.0;
  double gradient_norm = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Callbacks describing the smooth function to minimize.
struct SmoothFunction {
  std::function<double(const math::Vector&)> value;
  std::function<math::Vector(const math::Vector&)> gradient;
  std::function<math::Matrix(const math::Vector&)> hessian;
  /// Optional domain membership (barrier: strict feasibility). Null = R^n.
  std::function<bool(const math::Vector&)> in_domain;
};

/// Minimizes \p fn starting at \p x0 (must lie in the domain).
/// Fails with kNumericFailure if the Hessian solve breaks down or no
/// descent step is found before convergence.
[[nodiscard]] Result<NewtonReport> newton_minimize(
    const SmoothFunction& fn, const math::Vector& x0,
    const NewtonOptions& options = {});

}  // namespace arb::optim
