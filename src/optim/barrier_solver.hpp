#pragma once

/// \file barrier_solver.hpp
/// Log-barrier interior-point solver for inequality-constrained smooth
/// convex programs (the paper's "Convex Optimization strategy" solver,
/// standing in for Ipopt).
///
/// Outer loop: minimize  t·f(x) − Σᵢ log(−gᵢ(x))  for increasing t; each
/// inner minimization is a damped Newton with a strict-feasibility domain
/// guard. For convex f and gᵢ the iterate is within m/t of the global
/// optimum, so the duality gap at exit is below `gap_tolerance`.
///
/// solve_into is the hot entry point: it reuses a caller-owned
/// SolveWorkspace and BarrierReport, so a steady-state solve performs no
/// heap allocations. solve() wraps it with per-call state.

#include <functional>

#include "common/result.hpp"
#include "optim/newton.hpp"
#include "optim/problem.hpp"
#include "optim/workspace.hpp"

namespace arb::optim {

struct BarrierOptions {
  double initial_t = 1.0;        ///< initial barrier sharpness
  double mu = 20.0;              ///< outer multiplicative increase of t
  double gap_tolerance = 1e-9;   ///< stop when m/t below this
  int max_outer_iterations = 60;
  NewtonOptions newton;          ///< inner solver options
  /// Post-solve least-squares refinement of the dual estimates. Improves
  /// KKT residuals reported to tests, but allocates; the runtime hot path
  /// turns it off (the primal solution and objective are unaffected).
  bool refine_duals = true;
  /// Optional early exit, checked after each centering step. Used by
  /// callers that need *a* point with a property rather than the
  /// optimum — phase-I stops as soon as strict feasibility is reached,
  /// which also prevents the iterate from drifting off along unbounded
  /// directions of the phase-I feasible set.
  std::function<bool(const math::Vector&)> early_stop;
};

struct BarrierReport {
  math::Vector x;                 ///< primal solution
  math::Vector dual;              ///< multiplier estimates λᵢ = 1/(−t·gᵢ)
  double objective = 0.0;         ///< f(x) at the solution
  double duality_gap = 0.0;       ///< m/t certificate at exit
  double final_t = 0.0;           ///< barrier sharpness at exit (warm-start seed)
  int outer_iterations = 0;
  int total_newton_iterations = 0;
  /// True iff every inner centering met its convergence criterion. When
  /// false the m/t gap certificate is not trustworthy — warm-started
  /// callers use this to detect a bad restart and fall back to cold.
  bool centerings_converged = true;
};

class BarrierSolver {
 public:
  explicit BarrierSolver(BarrierOptions options = {});

  /// Solves the problem from a strictly feasible start. Fails with
  /// kInfeasible if x0 is not strictly feasible and with kNumericFailure
  /// if an inner Newton solve breaks down.
  [[nodiscard]] Result<BarrierReport> solve(const NlpProblem& problem,
                                            const math::Vector& x0) const;

  /// Workspace variant with identical numerics: all solver temporaries
  /// live in \p ws and the result is written into \p report
  /// (capacity-preserving). \p x0 may alias ws.x.
  [[nodiscard]] Status solve_into(const NlpProblem& problem,
                                  const math::Vector& x0, SolveWorkspace& ws,
                                  BarrierReport& report) const;

 private:
  /// Post-solve least-squares dual refinement on the active set (the raw
  /// barrier multipliers 1/(−t·gᵢ) lose precision as t grows).
  static void refine_duals(const NlpProblem& problem, const math::Vector& x,
                           math::Vector& dual);

  BarrierOptions options_;
};

}  // namespace arb::optim
