#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random generation.
///
/// Everything stochastic in this library (synthetic market snapshots,
/// property-test case generation, price noise) flows through Rng so that
/// every experiment is reproducible from a single 64-bit seed. The core
/// generator is xoshiro256++ seeded via splitmix64, the recommended
/// seeding procedure from the xoshiro authors.

#include <array>
#include <cstdint>
#include <vector>

namespace arb {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Next raw 64 bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu_log, sigma_log)). Heavy-tailed, matching pool
  /// TVL distributions observed on Uniswap V2.
  double log_normal(double mu_log, double sigma_log);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniformly selects an index in [0, n). Precondition: n > 0.
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent generator (for parallel or scoped streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace arb
