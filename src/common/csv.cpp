#include "common/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace arb {
namespace {

bool needs_quoting(const std::string& value) {
  return value.find_first_of(",\"\r\n") != std::string::npos;
}

std::string quote(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_double(double value) {
  // std::to_chars gives shortest round-trip representation.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  ARB_REQUIRE(ec == std::errc{}, "to_chars failed");
  return std::string(buf, ptr);
}

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  ARB_REQUIRE(!header_written_ && rows_ == 0 && at_row_start_,
              "CSV header must be the first row");
  ARB_REQUIRE(!columns.empty(), "CSV header must not be empty");
  header_written_ = true;
  columns_ = columns.size();
  for (const auto& c : columns) cell(c);
  end_row();
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::separator() {
  if (!at_row_start_) out_ << ',';
  at_row_start_ = false;
  ++cells_in_row_;
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  separator();
  out_ << (needs_quoting(value) ? quote(value) : value);
  return *this;
}

CsvWriter& CsvWriter::cell(const char* value) {
  return cell(std::string(value));
}

CsvWriter& CsvWriter::cell(double value) {
  separator();
  out_ << format_double(value);
  return *this;
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  separator();
  out_ << value;
  return *this;
}

CsvWriter& CsvWriter::cell(int value) {
  separator();
  out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  if (columns_ != 0) {
    ARB_REQUIRE(cells_in_row_ == columns_,
                "CSV row width differs from header width");
  }
  out_ << '\n';
  at_row_start_ = true;
  cells_in_row_ = 0;
  ++rows_;
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  ARB_REQUIRE(false, "CSV column not found: " + name);
  return 0;  // unreachable
}

Result<CsvTable> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          return make_error(ErrorCode::kParseError,
                            "unexpected quote mid-field at offset " +
                                std::to_string(i));
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Record terminator: the CR of a CRLF pair (the LF is consumed
        // as part of the same terminator) or a bare classic-Mac CR.
        // Treating it as plain whitespace instead would silently merge
        // adjacent records of CR-only files.
        end_record();
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        break;
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) {
    return make_error(ErrorCode::kParseError, "unterminated quoted field");
  }
  if (field_started || !record.empty() || !field.empty()) {
    end_record();  // final record without trailing newline
  }

  if (records.empty()) {
    return make_error(ErrorCode::kParseError, "empty CSV input");
  }

  // Spreadsheet exports routinely end lines with a separator, producing
  // empty cells past the last real column. Accept them: trailing empty
  // cells are trimmed (never below the header width for data rows), so
  // only rows with missing or extra NON-empty cells stay hard errors.
  const auto trim_trailing_empty = [](std::vector<std::string>& cells,
                                      std::size_t min_size) {
    while (cells.size() > min_size && cells.back().empty()) cells.pop_back();
  };

  CsvTable table;
  table.header = std::move(records.front());
  trim_trailing_empty(table.header, 1);
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() == 1 && records[r][0].empty()) continue;  // blank line
    trim_trailing_empty(records[r], table.header.size());
    if (records[r].size() != table.header.size()) {
      return make_error(ErrorCode::kParseError,
                        "row " + std::to_string(r) + " has " +
                            std::to_string(records[r].size()) +
                            " cells, header has " +
                            std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(records[r]));
  }
  return table;
}

Result<CsvTable> read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kIoError, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

}  // namespace arb
