#include "common/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace arb {
namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                    "#ff7f0e", "#9467bd", "#8c564b",
                                    "#17becf", "#7f7f7f"};
constexpr int kPaletteSize = 8;
constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 20;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 55;

std::string escape_xml(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string format_tick(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::abs(v) >= 1e5 || std::abs(v) < 1e-3)) {
    os.precision(1);
    os << std::scientific << v;
  } else {
    os.precision(6);
    os << v;
  }
  return os.str();
}

}  // namespace

std::vector<double> nice_ticks(double lo, double hi, int target_count) {
  ARB_REQUIRE(target_count >= 2, "need at least 2 ticks");
  if (!(hi > lo)) hi = lo + 1.0;
  const double raw_step = (hi - lo) / (target_count - 1);
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  const double normalized = raw_step / magnitude;
  double step = 10.0;
  if (normalized <= 1.0) {
    step = 1.0;
  } else if (normalized <= 2.0) {
    step = 2.0;
  } else if (normalized <= 5.0) {
    step = 5.0;
  }
  step *= magnitude;
  std::vector<double> ticks;
  const double start = std::ceil(lo / step) * step;
  for (double v = start; v <= hi + step * 1e-9; v += step) {
    // Snap near-zero artifacts of the floating-point walk.
    ticks.push_back(std::abs(v) < step * 1e-9 ? 0.0 : v);
  }
  return ticks;
}

SvgPlot::SvgPlot(std::string title, std::string x_label, std::string y_label,
                 int width, int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {
  ARB_REQUIRE(width > kMarginLeft + kMarginRight + 50 &&
                  height > kMarginTop + kMarginBottom + 50,
              "plot area too small");
}

void SvgPlot::add_series(SvgSeries series) {
  series_.push_back(std::move(series));
}

std::string SvgPlot::render() const {
  // Data range.
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = x_lo;
  double y_hi = -x_lo;
  for (const SvgSeries& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
    }
  }
  if (!(x_hi > x_lo)) {
    x_lo -= 1.0;
    x_hi += 1.0;
  }
  if (!(y_hi > y_lo)) {
    y_lo -= 1.0;
    y_hi += 1.0;
  }
  // Pad the y range slightly so extreme markers are not clipped.
  const double y_pad = 0.04 * (y_hi - y_lo);
  y_lo -= y_pad;
  y_hi += y_pad;

  const double plot_w = width_ - kMarginLeft - kMarginRight;
  const double plot_h = height_ - kMarginTop - kMarginBottom;
  const auto sx = [&](double x) {
    return kMarginLeft + (x - x_lo) / (x_hi - x_lo) * plot_w;
  };
  const auto sy = [&](double y) {
    return kMarginTop + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" font-family=\"sans-serif\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << width_ / 2 << "\" y=\"22\" text-anchor=\"middle\" "
      << "font-size=\"15\" font-weight=\"bold\">" << escape_xml(title_)
      << "</text>\n";

  // Axes frame.
  svg << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop
      << "\" width=\"" << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#333\"/>\n";

  // Ticks and grid.
  for (const double tick : nice_ticks(x_lo, x_hi)) {
    const double px = sx(tick);
    svg << "<line x1=\"" << px << "\" y1=\"" << kMarginTop + plot_h
        << "\" x2=\"" << px << "\" y2=\"" << kMarginTop
        << "\" stroke=\"#eee\"/>\n";
    svg << "<text x=\"" << px << "\" y=\"" << kMarginTop + plot_h + 18
        << "\" text-anchor=\"middle\" font-size=\"11\">"
        << format_tick(tick) << "</text>\n";
  }
  for (const double tick : nice_ticks(y_lo, y_hi)) {
    const double py = sy(tick);
    svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py << "\" x2=\""
        << kMarginLeft + plot_w << "\" y2=\"" << py
        << "\" stroke=\"#eee\"/>\n";
    svg << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << py + 4
        << "\" text-anchor=\"end\" font-size=\"11\">" << format_tick(tick)
        << "</text>\n";
  }

  // Axis labels.
  svg << "<text x=\"" << kMarginLeft + plot_w / 2 << "\" y=\""
      << height_ - 12 << "\" text-anchor=\"middle\" font-size=\"13\">"
      << escape_xml(x_label_) << "</text>\n";
  svg << "<text x=\"16\" y=\"" << kMarginTop + plot_h / 2
      << "\" text-anchor=\"middle\" font-size=\"13\" transform=\"rotate(-90 "
      << 16 << " " << kMarginTop + plot_h / 2 << ")\">"
      << escape_xml(y_label_) << "</text>\n";

  // 45° reference.
  if (diagonal_) {
    const double lo = std::max(x_lo, y_lo);
    const double hi = std::min(x_hi, y_hi);
    if (hi > lo) {
      svg << "<line x1=\"" << sx(lo) << "\" y1=\"" << sy(lo) << "\" x2=\""
          << sx(hi) << "\" y2=\"" << sy(hi)
          << "\" stroke=\"#999\" stroke-dasharray=\"5,4\"/>\n";
    }
  }

  // Series.
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const SvgSeries& s = series_[i];
    const char* color = kPalette[i % kPaletteSize];
    if (s.line) {
      svg << "<polyline fill=\"none\" stroke=\"" << color
          << "\" stroke-width=\"1.8\" points=\"";
      for (const auto& [x, y] : s.points) {
        svg << sx(x) << "," << sy(y) << " ";
      }
      svg << "\"/>\n";
    } else {
      for (const auto& [x, y] : s.points) {
        svg << "<circle cx=\"" << sx(x) << "\" cy=\"" << sy(y)
            << "\" r=\"3\" fill=\"" << color << "\" fill-opacity=\"0.65\"/>\n";
      }
    }
  }

  // Legend.
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const double ly = kMarginTop + 14 + 16.0 * static_cast<double>(i);
    const double lx = kMarginLeft + plot_w - 150;
    svg << "<rect x=\"" << lx << "\" y=\"" << ly - 9
        << "\" width=\"10\" height=\"10\" fill=\""
        << kPalette[i % kPaletteSize] << "\"/>\n";
    svg << "<text x=\"" << lx + 15 << "\" y=\"" << ly
        << "\" font-size=\"11\">" << escape_xml(series_[i].name)
        << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

Status SvgPlot::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kIoError, "cannot write " + path);
  }
  out << render();
  return Status::success();
}

}  // namespace arb
