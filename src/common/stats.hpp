#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used by the benchmark harness to
/// summarize per-loop profit distributions and solver behaviour.

#include <cstddef>
#include <string>
#include <vector>

namespace arb {

/// Single-pass accumulator: count / mean / variance (Welford) / min / max.
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator). Returns 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// "n=… mean=… sd=… min=… max=…" summary line.
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics. \p q in [0, 1]. Precondition: non-empty sample.
[[nodiscard]] double percentile(std::vector<double> sample, double q);

/// Pearson correlation of two equal-length samples. Returns 0 when either
/// sample is constant. Precondition: equal, non-zero lengths.
[[nodiscard]] double pearson_correlation(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi]; values outside clamp to the edge
/// bins. Used for textual figure rendering in the bench harness.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_in_bin(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace arb
