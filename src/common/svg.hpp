#pragma once

/// \file svg.hpp
/// Dependency-free SVG chart writer. The bench harness emits every
/// reproduced figure as CSV; tools/render_figures turns those into
/// self-contained .svg files (line charts and scatter plots with axes,
/// ticks and a legend) so the reproduction can be inspected visually
/// without any external plotting stack.

#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace arb {

/// One named series of (x, y) points.
struct SvgSeries {
  std::string name;
  std::vector<std::pair<double, double>> points;
  /// True: connect points with a polyline; false: scatter markers.
  bool line = true;
};

class SvgPlot {
 public:
  SvgPlot(std::string title, std::string x_label, std::string y_label,
          int width = 720, int height = 480);

  /// Adds a series (color assigned from a fixed palette in order).
  void add_series(SvgSeries series);

  /// Draws the y = x reference line across the data range (the 45° line
  /// of the paper's scatter figures).
  void add_diagonal() { diagonal_ = true; }

  /// Renders the complete SVG document.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to a file.
  [[nodiscard]] Status write(const std::string& path) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  bool diagonal_ = false;
  std::vector<SvgSeries> series_;
};

/// "Nice" tick positions covering [lo, hi] (1-2-5 progression).
[[nodiscard]] std::vector<double> nice_ticks(double lo, double hi,
                                             int target_count = 6);

}  // namespace arb
