#pragma once

/// \file types.hpp
/// Strong identifier types and scalar aliases shared across the library.
///
/// Tokens and pools are referenced everywhere by small dense integer ids.
/// Wrapping them in distinct strong types prevents the classic bug of
/// passing a pool id where a token id is expected; the wrappers compile
/// away entirely.

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace arb {

/// Real-valued token quantity. Uniswap V2 stores reserves as uint112
/// fixed-point integers; the analytical layer of this library works in
/// doubles (as the paper does) and the exact-integer layer in
/// common/uint256.hpp mirrors the on-chain arithmetic.
using Amount = double;

/// USD price of one token unit, as quoted by a centralized exchange.
using UsdPrice = double;

namespace detail {

/// CRTP-free strong integer wrapper. \p Tag makes distinct instantiations
/// incompatible with one another.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

 private:
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();
  underlying_type value_ = kInvalid;
};

}  // namespace detail

struct TokenTag {};
struct PoolTag {};

/// Identifier of a token (graph node).
using TokenId = detail::StrongId<TokenTag>;
/// Identifier of a liquidity pool (graph edge).
using PoolId = detail::StrongId<PoolTag>;

/// Uniswap V2's flat swap fee: 0.30% of the input amount.
inline constexpr double kUniswapV2Fee = 0.003;

/// Human-readable rendering, e.g. "token#7" / "pool#12".
[[nodiscard]] std::string to_string(TokenId id);
[[nodiscard]] std::string to_string(PoolId id);

}  // namespace arb

template <>
struct std::hash<arb::TokenId> {
  std::size_t operator()(arb::TokenId id) const noexcept {
    return std::hash<arb::TokenId::underlying_type>{}(id.value());
  }
};

template <>
struct std::hash<arb::PoolId> {
  std::size_t operator()(arb::PoolId id) const noexcept {
    return std::hash<arb::PoolId::underlying_type>{}(id.value());
  }
};
