#pragma once

/// \file csv.hpp
/// Small CSV reader/writer. The bench harness writes every reproduced
/// figure as a CSV so the series can be re-plotted externally; the market
/// module round-trips snapshots through the same format.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace arb {

/// Streaming CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out);

  /// Writes the header row. Must be the first row written, at most once.
  void header(const std::vector<std::string>& columns);

  /// Appends one cell to the current row (numeric overloads format with
  /// full round-trip precision).
  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(const char* value);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::size_t value);
  CsvWriter& cell(int value);

  /// Terminates the current row.
  void end_row();

  /// Convenience: writes a full row of cells.
  template <typename... Ts>
  void row(const Ts&... values) {
    (cell(values), ...);
    end_row();
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void separator();

  std::ostream& out_;
  bool at_row_start_ = true;
  bool header_written_ = false;
  std::size_t columns_ = 0;
  std::size_t cells_in_row_ = 0;
  std::size_t rows_ = 0;
};

/// Fully-parsed CSV table.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  [[nodiscard]] std::size_t column_index(const std::string& name) const;
};

/// Parses CSV text (RFC-4180 quoting, \n or \r\n line ends). First row is
/// the header. Rows whose cell count differs from the header produce a
/// parse error.
[[nodiscard]] Result<CsvTable> parse_csv(const std::string& text);

/// Reads and parses a CSV file.
[[nodiscard]] Result<CsvTable> read_csv_file(const std::string& path);

/// Formats a double with enough digits to round-trip (used by CsvWriter
/// and the table renderers).
[[nodiscard]] std::string format_double(double value);

}  // namespace arb
