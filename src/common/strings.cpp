#include "common/strings.hpp"

#include <cctype>
#include <charconv>

namespace arb {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

Result<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return make_error(ErrorCode::kParseError, "empty number");
  }
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(ErrorCode::kParseError,
                      "invalid double: '" + std::string(text) + "'");
  }
  return value;
}

Result<std::uint64_t> parse_u64(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return make_error(ErrorCode::kParseError, "empty integer");
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return make_error(ErrorCode::kParseError,
                      "invalid integer: '" + std::string(text) + "'");
  }
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

}  // namespace arb
