#include "common/uint256.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace arb {
namespace {

using u64 = std::uint64_t;
__extension__ typedef unsigned __int128 u128;

}  // namespace

Result<U256> U256::from_decimal(const std::string& text) {
  if (text.empty()) {
    return make_error(ErrorCode::kParseError, "empty decimal string");
  }
  U256 acc;
  const U256 ten{10};
  for (char c : text) {
    if (c < '0' || c > '9') {
      return make_error(ErrorCode::kParseError,
                        std::string("invalid decimal digit '") + c + "'");
    }
    if (mul_overflows(acc, ten)) {
      return make_error(ErrorCode::kParseError, "decimal overflows 256 bits");
    }
    acc = acc * ten;
    const U256 digit{static_cast<u64>(c - '0')};
    if (add_overflows(acc, digit)) {
      return make_error(ErrorCode::kParseError, "decimal overflows 256 bits");
    }
    acc = acc + digit;
  }
  return acc;
}

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != 0) {
      return 64 * i + (64 - std::countl_zero(limbs_[i]));
    }
  }
  return 0;
}

std::uint64_t U256::to_u64() const {
  ARB_REQUIRE(fits_u64(), "U256 does not fit in 64 bits");
  return limbs_[0];
}

double U256::to_double() const {
  double acc = 0.0;
  for (int i = 3; i >= 0; --i) {
    acc = acc * 0x1.0p64 + static_cast<double>(limbs_[i]);
  }
  return acc;
}

bool U256::add_overflows(const U256& a, const U256& b) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.limbs_[i]) + b.limbs_[i] + carry;
    carry = static_cast<u64>(sum >> 64);
  }
  return carry != 0;
}

U256 operator+(const U256& a, const U256& b) {
  U256 out;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.limbs_[i]) + b.limbs_[i] + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  ARB_REQUIRE(carry == 0, "U256 addition overflow");
  return out;
}

U256 operator-(const U256& a, const U256& b) {
  ARB_REQUIRE(a >= b, "U256 subtraction underflow");
  U256 out;
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 lhs = static_cast<u128>(a.limbs_[i]);
    const u128 rhs = static_cast<u128>(b.limbs_[i]) + borrow;
    if (lhs >= rhs) {
      out.limbs_[i] = static_cast<u64>(lhs - rhs);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<u64>((u128{1} << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  return out;
}

namespace {

// Schoolbook multiply into an 8-limb (512-bit) result; never overflows.
void mul_full(const U256& a, const U256& b, u64 (&result)[8]) {
  for (int i = 0; i < 8; ++i) result[i] = 0;
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.limb(i)) * b.limb(j) +
                       result[i + j] + carry;
      result[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    result[i + 4] += carry;
  }
}

}  // namespace

bool U256::mul_overflows(const U256& a, const U256& b) {
  u64 result[8];
  mul_full(a, b, result);
  return (result[4] | result[5] | result[6] | result[7]) != 0;
}

U256 operator*(const U256& a, const U256& b) {
  u64 result[8];
  mul_full(a, b, result);
  ARB_REQUIRE((result[4] | result[5] | result[6] | result[7]) == 0,
              "U256 multiplication overflow");
  return U256::from_limbs(result[0], result[1], result[2], result[3]);
}

U256 operator<<(const U256& a, int shift) {
  ARB_REQUIRE(shift >= 0 && shift < 256, "shift out of range");
  if (shift == 0) return a;
  U256 out;
  const int limb_shift = shift / 64;
  const int bit_shift = shift % 64;
  for (int i = 3; i >= 0; --i) {
    u64 v = 0;
    const int src = i - limb_shift;
    if (src >= 0) {
      v = a.limbs_[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        v |= a.limbs_[src - 1] >> (64 - bit_shift);
      }
    }
    out.limbs_[i] = v;
  }
  return out;
}

U256 operator>>(const U256& a, int shift) {
  ARB_REQUIRE(shift >= 0 && shift < 256, "shift out of range");
  if (shift == 0) return a;
  U256 out;
  const int limb_shift = shift / 64;
  const int bit_shift = shift % 64;
  for (int i = 0; i < 4; ++i) {
    u64 v = 0;
    const int src = i + limb_shift;
    if (src < 4) {
      v = a.limbs_[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) {
        v |= a.limbs_[src + 1] << (64 - bit_shift);
      }
    }
    out.limbs_[i] = v;
  }
  return out;
}

std::strong_ordering operator<=>(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? std::strong_ordering::less
                                       : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

U256DivMod U256::divmod(const U256& numerator, const U256& denominator) {
  ARB_REQUIRE(!denominator.is_zero(), "U256 division by zero");
  U256DivMod out;
  if (numerator < denominator) {
    out.remainder = numerator;
    return out;
  }
  if (denominator.fits_u64() && numerator.fits_u64()) {
    out.quotient = U256{numerator.limbs_[0] / denominator.limbs_[0]};
    out.remainder = U256{numerator.limbs_[0] % denominator.limbs_[0]};
    return out;
  }
  // Binary long division: shift-subtract from the top bit down.
  const int shift = numerator.bit_length() - denominator.bit_length();
  U256 remainder = numerator;
  U256 quotient;
  for (int s = shift; s >= 0; --s) {
    const U256 shifted = denominator << s;
    if (remainder >= shifted) {
      remainder = remainder - shifted;
      quotient.limbs_[s / 64] |= (u64{1} << (s % 64));
    }
  }
  out.quotient = quotient;
  out.remainder = remainder;
  return out;
}

U256 operator/(const U256& a, const U256& b) {
  return U256::divmod(a, b).quotient;
}

U256 operator%(const U256& a, const U256& b) {
  return U256::divmod(a, b).remainder;
}

std::string U256::to_decimal() const {
  if (is_zero()) return "0";
  std::string digits;
  U256 cur = *this;
  const U256 ten{10};
  while (!cur.is_zero()) {
    const auto dm = divmod(cur, ten);
    digits += static_cast<char>('0' + dm.remainder.limbs_[0]);
    cur = dm.quotient;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace arb
