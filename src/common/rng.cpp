#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace arb {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // splitmix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++ step (Blackman & Vigna).
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ARB_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ARB_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 > 0 guaranteed by adding the smallest step.
  const double u1 = uniform01() + 0x1.0p-53;
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  ARB_REQUIRE(stddev >= 0.0, "normal() requires stddev >= 0");
  return mean + stddev * normal();
}

double Rng::log_normal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

bool Rng::bernoulli(double p) {
  ARB_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli(p) requires p in [0,1]");
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  ARB_REQUIRE(n > 0, "index(n) requires n > 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace arb
