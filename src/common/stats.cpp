#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace arb {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::mean() const {
  return count_ == 0 ? 0.0 : mean_;
}

double StreamingStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const {
  return std::sqrt(variance());
}

double StreamingStats::min() const {
  ARB_REQUIRE(count_ > 0, "min() of empty StreamingStats");
  return min_;
}

double StreamingStats::max() const {
  ARB_REQUIRE(count_ > 0, "max() of empty StreamingStats");
  return max_;
}

std::string StreamingStats::summary() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev();
  if (count_ > 0) os << " min=" << min_ << " max=" << max_;
  return os.str();
}

double percentile(std::vector<double> sample, double q) {
  ARB_REQUIRE(!sample.empty(), "percentile of empty sample");
  ARB_REQUIRE(q >= 0.0 && q <= 1.0, "percentile quantile must be in [0,1]");
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= sample.size()) return sample.back();
  return sample[lower] * (1.0 - frac) + sample[lower + 1] * frac;
}

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  ARB_REQUIRE(xs.size() == ys.size() && !xs.empty(),
              "pearson_correlation requires equal non-empty samples");
  StreamingStats sx;
  StreamingStats sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ARB_REQUIRE(hi > lo, "Histogram requires hi > lo");
  ARB_REQUIRE(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count_in_bin(std::size_t bin) const {
  ARB_REQUIRE(bin < counts_.size(), "bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  ARB_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = counts_[b] * width / peak;
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
       << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace arb
