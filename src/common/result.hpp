#pragma once

/// \file result.hpp
/// Result<T>: a minimal expected-style sum type (std::expected is C++23;
/// this library targets C++20). Holds either a value or an arb::Error.

#include <optional>
#include <utility>
#include <variant>

#include "common/error.hpp"

namespace arb {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: lets `return value;` and `return error;`
  // both convert, mirroring std::expected.
  Result(T value) : storage_(std::move(value)) {}
  Result(Error error) : storage_(std::move(error)) {}

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// Value access. Precondition: ok().
  [[nodiscard]] const T& value() const& {
    ARB_REQUIRE(ok(), "Result::value() on error: " + error().to_string());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    ARB_REQUIRE(ok(), "Result::value() on error: " + error().to_string());
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    ARB_REQUIRE(ok(), "Result::value() on error: " + error().to_string());
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// Error access. Precondition: !ok().
  [[nodiscard]] const Error& error() const {
    ARB_REQUIRE(!ok(), "Result::error() on success");
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

  /// Applies \p fn to the contained value, propagating errors.
  template <typename Fn>
  [[nodiscard]] auto map(Fn&& fn) const& -> Result<decltype(fn(std::declval<const T&>()))> {
    if (!ok()) return error();
    return std::forward<Fn>(fn)(std::get<0>(storage_));
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    ARB_REQUIRE(!ok(), "Status::error() on success");
    return *error_;
  }

  [[nodiscard]] static Status success() { return Status{}; }

 private:
  std::optional<Error> error_;
};

}  // namespace arb
