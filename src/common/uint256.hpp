#pragma once

/// \file uint256.hpp
/// 256-bit unsigned integer arithmetic.
///
/// The analytical layer of the library works in doubles, but Uniswap V2
/// itself computes swaps in Solidity uint256 arithmetic with flooring
/// division. amm/swap_math.hpp mirrors that exact integer pipeline
/// (`getAmountOut`) on top of this type so tests can bound the error the
/// real-valued model introduces. Reserves are uint112 on-chain, so all
/// intermediate products here (≤ 234 bits) fit without overflow.

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace arb {

class U256;

/// Quotient and remainder in one pass.
struct U256DivMod;

class U256 {
 public:
  /// Zero.
  constexpr U256() = default;
  constexpr U256(std::uint64_t v) : limbs_{v, 0, 0, 0} {}  // NOLINT(implicit)

  /// Little-endian limb construction (limb 0 = least significant).
  static constexpr U256 from_limbs(std::uint64_t l0, std::uint64_t l1,
                                   std::uint64_t l2, std::uint64_t l3) {
    U256 out;
    out.limbs_[0] = l0;
    out.limbs_[1] = l1;
    out.limbs_[2] = l2;
    out.limbs_[3] = l3;
    return out;
  }

  /// Parses a non-empty decimal string. Fails on junk or overflow.
  static Result<U256> from_decimal(const std::string& text);

  [[nodiscard]] std::uint64_t limb(int i) const { return limbs_[i]; }
  [[nodiscard]] bool is_zero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] int bit_length() const;

  /// True iff the value fits in 64 bits.
  [[nodiscard]] bool fits_u64() const {
    return (limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }
  /// Truncating conversion. Precondition: fits_u64().
  [[nodiscard]] std::uint64_t to_u64() const;

  /// Nearest double (may round for values above 2^53).
  [[nodiscard]] double to_double() const;

  [[nodiscard]] std::string to_decimal() const;

  // -- arithmetic (throws PreconditionError on overflow / divide-by-zero) --
  friend U256 operator+(const U256& a, const U256& b);
  friend U256 operator-(const U256& a, const U256& b);
  friend U256 operator*(const U256& a, const U256& b);
  friend U256 operator/(const U256& a, const U256& b);
  friend U256 operator%(const U256& a, const U256& b);
  friend U256 operator<<(const U256& a, int shift);
  friend U256 operator>>(const U256& a, int shift);

  friend bool operator==(const U256& a, const U256& b) = default;
  friend std::strong_ordering operator<=>(const U256& a, const U256& b);

  static U256DivMod divmod(const U256& numerator, const U256& denominator);

  /// Overflow-checked helpers used by tests.
  static bool add_overflows(const U256& a, const U256& b);
  static bool mul_overflows(const U256& a, const U256& b);

 private:
  std::uint64_t limbs_[4] = {0, 0, 0, 0};
};

struct U256DivMod {
  U256 quotient;
  U256 remainder;
};

}  // namespace arb
