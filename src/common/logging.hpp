#pragma once

/// \file logging.hpp
/// Minimal leveled logger. Default level is kWarn so library code can log
/// diagnostics (solver iterations, generator calibration) without spamming
/// benchmark output; tests and examples may raise verbosity.

#include <sstream>
#include <string>

namespace arb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void emit_log(LogLevel level, const std::string& message);
}

#define ARB_LOG(level, expr)                                    \
  do {                                                          \
    if ((level) >= ::arb::log_level()) {                        \
      std::ostringstream arb_log_os;                            \
      arb_log_os << expr;                                       \
      ::arb::detail::emit_log((level), arb_log_os.str());       \
    }                                                           \
  } while (false)

#define ARB_LOG_DEBUG(expr) ARB_LOG(::arb::LogLevel::kDebug, expr)
#define ARB_LOG_INFO(expr) ARB_LOG(::arb::LogLevel::kInfo, expr)
#define ARB_LOG_WARN(expr) ARB_LOG(::arb::LogLevel::kWarn, expr)
#define ARB_LOG_ERROR(expr) ARB_LOG(::arb::LogLevel::kError, expr)

}  // namespace arb
