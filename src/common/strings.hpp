#pragma once

/// \file strings.hpp
/// Small string utilities shared by the CSV/market IO layers.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace arb {

/// Splits on a single character; adjacent delimiters yield empty pieces.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Strict double parse (whole string must be consumed).
[[nodiscard]] Result<double> parse_double(std::string_view text);

/// Strict non-negative integer parse.
[[nodiscard]] Result<std::uint64_t> parse_u64(std::string_view text);

/// True if \p text starts with \p prefix.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view separator);

}  // namespace arb
