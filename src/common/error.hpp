#pragma once

/// \file error.hpp
/// Library-wide error vocabulary.
///
/// The library reports recoverable failures through Result<T>
/// (common/result.hpp) carrying an Error value; exceptions are reserved
/// for programming errors (precondition violations) via ARB_REQUIRE.

#include <stdexcept>
#include <string>
#include <string_view>

namespace arb {

/// Coarse classification of a recoverable failure.
enum class ErrorCode {
  kInvalidArgument,   ///< caller supplied an out-of-domain value
  kNotFound,          ///< lookup failed (token, pool, price, ...)
  kNumericFailure,    ///< solver or linear algebra did not converge
  kInfeasible,        ///< optimization problem has no feasible point
  kParseError,        ///< malformed input file / string
  kIoError,           ///< filesystem failure
  kInvariantViolated, ///< AMM or plan invariant broken during execution
  kCapacityExceeded,  ///< requested trade exceeds pool reserves
};

[[nodiscard]] std::string_view to_string(ErrorCode code);

/// A recoverable failure: code plus human-readable context.
struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

/// Thrown only on precondition violations (programming errors).
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& message);
}  // namespace detail

/// Precondition check. Unlike assert(), stays active in release builds:
/// the failure modes it guards (negative reserves, empty loops, ...) would
/// otherwise silently corrupt numeric results.
#define ARB_REQUIRE(expr, message)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::arb::detail::throw_precondition(#expr, __FILE__, __LINE__,         \
                                        (message));                       \
    }                                                                      \
  } while (false)

}  // namespace arb
