#include "common/error.hpp"

#include <sstream>

namespace arb {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kNumericFailure:
      return "numeric_failure";
    case ErrorCode::kInfeasible:
      return "infeasible";
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kIoError:
      return "io_error";
    case ErrorCode::kInvariantViolated:
      return "invariant_violated";
    case ErrorCode::kCapacityExceeded:
      return "capacity_exceeded";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::ostringstream os;
  os << arb::to_string(code) << ": " << message;
  return os.str();
}

namespace detail {

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line
     << " — " << message;
  throw PreconditionError(os.str());
}

}  // namespace detail
}  // namespace arb
