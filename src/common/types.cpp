#include "common/types.hpp"

namespace arb {

std::string to_string(TokenId id) {
  return id.valid() ? "token#" + std::to_string(id.value()) : "token#<invalid>";
}

std::string to_string(PoolId id) {
  return id.valid() ? "pool#" + std::to_string(id.value()) : "pool#<invalid>";
}

}  // namespace arb
