#include "math/linear_solve.hpp"

#include <cmath>

#include "common/error.hpp"

namespace arb::math {

Result<Matrix> cholesky_factor(const Matrix& a) {
  ARB_REQUIRE(a.rows() == a.cols(), "Cholesky requires square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return make_error(ErrorCode::kNumericFailure,
                        "matrix not positive definite at pivot " +
                            std::to_string(j));
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

Result<Vector> cholesky_solve(const Matrix& a, const Vector& b) {
  ARB_REQUIRE(a.rows() == b.size(), "shape mismatch in cholesky_solve");
  auto factor = cholesky_factor(a);
  if (!factor) return factor.error();
  const Matrix& l = *factor;
  const std::size_t n = b.size();

  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  // Back substitution: Lᵀ x = y.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
    x[i] = acc / l(i, i);
  }
  return x;
}

Result<Vector> lu_solve(const Matrix& a, const Vector& b) {
  ARB_REQUIRE(a.rows() == a.cols(), "lu_solve requires square matrix");
  ARB_REQUIRE(a.rows() == b.size(), "shape mismatch in lu_solve");
  const std::size_t n = a.rows();
  Matrix lu = a;
  Vector x = b;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (!(best > 0.0) || !std::isfinite(best)) {
      return make_error(ErrorCode::kNumericFailure,
                        "singular matrix in lu_solve at column " +
                            std::to_string(col));
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(x[col], x[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / lu(col, col);
      lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
      x[r] -= factor * x[col];
    }
  }
  // Back substitution on U.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = x[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= lu(i, c) * x[c];
    x[i] = acc / lu(i, i);
  }
  return x;
}

Result<Vector> regularized_spd_solve(const Matrix& a, const Vector& b,
                                     double initial_tau, int max_attempts) {
  auto direct = cholesky_solve(a, b);
  if (direct) return direct;
  // Scale the shift to the matrix: an absolute tau is meaningless when
  // diagonal entries are 1e20 (barrier Hessians at large t) or 1e-12.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    diag_scale = std::max(diag_scale, std::abs(a(i, i)));
  }
  if (!(diag_scale > 0.0) || !std::isfinite(diag_scale)) diag_scale = 1.0;
  double tau = initial_tau * diag_scale;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Matrix shifted = a;
    for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) += tau;
    auto solved = cholesky_solve(shifted, b);
    if (solved) return solved;
    tau *= 10.0;
  }
  return make_error(ErrorCode::kNumericFailure,
                    "regularized_spd_solve failed even with relative tau " +
                        std::to_string(initial_tau) + " * 10^" +
                        std::to_string(max_attempts) + " * diag " +
                        std::to_string(diag_scale));
}

}  // namespace arb::math
