#include "math/linear_solve.hpp"

#include <cmath>

#include "common/error.hpp"

namespace arb::math {

namespace {

/// Core Cholesky kernel. Returns the pivot index at which the matrix
/// failed to be positive definite, or a negative value on success.
/// Error-object construction is kept out of this kernel so the
/// regularized retry loop stays allocation-free on the happy path.
long cholesky_factor_kernel(const Matrix& a, Matrix& l) {
  const std::size_t n = a.rows();
  l.assign(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return static_cast<long>(j);
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return -1;
}

/// Forward + back substitution with the factor from the kernel above.
void cholesky_substitute(const Matrix& l, const Vector& b, Vector& x,
                         Vector& y) {
  const std::size_t n = b.size();
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
    y[i] = acc / l(i, i);
  }
  x.resize(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l(k, i) * x[k];
    x[i] = acc / l(i, i);
  }
}

}  // namespace

Status cholesky_factor_into(const Matrix& a, Matrix& l) {
  ARB_REQUIRE(a.rows() == a.cols(), "Cholesky requires square matrix");
  const long bad_pivot = cholesky_factor_kernel(a, l);
  if (bad_pivot >= 0) {
    return make_error(ErrorCode::kNumericFailure,
                      "matrix not positive definite at pivot " +
                          std::to_string(bad_pivot));
  }
  return Status::success();
}

Result<Matrix> cholesky_factor(const Matrix& a) {
  Matrix l;
  auto status = cholesky_factor_into(a, l);
  if (!status) return status.error();
  return l;
}

Status cholesky_solve_into(const Matrix& a, const Vector& b, Vector& x,
                           LinearSolveScratch& scratch) {
  ARB_REQUIRE(a.rows() == b.size(), "shape mismatch in cholesky_solve");
  auto factored = cholesky_factor_into(a, scratch.factor);
  if (!factored) return factored;
  cholesky_substitute(scratch.factor, b, x, scratch.y);
  return Status::success();
}

Result<Vector> cholesky_solve(const Matrix& a, const Vector& b) {
  LinearSolveScratch scratch;
  Vector x;
  auto status = cholesky_solve_into(a, b, x, scratch);
  if (!status) return status.error();
  return x;
}

Result<Vector> lu_solve(const Matrix& a, const Vector& b) {
  ARB_REQUIRE(a.rows() == a.cols(), "lu_solve requires square matrix");
  ARB_REQUIRE(a.rows() == b.size(), "shape mismatch in lu_solve");
  const std::size_t n = a.rows();
  Matrix lu = a;
  Vector x = b;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (!(best > 0.0) || !std::isfinite(best)) {
      return make_error(ErrorCode::kNumericFailure,
                        "singular matrix in lu_solve at column " +
                            std::to_string(col));
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(x[col], x[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / lu(col, col);
      lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
      x[r] -= factor * x[col];
    }
  }
  // Back substitution on U.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = x[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= lu(i, c) * x[c];
    x[i] = acc / lu(i, i);
  }
  return x;
}

Status regularized_spd_solve_into(const Matrix& a, const Vector& b, Vector& x,
                                  LinearSolveScratch& scratch,
                                  double initial_tau, int max_attempts) {
  ARB_REQUIRE(a.rows() == b.size(), "shape mismatch in regularized_spd_solve");
  if (cholesky_factor_kernel(a, scratch.factor) < 0) {
    cholesky_substitute(scratch.factor, b, x, scratch.y);
    return Status::success();
  }
  // Scale the shift to the matrix: an absolute tau is meaningless when
  // diagonal entries are 1e20 (barrier Hessians at large t) or 1e-12.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    diag_scale = std::max(diag_scale, std::abs(a(i, i)));
  }
  if (!(diag_scale > 0.0) || !std::isfinite(diag_scale)) diag_scale = 1.0;
  double tau = initial_tau * diag_scale;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    scratch.shifted = a;
    for (std::size_t i = 0; i < a.rows(); ++i) scratch.shifted(i, i) += tau;
    if (cholesky_factor_kernel(scratch.shifted, scratch.factor) < 0) {
      cholesky_substitute(scratch.factor, b, x, scratch.y);
      return Status::success();
    }
    tau *= 10.0;
  }
  return make_error(ErrorCode::kNumericFailure,
                    "regularized_spd_solve failed even with relative tau " +
                        std::to_string(initial_tau) + " * 10^" +
                        std::to_string(max_attempts) + " * diag " +
                        std::to_string(diag_scale));
}

Result<Vector> regularized_spd_solve(const Matrix& a, const Vector& b,
                                     double initial_tau, int max_attempts) {
  LinearSolveScratch scratch;
  Vector x;
  auto status =
      regularized_spd_solve_into(a, b, x, scratch, initial_tau, max_attempts);
  if (!status) return status.error();
  return x;
}

}  // namespace arb::math
