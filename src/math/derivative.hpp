#pragma once

/// \file derivative.hpp
/// Numeric differentiation helpers, used for cross-checking analytic
/// gradients in tests and for the bisection condition d out/d in = 1 when
/// only a black-box path function is available.

#include <cmath>
#include <functional>

namespace arb::math {

/// Central-difference first derivative with relative step.
[[nodiscard]] inline double central_derivative(
    const std::function<double(double)>& fn, double x, double step = 0.0) {
  const double h = step > 0.0 ? step : std::max(1e-7, std::abs(x) * 1e-7);
  return (fn(x + h) - fn(x - h)) / (2.0 * h);
}

/// Central-difference second derivative.
[[nodiscard]] inline double central_second_derivative(
    const std::function<double(double)>& fn, double x, double step = 0.0) {
  const double h = step > 0.0 ? step : std::max(1e-5, std::abs(x) * 1e-5);
  return (fn(x + h) - 2.0 * fn(x) + fn(x - h)) / (h * h);
}

}  // namespace arb::math
