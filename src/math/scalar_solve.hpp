#pragma once

/// \file scalar_solve.hpp
/// One-dimensional root finding and maximization. These are the paper's
/// workhorses: the traditional/MaxMax strategies find the optimal input by
/// bisection on the marginal-return condition d out/d in = 1.

#include <functional>

#include "common/result.hpp"

namespace arb::math {

/// Options shared by the scalar solvers.
struct ScalarSolveOptions {
  double x_tolerance = 1e-12;   ///< absolute bracket width to stop at
  double f_tolerance = 1e-12;   ///< |f| small enough to accept
  int max_iterations = 200;
};

struct ScalarSolveReport {
  double x = 0.0;        ///< solution abscissa
  double f = 0.0;        ///< objective / residual at x
  int iterations = 0;
  bool converged = false;
};

using ScalarFn = std::function<double(double)>;

/// Finds a root of \p fn in [lo, hi] by bisection.
/// Precondition-free: fails with kInvalidArgument unless fn(lo) and fn(hi)
/// have opposite signs (an endpoint exactly at zero is accepted).
[[nodiscard]] Result<ScalarSolveReport> bisect_root(
    const ScalarFn& fn, double lo, double hi,
    const ScalarSolveOptions& options = {});

/// Brent's method root finder (inverse-quadratic + secant + bisection
/// safeguard). Same bracketing contract as bisect_root, fewer evaluations.
[[nodiscard]] Result<ScalarSolveReport> brent_root(
    const ScalarFn& fn, double lo, double hi,
    const ScalarSolveOptions& options = {});

/// Maximizes a unimodal function on [lo, hi] by golden-section search.
/// Returns the maximizing x and the attained value.
[[nodiscard]] ScalarSolveReport golden_section_maximize(
    const ScalarFn& fn, double lo, double hi,
    const ScalarSolveOptions& options = {});

/// Expands [lo, hi] geometrically to the right until fn changes sign or
/// the limit is hit; returns the bracketing interval. Used to bracket the
/// marginal-return root when the optimal input's scale is unknown.
[[nodiscard]] Result<std::pair<double, double>> expand_bracket_right(
    const ScalarFn& fn, double lo, double initial_width, double max_hi,
    double growth = 2.0);

}  // namespace arb::math
