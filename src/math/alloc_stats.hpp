#pragma once

/// \file alloc_stats.hpp
/// Heap-allocation instrumentation for the math layer. Every buffer
/// acquisition made by math::Vector / math::Matrix (construction, growth
/// past capacity, copies) bumps a process-wide counter, so tests and
/// benches can assert that a steady-state solver path performs zero heap
/// allocations. The counter is a single relaxed atomic increment taken
/// only when the underlying std::vector actually calls allocate(), i.e.
/// its cost is negligible next to the allocation it observes.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace arb::math {

namespace detail {
std::atomic<std::uint64_t>& allocation_counter();
}  // namespace detail

/// Number of math-layer heap allocations since process start (or the
/// last reset). Monotone except for reset_allocation_count().
[[nodiscard]] inline std::uint64_t allocation_count() {
  return detail::allocation_counter().load(std::memory_order_relaxed);
}

inline void reset_allocation_count() {
  detail::allocation_counter().store(0, std::memory_order_relaxed);
}

namespace detail {

/// std::allocator<T> that counts successful allocations. Equality
/// semantics are those of the stateless std::allocator, so containers
/// propagate/swap it freely.
template <typename T>
struct CountingAllocator {
  using value_type = T;

  CountingAllocator() = default;
  template <typename U>
  CountingAllocator(const CountingAllocator<U>&) {}  // NOLINT(implicit)

  [[nodiscard]] T* allocate(std::size_t n) {
    T* p = std::allocator<T>{}.allocate(n);
    allocation_counter().fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  void deallocate(T* p, std::size_t n) {
    std::allocator<T>{}.deallocate(p, n);
  }

  friend bool operator==(const CountingAllocator&, const CountingAllocator&) {
    return true;
  }
};

}  // namespace detail

}  // namespace arb::math
