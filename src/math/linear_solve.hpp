#pragma once

/// \file linear_solve.hpp
/// Direct solvers for the small dense systems arising in the Newton steps
/// of the barrier interior-point method.

#include "common/result.hpp"
#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::math {

/// Cholesky factor (lower-triangular L with A = L Lᵀ) of a symmetric
/// positive-definite matrix. Fails with kNumericFailure if A is not
/// (numerically) positive definite.
[[nodiscard]] Result<Matrix> cholesky_factor(const Matrix& a);

/// Solves A x = b via Cholesky. Precondition: A symmetric; fails if not
/// positive definite.
[[nodiscard]] Result<Vector> cholesky_solve(const Matrix& a, const Vector& b);

/// Solves A x = b via LU with partial pivoting. Works for any invertible
/// square A; fails with kNumericFailure on (near-)singularity.
[[nodiscard]] Result<Vector> lu_solve(const Matrix& a, const Vector& b);

/// Solves the symmetric positive-definite system with a Tikhonov fallback:
/// tries plain Cholesky first, then A + τI with growing τ. Used by the
/// Newton loop when the Hessian is only positive semi-definite at the
/// boundary of the feasible region.
[[nodiscard]] Result<Vector> regularized_spd_solve(const Matrix& a,
                                                   const Vector& b,
                                                   double initial_tau = 1e-10,
                                                   int max_attempts = 20);

/// Reusable buffers for the in-place solver variants below. Once the
/// buffers have grown to the largest problem size they are reused verbatim,
/// so repeated solves of same-or-smaller systems perform no allocations.
struct LinearSolveScratch {
  Matrix factor;   ///< Cholesky factor L.
  Matrix shifted;  ///< A + τI copy for the regularized fallback.
  Vector y;        ///< Forward-substitution intermediate.

  /// Pre-grows every buffer for systems of dimension ≤ n.
  void reserve(std::size_t n) {
    factor.reserve(n, n);
    shifted.reserve(n, n);
    y.reserve(n);
  }
};

/// Cholesky factorization writing L into \p l (reshaped as needed,
/// capacity-preserving). Allocation-free once \p l has capacity n².
[[nodiscard]] Status cholesky_factor_into(const Matrix& a, Matrix& l);

/// Solves A x = b via Cholesky using preallocated buffers. \p x may alias
/// \p b is NOT supported; \p x is reshaped to b.size().
[[nodiscard]] Status cholesky_solve_into(const Matrix& a, const Vector& b,
                                         Vector& x,
                                         LinearSolveScratch& scratch);

/// In-place counterpart of regularized_spd_solve: identical numerics,
/// but all temporaries live in \p scratch.
[[nodiscard]] Status regularized_spd_solve_into(const Matrix& a,
                                                const Vector& b, Vector& x,
                                                LinearSolveScratch& scratch,
                                                double initial_tau = 1e-10,
                                                int max_attempts = 20);

}  // namespace arb::math
