#pragma once

/// \file linear_solve.hpp
/// Direct solvers for the small dense systems arising in the Newton steps
/// of the barrier interior-point method.

#include "common/result.hpp"
#include "math/matrix.hpp"
#include "math/vector.hpp"

namespace arb::math {

/// Cholesky factor (lower-triangular L with A = L Lᵀ) of a symmetric
/// positive-definite matrix. Fails with kNumericFailure if A is not
/// (numerically) positive definite.
[[nodiscard]] Result<Matrix> cholesky_factor(const Matrix& a);

/// Solves A x = b via Cholesky. Precondition: A symmetric; fails if not
/// positive definite.
[[nodiscard]] Result<Vector> cholesky_solve(const Matrix& a, const Vector& b);

/// Solves A x = b via LU with partial pivoting. Works for any invertible
/// square A; fails with kNumericFailure on (near-)singularity.
[[nodiscard]] Result<Vector> lu_solve(const Matrix& a, const Vector& b);

/// Solves the symmetric positive-definite system with a Tikhonov fallback:
/// tries plain Cholesky first, then A + τI with growing τ. Used by the
/// Newton loop when the Hessian is only positive semi-definite at the
/// boundary of the feasible region.
[[nodiscard]] Result<Vector> regularized_spd_solve(const Matrix& a,
                                                   const Vector& b,
                                                   double initial_tau = 1e-10,
                                                   int max_attempts = 20);

}  // namespace arb::math
