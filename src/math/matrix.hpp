#pragma once

/// \file matrix.hpp
/// Dense row-major matrix companion to math::Vector. Like Vector, its
/// buffer is allocation-instrumented and size changes preserve capacity
/// so solver workspaces can reuse matrices allocation-free.

#include <cstddef>
#include <string>
#include <vector>

#include "math/alloc_stats.hpp"
#include "math/vector.hpp"

namespace arb::math {

class Matrix {
 public:
  using Buffer = std::vector<double, detail::CountingAllocator<double>>;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  /// Moves steal the buffer: the source is left 0×0, no allocation.
  Matrix(Matrix&&) noexcept;
  Matrix& operator=(Matrix&&) noexcept;

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Builds diag(d).
  [[nodiscard]] static Matrix diagonal(const Vector& d);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t capacity() const { return data_.capacity(); }

  /// Capacity-preserving reshape + fill of every element: only allocates
  /// when rows·cols exceeds the buffer's current capacity.
  void assign(std::size_t rows, std::size_t cols, double fill);
  /// Grows capacity without changing shape.
  void reserve(std::size_t rows, std::size_t cols) {
    data_.reserve(rows * cols);
  }

  void fill(double value);
  void set_zero() { fill(0.0); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs);
  friend Matrix operator*(double scalar, Matrix m);

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Vector multiply(const Vector& v) const;
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  /// Rank-1 update: *this += scale * u v^T.
  void add_outer_product(const Vector& u, const Vector& v, double scale);

  [[nodiscard]] bool all_finite() const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Buffer data_;
};

}  // namespace arb::math
