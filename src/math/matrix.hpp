#pragma once

/// \file matrix.hpp
/// Dense row-major matrix companion to math::Vector.

#include <cstddef>
#include <string>
#include <vector>

#include "math/vector.hpp"

namespace arb::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Builds diag(d).
  [[nodiscard]] static Matrix diagonal(const Vector& d);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs);
  friend Matrix operator*(double scalar, Matrix m);

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Vector multiply(const Vector& v) const;
  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  /// Rank-1 update: *this += scale * u v^T.
  void add_outer_product(const Vector& u, const Vector& v, double scale);

  [[nodiscard]] bool all_finite() const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace arb::math
