#include "math/vector.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace arb::math {

Vector::Vector(std::size_t n, double fill) : data_(n, fill) {}

Vector::Vector(std::initializer_list<double> values)
    : data_(values.begin(), values.end()) {}

void Vector::fill(double value) {
  for (double& x : data_) x = value;
}

double& Vector::operator[](std::size_t i) {
  ARB_REQUIRE(i < data_.size(), "Vector index out of range");
  return data_[i];
}

double Vector::operator[](std::size_t i) const {
  ARB_REQUIRE(i < data_.size(), "Vector index out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  ARB_REQUIRE(size() == rhs.size(), "Vector size mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  ARB_REQUIRE(size() == rhs.size(), "Vector size mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

void Vector::add_scaled(const Vector& v, double scale) {
  ARB_REQUIRE(size() == v.size(), "Vector size mismatch in add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * v.data_[i];
  }
}

Vector operator+(Vector lhs, const Vector& rhs) {
  lhs += rhs;
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  lhs -= rhs;
  return lhs;
}

Vector operator*(double scalar, Vector v) {
  v *= scalar;
  return v;
}

Vector operator*(Vector v, double scalar) {
  v *= scalar;
  return v;
}

double Vector::dot(const Vector& rhs) const {
  ARB_REQUIRE(size() == rhs.size(), "Vector size mismatch in dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

double Vector::norm() const {
  return std::sqrt(dot(*this));
}

double Vector::norm_inf() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

bool Vector::all_finite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Vector::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i != 0) os << ", ";
    os << data_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace arb::math
