#pragma once

/// \file vector.hpp
/// Dense real vector for the small optimization problems in this library
/// (loop lengths 3–12 → problem sizes ≤ ~24). Simplicity and checkable
/// invariants over BLAS-grade performance.
///
/// Buffers are allocation-instrumented (math/alloc_stats.hpp) and every
/// mutating size change preserves capacity, so solver workspaces that
/// reuse vectors across solves reach a zero-allocation steady state.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "math/alloc_stats.hpp"

namespace arb::math {

class Vector {
 public:
  using Buffer = std::vector<double, detail::CountingAllocator<double>>;

  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0);
  Vector(std::initializer_list<double> values);

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  /// Moves steal the buffer: the source is left empty, no allocation.
  Vector(Vector&&) noexcept = default;
  Vector& operator=(Vector&&) noexcept = default;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return data_.capacity(); }

  /// Capacity-preserving size change: never shrinks the buffer, and only
  /// allocates when n exceeds the current capacity. Existing prefix
  /// values are kept; new elements are zero.
  void resize(std::size_t n) { data_.resize(n, 0.0); }
  /// Capacity-preserving resize + fill of every element.
  void assign(std::size_t n, double fill) { data_.assign(n, fill); }
  /// Grows capacity without changing size.
  void reserve(std::size_t n) { data_.reserve(n); }

  void fill(double value);
  void set_zero() { fill(0.0); }

  [[nodiscard]] double& operator[](std::size_t i);
  [[nodiscard]] double operator[](std::size_t i) const;

  [[nodiscard]] const Buffer& data() const { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scalar);

  /// *this += scale · v, without temporaries.
  void add_scaled(const Vector& v, double scale);

  friend Vector operator+(Vector lhs, const Vector& rhs);
  friend Vector operator-(Vector lhs, const Vector& rhs);
  friend Vector operator*(double scalar, Vector v);
  friend Vector operator*(Vector v, double scalar);
  friend bool operator==(const Vector&, const Vector&) = default;

  [[nodiscard]] double dot(const Vector& rhs) const;
  /// Euclidean norm.
  [[nodiscard]] double norm() const;
  /// Max-abs norm.
  [[nodiscard]] double norm_inf() const;

  /// All components finite (no NaN/Inf).
  [[nodiscard]] bool all_finite() const;

  [[nodiscard]] std::string to_string() const;

 private:
  Buffer data_;
};

}  // namespace arb::math
