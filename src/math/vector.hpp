#pragma once

/// \file vector.hpp
/// Dense real vector for the small optimization problems in this library
/// (loop lengths 3–12 → problem sizes ≤ ~24). Simplicity and checkable
/// invariants over BLAS-grade performance.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace arb::math {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0);
  Vector(std::initializer_list<double> values);

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator[](std::size_t i);
  [[nodiscard]] double operator[](std::size_t i) const;

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scalar);

  friend Vector operator+(Vector lhs, const Vector& rhs);
  friend Vector operator-(Vector lhs, const Vector& rhs);
  friend Vector operator*(double scalar, Vector v);
  friend Vector operator*(Vector v, double scalar);
  friend bool operator==(const Vector&, const Vector&) = default;

  [[nodiscard]] double dot(const Vector& rhs) const;
  /// Euclidean norm.
  [[nodiscard]] double norm() const;
  /// Max-abs norm.
  [[nodiscard]] double norm_inf() const;

  /// All components finite (no NaN/Inf).
  [[nodiscard]] bool all_finite() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<double> data_;
};

}  // namespace arb::math
