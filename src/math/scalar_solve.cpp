#include "math/scalar_solve.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace arb::math {
namespace {

bool opposite_signs(double a, double b) {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}

}  // namespace

Result<ScalarSolveReport> bisect_root(const ScalarFn& fn, double lo, double hi,
                                      const ScalarSolveOptions& options) {
  ARB_REQUIRE(lo <= hi, "bisect_root requires lo <= hi");
  double f_lo = fn(lo);
  double f_hi = fn(hi);
  if (!opposite_signs(f_lo, f_hi)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "bisect_root: no sign change on bracket");
  }
  ScalarSolveReport report;
  if (f_lo == 0.0) {
    report = {lo, 0.0, 0, true};
    return report;
  }
  if (f_hi == 0.0) {
    report = {hi, 0.0, 0, true};
    return report;
  }
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double f_mid = fn(mid);
    report.iterations = iter + 1;
    if (std::abs(f_mid) <= options.f_tolerance ||
        (hi - lo) * 0.5 <= options.x_tolerance) {
      report.x = mid;
      report.f = f_mid;
      report.converged = true;
      return report;
    }
    if (opposite_signs(f_lo, f_mid)) {
      hi = mid;
      f_hi = f_mid;
    } else {
      lo = mid;
      f_lo = f_mid;
    }
  }
  report.x = 0.5 * (lo + hi);
  report.f = fn(report.x);
  report.converged = std::abs(report.f) <= options.f_tolerance * 1e3;
  return report;
}

Result<ScalarSolveReport> brent_root(const ScalarFn& fn, double lo, double hi,
                                     const ScalarSolveOptions& options) {
  ARB_REQUIRE(lo <= hi, "brent_root requires lo <= hi");
  double a = lo;
  double b = hi;
  double fa = fn(a);
  double fb = fn(b);
  if (!opposite_signs(fa, fb)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "brent_root: no sign change on bracket");
  }
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  bool used_bisection = true;
  double d = 0.0;  // previous-previous b (only read after first iteration)

  ScalarSolveReport report;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    report.iterations = iter + 1;
    if (std::abs(fb) <= options.f_tolerance ||
        std::abs(b - a) <= options.x_tolerance) {
      report.x = b;
      report.f = fb;
      report.converged = true;
      return report;
    }
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double mid = (3.0 * a + b) / 4.0;
    const double lo_guard = std::min(mid, b);
    const double hi_guard = std::max(mid, b);
    const bool out_of_range = s < lo_guard || s > hi_guard;
    const bool slow_interp =
        (used_bisection && std::abs(s - b) >= std::abs(b - c) / 2.0) ||
        (!used_bisection && std::abs(s - b) >= std::abs(c - d) / 2.0);
    if (out_of_range || slow_interp) {
      s = 0.5 * (a + b);
      used_bisection = true;
    } else {
      used_bisection = false;
    }
    const double fs = fn(s);
    d = c;
    c = b;
    fc = fb;
    if (opposite_signs(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  report.x = b;
  report.f = fb;
  report.converged = std::abs(fb) <= options.f_tolerance * 1e3;
  return report;
}

ScalarSolveReport golden_section_maximize(const ScalarFn& fn, double lo,
                                          double hi,
                                          const ScalarSolveOptions& options) {
  ARB_REQUIRE(lo <= hi, "golden_section_maximize requires lo <= hi");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = fn(x1);
  double f2 = fn(x2);
  ScalarSolveReport report;
  int iter = 0;
  while (iter < options.max_iterations && (b - a) > options.x_tolerance) {
    ++iter;
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = fn(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = fn(x1);
    }
  }
  report.iterations = iter;
  report.x = 0.5 * (a + b);
  report.f = fn(report.x);
  report.converged = (b - a) <= options.x_tolerance * 4.0;
  return report;
}

Result<std::pair<double, double>> expand_bracket_right(const ScalarFn& fn,
                                                       double lo,
                                                       double initial_width,
                                                       double max_hi,
                                                       double growth) {
  ARB_REQUIRE(initial_width > 0.0, "initial_width must be positive");
  ARB_REQUIRE(growth > 1.0, "growth must exceed 1");
  const double f_lo = fn(lo);
  double hi = lo + initial_width;
  while (hi <= max_hi) {
    const double f_hi = fn(hi);
    if (opposite_signs(f_lo, f_hi)) {
      return std::make_pair(lo, hi);
    }
    hi = lo + (hi - lo) * growth;
  }
  return make_error(ErrorCode::kNumericFailure,
                    "expand_bracket_right: no sign change before max_hi");
}

}  // namespace arb::math
