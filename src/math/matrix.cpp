#include "math/matrix.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace arb::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

void Matrix::assign(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

void Matrix::fill(double value) {
  for (double& x : data_) x = value;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  ARB_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  ARB_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  ARB_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "Matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator*(double scalar, Matrix m) {
  m *= scalar;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Vector Matrix::multiply(const Vector& v) const {
  ARB_REQUIRE(cols_ == v.size(), "Matrix*Vector shape mismatch");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  ARB_REQUIRE(cols_ == rhs.rows_, "Matrix*Matrix shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double lhs_rk = (*this)(r, k);
      if (lhs_rk == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += lhs_rk * rhs(k, c);
      }
    }
  }
  return out;
}

void Matrix::add_outer_product(const Vector& u, const Vector& v, double scale) {
  ARB_REQUIRE(u.size() == rows_ && v.size() == cols_,
              "outer product shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    const double su = scale * u[r];
    if (su == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) {
      (*this)(r, c) += su * v[c];
    }
  }
}

bool Matrix::all_finite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) os << ", ";
      os << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

}  // namespace arb::math
