#pragma once

/// \file dual.hpp
/// Forward-mode automatic differentiation with dual numbers.
///
/// The swap composition out = F(F(...F(Δ)...)) is differentiated exactly
/// by evaluating it on Dual values; the traditional-strategy optimizer
/// uses this to get machine-precision marginal returns without resorting
/// to finite differences.

#include <cmath>

namespace arb::math {

/// value + derivative pair: f(a + ε) = f(a) + f'(a)·ε with ε² = 0.
struct Dual {
  double value = 0.0;
  double deriv = 0.0;

  constexpr Dual() = default;
  constexpr Dual(double v) : value(v) {}  // NOLINT(implicit): constants
  constexpr Dual(double v, double d) : value(v), deriv(d) {}

  /// The independent variable: derivative seeded to 1.
  [[nodiscard]] static constexpr Dual variable(double v) { return {v, 1.0}; }
};

constexpr Dual operator+(Dual a, Dual b) {
  return {a.value + b.value, a.deriv + b.deriv};
}
constexpr Dual operator-(Dual a, Dual b) {
  return {a.value - b.value, a.deriv - b.deriv};
}
constexpr Dual operator-(Dual a) { return {-a.value, -a.deriv}; }
constexpr Dual operator*(Dual a, Dual b) {
  return {a.value * b.value, a.deriv * b.value + a.value * b.deriv};
}
constexpr Dual operator/(Dual a, Dual b) {
  const double inv = 1.0 / b.value;
  return {a.value * inv, (a.deriv - a.value * b.deriv * inv) * inv};
}

inline Dual sqrt(Dual a) {
  const double root = std::sqrt(a.value);
  return {root, a.deriv / (2.0 * root)};
}
inline Dual log(Dual a) { return {std::log(a.value), a.deriv / a.value}; }
inline Dual exp(Dual a) {
  const double e = std::exp(a.value);
  return {e, a.deriv * e};
}

}  // namespace arb::math
