#include "math/alloc_stats.hpp"

namespace arb::math::detail {

std::atomic<std::uint64_t>& allocation_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

}  // namespace arb::math::detail
