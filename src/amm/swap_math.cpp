#include "amm/swap_math.hpp"

namespace arb::amm {

Result<double> swap_in_for_out(double x, double y, double gamma, double dy) {
  ARB_REQUIRE(x > 0.0 && y > 0.0, "swap_in_for_out requires positive reserves");
  ARB_REQUIRE(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
  ARB_REQUIRE(dy >= 0.0, "swap_in_for_out requires dy >= 0");
  if (dy >= y) {
    return make_error(ErrorCode::kCapacityExceeded,
                      "requested output " + std::to_string(dy) +
                          " >= reserve " + std::to_string(y));
  }
  // From γΔx·y/(x + γΔx) = dy:  Δx = x·dy / (γ·(y − dy)).
  return x * dy / (gamma * (y - dy));
}

U256 get_amount_out_exact(const U256& amount_in, const U256& reserve_in,
                          const U256& reserve_out,
                          std::uint64_t fee_numerator,
                          std::uint64_t fee_denominator) {
  ARB_REQUIRE(!reserve_in.is_zero() && !reserve_out.is_zero(),
              "get_amount_out_exact requires non-zero reserves");
  ARB_REQUIRE(fee_numerator <= fee_denominator && fee_denominator > 0,
              "invalid fee fraction");
  const U256 amount_in_with_fee = amount_in * U256{fee_numerator};
  const U256 numerator = amount_in_with_fee * reserve_out;
  const U256 denominator =
      reserve_in * U256{fee_denominator} + amount_in_with_fee;
  return numerator / denominator;
}

Result<U256> get_amount_in_exact(const U256& amount_out,
                                 const U256& reserve_in,
                                 const U256& reserve_out,
                                 std::uint64_t fee_numerator,
                                 std::uint64_t fee_denominator) {
  ARB_REQUIRE(!reserve_in.is_zero() && !reserve_out.is_zero(),
              "get_amount_in_exact requires non-zero reserves");
  if (amount_out >= reserve_out) {
    return make_error(ErrorCode::kCapacityExceeded,
                      "amount_out >= reserve_out");
  }
  // Mirrors UniswapV2Library.getAmountIn: ceil-division via +1.
  const U256 numerator = reserve_in * amount_out * U256{fee_denominator};
  const U256 denominator = (reserve_out - amount_out) * U256{fee_numerator};
  return numerator / denominator + U256{1};
}

}  // namespace arb::amm
