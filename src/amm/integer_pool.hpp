#pragma once

/// \file integer_pool.hpp
/// A constant-product pool in exact on-chain arithmetic: uint256
/// reserves, fee as a 997/1000-style integer fraction, flooring division
/// — bit-for-bit the math of the UniswapV2Pair contract. The sim module
/// re-executes real-valued plans on these pools to bound the error the
/// double model introduces before money would be at stake.

#include <cstdint>

#include "amm/pool.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "common/uint256.hpp"

namespace arb::amm {

class IntegerPool {
 public:
  /// Preconditions: distinct valid tokens, non-zero reserves,
  /// fee_numerator <= fee_denominator, fee_denominator > 0.
  IntegerPool(PoolId id, TokenId token0, TokenId token1, U256 reserve0,
              U256 reserve1, std::uint64_t fee_numerator = 997,
              std::uint64_t fee_denominator = 1000);

  /// Quantizes a real-valued pool: reserves are scaled by `units_per_token`
  /// and floored, mimicking a token with that many base units (e.g. 1e6
  /// for USDC-style 6 decimals).
  [[nodiscard]] static IntegerPool from_real(const CpmmPool& pool,
                                             double units_per_token);

  [[nodiscard]] PoolId id() const { return id_; }
  [[nodiscard]] TokenId token0() const { return token0_; }
  [[nodiscard]] TokenId token1() const { return token1_; }
  [[nodiscard]] const U256& reserve0() const { return reserve0_; }
  [[nodiscard]] const U256& reserve1() const { return reserve1_; }

  [[nodiscard]] bool contains(TokenId token) const;
  [[nodiscard]] TokenId other(TokenId token) const;
  [[nodiscard]] const U256& reserve_of(TokenId token) const;

  /// Exact getAmountOut quote (pure).
  [[nodiscard]] U256 quote(TokenId token_in, const U256& amount_in) const;

  /// Executes the swap, updating reserves exactly as the pair contract
  /// does. Fails with kCapacityExceeded if the output would drain the
  /// reserve to zero.
  [[nodiscard]] Result<U256> apply_swap(TokenId token_in,
                                        const U256& amount_in);

  /// k = reserve0 · reserve1 (never decreases across apply_swap; tested).
  [[nodiscard]] U256 k() const { return reserve0_ * reserve1_; }

 private:
  PoolId id_;
  TokenId token0_;
  TokenId token1_;
  U256 reserve0_;
  U256 reserve1_;
  std::uint64_t fee_numerator_;
  std::uint64_t fee_denominator_;
};

}  // namespace arb::amm
