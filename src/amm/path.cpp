#include "amm/path.hpp"

#include <cmath>

#include "math/scalar_solve.hpp"

namespace arb::amm {

MobiusCoefficients MobiusCoefficients::then_hop(double reserve_in,
                                                double reserve_out,
                                                double gamma) const {
  ARB_REQUIRE(reserve_in > 0.0 && reserve_out > 0.0,
              "hop requires positive reserves");
  ARB_REQUIRE(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
  MobiusCoefficients next;
  next.a = gamma * reserve_out * a;
  next.b = reserve_in * b;
  next.c = reserve_in * c + gamma * a;
  return next;
}

double MobiusCoefficients::evaluate(double input) const {
  ARB_REQUIRE(input >= 0.0, "input must be non-negative");
  return a * input / (b + c * input);
}

double MobiusCoefficients::derivative(double input) const {
  const double denom = b + c * input;
  return a * b / (denom * denom);
}

double MobiusCoefficients::optimal_input() const {
  // maximize aΔ/(b+cΔ) − Δ. Stationarity: ab/(b+cΔ)² = 1
  //   → Δ* = (√(ab) − b)/c. Profitable iff rate at zero a/b > 1.
  if (a <= b) return 0.0;
  ARB_REQUIRE(c > 0.0, "profitable Möbius map must have c > 0");
  return (std::sqrt(a * b) - b) / c;
}

Result<PoolPath> PoolPath::create(std::vector<Hop> hops) {
  if (hops.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty path");
  }
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const Hop& hop = hops[i];
    if (hop.pool == nullptr) {
      return make_error(ErrorCode::kInvalidArgument,
                        "null pool at hop " + std::to_string(i));
    }
    if (!hop.pool->contains(hop.token_in)) {
      return make_error(ErrorCode::kInvalidArgument,
                        "hop " + std::to_string(i) + " input token " +
                            to_string(hop.token_in) + " not in " +
                            to_string(hop.pool->id()));
    }
    if (i + 1 < hops.size() && hop.token_out() != hops[i + 1].token_in) {
      return make_error(ErrorCode::kInvalidArgument,
                        "path discontinuity between hop " +
                            std::to_string(i) + " and " +
                            std::to_string(i + 1));
    }
  }
  return PoolPath(std::move(hops));
}

MobiusCoefficients PoolPath::compose() const {
  MobiusCoefficients m = MobiusCoefficients::identity();
  for (const Hop& hop : hops_) {
    m = m.then_hop(hop.pool->reserve_of(hop.token_in),
                   hop.pool->reserve_of(hop.token_out()), hop.pool->gamma());
  }
  return m;
}

double PoolPath::evaluate(double input) const {
  double amount = input;
  for (const Hop& hop : hops_) {
    amount = hop.pool->quote(hop.token_in, amount).amount_out;
  }
  return amount;
}

math::Dual PoolPath::evaluate_dual(double input) const {
  math::Dual amount = math::Dual::variable(input);
  for (const Hop& hop : hops_) {
    const math::Dual r_in{hop.pool->reserve_of(hop.token_in)};
    const math::Dual r_out{hop.pool->reserve_of(hop.token_out())};
    amount = swap_out(r_in, r_out, hop.pool->gamma(), amount);
  }
  return amount;
}

double PoolPath::price_product() const {
  double product = 1.0;
  for (const Hop& hop : hops_) {
    product *= hop.pool->relative_price_of(hop.token_in);
  }
  return product;
}

std::vector<SwapQuote> PoolPath::hop_amounts(double input) const {
  std::vector<SwapQuote> quotes;
  quotes.reserve(hops_.size());
  double amount = input;
  for (const Hop& hop : hops_) {
    const SwapQuote q = hop.pool->quote(hop.token_in, amount);
    quotes.push_back(q);
    amount = q.amount_out;
  }
  return quotes;
}

OptimalTrade optimize_input_analytic(const PoolPath& path) {
  const MobiusCoefficients m = path.compose();
  OptimalTrade trade;
  trade.input = m.optimal_input();
  trade.output = m.evaluate(trade.input);
  trade.profit = trade.output - trade.input;
  return trade;
}

Result<OptimalTrade> optimize_input_bisection(const PoolPath& path,
                                              double x_tolerance) {
  const MobiusCoefficients m = path.compose();
  OptimalTrade trade;
  if (m.rate_at_zero() <= 1.0) {
    return trade;  // no profit at any size; optimum is 0
  }
  // Marginal return minus one, exact via dual numbers (the paper's
  // d out/d in = 1 condition).
  const auto marginal_minus_one = [&path](double input) {
    return path.evaluate_dual(input).deriv - 1.0;
  };
  // Marginal at 0 is > 1; it decreases monotonically. Bracket rightwards:
  // the input can never usefully exceed the first hop's reserve scale.
  const double scale =
      path.hops().front().pool->reserve_of(path.start_token());
  auto bracket = math::expand_bracket_right(marginal_minus_one, 0.0, scale * 1e-6,
                                            scale * 1e9);
  if (!bracket) return bracket.error();
  math::ScalarSolveOptions options;
  options.x_tolerance = x_tolerance;
  auto root = math::bisect_root(marginal_minus_one, bracket->first,
                                bracket->second, options);
  if (!root) return root.error();
  trade.input = root->x;
  trade.output = path.evaluate(trade.input);
  trade.profit = trade.output - trade.input;
  trade.iterations = root->iterations;
  return trade;
}

}  // namespace arb::amm
