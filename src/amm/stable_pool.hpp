#pragma once

/// \file stable_pool.hpp
/// A Curve-style StableSwap pool (two coins, amplification A).
///
/// The paper studies constant-product pools only; real DEX arbitrage
/// loops routinely cross StableSwap pools too, whose near-constant-sum
/// region around balance makes them far deeper for pegged pairs. The
/// invariant (n = 2 coins):
///
///   A·n²·(x + y) + D  =  A·n²·D + D³ / (n²·x·y)
///
/// interpolates between constant-sum (A → ∞) and constant-product
/// (A → 0). D and the post-swap balance have no closed form; both are
/// solved by the same Newton iterations the Curve contract uses.
/// The swap function stays strictly increasing and strictly concave, so
/// every optimizer in this library that relies only on those properties
/// (bisection / golden-section / the generic path optimizer) works on
/// it unchanged — which is exactly what the stable-pool ablation shows.

#include <string>

#include "amm/pool.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace arb::amm {

/// Closed-form view of the two-coin StableSwap curve at a *fixed*
/// invariant D. Given the input-side balance x, the output-side balance
/// is the positive root of
///
///   y² + B(x)·y = C(x),   B = x + D/Ann − D,   C = D³/(4·Ann·x),
///
/// with Ann = A·n² = 4A. The root and its first two derivatives have
/// closed forms, so barrier-solver iterations over a stable hop need no
/// inner Newton loop. `y()` uses the cancellation-safe branch of the
/// quadratic formula (B can exceed √(B²+4C) − B by many digits when the
/// pool is lopsided).
struct StableCurve {
  double d = 0.0;    ///< invariant D
  double ann = 0.0;  ///< A·n² = 4A

  /// Output-side balance at input-side balance `x` (> 0).
  [[nodiscard]] double y(double x) const;
  /// dy/dx < 0: the output balance falls as the input balance grows.
  [[nodiscard]] double dy_dx(double x) const;
  /// d²y/dx² > 0: y(x) is convex, so the swap function is concave.
  [[nodiscard]] double d2y_dx2(double x) const;
};

class StablePool {
 public:
  /// Preconditions: distinct valid tokens, positive reserves,
  /// amplification > 0, fee in [0, 1).
  StablePool(PoolId id, TokenId token0, TokenId token1, Amount reserve0,
             Amount reserve1, double amplification = 100.0,
             double fee = 0.0004);

  [[nodiscard]] PoolId id() const { return id_; }
  [[nodiscard]] TokenId token0() const { return token0_; }
  [[nodiscard]] TokenId token1() const { return token1_; }
  [[nodiscard]] Amount reserve0() const { return reserve0_; }
  [[nodiscard]] Amount reserve1() const { return reserve1_; }
  [[nodiscard]] double amplification() const { return amplification_; }
  [[nodiscard]] double fee() const { return fee_; }

  [[nodiscard]] bool contains(TokenId token) const;
  [[nodiscard]] TokenId other(TokenId token) const;
  [[nodiscard]] Amount reserve_of(TokenId token) const;

  /// The StableSwap invariant D at current reserves. Computed once per
  /// reserve state (constructor / apply_swap) and cached, so quotes and
  /// the solver kernel never re-run the D Newton.
  [[nodiscard]] double invariant() const { return invariant_d_; }

  /// Fixed-D closed-form curve at the current reserve state, for the
  /// barrier solver's analytic stable-hop kernel.
  [[nodiscard]] StableCurve curve() const {
    return StableCurve{invariant_d_, 4.0 * amplification_};
  }

  /// Quotes a swap without mutating state (fee charged on the output,
  /// as Curve does). Preconditions: contains(token_in), amount_in >= 0.
  [[nodiscard]] SwapQuote quote(TokenId token_in, Amount amount_in) const;

  /// Executes a swap. The fee share of the output stays in the pool
  /// (accrues to LPs), so the invariant never decreases.
  [[nodiscard]] Result<SwapQuote> apply_swap(TokenId token_in,
                                             Amount amount_in);

  /// Marginal rate at zero input (numeric; the curve has no closed-form
  /// derivative worth maintaining).
  [[nodiscard]] double spot_rate(TokenId token_in) const;

  /// Relative price of `token_in` in units of the other token at zero
  /// trade size (the paper's p_ij, fee included). Same quantity as
  /// spot_rate; named to match CpmmPool's surface for AnyPool dispatch.
  [[nodiscard]] double relative_price_of(TokenId token_in) const {
    return spot_rate(token_in);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  /// Solves the post-trade balance of the *other* side given the input
  /// side's new balance, holding D fixed.
  [[nodiscard]] double solve_other_balance(double new_in_balance,
                                           double d) const;

  PoolId id_;
  TokenId token0_;
  TokenId token1_;
  Amount reserve0_;
  Amount reserve1_;
  double amplification_;
  double fee_;
  /// Cached D for the current reserves; refreshed whenever they change.
  double invariant_d_;
};

}  // namespace arb::amm
