#pragma once

/// \file generic_path.hpp
/// Curve-agnostic swap paths and the optimizer that goes with them.
///
/// The Möbius algebra of path.hpp is exact but constant-product-only.
/// When a loop crosses other AMM designs (StableSwap here; anything
/// monotone-increasing and concave with f(0) = 0 in general), the
/// single-input optimization still has a unique maximum — this header
/// provides the black-box chain and a derivative-free optimizer for it.
/// Tests cross-check it against the closed form on all-CPMM paths.

#include <functional>
#include <vector>

#include "amm/path.hpp"
#include "amm/pool.hpp"
#include "amm/stable_pool.hpp"
#include "common/result.hpp"

namespace arb::amm {

/// One hop as a pure function: input amount -> output amount. Must be
/// monotone increasing, concave, and 0 at 0 for the optimizer's
/// guarantees to hold.
using SwapFn = std::function<double(double)>;

/// Wraps a CPMM pool hop (quote-only; does not mutate the pool).
[[nodiscard]] SwapFn swap_fn(const CpmmPool& pool, TokenId token_in);

/// Wraps a StableSwap pool hop.
[[nodiscard]] SwapFn swap_fn(const StablePool& pool, TokenId token_in);

// ---- Concave continuation (arXiv 2604.02909) ----
//
// The signed wrappers extend each trade function to negative inputs:
// F̃(d) for d < 0 is the (negated) input of the *reverse-direction* swap
// that emits −d, i.e. F̃(d) = −g⁻¹(−d) where g is the opposite-direction
// quote. F̃ stays concave and monotone; the fee produces a kink at 0
// (left derivative 1/γ² times the right one), which is exactly why
// round-tripping a pool loses money. Sell-side hops of the flow-form
// routing program evaluate on this extension. Outside the continuation's
// domain (receiving more than the pool can absorb: −d ≥ reserve, or a
// concentrated range edge) the extended value is −∞.

/// CPMM continuation: F̃(d) = d·y / (γ·(x + d)) on d ∈ (−x, 0); forward
/// swap for d ≥ 0.
[[nodiscard]] SwapFn signed_swap_fn(const CpmmPool& pool, TokenId token_in);

/// StableSwap continuation (fee on output, as the forward quote):
/// F̃(d) = y₀ − Y(x₀ + d/γ) on d ∈ (−γ·x₀, 0).
[[nodiscard]] SwapFn signed_swap_fn(const StablePool& pool, TokenId token_in);

/// A chain of black-box hops.
class GenericPath {
 public:
  /// Precondition: at least one hop.
  explicit GenericPath(std::vector<SwapFn> hops);

  [[nodiscard]] std::size_t length() const { return hops_.size(); }

  /// Output of the whole chain for a given input.
  [[nodiscard]] double evaluate(double input) const;

  /// Signed evaluation for chains built from signed_swap_fn hops:
  /// negative (sell-side) amounts propagate through the concave
  /// continuation, and −∞ (outside a continuation's domain) is absorbing.
  [[nodiscard]] double evaluate_signed(double input) const;

  /// Per-hop input amounts for a given path input (first = input).
  [[nodiscard]] std::vector<double> hop_inputs(double input) const;

 private:
  std::vector<SwapFn> hops_;
};

struct GenericOptimizeOptions {
  /// Starting width of the bracket-expansion search for the profit peak.
  double initial_scale = 1.0;
  /// Expansion cap: inputs beyond this are considered unbounded (error).
  double max_input = 1e15;
  double tolerance = 1e-10;
};

/// Maximizes evaluate(d) − d over d >= 0 for a cyclic chain (start and
/// end amounts in the same token). Returns the all-zero trade when the
/// chain is unprofitable at the margin.
[[nodiscard]] Result<OptimalTrade> optimize_input_generic(
    const GenericPath& path, const GenericOptimizeOptions& options = {});

/// Black-box variant over a chain evaluator (input → whole-chain
/// output). Same algorithm; lets callers that already hold the hops in
/// their own buffers (the generic convex solver's workspace-threaded
/// anchors) seed without constructing a GenericPath — no SwapFn copies.
[[nodiscard]] Result<OptimalTrade> optimize_input_generic(
    const std::function<double(double)>& evaluate,
    const GenericOptimizeOptions& options = {});

}  // namespace arb::amm
