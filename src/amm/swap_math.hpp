#pragma once

/// \file swap_math.hpp
/// The constant-product swap function and its exact derivatives.
///
/// Uniswap V2 trades against (x + γΔx)(y − Δy) = x·y with γ = 1 − λ
/// (λ = 0.3%). Solving for the output:
///
///   F(Δ | x, y, γ) = γΔ·y / (x + γΔ)
///
/// F is strictly concave, strictly increasing, F(0) = 0 — the properties
/// every proof in the paper rests on. Functions here are templated on the
/// scalar so they evaluate on double and on math::Dual (exact forward-mode
/// derivatives) alike. The integer variants mirror the on-chain uint256
/// arithmetic bit-for-bit.

#include <cmath>

#include "common/error.hpp"
#include "common/result.hpp"
#include "common/uint256.hpp"
#include "math/dual.hpp"

namespace arb::amm {

/// Output amount for an input of `dx` against reserves (x, y) with fee
/// multiplier gamma = 1 - fee. Requires x, y > 0; dx >= 0.
template <typename Scalar>
[[nodiscard]] Scalar swap_out(Scalar x, Scalar y, double gamma, Scalar dx) {
  const Scalar effective = Scalar(gamma) * dx;
  return effective * y / (x + effective);
}

/// d(swap_out)/d(dx) — marginal exchange rate at input dx.
[[nodiscard]] inline double swap_out_derivative(double x, double y,
                                                double gamma, double dx) {
  const double denom = x + gamma * dx;
  return gamma * x * y / (denom * denom);
}

/// Input required to receive exactly `dy` (inverse of swap_out).
/// Fails with kCapacityExceeded when dy >= y (the pool cannot emit its
/// entire reserve).
[[nodiscard]] Result<double> swap_in_for_out(double x, double y, double gamma,
                                             double dy);

/// Marginal (zero-size) relative price of the input token in output-token
/// units: p = γ·y/x, the paper's p_ij = (1 − λ)·r_j/r_i.
[[nodiscard]] inline double relative_price(double reserve_in,
                                           double reserve_out, double gamma) {
  ARB_REQUIRE(reserve_in > 0.0 && reserve_out > 0.0,
              "relative_price requires positive reserves");
  return gamma * reserve_out / reserve_in;
}

/// Exact Uniswap V2 `getAmountOut` in integer arithmetic:
///   amountOut = amountIn·feeNum·reserveOut / (reserveIn·feeDen + amountIn·feeNum)
/// with flooring division, feeNum/feeDen = 997/1000 on mainnet.
[[nodiscard]] U256 get_amount_out_exact(const U256& amount_in,
                                        const U256& reserve_in,
                                        const U256& reserve_out,
                                        std::uint64_t fee_numerator = 997,
                                        std::uint64_t fee_denominator = 1000);

/// Exact Uniswap V2 `getAmountIn` (ceiling division + 1 wei, as on-chain).
[[nodiscard]] Result<U256> get_amount_in_exact(
    const U256& amount_out, const U256& reserve_in, const U256& reserve_out,
    std::uint64_t fee_numerator = 997, std::uint64_t fee_denominator = 1000);

}  // namespace arb::amm
