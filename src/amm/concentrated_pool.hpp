#pragma once

/// \file concentrated_pool.hpp
/// A Uniswap-V3-style concentrated-liquidity pool with a single position.
///
/// Liquidity L is active on the price range [p_lo, p_hi] (price = token1
/// per token0). Within the range the pool behaves like a constant-product
/// pool with *virtual* reserves x_v = L/√P, y_v = L·√P; the real reserves
/// are the parts usable before the price exits the range:
///
///   x_real = L·(1/√P − 1/√p_hi),   y_real = L·(√P − √p_lo).
///
/// Swaps move √P linearly in the (fee-adjusted) input and clamp at the
/// range boundary — beyond it the position holds only one asset and the
/// swap function goes flat (monotone, concave, but not strictly). The
/// full-range limit (p_lo → 0, p_hi → ∞) reproduces the CPMM exactly,
/// which the tests exploit as a differential oracle.
///
/// This single-position model is the paper-relevant core of V3: it shows
/// how concentration changes arbitrage capacity. Multi-tick crossing is
/// out of scope (DESIGN.md).

#include <string>

#include "amm/generic_path.hpp"
#include "amm/pool.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace arb::amm {

class ConcentratedPool {
 public:
  /// Preconditions: distinct valid tokens; liquidity > 0;
  /// 0 < p_lo < price < p_hi; fee in [0, 1).
  ConcentratedPool(PoolId id, TokenId token0, TokenId token1,
                   double liquidity, double price, double p_lo, double p_hi,
                   double fee = 0.003);

  /// Builds the position covering [p_lo, p_hi] that currently holds the
  /// given *real* reserves at the implied in-range price. Fails if the
  /// implied price falls outside the range.
  [[nodiscard]] static Result<ConcentratedPool> from_reserves(
      PoolId id, TokenId token0, TokenId token1, double reserve0,
      double reserve1, double p_lo, double p_hi, double fee = 0.003);

  [[nodiscard]] PoolId id() const { return id_; }
  [[nodiscard]] TokenId token0() const { return token0_; }
  [[nodiscard]] TokenId token1() const { return token1_; }
  [[nodiscard]] double liquidity() const { return liquidity_; }
  /// Current price: token1 per token0.
  [[nodiscard]] double price() const { return sqrt_price_ * sqrt_price_; }
  /// Position range bounds (token1 per token0).
  [[nodiscard]] double p_lo() const { return sqrt_lo_ * sqrt_lo_; }
  [[nodiscard]] double p_hi() const { return sqrt_hi_ * sqrt_hi_; }
  [[nodiscard]] double fee() const { return fee_; }

  /// Raw √-space state, exposed for the barrier solver's closed-form
  /// in-range kernel (virtual reserves x_v = L/√P, y_v = L·√P and the
  /// exact in-range input caps are all √-space quantities; squaring and
  /// re-rooting the public prices would lose ulps the cap math needs).
  [[nodiscard]] double sqrt_price() const { return sqrt_price_; }
  [[nodiscard]] double sqrt_lo() const { return sqrt_lo_; }
  [[nodiscard]] double sqrt_hi() const { return sqrt_hi_; }

  [[nodiscard]] bool contains(TokenId token) const;
  [[nodiscard]] TokenId other(TokenId token) const;

  /// Real (usable) reserves of each side at the current price.
  [[nodiscard]] double reserve0() const;
  [[nodiscard]] double reserve1() const;
  [[nodiscard]] double reserve_of(TokenId token) const;

  /// Relative price of `token_in` in units of the other token at zero
  /// trade size: γ·P for token0 in, γ/P for token1 in (matching the
  /// marginal rate of quote at 0).
  [[nodiscard]] double relative_price_of(TokenId token_in) const;

  /// Moves the pool to a new observed price (an exogenous state change;
  /// liquidity is unchanged). Fails with kInvalidArgument when the price
  /// falls outside the open range (p_lo, p_hi).
  [[nodiscard]] Status set_price(double price);

  /// Quotes a swap (pure); output clamps when the price would leave the
  /// range. Preconditions: contains(token_in), amount_in >= 0.
  [[nodiscard]] SwapQuote quote(TokenId token_in, Amount amount_in) const;

  /// Executes a swap; input beyond the range boundary is rejected with
  /// kCapacityExceeded (a real router would split across positions).
  [[nodiscard]] Result<SwapQuote> apply_swap(TokenId token_in,
                                             Amount amount_in);

  [[nodiscard]] std::string to_string() const;

 private:
  /// New sqrt price after an effective (fee-adjusted) input, clamped to
  /// the range; also reports the input actually consumable in range.
  struct Move {
    double new_sqrt_price;
    double consumed_effective;  ///< effective input usable before the edge
    bool hit_edge;  ///< price reached the range boundary (incl. exactly)
  };
  [[nodiscard]] Move move_for(TokenId token_in, double effective_in) const;

  PoolId id_;
  TokenId token0_;
  TokenId token1_;
  double liquidity_;
  double sqrt_price_;
  double sqrt_lo_;
  double sqrt_hi_;
  double fee_;
};

/// GenericPath adapter (quote-only snapshot semantics).
[[nodiscard]] SwapFn swap_fn(const ConcentratedPool& pool, TokenId token_in);

/// Concave continuation (see generic_path.hpp): the CPMM continuation on
/// the virtual reserves, bounded by the *reverse-direction* range edge —
/// the pool can emit at most the real reserve of the received token
/// before the price pins at the opposite boundary (extended value −∞).
[[nodiscard]] SwapFn signed_swap_fn(const ConcentratedPool& pool,
                                    TokenId token_in);

}  // namespace arb::amm
