#include "amm/concentrated_pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace arb::amm {

ConcentratedPool::ConcentratedPool(PoolId id, TokenId token0, TokenId token1,
                                   double liquidity, double price,
                                   double p_lo, double p_hi, double fee)
    : id_(id),
      token0_(token0),
      token1_(token1),
      liquidity_(liquidity),
      sqrt_price_(std::sqrt(price)),
      sqrt_lo_(std::sqrt(p_lo)),
      sqrt_hi_(std::sqrt(p_hi)),
      fee_(fee) {
  ARB_REQUIRE(token0.valid() && token1.valid() && token0 != token1,
              "concentrated pool requires two distinct valid tokens");
  ARB_REQUIRE(liquidity > 0.0, "liquidity must be positive");
  ARB_REQUIRE(p_lo > 0.0 && p_lo < price && price < p_hi,
              "price must lie strictly inside (p_lo, p_hi)");
  ARB_REQUIRE(fee >= 0.0 && fee < 1.0, "fee must be in [0, 1)");
}

Result<ConcentratedPool> ConcentratedPool::from_reserves(
    PoolId id, TokenId token0, TokenId token1, double reserve0,
    double reserve1, double p_lo, double p_hi, double fee) {
  ARB_REQUIRE(reserve0 > 0.0 && reserve1 > 0.0,
              "from_reserves requires positive reserves");
  ARB_REQUIRE(p_lo > 0.0 && p_hi > p_lo, "invalid price range");
  // Solve for √P from x = L(1/√P − 1/√p_hi), y = L(√P − √p_lo):
  //   y/x = (√P − √p_lo) / (1/√P − 1/√p_hi).
  // Monotone in √P; bisect on the ratio.
  const double target = reserve1 / reserve0;
  const double sqrt_lo = std::sqrt(p_lo);
  const double sqrt_hi = std::sqrt(p_hi);
  const auto ratio = [&](double sp) {
    return (sp - sqrt_lo) / (1.0 / sp - 1.0 / sqrt_hi);
  };
  double lo = sqrt_lo * (1.0 + 1e-12);
  double hi = sqrt_hi * (1.0 - 1e-12);
  if (ratio(lo) > target || ratio(hi) < target) {
    return make_error(ErrorCode::kInvalidArgument,
                      "implied price outside the position range");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (ratio(mid) < target ? lo : hi) = mid;
  }
  const double sqrt_price = 0.5 * (lo + hi);
  const double liquidity = reserve1 / (sqrt_price - sqrt_lo);
  return ConcentratedPool(id, token0, token1, liquidity,
                          sqrt_price * sqrt_price, p_lo, p_hi, fee);
}

bool ConcentratedPool::contains(TokenId token) const {
  return token == token0_ || token == token1_;
}

TokenId ConcentratedPool::other(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? token1_ : token0_;
}

double ConcentratedPool::reserve0() const {
  return liquidity_ * (1.0 / sqrt_price_ - 1.0 / sqrt_hi_);
}

double ConcentratedPool::reserve1() const {
  return liquidity_ * (sqrt_price_ - sqrt_lo_);
}

double ConcentratedPool::reserve_of(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? reserve0() : reserve1();
}

double ConcentratedPool::relative_price_of(TokenId token_in) const {
  ARB_REQUIRE(contains(token_in), "token not in pool");
  const double gamma = 1.0 - fee_;
  const double p = sqrt_price_ * sqrt_price_;
  return token_in == token0_ ? gamma * p : gamma / p;
}

Status ConcentratedPool::set_price(double price) {
  const double sqrt_price = std::sqrt(price);
  if (!(sqrt_price > sqrt_lo_ && sqrt_price < sqrt_hi_)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "price outside the position range");
  }
  sqrt_price_ = sqrt_price;
  return Status::success();
}

ConcentratedPool::Move ConcentratedPool::move_for(TokenId token_in,
                                                  double effective_in) const {
  Move move;
  if (token_in == token0_) {
    // Selling token0 pushes the price down: 1/√P' = 1/√P + Δ/L.
    const double inv_new = 1.0 / sqrt_price_ + effective_in / liquidity_;
    const double inv_edge = 1.0 / sqrt_lo_;
    // hit_edge is `>=`, not `>`: an input landing exactly on the tick
    // boundary is at the kink, where the derivative must be the
    // right-limit slope (0 — more input buys nothing). The float
    // round-trip 1/(1/√lo) != √lo makes a price comparison unreliable
    // here, hence the explicit flag.
    move.hit_edge = inv_new >= inv_edge;
    if (!move.hit_edge) {
      move.new_sqrt_price = 1.0 / inv_new;
      move.consumed_effective = effective_in;
    } else {
      move.new_sqrt_price = sqrt_lo_;
      move.consumed_effective =
          std::min(effective_in, liquidity_ * (inv_edge - 1.0 / sqrt_price_));
    }
  } else {
    // Selling token1 pushes the price up: √P' = √P + Δ/L.
    const double new_sqrt = sqrt_price_ + effective_in / liquidity_;
    move.hit_edge = new_sqrt >= sqrt_hi_;
    if (!move.hit_edge) {
      move.new_sqrt_price = new_sqrt;
      move.consumed_effective = effective_in;
    } else {
      move.new_sqrt_price = sqrt_hi_;
      move.consumed_effective =
          std::min(effective_in, liquidity_ * (sqrt_hi_ - sqrt_price_));
    }
  }
  return move;
}

SwapQuote ConcentratedPool::quote(TokenId token_in, Amount amount_in) const {
  ARB_REQUIRE(contains(token_in), "token not in pool");
  ARB_REQUIRE(amount_in >= 0.0, "amount_in must be non-negative");
  const double gamma = 1.0 - fee_;
  const Move move = move_for(token_in, gamma * amount_in);

  SwapQuote q;
  q.amount_in = amount_in;
  if (token_in == token0_) {
    // max(0, ·): 1/(1/√P) does not round-trip exactly, so a tiny input
    // can otherwise yield a one-ulp negative output.
    q.amount_out =
        std::max(0.0, liquidity_ * (sqrt_price_ - move.new_sqrt_price));
    // d out / d in at this size: out = L·(√P − 1/(1/√P + γ·in/L)),
    // derivative = γ·(√P')². At the boundary (including exactly on it)
    // the right-limit slope is 0: extra input buys nothing.
    q.marginal_rate =
        move.hit_edge ? 0.0
                      : gamma * move.new_sqrt_price * move.new_sqrt_price;
  } else {
    q.amount_out = std::max(0.0, liquidity_ * (1.0 / sqrt_price_ -
                                               1.0 / move.new_sqrt_price));
    q.marginal_rate =
        move.hit_edge ? 0.0
                      : gamma / (move.new_sqrt_price * move.new_sqrt_price);
  }
  return q;
}

Result<SwapQuote> ConcentratedPool::apply_swap(TokenId token_in,
                                               Amount amount_in) {
  const double gamma = 1.0 - fee_;
  const Move move = move_for(token_in, gamma * amount_in);
  if (move.consumed_effective < gamma * amount_in * (1.0 - 1e-12)) {
    return make_error(ErrorCode::kCapacityExceeded,
                      "swap would push the price out of the position "
                      "range");
  }
  const SwapQuote q = quote(token_in, amount_in);
  sqrt_price_ = move.new_sqrt_price;
  // The fee share of the input accrues to the position owner out of
  // band (V3 fee growth); the price state alone defines the reserves.
  return q;
}

std::string ConcentratedPool::to_string() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "ConcentratedPool{id=%u, %u<->%u, L=%.6g, P=%.6g, "
                "range=[%.6g, %.6g], fee=%.4f}",
                id_.value(), token0_.value(), token1_.value(), liquidity_,
                price(), p_lo(), p_hi(), fee_);
  return buffer;
}

SwapFn swap_fn(const ConcentratedPool& pool, TokenId token_in) {
  ARB_REQUIRE(pool.contains(token_in), "token not in pool");
  return [pool, token_in](double dx) {
    return pool.quote(token_in, dx).amount_out;
  };
}

SwapFn signed_swap_fn(const ConcentratedPool& pool, TokenId token_in) {
  ARB_REQUIRE(pool.contains(token_in), "token not in pool");
  const double liq = pool.liquidity();
  const double sp = pool.sqrt_price();
  const double gamma = 1.0 - pool.fee();
  // Virtual reserves oriented by the forward trade direction; the CPMM
  // continuation d·y_v/(γ·(x_v + d)) is exact in range. Receiving more
  // of token_in than its real reserve pins the reverse swap at the
  // opposite range edge.
  const bool selling0 = token_in == pool.token0();
  const double x_v = selling0 ? liq / sp : liq * sp;
  const double y_v = selling0 ? liq * sp : liq / sp;
  const double recv_max = selling0 ? liq * (1.0 / sp - 1.0 / pool.sqrt_hi())
                                   : liq * (sp - pool.sqrt_lo());
  return [pool, token_in, x_v, y_v, gamma, recv_max](double dx) {
    if (dx >= 0.0) return pool.quote(token_in, dx).amount_out;
    if (-dx >= recv_max) return -std::numeric_limits<double>::infinity();
    return dx * y_v / (gamma * (x_v + dx));
  };
}

}  // namespace arb::amm
