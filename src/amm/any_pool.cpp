#include "amm/any_pool.hpp"

#include "common/error.hpp"

namespace arb::amm {

const char* to_string(PoolKind kind) {
  switch (kind) {
    case PoolKind::kCpmm:
      return "cpmm";
    case PoolKind::kStable:
      return "stable";
    case PoolKind::kConcentrated:
      return "concentrated";
  }
  return "unknown";
}

const CpmmPool& AnyPool::cpmm() const {
  ARB_REQUIRE(is_cpmm(), "pool is not constant-product");
  return std::get<CpmmPool>(pool_);
}

CpmmPool& AnyPool::cpmm() {
  ARB_REQUIRE(is_cpmm(), "pool is not constant-product");
  return std::get<CpmmPool>(pool_);
}

const StablePool& AnyPool::stable() const {
  ARB_REQUIRE(kind() == PoolKind::kStable, "pool is not StableSwap");
  return std::get<StablePool>(pool_);
}

StablePool& AnyPool::stable() {
  ARB_REQUIRE(kind() == PoolKind::kStable, "pool is not StableSwap");
  return std::get<StablePool>(pool_);
}

const ConcentratedPool& AnyPool::concentrated() const {
  ARB_REQUIRE(kind() == PoolKind::kConcentrated,
              "pool is not concentrated-liquidity");
  return std::get<ConcentratedPool>(pool_);
}

ConcentratedPool& AnyPool::concentrated() {
  ARB_REQUIRE(kind() == PoolKind::kConcentrated,
              "pool is not concentrated-liquidity");
  return std::get<ConcentratedPool>(pool_);
}

PoolId AnyPool::id() const {
  return std::visit([](const auto& p) { return p.id(); }, pool_);
}

TokenId AnyPool::token0() const {
  return std::visit([](const auto& p) { return p.token0(); }, pool_);
}

TokenId AnyPool::token1() const {
  return std::visit([](const auto& p) { return p.token1(); }, pool_);
}

Amount AnyPool::reserve0() const {
  return std::visit([](const auto& p) -> Amount { return p.reserve0(); },
                    pool_);
}

Amount AnyPool::reserve1() const {
  return std::visit([](const auto& p) -> Amount { return p.reserve1(); },
                    pool_);
}

Amount AnyPool::reserve_of(TokenId token) const {
  return std::visit(
      [token](const auto& p) -> Amount { return p.reserve_of(token); },
      pool_);
}

double AnyPool::fee() const {
  return std::visit([](const auto& p) { return p.fee(); }, pool_);
}

bool AnyPool::contains(TokenId token) const {
  return std::visit([token](const auto& p) { return p.contains(token); },
                    pool_);
}

TokenId AnyPool::other(TokenId token) const {
  return std::visit([token](const auto& p) { return p.other(token); },
                    pool_);
}

double AnyPool::relative_price_of(TokenId token_in) const {
  return std::visit(
      [token_in](const auto& p) { return p.relative_price_of(token_in); },
      pool_);
}

SwapQuote AnyPool::quote(TokenId token_in, Amount amount_in) const {
  return std::visit(
      [token_in, amount_in](const auto& p) {
        return p.quote(token_in, amount_in);
      },
      pool_);
}

Result<SwapQuote> AnyPool::apply_swap(TokenId token_in, Amount amount_in) {
  return std::visit(
      [token_in, amount_in](auto& p) {
        return p.apply_swap(token_in, amount_in);
      },
      pool_);
}

Status AnyPool::set_reserves(Amount reserve0, Amount reserve1) {
  if (!(reserve0 > 0.0 && reserve1 > 0.0)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "reserves must be positive");
  }
  switch (kind()) {
    case PoolKind::kCpmm: {
      CpmmPool& p = cpmm();
      p = CpmmPool(p.id(), p.token0(), p.token1(), reserve0, reserve1,
                   p.fee());
      return Status::success();
    }
    case PoolKind::kStable: {
      StablePool& p = stable();
      p = StablePool(p.id(), p.token0(), p.token1(), reserve0, reserve1,
                     p.amplification(), p.fee());
      return Status::success();
    }
    case PoolKind::kConcentrated: {
      ConcentratedPool& p = concentrated();
      Result<ConcentratedPool> rebuilt = ConcentratedPool::from_reserves(
          p.id(), p.token0(), p.token1(), reserve0, reserve1, p.p_lo(),
          p.p_hi(), p.fee());
      if (!rebuilt.ok()) return rebuilt.error();
      p = *std::move(rebuilt);
      return Status::success();
    }
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown pool kind");
}

Status AnyPool::set_concentrated_state(double liquidity, double price) {
  if (kind() != PoolKind::kConcentrated) {
    return make_error(ErrorCode::kInvalidArgument,
                      "pool is not concentrated-liquidity");
  }
  if (!(liquidity > 0.0)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "liquidity must be positive");
  }
  ConcentratedPool& p = concentrated();
  if (!(price > p.p_lo() && price < p.p_hi())) {
    return make_error(ErrorCode::kInvalidArgument,
                      "price outside the position range");
  }
  p = ConcentratedPool(p.id(), p.token0(), p.token1(), liquidity, price,
                       p.p_lo(), p.p_hi(), p.fee());
  return Status::success();
}

std::string AnyPool::to_string() const {
  return std::visit([](const auto& p) { return p.to_string(); }, pool_);
}

SwapFn swap_fn(const AnyPool& pool, TokenId token_in) {
  switch (pool.kind()) {
    case PoolKind::kCpmm:
      return swap_fn(pool.cpmm(), token_in);
    case PoolKind::kStable:
      return swap_fn(pool.stable(), token_in);
    case PoolKind::kConcentrated:
      return swap_fn(pool.concentrated(), token_in);
  }
  ARB_REQUIRE(false, "unknown pool kind");
  return {};
}

SwapFn signed_swap_fn(const AnyPool& pool, TokenId token_in) {
  switch (pool.kind()) {
    case PoolKind::kCpmm:
      return signed_swap_fn(pool.cpmm(), token_in);
    case PoolKind::kStable:
      return signed_swap_fn(pool.stable(), token_in);
    case PoolKind::kConcentrated:
      return signed_swap_fn(pool.concentrated(), token_in);
  }
  ARB_REQUIRE(false, "unknown pool kind");
  return {};
}

}  // namespace arb::amm
