#include "amm/generic_path.hpp"

#include <limits>

#include "common/error.hpp"
#include "math/scalar_solve.hpp"

namespace arb::amm {

SwapFn swap_fn(const CpmmPool& pool, TokenId token_in) {
  ARB_REQUIRE(pool.contains(token_in), "token not in pool");
  const double r_in = pool.reserve_of(token_in);
  const double r_out = pool.reserve_of(pool.other(token_in));
  const double gamma = pool.gamma();
  return [r_in, r_out, gamma](double dx) {
    return swap_out(r_in, r_out, gamma, dx);
  };
}

SwapFn swap_fn(const StablePool& pool, TokenId token_in) {
  ARB_REQUIRE(pool.contains(token_in), "token not in pool");
  // Capture the pool by value: the quote is against the snapshot state,
  // matching the CPMM wrapper's semantics.
  return [pool, token_in](double dx) {
    return pool.quote(token_in, dx).amount_out;
  };
}

SwapFn signed_swap_fn(const CpmmPool& pool, TokenId token_in) {
  ARB_REQUIRE(pool.contains(token_in), "token not in pool");
  const double r_in = pool.reserve_of(token_in);
  const double r_out = pool.reserve_of(pool.other(token_in));
  const double gamma = pool.gamma();
  return [r_in, r_out, gamma](double dx) {
    if (dx >= 0.0) return swap_out(r_in, r_out, gamma, dx);
    // Receiving −dx of the input token costs g⁻¹(−dx) of the output
    // token, where g is the reverse swap γ·q·x/(y + γ·q); the pool can
    // emit at most its input-side reserve.
    if (dx <= -r_in) return -std::numeric_limits<double>::infinity();
    return dx * r_out / (gamma * (r_in + dx));
  };
}

SwapFn signed_swap_fn(const StablePool& pool, TokenId token_in) {
  ARB_REQUIRE(pool.contains(token_in), "token not in pool");
  const double x0 = pool.reserve_of(token_in);
  const double y0 = pool.reserve_of(pool.other(token_in));
  const double gamma = 1.0 - pool.fee();
  const StableCurve curve = pool.curve();
  return [pool, token_in, x0, y0, gamma, curve](double dx) {
    if (dx >= 0.0) return pool.quote(token_in, dx).amount_out;
    // Fee on output (Curve convention): the reverse swap that emits −dx
    // credits its full input q to the output-side balance and pays
    // γ·(x₀ − X(y₀ + q)), so q = Y(x₀ + dx/γ) − y₀ by curve symmetry.
    const double depleted = x0 + dx / gamma;
    if (depleted <= 0.0) return -std::numeric_limits<double>::infinity();
    return y0 - curve.y(depleted);
  };
}

GenericPath::GenericPath(std::vector<SwapFn> hops) : hops_(std::move(hops)) {
  ARB_REQUIRE(!hops_.empty(), "generic path needs at least one hop");
  for (const SwapFn& hop : hops_) {
    ARB_REQUIRE(static_cast<bool>(hop), "null hop function");
  }
}

double GenericPath::evaluate(double input) const {
  ARB_REQUIRE(input >= 0.0, "input must be non-negative");
  double amount = input;
  for (const SwapFn& hop : hops_) amount = hop(amount);
  return amount;
}

double GenericPath::evaluate_signed(double input) const {
  double amount = input;
  for (const SwapFn& hop : hops_) {
    if (amount == -std::numeric_limits<double>::infinity()) return amount;
    amount = hop(amount);
  }
  return amount;
}

std::vector<double> GenericPath::hop_inputs(double input) const {
  std::vector<double> inputs;
  inputs.reserve(hops_.size());
  double amount = input;
  for (const SwapFn& hop : hops_) {
    inputs.push_back(amount);
    amount = hop(amount);
  }
  return inputs;
}

Result<OptimalTrade> optimize_input_generic(
    const GenericPath& path, const GenericOptimizeOptions& options) {
  return optimize_input_generic(
      std::function<double(double)>(
          [&path](double d) { return path.evaluate(d); }),
      options);
}

Result<OptimalTrade> optimize_input_generic(
    const std::function<double(double)>& evaluate,
    const GenericOptimizeOptions& options) {
  ARB_REQUIRE(options.initial_scale > 0.0, "initial_scale must be positive");
  const auto profit = [&evaluate](double d) { return evaluate(d) - d; };

  OptimalTrade trade;
  // Unprofitable at the margin? The profit function is concave with
  // profit(0) = 0, so a non-positive value at a small probe means the
  // slope at zero is <= 1 and the optimum is 0.
  const double probe = options.initial_scale * 1e-9;
  if (profit(probe) <= 0.0) {
    return trade;
  }

  // Expand until the profit stops increasing: [0, hi] then brackets the
  // concave maximum.
  double hi = options.initial_scale;
  double previous = profit(hi);
  int guard = 0;
  while (guard++ < 200) {
    const double next = profit(hi * 2.0);
    if (next <= previous) break;
    hi *= 2.0;
    previous = next;
    if (hi > options.max_input) {
      return make_error(ErrorCode::kNumericFailure,
                        "generic optimizer: profit still increasing at "
                        "max_input — hop functions are not concave?");
    }
  }
  hi *= 2.0;

  math::ScalarSolveOptions line;
  line.x_tolerance = options.tolerance * hi;
  const auto peak = math::golden_section_maximize(profit, 0.0, hi, line);
  trade.input = peak.x;
  trade.output = evaluate(peak.x);
  trade.profit = trade.output - trade.input;
  trade.iterations = peak.iterations;
  if (trade.profit <= 0.0) {
    trade = OptimalTrade{};  // numeric residue: report the zero trade
  }
  return trade;
}

}  // namespace arb::amm
