#include "amm/stable_pool.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace arb::amm {
namespace {

constexpr int kNewtonIterations = 255;
constexpr double kConvergence = 1e-12;

/// D for two coins: fixed-point iteration of
///   D ← (Ann·S + 2·D_P)·D / ((Ann − 1)·D + 3·D_P),  D_P = D³/(4·x·y),
/// with Ann = A·n² = 4A — the iteration used by the Curve contract,
/// which converges monotonically from D₀ = S.
double solve_d(double x, double y, double amplification) {
  const double s = x + y;
  if (s == 0.0) return 0.0;
  const double ann = 4.0 * amplification;
  double d = s;
  for (int i = 0; i < kNewtonIterations; ++i) {
    const double d_p = d * d * d / (4.0 * x * y);
    const double d_next =
        (ann * s + 2.0 * d_p) * d / ((ann - 1.0) * d + 3.0 * d_p);
    if (std::abs(d_next - d) <= kConvergence * d) return d_next;
    d = d_next;
  }
  return d;
}

}  // namespace

double StableCurve::y(double x) const {
  const double b = x + d / ann - d;
  const double c = d * d * d / (4.0 * ann * x);
  const double r = std::sqrt(b * b + 4.0 * c);
  // y = (−B + √(B²+4C)) / 2; when B > 0 the subtraction cancels, so use
  // the conjugate form 2C / (B + √(B²+4C)) instead.
  return b > 0.0 ? 2.0 * c / (b + r) : 0.5 * (r - b);
}

double StableCurve::dy_dx(double x) const {
  // Implicit differentiation of y² + B·y = C with B' = 1, C' = −C/x:
  //   y'·(2y + B) = −C/x − y.
  const double b = x + d / ann - d;
  const double c = d * d * d / (4.0 * ann * x);
  const double yy = y(x);
  return (-c / x - yy) / (2.0 * yy + b);
}

double StableCurve::d2y_dx2(double x) const {
  // Differentiating once more, with C'' = 2C/x²:
  //   y''·(2y + B) = 2C/x² − 2y'² − 2y'.
  const double b = x + d / ann - d;
  const double c = d * d * d / (4.0 * ann * x);
  const double yy = y(x);
  const double yp = (-c / x - yy) / (2.0 * yy + b);
  return (2.0 * c / (x * x) - 2.0 * yp * yp - 2.0 * yp) / (2.0 * yy + b);
}

StablePool::StablePool(PoolId id, TokenId token0, TokenId token1,
                       Amount reserve0, Amount reserve1,
                       double amplification, double fee)
    : id_(id),
      token0_(token0),
      token1_(token1),
      reserve0_(reserve0),
      reserve1_(reserve1),
      amplification_(amplification),
      fee_(fee) {
  ARB_REQUIRE(token0.valid() && token1.valid() && token0 != token1,
              "stable pool requires two distinct valid tokens");
  ARB_REQUIRE(reserve0 > 0.0 && reserve1 > 0.0,
              "stable pool requires positive reserves");
  ARB_REQUIRE(amplification > 0.0, "amplification must be positive");
  ARB_REQUIRE(fee >= 0.0 && fee < 1.0, "fee must be in [0, 1)");
  invariant_d_ = solve_d(reserve0_, reserve1_, amplification_);
}

bool StablePool::contains(TokenId token) const {
  return token == token0_ || token == token1_;
}

TokenId StablePool::other(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? token1_ : token0_;
}

Amount StablePool::reserve_of(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? reserve0_ : reserve1_;
}

double StablePool::solve_other_balance(double new_in_balance,
                                       double d) const {
  // For two coins: y² + y·(S' + D/Ann − D) = D³/(4·S'·Ann) with
  // S' = new_in_balance. Newton from y₀ = D (Curve's iteration):
  //   y ← (y² + c) / (2y + b − D),
  //   b = S' + D/Ann,  c = D³/(4·S'·Ann).
  const double ann = 4.0 * amplification_;
  const double b = new_in_balance + d / ann;
  const double c = d * d * d / (4.0 * new_in_balance * ann);
  double y = d;
  for (int i = 0; i < kNewtonIterations; ++i) {
    const double y_next = (y * y + c) / (2.0 * y + b - d);
    if (std::abs(y_next - y) <= kConvergence * std::max(1.0, y)) {
      return y_next;
    }
    y = y_next;
  }
  return y;
}

SwapQuote StablePool::quote(TokenId token_in, Amount amount_in) const {
  ARB_REQUIRE(amount_in >= 0.0, "amount_in must be non-negative");
  const double x = reserve_of(token_in);
  const double y = reserve_of(other(token_in));
  const double d = invariant_d_;

  const auto gross_out = [&](double dx) {
    if (dx == 0.0) return 0.0;
    const double y_new = solve_other_balance(x + dx, d);
    return std::max(0.0, y - y_new);
  };

  SwapQuote q;
  q.amount_in = amount_in;
  q.amount_out = gross_out(amount_in) * (1.0 - fee_);
  // Numeric marginal rate (central difference with a relative step).
  const double h = std::max(1e-9, std::abs(amount_in) * 1e-7) +
                   1e-9 * std::max(x, y);
  const double lo = std::max(0.0, amount_in - h);
  q.marginal_rate = (gross_out(amount_in + h) - gross_out(lo)) *
                    (1.0 - fee_) / (amount_in + h - lo);
  return q;
}

Result<SwapQuote> StablePool::apply_swap(TokenId token_in, Amount amount_in) {
  const SwapQuote q = quote(token_in, amount_in);
  const TokenId token_out = other(token_in);
  if (q.amount_out >= reserve_of(token_out)) {
    return make_error(ErrorCode::kCapacityExceeded,
                      "stable swap would drain the reserve");
  }
  if (token_in == token0_) {
    reserve0_ += amount_in;
    reserve1_ -= q.amount_out;
  } else {
    reserve1_ += amount_in;
    reserve0_ -= q.amount_out;
  }
  invariant_d_ = solve_d(reserve0_, reserve1_, amplification_);
  return q;
}

double StablePool::spot_rate(TokenId token_in) const {
  return quote(token_in, 0.0).marginal_rate;
}

std::string StablePool::to_string() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "StablePool{id=%u, %u<->%u, r=(%.6g, %.6g), A=%.6g, "
                "fee=%.4f}",
                id_.value(), token0_.value(), token1_.value(), reserve0_,
                reserve1_, amplification_, fee_);
  return buffer;
}

}  // namespace arb::amm
