#pragma once

/// \file any_pool.hpp
/// The heterogeneous venue type: one pool that is a CPMM, a StableSwap,
/// or a concentrated-liquidity position.
///
/// AnyPool is a value type over std::variant — no heap allocation, no
/// virtual dispatch, sizeof is the largest alternative plus a tag. The
/// uniform surface (id/tokens/reserves/fee/quote/apply_swap/price) is
/// implemented with std::visit, which compiles to a jump table; the hot
/// CPMM scan paths never pay it because they first branch on kind() and
/// then work on the unwrapped cpmm() reference (see core/scanner
/// dispatch and DESIGN.md §9).
///
/// State updates are kind-aware: a CPMM or StableSwap pool is fully
/// described by its two reserves, while a concentrated position carries
/// (liquidity, price, range) and reconstructs from observed reserves
/// only when the implied price stays inside the range — so
/// set_reserves returns a Status instead of asserting.

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "amm/concentrated_pool.hpp"
#include "amm/generic_path.hpp"
#include "amm/pool.hpp"
#include "amm/stable_pool.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace arb::amm {

/// Which curve an AnyPool holds. Values are the CSV schema's `kind`
/// column (market/io.cpp) — keep them stable.
enum class PoolKind : std::uint8_t {
  kCpmm = 0,
  kStable = 1,
  kConcentrated = 2,
};

[[nodiscard]] const char* to_string(PoolKind kind);

class AnyPool {
 public:
  /// Implicit by design: every CpmmPool call site keeps compiling when a
  /// function takes or stores AnyPool.
  AnyPool(CpmmPool pool) : pool_(std::move(pool)) {}          // NOLINT
  AnyPool(StablePool pool) : pool_(std::move(pool)) {}        // NOLINT
  AnyPool(ConcentratedPool pool) : pool_(std::move(pool)) {}  // NOLINT

  [[nodiscard]] PoolKind kind() const {
    return static_cast<PoolKind>(pool_.index());
  }
  [[nodiscard]] bool is_cpmm() const { return kind() == PoolKind::kCpmm; }

  /// Checked unwrap. Precondition: kind() matches.
  [[nodiscard]] const CpmmPool& cpmm() const;
  [[nodiscard]] CpmmPool& cpmm();
  [[nodiscard]] const StablePool& stable() const;
  [[nodiscard]] StablePool& stable();
  [[nodiscard]] const ConcentratedPool& concentrated() const;
  [[nodiscard]] ConcentratedPool& concentrated();

  // ---- Uniform surface (every alternative implements these) ----

  [[nodiscard]] PoolId id() const;
  [[nodiscard]] TokenId token0() const;
  [[nodiscard]] TokenId token1() const;
  /// Real (usable) reserves; for a concentrated position these are the
  /// in-range amounts, not the virtual CPMM reserves.
  [[nodiscard]] Amount reserve0() const;
  [[nodiscard]] Amount reserve1() const;
  [[nodiscard]] Amount reserve_of(TokenId token) const;
  [[nodiscard]] double fee() const;

  [[nodiscard]] bool contains(TokenId token) const;
  /// Precondition: contains(token).
  [[nodiscard]] TokenId other(TokenId token) const;

  /// Relative price of `token_in` in units of the other token at zero
  /// trade size (fee included) — the paper's p_ij, defined for every
  /// curve because each swap function is differentiable at 0.
  [[nodiscard]] double relative_price_of(TokenId token_in) const;

  /// Quotes a swap without mutating state.
  [[nodiscard]] SwapQuote quote(TokenId token_in, Amount amount_in) const;

  /// Executes a swap, updating pool state.
  [[nodiscard]] Result<SwapQuote> apply_swap(TokenId token_in,
                                             Amount amount_in);

  /// Kind-aware exogenous state update from observed reserves (the
  /// streaming runtime's primitive). CPMM / StableSwap: replaces both
  /// reserves (positive amounts required). Concentrated: re-derives
  /// (liquidity, price) from the reserves holding the range fixed, and
  /// fails when the implied price leaves the range.
  [[nodiscard]] Status set_reserves(Amount reserve0, Amount reserve1);

  /// Exogenous state update for a concentrated position: move the price
  /// in place (liquidity and range unchanged). Fails on non-concentrated
  /// pools or when the price is outside the range.
  [[nodiscard]] Status set_concentrated_state(double liquidity,
                                              double price);

  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<CpmmPool, StablePool, ConcentratedPool> pool_;
};

/// GenericPath adapter: snapshot quote-only hop for any curve. The
/// returned function owns a copy of the pool's state.
[[nodiscard]] SwapFn swap_fn(const AnyPool& pool, TokenId token_in);

/// Concave-continuation adapter (generic_path.hpp): forward quote for
/// d ≥ 0, reverse-swap continuation for d < 0, kind-dispatched.
[[nodiscard]] SwapFn signed_swap_fn(const AnyPool& pool, TokenId token_in);

}  // namespace arb::amm
