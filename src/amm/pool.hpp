#pragma once

/// \file pool.hpp
/// A Uniswap-V2-style constant-product liquidity pool between two tokens.
///
/// The pool is a small value type: reserves are plain doubles (the paper's
/// model), the class maintains the invariants reserve > 0 and fee ∈ [0, 1),
/// and every state change goes through apply_swap so the constant-product
/// law (k never decreases; it strictly grows with a non-zero fee) holds by
/// construction.

#include <string>

#include "amm/swap_math.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace arb::amm {

/// Outcome of quoting or executing a swap.
struct SwapQuote {
  Amount amount_in = 0.0;
  Amount amount_out = 0.0;
  /// Marginal rate d out/d in at this input size.
  double marginal_rate = 0.0;
};

class CpmmPool {
 public:
  /// Constructs a pool. Preconditions: distinct valid tokens, positive
  /// reserves, fee in [0, 1).
  CpmmPool(PoolId id, TokenId token0, TokenId token1, Amount reserve0,
           Amount reserve1, double fee = kUniswapV2Fee);

  [[nodiscard]] PoolId id() const { return id_; }
  [[nodiscard]] TokenId token0() const { return token0_; }
  [[nodiscard]] TokenId token1() const { return token1_; }
  [[nodiscard]] Amount reserve0() const { return reserve0_; }
  [[nodiscard]] Amount reserve1() const { return reserve1_; }
  [[nodiscard]] double fee() const { return fee_; }
  /// Fee multiplier γ = 1 − fee.
  [[nodiscard]] double gamma() const { return 1.0 - fee_; }

  /// True iff the pool trades this token.
  [[nodiscard]] bool contains(TokenId token) const;
  /// The opposite side of the pair. Precondition: contains(token).
  [[nodiscard]] TokenId other(TokenId token) const;
  /// Reserve of one side. Precondition: contains(token).
  [[nodiscard]] Amount reserve_of(TokenId token) const;

  /// Constant-product invariant k = reserve0 · reserve1.
  [[nodiscard]] double k() const { return reserve0_ * reserve1_; }

  /// Relative price of `token_in` in units of the other token at zero
  /// trade size: p = γ·r_out/r_in (the paper's p_ij).
  [[nodiscard]] double relative_price_of(TokenId token_in) const;

  /// Quotes a swap without mutating state. Preconditions: contains
  /// (token_in), amount_in >= 0.
  [[nodiscard]] SwapQuote quote(TokenId token_in, Amount amount_in) const;

  /// Executes a swap, updating reserves (input including the fee share is
  /// added, output removed — exactly as the V2 pair contract does).
  /// Fails with kCapacityExceeded if the output would drain the reserve.
  [[nodiscard]] Result<SwapQuote> apply_swap(TokenId token_in,
                                             Amount amount_in);

  [[nodiscard]] std::string to_string() const;

 private:
  PoolId id_;
  TokenId token0_;
  TokenId token1_;
  Amount reserve0_;
  Amount reserve1_;
  double fee_;
};

}  // namespace arb::amm
