#include "amm/pool.hpp"

#include <sstream>

namespace arb::amm {

CpmmPool::CpmmPool(PoolId id, TokenId token0, TokenId token1, Amount reserve0,
                   Amount reserve1, double fee)
    : id_(id),
      token0_(token0),
      token1_(token1),
      reserve0_(reserve0),
      reserve1_(reserve1),
      fee_(fee) {
  ARB_REQUIRE(token0.valid() && token1.valid() && token0 != token1,
              "pool requires two distinct valid tokens");
  ARB_REQUIRE(reserve0 > 0.0 && reserve1 > 0.0,
              "pool requires positive reserves");
  ARB_REQUIRE(fee >= 0.0 && fee < 1.0, "pool fee must be in [0, 1)");
}

bool CpmmPool::contains(TokenId token) const {
  return token == token0_ || token == token1_;
}

TokenId CpmmPool::other(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? token1_ : token0_;
}

Amount CpmmPool::reserve_of(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? reserve0_ : reserve1_;
}

double CpmmPool::relative_price_of(TokenId token_in) const {
  return relative_price(reserve_of(token_in), reserve_of(other(token_in)),
                        gamma());
}

SwapQuote CpmmPool::quote(TokenId token_in, Amount amount_in) const {
  ARB_REQUIRE(amount_in >= 0.0, "amount_in must be non-negative");
  const Amount r_in = reserve_of(token_in);
  const Amount r_out = reserve_of(other(token_in));
  SwapQuote q;
  q.amount_in = amount_in;
  q.amount_out = swap_out(r_in, r_out, gamma(), amount_in);
  q.marginal_rate = swap_out_derivative(r_in, r_out, gamma(), amount_in);
  return q;
}

Result<SwapQuote> CpmmPool::apply_swap(TokenId token_in, Amount amount_in) {
  const SwapQuote q = quote(token_in, amount_in);
  const TokenId token_out = other(token_in);
  if (q.amount_out >= reserve_of(token_out)) {
    return make_error(ErrorCode::kCapacityExceeded,
                      "swap would drain " + arb::to_string(token_out) +
                          " reserve in " + arb::to_string(id_));
  }
  if (token_in == token0_) {
    reserve0_ += amount_in;
    reserve1_ -= q.amount_out;
  } else {
    reserve1_ += amount_in;
    reserve0_ -= q.amount_out;
  }
  return q;
}

std::string CpmmPool::to_string() const {
  std::ostringstream os;
  os << arb::to_string(id_) << "{" << arb::to_string(token0_) << ": "
     << reserve0_ << ", " << arb::to_string(token1_) << ": " << reserve1_
     << ", fee: " << fee_ << "}";
  return os.str();
}

}  // namespace arb::amm
