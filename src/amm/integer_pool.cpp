#include "amm/integer_pool.hpp"

#include <cmath>

#include "amm/swap_math.hpp"
#include "common/error.hpp"

namespace arb::amm {

IntegerPool::IntegerPool(PoolId id, TokenId token0, TokenId token1,
                         U256 reserve0, U256 reserve1,
                         std::uint64_t fee_numerator,
                         std::uint64_t fee_denominator)
    : id_(id),
      token0_(token0),
      token1_(token1),
      reserve0_(std::move(reserve0)),
      reserve1_(std::move(reserve1)),
      fee_numerator_(fee_numerator),
      fee_denominator_(fee_denominator) {
  ARB_REQUIRE(token0.valid() && token1.valid() && token0 != token1,
              "integer pool requires two distinct valid tokens");
  ARB_REQUIRE(!reserve0_.is_zero() && !reserve1_.is_zero(),
              "integer pool requires non-zero reserves");
  ARB_REQUIRE(fee_denominator > 0 && fee_numerator <= fee_denominator,
              "invalid fee fraction");
}

IntegerPool IntegerPool::from_real(const CpmmPool& pool,
                                   double units_per_token) {
  ARB_REQUIRE(units_per_token >= 1.0, "units_per_token must be >= 1");
  const auto quantize = [units_per_token](double reserve) {
    const double scaled = std::floor(reserve * units_per_token);
    ARB_REQUIRE(scaled >= 1.0, "reserve quantizes to zero");
    ARB_REQUIRE(scaled < 0x1.0p128, "reserve exceeds quantization range");
    // Assemble the U256 from the double's high/low 64-bit halves.
    const double hi = std::floor(scaled / 0x1.0p64);
    const double lo = scaled - hi * 0x1.0p64;
    return U256::from_limbs(static_cast<std::uint64_t>(lo),
                            static_cast<std::uint64_t>(hi), 0, 0);
  };
  // The real-valued fee is a double like 0.003; snap to the nearest
  // per-mille fraction (Uniswap V2 uses 3/1000).
  const auto fee_num = static_cast<std::uint64_t>(
      std::llround((1.0 - pool.fee()) * 1000.0));
  return IntegerPool(pool.id(), pool.token0(), pool.token1(),
                     quantize(pool.reserve0()), quantize(pool.reserve1()),
                     fee_num, 1000);
}

bool IntegerPool::contains(TokenId token) const {
  return token == token0_ || token == token1_;
}

TokenId IntegerPool::other(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? token1_ : token0_;
}

const U256& IntegerPool::reserve_of(TokenId token) const {
  ARB_REQUIRE(contains(token), "token not in pool");
  return token == token0_ ? reserve0_ : reserve1_;
}

U256 IntegerPool::quote(TokenId token_in, const U256& amount_in) const {
  return get_amount_out_exact(amount_in, reserve_of(token_in),
                              reserve_of(other(token_in)), fee_numerator_,
                              fee_denominator_);
}

Result<U256> IntegerPool::apply_swap(TokenId token_in,
                                     const U256& amount_in) {
  const U256 out = quote(token_in, amount_in);
  const TokenId token_out = other(token_in);
  if (out >= reserve_of(token_out)) {
    return make_error(ErrorCode::kCapacityExceeded,
                      "integer swap would drain the reserve");
  }
  if (token_in == token0_) {
    reserve0_ = reserve0_ + amount_in;
    reserve1_ = reserve1_ - out;
  } else {
    reserve1_ = reserve1_ + amount_in;
    reserve0_ = reserve0_ - out;
  }
  return out;
}

}  // namespace arb::amm
