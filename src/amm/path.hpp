#pragma once

/// \file path.hpp
/// A multi-hop swap path through CPMM pools and its closed-form algebra.
///
/// Composing constant-product swap functions stays inside the Möbius
/// family out(Δ) = a·Δ/(b + c·Δ): if the running composition is m(Δ) and
/// the next hop has reserves (x, y) with fee multiplier γ, then
///
///   γ·y·m(Δ) / (x + γ·m(Δ)) = (γ·y·a)·Δ / (x·b + (x·c + γ·a)·Δ).
///
/// Consequently a whole path — and in particular a whole arbitrage loop —
/// behaves exactly like one virtual pool, and the optimal single input
/// maximizing out(Δ) − Δ has the analytic solution Δ* = (√(a·b) − b)/c
/// (0 when a ≤ b, i.e. when the loop's price product is ≤ 1). The paper's
/// bisection on d out/d in = 1 solves the same equation numerically; both
/// are implemented and cross-checked in tests.

#include <vector>

#include "amm/pool.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "math/dual.hpp"

namespace arb::amm {

/// Coefficients of out(Δ) = a·Δ/(b + c·Δ), with b > 0, a, c >= 0.
struct MobiusCoefficients {
  double a = 1.0;
  double b = 1.0;
  double c = 0.0;

  /// The identity map out(Δ) = Δ.
  [[nodiscard]] static MobiusCoefficients identity() { return {}; }

  /// Composes one CPMM hop *after* this map (reserves of the hop's input
  /// and output side, fee multiplier gamma).
  [[nodiscard]] MobiusCoefficients then_hop(double reserve_in,
                                            double reserve_out,
                                            double gamma) const;

  [[nodiscard]] double evaluate(double input) const;
  [[nodiscard]] double derivative(double input) const;
  /// Marginal rate at zero input: a/b (the loop's price product).
  [[nodiscard]] double rate_at_zero() const { return a / b; }

  /// argmax of evaluate(Δ) − Δ over Δ >= 0 (closed form; 0 if no profit).
  [[nodiscard]] double optimal_input() const;
};

/// One hop: a pool and which of its tokens is the input side.
struct Hop {
  const CpmmPool* pool = nullptr;
  TokenId token_in;

  [[nodiscard]] TokenId token_out() const { return pool->other(token_in); }
};

/// An ordered, validated multi-hop path. Immutable after construction.
class PoolPath {
 public:
  /// Builds a path, checking hop-to-hop token continuity.
  /// Fails with kInvalidArgument on an empty or discontinuous hop list.
  [[nodiscard]] static Result<PoolPath> create(std::vector<Hop> hops);

  [[nodiscard]] const std::vector<Hop>& hops() const { return hops_; }
  [[nodiscard]] std::size_t length() const { return hops_.size(); }
  [[nodiscard]] TokenId start_token() const { return hops_.front().token_in; }
  [[nodiscard]] TokenId end_token() const { return hops_.back().token_out(); }
  /// True when the path returns to its start token (an arbitrage loop).
  [[nodiscard]] bool is_cycle() const { return start_token() == end_token(); }

  /// Closed-form Möbius composition of the whole path.
  [[nodiscard]] MobiusCoefficients compose() const;

  /// Output for a given input, evaluated hop-by-hop (numerically matches
  /// compose().evaluate; kept separate so tests can cross-check).
  [[nodiscard]] double evaluate(double input) const;

  /// Output and exact derivative via dual-number propagation.
  [[nodiscard]] math::Dual evaluate_dual(double input) const;

  /// Product of relative prices along the path; > 1 on a cycle means an
  /// arbitrage opportunity exists (the paper's detection condition).
  [[nodiscard]] double price_product() const;

  /// Per-hop input/output amounts for a given path input.
  [[nodiscard]] std::vector<SwapQuote> hop_amounts(double input) const;

 private:
  explicit PoolPath(std::vector<Hop> hops) : hops_(std::move(hops)) {}
  std::vector<Hop> hops_;
};

/// Result of optimizing the single-input trade on a cyclic path.
struct OptimalTrade {
  double input = 0.0;    ///< optimal Δin (0 when the loop is unprofitable)
  double output = 0.0;   ///< Δout at the optimum
  double profit = 0.0;   ///< output − input, in start-token units
  int iterations = 0;    ///< solver iterations (0 for the analytic route)
};

/// Closed-form optimum (Möbius algebra).
[[nodiscard]] OptimalTrade optimize_input_analytic(const PoolPath& path);

/// The paper's method: bisection on d out/d in − 1 = 0 with geometric
/// bracket expansion. Agrees with the analytic optimum to tolerance.
[[nodiscard]] Result<OptimalTrade> optimize_input_bisection(
    const PoolPath& path, double x_tolerance = 1e-10);

}  // namespace arb::amm
