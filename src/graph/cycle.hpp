#pragma once

/// \file cycle.hpp
/// Directed cycle representation shared by all enumeration algorithms.

#include <string>
#include <vector>

#include "amm/generic_path.hpp"
#include "amm/path.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "graph/token_graph.hpp"

namespace arb::graph {

/// A directed cycle: tokens[i] is the input token of pools[i], and the
/// output of pools[i] is tokens[(i+1) % n]. Tokens are distinct; so are
/// pools. Invariants are checked by Cycle::create.
class Cycle {
 public:
  [[nodiscard]] static Result<Cycle> create(const TokenGraph& graph,
                                            std::vector<TokenId> tokens,
                                            std::vector<PoolId> pools);

  [[nodiscard]] std::size_t length() const { return tokens_.size(); }
  [[nodiscard]] const std::vector<TokenId>& tokens() const { return tokens_; }
  [[nodiscard]] const std::vector<PoolId>& pools() const { return pools_; }

  /// The cycle rotated to start at position `offset` (same orientation).
  [[nodiscard]] Cycle rotated(std::size_t offset) const;

  /// The same loop walked in the opposite direction.
  [[nodiscard]] Cycle reversed() const;

  /// Canonical key identifying the cycle up to rotation (orientation
  /// preserved): rotated so the smallest token id comes first.
  [[nodiscard]] std::string rotation_key() const;

  /// Canonical key identifying the cycle up to rotation AND reflection.
  [[nodiscard]] std::string loop_key() const;

  /// True iff every pool of this loop is constant-product. Gates the
  /// Möbius/closed-form fast paths; mixed loops go through the generic
  /// (derivative-free) machinery instead.
  [[nodiscard]] bool all_cpmm(const TokenGraph& graph) const;

  /// Builds the swap path starting the walk at tokens()[offset].
  /// Precondition: all_cpmm(graph) — the Möbius path algebra is
  /// constant-product-only.
  [[nodiscard]] amm::PoolPath path(const TokenGraph& graph,
                                   std::size_t offset = 0) const;

  /// Builds the curve-agnostic swap chain starting at tokens()[offset].
  /// Works for any pool mix (each hop snapshots its pool's state).
  [[nodiscard]] amm::GenericPath generic_path(const TokenGraph& graph,
                                              std::size_t offset = 0) const;

  /// Product of relative prices around the cycle; > 1 ⇔ profitable
  /// orientation (the paper's detection condition).
  [[nodiscard]] double price_product(const TokenGraph& graph) const;

  /// "A -> B -> C -> A" with token symbols.
  [[nodiscard]] std::string describe(const TokenGraph& graph) const;

 private:
  Cycle(std::vector<TokenId> tokens, std::vector<PoolId> pools)
      : tokens_(std::move(tokens)), pools_(std::move(pools)) {}

  std::vector<TokenId> tokens_;
  std::vector<PoolId> pools_;
};

}  // namespace arb::graph
