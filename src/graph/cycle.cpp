#include "graph/cycle.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace arb::graph {

Result<Cycle> Cycle::create(const TokenGraph& graph,
                            std::vector<TokenId> tokens,
                            std::vector<PoolId> pools) {
  if (tokens.size() != pools.size() || tokens.size() < 2) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cycle needs equal token/pool counts of at least 2");
  }
  std::unordered_set<TokenId> seen_tokens;
  std::unordered_set<PoolId> seen_pools;
  const std::size_t n = tokens.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen_tokens.insert(tokens[i]).second) {
      return make_error(ErrorCode::kInvalidArgument,
                        "repeated token in cycle");
    }
    if (!seen_pools.insert(pools[i]).second) {
      return make_error(ErrorCode::kInvalidArgument, "repeated pool in cycle");
    }
    const amm::AnyPool& pool = graph.pool(pools[i]);
    const TokenId in = tokens[i];
    const TokenId out = tokens[(i + 1) % n];
    if (!pool.contains(in) || pool.other(in) != out) {
      return make_error(ErrorCode::kInvalidArgument,
                        "pool " + to_string(pools[i]) +
                            " does not connect " + to_string(in) + " -> " +
                            to_string(out));
    }
  }
  return Cycle(std::move(tokens), std::move(pools));
}

Cycle Cycle::rotated(std::size_t offset) const {
  const std::size_t n = tokens_.size();
  offset %= n;
  std::vector<TokenId> tokens(n);
  std::vector<PoolId> pools(n);
  for (std::size_t i = 0; i < n; ++i) {
    tokens[i] = tokens_[(i + offset) % n];
    pools[i] = pools_[(i + offset) % n];
  }
  return Cycle(std::move(tokens), std::move(pools));
}

Cycle Cycle::reversed() const {
  // Reversing the walk: token sequence reverses starting from the same
  // anchor; pool i of the reverse walk is the pool previously walked
  // *into* that position.
  const std::size_t n = tokens_.size();
  std::vector<TokenId> tokens(n);
  std::vector<PoolId> pools(n);
  for (std::size_t i = 0; i < n; ++i) {
    tokens[i] = tokens_[(n - i) % n];
    pools[i] = pools_[n - 1 - i];
  }
  return Cycle(std::move(tokens), std::move(pools));
}

namespace {

std::string key_of(const std::vector<TokenId>& tokens,
                   const std::vector<PoolId>& pools) {
  std::ostringstream os;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    os << tokens[i].value() << "/" << pools[i].value() << ";";
  }
  return os.str();
}

}  // namespace

std::string Cycle::rotation_key() const {
  const auto smallest =
      std::min_element(tokens_.begin(), tokens_.end()) - tokens_.begin();
  const Cycle canonical = rotated(static_cast<std::size_t>(smallest));
  return key_of(canonical.tokens_, canonical.pools_);
}

std::string Cycle::loop_key() const {
  const std::string forward = rotation_key();
  const std::string backward = reversed().rotation_key();
  return std::min(forward, backward);
}

bool Cycle::all_cpmm(const TokenGraph& graph) const {
  for (const PoolId pool : pools_) {
    if (!graph.pool(pool).is_cpmm()) return false;
  }
  return true;
}

amm::PoolPath Cycle::path(const TokenGraph& graph, std::size_t offset) const {
  const Cycle r = rotated(offset);
  std::vector<amm::Hop> hops;
  hops.reserve(r.length());
  for (std::size_t i = 0; i < r.length(); ++i) {
    hops.push_back(amm::Hop{&graph.pool(r.pools_[i]).cpmm(), r.tokens_[i]});
  }
  auto path = amm::PoolPath::create(std::move(hops));
  // A validated Cycle always yields a valid path.
  return *std::move(path);
}

amm::GenericPath Cycle::generic_path(const TokenGraph& graph,
                                     std::size_t offset) const {
  const Cycle r = rotated(offset);
  std::vector<amm::SwapFn> hops;
  hops.reserve(r.length());
  for (std::size_t i = 0; i < r.length(); ++i) {
    hops.push_back(amm::swap_fn(graph.pool(r.pools_[i]), r.tokens_[i]));
  }
  return amm::GenericPath(std::move(hops));
}

double Cycle::price_product(const TokenGraph& graph) const {
  double product = 1.0;
  const std::size_t n = tokens_.size();
  for (std::size_t i = 0; i < n; ++i) {
    product *= graph.pool(pools_[i]).relative_price_of(tokens_[i]);
  }
  return product;
}

std::string Cycle::describe(const TokenGraph& graph) const {
  std::ostringstream os;
  for (const TokenId token : tokens_) {
    os << graph.symbol(token) << " -> ";
  }
  os << graph.symbol(tokens_.front());
  return os.str();
}

}  // namespace arb::graph
