#pragma once

/// \file johnson.hpp
/// Johnson's algorithm (1975) for enumerating ALL elementary circuits of
/// the directed token graph (each pool contributes one arc per
/// direction), with the blocked-set machinery that makes it output-
/// sensitive — unlike the depth-bounded DFS in cycle_enumeration.hpp,
/// which is the right tool only when the paper's fixed loop length is
/// known in advance.
///
/// Circuits are emitted anchored at their smallest token id (rotation-
/// canonical); both orientations of each loop appear, and degenerate
/// back-and-forth 2-circuits through a single pool are excluded (they
/// can never be arbitrage). A cap bounds output on dense graphs, where
/// the circuit count is exponential.

#include <vector>

#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"

namespace arb::graph {

struct JohnsonResult {
  std::vector<Cycle> cycles;
  /// True when enumeration stopped at the cap rather than exhausting the
  /// graph.
  bool truncated = false;
};

/// Enumerates elementary circuits, stopping after `max_cycles` outputs.
[[nodiscard]] JohnsonResult enumerate_elementary_cycles(
    const TokenGraph& graph, std::size_t max_cycles = 1'000'000);

}  // namespace arb::graph
