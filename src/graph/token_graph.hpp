#pragma once

/// \file token_graph.hpp
/// The token exchange graph: tokens are nodes, liquidity pools are edges
/// (a multigraph — nothing prevents two venues from listing the same
/// pair). Owns the pool state; everything downstream references pools by
/// PoolId through this class.

#include <string>
#include <vector>

#include "amm/pool.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace arb::graph {

class TokenGraph {
 public:
  TokenGraph() = default;

  /// Registers a token. Symbols need not be unique (they are labels).
  TokenId add_token(std::string symbol);

  /// Registers a pool between two previously added tokens.
  /// Preconditions: valid distinct tokens, positive reserves, fee ∈ [0,1).
  PoolId add_pool(TokenId token0, TokenId token1, Amount reserve0,
                  Amount reserve1, double fee = kUniswapV2Fee);

  [[nodiscard]] std::size_t token_count() const { return symbols_.size(); }
  [[nodiscard]] std::size_t pool_count() const { return pools_.size(); }

  [[nodiscard]] const std::string& symbol(TokenId token) const;
  [[nodiscard]] const amm::CpmmPool& pool(PoolId id) const;
  [[nodiscard]] amm::CpmmPool& mutable_pool(PoolId id);

  /// Replaces a pool's reserves in place (an exogenous state change
  /// observed from the chain — the streaming runtime's update primitive).
  /// Tokens and fee are preserved. Preconditions: known pool, positive
  /// reserves.
  void set_pool_reserves(PoolId id, Amount reserve0, Amount reserve1);

  [[nodiscard]] const std::vector<amm::CpmmPool>& pools() const {
    return pools_;
  }

  /// Pools adjacent to a token.
  [[nodiscard]] const std::vector<PoolId>& pools_of(TokenId token) const;

  /// All token ids (dense, insertion order).
  [[nodiscard]] std::vector<TokenId> tokens() const;

  /// Looks a token up by symbol (first match).
  [[nodiscard]] Result<TokenId> find_token(const std::string& symbol) const;

 private:
  std::vector<std::string> symbols_;
  std::vector<amm::CpmmPool> pools_;
  std::vector<std::vector<PoolId>> adjacency_;
};

}  // namespace arb::graph
