#pragma once

/// \file token_graph.hpp
/// The token exchange graph: tokens are nodes, liquidity pools are edges
/// (a multigraph — nothing prevents two venues from listing the same
/// pair). Owns the pool state; everything downstream references pools by
/// PoolId through this class.
///
/// Edges are heterogeneous: each pool is an amm::AnyPool (constant
/// product, StableSwap, or concentrated liquidity). Topology queries and
/// the uniform price/quote surface work on any kind; code that needs the
/// CPMM closed forms first checks kind() and unwraps (see
/// graph::Cycle::all_cpmm and the scanner dispatch).
///
/// The graph is the market's *single writer*: every mutation — adding a
/// pool, replacing reserves, moving a concentrated price, or handing out
/// a mutable pool reference — bumps a monotone epoch. Read-only
/// projections (market::MarketView) copy the epoch they were refreshed
/// at, so shared readers can assert they are looking at current state
/// without comparing any pool bytes.

#include <cstdint>
#include <string>
#include <vector>

#include "amm/any_pool.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace arb::graph {

class TokenGraph {
 public:
  TokenGraph() = default;

  /// Registers a token. Symbols need not be unique (they are labels).
  TokenId add_token(std::string symbol);

  /// Registers a constant-product pool between two previously added
  /// tokens.
  /// Preconditions: valid distinct tokens, positive reserves, fee ∈ [0,1).
  PoolId add_pool(TokenId token0, TokenId token1, Amount reserve0,
                  Amount reserve1, double fee = kUniswapV2Fee);

  /// Registers a StableSwap pool.
  /// Preconditions: as add_pool, plus amplification > 0.
  PoolId add_stable_pool(TokenId token0, TokenId token1, Amount reserve0,
                         Amount reserve1, double amplification = 100.0,
                         double fee = 0.0004);

  /// Registers a concentrated-liquidity position on [p_lo, p_hi].
  /// Preconditions: valid distinct tokens, liquidity > 0,
  /// 0 < p_lo < price < p_hi, fee ∈ [0, 1).
  PoolId add_concentrated_pool(TokenId token0, TokenId token1,
                               double liquidity, double price, double p_lo,
                               double p_hi, double fee = 0.003);

  [[nodiscard]] std::size_t token_count() const { return symbols_.size(); }
  [[nodiscard]] std::size_t pool_count() const { return pools_.size(); }

  [[nodiscard]] const std::string& symbol(TokenId token) const;
  [[nodiscard]] const amm::AnyPool& pool(PoolId id) const;
  [[nodiscard]] amm::AnyPool& mutable_pool(PoolId id);

  /// Replaces a pool's reserves in place (an exogenous state change
  /// observed from the chain — the streaming runtime's update primitive).
  /// Kind-aware: tokens, fee, and curve parameters (amplification, tick
  /// range) are preserved. Fails on non-positive reserves, and for a
  /// concentrated position whose implied price would leave its range.
  /// Precondition: known pool.
  [[nodiscard]] Status set_pool_reserves(PoolId id, Amount reserve0,
                                         Amount reserve1);

  /// Replaces a concentrated position's (liquidity, price) state in
  /// place (the streaming runtime's concentrated update primitive).
  /// Fails on non-concentrated pools or a price outside the range.
  /// Precondition: known pool.
  [[nodiscard]] Status set_concentrated_state(PoolId id, double liquidity,
                                              double price);

  /// True iff every pool is constant-product (the paper's setting); the
  /// scanner uses this to keep all fast paths on homogeneous markets.
  /// O(1): a non-CPMM counter is maintained at registration (pool kinds
  /// never change after construction).
  [[nodiscard]] bool all_cpmm() const { return non_cpmm_pools_ == 0; }

  /// Monotone state-change counter: bumped by every pool registration,
  /// reserve/state write, and mutable_pool() access (handing out a
  /// mutable reference counts as a write — the graph cannot observe what
  /// the caller does with it). Never decreases.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] const std::vector<amm::AnyPool>& pools() const {
    return pools_;
  }

  /// Pools adjacent to a token.
  [[nodiscard]] const std::vector<PoolId>& pools_of(TokenId token) const;

  /// All token ids (dense, insertion order).
  [[nodiscard]] std::vector<TokenId> tokens() const;

  /// Looks a token up by symbol (first match).
  [[nodiscard]] Result<TokenId> find_token(const std::string& symbol) const;

 private:
  PoolId register_pool(amm::AnyPool pool);

  std::vector<std::string> symbols_;
  std::vector<amm::AnyPool> pools_;
  std::vector<std::vector<PoolId>> adjacency_;
  std::size_t non_cpmm_pools_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace arb::graph
