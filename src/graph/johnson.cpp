#include "graph/johnson.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace arb::graph {
namespace {

class JohnsonEnumerator {
 public:
  JohnsonEnumerator(const TokenGraph& graph, std::size_t max_cycles)
      : graph_(graph),
        max_cycles_(max_cycles),
        blocked_(graph.token_count(), false),
        block_lists_(graph.token_count()) {}

  JohnsonResult run() {
    const std::size_t n = graph_.token_count();
    for (std::size_t s = 0; s < n && !result_.truncated; ++s) {
      start_ = TokenId{static_cast<TokenId::underlying_type>(s)};
      // Reset blocking state for this anchor's sub-search.
      for (std::size_t v = s; v < n; ++v) {
        blocked_[v] = false;
        block_lists_[v].clear();
      }
      circuit(start_);
      ARB_REQUIRE(token_stack_.empty() && pool_stack_.empty(),
                  "johnson stack imbalance");
    }
    return std::move(result_);
  }

 private:
  /// DFS from v through vertices >= start_, blocked-set pruned.
  bool circuit(TokenId v) {  // NOLINT(misc-no-recursion)
    bool found = false;
    token_stack_.push_back(v);
    blocked_[v.value()] = true;

    for (const PoolId pool_id : graph_.pools_of(v)) {
      if (result_.truncated) break;
      const amm::AnyPool& pool = graph_.pool(pool_id);
      const TokenId w = pool.other(v);
      if (w < start_) continue;  // induced subgraph on {start_, ...}

      if (w == start_) {
        // Degenerate 2-circuit through one pool: skip.
        if (pool_stack_.size() == 1 && pool_stack_.front() == pool_id) {
          continue;
        }
        pool_stack_.push_back(pool_id);
        auto cycle = Cycle::create(graph_, token_stack_, pool_stack_);
        ARB_REQUIRE(cycle.ok(), "johnson produced invalid cycle");
        result_.cycles.push_back(*std::move(cycle));
        pool_stack_.pop_back();
        found = true;
        if (result_.cycles.size() >= max_cycles_) {
          result_.truncated = true;
          break;
        }
      } else if (!blocked_[w.value()]) {
        pool_stack_.push_back(pool_id);
        if (circuit(w)) found = true;
        pool_stack_.pop_back();
      }
    }

    if (found) {
      unblock(v);
    } else {
      // v stays blocked until some vertex on a path to start_ unblocks.
      for (const PoolId pool_id : graph_.pools_of(v)) {
        const TokenId w = graph_.pool(pool_id).other(v);
        if (w < start_) continue;
        block_lists_[w.value()].insert(v);
      }
    }
    token_stack_.pop_back();
    return found;
  }

  void unblock(TokenId v) {  // NOLINT(misc-no-recursion)
    blocked_[v.value()] = false;
    auto pending = std::move(block_lists_[v.value()]);
    block_lists_[v.value()].clear();
    for (const TokenId w : pending) {
      if (blocked_[w.value()]) unblock(w);
    }
  }

  const TokenGraph& graph_;
  const std::size_t max_cycles_;
  TokenId start_;
  std::vector<bool> blocked_;
  std::vector<std::unordered_set<TokenId>> block_lists_;
  std::vector<TokenId> token_stack_;
  std::vector<PoolId> pool_stack_;
  JohnsonResult result_;
};

}  // namespace

JohnsonResult enumerate_elementary_cycles(const TokenGraph& graph,
                                          std::size_t max_cycles) {
  ARB_REQUIRE(max_cycles > 0, "max_cycles must be positive");
  JohnsonEnumerator enumerator(graph, max_cycles);
  return enumerator.run();
}

}  // namespace arb::graph
