#include "graph/token_graph.hpp"

#include <utility>

namespace arb::graph {

TokenId TokenGraph::add_token(std::string symbol) {
  const TokenId id{static_cast<TokenId::underlying_type>(symbols_.size())};
  symbols_.push_back(std::move(symbol));
  adjacency_.emplace_back();
  return id;
}

PoolId TokenGraph::register_pool(amm::AnyPool pool) {
  const TokenId token0 = pool.token0();
  const TokenId token1 = pool.token1();
  ARB_REQUIRE(token0.value() < symbols_.size() &&
                  token1.value() < symbols_.size(),
              "pool references unknown token");
  const PoolId id = pool.id();
  if (!pool.is_cpmm()) ++non_cpmm_pools_;
  pools_.push_back(std::move(pool));
  adjacency_[token0.value()].push_back(id);
  adjacency_[token1.value()].push_back(id);
  ++epoch_;
  return id;
}

PoolId TokenGraph::add_pool(TokenId token0, TokenId token1, Amount reserve0,
                            Amount reserve1, double fee) {
  const PoolId id{static_cast<PoolId::underlying_type>(pools_.size())};
  return register_pool(
      amm::CpmmPool(id, token0, token1, reserve0, reserve1, fee));
}

PoolId TokenGraph::add_stable_pool(TokenId token0, TokenId token1,
                                   Amount reserve0, Amount reserve1,
                                   double amplification, double fee) {
  const PoolId id{static_cast<PoolId::underlying_type>(pools_.size())};
  return register_pool(amm::StablePool(id, token0, token1, reserve0,
                                       reserve1, amplification, fee));
}

PoolId TokenGraph::add_concentrated_pool(TokenId token0, TokenId token1,
                                         double liquidity, double price,
                                         double p_lo, double p_hi,
                                         double fee) {
  const PoolId id{static_cast<PoolId::underlying_type>(pools_.size())};
  return register_pool(amm::ConcentratedPool(id, token0, token1, liquidity,
                                             price, p_lo, p_hi, fee));
}

const std::string& TokenGraph::symbol(TokenId token) const {
  ARB_REQUIRE(token.value() < symbols_.size(), "unknown token");
  return symbols_[token.value()];
}

const amm::AnyPool& TokenGraph::pool(PoolId id) const {
  ARB_REQUIRE(id.value() < pools_.size(), "unknown pool");
  return pools_[id.value()];
}

amm::AnyPool& TokenGraph::mutable_pool(PoolId id) {
  ARB_REQUIRE(id.value() < pools_.size(), "unknown pool");
  ++epoch_;  // the reference may be written through; assume it is
  return pools_[id.value()];
}

Status TokenGraph::set_pool_reserves(PoolId id, Amount reserve0,
                                     Amount reserve1) {
  return mutable_pool(id).set_reserves(reserve0, reserve1);
}

Status TokenGraph::set_concentrated_state(PoolId id, double liquidity,
                                          double price) {
  return mutable_pool(id).set_concentrated_state(liquidity, price);
}

const std::vector<PoolId>& TokenGraph::pools_of(TokenId token) const {
  ARB_REQUIRE(token.value() < adjacency_.size(), "unknown token");
  return adjacency_[token.value()];
}

std::vector<TokenId> TokenGraph::tokens() const {
  std::vector<TokenId> out;
  out.reserve(symbols_.size());
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    out.emplace_back(static_cast<TokenId::underlying_type>(i));
  }
  return out;
}

Result<TokenId> TokenGraph::find_token(const std::string& symbol) const {
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i] == symbol) {
      return TokenId{static_cast<TokenId::underlying_type>(i)};
    }
  }
  return make_error(ErrorCode::kNotFound, "token symbol '" + symbol + "'");
}

}  // namespace arb::graph
