#pragma once

/// \file cycle_enumeration.hpp
/// Cycle discovery algorithms over the token graph.
///
/// Three algorithms are provided, mirroring the literature the paper
/// builds on:
///  * fixed-length DFS — what the paper uses ("we traversed all token
///    loops with 3 tokens", appendix: length 4);
///  * Johnson's elementary-circuits algorithm (McLaughlin et al.) with a
///    length bound;
///  * Bellman–Ford–Moore negative-cycle detection on −log(p) weights
///    (Zhou et al.), which finds *one* arbitrage loop fast.
///
/// All enumerators return cycles deduplicated up to rotation; both
/// orientations of a loop are reported (at most one of them can be a
/// profitable arbitrage orientation — see filter_arbitrage).

#include <optional>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"

namespace arb::graph {

/// All simple directed cycles with exactly `length` tokens, deduplicated
/// up to rotation. Preconditions: length >= 2.
[[nodiscard]] std::vector<Cycle> enumerate_fixed_length_cycles(
    const TokenGraph& graph, std::size_t length);

/// All simple directed cycles with 2..max_length tokens (Johnson's
/// algorithm with a depth bound), deduplicated up to rotation.
[[nodiscard]] std::vector<Cycle> enumerate_cycles_up_to(
    const TokenGraph& graph, std::size_t max_length);

/// Keeps only profitable orientations: price product > 1 + margin.
/// Because forward · backward products multiply to γ^{2n} ≤ 1, at most
/// one orientation of each loop survives, so the result is also
/// deduplicated up to reflection.
[[nodiscard]] std::vector<Cycle> filter_arbitrage(const TokenGraph& graph,
                                                  std::vector<Cycle> cycles,
                                                  double margin = 0.0);

/// Bellman–Ford–Moore on edge weights −log(p_in→out): returns one
/// arbitrage cycle (negative cycle) if any exists.
[[nodiscard]] std::optional<Cycle> find_negative_cycle(
    const TokenGraph& graph);

}  // namespace arb::graph
