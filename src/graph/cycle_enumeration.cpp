#include "graph/cycle_enumeration.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace arb::graph {
namespace {

/// Depth-first enumeration of simple cycles anchored at `start`. The
/// anchor is the smallest token id in the cycle, which deduplicates
/// rotations while keeping both orientations. At the depths the paper
/// uses (3–5) plain DFS beats the bookkeeping of Johnson's blocked-set
/// machinery, whose payoff only shows on unbounded enumeration.
class CycleDfs {
 public:
  CycleDfs(const TokenGraph& graph, TokenId start, std::size_t min_length,
           std::size_t max_length, std::vector<Cycle>& out)
      : graph_(graph),
        start_(start),
        min_length_(min_length),
        max_length_(max_length),
        out_(out) {}

  void run() {
    visited_.insert(start_);
    token_stack_.push_back(start_);
    extend();
  }

 private:
  void extend() {
    const TokenId current = token_stack_.back();
    for (const PoolId pool_id : graph_.pools_of(current)) {
      const amm::AnyPool& pool = graph_.pool(pool_id);
      const TokenId next = pool.other(current);

      // Close the cycle?
      if (next == start_ && token_stack_.size() >= min_length_) {
        // A pool may not repeat (relevant for 2-cycles through parallel
        // pools of the same pair).
        if (pool_stack_.empty() || pool_stack_.front() != pool_id) {
          pool_stack_.push_back(pool_id);
          auto cycle = Cycle::create(graph_, token_stack_, pool_stack_);
          ARB_REQUIRE(cycle.ok(), "DFS produced invalid cycle");
          out_.push_back(*std::move(cycle));
          pool_stack_.pop_back();
        }
      }

      // Extend deeper: only through tokens strictly above the anchor
      // (rotation dedup) and not yet on the stack (simple cycle).
      if (token_stack_.size() < max_length_ && next > start_ &&
          visited_.find(next) == visited_.end()) {
        visited_.insert(next);
        token_stack_.push_back(next);
        pool_stack_.push_back(pool_id);
        extend();
        pool_stack_.pop_back();
        token_stack_.pop_back();
        visited_.erase(next);
      }
    }
  }

  const TokenGraph& graph_;
  const TokenId start_;
  const std::size_t min_length_;
  const std::size_t max_length_;
  std::vector<Cycle>& out_;
  std::vector<TokenId> token_stack_;
  std::vector<PoolId> pool_stack_;
  std::unordered_set<TokenId> visited_;
};

std::vector<Cycle> enumerate_range(const TokenGraph& graph,
                                   std::size_t min_length,
                                   std::size_t max_length) {
  ARB_REQUIRE(min_length >= 2, "cycles need at least 2 tokens");
  ARB_REQUIRE(max_length >= min_length, "max_length < min_length");
  std::vector<Cycle> cycles;
  for (const TokenId start : graph.tokens()) {
    CycleDfs dfs(graph, start, min_length, max_length, cycles);
    dfs.run();
  }
  return cycles;
}

}  // namespace

std::vector<Cycle> enumerate_fixed_length_cycles(const TokenGraph& graph,
                                                 std::size_t length) {
  return enumerate_range(graph, length, length);
}

std::vector<Cycle> enumerate_cycles_up_to(const TokenGraph& graph,
                                          std::size_t max_length) {
  return enumerate_range(graph, 2, max_length);
}

std::vector<Cycle> filter_arbitrage(const TokenGraph& graph,
                                    std::vector<Cycle> cycles, double margin) {
  std::vector<Cycle> kept;
  kept.reserve(cycles.size());
  for (auto& cycle : cycles) {
    if (cycle.price_product(graph) > 1.0 + margin) {
      kept.push_back(std::move(cycle));
    }
  }
  return kept;
}

std::optional<Cycle> find_negative_cycle(const TokenGraph& graph) {
  const std::size_t n = graph.token_count();
  if (n == 0) return std::nullopt;

  struct Predecessor {
    TokenId token;
    PoolId pool;
  };
  // Virtual-source initialization: all distances zero, so any negative
  // cycle anywhere is reachable.
  std::vector<double> dist(n, 0.0);
  std::vector<std::optional<Predecessor>> pred(n);

  TokenId last_improved = TokenId::invalid();
  for (std::size_t round = 0; round < n; ++round) {
    last_improved = TokenId::invalid();
    for (const amm::AnyPool& pool : graph.pools()) {
      for (const TokenId from : {pool.token0(), pool.token1()}) {
        const TokenId to = pool.other(from);
        const double weight = -std::log(pool.relative_price_of(from));
        if (dist[from.value()] + weight < dist[to.value()] - 1e-15) {
          dist[to.value()] = dist[from.value()] + weight;
          pred[to.value()] = Predecessor{from, pool.id()};
          last_improved = to;
        }
      }
    }
    if (!last_improved.valid()) return std::nullopt;  // converged: no cycle
  }

  // A relaxation happened on round n: a negative cycle exists. Walk
  // predecessors n steps to guarantee we are standing on the cycle.
  TokenId cursor = last_improved;
  for (std::size_t i = 0; i < n; ++i) {
    ARB_REQUIRE(pred[cursor.value()].has_value(), "broken predecessor chain");
    cursor = pred[cursor.value()]->token;
  }

  // Extract the cycle: walk until cursor repeats, collecting hops. The
  // predecessor chain runs backwards (pred edge enters the token), so the
  // collected sequence is reversed at the end.
  std::vector<TokenId> rev_tokens;
  std::vector<PoolId> rev_pools;
  TokenId walk = cursor;
  do {
    const Predecessor& p = *pred[walk.value()];
    rev_tokens.push_back(walk);
    rev_pools.push_back(p.pool);
    walk = p.token;
  } while (walk != cursor);

  // rev_tokens = [c, p(c), p(p(c)), ...] with rev_pools[i] entering
  // rev_tokens[i]. Forward orientation: reverse the token order, and the
  // pool leaving forward-token i is the one entering reverse-token i-1.
  const std::size_t len = rev_tokens.size();
  std::vector<TokenId> tokens(len);
  std::vector<PoolId> pools(len);
  for (std::size_t i = 0; i < len; ++i) {
    tokens[i] = rev_tokens[(len - i) % len];
    pools[i] = rev_pools[(len - 1 - i + len) % len];
  }
  auto cycle = Cycle::create(graph, std::move(tokens), std::move(pools));
  if (!cycle.ok()) {
    ARB_LOG_WARN("find_negative_cycle extracted invalid cycle: "
                 << cycle.error().to_string());
    return std::nullopt;
  }
  return *std::move(cycle);
}

}  // namespace arb::graph
