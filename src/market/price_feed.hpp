#pragma once

/// \file price_feed.hpp
/// CEX (centralized exchange) USD price quotes per token.
///
/// The paper monetizes on-chain arbitrage profit with Binance prices
/// fetched from CoinGecko. This library has no network access, so the
/// feed is an explicit in-memory map filled either by the synthetic
/// snapshot generator or from a CSV file; the strategies only ever see
/// this interface.

#include <unordered_map>

#include "common/result.hpp"
#include "common/types.hpp"

namespace arb::market {

class CexPriceFeed {
 public:
  CexPriceFeed() = default;

  /// Sets (or replaces) a token's USD price. Precondition: price > 0.
  void set_price(TokenId token, UsdPrice price);

  [[nodiscard]] bool has_price(TokenId token) const;

  /// Quoted price. Fails with kNotFound for unknown tokens.
  [[nodiscard]] Result<UsdPrice> price(TokenId token) const;

  /// Quoted price with a precondition instead of a Result (for hot loops
  /// where the caller has already validated coverage).
  [[nodiscard]] UsdPrice price_unchecked(TokenId token) const;

  [[nodiscard]] std::size_t size() const { return prices_.size(); }

  /// USD value of an amount of a token. Precondition: price known.
  [[nodiscard]] double value_usd(TokenId token, Amount amount) const;

 private:
  std::unordered_map<TokenId, UsdPrice> prices_;
};

}  // namespace arb::market
