#pragma once

/// \file generator.hpp
/// Synthetic Uniswap-V2 snapshot generator.
///
/// Stands in for the paper's on-chain snapshot (2023-09-01). The paper's
/// filtered token graph had 51 tokens and 208 pools and contained 123
/// length-3 arbitrage loops; the default configuration is calibrated to
/// land on that scale. The generative model:
///
///  * each token t has a latent "fundamental" USD price P_t, log-uniform;
///  * topology: a clique of high-degree hub tokens (the WETH/USDC/USDT/DAI
///    role), every leaf wired to two hubs, remaining edges uniform — this
///    reproduces the hub-and-spoke shape of real DEX graphs and supplies
///    triangles;
///  * each pool's TVL is log-normal (heavy tail, as observed on-chain),
///    split half-and-half in value, and its internal price is the
///    fundamental ratio perturbed by log-normal noise. The noise is what
///    creates cyclic arbitrage;
///  * the CEX feed quotes P_t with its own (smaller) noise, which is what
///    makes the MaxPrice heuristic fallible (Fig. 6).
///
/// Everything is driven by one seed; identical config ⇒ identical market.

#include <cstdint>

#include "common/types.hpp"
#include "market/snapshot.hpp"

namespace arb::market {

struct GeneratorConfig {
  std::uint64_t seed = 20230901;  ///< paper snapshot date as default seed

  std::size_t token_count = 51;
  std::size_t pool_count = 208;
  std::size_t hub_count = 4;

  /// Fundamental price range (log-uniform), USD.
  double min_price_usd = 0.01;
  double max_price_usd = 3000.0;

  /// Pool TVL distribution (log-normal), USD.
  double tvl_log_mean = 12.3;   ///< exp(12.3) ≈ $220k median
  double tvl_log_sigma = 1.0;

  /// Per-pool log-price mispricing; the source of arbitrage loops.
  /// 0.011 calibrates the default 51-token / 208-pool market to exactly
  /// the paper's 123 length-3 arbitrage loops.
  double pool_price_noise_sigma = 0.011;
  /// CEX quote noise around the fundamental price.
  double cex_price_noise_sigma = 0.01;

  double fee = kUniswapV2Fee;

  /// Generation-time floors keeping the main population above the
  /// paper's quality filter.
  double min_pool_tvl_usd = 35'000.0;
  double min_token_reserve = 120.0;

  /// Additional deliberately-junk pools (below the filter) appended to
  /// exercise MarketSnapshot::filtered.
  std::size_t below_filter_pools = 0;
};

/// Generates a snapshot. Preconditions: token_count >= hub_count >= 2,
/// pool_count large enough for the mandatory topology (hub clique plus
/// two hub links per leaf).
[[nodiscard]] MarketSnapshot generate_snapshot(const GeneratorConfig& config);

}  // namespace arb::market
