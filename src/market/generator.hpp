#pragma once

/// \file generator.hpp
/// Synthetic Uniswap-V2 snapshot generator.
///
/// Stands in for the paper's on-chain snapshot (2023-09-01). The paper's
/// filtered token graph had 51 tokens and 208 pools and contained 123
/// length-3 arbitrage loops; the default configuration is calibrated to
/// land on that scale. The generative model:
///
///  * each token t has a latent "fundamental" USD price P_t, log-uniform;
///  * topology: a clique of high-degree hub tokens (the WETH/USDC/USDT/DAI
///    role), every leaf wired to two hubs, remaining edges uniform — this
///    reproduces the hub-and-spoke shape of real DEX graphs and supplies
///    triangles;
///  * each pool's TVL is log-normal (heavy tail, as observed on-chain),
///    split half-and-half in value, and its internal price is the
///    fundamental ratio perturbed by log-normal noise. The noise is what
///    creates cyclic arbitrage;
///  * the CEX feed quotes P_t with its own (smaller) noise, which is what
///    makes the MaxPrice heuristic fallible (Fig. 6).
///
/// Everything is driven by one seed; identical config ⇒ identical market.

#include <cstdint>

#include "common/types.hpp"
#include "market/snapshot.hpp"

namespace arb::market {

struct GeneratorConfig {
  std::uint64_t seed = 20230901;  ///< paper snapshot date as default seed

  std::size_t token_count = 51;
  std::size_t pool_count = 208;
  std::size_t hub_count = 4;

  /// Fundamental price range (log-uniform), USD.
  double min_price_usd = 0.01;
  double max_price_usd = 3000.0;

  /// Pool TVL distribution (log-normal), USD.
  double tvl_log_mean = 12.3;   ///< exp(12.3) ≈ $220k median
  double tvl_log_sigma = 1.0;

  /// Per-pool log-price mispricing; the source of arbitrage loops.
  /// 0.011 calibrates the default 51-token / 208-pool market to exactly
  /// the paper's 123 length-3 arbitrage loops.
  double pool_price_noise_sigma = 0.011;
  /// CEX quote noise around the fundamental price.
  double cex_price_noise_sigma = 0.01;

  double fee = kUniswapV2Fee;

  /// Mixed-venue knobs. With both fractions zero (default) the generator
  /// emits the original all-CPMM market, bit-identical draw for draw.
  /// Otherwise each pool is independently designated StableSwap with
  /// probability stable_fraction (only between near-pegged pairs — a
  /// stable curve between unpegged assets would be a free money printer)
  /// or concentrated with probability concentrated_fraction. When
  /// stable_fraction > 0 the hub tokens become stablecoin-like (pegged
  /// near $1) so the hub clique supplies realistic stable pairs.
  double stable_fraction = 0.0;
  double concentrated_fraction = 0.0;

  /// StableSwap amplification range (log-uniform draw), Curve-realistic.
  double min_amplification = 10.0;
  double max_amplification = 2000.0;
  double stable_fee = 0.0004;

  /// Concentrated position width: p_lo = spot/width, p_hi = spot·width
  /// with width log-uniform in this range.
  double min_range_width = 1.5;
  double max_range_width = 4.0;
  double concentrated_fee = 0.003;

  /// Pairs farther than this in log-price are ineligible for StableSwap.
  double stable_peg_tolerance = 0.05;

  /// Generation-time floors keeping the main population above the
  /// paper's quality filter.
  double min_pool_tvl_usd = 35'000.0;
  double min_token_reserve = 120.0;

  /// Additional deliberately-junk pools (below the filter) appended to
  /// exercise MarketSnapshot::filtered.
  std::size_t below_filter_pools = 0;
};

/// Generates a snapshot. Preconditions: token_count >= hub_count >= 2,
/// pool_count large enough for the mandatory topology (hub clique plus
/// two hub links per leaf).
[[nodiscard]] MarketSnapshot generate_snapshot(const GeneratorConfig& config);

}  // namespace arb::market
