#pragma once

/// \file view.hpp
/// Dense, read-only projection of one market: per-pool state and curve
/// parameters plus per-token CEX prices, in contiguous arrays indexed by
/// the (already dense) PoolId / TokenId values.
///
/// The view exists so many readers — the sharded runtime's per-shard
/// scanners above all — can share one market without each deep-copying a
/// `MarketSnapshot`. The owning `graph::TokenGraph` stays the single
/// writer: every graph mutation bumps its epoch, and a refresh copies
/// the mutable pool state back into the arrays and adopts that epoch.
/// Readers compare `view.epoch() == graph.epoch()` to assert freshness
/// without touching any pool bytes.
///
/// Cached values are taken verbatim from the pool objects (the same
/// `relative_price_of` the batch scanner calls), so `price_product` is
/// bit-identical to `graph::Cycle::price_product` on the backing graph
/// at the view's epoch — the property the sharded scanner's profitable-
/// orientation gate relies on.

#include <cstdint>
#include <vector>

#include "amm/any_pool.hpp"
#include "common/types.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace arb::market {

class MarketView {
 public:
  MarketView() = default;

  /// Materializes the dense arrays from the graph's current state and
  /// the price feed. Tokens without a CEX quote get a NaN price.
  [[nodiscard]] static MarketView build(const graph::TokenGraph& graph,
                                        const CexPriceFeed& prices);

  /// Re-reads one pool's mutable state (reserves, price, cached relative
  /// prices) after the writer updated it. Immutable facts (tokens, fee,
  /// kind, curve parameters) are not re-read — they cannot change.
  /// Precondition: `graph` is the graph the view was built from.
  void refresh_pool(const graph::TokenGraph& graph, PoolId pool);

  /// Re-reads every pool's mutable state and adopts the graph's epoch.
  void refresh(const graph::TokenGraph& graph);

  /// Adopts the writer's epoch after a round of refresh_pool calls has
  /// caught the arrays up with the graph.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] std::size_t pool_count() const { return kind_.size(); }
  [[nodiscard]] std::size_t token_count() const { return usd_price_.size(); }
  [[nodiscard]] bool all_cpmm() const { return non_cpmm_pools_ == 0; }

  [[nodiscard]] amm::PoolKind kind(PoolId pool) const {
    return kind_[pool.value()];
  }
  [[nodiscard]] TokenId token0(PoolId pool) const {
    return token0_[pool.value()];
  }
  [[nodiscard]] TokenId token1(PoolId pool) const {
    return token1_[pool.value()];
  }
  [[nodiscard]] double fee(PoolId pool) const { return fee_[pool.value()]; }
  [[nodiscard]] Amount reserve0(PoolId pool) const {
    return reserve0_[pool.value()];
  }
  [[nodiscard]] Amount reserve1(PoolId pool) const {
    return reserve1_[pool.value()];
  }
  /// StableSwap amplification (0 for other kinds).
  [[nodiscard]] double amplification(PoolId pool) const {
    return amplification_[pool.value()];
  }
  /// Concentrated range bounds (0 for other kinds).
  [[nodiscard]] double price_lo(PoolId pool) const {
    return price_lo_[pool.value()];
  }
  [[nodiscard]] double price_hi(PoolId pool) const {
    return price_hi_[pool.value()];
  }

  /// USD price of a token; NaN when the feed carries no quote.
  [[nodiscard]] double usd_price(TokenId token) const {
    return usd_price_[token.value()];
  }

  /// Zero-size relative price of `token_in` (fee included) — the cached
  /// value of `pool.relative_price_of(token_in)` at the view's epoch.
  [[nodiscard]] double relative_price(PoolId pool, TokenId token_in) const {
    return token_in == token0_[pool.value()] ? rel_price0_[pool.value()]
                                             : rel_price1_[pool.value()];
  }

  /// Raw cached relative-price arrays (indexed by PoolId value) backing
  /// relative_price(). The runtime's SoA gate sweep walks these
  /// contiguously — reading the same doubles relative_price() returns,
  /// so any product computed from them in cycle order stays bit-identical
  /// to price_product().
  [[nodiscard]] const double* rel_price0_data() const {
    return rel_price0_.data();
  }
  [[nodiscard]] const double* rel_price1_data() const {
    return rel_price1_.data();
  }

  /// Product of relative prices around the cycle — bit-identical to
  /// `cycle.price_product(graph)` at the view's epoch, computed from the
  /// dense arrays (no variant dispatch, no division).
  [[nodiscard]] double price_product(const graph::Cycle& cycle) const {
    double product = 1.0;
    const std::size_t n = cycle.length();
    for (std::size_t i = 0; i < n; ++i) {
      product *= relative_price(cycle.pools()[i], cycle.tokens()[i]);
    }
    return product;
  }

 private:
  std::uint64_t epoch_ = 0;
  std::size_t non_cpmm_pools_ = 0;
  // Per-pool, indexed by PoolId value. Immutable after build():
  std::vector<amm::PoolKind> kind_;
  std::vector<TokenId> token0_;
  std::vector<TokenId> token1_;
  std::vector<double> fee_;
  std::vector<double> amplification_;
  std::vector<double> price_lo_;
  std::vector<double> price_hi_;
  // Mutable pool state, rewritten by refresh_pool():
  std::vector<Amount> reserve0_;
  std::vector<Amount> reserve1_;
  std::vector<double> rel_price0_;  ///< relative_price_of(token0)
  std::vector<double> rel_price1_;  ///< relative_price_of(token1)
  // Per-token, indexed by TokenId value:
  std::vector<double> usd_price_;
};

}  // namespace arb::market
