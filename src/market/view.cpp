#include "market/view.hpp"

#include <limits>

#include "common/error.hpp"

namespace arb::market {

MarketView MarketView::build(const graph::TokenGraph& graph,
                             const CexPriceFeed& prices) {
  MarketView view;
  const std::size_t pools = graph.pool_count();
  view.kind_.reserve(pools);
  view.token0_.reserve(pools);
  view.token1_.reserve(pools);
  view.fee_.reserve(pools);
  view.amplification_.assign(pools, 0.0);
  view.price_lo_.assign(pools, 0.0);
  view.price_hi_.assign(pools, 0.0);
  view.reserve0_.resize(pools);
  view.reserve1_.resize(pools);
  view.rel_price0_.resize(pools);
  view.rel_price1_.resize(pools);
  for (const amm::AnyPool& pool : graph.pools()) {
    const std::size_t i = view.kind_.size();
    view.kind_.push_back(pool.kind());
    view.token0_.push_back(pool.token0());
    view.token1_.push_back(pool.token1());
    view.fee_.push_back(pool.fee());
    switch (pool.kind()) {
      case amm::PoolKind::kCpmm:
        break;
      case amm::PoolKind::kStable:
        view.amplification_[i] = pool.stable().amplification();
        ++view.non_cpmm_pools_;
        break;
      case amm::PoolKind::kConcentrated:
        view.price_lo_[i] = pool.concentrated().p_lo();
        view.price_hi_[i] = pool.concentrated().p_hi();
        ++view.non_cpmm_pools_;
        break;
    }
  }
  view.usd_price_.assign(graph.token_count(),
                         std::numeric_limits<double>::quiet_NaN());
  for (const TokenId token : graph.tokens()) {
    if (prices.has_price(token)) {
      view.usd_price_[token.value()] = prices.price_unchecked(token);
    }
  }
  view.refresh(graph);
  return view;
}

void MarketView::refresh_pool(const graph::TokenGraph& graph, PoolId pool) {
  ARB_REQUIRE(pool.value() < kind_.size(), "view refresh for unknown pool");
  const amm::AnyPool& state = graph.pool(pool);
  const std::size_t i = pool.value();
  reserve0_[i] = state.reserve0();
  reserve1_[i] = state.reserve1();
  rel_price0_[i] = state.relative_price_of(token0_[i]);
  rel_price1_[i] = state.relative_price_of(token1_[i]);
}

void MarketView::refresh(const graph::TokenGraph& graph) {
  ARB_REQUIRE(graph.pool_count() == kind_.size(),
              "view refresh against a different graph");
  for (std::size_t i = 0; i < kind_.size(); ++i) {
    refresh_pool(graph, PoolId{static_cast<PoolId::underlying_type>(i)});
  }
  epoch_ = graph.epoch();
}

}  // namespace arb::market
