#include "market/snapshot.hpp"

#include <unordered_map>

namespace arb::market {

double MarketSnapshot::pool_tvl_usd(PoolId id) const {
  const amm::AnyPool& pool = graph.pool(id);
  double tvl = 0.0;
  for (const TokenId token : {pool.token0(), pool.token1()}) {
    if (prices.has_price(token)) {
      tvl += prices.value_usd(token, pool.reserve_of(token));
    }
  }
  return tvl;
}

bool MarketSnapshot::pool_passes(PoolId id, const PoolFilter& filter) const {
  const amm::AnyPool& pool = graph.pool(id);
  if (pool.reserve0() < filter.min_token_reserve ||
      pool.reserve1() < filter.min_token_reserve) {
    return false;
  }
  return pool_tvl_usd(id) >= filter.min_tvl_usd;
}

MarketSnapshot MarketSnapshot::filtered(const PoolFilter& filter) const {
  MarketSnapshot out;
  out.label = label + " [filtered]";
  std::unordered_map<TokenId, TokenId> remap;

  const auto remap_token = [&](TokenId old_id) {
    const auto it = remap.find(old_id);
    if (it != remap.end()) return it->second;
    const TokenId new_id = out.graph.add_token(graph.symbol(old_id));
    if (prices.has_price(old_id)) {
      out.prices.set_price(new_id, prices.price_unchecked(old_id));
    }
    remap.emplace(old_id, new_id);
    return new_id;
  };

  for (const amm::AnyPool& pool : graph.pools()) {
    if (!pool_passes(pool.id(), filter)) continue;
    const TokenId token0 = remap_token(pool.token0());
    const TokenId token1 = remap_token(pool.token1());
    switch (pool.kind()) {
      case amm::PoolKind::kCpmm:
        out.graph.add_pool(token0, token1, pool.reserve0(), pool.reserve1(),
                           pool.fee());
        break;
      case amm::PoolKind::kStable:
        out.graph.add_stable_pool(token0, token1, pool.reserve0(),
                                  pool.reserve1(),
                                  pool.stable().amplification(), pool.fee());
        break;
      case amm::PoolKind::kConcentrated: {
        const amm::ConcentratedPool& clp = pool.concentrated();
        out.graph.add_concentrated_pool(token0, token1, clp.liquidity(),
                                        clp.price(), clp.p_lo(), clp.p_hi(),
                                        clp.fee());
        break;
      }
    }
  }
  return out;
}

}  // namespace arb::market
