#pragma once

/// \file io.hpp
/// Snapshot persistence: tokens.csv (id, symbol, cex_price_usd) and
/// pools.csv (id, token0, token1, reserve0, reserve1, fee) in a
/// directory. Round-trips exactly (doubles serialized shortest-exact).

#include <string>

#include "common/result.hpp"
#include "market/snapshot.hpp"

namespace arb::market {

/// Writes <dir>/tokens.csv and <dir>/pools.csv (directory must exist).
[[nodiscard]] Status save_snapshot(const MarketSnapshot& snapshot,
                                   const std::string& dir);

/// Reads a snapshot previously written by save_snapshot.
[[nodiscard]] Result<MarketSnapshot> load_snapshot(const std::string& dir);

}  // namespace arb::market
