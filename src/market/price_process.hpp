#pragma once

/// \file price_process.hpp
/// A block-by-block market dynamics model for multi-block simulations.
///
/// Each token's fundamental USD price follows geometric Brownian motion;
/// each block, "retail flow" trades every pool part-way toward its
/// fundamental ratio (pools lag, which keeps creating the transient
/// mispricings arbitrage loops live on), plus idiosyncratic noise. The
/// CEX feed re-quotes fundamentals with its own noise. All constant-
/// product invariants are preserved: flow moves a pool by scaling
/// reserves (r0·s, r1/s), which changes price but not k.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "market/snapshot.hpp"

namespace arb::market {

struct PriceProcessConfig {
  /// Per-block GBM drift and volatility of fundamentals (log-space).
  double drift = 0.0;
  double volatility = 0.005;
  /// Fraction of each pool's log-gap to fundamentals closed per block by
  /// retail flow (0 = pools never track, 1 = instant tracking).
  double pool_tracking = 0.35;
  /// Idiosyncratic per-pool log-price noise per block.
  double pool_noise = 0.008;
  /// CEX quote noise around fundamentals.
  double cex_noise = 0.002;
};

/// Evolves a snapshot block by block. Owns the fundamentals; the caller
/// owns the snapshot and passes it in for each step.
class PriceProcess {
 public:
  /// Initializes fundamentals from the snapshot's CEX quotes.
  /// Precondition: every token has a CEX price.
  PriceProcess(const MarketSnapshot& snapshot, PriceProcessConfig config,
               std::uint64_t seed);

  /// Advances one block: moves fundamentals (GBM), applies retail flow
  /// and noise to every pool, and re-quotes the CEX feed.
  void step(MarketSnapshot& snapshot);

  [[nodiscard]] double fundamental(TokenId token) const;
  [[nodiscard]] std::size_t blocks_elapsed() const { return blocks_; }

 private:
  PriceProcessConfig config_;
  Rng rng_;
  std::vector<double> fundamentals_;
  std::size_t blocks_ = 0;
};

}  // namespace arb::market
