#include "market/io.hpp"

#include <fstream>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace arb::market {
namespace {

constexpr const char* kTokensFile = "/tokens.csv";
constexpr const char* kPoolsFile = "/pools.csv";

}  // namespace

Status save_snapshot(const MarketSnapshot& snapshot, const std::string& dir) {
  {
    std::ofstream out(dir + kTokensFile);
    if (!out) {
      return make_error(ErrorCode::kIoError,
                        "cannot write " + dir + kTokensFile);
    }
    CsvWriter csv(out);
    csv.header({"token_id", "symbol", "cex_price_usd"});
    for (const TokenId token : snapshot.graph.tokens()) {
      const double price = snapshot.prices.has_price(token)
                               ? snapshot.prices.price_unchecked(token)
                               : 0.0;
      csv.row(static_cast<std::size_t>(token.value()),
              snapshot.graph.symbol(token), price);
    }
  }
  {
    std::ofstream out(dir + kPoolsFile);
    if (!out) {
      return make_error(ErrorCode::kIoError,
                        "cannot write " + dir + kPoolsFile);
    }
    CsvWriter csv(out);
    csv.header({"pool_id", "token0", "token1", "reserve0", "reserve1", "fee"});
    for (const amm::CpmmPool& pool : snapshot.graph.pools()) {
      csv.row(static_cast<std::size_t>(pool.id().value()),
              static_cast<std::size_t>(pool.token0().value()),
              static_cast<std::size_t>(pool.token1().value()),
              pool.reserve0(), pool.reserve1(), pool.fee());
    }
  }
  return Status::success();
}

Result<MarketSnapshot> load_snapshot(const std::string& dir) {
  auto tokens = read_csv_file(dir + kTokensFile);
  if (!tokens) return tokens.error();
  auto pools = read_csv_file(dir + kPoolsFile);
  if (!pools) return pools.error();

  MarketSnapshot snapshot;
  snapshot.label = "loaded from " + dir;

  const std::size_t symbol_col = tokens->column_index("symbol");
  const std::size_t price_col = tokens->column_index("cex_price_usd");
  for (const auto& row : tokens->rows) {
    const TokenId id = snapshot.graph.add_token(row[symbol_col]);
    auto price = parse_double(row[price_col]);
    if (!price) return price.error();
    if (*price > 0.0) snapshot.prices.set_price(id, *price);
  }

  const std::size_t t0_col = pools->column_index("token0");
  const std::size_t t1_col = pools->column_index("token1");
  const std::size_t r0_col = pools->column_index("reserve0");
  const std::size_t r1_col = pools->column_index("reserve1");
  const std::size_t fee_col = pools->column_index("fee");
  for (const auto& row : pools->rows) {
    auto t0 = parse_u64(row[t0_col]);
    auto t1 = parse_u64(row[t1_col]);
    auto r0 = parse_double(row[r0_col]);
    auto r1 = parse_double(row[r1_col]);
    auto fee = parse_double(row[fee_col]);
    if (!t0) return t0.error();
    if (!t1) return t1.error();
    if (!r0) return r0.error();
    if (!r1) return r1.error();
    if (!fee) return fee.error();
    if (*t0 >= snapshot.graph.token_count() ||
        *t1 >= snapshot.graph.token_count()) {
      return make_error(ErrorCode::kParseError,
                        "pool references unknown token id");
    }
    snapshot.graph.add_pool(
        TokenId{static_cast<TokenId::underlying_type>(*t0)},
        TokenId{static_cast<TokenId::underlying_type>(*t1)}, *r0, *r1, *fee);
  }
  return snapshot;
}

}  // namespace arb::market
