#include "market/io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace arb::market {
namespace {

constexpr const char* kTokensFile = "/tokens.csv";
constexpr const char* kPoolsFile = "/pools.csv";

/// Optional-column lookup (column_index asserts on absence; absence is
/// legal here — pre-heterogeneous snapshots have no `kind` column).
std::size_t find_column(const CsvTable& table, const std::string& name) {
  const auto it = std::find(table.header.begin(), table.header.end(), name);
  return it == table.header.end()
             ? table.header.size()
             : static_cast<std::size_t>(it - table.header.begin());
}

}  // namespace

Status save_snapshot(const MarketSnapshot& snapshot, const std::string& dir) {
  {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return make_error(ErrorCode::kIoError, "cannot create directory " +
                                                 dir + ": " + ec.message());
    }
  }
  {
    std::ofstream out(dir + kTokensFile);
    if (!out) {
      return make_error(ErrorCode::kIoError,
                        "cannot write " + dir + kTokensFile);
    }
    CsvWriter csv(out);
    csv.header({"token_id", "symbol", "cex_price_usd"});
    for (const TokenId token : snapshot.graph.tokens()) {
      const double price = snapshot.prices.has_price(token)
                               ? snapshot.prices.price_unchecked(token)
                               : 0.0;
      csv.row(static_cast<std::size_t>(token.value()),
              snapshot.graph.symbol(token), price);
    }
  }
  {
    std::ofstream out(dir + kPoolsFile);
    if (!out) {
      return make_error(ErrorCode::kIoError,
                        "cannot write " + dir + kPoolsFile);
    }
    CsvWriter csv(out);
    // Kind-specific parameters ride in four generic columns:
    //   stable:       param_a = amplification
    //   concentrated: param_a = liquidity, param_b = price,
    //                 param_c = p_lo, param_d = p_hi
    // For concentrated positions (liquidity, price) are stored directly —
    // not re-derived from reserves on load — so the round-trip is exact.
    csv.header({"pool_id", "token0", "token1", "reserve0", "reserve1", "fee",
                "kind", "param_a", "param_b", "param_c", "param_d"});
    for (const amm::AnyPool& pool : snapshot.graph.pools()) {
      double a = 0.0;
      double b = 0.0;
      double c = 0.0;
      double d = 0.0;
      switch (pool.kind()) {
        case amm::PoolKind::kCpmm:
          break;
        case amm::PoolKind::kStable:
          a = pool.stable().amplification();
          break;
        case amm::PoolKind::kConcentrated: {
          const amm::ConcentratedPool& clp = pool.concentrated();
          a = clp.liquidity();
          b = clp.price();
          c = clp.p_lo();
          d = clp.p_hi();
          break;
        }
      }
      csv.row(static_cast<std::size_t>(pool.id().value()),
              static_cast<std::size_t>(pool.token0().value()),
              static_cast<std::size_t>(pool.token1().value()),
              pool.reserve0(), pool.reserve1(), pool.fee(),
              amm::to_string(pool.kind()), a, b, c, d);
    }
  }
  return Status::success();
}

Result<MarketSnapshot> load_snapshot(const std::string& dir) {
  auto tokens = read_csv_file(dir + kTokensFile);
  if (!tokens) return tokens.error();
  auto pools = read_csv_file(dir + kPoolsFile);
  if (!pools) return pools.error();

  MarketSnapshot snapshot;
  snapshot.label = "loaded from " + dir;

  const std::size_t symbol_col = tokens->column_index("symbol");
  const std::size_t price_col = tokens->column_index("cex_price_usd");
  for (const auto& row : tokens->rows) {
    const TokenId id = snapshot.graph.add_token(row[symbol_col]);
    auto price = parse_double(row[price_col]);
    if (!price) return price.error();
    if (*price > 0.0) snapshot.prices.set_price(id, *price);
  }

  const std::size_t t0_col = pools->column_index("token0");
  const std::size_t t1_col = pools->column_index("token1");
  const std::size_t r0_col = pools->column_index("reserve0");
  const std::size_t r1_col = pools->column_index("reserve1");
  const std::size_t fee_col = pools->column_index("fee");
  // Pre-heterogeneous files lack the kind/param columns: all CPMM.
  const std::size_t kind_col = find_column(*pools, "kind");
  const std::size_t a_col = find_column(*pools, "param_a");
  const std::size_t b_col = find_column(*pools, "param_b");
  const std::size_t c_col = find_column(*pools, "param_c");
  const std::size_t d_col = find_column(*pools, "param_d");
  const bool has_kind = kind_col < pools->header.size();
  if (has_kind &&
      (a_col >= pools->header.size() || b_col >= pools->header.size() ||
       c_col >= pools->header.size() || d_col >= pools->header.size())) {
    return make_error(ErrorCode::kParseError,
                      "pools.csv has a kind column but incomplete "
                      "param_a..param_d columns");
  }

  for (const auto& row : pools->rows) {
    auto t0 = parse_u64(row[t0_col]);
    auto t1 = parse_u64(row[t1_col]);
    auto r0 = parse_double(row[r0_col]);
    auto r1 = parse_double(row[r1_col]);
    auto fee = parse_double(row[fee_col]);
    if (!t0) return t0.error();
    if (!t1) return t1.error();
    if (!r0) return r0.error();
    if (!r1) return r1.error();
    if (!fee) return fee.error();
    if (*t0 >= snapshot.graph.token_count() ||
        *t1 >= snapshot.graph.token_count()) {
      return make_error(ErrorCode::kParseError,
                        "pool references unknown token id");
    }
    const TokenId token0{static_cast<TokenId::underlying_type>(*t0)};
    const TokenId token1{static_cast<TokenId::underlying_type>(*t1)};

    const std::string kind = has_kind ? row[kind_col] : "cpmm";
    if (kind == "cpmm") {
      snapshot.graph.add_pool(token0, token1, *r0, *r1, *fee);
    } else if (kind == "stable") {
      auto amplification = parse_double(row[a_col]);
      if (!amplification) return amplification.error();
      snapshot.graph.add_stable_pool(token0, token1, *r0, *r1,
                                     *amplification, *fee);
    } else if (kind == "concentrated") {
      auto liquidity = parse_double(row[a_col]);
      auto price = parse_double(row[b_col]);
      auto p_lo = parse_double(row[c_col]);
      auto p_hi = parse_double(row[d_col]);
      if (!liquidity) return liquidity.error();
      if (!price) return price.error();
      if (!p_lo) return p_lo.error();
      if (!p_hi) return p_hi.error();
      if (!(*liquidity > 0.0) ||
          !(*p_lo > 0.0 && *p_lo < *price && *price < *p_hi)) {
        return make_error(ErrorCode::kParseError,
                          "concentrated pool parameters out of domain");
      }
      snapshot.graph.add_concentrated_pool(token0, token1, *liquidity,
                                           *price, *p_lo, *p_hi, *fee);
    } else {
      return make_error(ErrorCode::kParseError,
                        "unknown pool kind '" + kind + "'");
    }
  }
  return snapshot;
}

}  // namespace arb::market
