#include "market/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace arb::market {
namespace {

using TokenPair = std::pair<std::uint32_t, std::uint32_t>;

TokenPair ordered(std::uint32_t a, std::uint32_t b) {
  return a < b ? TokenPair{a, b} : TokenPair{b, a};
}

/// Builds the edge list: hub clique, two hub links per leaf, then uniform
/// random pairs until pool_count unique pairs exist.
std::vector<TokenPair> build_topology(const GeneratorConfig& config,
                                      Rng& rng) {
  const std::uint32_t n = static_cast<std::uint32_t>(config.token_count);
  const std::uint32_t hubs = static_cast<std::uint32_t>(config.hub_count);
  std::set<TokenPair> edges;

  for (std::uint32_t a = 0; a < hubs; ++a) {
    for (std::uint32_t b = a + 1; b < hubs; ++b) {
      edges.insert({a, b});
    }
  }
  for (std::uint32_t leaf = hubs; leaf < n; ++leaf) {
    const std::uint32_t h1 = static_cast<std::uint32_t>(rng.index(hubs));
    std::uint32_t h2 = static_cast<std::uint32_t>(rng.index(hubs));
    while (h2 == h1) h2 = static_cast<std::uint32_t>(rng.index(hubs));
    edges.insert(ordered(leaf, h1));
    edges.insert(ordered(leaf, h2));
  }
  ARB_REQUIRE(edges.size() <= config.pool_count,
              "pool_count too small for mandatory topology");

  const std::size_t max_pairs = static_cast<std::size_t>(n) * (n - 1) / 2;
  ARB_REQUIRE(config.pool_count <= max_pairs,
              "pool_count exceeds number of distinct token pairs");
  while (edges.size() < config.pool_count) {
    const auto a = static_cast<std::uint32_t>(rng.index(n));
    auto b = static_cast<std::uint32_t>(rng.index(n));
    while (b == a) b = static_cast<std::uint32_t>(rng.index(n));
    edges.insert(ordered(a, b));
  }
  return {edges.begin(), edges.end()};
}

}  // namespace

MarketSnapshot generate_snapshot(const GeneratorConfig& config) {
  ARB_REQUIRE(config.hub_count >= 2 && config.token_count >= config.hub_count,
              "need token_count >= hub_count >= 2");
  ARB_REQUIRE(config.min_price_usd > 0.0 &&
                  config.max_price_usd > config.min_price_usd,
              "invalid price range");
  Rng rng(config.seed);

  MarketSnapshot snapshot;
  snapshot.label = "synthetic seed=" + std::to_string(config.seed);

  // Tokens and fundamental prices. Hubs get stable-coin-like fixed roles
  // so the graph reads naturally in examples.
  std::vector<double> fundamental(config.token_count);
  for (std::size_t t = 0; t < config.token_count; ++t) {
    const bool is_hub = t < config.hub_count;
    const std::string symbol =
        (is_hub ? "HUB" : "TKN") + std::to_string(t);
    snapshot.graph.add_token(symbol);
    if (is_hub && config.stable_fraction > 0.0) {
      // Stablecoin-like hubs: pegged near $1 so hub-hub pairs are
      // realistic StableSwap candidates.
      fundamental[t] = std::exp(rng.normal(0.0, 0.01));
    } else {
      fundamental[t] = std::exp(rng.uniform(std::log(config.min_price_usd),
                                            std::log(config.max_price_usd)));
    }
  }

  // CEX quotes: fundamental price with independent noise.
  for (std::size_t t = 0; t < config.token_count; ++t) {
    const double quote =
        fundamental[t] * std::exp(rng.normal(0.0, config.cex_price_noise_sigma));
    snapshot.prices.set_price(
        TokenId{static_cast<TokenId::underlying_type>(t)}, quote);
  }

  const double mixed_fraction =
      config.stable_fraction + config.concentrated_fraction;
  ARB_REQUIRE(config.stable_fraction >= 0.0 &&
                  config.concentrated_fraction >= 0.0 &&
                  mixed_fraction <= 1.0,
              "venue fractions must be non-negative and sum to <= 1");

  const auto add_pool = [&](std::uint32_t a, std::uint32_t b, double tvl_usd) {
    const double mispricing =
        rng.normal(0.0, config.pool_price_noise_sigma);
    // Value-balanced reserves with the mispricing split across both
    // sides, so that r_b / r_a = (P_a / P_b) · exp(mispricing).
    double reserve_a =
        (tvl_usd / 2.0) / fundamental[a] * std::exp(-mispricing / 2.0);
    double reserve_b =
        (tvl_usd / 2.0) / fundamental[b] * std::exp(+mispricing / 2.0);

    if (mixed_fraction > 0.0) {
      // One kind draw per pool; the all-CPMM default consumes no extra
      // randomness, so fractions == 0 reproduces the original market.
      const double u = rng.uniform(0.0, 1.0);
      const bool near_peg =
          std::abs(std::log(fundamental[a] / fundamental[b])) <=
          config.stable_peg_tolerance;
      if (u < config.stable_fraction && near_peg) {
        const double amplification =
            std::exp(rng.uniform(std::log(config.min_amplification),
                                 std::log(config.max_amplification)));
        snapshot.graph.add_stable_pool(TokenId{a}, TokenId{b}, reserve_a,
                                       reserve_b, amplification,
                                       config.stable_fee);
        return;
      }
      if (u < mixed_fraction && u >= config.stable_fraction) {
        // Symmetric log-range around the spot price keeps the implied
        // in-range price exactly at spot: with √lo = √p/√w and
        // √hi = √p·√w the reserve ratio at √p equals p, so the
        // position holds exactly (reserve_a, reserve_b).
        const double width =
            std::exp(rng.uniform(std::log(config.min_range_width),
                                 std::log(config.max_range_width)));
        const double spot = reserve_b / reserve_a;  // token1 per token0
        const double sqrt_spot = std::sqrt(spot);
        const double liquidity =
            reserve_b / (sqrt_spot * (1.0 - 1.0 / std::sqrt(width)));
        snapshot.graph.add_concentrated_pool(
            TokenId{a}, TokenId{b}, liquidity, spot, spot / width,
            spot * width, config.concentrated_fee);
        return;
      }
    }
    snapshot.graph.add_pool(TokenId{a}, TokenId{b}, reserve_a, reserve_b,
                            config.fee);
  };

  for (const auto& [a, b] : build_topology(config, rng)) {
    double tvl = std::exp(rng.normal(config.tvl_log_mean, config.tvl_log_sigma));
    // Keep the main population above the paper's quality filter: enough
    // TVL, and enough units on the expensive side.
    const double price_cap = std::max(fundamental[a], fundamental[b]);
    const double floor = std::max(
        config.min_pool_tvl_usd,
        2.2 * config.min_token_reserve * price_cap);
    tvl = std::max(tvl, floor);
    add_pool(a, b, tvl);
  }

  // Junk pools below the filter (tiny TVL between random pairs; pairs may
  // duplicate existing ones — a filtered-out venue listing the same pair).
  for (std::size_t j = 0; j < config.below_filter_pools; ++j) {
    const auto a = static_cast<std::uint32_t>(rng.index(config.token_count));
    auto b = static_cast<std::uint32_t>(rng.index(config.token_count));
    while (b == a) b = static_cast<std::uint32_t>(rng.index(config.token_count));
    const double tiny_tvl = rng.uniform(1'000.0, 0.8 * config.min_pool_tvl_usd);
    add_pool(a, b, tiny_tvl);
  }

  ARB_LOG_INFO("generated snapshot: " << snapshot.graph.token_count()
                                      << " tokens, "
                                      << snapshot.graph.pool_count()
                                      << " pools");
  return snapshot;
}

}  // namespace arb::market
