#pragma once

/// \file snapshot.hpp
/// A market snapshot: the token graph (pool reserves) plus the CEX price
/// feed at one instant, with the paper's pool-quality filter.

#include <string>

#include "graph/token_graph.hpp"
#include "market/price_feed.hpp"

namespace arb::market {

/// The pool-quality filter the paper applies to the 2023-09-01 Uniswap V2
/// snapshot: keep pools whose TVL exceeds $30k and where each side holds
/// more than 100 token units.
struct PoolFilter {
  double min_tvl_usd = 30'000.0;
  double min_token_reserve = 100.0;
};

struct MarketSnapshot {
  graph::TokenGraph graph;
  CexPriceFeed prices;
  std::string label;  ///< provenance, e.g. "synthetic seed=42"

  /// TVL of a pool valued at CEX prices (both sides).
  [[nodiscard]] double pool_tvl_usd(PoolId id) const;

  /// True iff the pool passes the filter.
  [[nodiscard]] bool pool_passes(PoolId id, const PoolFilter& filter) const;

  /// A new snapshot containing only passing pools and the tokens they
  /// touch (token ids are re-numbered densely; symbols preserved).
  [[nodiscard]] MarketSnapshot filtered(const PoolFilter& filter) const;
};

}  // namespace arb::market
