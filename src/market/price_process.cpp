#include "market/price_process.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace arb::market {

PriceProcess::PriceProcess(const MarketSnapshot& snapshot,
                           PriceProcessConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  ARB_REQUIRE(config.pool_tracking >= 0.0 && config.pool_tracking <= 1.0,
              "pool_tracking must be in [0, 1]");
  ARB_REQUIRE(config.volatility >= 0.0 && config.pool_noise >= 0.0 &&
                  config.cex_noise >= 0.0,
              "noise parameters must be non-negative");
  fundamentals_.reserve(snapshot.graph.token_count());
  for (const TokenId token : snapshot.graph.tokens()) {
    fundamentals_.push_back(snapshot.prices.price_unchecked(token));
  }
}

double PriceProcess::fundamental(TokenId token) const {
  ARB_REQUIRE(token.value() < fundamentals_.size(), "unknown token");
  return fundamentals_[token.value()];
}

void PriceProcess::step(MarketSnapshot& snapshot) {
  ARB_REQUIRE(snapshot.graph.token_count() == fundamentals_.size(),
              "snapshot token count changed under the process");
  ++blocks_;

  // 1. Fundamentals follow GBM.
  for (double& price : fundamentals_) {
    price *= std::exp(config_.drift +
                      config_.volatility * rng_.normal());
  }

  // 2. Retail flow drags each pool toward its fundamental ratio, plus
  //    idiosyncratic noise. CPMM/StableSwap pools move their reserves
  //    ((r0/s, r1·s) preserves k on a CPMM); concentrated positions move
  //    their price state directly, clamped inside the range.
  for (const amm::AnyPool& pool : snapshot.graph.pools()) {
    const double fundamental_ratio =
        fundamentals_[pool.token0().value()] /
        fundamentals_[pool.token1().value()];
    if (pool.kind() == amm::PoolKind::kConcentrated) {
      const amm::ConcentratedPool& clp = pool.concentrated();
      const double gap =
          std::log(fundamental_ratio) - std::log(clp.price());
      const double shift = config_.pool_tracking * gap +
                           config_.pool_noise * rng_.normal();
      // Clamp strictly inside the range; at the edge the position is
      // one-sided and quotes go flat.
      const double margin =
          1e-6 * (std::log(clp.p_hi()) - std::log(clp.p_lo()));
      const double log_price = std::clamp(
          std::log(clp.price()) + shift, std::log(clp.p_lo()) + margin,
          std::log(clp.p_hi()) - margin);
      const Status moved =
          snapshot.graph.mutable_pool(pool.id()).set_concentrated_state(
              clp.liquidity(), std::exp(log_price));
      ARB_REQUIRE(moved.ok(), "clamped price left the position range");
      continue;
    }
    // Pool-implied price of token0 in token1 units: r1/r0.
    const double pool_ratio = pool.reserve1() / pool.reserve0();
    const double gap = std::log(fundamental_ratio) - std::log(pool_ratio);
    const double shift = config_.pool_tracking * gap +
                         config_.pool_noise * rng_.normal();
    // Scaling (r0/s, r1·s) multiplies r1/r0 by s²; solve s for `shift`.
    const double s = std::exp(shift / 2.0);
    const Status moved = snapshot.graph.set_pool_reserves(
        pool.id(), pool.reserve0() / s, pool.reserve1() * s);
    ARB_REQUIRE(moved.ok(), "reserve scaling produced invalid reserves");
  }

  // 3. CEX re-quotes fundamentals with noise.
  for (const TokenId token : snapshot.graph.tokens()) {
    snapshot.prices.set_price(
        token, fundamentals_[token.value()] *
                   std::exp(config_.cex_noise * rng_.normal()));
  }
}

}  // namespace arb::market
