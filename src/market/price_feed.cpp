#include "market/price_feed.hpp"

#include "common/error.hpp"

namespace arb::market {

void CexPriceFeed::set_price(TokenId token, UsdPrice price) {
  ARB_REQUIRE(token.valid(), "invalid token id");
  ARB_REQUIRE(price > 0.0, "price must be positive");
  prices_[token] = price;
}

bool CexPriceFeed::has_price(TokenId token) const {
  return prices_.find(token) != prices_.end();
}

Result<UsdPrice> CexPriceFeed::price(TokenId token) const {
  const auto it = prices_.find(token);
  if (it == prices_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no CEX price for " + to_string(token));
  }
  return it->second;
}

UsdPrice CexPriceFeed::price_unchecked(TokenId token) const {
  const auto it = prices_.find(token);
  ARB_REQUIRE(it != prices_.end(), "no CEX price for " + to_string(token));
  return it->second;
}

double CexPriceFeed::value_usd(TokenId token, Amount amount) const {
  return price_unchecked(token) * amount;
}

}  // namespace arb::market
