#pragma once

/// \file replay_stream.hpp
/// Turns a market snapshot into a deterministic stream of pool updates:
/// block after block, pools receive the same log-normal exogenous-flow
/// shocks sim::run_replay applies, but emitted one `PoolUpdateEvent` at a
/// time so the scanner service can consume them incrementally.

#include <cstdint>
#include <vector>

#include "amm/any_pool.hpp"
#include "common/rng.hpp"
#include "market/snapshot.hpp"
#include "runtime/event.hpp"

namespace arb::runtime {

struct ReplayStreamConfig {
  std::uint64_t seed = 7;
  /// Number of blocks to emit; 0 means unbounded.
  std::size_t blocks = 50;
  /// Log-price shock per pool per block (sim::ReplayConfig's noise).
  double block_noise_sigma = 0.01;
  /// Pools shocked per block: 0 = every pool once (replay semantics),
  /// otherwise that many pools drawn uniformly at random (single-pool
  /// update workloads use 1).
  std::size_t pools_per_block = 0;
};

/// Deterministic replay of exogenous trading flow as an update stream.
/// Tracks pool state internally so consecutive shocks compound exactly
/// as they do in sim::run_replay. Every venue kind draws exactly one
/// shock per selected pool, so the RNG call sequence — and hence the
/// emitted event stream on all-CPMM markets — is independent of pool
/// kinds. Reserve-based pools emit reserve events; concentrated
/// positions emit (liquidity, price) events.
class ReplayUpdateStream final : public UpdateStream {
 public:
  ReplayUpdateStream(const market::MarketSnapshot& snapshot,
                     const ReplayStreamConfig& config = {});

  [[nodiscard]] std::optional<PoolUpdateEvent> next() override;

  [[nodiscard]] std::size_t blocks_emitted() const { return block_; }

 private:
  void refill();

  ReplayStreamConfig config_;
  Rng rng_;
  /// Current pool state, by PoolId value (value copies of the snapshot).
  std::vector<amm::AnyPool> pools_;
  std::vector<PoolUpdateEvent> pending_;  ///< current block, reversed
  std::size_t block_ = 0;
  std::uint64_t sequence_ = 0;
  bool exhausted_ = false;
};

}  // namespace arb::runtime
