#pragma once

/// \file service.hpp
/// The event-driven scanner service: a bounded event queue feeding one
/// consumer thread that batches/coalesces bursts, applies them to the
/// incremental scanner (which fans dirty loops out to a worker pool),
/// and keeps the ranked opportunity set continuously fresh. Producers
/// call publish() from any thread; observers read opportunities() and
/// metrics() from any thread.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "runtime/event.hpp"
#include "runtime/incremental_scanner.hpp"
#include "runtime/metrics.hpp"
#include "runtime/validation.hpp"
#include "runtime/worker_pool.hpp"

namespace arb::runtime {

/// What publish() does when the event queue is at capacity.
enum class BackpressurePolicy {
  kBlock,       ///< producer waits for space (lossless)
  kDropNewest,  ///< publish returns false, event discarded
  kDropOldest,  ///< oldest queued event evicted, new one accepted
};

struct ServiceConfig {
  core::ScannerConfig scanner;
  std::size_t worker_threads = 4;
  /// Shards the cycle universe is partitioned into (DESIGN.md §11).
  /// Batches are validated once, split per shard and repriced in
  /// parallel; the published ranked set is bit-identical for any value.
  /// 1 = the classic single-shard engine.
  std::size_t shards = 1;
  std::size_t queue_capacity = 4096;
  /// Events drained per apply() round; bursts beyond this are split
  /// across rounds (and within a round, per-pool last-wins coalescing
  /// collapses duplicates).
  std::size_t max_batch = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Run every event through the EventValidator before applying it
  /// (DESIGN.md §10): malformed events are rejected and counted by
  /// RejectReason, repeat offenders quarantine, and the service keeps
  /// running. With validate=false the pre-validation contract applies —
  /// the first bad event stops the service with an error status (useful
  /// for trusted in-process streams where a bad event is a bug).
  bool validate = true;
  ValidationConfig validation;
};

class ScannerService {
 public:
  /// Prices the initial snapshot and starts the consumer thread.
  [[nodiscard]] static Result<std::unique_ptr<ScannerService>> start(
      const market::MarketSnapshot& snapshot, const ServiceConfig& config = {});

  ~ScannerService();

  ScannerService(const ScannerService&) = delete;
  ScannerService& operator=(const ScannerService&) = delete;

  /// Publishes one event. Returns false when the event was not accepted
  /// (kDropNewest with a full queue, or the service is stopping).
  bool publish(const PoolUpdateEvent& event);

  /// Blocks until every accepted event has been applied (or the service
  /// stopped on an error).
  void drain();

  /// Stops intake, drains the queue, joins the consumer and workers.
  /// Idempotent.
  void stop();

  /// First error the consumer hit (the service stops consuming on error).
  [[nodiscard]] Status status() const;

  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Thread-safe deep copy of the current ranked opportunity set.
  [[nodiscard]] std::vector<core::Opportunity> opportunities() const;

  /// Same, but into a caller-owned vector whose capacity survives across
  /// polls — the steady-state observer path allocates nothing once the
  /// vector has grown to the working-set size.
  void opportunities_into(std::vector<core::Opportunity>& out) const;

  /// Pools currently in quarantine (ascending ids). Empty when the
  /// service runs with validate=false.
  [[nodiscard]] std::vector<PoolId> quarantined_pools() const;

 private:
  ScannerService(const ServiceConfig& config);

  void run();

  ServiceConfig config_;
  RuntimeMetrics metrics_;
  WorkerPool workers_;

  mutable std::mutex scanner_mutex_;
  std::unique_ptr<IncrementalScanner> scanner_;  ///< guarded by scanner_mutex_
  std::unique_ptr<EventValidator> validator_;    ///< guarded by scanner_mutex_
  Status status_;                                ///< guarded by scanner_mutex_

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_drained_;
  std::deque<PoolUpdateEvent> queue_;  ///< guarded by queue_mutex_
  bool applying_ = false;              ///< consumer mid-batch
  bool stopping_ = false;
  bool failed_ = false;  ///< consumer stopped on error

  std::thread consumer_;
};

}  // namespace arb::runtime
