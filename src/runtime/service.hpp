#pragma once

/// \file service.hpp
/// The event-driven scanner service: sharded ingress queues feeding one
/// consumer thread that batches/coalesces bursts and drives the
/// incremental scanner's staged epochs as an overlapped pipeline
/// (DESIGN.md §12) — validating and writing epoch N+1 into the back
/// market buffer while epoch N's reprice lanes still run on the worker
/// pool. Producers call publish() from any thread; observers read
/// opportunities() and metrics() from any thread.
///
/// Observer consistency: the consumer holds the scanner lock while the
/// pipeline is busy, so opportunities()/quarantined_pools() see only
/// settled states — every observation is bit-identical to some state of
/// the serial engine, and after drain() it is *the* serial state. Under
/// sustained saturation observers therefore wait for the next queue
/// drain; metrics() never blocks.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "core/scanner.hpp"
#include "market/snapshot.hpp"
#include "runtime/event.hpp"
#include "runtime/incremental_scanner.hpp"
#include "runtime/metrics.hpp"
#include "runtime/validation.hpp"
#include "runtime/worker_pool.hpp"

namespace arb::runtime {

/// What publish() does when the event queue is at capacity.
enum class BackpressurePolicy {
  kBlock,       ///< producer waits for space (lossless)
  kDropNewest,  ///< publish returns false, event discarded
  kDropOldest,  ///< oldest queued event evicted, new one accepted
};

struct ServiceConfig {
  core::ScannerConfig scanner;
  std::size_t worker_threads = 4;
  /// Shards the cycle universe is partitioned into (DESIGN.md §11).
  /// Ingress queues and validator state shard with it; the published
  /// ranked set is bit-identical for any value. 1 = the classic
  /// single-shard engine.
  std::size_t shards = 1;
  std::size_t queue_capacity = 4096;
  /// Events drained per epoch; bursts beyond this are split across
  /// epochs (and within one, per-pool last-wins coalescing collapses
  /// duplicates).
  std::size_t max_batch = 256;
  /// Pipeline depth (DESIGN.md §12): 1 runs the stages serially (the
  /// pre-pipeline engine), 2 overlaps writing epoch N+1 with repricing
  /// epoch N, >2 additionally pre-validates up to depth-2 batches ahead
  /// of the write stage. Results are bit-identical at every depth.
  std::size_t pipeline_depth = 2;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Run every event through the sharded validator before applying it
  /// (DESIGN.md §10): malformed events are rejected and counted by
  /// RejectReason, repeat offenders quarantine, and the service keeps
  /// running. With validate=false the pre-validation contract applies —
  /// the first bad event stops the service with an error status (useful
  /// for trusted in-process streams where a bad event is a bug).
  bool validate = true;
  ValidationConfig validation;
};

class ScannerService {
 public:
  /// Prices the initial snapshot and starts the consumer thread.
  [[nodiscard]] static Result<std::unique_ptr<ScannerService>> start(
      const market::MarketSnapshot& snapshot, const ServiceConfig& config = {});

  ~ScannerService();

  ScannerService(const ScannerService&) = delete;
  ScannerService& operator=(const ScannerService&) = delete;

  /// Publishes one event into its owner shard's ingress queue. Returns
  /// false when the event was not accepted (kDropNewest with a full
  /// queue, or the service is stopping).
  bool publish(const PoolUpdateEvent& event);

  /// Blocks until every accepted event has been applied and the
  /// pipeline has settled (or the service stopped on an error).
  void drain();

  /// Stops intake, drains the queue, joins the consumer and workers.
  /// Idempotent.
  void stop();

  /// First error the consumer hit (the service stops consuming on error).
  [[nodiscard]] Status status() const;

  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Thread-safe deep copy of the current ranked opportunity set.
  [[nodiscard]] std::vector<core::Opportunity> opportunities() const;

  /// Same, but into a caller-owned vector whose capacity survives across
  /// polls — the steady-state observer path allocates nothing once the
  /// vector has grown to the working-set size.
  void opportunities_into(std::vector<core::Opportunity>& out) const;

  /// Pools currently in quarantine (ascending ids). Empty when the
  /// service runs with validate=false.
  [[nodiscard]] std::vector<PoolId> quarantined_pools() const;

  /// Runs `fn` against the committed market snapshot under the scanner
  /// lock (same observer contract as opportunities(): only settled epoch
  /// states are visible, and the call waits out a busy pipeline). The
  /// snapshot reference is valid only inside `fn` — copy what outlives
  /// the call. This is the routing service's read primitive.
  template <typename Fn>
  auto with_snapshot(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(scanner_mutex_);
    return std::forward<Fn>(fn)(scanner_->snapshot());
  }

  /// The live metric registry, for co-located components (the routing
  /// service) that publish into the same snapshot/CSV stream.
  [[nodiscard]] RuntimeMetrics& metrics_registry() { return metrics_; }

 private:
  /// One queued event plus its global arrival ticket. The consumer
  /// merges the per-shard queues by ticket, so batch composition is
  /// identical to a single FIFO queue (and per-pool order is preserved
  /// outright: a pool always lands in the same shard queue).
  struct Ticketed {
    PoolUpdateEvent event;
    std::uint64_t ticket = 0;
  };

  ScannerService(const ServiceConfig& config);

  void run();
  /// Pops up to max_batch events in global ticket order. Caller holds
  /// queue_mutex_.
  void take_batch_locked(std::vector<PoolUpdateEvent>& out);
  /// Evicts the globally oldest queued event (kDropOldest). Caller
  /// holds queue_mutex_.
  void evict_oldest_locked();

  ServiceConfig config_;
  RuntimeMetrics metrics_;
  WorkerPool workers_;

  mutable std::mutex scanner_mutex_;
  std::unique_ptr<IncrementalScanner> scanner_;   ///< guarded by scanner_mutex_
  std::unique_ptr<ShardedValidator> validator_;   ///< guarded by scanner_mutex_
  Status status_;                                 ///< guarded by scanner_mutex_

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_drained_;
  /// Per-shard ingress queues; everything below guarded by queue_mutex_.
  std::vector<std::deque<Ticketed>> shard_queues_;
  std::size_t total_queued_ = 0;
  std::uint64_t next_ticket_ = 0;
  bool applying_ = false;  ///< consumer pipeline busy
  bool stopping_ = false;
  bool failed_ = false;  ///< consumer stopped on error
  /// Pool value → owning ingress shard (ShardPlan::owner_of_pool),
  /// immutable after start(); unknown ids route to shard 0.
  std::vector<std::uint32_t> ingress_owner_;

  std::thread consumer_;
};

}  // namespace arb::runtime
