#pragma once

/// \file pool_index.hpp
/// Persistent inverted index PoolId → enumerated cycles traversing it.
///
/// Cycle topology depends only on the token graph's shape (which pools
/// exist and what they connect), never on reserves, so the universe of
/// candidate loops is enumerated once and a reserve update dirties
/// exactly the cycles listed under its pool. This is what makes the
/// incremental scanner's work proportional to the *affected* loop count
/// instead of the market size.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "graph/cycle.hpp"
#include "graph/token_graph.hpp"

namespace arb::runtime {

class PoolCycleIndex {
 public:
  /// Enumerates all fixed-length cycles for every requested length (the
  /// same enumeration order core::scan_market uses) and inverts the
  /// cycle→pool incidence. Fails on an empty length list or lengths < 2,
  /// mirroring scan_market's config validation.
  [[nodiscard]] static Result<PoolCycleIndex> build(
      const graph::TokenGraph& graph,
      const std::vector<std::size_t>& loop_lengths);

  /// The enumerated universe, in scan_market enumeration order. Both
  /// orientations of each loop are present; profitability is a property
  /// of reserves and is decided at re-price time.
  [[nodiscard]] const std::vector<graph::Cycle>& cycles() const {
    return cycles_;
  }

  /// Canonical rotation key per universe cycle (precomputed once; keys
  /// never change because topology never changes).
  [[nodiscard]] const std::vector<std::string>& rotation_keys() const {
    return rotation_keys_;
  }

  /// Indices into cycles() of every cycle traversing `pool`, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& cycles_of(PoolId pool) const;

  [[nodiscard]] std::size_t pool_count() const { return by_pool_.size(); }

  /// Largest per-pool fan-out (worst-case dirty set of a single update).
  [[nodiscard]] std::size_t max_fanout() const;

  /// Mean per-pool fan-out.
  [[nodiscard]] double mean_fanout() const;

 private:
  std::vector<graph::Cycle> cycles_;
  std::vector<std::string> rotation_keys_;
  std::vector<std::vector<std::uint32_t>> by_pool_;
};

}  // namespace arb::runtime
