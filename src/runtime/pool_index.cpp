#include "runtime/pool_index.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/cycle_enumeration.hpp"

namespace arb::runtime {

Result<PoolCycleIndex> PoolCycleIndex::build(
    const graph::TokenGraph& graph,
    const std::vector<std::size_t>& loop_lengths) {
  if (loop_lengths.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "scanner needs at least one loop length");
  }
  PoolCycleIndex index;
  for (const std::size_t length : loop_lengths) {
    if (length < 2) {
      return make_error(ErrorCode::kInvalidArgument,
                        "loop length must be at least 2");
    }
    auto cycles = graph::enumerate_fixed_length_cycles(graph, length);
    index.cycles_.insert(index.cycles_.end(),
                         std::make_move_iterator(cycles.begin()),
                         std::make_move_iterator(cycles.end()));
  }
  index.rotation_keys_.reserve(index.cycles_.size());
  index.by_pool_.resize(graph.pool_count());
  for (std::size_t i = 0; i < index.cycles_.size(); ++i) {
    const graph::Cycle& cycle = index.cycles_[i];
    index.rotation_keys_.push_back(cycle.rotation_key());
    for (const PoolId pool : cycle.pools()) {
      index.by_pool_[pool.value()].push_back(static_cast<std::uint32_t>(i));
    }
  }
  // Universe order already makes per-pool lists ascending; keep the
  // invariant explicit for callers that merge dirty sets.
  for (auto& list : index.by_pool_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return index;
}

const std::vector<std::uint32_t>& PoolCycleIndex::cycles_of(
    PoolId pool) const {
  ARB_REQUIRE(pool.value() < by_pool_.size(), "unknown pool");
  return by_pool_[pool.value()];
}

std::size_t PoolCycleIndex::max_fanout() const {
  std::size_t best = 0;
  for (const auto& list : by_pool_) best = std::max(best, list.size());
  return best;
}

double PoolCycleIndex::mean_fanout() const {
  if (by_pool_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : by_pool_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(by_pool_.size());
}

}  // namespace arb::runtime
