#pragma once

/// \file shard_plan.hpp
/// Deterministic partitioning of the enumerated cycle universe into K
/// shards, plus the per-shard routing tables the shard router needs.
///
/// Disjoint cycle sets re-price independently (a cycle's valuation reads
/// nothing but its own pools and the immutable CEX feed), so the
/// universe can be split across parallel per-shard scanners that share
/// one read-only market view. Ownership is exclusive: every universe
/// cycle lives in exactly one shard, which owns its slot, its warm-start
/// entry and its quarantine counter — that is what makes the sharded
/// trajectory bit-identical to the single-shard one for any K.
///
/// Assignment is a pure function of (universe, K): an FNV-1a hash of
/// each cycle's canonical rotation key picks the initial shard, then a
/// greedy balance pass moves whole cycles from the heaviest to the
/// lightest shard while that strictly narrows the load spread, where a
/// shard's load is its pool fan-out (the sum of its cycles' lengths —
/// the number of (pool, cycle) incidences it re-prices in the worst
/// case). Pools touched by cycles in several shards are routed to each
/// of them via `shards_of_pool` / `sub_index`.

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "runtime/pool_index.hpp"

namespace arb::runtime {

class ShardPlan {
 public:
  /// Partitions `index`'s universe into `shards` ≥ 1 shards. Shards may
  /// be empty when K exceeds the cycle count. Deterministic: the same
  /// (index, shards) always yields the same plan.
  [[nodiscard]] static Result<ShardPlan> build(const PoolCycleIndex& index,
                                               std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const { return cycles_of_.size(); }

  /// Owning shard of a universe cycle.
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t cycle) const {
    return shard_of_[cycle];
  }
  /// Position of a universe cycle inside its owning shard's cycle list.
  [[nodiscard]] std::uint32_t local_of(std::uint32_t cycle) const {
    return local_of_[cycle];
  }

  /// Universe cycle indices owned by shard `s`, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& cycles_of(
      std::size_t s) const {
    return cycles_of_[s];
  }

  /// Shards owning at least one cycle that traverses `pool`, ascending.
  /// A multi-shard pool's update fans out to every listed shard.
  [[nodiscard]] const std::vector<std::uint32_t>& shards_of_pool(
      PoolId pool) const;

  /// Per-shard sub-index: local positions (into cycles_of(s)) of shard
  /// s's cycles traversing `pool`, ascending. Empty when the shard does
  /// not touch the pool.
  [[nodiscard]] const std::vector<std::uint32_t>& sub_index(
      std::size_t s, PoolId pool) const;

  /// The single shard that *owns* a pool for ingress purposes (per-shard
  /// event queues and sharded validator state): the first shard whose
  /// cycles traverse it, or a deterministic modulo spread for pools no
  /// cycle touches. Pure function of the plan — every session agrees.
  [[nodiscard]] std::uint32_t owner_of_pool(PoolId pool) const;

  /// Per-shard pool fan-out (Σ cycle length over owned cycles).
  [[nodiscard]] const std::vector<std::size_t>& loads() const {
    return loads_;
  }

  /// Max load over mean load — 1.0 is a perfect split, 0.0 an empty
  /// universe. Exported as the `shard_imbalance` metric.
  [[nodiscard]] double imbalance() const;

 private:
  std::vector<std::uint32_t> shard_of_;
  std::vector<std::uint32_t> local_of_;
  std::vector<std::vector<std::uint32_t>> cycles_of_;
  std::vector<std::vector<std::uint32_t>> shards_of_pool_;
  /// [shard][pool] → ascending local cycle positions.
  std::vector<std::vector<std::vector<std::uint32_t>>> sub_index_;
  std::vector<std::size_t> loads_;
};

}  // namespace arb::runtime
