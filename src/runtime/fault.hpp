#pragma once

/// \file fault.hpp
/// Deterministic fault injection for update streams.
///
/// `FaultInjector` wraps any `UpdateStream` and perturbs its output the
/// way a flaky indexer or a lossy transport would: corrupted payloads
/// (NaN / negative / zero reserves, wrong-kind payloads, unknown pool
/// ids), duplicated events, dropped events, adjacent reorders, and stale
/// retransmissions of past events — each at an independently configurable
/// rate. All randomness flows through one seeded `Rng` with a fixed draw
/// order per pulled event, so a failing run is reproduced exactly by the
/// (seed, profile, inner stream) triple printed in the failure message —
/// the contract docs/TESTING.md documents.
///
/// With every rate at zero the injector is a pure pass-through: the
/// emitted sequence is bit-identical to reading the inner stream
/// directly (asserted by the fault-injection suite).

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "runtime/event.hpp"

namespace arb::runtime {

/// Per-fault-class injection rates (independent Bernoulli draws per
/// pulled event), plus the seed that makes a run reproducible.
struct FaultProfile {
  std::uint64_t seed = 1;
  double corrupt_rate = 0.0;    ///< mangle the payload in place
  double duplicate_rate = 0.0;  ///< emit the event twice
  double drop_rate = 0.0;       ///< swallow the event entirely
  double reorder_rate = 0.0;    ///< swap the event with its successor
  double stale_rate = 0.0;      ///< re-emit a past event (old sequence)

  /// All five classes at the same rate — the "X% fault rate" used by the
  /// test suite.
  [[nodiscard]] static FaultProfile uniform(double rate, std::uint64_t seed);
};

/// How many faults of each class actually fired.
struct FaultCounts {
  std::uint64_t pulled = 0;     ///< events read from the inner stream
  std::uint64_t delivered = 0;  ///< events emitted downstream
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dropped = 0;
  std::uint64_t reordered = 0;
  std::uint64_t stale_replayed = 0;

  [[nodiscard]] std::uint64_t faults() const {
    return corrupted + duplicated + dropped + reordered + stale_replayed;
  }
};

class FaultInjector final : public UpdateStream {
 public:
  /// Wraps \p inner (not owned, must outlive the injector). \p pool_count
  /// lets unknown-pool corruption target an id just past the snapshot's
  /// range; pass 0 when unknown and a large offset is used instead.
  FaultInjector(UpdateStream& inner, FaultProfile profile,
                std::size_t pool_count = 0);

  [[nodiscard]] std::optional<PoolUpdateEvent> next() override;

  [[nodiscard]] const FaultCounts& counts() const { return counts_; }
  [[nodiscard]] const FaultProfile& profile() const { return profile_; }

 private:
  [[nodiscard]] PoolUpdateEvent corrupt(PoolUpdateEvent event);
  void remember(const PoolUpdateEvent& event);

  UpdateStream* inner_;
  FaultProfile profile_;
  std::size_t pool_count_;
  Rng rng_;
  FaultCounts counts_;
  /// Events queued ahead of the next inner pull (duplicates, stale
  /// replays, and the flushed half of a reorder).
  std::deque<PoolUpdateEvent> pending_;
  /// Reorder carry slot: a held event is emitted right after its
  /// successor, swapping the adjacent pair.
  std::optional<PoolUpdateEvent> held_;
  /// Ring of recently delivered events feeding stale retransmissions.
  std::vector<PoolUpdateEvent> history_;
  std::size_t history_next_ = 0;

  static constexpr std::size_t kHistoryCapacity = 64;
};

}  // namespace arb::runtime
