#include "runtime/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.hpp"

namespace arb::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

ScannerService::ScannerService(const ServiceConfig& config)
    : config_(config),
      workers_(WorkerPool::Config{
          .threads = config.worker_threads,
          // Re-price tasks are produced by the consumer thread only and
          // bounded by the dirty-set size; kBlock keeps submission
          // lossless if a burst ever outruns the task queue.
          .queue_capacity = 4096,
          .overflow = WorkerPool::Overflow::kBlock}) {}

Result<std::unique_ptr<ScannerService>> ScannerService::start(
    const market::MarketSnapshot& snapshot, const ServiceConfig& config) {
  if (config.max_batch == 0 || config.queue_capacity == 0 ||
      config.worker_threads == 0 || config.shards == 0 ||
      config.pipeline_depth == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "service needs positive max_batch, queue_capacity, "
                      "worker_threads, shards and pipeline_depth");
  }
  std::unique_ptr<ScannerService> service(new ScannerService(config));
  auto scanner = IncrementalScanner::create(snapshot, config.scanner,
                                            &service->workers_, config.shards);
  if (!scanner) return scanner.error();
  service->scanner_ =
      std::make_unique<IncrementalScanner>(std::move(scanner).value());
  service->metrics_.set_shard_plan(service->scanner_->shard_count(),
                                   service->scanner_->plan().imbalance());
  service->metrics_.set_pipeline_depth(config.pipeline_depth);
  // Ingress routing: one queue per shard, each pool pinned to its owner
  // shard's queue so per-pool arrival order is trivially preserved.
  const std::size_t pools = service->scanner_->view().pool_count();
  service->ingress_owner_.resize(pools);
  for (std::size_t p = 0; p < pools; ++p) {
    service->ingress_owner_[p] = service->scanner_->plan().owner_of_pool(
        PoolId(static_cast<PoolId::underlying_type>(p)));
  }
  service->shard_queues_.resize(config.shards);
  if (config.validate) {
    service->validator_ = std::make_unique<ShardedValidator>(
        service->scanner_->view(), config.validation,
        service->ingress_owner_, config.shards);
  }
  service->consumer_ = std::thread([raw = service.get()] { raw->run(); });
  return service;
}

ScannerService::~ScannerService() { stop(); }

bool ScannerService::publish(const PoolUpdateEvent& event) {
  bool dropped_oldest = false;
  {
    std::unique_lock lock(queue_mutex_);
    if (config_.backpressure == BackpressurePolicy::kBlock) {
      queue_not_full_.wait(lock, [this] {
        return stopping_ || total_queued_ < config_.queue_capacity;
      });
    }
    if (stopping_) return false;
    if (total_queued_ >= config_.queue_capacity) {
      switch (config_.backpressure) {
        case BackpressurePolicy::kBlock:
          return false;  // unreachable: the wait above guarantees space
        case BackpressurePolicy::kDropNewest:
          metrics_.add_dropped(1);
          return false;
        case BackpressurePolicy::kDropOldest:
          evict_oldest_locked();
          dropped_oldest = true;
          break;
      }
    }
    const std::size_t owner = event.pool.value() < ingress_owner_.size()
                                  ? ingress_owner_[event.pool.value()]
                                  : 0;
    shard_queues_[owner].push_back(Ticketed{event, next_ticket_++});
    ++total_queued_;
    metrics_.set_queue_depth(total_queued_);
  }
  metrics_.add_ingested(1);
  if (dropped_oldest) metrics_.add_dropped(1);
  queue_not_empty_.notify_one();
  return true;
}

void ScannerService::take_batch_locked(std::vector<PoolUpdateEvent>& out) {
  out.clear();
  const std::size_t take = std::min(config_.max_batch, total_queued_);
  // K-way merge by ticket: the batch has exactly the composition a single
  // FIFO queue would have produced, so batching (and therefore every
  // downstream result) is independent of the shard count.
  for (std::size_t i = 0; i < take; ++i) {
    std::size_t best = shard_queues_.size();
    std::uint64_t best_ticket = 0;
    for (std::size_t s = 0; s < shard_queues_.size(); ++s) {
      if (shard_queues_[s].empty()) continue;
      if (best == shard_queues_.size() ||
          shard_queues_[s].front().ticket < best_ticket) {
        best = s;
        best_ticket = shard_queues_[s].front().ticket;
      }
    }
    out.push_back(shard_queues_[best].front().event);
    shard_queues_[best].pop_front();
  }
  total_queued_ -= take;
  metrics_.set_queue_depth(total_queued_);
}

void ScannerService::evict_oldest_locked() {
  std::size_t best = shard_queues_.size();
  std::uint64_t best_ticket = 0;
  for (std::size_t s = 0; s < shard_queues_.size(); ++s) {
    if (shard_queues_[s].empty()) continue;
    if (best == shard_queues_.size() ||
        shard_queues_[s].front().ticket < best_ticket) {
      best = s;
      best_ticket = shard_queues_[s].front().ticket;
    }
  }
  shard_queues_[best].pop_front();
  --total_queued_;
}

void ScannerService::drain() {
  std::unique_lock lock(queue_mutex_);
  queue_drained_.wait(lock, [this] {
    return failed_ || (total_queued_ == 0 && !applying_);
  });
}

void ScannerService::stop() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (consumer_.joinable()) consumer_.join();
  workers_.shutdown();
}

Status ScannerService::status() const {
  std::lock_guard lock(scanner_mutex_);
  return status_;
}

MetricsSnapshot ScannerService::metrics() const {
  MetricsSnapshot snap = metrics_.snapshot();
  // The task-queue gauge is cheap to read live; everything else in the
  // snapshot is already monotonic counters.
  snap.worker_queue_depth = workers_.queue_depth();
  return snap;
}

std::vector<core::Opportunity> ScannerService::opportunities() const {
  std::lock_guard lock(scanner_mutex_);
  return scanner_->collect();
}

void ScannerService::opportunities_into(
    std::vector<core::Opportunity>& out) const {
  std::lock_guard lock(scanner_mutex_);
  scanner_->collect_into(out);
}

std::vector<PoolId> ScannerService::quarantined_pools() const {
  std::lock_guard lock(scanner_mutex_);
  if (validator_ == nullptr) return {};
  return validator_->quarantined_pools();
}

void ScannerService::run() {
  // One pipeline slot: a batch taken from the ingress queues, its
  // validated survivors, and the quarantine transitions its validation
  // produced (replayed, in stream order, at the epoch barrier — the
  // validator state machine is stream-order-only, so deferring the
  // scanner-side transition to the barrier leaves every epoch's frozen
  // state bit-identical to the serial engine's).
  struct Transition {
    PoolId pool;
    bool entered = false;
  };
  struct Prepared {
    std::vector<PoolUpdateEvent> batch;
    std::vector<PoolUpdateEvent> filtered;
    std::vector<Transition> transitions;
  };

  const std::size_t depth = config_.pipeline_depth;
  std::deque<Prepared> prepared;  ///< pre-validated batches (depth > 2)
  std::vector<Prepared> spare;    ///< recycled slots (steady-state: no alloc)
  bool inflight = false;
  Clock::time_point launched{};

  // The consumer holds the scanner lock for the whole busy stretch and
  // releases it only when the pipeline settles (queue empty, no epoch in
  // flight), so observers see exactly the serial engine's quiescent
  // states. Lock order is always scanner_mutex_ -> queue_mutex_.
  std::unique_lock slock(scanner_mutex_, std::defer_lock);

  // Validation stage (requires slock): reject malformed events, record
  // quarantine transitions for the barrier, keep the survivors. An empty
  // surviving batch still flows through the pipeline so the ranked view
  // reflects quarantine entries immediately.
  const auto validate = [&](Prepared& p) {
    if (validator_ == nullptr) return;
    const auto t0 = Clock::now();
    p.filtered.clear();
    p.transitions.clear();
    for (const PoolUpdateEvent& event : p.batch) {
      const EventVerdict verdict = validator_->check(event);
      if (verdict.entered_quarantine) {
        p.transitions.push_back({event.pool, true});
        metrics_.add_quarantine_entered();
      }
      if (verdict.released_quarantine) {
        // The releasing event rides in the surviving batch, dirtying
        // exactly this pool's cycles — the full-repricing resync.
        p.transitions.push_back({event.pool, false});
        metrics_.add_resync();
      }
      if (!verdict.accepted) {
        metrics_.add_rejected(verdict.reason);
        continue;
      }
      p.filtered.push_back(event);
    }
    metrics_.set_quarantined_now(validator_->quarantined_count());
    metrics_.record_validate_latency(micros_between(t0, Clock::now()));
  };

  // Harvest stage (requires slock): joins the in-flight lanes and folds
  // their report into the metrics. Returns false on a lane error (status_
  // is then set; the caller runs the fail path).
  const auto harvest = [&]() -> bool {
    Result<ApplyReport> report = scanner_->wait_reprice();
    inflight = false;
    const double micros = micros_between(launched, Clock::now());
    if (!report) {
      ARB_LOG_WARN("scanner service stopping on error: "
                   << report.error().to_string());
      status_ = report.error();
      return false;
    }
    metrics_.add_batch();
    metrics_.add_coalesced(report->events - report->unique_pools);
    metrics_.add_repriced(report->repriced);
    metrics_.add_solver_iterations(report->solver_iterations);
    metrics_.add_solver_fallbacks(report->solver_fallbacks);
    metrics_.add_warm_hits(report->warm_hits);
    metrics_.add_warm_misses(report->warm_misses);
    metrics_.add_warm_invalidations(report->warm_invalidations);
    metrics_.record_reprice_latency(micros);
    metrics_.add_repriced_cpmm(report->repriced_cpmm);
    metrics_.add_repriced_mixed(report->repriced_mixed);
    metrics_.add_repriced_mixed_fast(report->repriced_mixed_fast);
    metrics_.add_repriced_mixed_generic(report->repriced_mixed_generic);
    for (std::size_t s = 0; s < report->shard_repriced.size(); ++s) {
      metrics_.add_shard_repriced(s, report->shard_repriced[s]);
    }
    // Per-kind per-loop latency, one sample per batch (the batch mean).
    if (report->repriced_cpmm > 0) {
      metrics_.record_cpmm_reprice_latency(
          report->reprice_cpmm_us / static_cast<double>(report->repriced_cpmm));
    }
    if (report->repriced_mixed > 0) {
      metrics_.record_mixed_reprice_latency(
          report->reprice_mixed_us /
          static_cast<double>(report->repriced_mixed));
    }
    metrics_.set_worker_queue_depth(workers_.queue_depth());
    return true;
  };

  // Terminal error path: status_ was already set under slock. Marks the
  // service failed and abandons queued events (fail fast).
  const auto fail = [&] {
    slock.unlock();
    std::lock_guard qlock(queue_mutex_);
    applying_ = false;
    failed_ = true;
    queue_drained_.notify_all();
  };

  for (;;) {
    Prepared current;
    if (!spare.empty()) {
      current = std::move(spare.back());
      spare.pop_back();
    }
    bool have = false;
    bool from_queue = false;
    if (!prepared.empty()) {
      // A pre-validated batch is ready; recycle the slot we just took.
      spare.push_back(std::move(current));
      current = std::move(prepared.front());
      prepared.pop_front();
      have = true;
    }
    while (!have) {
      std::unique_lock qlock(queue_mutex_);
      if (total_queued_ == 0) {
        if (slock.owns_lock()) {
          // Pipeline still busy with nothing left to feed it: settle —
          // harvest the in-flight epoch, then go quiescent.
          qlock.unlock();
          if (inflight && !harvest()) {
            fail();
            return;
          }
          metrics_.set_epoch_lag(0);
          slock.unlock();
          qlock.lock();
          applying_ = false;
          if (total_queued_ == 0) queue_drained_.notify_all();
          if (total_queued_ == 0 && !stopping_) {
            queue_not_empty_.wait(
                qlock, [this] { return stopping_ || total_queued_ > 0; });
          }
          if (total_queued_ == 0) return;  // stopping and fully drained
        } else {
          queue_not_empty_.wait(
              qlock, [this] { return stopping_ || total_queued_ > 0; });
          if (total_queued_ == 0) return;  // stopping and fully drained
        }
      }
      take_batch_locked(current.batch);
      applying_ = true;
      qlock.unlock();
      queue_not_full_.notify_all();
      have = true;
      from_queue = true;
    }

    if (!slock.owns_lock()) slock.lock();
    if (from_queue) validate(current);  // prepared batches are pre-validated

    // Write stage: stage epoch N+1 into the back market buffer. This
    // overlaps the in-flight reprice of epoch N (the lanes read the
    // frozen front buffer). On error begin_epoch rolled the whole batch
    // back already.
    const std::vector<PoolUpdateEvent>& writes =
        validator_ != nullptr ? current.filtered : current.batch;
    const auto w0 = Clock::now();
    const Status written = scanner_->begin_epoch(writes);
    metrics_.record_write_latency(micros_between(w0, Clock::now()));

    // Harvest epoch N before the barrier.
    if (inflight && !harvest()) {
      fail();
      return;
    }
    if (!written.ok()) {
      ARB_LOG_WARN("scanner service stopping on error: "
                   << written.error().to_string());
      status_ = written.error();
      fail();
      return;
    }

    // Barrier: replay this batch's quarantine transitions in stream
    // order, then swap the epoch buffers and launch the lanes.
    for (const Transition& t : current.transitions) {
      scanner_->set_quarantined(t.pool, t.entered);
    }
    scanner_->commit_epoch();
    scanner_->launch_reprice();
    launched = Clock::now();
    inflight = true;

    if (depth <= 1) {
      // Serial mode: the classic engine, stage by stage.
      if (!harvest()) {
        fail();
        return;
      }
    } else if (depth > 2) {
      // Prefetch stage: pull and pre-validate up to depth-2 batches
      // ahead of the write stage while the lanes run.
      while (prepared.size() < depth - 2) {
        Prepared next;
        if (!spare.empty()) {
          next = std::move(spare.back());
          spare.pop_back();
        }
        {
          std::unique_lock qlock(queue_mutex_);
          if (total_queued_ == 0) {
            qlock.unlock();
            spare.push_back(std::move(next));
            break;
          }
          take_batch_locked(next.batch);
        }
        queue_not_full_.notify_all();
        validate(next);
        prepared.push_back(std::move(next));
      }
    }
    metrics_.set_epoch_lag((inflight ? 1 : 0) + prepared.size());
    spare.push_back(std::move(current));
  }
}

}  // namespace arb::runtime
