#include "runtime/service.hpp"

#include <chrono>

#include "common/logging.hpp"

namespace arb::runtime {

ScannerService::ScannerService(const ServiceConfig& config)
    : config_(config),
      workers_(WorkerPool::Config{
          .threads = config.worker_threads,
          // Re-price tasks are produced by the consumer thread only and
          // bounded by the dirty-set size; kBlock keeps submission
          // lossless if a burst ever outruns the task queue.
          .queue_capacity = 4096,
          .overflow = WorkerPool::Overflow::kBlock}) {}

Result<std::unique_ptr<ScannerService>> ScannerService::start(
    const market::MarketSnapshot& snapshot, const ServiceConfig& config) {
  if (config.max_batch == 0 || config.queue_capacity == 0 ||
      config.worker_threads == 0 || config.shards == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "service needs positive max_batch, queue_capacity, "
                      "worker_threads and shards");
  }
  std::unique_ptr<ScannerService> service(new ScannerService(config));
  auto scanner = IncrementalScanner::create(snapshot, config.scanner,
                                            &service->workers_, config.shards);
  if (!scanner) return scanner.error();
  service->scanner_ =
      std::make_unique<IncrementalScanner>(std::move(scanner).value());
  service->metrics_.set_shard_plan(service->scanner_->shard_count(),
                                   service->scanner_->plan().imbalance());
  if (config.validate) {
    service->validator_ = std::make_unique<EventValidator>(
        service->scanner_->view(), config.validation);
  }
  service->consumer_ = std::thread([raw = service.get()] { raw->run(); });
  return service;
}

ScannerService::~ScannerService() { stop(); }

bool ScannerService::publish(const PoolUpdateEvent& event) {
  bool dropped_oldest = false;
  {
    std::unique_lock lock(queue_mutex_);
    if (config_.backpressure == BackpressurePolicy::kBlock) {
      queue_not_full_.wait(lock, [this] {
        return stopping_ || queue_.size() < config_.queue_capacity;
      });
    }
    if (stopping_) return false;
    if (queue_.size() >= config_.queue_capacity) {
      switch (config_.backpressure) {
        case BackpressurePolicy::kBlock:
          return false;  // unreachable: the wait above guarantees space
        case BackpressurePolicy::kDropNewest:
          metrics_.add_dropped(1);
          return false;
        case BackpressurePolicy::kDropOldest:
          queue_.pop_front();
          dropped_oldest = true;
          break;
      }
    }
    queue_.push_back(event);
    metrics_.set_queue_depth(queue_.size());
  }
  metrics_.add_ingested(1);
  if (dropped_oldest) metrics_.add_dropped(1);
  queue_not_empty_.notify_one();
  return true;
}

void ScannerService::drain() {
  std::unique_lock lock(queue_mutex_);
  queue_drained_.wait(lock, [this] {
    return failed_ || (queue_.empty() && !applying_);
  });
}

void ScannerService::stop() {
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (consumer_.joinable()) consumer_.join();
  workers_.shutdown();
}

Status ScannerService::status() const {
  std::lock_guard lock(scanner_mutex_);
  return status_;
}

MetricsSnapshot ScannerService::metrics() const { return metrics_.snapshot(); }

std::vector<core::Opportunity> ScannerService::opportunities() const {
  std::lock_guard lock(scanner_mutex_);
  return scanner_->collect();
}

void ScannerService::opportunities_into(
    std::vector<core::Opportunity>& out) const {
  std::lock_guard lock(scanner_mutex_);
  scanner_->collect_into(out);
}

std::vector<PoolId> ScannerService::quarantined_pools() const {
  std::lock_guard lock(scanner_mutex_);
  if (validator_ == nullptr) return {};
  return validator_->quarantined_pools();
}

void ScannerService::run() {
  std::vector<PoolUpdateEvent> batch;
  std::vector<PoolUpdateEvent> filtered;
  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(queue_mutex_);
      queue_not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(queue_.front());
        queue_.pop_front();
      }
      applying_ = true;
      metrics_.set_queue_depth(queue_.size());
    }
    queue_not_full_.notify_all();

    const auto start = std::chrono::steady_clock::now();
    Result<ApplyReport> report = [&] {
      std::lock_guard lock(scanner_mutex_);
      if (validator_ == nullptr) return scanner_->apply(batch);
      // Validation stage: reject malformed events, apply quarantine
      // transitions, and hand the scanner only the survivors. An empty
      // surviving batch still goes through apply() so the ranked view
      // reflects quarantine entries immediately.
      filtered.clear();
      for (const PoolUpdateEvent& event : batch) {
        const EventVerdict verdict = validator_->check(event);
        if (verdict.entered_quarantine) {
          scanner_->set_quarantined(event.pool, true);
          metrics_.add_quarantine_entered();
        }
        if (verdict.released_quarantine) {
          // The releasing event rides in the surviving batch, dirtying
          // exactly this pool's cycles — the full-repricing resync.
          scanner_->set_quarantined(event.pool, false);
          metrics_.add_resync();
        }
        if (!verdict.accepted) {
          metrics_.add_rejected(verdict.reason);
          continue;
        }
        filtered.push_back(event);
      }
      metrics_.set_quarantined_now(validator_->quarantined_count());
      return scanner_->apply(filtered);
    }();
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();

    bool ok = report.ok();
    if (ok) {
      metrics_.add_batch();
      metrics_.add_coalesced(report->events - report->unique_pools);
      metrics_.add_repriced(report->repriced);
      metrics_.add_solver_iterations(report->solver_iterations);
      metrics_.add_solver_fallbacks(report->solver_fallbacks);
      metrics_.add_warm_hits(report->warm_hits);
      metrics_.add_warm_misses(report->warm_misses);
      metrics_.record_reprice_latency(micros);
      metrics_.add_repriced_cpmm(report->repriced_cpmm);
      metrics_.add_repriced_mixed(report->repriced_mixed);
      for (std::size_t s = 0; s < report->shard_repriced.size(); ++s) {
        metrics_.add_shard_repriced(s, report->shard_repriced[s]);
      }
      // Per-kind per-loop latency, one sample per batch (the batch mean).
      if (report->repriced_cpmm > 0) {
        metrics_.record_cpmm_reprice_latency(
            report->reprice_cpmm_us /
            static_cast<double>(report->repriced_cpmm));
      }
      if (report->repriced_mixed > 0) {
        metrics_.record_mixed_reprice_latency(
            report->reprice_mixed_us /
            static_cast<double>(report->repriced_mixed));
      }
    } else {
      ARB_LOG_WARN("scanner service stopping on error: "
                   << report.error().to_string());
      std::lock_guard lock(scanner_mutex_);
      status_ = report.error();
    }

    {
      std::lock_guard lock(queue_mutex_);
      applying_ = false;
      if (!ok) failed_ = true;
      if (failed_ || queue_.empty()) queue_drained_.notify_all();
      if (!ok) return;  // fail fast; queued events are abandoned
    }
  }
}

}  // namespace arb::runtime
