#include "runtime/epoch_market.hpp"

#include <utility>

#include "common/error.hpp"

namespace arb::runtime {

EpochMarket::EpochMarket(market::MarketSnapshot snapshot) {
  snaps_[0] = std::move(snapshot);
  snaps_[1] = snaps_[0];
  views_[0] = market::MarketView::build(snaps_[0].graph, snaps_[0].prices);
  views_[1] = views_[0];
}

void EpochMarket::begin_writes() {
  for (const PoolUpdateEvent& event : catch_up_) {
    // The event already applied cleanly to the other buffer from the
    // same starting state, so the replay cannot fail.
    Status replayed = apply_to_back(event);
    ARB_REQUIRE(replayed.ok(), "epoch catch-up replay failed");
  }
  catch_up_.clear();
}

Status EpochMarket::write(const PoolUpdateEvent& event) {
  if (Status applied = apply_to_back(event); !applied.ok()) return applied;
  journal_.push_back(event);
  return Status::success();
}

Status EpochMarket::apply_to_back(const PoolUpdateEvent& event) {
  market::MarketSnapshot& back = snaps_[front_ ^ 1];
  if (event.liquidity > 0.0) {
    // Concentrated payload: absolute (liquidity, price) state.
    if (Status applied = back.graph.set_concentrated_state(
            event.pool, event.liquidity, event.price);
        !applied.ok()) {
      return applied;
    }
  } else {
    if (!(event.reserve0 > 0.0) || !(event.reserve1 > 0.0)) {
      return make_error(ErrorCode::kInvalidArgument,
                        "non-positive reserves for " + to_string(event.pool));
    }
    if (Status applied = back.graph.set_pool_reserves(
            event.pool, event.reserve0, event.reserve1);
        !applied.ok()) {
      return applied;
    }
  }
  views_[front_ ^ 1].refresh_pool(back.graph, event.pool);
  return Status::success();
}

void EpochMarket::commit() {
  const std::size_t back = front_ ^ 1;
  views_[back].set_epoch(snaps_[back].graph.epoch());
  front_ = back;
  // This epoch's journal becomes the next begin_writes() catch-up; the
  // buffers trade places so the vectors just swap (catch_up_ was
  // cleared by begin_writes()).
  journal_.swap(catch_up_);
  journal_.clear();
  ++epoch_;
}

void EpochMarket::rollback() {
  snaps_[front_ ^ 1] = snaps_[front_];
  views_[front_ ^ 1] = views_[front_];
  journal_.clear();
  catch_up_.clear();  // the copy already includes everything committed
}

}  // namespace arb::runtime
