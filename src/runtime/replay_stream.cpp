#include "runtime/replay_stream.hpp"

#include <algorithm>

#include "sim/replay.hpp"

namespace arb::runtime {

ReplayUpdateStream::ReplayUpdateStream(const market::MarketSnapshot& snapshot,
                                       const ReplayStreamConfig& config)
    : config_(config), rng_(config.seed) {
  reserves_.reserve(snapshot.graph.pool_count());
  fees_.reserve(snapshot.graph.pool_count());
  for (const amm::CpmmPool& pool : snapshot.graph.pools()) {
    reserves_.emplace_back(pool.reserve0(), pool.reserve1());
    fees_.push_back(pool.fee());
  }
  if (reserves_.empty()) exhausted_ = true;
}

void ReplayUpdateStream::refill() {
  if (config_.blocks != 0 && block_ >= config_.blocks) {
    exhausted_ = true;
    return;
  }
  ++block_;
  std::vector<PoolId> targets;
  if (config_.pools_per_block == 0) {
    targets.reserve(reserves_.size());
    for (std::size_t i = 0; i < reserves_.size(); ++i) {
      targets.emplace_back(static_cast<PoolId::underlying_type>(i));
    }
  } else {
    targets.reserve(config_.pools_per_block);
    for (std::size_t i = 0; i < config_.pools_per_block; ++i) {
      targets.emplace_back(static_cast<PoolId::underlying_type>(
          rng_.uniform_int(0, static_cast<std::int64_t>(reserves_.size()) - 1)));
    }
  }
  for (const PoolId id : targets) {
    auto& [r0, r1] = reserves_[id.value()];
    const amm::CpmmPool pool(id, TokenId{0}, TokenId{1}, r0, r1,
                             fees_[id.value()]);
    const auto [n0, n1] =
        sim::shocked_reserves(pool, rng_.normal(0.0, config_.block_noise_sigma));
    r0 = n0;
    r1 = n1;
    PoolUpdateEvent event;
    event.pool = id;
    event.reserve0 = n0;
    event.reserve1 = n1;
    event.sequence = sequence_++;
    pending_.push_back(event);
  }
  // next() pops from the back; keep block-internal order.
  std::reverse(pending_.begin(), pending_.end());
}

std::optional<PoolUpdateEvent> ReplayUpdateStream::next() {
  while (pending_.empty() && !exhausted_) refill();
  if (pending_.empty()) return std::nullopt;
  const PoolUpdateEvent event = pending_.back();
  pending_.pop_back();
  return event;
}

}  // namespace arb::runtime
