#include "runtime/replay_stream.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/replay.hpp"

namespace arb::runtime {

ReplayUpdateStream::ReplayUpdateStream(const market::MarketSnapshot& snapshot,
                                       const ReplayStreamConfig& config)
    : config_(config), rng_(config.seed) {
  pools_.reserve(snapshot.graph.pool_count());
  for (const amm::AnyPool& pool : snapshot.graph.pools()) {
    pools_.push_back(pool);
  }
  if (pools_.empty()) exhausted_ = true;
}

void ReplayUpdateStream::refill() {
  if (config_.blocks != 0 && block_ >= config_.blocks) {
    exhausted_ = true;
    return;
  }
  ++block_;
  std::vector<PoolId> targets;
  if (config_.pools_per_block == 0) {
    targets.reserve(pools_.size());
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      targets.emplace_back(static_cast<PoolId::underlying_type>(i));
    }
  } else {
    targets.reserve(config_.pools_per_block);
    for (std::size_t i = 0; i < config_.pools_per_block; ++i) {
      targets.emplace_back(static_cast<PoolId::underlying_type>(
          rng_.uniform_int(0, static_cast<std::int64_t>(pools_.size()) - 1)));
    }
  }
  for (const PoolId id : targets) {
    amm::AnyPool& pool = pools_[id.value()];
    // Exactly one draw per selected pool, independent of kind.
    const double shock = rng_.normal(0.0, config_.block_noise_sigma);
    PoolUpdateEvent event;
    event.pool = id;
    event.sequence = sequence_++;
    if (pool.kind() == amm::PoolKind::kConcentrated) {
      const double price = sim::shocked_price(pool, shock);
      const double liquidity = pool.concentrated().liquidity();
      ARB_REQUIRE(pool.set_concentrated_state(liquidity, price).ok(),
                  "clamped shock left the position range");
      event.liquidity = liquidity;
      event.price = price;
    } else {
      const auto [n0, n1] = sim::shocked_reserves(pool, shock);
      ARB_REQUIRE(pool.set_reserves(n0, n1).ok(), "shocked reserves invalid");
      event.reserve0 = n0;
      event.reserve1 = n1;
    }
    pending_.push_back(event);
  }
  // next() pops from the back; keep block-internal order.
  std::reverse(pending_.begin(), pending_.end());
}

std::optional<PoolUpdateEvent> ReplayUpdateStream::next() {
  while (pending_.empty() && !exhausted_) refill();
  if (pending_.empty()) return std::nullopt;
  const PoolUpdateEvent event = pending_.back();
  pending_.pop_back();
  return event;
}

}  // namespace arb::runtime
